// Quickstart: an UNMODIFIED OpenCL host program running on a HaoCL
// cluster.
//
// The code below is textbook OpenCL 1.2 — platform discovery, context,
// queue, buffers, program-from-source, kernel, NDRange, read-back — using
// the asynchronous style the dispatch API rewards: non-blocking writes
// chained into the kernel through an event wait list, a non-blocking read
// chained on the kernel, and one clWaitForEvents at the end. Every
// enqueue returns immediately; the command graph overlaps the transfers
// and the kernel across the cluster while the host keeps working. The
// only HaoCL-specific lines are the two binding calls at the top of
// main() that stand in for pointing the OpenCL loader at the cluster
// configuration file.
//
// Build & run:  ./build/example_quickstart
#include <cstdio>
#include <vector>

#include "api/hao_cl.h"
#include "api/runtime_binding.h"
#include "workloads/workload.h"

namespace {

const char* kVectorAddSource = R"(
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, int n) {
  int i = get_global_id(0);
  if (i < n) c[i] = a[i] + b[i];
}
)";

#define CHECK_CL(expr)                                               \
  do {                                                               \
    cl_int _err = (expr);                                            \
    if (_err != CL_SUCCESS) {                                        \
      std::fprintf(stderr, "%s failed: %d\n", #expr, _err);          \
      return 1;                                                      \
    }                                                                \
  } while (0)

}  // namespace

int main() {
  // --- HaoCL setup: a 4-GPU + 2-FPGA cluster inside this process. -------
  haocl::workloads::RegisterAllNativeKernels();
  haocl::host::SimCluster::Shape shape;
  shape.gpu_nodes = 4;
  shape.fpga_nodes = 2;
  haocl::host::RuntimeOptions options;
  // The virtual "HaoCL Cluster" device needs an automatic policy; the
  // heterogeneity-aware scheduler places each kernel by its cost model.
  options.scheduler = "hetero";
  haocl::Status bound = haocl::api::BindSimCluster(shape, options);
  if (!bound.ok()) {
    std::fprintf(stderr, "cluster bind failed: %s\n",
                 bound.ToString().c_str());
    return 1;
  }

  // --- From here on: plain OpenCL. ---------------------------------------
  cl_platform_id platform;
  CHECK_CL(clGetPlatformIDs(1, &platform, nullptr));
  char platform_name[64];
  CHECK_CL(clGetPlatformInfo(platform, CL_PLATFORM_NAME,
                             sizeof(platform_name), platform_name, nullptr));

  cl_uint num_devices = 0;
  CHECK_CL(clGetDeviceIDs(platform, CL_DEVICE_TYPE_ALL, 0, nullptr,
                          &num_devices));
  std::vector<cl_device_id> devices(num_devices);
  CHECK_CL(clGetDeviceIDs(platform, CL_DEVICE_TYPE_ALL, num_devices,
                          devices.data(), nullptr));
  std::printf("platform: %s, %u devices\n", platform_name, num_devices);
  for (cl_device_id device : devices) {
    char name[128];
    CHECK_CL(clGetDeviceInfo(device, CL_DEVICE_NAME, sizeof(name), name,
                             nullptr));
    std::printf("  - %s\n", name);
  }

  cl_device_id device = devices[0];  // The virtual cluster device.
  cl_int err;
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  CHECK_CL(err);
  cl_command_queue queue =
      clCreateCommandQueue(context, device, CL_QUEUE_PROFILING_ENABLE, &err);
  CHECK_CL(err);

  const int n = 1 << 16;
  std::vector<float> a(n), b(n), c(n);
  for (int i = 0; i < n; ++i) {
    a[i] = 0.5f * static_cast<float>(i);
    b[i] = 2.0f * static_cast<float>(i);
  }

  cl_mem a_mem = clCreateBuffer(context, CL_MEM_READ_ONLY, n * sizeof(float),
                                nullptr, &err);
  CHECK_CL(err);
  cl_mem b_mem = clCreateBuffer(context, CL_MEM_READ_ONLY, n * sizeof(float),
                                nullptr, &err);
  CHECK_CL(err);
  cl_mem c_mem = clCreateBuffer(context, CL_MEM_WRITE_ONLY, n * sizeof(float),
                                nullptr, &err);
  CHECK_CL(err);

  cl_program program =
      clCreateProgramWithSource(context, 1, &kVectorAddSource, nullptr, &err);
  CHECK_CL(err);
  CHECK_CL(clBuildProgram(program, 1, &device, "", nullptr, nullptr));
  cl_kernel kernel = clCreateKernel(program, "vadd", &err);
  CHECK_CL(err);

  CHECK_CL(clSetKernelArg(kernel, 0, sizeof(cl_mem), &a_mem));
  CHECK_CL(clSetKernelArg(kernel, 1, sizeof(cl_mem), &b_mem));
  CHECK_CL(clSetKernelArg(kernel, 2, sizeof(cl_mem), &c_mem));
  CHECK_CL(clSetKernelArg(kernel, 3, sizeof(int), &n));

  // Event-chained asynchronous pipeline: every enqueue is non-blocking;
  // the wait lists express the dataflow (writes -> kernel -> read) and the
  // command graph runs it while the host thread is free to do other work.
  const size_t global = n;
  cl_event writes[2];
  cl_event kernel_done;
  cl_event read_done;
  CHECK_CL(clEnqueueWriteBuffer(queue, a_mem, CL_FALSE, 0, n * sizeof(float),
                                a.data(), 0, nullptr, &writes[0]));
  CHECK_CL(clEnqueueWriteBuffer(queue, b_mem, CL_FALSE, 0, n * sizeof(float),
                                b.data(), 0, nullptr, &writes[1]));
  CHECK_CL(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global, nullptr,
                                  2, writes, &kernel_done));
  CHECK_CL(clEnqueueReadBuffer(queue, c_mem, CL_FALSE, 0, n * sizeof(float),
                               c.data(), 1, &kernel_done, &read_done));

  // The whole pipeline may still be in flight right now; one wait drains
  // it (clFinish(queue) would too).
  CHECK_CL(clWaitForEvents(1, &read_done));

  int bad = 0;
  for (int i = 0; i < n; ++i) {
    if (c[i] != a[i] + b[i]) ++bad;
  }
  cl_ulong queued_ns = 0;
  cl_ulong submit_ns = 0;
  cl_ulong start_ns = 0;
  cl_ulong end_ns = 0;
  CHECK_CL(clGetEventProfilingInfo(kernel_done, CL_PROFILING_COMMAND_QUEUED,
                                   sizeof(queued_ns), &queued_ns, nullptr));
  CHECK_CL(clGetEventProfilingInfo(kernel_done, CL_PROFILING_COMMAND_SUBMIT,
                                   sizeof(submit_ns), &submit_ns, nullptr));
  CHECK_CL(clGetEventProfilingInfo(kernel_done, CL_PROFILING_COMMAND_START,
                                   sizeof(start_ns), &start_ns, nullptr));
  CHECK_CL(clGetEventProfilingInfo(kernel_done, CL_PROFILING_COMMAND_END,
                                   sizeof(end_ns), &end_ns, nullptr));

  std::printf("vadd over %d elements: %s (modeled kernel time %.1f us)\n", n,
              bad == 0 ? "PASSED" : "FAILED",
              static_cast<double>(end_ns - start_ns) / 1e3);
  std::printf("kernel lifecycle (virtual ns): queued=%llu submit=%llu "
              "start=%llu end=%llu\n",
              static_cast<unsigned long long>(queued_ns),
              static_cast<unsigned long long>(submit_ns),
              static_cast<unsigned long long>(start_ns),
              static_cast<unsigned long long>(end_ns));

  for (cl_event e : {writes[0], writes[1], kernel_done, read_done}) {
    clReleaseEvent(e);
  }
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  clReleaseMemObject(a_mem);
  clReleaseMemObject(b_mem);
  clReleaseMemObject(c_mem);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);
  haocl::api::UnbindRuntime();
  return bad == 0 ? 0 : 1;
}
