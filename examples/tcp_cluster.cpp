// Real-sockets deployment: the same stack over genuine TCP connections.
//
// By default runs a self-contained demo: NMP daemons listen on real
// 127.0.0.1 ports (as separate threads standing in for separate machines),
// the host dials them exactly as it would across a rack, and a kernel
// round-trips through the loopback network.
//
// To run as two genuine OS processes:
//   terminal 1:  ./build/examples/tcp_cluster --node gpu0 gpu 9101
//   terminal 2:  ./build/examples/tcp_cluster --host 127.0.0.1 9101
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/sync.h"
#include "host/cluster_runtime.h"
#include "net/tcp_transport.h"
#include "nmp/node_server.h"
#include "workloads/workload.h"

namespace {

int RunNode(const std::string& name, const std::string& type_text,
            std::uint16_t port) {
  auto type = haocl::ParseNodeType(type_text);
  if (!type.ok()) {
    std::fprintf(stderr, "bad node type %s\n", type_text.c_str());
    return 1;
  }
  auto server = haocl::nmp::NodeServer::Create(name, *type);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  haocl::net::TcpListener listener(port);
  haocl::Status started = listener.Start(
      [&server](haocl::net::ConnectionPtr connection) {
        (*server)->Serve(std::move(connection));
      });
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("NMP '%s' (%s) listening on port %u; ctrl-C to stop\n",
              name.c_str(), type_text.c_str(), listener.port());
  for (;;) {
    std::this_thread::sleep_for(std::chrono::seconds(3600));
  }
}

int RunHost(const std::vector<std::pair<std::string, std::uint16_t>>& nodes) {
  std::vector<haocl::net::ConnectionPtr> connections;
  for (const auto& [address, port] : nodes) {
    auto connection = haocl::net::TcpConnect(address, port);
    if (!connection.ok()) {
      std::fprintf(stderr, "dial %s:%u: %s\n", address.c_str(), port,
                   connection.status().ToString().c_str());
      return 1;
    }
    connections.push_back(*std::move(connection));
  }
  auto runtime = haocl::host::ClusterRuntime::Connect(std::move(connections));
  if (!runtime.ok()) {
    std::fprintf(stderr, "%s\n", runtime.status().ToString().c_str());
    return 1;
  }
  std::printf("connected; device table:\n");
  for (const auto& device : (*runtime)->devices()) {
    std::printf("  %s: %s (%.0f GFLOPs)\n", device.name.c_str(),
                device.model.c_str(), device.compute_gflops);
  }

  std::vector<std::size_t> node_ids;
  for (std::size_t i = 0; i < (*runtime)->devices().size(); ++i) {
    node_ids.push_back(i);
  }
  auto workload = haocl::workloads::MakeMatrixMul();
  auto report = workload->Run(**runtime, node_ids, 0.1);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("MatrixMul over TCP: %s, %llu bytes moved over real sockets\n",
              report->verified ? "verified" : "DIVERGED",
              static_cast<unsigned long long>(report->wire_bytes));
  (*runtime)->Disconnect();
  return report->verified ? 0 : 1;
}

int RunSelfContainedDemo() {
  haocl::workloads::RegisterAllNativeKernels();
  // Three daemons on real loopback ports (threads standing in for hosts).
  struct NodeSpec {
    const char* name;
    haocl::NodeType type;
  };
  const NodeSpec specs[] = {{"gpu0", haocl::NodeType::kGpu},
                            {"gpu1", haocl::NodeType::kGpu},
                            {"fpga0", haocl::NodeType::kFpga}};
  std::vector<std::unique_ptr<haocl::nmp::NodeServer>> servers;
  std::vector<std::unique_ptr<haocl::net::TcpListener>> listeners;
  std::vector<std::pair<std::string, std::uint16_t>> endpoints;
  for (const NodeSpec& spec : specs) {
    auto server = haocl::nmp::NodeServer::Create(spec.name, spec.type);
    if (!server.ok()) return 1;
    auto listener = std::make_unique<haocl::net::TcpListener>(0);
    haocl::nmp::NodeServer* raw = server->get();
    if (!listener
             ->Start([raw](haocl::net::ConnectionPtr connection) {
               raw->Serve(std::move(connection));
             })
             .ok()) {
      return 1;
    }
    std::printf("spawned NMP '%s' on 127.0.0.1:%u\n", spec.name,
                listener->port());
    endpoints.emplace_back("127.0.0.1", listener->port());
    servers.push_back(*std::move(server));
    listeners.push_back(std::move(listener));
  }
  const int rc = RunHost(endpoints);
  for (auto& server : servers) server->Shutdown();
  for (auto& listener : listeners) listener->Stop();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  haocl::workloads::RegisterAllNativeKernels();
  if (argc >= 5 && std::strcmp(argv[1], "--node") == 0) {
    return RunNode(argv[2], argv[3],
                   static_cast<std::uint16_t>(std::atoi(argv[4])));
  }
  if (argc >= 4 && std::strcmp(argv[1], "--host") == 0) {
    std::vector<std::pair<std::string, std::uint16_t>> nodes;
    for (int i = 2; i + 1 < argc; i += 2) {
      nodes.emplace_back(argv[i],
                         static_cast<std::uint16_t>(std::atoi(argv[i + 1])));
    }
    return RunHost(nodes);
  }
  return RunSelfContainedDemo();
}
