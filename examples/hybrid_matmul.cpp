// Hybrid-cluster MatrixMul via placement plans (the paper's heterogeneity
// scenario, §IV-C, co-executed EngineCL-style).
//
// One matmul launch over the WHOLE matrix — no manual per-device tiling.
// The a and c buffers carry kPartitionedDim0 annotations (one matrix row
// per dim-0 global index), so the "hetero_split" policy shards the single
// launch across every node in the cluster, sizing each node's row block by
// the cost model's predicted speed. The caller still sees one command
// handle and one aggregated LaunchResult; per-shard placements come back
// through LaunchShardsOf.
//
// Usage: ./build/example_hybrid_matmul
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "host/sim_cluster.h"
#include "workloads/workload.h"

namespace {

constexpr int kN = 192;  // Whole-matrix dimension.

constexpr char kSource[] = R"(
__kernel void matmul(__global const float* a,
                     __global const float* b,
                     __global float* c,
                     int n) {
  int row = get_global_id(0);
  int col = get_global_id(1);
  if (row >= n || col >= n) return;
  float acc = 0.0f;
  for (int k = 0; k < n; k++) {
    acc += a[row * n + k] * b[k * n + col];
  }
  c[row * n + col] = acc;
}
)";

struct RunOutcome {
  double virtual_seconds = 0.0;
  std::vector<float> c;
  std::vector<std::size_t> shard_nodes;
};

bool RunOnce(haocl::host::SimCluster::Shape shape, const char* policy,
             const std::vector<float>& a, const std::vector<float>& b,
             RunOutcome* out) {
  using namespace haocl;
  // Fresh cluster per run: an A/B comparison must not leak the previous
  // policy's modeled backlog into this one's scheduling decisions.
  auto cluster = host::SimCluster::Create(shape);
  if (!cluster.ok()) return false;
  auto& runtime = (*cluster)->runtime();
  if (!runtime.SetScheduler(policy).ok()) return false;
  runtime.timeline().Reset();
  // Project timings to the paper's N=10000 while executing kN: transfer
  // scales with N^2, compute with N^3, so the modeled run is
  // compute-dominated the way the real experiment is.
  const double ratio = 10000.0 / kN;
  runtime.timeline().SetAmplification(ratio * ratio, ratio * ratio * ratio);

  auto program = runtime.BuildProgram(kSource);
  auto a_buf = runtime.CreateBuffer(a.size() * 4);
  auto b_buf = runtime.CreateBuffer(b.size() * 4);
  auto c_buf = runtime.CreateBuffer(a.size() * 4);
  if (!program.ok() || !a_buf.ok() || !b_buf.ok() || !c_buf.ok()) {
    return false;
  }
  if (!runtime.WriteBuffer(*a_buf, 0, a.data(), a.size() * 4).ok() ||
      !runtime.WriteBuffer(*b_buf, 0, b.data(), b.size() * 4).ok()) {
    return false;
  }

  host::ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "matmul";
  const std::uint64_t row_bytes = static_cast<std::uint64_t>(kN) * 4;
  spec.args = {host::KernelArgValue::PartitionedBuffer(*a_buf, row_bytes),
               host::KernelArgValue::Buffer(*b_buf),
               host::KernelArgValue::PartitionedBuffer(*c_buf, row_bytes),
               host::KernelArgValue::Scalar<std::int32_t>(kN)};
  spec.work_dim = 2;
  spec.global[0] = kN;  // Rows: the dimension placement plans shard.
  spec.global[1] = kN;
  sim::KernelCost cost;
  cost.flops = 2.0 * kN * static_cast<double>(kN) * kN;
  cost.bytes = cost.flops * 4.0;
  cost.work_items = static_cast<std::uint64_t>(kN) * kN;
  spec.cost_hint = cost;

  auto handle = runtime.SubmitLaunch(spec);
  if (!handle.ok()) return false;
  if (!runtime.Wait(*handle).ok()) return false;

  auto result = runtime.LaunchResultOf(*handle);
  auto shards = runtime.LaunchShardsOf(*handle);
  if (!result.ok() || !shards.ok()) return false;
  out->virtual_seconds = result->virtual_completion;
  out->shard_nodes.clear();
  for (const auto& shard : *shards) {
    auto r = runtime.LaunchResultOf(shard);
    if (!r.ok()) return false;
    out->shard_nodes.push_back(r->node);
  }
  (void)runtime.ReleaseCommand(*handle);

  out->c.assign(static_cast<std::size_t>(kN) * kN, 0.0f);
  if (!runtime.ReadBuffer(*c_buf, 0, out->c.data(), out->c.size() * 4)
           .ok()) {
    return false;
  }
  (void)runtime.ReleaseBuffer(*a_buf);
  (void)runtime.ReleaseBuffer(*b_buf);
  (void)runtime.ReleaseBuffer(*c_buf);
  (void)runtime.ReleaseProgram(*program);
  return true;
}

}  // namespace

int main() {
  haocl::workloads::RegisterAllNativeKernels();

  std::mt19937 rng(42);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> a(static_cast<std::size_t>(kN) * kN);
  std::vector<float> b(a.size());
  for (auto& v : a) v = dist(rng);
  for (auto& v : b) v = dist(rng);

  struct Shape {
    const char* label;
    haocl::host::SimCluster::Shape shape;
  };
  const Shape shapes[] = {
      {"1 GPU", {.gpu_nodes = 1}},
      {"1 GPU + 1 CPU", {.gpu_nodes = 1, .cpu_nodes = 1}},
      {"2 GPU + 1 CPU", {.gpu_nodes = 2, .cpu_nodes = 1}},
      {"2 GPU + 2 FPGA", {.gpu_nodes = 2, .fpga_nodes = 2}},
  };

  std::printf("MatrixMul co-execution: ONE launch, partitioned by the\n");
  std::printf("hetero_split placement plan (vs best single-node hetero)\n\n");
  std::printf("%-16s %14s %14s %9s %s\n", "cluster", "1-node(s)",
              "co-exec(s)", "speedup", "match");

  for (const Shape& shape : shapes) {
    RunOutcome single;
    RunOutcome split;
    if (!RunOnce(shape.shape, "hetero", a, b, &single) ||
        !RunOnce(shape.shape, "hetero_split", a, b, &split)) {
      std::fprintf(stderr, "%s: run failed\n", shape.label);
      return 1;
    }
    const bool identical = single.c == split.c;
    std::printf("%-16s %14.3f %14.3f %8.2fx %s  (%zu shard%s)\n",
                shape.label, single.virtual_seconds, split.virtual_seconds,
                single.virtual_seconds / split.virtual_seconds,
                identical ? "[bit-identical]" : "[DIVERGED]",
                split.shard_nodes.size(),
                split.shard_nodes.size() == 1 ? "" : "s");
    if (!identical) return 1;
  }
  return 0;
}
