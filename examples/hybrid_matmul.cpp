// Hybrid-cluster MatrixMul: the paper's heterogeneity scenario (§IV-C).
//
// Runs the MatrixMul workload on clusters of growing size and mixed
// GPU/FPGA composition, under a selectable scheduling policy, and prints
// the virtual-time report: makespan, phase breakdown, energy. The same
// kernel runs everywhere; each device just processes a different data
// portion — exactly the paper's description.
//
// Usage: ./build/examples/hybrid_matmul [policy]
//        policy in {user, roundrobin, leastloaded, hetero, power}
#include <cstdio>
#include <string>

#include "host/sim_cluster.h"
#include "workloads/workload.h"

int main(int argc, char** argv) {
  const std::string policy = argc > 1 ? argv[1] : "hetero";
  haocl::workloads::RegisterAllNativeKernels();

  struct Shape {
    const char* label;
    std::size_t gpus;
    std::size_t fpgas;
  };
  const Shape shapes[] = {
      {"1 GPU", 1, 0},       {"2 GPU", 2, 0},      {"4 GPU", 4, 0},
      {"2 GPU + 2 FPGA", 2, 2}, {"4 GPU + 4 FPGA", 4, 4},
  };

  std::printf("MatrixMul on hybrid clusters (policy = %s)\n", policy.c_str());
  std::printf("%-18s %12s %12s %12s %12s %10s\n", "cluster", "makespan(s)",
              "create(s)", "transfer(s)", "compute(s)", "energy(J)");

  // Project timings to the paper's N=10000 while executing N=256.
  const double ratio = 10000.0 / 256.0;

  for (const Shape& shape : shapes) {
    haocl::host::RuntimeOptions options;
    options.scheduler = "user";  // Workload partitions explicitly.
    auto cluster = haocl::host::SimCluster::Create(
        {.gpu_nodes = shape.gpus, .fpga_nodes = shape.fpgas}, options);
    if (!cluster.ok()) {
      std::fprintf(stderr, "cluster failed: %s\n",
                   cluster.status().ToString().c_str());
      return 1;
    }
    auto& runtime = (*cluster)->runtime();
    if (!runtime.SetScheduler(policy).ok()) {
      std::fprintf(stderr, "unknown policy %s\n", policy.c_str());
      return 1;
    }
    runtime.timeline().SetAmplification(ratio * ratio, ratio * ratio * ratio);

    std::vector<std::size_t> nodes;
    for (std::size_t i = 0; i < shape.gpus + shape.fpgas; ++i) {
      nodes.push_back(i);
    }
    auto workload = haocl::workloads::MakeMatrixMul();
    auto report = workload->Run(runtime, nodes, 1.0);
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", shape.label,
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%-18s %12.2f %12.2f %12.2f %12.2f %10.0f  %s\n", shape.label,
                report->virtual_seconds, report->data_create_seconds,
                report->data_transfer_seconds, report->compute_seconds,
                report->energy_joules,
                report->verified ? "[verified]" : "[NUMERICS DIVERGED]");
  }
  return 0;
}
