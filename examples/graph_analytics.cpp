// Graph analytics on a cluster: distributed BFS (the paper's GP workload).
//
// Demonstrates the frontier-exchange pattern across node counts, the
// runtime resource monitor, and why communication-bound applications scale
// worse than compute-bound ones — the behaviour visible in Fig. 2.
//
// Usage: ./build/examples/graph_analytics
#include <cstdio>

#include "host/sim_cluster.h"
#include "workloads/workload.h"

int main() {
  haocl::workloads::RegisterAllNativeKernels();
  std::printf("Distributed BFS, frontier exchange per level\n");
  std::printf("%8s %12s %12s %12s %14s\n", "nodes", "makespan(s)",
              "transfer(s)", "compute(s)", "wire bytes");

  double single_node = 0.0;
  for (std::size_t n : {1, 2, 4, 8}) {
    auto cluster = haocl::host::SimCluster::Create({.gpu_nodes = n});
    if (!cluster.ok()) {
      std::fprintf(stderr, "%s\n", cluster.status().ToString().c_str());
      return 1;
    }
    auto& runtime = (*cluster)->runtime();
    // Model the paper-scale 240 MB graph while traversing a smaller one.
    runtime.timeline().SetAmplification(64.0, 64.0);

    std::vector<std::size_t> nodes;
    for (std::size_t i = 0; i < n; ++i) nodes.push_back(i);
    auto workload = haocl::workloads::MakeBfs();
    auto report = workload->Run(runtime, nodes, 0.5);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    if (n == 1) single_node = report->virtual_seconds;
    std::printf("%8zu %12.3f %12.3f %12.3f %14llu  speedup %.2fx %s\n", n,
                report->virtual_seconds, report->data_transfer_seconds,
                report->compute_seconds,
                static_cast<unsigned long long>(report->wire_bytes),
                single_node / report->virtual_seconds,
                report->verified ? "[verified]" : "[DIVERGED]");

    // The monitor view the scheduler would consult.
    auto view = runtime.QueryClusterView();
    if (view.ok()) {
      std::printf("         monitor:");
      for (const auto& node : view->nodes) {
        std::printf(" %s=%llu", node.name.c_str(),
                    static_cast<unsigned long long>(node.kernels_executed));
      }
      std::printf(" kernels\n");
    }
  }
  std::printf(
      "\nNote: BFS replicates the graph and exchanges full frontiers per\n"
      "level, so scaling saturates early — the communication-bound corner\n"
      "of Fig. 2, in contrast to MatrixMul/CFD.\n");
  return 0;
}
