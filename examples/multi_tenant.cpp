// Multi-tenant cluster: two user sessions sharing the same device nodes —
// the capability the paper calls out as missing from SnuCL ("their lack of
// multi-user support ... prohibit the full utilization of the devices").
//
// Session A runs SpMV while session B runs kNN against the very same NMP
// daemons, CONCURRENTLY on two threads, so the node brokers actually
// arbitrate between live tenants: each node holds one shared memory
// ledger and one launch gate for both sessions. Afterwards the brokers'
// fairness stats show how the contended capacity was split.
//
// Usage: ./build/example_multi_tenant
#include <chrono>
#include <cstdio>
#include <thread>

#include "host/sim_cluster.h"
#include "workloads/workload.h"

int main() {
  haocl::workloads::RegisterAllNativeKernels();

  haocl::host::RuntimeOptions tenant_a;
  tenant_a.session_id = 1;
  tenant_a.tenant_name = "tenant-a";
  tenant_a.tenant_weight = 1.0;
  auto cluster = haocl::host::SimCluster::Create(
      {.gpu_nodes = 3, .fpga_nodes = 1}, tenant_a);
  if (!cluster.ok()) {
    std::fprintf(stderr, "%s\n", cluster.status().ToString().c_str());
    return 1;
  }

  haocl::host::RuntimeOptions tenant_b;
  tenant_b.session_id = 2;
  tenant_b.host_name = "tenant-b";
  tenant_b.tenant_name = "tenant-b";
  tenant_b.tenant_weight = 1.0;
  auto second = (*cluster)->ConnectSecondSession(tenant_b);
  if (!second.ok()) {
    std::fprintf(stderr, "%s\n", second.status().ToString().c_str());
    return 1;
  }

  const std::vector<std::size_t> all_nodes = {0, 1, 2, 3};

  // Both tenants run at the same time; the per-node brokers serialize
  // kernel slots between them and budget device memory jointly.
  struct TenantRun {
    haocl::Expected<haocl::workloads::RunReport> report =
        haocl::Status(haocl::ErrorCode::kInvalidValue, "did not run");
    double wall_seconds = 0.0;
  };
  TenantRun run_a;
  TenantRun run_b;
  auto timed = [](haocl::workloads::Workload& workload,
                  haocl::host::ClusterRuntime& runtime,
                  const std::vector<std::size_t>& nodes, TenantRun* out) {
    const auto start = std::chrono::steady_clock::now();
    out->report = workload.Run(runtime, nodes, 0.2);
    out->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  };
  auto spmv = haocl::workloads::MakeSpmv();
  auto knn = haocl::workloads::MakeKnn();
  std::thread thread_a(timed, std::ref(*spmv), std::ref((*cluster)->runtime()),
                       std::ref(all_nodes), &run_a);
  std::thread thread_b(timed, std::ref(*knn), std::ref(**second),
                       std::ref(all_nodes), &run_b);
  thread_a.join();
  thread_b.join();
  if (!run_a.report.ok() || !run_b.report.ok()) {
    std::fprintf(stderr, "tenant run failed: %s / %s\n",
                 run_a.report.status().ToString().c_str(),
                 run_b.report.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "tenant A (SpMV): %s, makespan %.4fs modeled, %.3fs wall (contended)\n",
      run_a.report->verified ? "verified" : "DIVERGED",
      run_a.report->virtual_seconds, run_a.wall_seconds);
  std::printf(
      "tenant B (kNN):  %s, makespan %.4fs modeled, %.3fs wall (contended)\n",
      run_b.report->verified ? "verified" : "DIVERGED",
      run_b.report->virtual_seconds, run_b.wall_seconds);

  // The brokers saw both tenants: per-node fairness stats (who was
  // admitted, served, or backpressured on each shared device).
  std::printf("\nper-node broker stats (tenant: served launches / modeled"
              " seconds / resident bytes)\n");
  for (std::size_t i = 0; i < (*cluster)->node_count(); ++i) {
    const auto& server = (*cluster)->server(i);
    std::printf("  %-6s", server.name().c_str());
    for (const auto& tenant : server.broker().AllTenants()) {
      std::printf("  %s: %llu / %.4fs / %llu", tenant.name.c_str(),
                  static_cast<unsigned long long>(tenant.kernels_completed),
                  tenant.served_seconds,
                  static_cast<unsigned long long>(tenant.resident_bytes));
    }
    std::printf("\n");
  }

  (*second)->Disconnect();
  return run_a.report->verified && run_b.report->verified ? 0 : 1;
}
