// Multi-tenant cluster: two user sessions sharing the same device nodes —
// the capability the paper calls out as missing from SnuCL ("their lack of
// multi-user support ... prohibit the full utilization of the devices").
//
// Session A runs SpMV while session B runs kNN against the very same NMP
// daemons; each session's buffers, programs and results are isolated by
// the session id every message carries.
//
// Usage: ./build/examples/multi_tenant
#include <cstdio>

#include "host/sim_cluster.h"
#include "workloads/workload.h"

int main() {
  haocl::workloads::RegisterAllNativeKernels();

  auto cluster = haocl::host::SimCluster::Create(
      {.gpu_nodes = 3, .fpga_nodes = 1});
  if (!cluster.ok()) {
    std::fprintf(stderr, "%s\n", cluster.status().ToString().c_str());
    return 1;
  }

  // Session A = the cluster's default runtime (session id 1);
  // Session B = a second host connection with its own id.
  haocl::host::RuntimeOptions tenant_b;
  tenant_b.session_id = 2;
  tenant_b.host_name = "tenant-b";
  auto second = (*cluster)->ConnectSecondSession(tenant_b);
  if (!second.ok()) {
    std::fprintf(stderr, "%s\n", second.status().ToString().c_str());
    return 1;
  }

  const std::vector<std::size_t> all_nodes = {0, 1, 2, 3};

  auto spmv = haocl::workloads::MakeSpmv();
  auto knn = haocl::workloads::MakeKnn();
  auto report_a = spmv->Run((*cluster)->runtime(), all_nodes, 0.2);
  auto report_b = knn->Run(**second, all_nodes, 0.2);
  if (!report_a.ok() || !report_b.ok()) {
    std::fprintf(stderr, "tenant run failed\n");
    return 1;
  }

  std::printf("tenant A (SpMV): %s, makespan %.4fs, %llu wire bytes\n",
              report_a->verified ? "verified" : "DIVERGED",
              report_a->virtual_seconds,
              static_cast<unsigned long long>(report_a->wire_bytes));
  std::printf("tenant B (kNN):  %s, makespan %.4fs, %llu wire bytes\n",
              report_b->verified ? "verified" : "DIVERGED",
              report_b->virtual_seconds,
              static_cast<unsigned long long>(report_b->wire_bytes));

  // The nodes served both tenants: total kernels is the sum of sessions.
  std::printf("per-node kernels served (both tenants):");
  for (std::size_t i = 0; i < (*cluster)->node_count(); ++i) {
    std::printf(" %s=%llu", (*cluster)->server(i).name().c_str(),
                static_cast<unsigned long long>(
                    (*cluster)->server(i).kernels_executed()));
  }
  std::printf("\n");
  (*second)->Disconnect();
  return report_a->verified && report_b->verified ? 0 : 1;
}
