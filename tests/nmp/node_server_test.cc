// NMP protocol tests: the daemon over a raw connection — malformed frames,
// unknown message types, one-way traffic, TCP deployment, and shutdown.
#include "nmp/node_server.h"

#include <gtest/gtest.h>

#include "common/sync.h"
#include "net/protocol.h"
#include "net/rpc.h"
#include "net/sim_transport.h"
#include "net/tcp_transport.h"

namespace haocl::nmp {
namespace {

using net::Message;
using net::MsgType;

class NodeServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto server = NodeServer::Create("gpu0", NodeType::kGpu);
    ASSERT_TRUE(server.ok());
    server_ = *std::move(server);
    auto [host_end, node_end] = net::CreateSimChannel();
    server_->Serve(std::move(node_end));
    client_ = std::make_unique<net::RpcClient>(std::move(host_end));
  }

  void TearDown() override {
    client_->Close();
    server_->Shutdown();
  }

  std::unique_ptr<NodeServer> server_;
  std::unique_ptr<net::RpcClient> client_;
};

TEST_F(NodeServerTest, HelloReportsDevice) {
  net::HelloRequest hello;
  hello.host_name = "test-host";
  auto reply = client_->Call(MsgType::kHelloRequest, 1, hello.Encode());
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->type, MsgType::kHelloReply);
  auto decoded = net::HelloReply::Decode(reply->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->node_name, "gpu0");
  EXPECT_EQ(decoded->device_type, NodeType::kGpu);
  EXPECT_GT(decoded->compute_gflops, 0.0);
}

TEST_F(NodeServerTest, MalformedPayloadGetsProtocolError) {
  Message bad;
  bad.type = MsgType::kCreateBuffer;
  bad.seq = 1;
  bad.payload = {1, 2};  // Too short for CreateBufferRequest.
  auto reply = client_->Call(MsgType::kCreateBuffer, 1, bad.payload);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->type, MsgType::kStatusReply);
  auto status = net::StatusReply::Decode(reply->payload);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->ToStatus().code(), ErrorCode::kProtocolError);
}

TEST_F(NodeServerTest, UnknownMessageTypeRejected) {
  auto reply = client_->Call(static_cast<MsgType>(999), 1, {});
  ASSERT_TRUE(reply.ok());
  auto status = net::StatusReply::Decode(reply->payload);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->ToStatus().code(), ErrorCode::kProtocolError);
}

TEST_F(NodeServerTest, SessionsAreIndependent) {
  net::CreateBufferRequest create;
  create.buffer_id = 5;
  create.size = 64;
  // Session 1 creates buffer 5; creating it again in session 1 fails, but
  // session 2 may use the same id freely.
  auto r1 = client_->Call(MsgType::kCreateBuffer, 1, create.Encode());
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(net::StatusReply::Decode(r1->payload)->ToStatus().ok());
  auto r2 = client_->Call(MsgType::kCreateBuffer, 1, create.Encode());
  EXPECT_FALSE(net::StatusReply::Decode(r2->payload)->ToStatus().ok());
  auto r3 = client_->Call(MsgType::kCreateBuffer, 2, create.Encode());
  EXPECT_TRUE(net::StatusReply::Decode(r3->payload)->ToStatus().ok());

  // Closing session 2 frees its resources; the id becomes reusable.
  auto closed = client_->Call(MsgType::kCloseSession, 2, {});
  ASSERT_TRUE(closed.ok());
  auto r4 = client_->Call(MsgType::kCreateBuffer, 2, create.Encode());
  EXPECT_TRUE(net::StatusReply::Decode(r4->payload)->ToStatus().ok());
}

TEST_F(NodeServerTest, QueryLoadCounters) {
  auto reply = client_->Call(MsgType::kQueryLoad, 1, {});
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->type, MsgType::kLoadReply);
  auto load = net::LoadReply::Decode(reply->payload);
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load->kernels_executed, 0u);

  net::CreateBufferRequest create;
  create.buffer_id = 1;
  create.size = 4096;
  ASSERT_TRUE(client_->Call(MsgType::kCreateBuffer, 1, create.Encode()).ok());
  reply = client_->Call(MsgType::kQueryLoad, 1, {});
  load = net::LoadReply::Decode(reply->payload);
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load->buffers_held, 1u);
  EXPECT_EQ(load->bytes_allocated, 4096u);
}

TEST_F(NodeServerTest, OneWayMessagesGetNoReply) {
  // Notify (seq 0) must not generate a reply that would confuse the RPC
  // matcher; a subsequent call still works.
  ASSERT_TRUE(client_->Notify(MsgType::kOpenSession, 3, {}).ok());
  auto reply = client_->Call(MsgType::kQueryLoad, 3, {});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, MsgType::kLoadReply);
}

TEST(NodeServerTcpTest, FullProtocolOverRealSockets) {
  // The same daemon served over genuine TCP: the two-process deployment
  // path, in-process for testability.
  auto server = NodeServer::Create("fpga0", NodeType::kFpga);
  ASSERT_TRUE(server.ok());
  net::TcpListener listener(0);
  BlockingQueue<net::ConnectionPtr> accepted;
  ASSERT_TRUE(listener
                  .Start([&](net::ConnectionPtr c) {
                    accepted.Push(std::move(c));
                  })
                  .ok());
  auto client_conn = net::TcpConnect("127.0.0.1", listener.port());
  ASSERT_TRUE(client_conn.ok());
  auto server_conn = accepted.Pop();
  ASSERT_TRUE(server_conn.has_value());
  (*server)->Serve(*std::move(server_conn));

  net::RpcClient client(*std::move(client_conn));
  net::HelloRequest hello;
  hello.host_name = "tcp-host";
  auto reply = client.Call(MsgType::kHelloRequest, 1, hello.Encode());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto decoded = net::HelloReply::Decode(reply->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->device_type, NodeType::kFpga);

  net::CreateBufferRequest create;
  create.buffer_id = 1;
  create.size = 1024;
  auto created = client.Call(MsgType::kCreateBuffer, 1, create.Encode());
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(net::StatusReply::Decode(created->payload)->ToStatus().ok());

  net::WriteBufferRequest write;
  write.buffer_id = 1;
  write.data = std::vector<std::uint8_t>(1024, 0x5A);
  auto written = client.Call(MsgType::kWriteBuffer, 1, write.Encode());
  ASSERT_TRUE(written.ok());

  net::ReadBufferRequest read;
  read.buffer_id = 1;
  read.size = 1024;
  auto got = client.Call(MsgType::kReadBuffer, 1, read.Encode());
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->type, MsgType::kReadReply);
  EXPECT_EQ(got->payload, write.data);

  client.Close();
  (*server)->Shutdown();
  listener.Stop();
}

TEST(NodeServerLifecycleTest, ShutdownIsIdempotentAndServesMultiple) {
  auto server = NodeServer::Create("cpu0", NodeType::kCpu);
  ASSERT_TRUE(server.ok());
  auto [h1, n1] = net::CreateSimChannel();
  auto [h2, n2] = net::CreateSimChannel();
  (*server)->Serve(std::move(n1));
  (*server)->Serve(std::move(n2));
  net::RpcClient c1(std::move(h1));
  net::RpcClient c2(std::move(h2));
  net::HelloRequest hello;
  EXPECT_TRUE(c1.Call(MsgType::kHelloRequest, 1, hello.Encode()).ok());
  EXPECT_TRUE(c2.Call(MsgType::kHelloRequest, 2, hello.Encode()).ok());
  c1.Close();
  c2.Close();
  (*server)->Shutdown();
  (*server)->Shutdown();  // Second shutdown is a no-op.
}

}  // namespace
}  // namespace haocl::nmp
