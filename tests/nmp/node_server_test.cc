// NMP protocol tests: the daemon over a raw connection — malformed frames,
// unknown message types, one-way traffic, TCP deployment, and shutdown.
#include "nmp/node_server.h"

#include <gtest/gtest.h>

#include "common/sync.h"
#include "host/cluster_runtime.h"
#include "net/protocol.h"
#include "net/rpc.h"
#include "net/sim_transport.h"
#include "net/tcp_transport.h"

namespace haocl::nmp {
namespace {

using net::Message;
using net::MsgType;

class NodeServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto server = NodeServer::Create("gpu0", NodeType::kGpu);
    ASSERT_TRUE(server.ok());
    server_ = *std::move(server);
    auto [host_end, node_end] = net::CreateSimChannel();
    server_->Serve(std::move(node_end));
    client_ = std::make_unique<net::RpcClient>(std::move(host_end));
  }

  void TearDown() override {
    client_->Close();
    server_->Shutdown();
  }

  std::unique_ptr<NodeServer> server_;
  std::unique_ptr<net::RpcClient> client_;
};

TEST_F(NodeServerTest, HelloReportsDevice) {
  net::HelloRequest hello;
  hello.host_name = "test-host";
  auto reply = client_->Call(MsgType::kHelloRequest, 1, hello.Encode());
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->type, MsgType::kHelloReply);
  auto decoded = net::HelloReply::Decode(reply->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->node_name, "gpu0");
  EXPECT_EQ(decoded->device_type, NodeType::kGpu);
  EXPECT_GT(decoded->compute_gflops, 0.0);
}

TEST_F(NodeServerTest, MalformedPayloadGetsProtocolError) {
  Message bad;
  bad.type = MsgType::kCreateBuffer;
  bad.seq = 1;
  bad.payload = {1, 2};  // Too short for CreateBufferRequest.
  auto reply = client_->Call(MsgType::kCreateBuffer, 1, bad.payload);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->type, MsgType::kStatusReply);
  auto status = net::StatusReply::Decode(reply->payload);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->ToStatus().code(), ErrorCode::kProtocolError);
}

TEST_F(NodeServerTest, UnknownMessageTypeRejected) {
  auto reply = client_->Call(static_cast<MsgType>(999), 1, {});
  ASSERT_TRUE(reply.ok());
  auto status = net::StatusReply::Decode(reply->payload);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->ToStatus().code(), ErrorCode::kProtocolError);
}

TEST_F(NodeServerTest, SessionsAreIndependent) {
  net::CreateBufferRequest create;
  create.buffer_id = 5;
  create.size = 64;
  // Session 1 creates buffer 5; creating it again in session 1 fails, but
  // session 2 may use the same id freely.
  auto r1 = client_->Call(MsgType::kCreateBuffer, 1, create.Encode());
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(net::StatusReply::Decode(r1->payload)->ToStatus().ok());
  auto r2 = client_->Call(MsgType::kCreateBuffer, 1, create.Encode());
  EXPECT_FALSE(net::StatusReply::Decode(r2->payload)->ToStatus().ok());
  auto r3 = client_->Call(MsgType::kCreateBuffer, 2, create.Encode());
  EXPECT_TRUE(net::StatusReply::Decode(r3->payload)->ToStatus().ok());

  // Closing session 2 frees its resources; the id becomes reusable.
  auto closed = client_->Call(MsgType::kCloseSession, 2, {});
  ASSERT_TRUE(closed.ok());
  auto r4 = client_->Call(MsgType::kCreateBuffer, 2, create.Encode());
  EXPECT_TRUE(net::StatusReply::Decode(r4->payload)->ToStatus().ok());
}

TEST_F(NodeServerTest, QueryLoadCounters) {
  auto reply = client_->Call(MsgType::kQueryLoad, 1, {});
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->type, MsgType::kLoadReply);
  auto load = net::LoadReply::Decode(reply->payload);
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load->kernels_executed, 0u);

  net::CreateBufferRequest create;
  create.buffer_id = 1;
  create.size = 4096;
  ASSERT_TRUE(client_->Call(MsgType::kCreateBuffer, 1, create.Encode()).ok());
  reply = client_->Call(MsgType::kQueryLoad, 1, {});
  load = net::LoadReply::Decode(reply->payload);
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load->buffers_held, 1u);
  EXPECT_EQ(load->bytes_allocated, 4096u);
}

TEST_F(NodeServerTest, OneWayMessagesGetNoReply) {
  // Notify (seq 0) must not generate a reply that would confuse the RPC
  // matcher; a subsequent call still works.
  ASSERT_TRUE(client_->Notify(MsgType::kOpenSession, 3, {}).ok());
  auto reply = client_->Call(MsgType::kQueryLoad, 3, {});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, MsgType::kLoadReply);
}

TEST(NodeServerTcpTest, FullProtocolOverRealSockets) {
  // The same daemon served over genuine TCP: the two-process deployment
  // path, in-process for testability.
  auto server = NodeServer::Create("fpga0", NodeType::kFpga);
  ASSERT_TRUE(server.ok());
  net::TcpListener listener(0);
  BlockingQueue<net::ConnectionPtr> accepted;
  ASSERT_TRUE(listener
                  .Start([&](net::ConnectionPtr c) {
                    accepted.Push(std::move(c));
                  })
                  .ok());
  auto client_conn = net::TcpConnect("127.0.0.1", listener.port());
  ASSERT_TRUE(client_conn.ok());
  auto server_conn = accepted.Pop();
  ASSERT_TRUE(server_conn.has_value());
  (*server)->Serve(*std::move(server_conn));

  net::RpcClient client(*std::move(client_conn));
  net::HelloRequest hello;
  hello.host_name = "tcp-host";
  auto reply = client.Call(MsgType::kHelloRequest, 1, hello.Encode());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto decoded = net::HelloReply::Decode(reply->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->device_type, NodeType::kFpga);

  net::CreateBufferRequest create;
  create.buffer_id = 1;
  create.size = 1024;
  auto created = client.Call(MsgType::kCreateBuffer, 1, create.Encode());
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(net::StatusReply::Decode(created->payload)->ToStatus().ok());

  net::WriteBufferRequest write;
  write.buffer_id = 1;
  write.data = std::vector<std::uint8_t>(1024, 0x5A);
  auto written = client.Call(MsgType::kWriteBuffer, 1, write.Encode());
  ASSERT_TRUE(written.ok());

  net::ReadBufferRequest read;
  read.buffer_id = 1;
  read.size = 1024;
  auto got = client.Call(MsgType::kReadBuffer, 1, read.Encode());
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->type, MsgType::kReadReply);
  EXPECT_EQ(got->payload, write.data);

  client.Close();
  (*server)->Shutdown();
  listener.Stop();
}

TEST(NodeServerTcpTest, PeersDialedFromClusterConfigExchangeSlices) {
  // Two NMP daemons on real TCP sockets dial each other from the cluster
  // configuration (the multi-machine deployment path), so a host-driven
  // pull moves the payload node-to-node instead of relaying.
  auto s0 = NodeServer::Create("gpu0", NodeType::kGpu);
  auto s1 = NodeServer::Create("cpu0", NodeType::kCpu);
  ASSERT_TRUE(s0.ok() && s1.ok());
  net::TcpListener l0(0);
  net::TcpListener l1(0);
  ASSERT_TRUE(
      l0.Start([&](net::ConnectionPtr c) { (*s0)->Serve(std::move(c)); })
          .ok());
  ASSERT_TRUE(
      l1.Start([&](net::ConnectionPtr c) { (*s1)->Serve(std::move(c)); })
          .ok());
  ClusterConfig config;
  config.AddNode({"gpu0", NodeType::kGpu, "127.0.0.1", l0.port()});
  config.AddNode({"cpu0", NodeType::kCpu, "127.0.0.1", l1.port()});
  ASSERT_TRUE(ConnectPeersFromConfig(**s0, 0, config).ok());
  ASSERT_TRUE(ConnectPeersFromConfig(**s1, 1, config).ok());
  // Self index out of range is rejected.
  EXPECT_FALSE(ConnectPeersFromConfig(**s0, 5, config).ok());

  // The host connects over TCP too and drives a producer/consumer chain:
  // node 0 produces the buffer, node 1's launch prologue pulls it
  // directly over the dialed peer link.
  std::vector<net::ConnectionPtr> connections;
  for (std::uint16_t port : {l0.port(), l1.port()}) {
    auto connection = net::TcpConnect("127.0.0.1", port);
    ASSERT_TRUE(connection.ok());
    connections.push_back(*std::move(connection));
  }
  auto runtime = host::ClusterRuntime::Connect(std::move(connections), {});
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  auto program = (*runtime)->BuildProgram(R"(
    __kernel void bump(__global int* data, int n) {
      int i = get_global_id(0);
      if (i < n) data[i] = data[i] + 1;
    })");
  ASSERT_TRUE(program.ok());
  constexpr int kN = 512;
  auto buffer = (*runtime)->CreateBuffer(kN * 4);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(kN, 1);
  ASSERT_TRUE(
      (*runtime)->WriteBuffer(*buffer, 0, values.data(), kN * 4).ok());
  for (int node = 0; node < 2; ++node) {
    host::ClusterRuntime::LaunchSpec spec;
    spec.program = *program;
    spec.kernel_name = "bump";
    spec.args = {host::KernelArgValue::Buffer(*buffer),
                 host::KernelArgValue::Scalar<std::int32_t>(kN)};
    spec.global[0] = kN;
    spec.preferred_node = node;
    auto result = (*runtime)->LaunchKernel(spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  std::vector<std::int32_t> readback(kN);
  ASSERT_TRUE(
      (*runtime)->ReadBuffer(*buffer, 0, readback.data(), kN * 4).ok());
  for (std::int32_t v : readback) ASSERT_EQ(v, 3);
  // The second launch's input moved node 0 -> node 1 over the peer link:
  // real P2P payload, zero relay fallbacks.
  const host::TransferStats stats = (*runtime)->transfer_stats();
  EXPECT_EQ(stats.p2p_bytes, static_cast<std::uint64_t>(kN) * 4);
  EXPECT_EQ(stats.relay_bytes, 0u);
  EXPECT_EQ(stats.relay_transfers, 0u);

  (*runtime)->Disconnect();
  (*s0)->Shutdown();
  (*s1)->Shutdown();
  l0.Stop();
  l1.Stop();
}

TEST(NodeServerLifecycleTest, ShutdownIsIdempotentAndServesMultiple) {
  auto server = NodeServer::Create("cpu0", NodeType::kCpu);
  ASSERT_TRUE(server.ok());
  auto [h1, n1] = net::CreateSimChannel();
  auto [h2, n2] = net::CreateSimChannel();
  (*server)->Serve(std::move(n1));
  (*server)->Serve(std::move(n2));
  net::RpcClient c1(std::move(h1));
  net::RpcClient c2(std::move(h2));
  net::HelloRequest hello;
  EXPECT_TRUE(c1.Call(MsgType::kHelloRequest, 1, hello.Encode()).ok());
  EXPECT_TRUE(c2.Call(MsgType::kHelloRequest, 2, hello.Encode()).ok());
  c1.Close();
  c2.Close();
  (*server)->Shutdown();
  (*server)->Shutdown();  // Second shutdown is a no-op.
}

}  // namespace
}  // namespace haocl::nmp
