// Session churn: ~1k short-lived host sessions against one TCP daemon.
// Every Disconnect must fully drain its server-side footprint — broker
// tenant entries and per-session device-memory ledgers both back to zero —
// or a long-lived node leaks a tenant per departed user.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "host/cluster_runtime.h"
#include "net/tcp_transport.h"
#include "nmp/node_server.h"

namespace haocl::host {
namespace {

TEST(SessionChurnTest, ThousandSessionsDrainBrokerAndLedger) {
  auto server = nmp::NodeServer::Create("gpu0", NodeType::kGpu);
  ASSERT_TRUE(server.ok());
  net::TcpListener listener(0);
  ASSERT_TRUE(listener
                  .Start([&](net::ConnectionPtr conn) {
                    (*server)->Serve(std::move(conn));
                  })
                  .ok());

  constexpr int kSessions = 1000;
  constexpr std::uint64_t kBytes = 4096;
  std::vector<std::uint8_t> data(kBytes);
  std::iota(data.begin(), data.end(), 0);
  for (int i = 0; i < kSessions; ++i) {
    auto connection = net::TcpConnect("127.0.0.1", listener.port());
    ASSERT_TRUE(connection.ok()) << "session " << i;
    std::vector<net::ConnectionPtr> connections;
    connections.push_back(*std::move(connection));
    ClusterRuntime::Options options;
    options.session_id = 1000 + i;  // Distinct tenant per session.
    options.tenant_name = "churn-" + std::to_string(i);
    auto runtime = ClusterRuntime::Connect(std::move(connections), options);
    ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
    auto buffer = (*runtime)->CreateBuffer(kBytes);
    ASSERT_TRUE(buffer.ok());
    ASSERT_TRUE(
        (*runtime)->WriteBuffer(*buffer, 0, data.data(), kBytes).ok());
    if (i % 20 == 0) {
      // Every 20th session also leaves device-resident bytes in its ledger
      // slice — a footprint only a clean teardown reclaims.
      auto program = (*runtime)->BuildProgram(R"(
        __kernel void bump(__global int* data, int n) {
          int i = get_global_id(0);
          if (i < n) data[i] = data[i] + 1;
        })");
      ASSERT_TRUE(program.ok()) << program.status().ToString();
      ClusterRuntime::LaunchSpec spec;
      spec.program = *program;
      spec.kernel_name = "bump";
      spec.args = {
          KernelArgValue::PartitionedBuffer(*buffer, 4),
          KernelArgValue::Scalar<std::int32_t>(
              static_cast<std::int32_t>(kBytes / 4))};
      spec.global[0] = kBytes / 4;
      spec.preferred_node = 0;
      ASSERT_TRUE((*runtime)->LaunchKernel(spec).ok()) << "session " << i;
      EXPECT_GT((*server)->bytes_resident(), 0u);
    }
    (*runtime)->Disconnect();
  }

  // The daemon outlived 1000 tenants: nothing left in the broker, nothing
  // resident in any session ledger.
  EXPECT_EQ((*server)->broker().AllTenants().size(), 0u)
      << "broker leaked tenant entries across session churn";
  EXPECT_EQ((*server)->bytes_resident(), 0u)
      << "device ledger leaked resident bytes across session churn";

  (*server)->Shutdown();
  listener.Stop();
}

}  // namespace
}  // namespace haocl::host
