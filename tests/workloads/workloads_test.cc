// Workload end-to-end tests: every Table-I app runs distributed over the
// full stack and its numerics verify against the host reference, on
// several cluster shapes.
#include "workloads/workload.h"

#include <gtest/gtest.h>

#include "driver/native_registry.h"
#include "host/sim_cluster.h"
#include "workloads/spmv_staged.h"

namespace haocl::workloads {
namespace {

struct Case {
  const char* app;
  std::size_t gpu_nodes;
  std::size_t fpga_nodes;
};

std::unique_ptr<Workload> MakeByName(const std::string& name) {
  for (auto& w : AllWorkloads()) {
    if (w->name() == name) return std::move(w);
  }
  return nullptr;
}

class WorkloadRunTest
    : public ::testing::TestWithParam<Case> {};

TEST_P(WorkloadRunTest, RunsDistributedAndVerifies) {
  RegisterAllNativeKernels();
  const Case& c = GetParam();
  auto cluster = host::SimCluster::Create(
      {.gpu_nodes = c.gpu_nodes, .fpga_nodes = c.fpga_nodes});
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  auto workload = MakeByName(c.app);
  ASSERT_NE(workload, nullptr);

  std::vector<std::size_t> nodes;
  for (std::size_t i = 0; i < c.gpu_nodes + c.fpga_nodes; ++i) {
    nodes.push_back(i);
  }
  auto report = workload->Run((*cluster)->runtime(), nodes, /*scale=*/0.05);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verified) << c.app << " numerics diverged";
  EXPECT_GT(report->virtual_seconds, 0.0);
  EXPECT_GT(report->input_bytes, 0u);
  EXPECT_GT(report->wire_bytes, 0u);
  EXPECT_GT(report->compute_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndShapes, WorkloadRunTest,
    ::testing::Values(Case{"MatrixMul", 1, 0}, Case{"MatrixMul", 4, 0},
                      Case{"MatrixMul", 2, 2}, Case{"CFD", 1, 0},
                      Case{"CFD", 4, 0}, Case{"kNN", 1, 0}, Case{"kNN", 3, 0},
                      Case{"BFS", 1, 0}, Case{"BFS", 4, 0},
                      Case{"SpMV", 1, 0}, Case{"SpMV", 4, 0},
                      Case{"SpMV", 2, 2}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(info.param.app) + "_g" +
             std::to_string(info.param.gpu_nodes) + "_f" +
             std::to_string(info.param.fpga_nodes);
    });

// The partitioned annotations on CFD (next_state) and kNN (points/dist)
// make their launches splittable: under hetero_split one application-level
// launch co-executes across the cluster and still verifies. kNN's top-k
// stage additionally reassembles node-sliced distance buffers through
// node-to-node slice exchange.
TEST(CoExecutionTest, CfdAndKnnVerifyUnderHeteroSplit) {
  RegisterAllNativeKernels();
  for (const char* app : {"CFD", "kNN"}) {
    auto cluster = host::SimCluster::Create(
        {.gpu_nodes = 2, .fpga_nodes = 1, .cpu_nodes = 1});
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    ASSERT_TRUE((*cluster)->runtime().SetScheduler("hetero_split").ok());
    auto workload = MakeByName(app);
    ASSERT_NE(workload, nullptr);
    // One application-level block; the placement plan does the splitting.
    auto report = workload->Run((*cluster)->runtime(), {0}, /*scale=*/0.05);
    ASSERT_TRUE(report.ok()) << app << ": " << report.status().ToString();
    EXPECT_TRUE(report->verified) << app << " diverged under hetero_split";
  }
}

TEST(WorkloadCatalogTest, TableOneMetadata) {
  auto all = AllWorkloads();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0]->name(), "MatrixMul");
  EXPECT_EQ(all[1]->name(), "CFD");
  EXPECT_EQ(all[2]->name(), "kNN");
  EXPECT_EQ(all[3]->name(), "BFS");
  EXPECT_EQ(all[4]->name(), "SpMV");
  // Paper-scale sizes of Table I.
  EXPECT_EQ(all[0]->paper_input_bytes(), 760ull << 20);
  EXPECT_EQ(all[1]->paper_input_bytes(), 800ull << 20);
  EXPECT_EQ(all[2]->paper_input_bytes(), 100ull << 20);
  EXPECT_EQ(all[3]->paper_input_bytes(), 240ull << 20);
  EXPECT_EQ(all[4]->paper_input_bytes(), 1100ull << 20);
  for (const auto& w : all) {
    EXPECT_FALSE(w->description().empty());
    EXPECT_FALSE(w->kernel_source().empty());
    EXPECT_FALSE(w->kernel_names().empty());
  }
}

TEST(WorkloadCatalogTest, NativeKernelsRegisteredForEveryKernel) {
  RegisterAllNativeKernels();
  for (const auto& w : AllWorkloads()) {
    for (const std::string& kernel : w->kernel_names()) {
      EXPECT_TRUE(
          driver::NativeKernelRegistry::Instance().Contains(kernel))
          << kernel;
    }
  }
}

TEST(SpmvStagedTest, GpuPartitionFpgaComputeVerifies) {
  RegisterAllNativeKernels();
  auto cluster = host::SimCluster::Create({.gpu_nodes = 2, .fpga_nodes = 2});
  ASSERT_TRUE(cluster.ok());
  auto report = RunSpmvStaged((*cluster)->runtime(), /*gpu_nodes=*/{0, 1},
                              /*fpga_nodes=*/{2, 3}, /*scale=*/0.05);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verified);
  // Both device classes must have executed kernels.
  auto view = (*cluster)->runtime().QueryClusterView();
  ASSERT_TRUE(view.ok());
  EXPECT_GT(view->nodes[0].kernels_executed + view->nodes[1].kernels_executed,
            0u);
  EXPECT_GT(view->nodes[2].kernels_executed + view->nodes[3].kernels_executed,
            0u);
}

// Interpreted OpenCL C and the registered native binary must agree — this
// is what legitimizes the FPGA "pre-built binary" substitution. We run the
// same launch twice on CPU sessions, once with the native kernel
// unregistered (forcing the interpreter), and compare buffers bit-exactly.
TEST(NativeEquivalenceTest, MatmulInterpreterMatchesNative) {
  RegisterAllNativeKernels();
  auto& registry = driver::NativeKernelRegistry::Instance();

  auto run = [](bool use_native, std::vector<float>& c_out) {
    auto& registry = driver::NativeKernelRegistry::Instance();
    const driver::NativeKernelFn* saved =
        registry.Find("matmul_partition");
    driver::NativeKernelFn saved_fn = saved != nullptr ? *saved : nullptr;
    if (!use_native) registry.Unregister("matmul_partition");

    auto cluster = host::SimCluster::Create({.gpu_nodes = 1});
    ASSERT_TRUE(cluster.ok());
    auto workload = MakeByName("MatrixMul");
    auto& runtime = (*cluster)->runtime();
    auto program = runtime.BuildProgram(workload->kernel_source());
    ASSERT_TRUE(program.ok());
    const int n = 32;
    std::vector<float> a(n * n);
    std::vector<float> b(n * n);
    for (int i = 0; i < n * n; ++i) {
      a[i] = static_cast<float>((i * 13) % 7) * 0.5f;
      b[i] = static_cast<float>((i * 11) % 5) * 0.25f;
    }
    auto a_buf = runtime.CreateBuffer(a.size() * 4);
    auto b_buf = runtime.CreateBuffer(b.size() * 4);
    auto c_buf = runtime.CreateBuffer(a.size() * 4);
    ASSERT_TRUE(a_buf.ok() && b_buf.ok() && c_buf.ok());
    ASSERT_TRUE(runtime.WriteBuffer(*a_buf, 0, a.data(), a.size() * 4).ok());
    ASSERT_TRUE(runtime.WriteBuffer(*b_buf, 0, b.data(), b.size() * 4).ok());
    host::ClusterRuntime::LaunchSpec spec;
    spec.program = *program;
    spec.kernel_name = "matmul_partition";
    spec.args = {host::KernelArgValue::Buffer(*a_buf),
                 host::KernelArgValue::Buffer(*b_buf),
                 host::KernelArgValue::Buffer(*c_buf),
                 host::KernelArgValue::Scalar<std::int32_t>(n),
                 host::KernelArgValue::Scalar<std::int32_t>(n)};
    spec.work_dim = 2;
    spec.global[0] = n;
    spec.global[1] = n;
    spec.preferred_node = 0;
    ASSERT_TRUE(runtime.LaunchKernel(spec).ok());
    c_out.resize(n * n);
    ASSERT_TRUE(
        runtime.ReadBuffer(*c_buf, 0, c_out.data(), c_out.size() * 4).ok());

    if (!use_native && saved_fn != nullptr) {
      registry.Register("matmul_partition", saved_fn);
    }
  };

  std::vector<float> native_result;
  std::vector<float> interpreted_result;
  run(true, native_result);
  run(false, interpreted_result);
  ASSERT_EQ(native_result.size(), interpreted_result.size());
  ASSERT_TRUE(registry.Contains("matmul_partition"));  // Restored.
  for (std::size_t i = 0; i < native_result.size(); ++i) {
    ASSERT_EQ(native_result[i], interpreted_result[i]) << "at " << i;
  }
}

TEST(ScalingSanityTest, MoreNodesFasterAtPaperScale) {
  // At laptop-scale inputs MatrixMul is communication-bound on GbE and
  // extra nodes cannot help (the paper's speedups hold "when computation
  // or data size exceeds the capacity of a single node"). Project to paper
  // scale via timeline amplification: execute N=256, model N=10000
  // (transfer x ~1526, compute x ~59600).
  RegisterAllNativeKernels();
  const double size_ratio = 10000.0 / 256.0;
  double prev = 1e100;
  for (std::size_t n : {1, 2, 4}) {
    auto cluster = host::SimCluster::Create({.gpu_nodes = n});
    ASSERT_TRUE(cluster.ok());
    (*cluster)->runtime().timeline().SetAmplification(
        size_ratio * size_ratio, size_ratio * size_ratio * size_ratio);
    auto workload = MakeByName("MatrixMul");
    std::vector<std::size_t> nodes;
    for (std::size_t i = 0; i < n; ++i) nodes.push_back(i);
    auto report = workload->Run((*cluster)->runtime(), nodes, 1.0);
    ASSERT_TRUE(report.ok());
    EXPECT_LT(report->virtual_seconds, prev)
        << "scaling regressed at " << n << " nodes";
    prev = report->virtual_seconds;
  }
}

}  // namespace
}  // namespace haocl::workloads
