// Full-stack integration: host runtime -> scheduler -> backbone -> NMP ->
// driver -> compiler/VM, over the in-process transport. Covers the device
// mapping, buffer coherence protocol, remote builds, scheduled launches,
// multi-user sessions, and node-failure behaviour.
#include "host/cluster_runtime.h"

#include <gtest/gtest.h>

#include <numeric>

#include "host/sim_cluster.h"
#include "net/sim_transport.h"
#include "workloads/workload.h"

namespace haocl::host {
namespace {

constexpr char kDoubler[] = R"(
  __kernel void doubler(__global int* data, int n) {
    int i = get_global_id(0);
    if (i < n) data[i] = data[i] * 2;
  })";

constexpr char kScaleConst[] = R"(
  __kernel void scale(__global const int* in, __global int* out, int n) {
    int i = get_global_id(0);
    if (i < n) out[i] = in[i] * 3;
  })";

class ClusterRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workloads::RegisterAllNativeKernels();
    auto cluster = SimCluster::Create({.gpu_nodes = 2, .fpga_nodes = 1});
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = *std::move(cluster);
  }

  ClusterRuntime& runtime() { return cluster_->runtime(); }
  std::unique_ptr<SimCluster> cluster_;
};

TEST_F(ClusterRuntimeTest, HandshakeBuildsDeviceTable) {
  const auto& devices = runtime().devices();
  ASSERT_EQ(devices.size(), 3u);
  EXPECT_EQ(devices[0].type, NodeType::kGpu);
  EXPECT_EQ(devices[0].name, "gpu0");
  EXPECT_EQ(devices[2].type, NodeType::kFpga);
  EXPECT_EQ(devices[2].model, "Xilinx Virtex UltraScale+ VU9P");
  EXPECT_EQ(runtime().DevicesOfType(NodeType::kGpu).size(), 2u);
  EXPECT_EQ(runtime().DevicesOfType(NodeType::kFpga).size(), 1u);
}

TEST_F(ClusterRuntimeTest, BufferWriteReadRoundTrip) {
  auto buffer = runtime().CreateBuffer(1024);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::uint8_t> data(1024);
  std::iota(data.begin(), data.end(), 0);
  ASSERT_TRUE(runtime().WriteBuffer(*buffer, 0, data.data(), 1024).ok());
  std::vector<std::uint8_t> back(1024);
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, back.data(), 1024).ok());
  EXPECT_EQ(back, data);
  ASSERT_TRUE(runtime().ReleaseBuffer(*buffer).ok());
  EXPECT_FALSE(runtime().ReadBuffer(*buffer, 0, back.data(), 1).ok());
}

TEST_F(ClusterRuntimeTest, RemoteLaunchMutatesRemoteBuffer) {
  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const int n = 256;
  auto buffer = runtime().CreateBuffer(n * 4);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(n);
  std::iota(values.begin(), values.end(), 1);
  ASSERT_TRUE(
      runtime().WriteBuffer(*buffer, 0, values.data(), n * 4).ok());

  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::Buffer(*buffer),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 1;
  auto result = runtime().LaunchKernel(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->node, 1u);
  EXPECT_GT(result->modeled_seconds, 0.0);
  EXPECT_EQ(result->bytes_shipped, static_cast<std::uint64_t>(n * 4));

  // Read gathers the data back from node 1 (host copy was invalidated).
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, values.data(), n * 4).ok());
  for (int i = 0; i < n; ++i) ASSERT_EQ(values[i], 2 * (i + 1));
}

TEST_F(ClusterRuntimeTest, ConstBuffersStayValidAcrossNodes) {
  auto program = runtime().BuildProgram(kScaleConst);
  ASSERT_TRUE(program.ok());
  const int n = 128;
  auto in = runtime().CreateBuffer(n * 4);
  auto out0 = runtime().CreateBuffer(n * 4);
  auto out1 = runtime().CreateBuffer(n * 4);
  ASSERT_TRUE(in.ok() && out0.ok() && out1.ok());
  std::vector<std::int32_t> values(n, 5);
  ASSERT_TRUE(runtime().WriteBuffer(*in, 0, values.data(), n * 4).ok());

  // Launch on node 0: ships `in` there.
  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "scale";
  spec.args = {KernelArgValue::Buffer(*in), KernelArgValue::Buffer(*out0),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 0;
  auto first = runtime().LaunchKernel(spec);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->bytes_shipped, static_cast<std::uint64_t>(2 * n * 4));

  // Launch on node 1: `in` is const, so only out1 + in ship to node 1 —
  // but `in` was NOT invalidated by the first launch, so the host shadow
  // is still valid and no gather-from-node-0 is needed.
  spec.args[1] = KernelArgValue::Buffer(*out1);
  spec.preferred_node = 1;
  auto second = runtime().LaunchKernel(spec);
  ASSERT_TRUE(second.ok());

  // Re-launch on node 0: everything already valid there except out0
  // (written by launch 1 on node 0 - still valid on node 0). Zero bytes.
  spec.args[1] = KernelArgValue::Buffer(*out0);
  spec.preferred_node = 0;
  auto third = runtime().LaunchKernel(spec);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->bytes_shipped, 0u);

  std::vector<std::int32_t> got(n);
  ASSERT_TRUE(runtime().ReadBuffer(*out1, 0, got.data(), n * 4).ok());
  for (int i = 0; i < n; ++i) ASSERT_EQ(got[i], 15);
}

TEST_F(ClusterRuntimeTest, PartialWriteToRemoteOwnedBufferGathersFirst) {
  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  const int n = 64;
  auto buffer = runtime().CreateBuffer(n * 4);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(n, 10);
  ASSERT_TRUE(runtime().WriteBuffer(*buffer, 0, values.data(), n * 4).ok());

  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::Buffer(*buffer),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 0;
  ASSERT_TRUE(runtime().LaunchKernel(spec).ok());  // Buffer now = 20 on node0.

  // Partial write: must first gather the 20s, then overlay one element.
  const std::int32_t patch = 999;
  ASSERT_TRUE(runtime().WriteBuffer(*buffer, 4, &patch, 4).ok());
  std::vector<std::int32_t> got(n);
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, got.data(), n * 4).ok());
  EXPECT_EQ(got[0], 20);
  EXPECT_EQ(got[1], 999);
  EXPECT_EQ(got[2], 20);
}

TEST_F(ClusterRuntimeTest, BuildFailureSurfacesLog) {
  auto program = runtime().BuildProgram("__kernel void broken(");
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.code(), ErrorCode::kBuildProgramFailure);
  EXPECT_FALSE(program.status().message().empty());
}

TEST_F(ClusterRuntimeTest, SchedulerPolicySwitching) {
  EXPECT_EQ(runtime().scheduler_name(), "user");
  ASSERT_TRUE(runtime().SetScheduler("roundrobin").ok());
  EXPECT_EQ(runtime().scheduler_name(), "roundrobin");
  EXPECT_FALSE(runtime().SetScheduler("bogus").ok());

  // Round robin spreads launches without explicit placement.
  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  const int n = 16;
  std::vector<std::int32_t> values(n, 1);
  std::set<std::size_t> nodes_used;
  for (int i = 0; i < 6; ++i) {
    auto buffer = runtime().CreateBuffer(n * 4);
    ASSERT_TRUE(buffer.ok());
    ASSERT_TRUE(
        runtime().WriteBuffer(*buffer, 0, values.data(), n * 4).ok());
    ClusterRuntime::LaunchSpec spec;
    spec.program = *program;
    spec.kernel_name = "doubler";
    spec.args = {KernelArgValue::Buffer(*buffer),
                 KernelArgValue::Scalar<std::int32_t>(n)};
    spec.global[0] = n;
    spec.preferred_node = -1;  // Let the policy place it.
    auto result = runtime().LaunchKernel(spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    nodes_used.insert(result->node);
  }
  // "doubler" has no pre-built FPGA bitstream, so the scheduler must keep
  // it off the FPGA node and rotate over the two GPU nodes only.
  EXPECT_EQ(nodes_used, (std::set<std::size_t>{0, 1}));
}

TEST_F(ClusterRuntimeTest, MonitorReportsPerNodeCounters) {
  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  const int n = 16;
  auto buffer = runtime().CreateBuffer(n * 4);
  std::vector<std::int32_t> values(n, 1);
  ASSERT_TRUE(runtime().WriteBuffer(*buffer, 0, values.data(), n * 4).ok());
  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::Buffer(*buffer),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 1;
  ASSERT_TRUE(runtime().LaunchKernel(spec).ok());

  auto view = runtime().QueryClusterView();
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->nodes.size(), 3u);
  EXPECT_EQ(view->nodes[1].kernels_executed, 1u);
  EXPECT_EQ(view->nodes[0].kernels_executed, 0u);
  EXPECT_TRUE(view->nodes[2].alive);
}

TEST_F(ClusterRuntimeTest, MultiUserSessionsAreIsolated) {
  // Second host session against the same NMPs: same buffer ids in two
  // sessions must not collide (the paper's multi-user requirement).
  RuntimeOptions options;
  options.session_id = 2;
  auto second = cluster_->ConnectSecondSession(options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  auto b1 = runtime().CreateBuffer(16);
  auto b2 = (*second)->CreateBuffer(16);
  ASSERT_TRUE(b1.ok() && b2.ok());
  EXPECT_EQ(*b1, *b2);  // Same logical id in both sessions.

  auto program1 = runtime().BuildProgram(kDoubler);
  auto program2 = (*second)->BuildProgram(kDoubler);
  ASSERT_TRUE(program1.ok() && program2.ok());

  const std::int32_t v1 = 100;
  const std::int32_t v2 = 777;
  std::vector<std::int32_t> init1(4, v1);
  std::vector<std::int32_t> init2(4, v2);
  ASSERT_TRUE(runtime().WriteBuffer(*b1, 0, init1.data(), 16).ok());
  ASSERT_TRUE((*second)->WriteBuffer(*b2, 0, init2.data(), 16).ok());

  ClusterRuntime::LaunchSpec spec;
  spec.kernel_name = "doubler";
  spec.global[0] = 4;
  spec.preferred_node = 0;
  spec.program = *program1;
  spec.args = {KernelArgValue::Buffer(*b1),
               KernelArgValue::Scalar<std::int32_t>(4)};
  ASSERT_TRUE(runtime().LaunchKernel(spec).ok());
  spec.program = *program2;
  spec.args = {KernelArgValue::Buffer(*b2),
               KernelArgValue::Scalar<std::int32_t>(4)};
  ASSERT_TRUE((*second)->LaunchKernel(spec).ok());

  std::vector<std::int32_t> got(4);
  ASSERT_TRUE(runtime().ReadBuffer(*b1, 0, got.data(), 16).ok());
  EXPECT_EQ(got[0], 200);
  ASSERT_TRUE((*second)->ReadBuffer(*b2, 0, got.data(), 16).ok());
  EXPECT_EQ(got[0], 1554);
  (*second)->Disconnect();
}

TEST_F(ClusterRuntimeTest, VirtualTimelineAccumulatesPhases) {
  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  runtime().timeline().Reset();
  const int n = 4096;
  auto buffer = runtime().CreateBuffer(n * 4);
  std::vector<std::int32_t> values(n, 1);
  ASSERT_TRUE(runtime().WriteBuffer(*buffer, 0, values.data(), n * 4).ok());
  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::Buffer(*buffer),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 0;
  ASSERT_TRUE(runtime().LaunchKernel(spec).ok());
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, values.data(), n * 4).ok());

  const auto& phases = runtime().timeline().phases();
  EXPECT_GT(phases.Get(kPhaseDataTransfer), 0.0);  // Scatter + gather.
  EXPECT_GT(phases.Get(kPhaseCompute), 0.0);
  EXPECT_GE(runtime().timeline().Makespan(),
            phases.Get(kPhaseCompute));
  EXPECT_GT(runtime().TotalBytesSent(), static_cast<std::uint64_t>(n * 4));
}

// ---- Asynchronous Submit* surface ----------------------------------------

TEST_F(ClusterRuntimeTest, MarkerGateDefersSubmittedCommands) {
  auto buffer = runtime().CreateBuffer(16);
  ASSERT_TRUE(buffer.ok());
  auto gate = runtime().SubmitMarker();
  ASSERT_TRUE(gate.ok());

  const std::int32_t payload[4] = {7, 8, 9, 10};
  auto write = runtime().SubmitWrite(*buffer, 0, payload, 16, {*gate});
  ASSERT_TRUE(write.ok());
  // Deterministic deferral: the gate is unresolved, so the write cannot
  // leave the queued state no matter how long the dispatcher spins.
  EXPECT_EQ(*runtime().CommandStateOf(*write), CommandState::kQueued);

  ASSERT_TRUE(runtime().CompleteMarker(*gate).ok());
  ASSERT_TRUE(runtime().Wait(*write).ok());
  EXPECT_EQ(*runtime().CommandStateOf(*write), CommandState::kComplete);

  std::int32_t got[4] = {};
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, got, 16).ok());
  EXPECT_EQ(got[3], 10);
}

TEST_F(ClusterRuntimeTest, ImplicitHazardsOrderConflictingCommands) {
  // Submit write -> launch -> read with NO explicit dependencies; the
  // runtime's per-buffer hazard tracking must serialize them correctly.
  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  const int n = 64;
  auto buffer = runtime().CreateBuffer(n * 4);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(n, 21);

  auto write = runtime().SubmitWrite(*buffer, 0, values.data(), n * 4);
  ASSERT_TRUE(write.ok());
  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::Buffer(*buffer),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 0;
  auto launch = runtime().SubmitLaunch(spec);
  ASSERT_TRUE(launch.ok());
  std::vector<std::int32_t> got(n, 0);
  auto read = runtime().SubmitRead(*buffer, 0, got.data(), n * 4);
  ASSERT_TRUE(read.ok());

  ASSERT_TRUE(runtime().Wait(*read).ok());
  for (int i = 0; i < n; ++i) ASSERT_EQ(got[i], 42);

  auto result = runtime().LaunchResultOf(*launch);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->node, 0u);
  EXPECT_GT(result->modeled_seconds, 0.0);
}

TEST_F(ClusterRuntimeTest, FailedMarkerFailsDependents) {
  auto buffer = runtime().CreateBuffer(16);
  ASSERT_TRUE(buffer.ok());
  auto gate = runtime().SubmitMarker();
  ASSERT_TRUE(gate.ok());
  const std::int32_t payload[4] = {1, 2, 3, 4};
  auto write = runtime().SubmitWrite(*buffer, 0, payload, 16, {*gate});
  ASSERT_TRUE(write.ok());

  ASSERT_TRUE(runtime()
                  .CompleteMarker(*gate,
                                  Status(ErrorCode::kInternal, "aborted"))
                  .ok());
  EXPECT_EQ(runtime().Wait(*write).code(), ErrorCode::kDependencyFailed);

  // The buffer is untouched: a fresh read sees the zero-fill.
  std::int32_t got[4] = {9, 9, 9, 9};
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, got, 16).ok());
  EXPECT_EQ(got[0], 0);
}

TEST_F(ClusterRuntimeTest, SubmitValidatesAtEnqueueTime) {
  auto buffer = runtime().CreateBuffer(16);
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(runtime().SubmitWrite(*buffer, 12, "xxxxxxxx", 8).code(),
            ErrorCode::kInvalidValue);
  std::int32_t sink;
  EXPECT_EQ(runtime().SubmitRead(999, 0, &sink, 4).code(),
            ErrorCode::kInvalidMemObject);
  ClusterRuntime::LaunchSpec spec;
  spec.program = 999;
  spec.kernel_name = "nope";
  EXPECT_EQ(runtime().SubmitLaunch(spec).code(), ErrorCode::kInvalidProgram);
}

// The acceptance test for the dispatch redesign: two independent launches
// aimed at distinct nodes are IN FLIGHT CONCURRENTLY — visible both in the
// graph's peak-running watermark and in overlapping virtual-time spans.
TEST_F(ClusterRuntimeTest, IndependentLaunchesOverlapAcrossNodes) {
  constexpr char kHeavy[] = R"(
    __kernel void heavy(__global int* data, int n) {
      int i = get_global_id(0);
      int acc = 0;
      for (int k = 0; k < 2000; ++k) acc += k ^ i;
      if (i < n) data[i] = acc;
    })";
  auto program = runtime().BuildProgram(kHeavy);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const int n = 512;
  auto buffer0 = runtime().CreateBuffer(n * 4);
  auto buffer1 = runtime().CreateBuffer(n * 4);
  ASSERT_TRUE(buffer0.ok() && buffer1.ok());

  // Release both launches from one gate so they become ready on the same
  // graph tick, then let the per-node RPC pipelines race.
  auto gate = runtime().SubmitMarker();
  ASSERT_TRUE(gate.ok());
  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "heavy";
  spec.global[0] = n;
  // Analytic hint: make the modeled kernel long relative to its input
  // transfer, so concurrent dispatch must show up as overlapping spans.
  sim::KernelCost cost;
  cost.flops = 5e10;
  cost.bytes = static_cast<double>(n) * 4;
  cost.work_items = n;
  spec.cost_hint = cost;
  spec.args = {KernelArgValue::Buffer(*buffer0),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.preferred_node = 0;
  auto launch0 = runtime().SubmitLaunch(spec, {*gate});
  spec.args[0] = KernelArgValue::Buffer(*buffer1);
  spec.preferred_node = 1;
  auto launch1 = runtime().SubmitLaunch(spec, {*gate});
  ASSERT_TRUE(launch0.ok() && launch1.ok());

  ASSERT_TRUE(runtime().CompleteMarker(*gate).ok());
  ASSERT_TRUE(runtime().Wait(*launch0).ok());
  ASSERT_TRUE(runtime().Wait(*launch1).ok());

  // Both commands held workers simultaneously...
  EXPECT_GE(runtime().graph().PeakRunning(), 2u);
  // ...and their modeled kernel spans overlap on the virtual timeline
  // (distinct nodes have independent device resources).
  auto p0 = runtime().CommandProfileOf(*launch0);
  auto p1 = runtime().CommandProfileOf(*launch1);
  ASSERT_TRUE(p0.ok() && p1.ok());
  auto r0 = runtime().LaunchResultOf(*launch0);
  auto r1 = runtime().LaunchResultOf(*launch1);
  ASSERT_TRUE(r0.ok() && r1.ok());
  EXPECT_NE(r0->node, r1->node);
  const double start0 = r0->virtual_completion - r0->modeled_seconds;
  const double start1 = r1->virtual_completion - r1->modeled_seconds;
  EXPECT_LT(start0, r1->virtual_completion);
  EXPECT_LT(start1, r0->virtual_completion);

  // Nothing left in flight once everything retired.
  EXPECT_EQ(runtime().InFlightOn(0), 0u);
  EXPECT_EQ(runtime().InFlightOn(1), 0u);
}

TEST(ClusterRuntimeErrorsTest, EmptyConnectionListRejected) {
  auto runtime = ClusterRuntime::Connect({});
  EXPECT_FALSE(runtime.ok());
}

TEST(ClusterRuntimeErrorsTest, DeadNodeFailsHandshake) {
  auto [host_end, node_end] = net::CreateSimChannel();
  node_end->Start([](net::Message) { /* mute node */ });
  std::vector<net::ConnectionPtr> connections;
  connections.push_back(std::move(host_end));
  RuntimeOptions options;
  options.rpc_timeout = std::chrono::milliseconds(200);
  auto runtime = ClusterRuntime::Connect(std::move(connections), options);
  EXPECT_FALSE(runtime.ok());
  node_end->Close();
}

}  // namespace
}  // namespace haocl::host
