// Full-stack integration: host runtime -> scheduler -> backbone -> NMP ->
// driver -> compiler/VM, over the in-process transport. Covers the device
// mapping, buffer coherence protocol, remote builds, scheduled launches,
// multi-user sessions, and node-failure behaviour.
#include "host/cluster_runtime.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <random>

#include "host/sim_cluster.h"
#include "net/sim_transport.h"
#include "workloads/workload.h"

namespace haocl::host {
namespace {

constexpr char kDoubler[] = R"(
  __kernel void doubler(__global int* data, int n) {
    int i = get_global_id(0);
    if (i < n) data[i] = data[i] * 2;
  })";

constexpr char kScaleConst[] = R"(
  __kernel void scale(__global const int* in, __global int* out, int n) {
    int i = get_global_id(0);
    if (i < n) out[i] = in[i] * 3;
  })";

class ClusterRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workloads::RegisterAllNativeKernels();
    auto cluster = SimCluster::Create({.gpu_nodes = 2, .fpga_nodes = 1});
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = *std::move(cluster);
  }

  ClusterRuntime& runtime() { return cluster_->runtime(); }
  std::unique_ptr<SimCluster> cluster_;
};

TEST_F(ClusterRuntimeTest, HandshakeBuildsDeviceTable) {
  const auto& devices = runtime().devices();
  ASSERT_EQ(devices.size(), 3u);
  EXPECT_EQ(devices[0].type, NodeType::kGpu);
  EXPECT_EQ(devices[0].name, "gpu0");
  EXPECT_EQ(devices[2].type, NodeType::kFpga);
  EXPECT_EQ(devices[2].model, "Xilinx Virtex UltraScale+ VU9P");
  EXPECT_EQ(runtime().DevicesOfType(NodeType::kGpu).size(), 2u);
  EXPECT_EQ(runtime().DevicesOfType(NodeType::kFpga).size(), 1u);
}

TEST_F(ClusterRuntimeTest, BufferWriteReadRoundTrip) {
  auto buffer = runtime().CreateBuffer(1024);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::uint8_t> data(1024);
  std::iota(data.begin(), data.end(), 0);
  ASSERT_TRUE(runtime().WriteBuffer(*buffer, 0, data.data(), 1024).ok());
  std::vector<std::uint8_t> back(1024);
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, back.data(), 1024).ok());
  EXPECT_EQ(back, data);
  ASSERT_TRUE(runtime().ReleaseBuffer(*buffer).ok());
  EXPECT_FALSE(runtime().ReadBuffer(*buffer, 0, back.data(), 1).ok());
}

TEST_F(ClusterRuntimeTest, RemoteLaunchMutatesRemoteBuffer) {
  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const int n = 256;
  auto buffer = runtime().CreateBuffer(n * 4);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(n);
  std::iota(values.begin(), values.end(), 1);
  ASSERT_TRUE(
      runtime().WriteBuffer(*buffer, 0, values.data(), n * 4).ok());

  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::Buffer(*buffer),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 1;
  auto result = runtime().LaunchKernel(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->node, 1u);
  EXPECT_GT(result->modeled_seconds, 0.0);
  EXPECT_EQ(result->bytes_shipped, static_cast<std::uint64_t>(n * 4));

  // Read gathers the data back from node 1 (host copy was invalidated).
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, values.data(), n * 4).ok());
  for (int i = 0; i < n; ++i) ASSERT_EQ(values[i], 2 * (i + 1));
}

TEST_F(ClusterRuntimeTest, ConstBuffersStayValidAcrossNodes) {
  auto program = runtime().BuildProgram(kScaleConst);
  ASSERT_TRUE(program.ok());
  const int n = 128;
  auto in = runtime().CreateBuffer(n * 4);
  auto out0 = runtime().CreateBuffer(n * 4);
  auto out1 = runtime().CreateBuffer(n * 4);
  ASSERT_TRUE(in.ok() && out0.ok() && out1.ok());
  std::vector<std::int32_t> values(n, 5);
  ASSERT_TRUE(runtime().WriteBuffer(*in, 0, values.data(), n * 4).ok());

  // Launch on node 0: ships `in` there.
  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "scale";
  spec.args = {KernelArgValue::Buffer(*in), KernelArgValue::Buffer(*out0),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 0;
  auto first = runtime().LaunchKernel(spec);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->bytes_shipped, static_cast<std::uint64_t>(2 * n * 4));

  // Launch on node 1: `in` is const, so only out1 + in ship to node 1 —
  // but `in` was NOT invalidated by the first launch, so the host shadow
  // is still valid and no gather-from-node-0 is needed.
  spec.args[1] = KernelArgValue::Buffer(*out1);
  spec.preferred_node = 1;
  auto second = runtime().LaunchKernel(spec);
  ASSERT_TRUE(second.ok());

  // Re-launch on node 0: everything already valid there except out0
  // (written by launch 1 on node 0 - still valid on node 0). Zero bytes.
  spec.args[1] = KernelArgValue::Buffer(*out0);
  spec.preferred_node = 0;
  auto third = runtime().LaunchKernel(spec);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->bytes_shipped, 0u);

  std::vector<std::int32_t> got(n);
  ASSERT_TRUE(runtime().ReadBuffer(*out1, 0, got.data(), n * 4).ok());
  for (int i = 0; i < n; ++i) ASSERT_EQ(got[i], 15);
}

TEST_F(ClusterRuntimeTest, PartialWriteToRemoteOwnedBufferGathersFirst) {
  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  const int n = 64;
  auto buffer = runtime().CreateBuffer(n * 4);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(n, 10);
  ASSERT_TRUE(runtime().WriteBuffer(*buffer, 0, values.data(), n * 4).ok());

  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::Buffer(*buffer),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 0;
  ASSERT_TRUE(runtime().LaunchKernel(spec).ok());  // Buffer now = 20 on node0.

  // Partial write: must first gather the 20s, then overlay one element.
  const std::int32_t patch = 999;
  ASSERT_TRUE(runtime().WriteBuffer(*buffer, 4, &patch, 4).ok());
  std::vector<std::int32_t> got(n);
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, got.data(), n * 4).ok());
  EXPECT_EQ(got[0], 20);
  EXPECT_EQ(got[1], 999);
  EXPECT_EQ(got[2], 20);
}

TEST_F(ClusterRuntimeTest, BuildFailureSurfacesLog) {
  auto program = runtime().BuildProgram("__kernel void broken(");
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.code(), ErrorCode::kBuildProgramFailure);
  EXPECT_FALSE(program.status().message().empty());
}

TEST_F(ClusterRuntimeTest, SchedulerPolicySwitching) {
  EXPECT_EQ(runtime().scheduler_name(), "user");
  ASSERT_TRUE(runtime().SetScheduler("roundrobin").ok());
  EXPECT_EQ(runtime().scheduler_name(), "roundrobin");
  EXPECT_FALSE(runtime().SetScheduler("bogus").ok());

  // Round robin spreads launches without explicit placement.
  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  const int n = 16;
  std::vector<std::int32_t> values(n, 1);
  std::set<std::size_t> nodes_used;
  for (int i = 0; i < 6; ++i) {
    auto buffer = runtime().CreateBuffer(n * 4);
    ASSERT_TRUE(buffer.ok());
    ASSERT_TRUE(
        runtime().WriteBuffer(*buffer, 0, values.data(), n * 4).ok());
    ClusterRuntime::LaunchSpec spec;
    spec.program = *program;
    spec.kernel_name = "doubler";
    spec.args = {KernelArgValue::Buffer(*buffer),
                 KernelArgValue::Scalar<std::int32_t>(n)};
    spec.global[0] = n;
    spec.preferred_node = -1;  // Let the policy place it.
    auto result = runtime().LaunchKernel(spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    nodes_used.insert(result->node);
  }
  // "doubler" has no pre-built FPGA bitstream, so the scheduler must keep
  // it off the FPGA node and rotate over the two GPU nodes only.
  EXPECT_EQ(nodes_used, (std::set<std::size_t>{0, 1}));
}

TEST_F(ClusterRuntimeTest, MonitorReportsPerNodeCounters) {
  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  const int n = 16;
  auto buffer = runtime().CreateBuffer(n * 4);
  std::vector<std::int32_t> values(n, 1);
  ASSERT_TRUE(runtime().WriteBuffer(*buffer, 0, values.data(), n * 4).ok());
  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::Buffer(*buffer),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 1;
  ASSERT_TRUE(runtime().LaunchKernel(spec).ok());

  auto view = runtime().QueryClusterView();
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->nodes.size(), 3u);
  EXPECT_EQ(view->nodes[1].kernels_executed, 1u);
  EXPECT_EQ(view->nodes[0].kernels_executed, 0u);
  EXPECT_TRUE(view->nodes[2].alive);
}

TEST_F(ClusterRuntimeTest, MultiUserSessionsAreIsolated) {
  // Second host session against the same NMPs: same buffer ids in two
  // sessions must not collide (the paper's multi-user requirement).
  RuntimeOptions options;
  options.session_id = 2;
  auto second = cluster_->ConnectSecondSession(options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  auto b1 = runtime().CreateBuffer(16);
  auto b2 = (*second)->CreateBuffer(16);
  ASSERT_TRUE(b1.ok() && b2.ok());
  EXPECT_EQ(*b1, *b2);  // Same logical id in both sessions.

  auto program1 = runtime().BuildProgram(kDoubler);
  auto program2 = (*second)->BuildProgram(kDoubler);
  ASSERT_TRUE(program1.ok() && program2.ok());

  const std::int32_t v1 = 100;
  const std::int32_t v2 = 777;
  std::vector<std::int32_t> init1(4, v1);
  std::vector<std::int32_t> init2(4, v2);
  ASSERT_TRUE(runtime().WriteBuffer(*b1, 0, init1.data(), 16).ok());
  ASSERT_TRUE((*second)->WriteBuffer(*b2, 0, init2.data(), 16).ok());

  ClusterRuntime::LaunchSpec spec;
  spec.kernel_name = "doubler";
  spec.global[0] = 4;
  spec.preferred_node = 0;
  spec.program = *program1;
  spec.args = {KernelArgValue::Buffer(*b1),
               KernelArgValue::Scalar<std::int32_t>(4)};
  ASSERT_TRUE(runtime().LaunchKernel(spec).ok());
  spec.program = *program2;
  spec.args = {KernelArgValue::Buffer(*b2),
               KernelArgValue::Scalar<std::int32_t>(4)};
  ASSERT_TRUE((*second)->LaunchKernel(spec).ok());

  std::vector<std::int32_t> got(4);
  ASSERT_TRUE(runtime().ReadBuffer(*b1, 0, got.data(), 16).ok());
  EXPECT_EQ(got[0], 200);
  ASSERT_TRUE((*second)->ReadBuffer(*b2, 0, got.data(), 16).ok());
  EXPECT_EQ(got[0], 1554);
  (*second)->Disconnect();
}

TEST_F(ClusterRuntimeTest, VirtualTimelineAccumulatesPhases) {
  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  runtime().timeline().Reset();
  const int n = 4096;
  auto buffer = runtime().CreateBuffer(n * 4);
  std::vector<std::int32_t> values(n, 1);
  ASSERT_TRUE(runtime().WriteBuffer(*buffer, 0, values.data(), n * 4).ok());
  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::Buffer(*buffer),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 0;
  ASSERT_TRUE(runtime().LaunchKernel(spec).ok());
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, values.data(), n * 4).ok());

  const auto& phases = runtime().timeline().phases();
  EXPECT_GT(phases.Get(kPhaseDataTransfer), 0.0);  // Scatter + gather.
  EXPECT_GT(phases.Get(kPhaseCompute), 0.0);
  EXPECT_GE(runtime().timeline().Makespan(),
            phases.Get(kPhaseCompute));
  EXPECT_GT(runtime().TotalBytesSent(), static_cast<std::uint64_t>(n * 4));
}

// ---- Asynchronous Submit* surface ----------------------------------------

TEST_F(ClusterRuntimeTest, MarkerGateDefersSubmittedCommands) {
  auto buffer = runtime().CreateBuffer(16);
  ASSERT_TRUE(buffer.ok());
  auto gate = runtime().SubmitMarker();
  ASSERT_TRUE(gate.ok());

  const std::int32_t payload[4] = {7, 8, 9, 10};
  auto write = runtime().SubmitWrite(*buffer, 0, payload, 16, {*gate});
  ASSERT_TRUE(write.ok());
  // Deterministic deferral: the gate is unresolved, so the write cannot
  // leave the queued state no matter how long the dispatcher spins.
  EXPECT_EQ(*runtime().CommandStateOf(*write), CommandState::kQueued);

  ASSERT_TRUE(runtime().CompleteMarker(*gate).ok());
  ASSERT_TRUE(runtime().Wait(*write).ok());
  EXPECT_EQ(*runtime().CommandStateOf(*write), CommandState::kComplete);

  std::int32_t got[4] = {};
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, got, 16).ok());
  EXPECT_EQ(got[3], 10);
}

TEST_F(ClusterRuntimeTest, ImplicitHazardsOrderConflictingCommands) {
  // Submit write -> launch -> read with NO explicit dependencies; the
  // runtime's per-buffer hazard tracking must serialize them correctly.
  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  const int n = 64;
  auto buffer = runtime().CreateBuffer(n * 4);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(n, 21);

  auto write = runtime().SubmitWrite(*buffer, 0, values.data(), n * 4);
  ASSERT_TRUE(write.ok());
  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::Buffer(*buffer),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 0;
  auto launch = runtime().SubmitLaunch(spec);
  ASSERT_TRUE(launch.ok());
  std::vector<std::int32_t> got(n, 0);
  auto read = runtime().SubmitRead(*buffer, 0, got.data(), n * 4);
  ASSERT_TRUE(read.ok());

  ASSERT_TRUE(runtime().Wait(*read).ok());
  for (int i = 0; i < n; ++i) ASSERT_EQ(got[i], 42);

  auto result = runtime().LaunchResultOf(*launch);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->node, 0u);
  EXPECT_GT(result->modeled_seconds, 0.0);
}

TEST_F(ClusterRuntimeTest, FailedMarkerFailsDependents) {
  auto buffer = runtime().CreateBuffer(16);
  ASSERT_TRUE(buffer.ok());
  auto gate = runtime().SubmitMarker();
  ASSERT_TRUE(gate.ok());
  const std::int32_t payload[4] = {1, 2, 3, 4};
  auto write = runtime().SubmitWrite(*buffer, 0, payload, 16, {*gate});
  ASSERT_TRUE(write.ok());

  ASSERT_TRUE(runtime()
                  .CompleteMarker(*gate,
                                  Status(ErrorCode::kInternal, "aborted"))
                  .ok());
  EXPECT_EQ(runtime().Wait(*write).code(), ErrorCode::kDependencyFailed);

  // The buffer is untouched: a fresh read sees the zero-fill.
  std::int32_t got[4] = {9, 9, 9, 9};
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, got, 16).ok());
  EXPECT_EQ(got[0], 0);
}

TEST_F(ClusterRuntimeTest, SubmitValidatesAtEnqueueTime) {
  auto buffer = runtime().CreateBuffer(16);
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(runtime().SubmitWrite(*buffer, 12, "xxxxxxxx", 8).code(),
            ErrorCode::kInvalidValue);
  std::int32_t sink;
  EXPECT_EQ(runtime().SubmitRead(999, 0, &sink, 4).code(),
            ErrorCode::kInvalidMemObject);
  ClusterRuntime::LaunchSpec spec;
  spec.program = 999;
  spec.kernel_name = "nope";
  EXPECT_EQ(runtime().SubmitLaunch(spec).code(), ErrorCode::kInvalidProgram);
}

// The acceptance test for the dispatch redesign: two independent launches
// aimed at distinct nodes are IN FLIGHT CONCURRENTLY — visible both in the
// graph's peak-running watermark and in overlapping virtual-time spans.
TEST_F(ClusterRuntimeTest, IndependentLaunchesOverlapAcrossNodes) {
  constexpr char kHeavy[] = R"(
    __kernel void heavy(__global int* data, int n) {
      int i = get_global_id(0);
      int acc = 0;
      for (int k = 0; k < 2000; ++k) acc += k ^ i;
      if (i < n) data[i] = acc;
    })";
  auto program = runtime().BuildProgram(kHeavy);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const int n = 512;
  auto buffer0 = runtime().CreateBuffer(n * 4);
  auto buffer1 = runtime().CreateBuffer(n * 4);
  ASSERT_TRUE(buffer0.ok() && buffer1.ok());

  // Release both launches from one gate so they become ready on the same
  // graph tick, then let the per-node RPC pipelines race.
  auto gate = runtime().SubmitMarker();
  ASSERT_TRUE(gate.ok());
  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "heavy";
  spec.global[0] = n;
  // Analytic hint: make the modeled kernel long relative to its input
  // transfer, so concurrent dispatch must show up as overlapping spans.
  sim::KernelCost cost;
  cost.flops = 5e10;
  cost.bytes = static_cast<double>(n) * 4;
  cost.work_items = n;
  spec.cost_hint = cost;
  spec.args = {KernelArgValue::Buffer(*buffer0),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.preferred_node = 0;
  auto launch0 = runtime().SubmitLaunch(spec, {*gate});
  spec.args[0] = KernelArgValue::Buffer(*buffer1);
  spec.preferred_node = 1;
  auto launch1 = runtime().SubmitLaunch(spec, {*gate});
  ASSERT_TRUE(launch0.ok() && launch1.ok());

  ASSERT_TRUE(runtime().CompleteMarker(*gate).ok());
  ASSERT_TRUE(runtime().Wait(*launch0).ok());
  ASSERT_TRUE(runtime().Wait(*launch1).ok());

  // Both commands held workers simultaneously...
  EXPECT_GE(runtime().graph().PeakRunning(), 2u);
  // ...and their modeled kernel spans overlap on the virtual timeline
  // (distinct nodes have independent device resources).
  auto p0 = runtime().CommandProfileOf(*launch0);
  auto p1 = runtime().CommandProfileOf(*launch1);
  ASSERT_TRUE(p0.ok() && p1.ok());
  auto r0 = runtime().LaunchResultOf(*launch0);
  auto r1 = runtime().LaunchResultOf(*launch1);
  ASSERT_TRUE(r0.ok() && r1.ok());
  EXPECT_NE(r0->node, r1->node);
  const double start0 = r0->virtual_completion - r0->modeled_seconds;
  const double start1 = r1->virtual_completion - r1->modeled_seconds;
  EXPECT_LT(start0, r1->virtual_completion);
  EXPECT_LT(start1, r0->virtual_completion);

  // Nothing left in flight once everything retired.
  EXPECT_EQ(runtime().InFlightOn(0), 0u);
  EXPECT_EQ(runtime().InFlightOn(1), 0u);
}

// ---- Placement-plan fan-out ----------------------------------------------

// One matmul kernel over whole matrices, rows on dimension 0 (the
// dimension placement plans shard). Reuses the MatrixMul workload's
// kernel so the FPGA node is eligible through its native "bitstream".
std::string MatmulSource() {
  return workloads::MakeMatrixMul()->kernel_source();
}

ClusterRuntime::LaunchSpec MatmulSpec(ProgramId program, int n,
                                      BufferId a, BufferId b, BufferId c) {
  ClusterRuntime::LaunchSpec spec;
  spec.program = program;
  spec.kernel_name = "matmul_partition";
  const std::uint64_t row_bytes = static_cast<std::uint64_t>(n) * 4;
  spec.args = {KernelArgValue::PartitionedBuffer(a, row_bytes),
               KernelArgValue::Buffer(b),
               KernelArgValue::PartitionedBuffer(c, row_bytes),
               KernelArgValue::Scalar<std::int32_t>(n),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.work_dim = 2;
  spec.global[0] = static_cast<std::uint64_t>(n);  // Rows.
  spec.global[1] = static_cast<std::uint64_t>(n);
  return spec;
}

TEST_F(ClusterRuntimeTest, PartitionedMatmulBitIdenticalToSingleNode) {
  const int n = 96;
  auto program = runtime().BuildProgram(MatmulSource());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  std::vector<float> a(static_cast<std::size_t>(n) * n);
  std::vector<float> b(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>((i * 37 % 200) - 100) / 50.0f;
    b[i] = static_cast<float>((i * 53 % 200) - 100) / 50.0f;
  }
  auto a_buf = runtime().CreateBuffer(a.size() * 4);
  auto b_buf = runtime().CreateBuffer(b.size() * 4);
  auto c_single = runtime().CreateBuffer(a.size() * 4);
  auto c_split = runtime().CreateBuffer(a.size() * 4);
  ASSERT_TRUE(a_buf.ok() && b_buf.ok() && c_single.ok() && c_split.ok());
  ASSERT_TRUE(runtime().WriteBuffer(*a_buf, 0, a.data(), a.size() * 4).ok());
  ASSERT_TRUE(runtime().WriteBuffer(*b_buf, 0, b.data(), b.size() * 4).ok());

  // Reference: the classic single-node path (user-directed, node 0).
  ClusterRuntime::LaunchSpec spec =
      MatmulSpec(*program, n, *a_buf, *b_buf, *c_single);
  spec.preferred_node = 0;
  auto single = runtime().LaunchKernel(spec);
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  EXPECT_EQ(single->shard_count, 1u);

  // Co-executed: one launch split across the 3-node cluster.
  ASSERT_TRUE(runtime().SetScheduler("hetero_split").ok());
  spec = MatmulSpec(*program, n, *a_buf, *b_buf, *c_split);
  auto handle = runtime().SubmitLaunch(spec);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  ASSERT_TRUE(runtime().Wait(*handle).ok());
  auto aggregate = runtime().LaunchResultOf(*handle);
  auto shards = runtime().LaunchShardsOf(*handle);
  ASSERT_TRUE(aggregate.ok() && shards.ok());
  EXPECT_GE(aggregate->shard_count, 2u);
  EXPECT_EQ(shards->size(), aggregate->shard_count);
  std::set<std::size_t> nodes_used;
  for (const CommandHandle& shard : *shards) {
    auto result = runtime().LaunchResultOf(shard);
    ASSERT_TRUE(result.ok());
    nodes_used.insert(result->node);
  }
  EXPECT_GE(nodes_used.size(), 2u);

  std::vector<float> got_single(a.size());
  std::vector<float> got_split(a.size());
  ASSERT_TRUE(runtime()
                  .ReadBuffer(*c_single, 0, got_single.data(),
                              got_single.size() * 4)
                  .ok());
  ASSERT_TRUE(runtime()
                  .ReadBuffer(*c_split, 0, got_split.data(),
                              got_split.size() * 4)
                  .ok());
  EXPECT_EQ(std::memcmp(got_single.data(), got_split.data(),
                        got_single.size() * 4),
            0);
  ASSERT_TRUE(runtime().ReleaseCommand(*handle).ok());
}

TEST_F(ClusterRuntimeTest, PartitionedSpmvBitIdenticalToSingleNode) {
  auto spmv = workloads::MakeSpmv();
  auto program = runtime().BuildProgram(spmv->kernel_source());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const int rows = 512;
  // Deterministic CSR: 4 nonzeros per row.
  std::vector<std::int32_t> row_ptr(rows + 1);
  std::vector<std::int32_t> col_idx;
  std::vector<float> values;
  std::vector<float> x(rows);
  for (int r = 0; r < rows; ++r) {
    row_ptr[r + 1] = row_ptr[r] + 4;
    for (int i = 0; i < 4; ++i) {
      col_idx.push_back((r * 7 + i * 131) % rows);
      values.push_back(static_cast<float>((r + i) % 17) / 8.0f - 1.0f);
    }
    x[r] = static_cast<float>(r % 29) / 14.0f - 1.0f;
  }
  auto rp = runtime().CreateBuffer(row_ptr.size() * 4);
  auto ci = runtime().CreateBuffer(col_idx.size() * 4);
  auto va = runtime().CreateBuffer(values.size() * 4);
  auto xb = runtime().CreateBuffer(x.size() * 4);
  auto y_single = runtime().CreateBuffer(static_cast<std::uint64_t>(rows) * 4);
  auto y_split = runtime().CreateBuffer(static_cast<std::uint64_t>(rows) * 4);
  ASSERT_TRUE(rp.ok() && ci.ok() && va.ok() && xb.ok() && y_single.ok() &&
              y_split.ok());
  ASSERT_TRUE(
      runtime().WriteBuffer(*rp, 0, row_ptr.data(), row_ptr.size() * 4).ok());
  ASSERT_TRUE(
      runtime().WriteBuffer(*ci, 0, col_idx.data(), col_idx.size() * 4).ok());
  ASSERT_TRUE(
      runtime().WriteBuffer(*va, 0, values.data(), values.size() * 4).ok());
  ASSERT_TRUE(runtime().WriteBuffer(*xb, 0, x.data(), x.size() * 4).ok());

  auto make_spec = [&](BufferId y) {
    ClusterRuntime::LaunchSpec spec;
    spec.program = *program;
    spec.kernel_name = "spmv_compute";
    spec.args = {KernelArgValue::Buffer(*rp), KernelArgValue::Buffer(*ci),
                 KernelArgValue::Buffer(*va), KernelArgValue::Buffer(*xb),
                 KernelArgValue::PartitionedBuffer(y, 4),
                 KernelArgValue::Scalar<std::int32_t>(rows)};
    spec.work_dim = 1;
    spec.global[0] = static_cast<std::uint64_t>(rows);
    return spec;
  };

  ClusterRuntime::LaunchSpec spec = make_spec(*y_single);
  spec.preferred_node = 1;
  ASSERT_TRUE(runtime().LaunchKernel(spec).ok());

  ASSERT_TRUE(runtime().SetScheduler("hetero_split").ok());
  auto split = runtime().LaunchKernel(make_spec(*y_split));
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_GE(split->shard_count, 2u);

  std::vector<float> got_single(rows);
  std::vector<float> got_split(rows);
  ASSERT_TRUE(
      runtime().ReadBuffer(*y_single, 0, got_single.data(), rows * 4).ok());
  ASSERT_TRUE(
      runtime().ReadBuffer(*y_split, 0, got_split.data(), rows * 4).ok());
  EXPECT_EQ(std::memcmp(got_single.data(), got_split.data(), rows * 4), 0);
}

TEST_F(ClusterRuntimeTest, PartitionedRmwAfterRemoteOwnershipStaysCoherent) {
  // Launch 1 (classic, node 0) takes ownership of the buffer: host shadow
  // stale, valid replica on node 0. Launch 2 is a partitioned
  // read-modify-write split across nodes — every shard must see launch
  // 1's values, including shards whose slice has to be repopulated from
  // node 0's replica while the node-0 shard skips its own slice ship.
  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  const int n = 1024;
  auto buffer = runtime().CreateBuffer(static_cast<std::uint64_t>(n) * 4);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(n);
  for (int i = 0; i < n; ++i) values[i] = i + 1;
  ASSERT_TRUE(runtime().WriteBuffer(*buffer, 0, values.data(), n * 4).ok());

  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::PartitionedBuffer(*buffer, 4),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = static_cast<std::uint64_t>(n);
  spec.preferred_node = 0;
  ASSERT_TRUE(runtime().LaunchKernel(spec).ok());  // Node 0 owns the data.

  ASSERT_TRUE(runtime().SetScheduler("hetero_split").ok());
  spec.preferred_node = -1;
  auto split = runtime().LaunchKernel(spec);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_GE(split->shard_count, 2u);

  std::vector<std::int32_t> got(n);
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, got.data(), n * 4).ok());
  for (int i = 0; i < n; ++i) ASSERT_EQ(got[i], 4 * (i + 1)) << i;
}

TEST_F(ClusterRuntimeTest, CoexecutionBeatsBestSingleNodePlacement) {
  // Compute-dominated matmul on a heterogeneous 3-node cluster: the
  // hetero_split plan must finish (virtual time) strictly earlier than
  // the best single-node placement. Fresh cluster per run so one run's
  // modeled backlog cannot skew the next.
  const int n = 64;
  std::vector<float> a(static_cast<std::size_t>(n) * n, 0.5f);
  std::vector<float> b(a.size(), 0.25f);
  sim::KernelCost cost;
  cost.flops = 5e10;  // Dwarfs the transfer terms.
  cost.bytes = 4e10;
  cost.work_items = static_cast<std::uint64_t>(n) * n;

  auto run = [&](const std::string& policy, int preferred,
                 double* completion) {
    auto cluster = SimCluster::Create({.gpu_nodes = 2, .cpu_nodes = 1});
    ASSERT_TRUE(cluster.ok());
    auto& rt = (*cluster)->runtime();
    ASSERT_TRUE(rt.SetScheduler(policy).ok());
    auto program = rt.BuildProgram(MatmulSource());
    ASSERT_TRUE(program.ok());
    auto a_buf = rt.CreateBuffer(a.size() * 4);
    auto b_buf = rt.CreateBuffer(b.size() * 4);
    auto c_buf = rt.CreateBuffer(a.size() * 4);
    ASSERT_TRUE(a_buf.ok() && b_buf.ok() && c_buf.ok());
    ASSERT_TRUE(rt.WriteBuffer(*a_buf, 0, a.data(), a.size() * 4).ok());
    ASSERT_TRUE(rt.WriteBuffer(*b_buf, 0, b.data(), b.size() * 4).ok());
    ClusterRuntime::LaunchSpec spec =
        MatmulSpec(*program, n, *a_buf, *b_buf, *c_buf);
    spec.preferred_node = preferred;
    spec.cost_hint = cost;
    auto result = rt.LaunchKernel(spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    *completion = result->virtual_completion;
  };

  double best_single = std::numeric_limits<double>::infinity();
  for (int node = 0; node < 3; ++node) {
    double completion = 0.0;
    run("user", node, &completion);
    best_single = std::min(best_single, completion);
  }
  double split_completion = 0.0;
  run("hetero_split", -1, &split_completion);
  EXPECT_LT(split_completion, best_single);
}

TEST_F(ClusterRuntimeTest, ShardsOfOneLaunchOverlapAcrossNodes) {
  // The co-execution acceptance: shards of ONE launch are in flight on
  // distinct nodes concurrently — overlapping modeled spans and at least
  // two graph workers running at once.
  ASSERT_TRUE(runtime().SetScheduler("hetero_split").ok());
  auto program = runtime().BuildProgram(MatmulSource());
  ASSERT_TRUE(program.ok());
  const int n = 64;
  std::vector<float> a(static_cast<std::size_t>(n) * n, 1.0f);
  auto a_buf = runtime().CreateBuffer(a.size() * 4);
  auto b_buf = runtime().CreateBuffer(a.size() * 4);
  auto c_buf = runtime().CreateBuffer(a.size() * 4);
  ASSERT_TRUE(a_buf.ok() && b_buf.ok() && c_buf.ok());
  ASSERT_TRUE(runtime().WriteBuffer(*a_buf, 0, a.data(), a.size() * 4).ok());
  ASSERT_TRUE(runtime().WriteBuffer(*b_buf, 0, a.data(), a.size() * 4).ok());

  ClusterRuntime::LaunchSpec spec =
      MatmulSpec(*program, n, *a_buf, *b_buf, *c_buf);
  sim::KernelCost cost;
  cost.flops = 5e10;  // Long modeled kernels relative to their transfers.
  cost.bytes = 4e10;
  cost.work_items = static_cast<std::uint64_t>(n) * n;
  spec.cost_hint = cost;
  auto handle = runtime().SubmitLaunch(spec);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  ASSERT_TRUE(runtime().Wait(*handle).ok());

  auto shards = runtime().LaunchShardsOf(*handle);
  ASSERT_TRUE(shards.ok());
  ASSERT_GE(shards->size(), 2u);
  EXPECT_GE(runtime().graph().PeakRunning(), 2u);
  std::vector<LaunchResult> results;
  std::set<std::size_t> nodes_used;
  for (const CommandHandle& shard : *shards) {
    auto result = runtime().LaunchResultOf(shard);
    ASSERT_TRUE(result.ok());
    nodes_used.insert(result->node);
    results.push_back(*result);
  }
  EXPECT_EQ(nodes_used.size(), shards->size());  // Distinct nodes.
  // Every pair of shard spans overlaps in virtual time.
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (std::size_t j = i + 1; j < results.size(); ++j) {
      const double start_i =
          results[i].virtual_completion - results[i].modeled_seconds;
      const double start_j =
          results[j].virtual_completion - results[j].modeled_seconds;
      EXPECT_LT(start_i, results[j].virtual_completion);
      EXPECT_LT(start_j, results[i].virtual_completion);
    }
  }
  ASSERT_TRUE(runtime().ReleaseCommand(*handle).ok());
}

TEST_F(ClusterRuntimeTest, RangeQueryingKernelsAreNeverSplit) {
  // A grid-stride kernel reads get_global_size(0); under a shard its
  // value would be shard-local and the stride wrong, so the runtime must
  // keep such launches whole even with partitioned annotations.
  constexpr char kGridStride[] = R"(
    __kernel void stride_fill(__global int* data, int n) {
      for (int i = (int)get_global_id(0); i < n;
           i += (int)get_global_size(0)) {
        data[i] = i + 1;
      }
    })";
  ASSERT_TRUE(runtime().SetScheduler("hetero_split").ok());
  auto program = runtime().BuildProgram(kGridStride);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const int n = 256;
  auto buffer = runtime().CreateBuffer(static_cast<std::uint64_t>(n) * 4);
  ASSERT_TRUE(buffer.ok());

  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "stride_fill";
  spec.args = {KernelArgValue::PartitionedBuffer(*buffer, 4),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = 64;  // Fewer items than n: the loop must cover the rest.
  auto result = runtime().LaunchKernel(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->shard_count, 1u);

  std::vector<std::int32_t> got(n);
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, got.data(), n * 4).ok());
  for (int i = 0; i < n; ++i) ASSERT_EQ(got[i], i + 1) << i;

  // The canonical group-id index reconstruction is equally shard-hostile
  // (group ids restart at 0 per shard): must also run whole.
  constexpr char kGroupIndex[] = R"(
    __kernel void group_fill(__global int* data, int n) {
      int i = (int)(get_group_id(0) * get_local_size(0) + get_local_id(0));
      if (i < n) data[i] = i + 1;
    })";
  auto program2 = runtime().BuildProgram(kGroupIndex);
  ASSERT_TRUE(program2.ok()) << program2.status().ToString();
  const int m = 1024;
  auto buffer2 = runtime().CreateBuffer(static_cast<std::uint64_t>(m) * 4);
  ASSERT_TRUE(buffer2.ok());
  ClusterRuntime::LaunchSpec spec2;
  spec2.program = *program2;
  spec2.kernel_name = "group_fill";
  spec2.args = {KernelArgValue::PartitionedBuffer(*buffer2, 4),
                KernelArgValue::Scalar<std::int32_t>(m)};
  spec2.global[0] = static_cast<std::uint64_t>(m);
  spec2.local[0] = 64;
  spec2.local_specified = true;
  auto result2 = runtime().LaunchKernel(spec2);
  ASSERT_TRUE(result2.ok()) << result2.status().ToString();
  EXPECT_EQ(result2->shard_count, 1u);
  std::vector<std::int32_t> got2(m);
  ASSERT_TRUE(runtime().ReadBuffer(*buffer2, 0, got2.data(), m * 4).ok());
  for (int i = 0; i < m; ++i) ASSERT_EQ(got2[i], i + 1) << i;
}

TEST_F(ClusterRuntimeTest, InvalidPlacementPlansAreRejectedAtSubmit) {
  // A policy producing overlapping shards must fail the submit, not
  // corrupt buffers at execution time.
  class OverlappingPolicy : public sched::SchedulingPolicy {
   public:
    [[nodiscard]] std::string name() const override { return "overlap"; }
    Expected<std::size_t> SelectNode(const sched::TaskInfo&,
                                     const sched::ClusterView&) override {
      return 0;
    }
    Expected<sched::PlacementPlan> PlanLaunch(
        const sched::TaskInfo& task, const sched::ClusterView&) override {
      sched::PlacementPlan plan;
      plan.shards = {{0, 0, task.dim0_extent, 0.5},
                     {1, task.dim0_extent / 2, task.dim0_extent / 2, 0.5}};
      return plan;
    }
  };
  sched::RegisterPolicy("overlap", [] {
    return std::unique_ptr<sched::SchedulingPolicy>(new OverlappingPolicy());
  });
  ASSERT_TRUE(runtime().SetScheduler("overlap").ok());

  auto program = runtime().BuildProgram(MatmulSource());
  ASSERT_TRUE(program.ok());
  const int n = 32;
  auto a_buf = runtime().CreateBuffer(static_cast<std::uint64_t>(n) * n * 4);
  auto b_buf = runtime().CreateBuffer(static_cast<std::uint64_t>(n) * n * 4);
  auto c_buf = runtime().CreateBuffer(static_cast<std::uint64_t>(n) * n * 4);
  ASSERT_TRUE(a_buf.ok() && b_buf.ok() && c_buf.ok());
  ClusterRuntime::LaunchSpec spec =
      MatmulSpec(*program, n, *a_buf, *b_buf, *c_buf);
  EXPECT_EQ(runtime().SubmitLaunch(spec).code(), ErrorCode::kSchedulerError);

  // And a partitioned annotation whose range overruns the buffer is
  // caught before any plan is made.
  ASSERT_TRUE(runtime().SetScheduler("hetero_split").ok());
  spec = MatmulSpec(*program, n, *a_buf, *b_buf, *c_buf);
  spec.global[0] = static_cast<std::uint64_t>(2 * n);  // Past a's rows.
  EXPECT_EQ(runtime().SubmitLaunch(spec).code(), ErrorCode::kInvalidValue);
}

TEST_F(ClusterRuntimeTest, ReleasedCommandRecordsAreReclaimed) {
  auto buffer = runtime().CreateBuffer(256);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::uint8_t> payload(256, 7);
  ASSERT_TRUE(
      runtime().WriteBuffer(*buffer, 0, payload.data(), 256).ok());
  ASSERT_TRUE(runtime().Finish().ok());
  const std::size_t baseline = runtime().graph().LiveRecords();

  // The blocking wrappers release internally: a long launch/write loop
  // must not grow the graph's record table (the million-enqueue bound).
  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::Buffer(*buffer),
               KernelArgValue::Scalar<std::int32_t>(64)};
  spec.global[0] = 64;
  spec.preferred_node = 0;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        runtime().WriteBuffer(*buffer, 0, payload.data(), 256).ok());
    ASSERT_TRUE(runtime().LaunchKernel(spec).ok());
  }
  ASSERT_TRUE(runtime().Finish().ok());
  EXPECT_LE(runtime().graph().LiveRecords(), baseline + 4);

  // Explicit handles: queryable while held, gone after release.
  auto write = runtime().SubmitWrite(*buffer, 0, payload.data(), 256);
  ASSERT_TRUE(write.ok());
  ASSERT_TRUE(runtime().Wait(*write).ok());
  EXPECT_TRUE(runtime().CommandStateOf(*write).ok());
  ASSERT_TRUE(runtime().ReleaseCommand(*write).ok());
  EXPECT_FALSE(runtime().CommandStateOf(*write).ok());
}

// ---- Region directory + node-to-node slice exchange ----------------------

TEST_F(ClusterRuntimeTest, DirectorySnapshotTracksOwnership) {
  const int n = 256;
  auto buffer = runtime().CreateBuffer(static_cast<std::uint64_t>(n) * 4);
  ASSERT_TRUE(buffer.ok());
  auto snapshot = runtime().DirectorySnapshotOf(*buffer);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->regions.size(), 1u);
  EXPECT_EQ(snapshot->regions[0].owners, std::vector<std::int32_t>{-1});
  EXPECT_TRUE(snapshot->HostOwns(0, n * 4));

  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  std::vector<std::int32_t> values(n, 1);
  ASSERT_TRUE(runtime().WriteBuffer(*buffer, 0, values.data(), n * 4).ok());
  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::Buffer(*buffer),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 1;
  ASSERT_TRUE(runtime().LaunchKernel(spec).ok());

  // The launch's output lives on node 1 only; the host shadow is stale
  // (lazy gather) and the directory says so.
  snapshot = runtime().DirectorySnapshotOf(*buffer);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->regions.size(), 1u);
  EXPECT_EQ(snapshot->regions[0].owners, std::vector<std::int32_t>{1});
  EXPECT_FALSE(snapshot->HostOwns(0, 4));
  const std::uint64_t epoch_after_launch = snapshot->epoch;

  // A partial read gathers just that range; the rest stays remote-only.
  std::int32_t head[8];
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, head, sizeof head).ok());
  EXPECT_EQ(head[0], 2);
  snapshot = runtime().DirectorySnapshotOf(*buffer);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot->HostOwns(0, sizeof head));
  EXPECT_FALSE(snapshot->HostOwns(0, n * 4));
  EXPECT_EQ(snapshot->epoch, epoch_after_launch);  // Transfers don't dirty.
  EXPECT_EQ(snapshot->stats.host_bytes_in, sizeof head);
}

// THE acceptance scenario: a chained pair of partitioned launches over the
// same buffer moves ZERO payload bytes through the host between producer
// and consumer, and the multi-node result is bit-identical to the
// single-node chain.
TEST_F(ClusterRuntimeTest, ChainedPartitionedLaunchesMoveZeroHostBytes) {
  auto program_rmw = runtime().BuildProgram(kDoubler);
  auto program_map = runtime().BuildProgram(kScaleConst);
  ASSERT_TRUE(program_rmw.ok() && program_map.ok());
  const int n = 1024;
  const std::uint64_t bytes = static_cast<std::uint64_t>(n) * 4;
  std::vector<std::int32_t> values(n);
  for (int i = 0; i < n; ++i) values[i] = i - n / 2;

  auto chain = [&](BufferId mid, BufferId out, int preferred) {
    ClusterRuntime::LaunchSpec producer;
    producer.program = *program_rmw;
    producer.kernel_name = "doubler";
    producer.args = {KernelArgValue::PartitionedBuffer(mid, 4),
                     KernelArgValue::Scalar<std::int32_t>(n)};
    producer.global[0] = n;
    producer.preferred_node = preferred;
    auto first = runtime().LaunchKernel(producer);
    ASSERT_TRUE(first.ok()) << first.status().ToString();

    // Snapshot between the launches: every later host byte on `mid` is a
    // violation of the node-to-node exchange.
    auto between = runtime().DirectorySnapshotOf(mid);
    ASSERT_TRUE(between.ok());
    const std::uint64_t host_payload_between =
        between->stats.host_payload_bytes();

    ClusterRuntime::LaunchSpec consumer;
    consumer.program = *program_map;
    consumer.kernel_name = "scale";
    consumer.args = {KernelArgValue::PartitionedBuffer(mid, 4),
                     KernelArgValue::PartitionedBuffer(out, 4),
                     KernelArgValue::Scalar<std::int32_t>(n)};
    consumer.global[0] = n;
    consumer.preferred_node = preferred;
    auto second = runtime().LaunchKernel(consumer);
    ASSERT_TRUE(second.ok()) << second.status().ToString();

    auto after = runtime().DirectorySnapshotOf(mid);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->stats.host_payload_bytes(), host_payload_between)
        << "consumer moved chained-buffer payload through the host";
  };

  // Reference: the whole chain on one node.
  auto mid_single = runtime().CreateBuffer(bytes);
  auto out_single = runtime().CreateBuffer(bytes);
  ASSERT_TRUE(mid_single.ok() && out_single.ok());
  ASSERT_TRUE(
      runtime().WriteBuffer(*mid_single, 0, values.data(), bytes).ok());
  chain(*mid_single, *out_single, /*preferred=*/0);

  // Co-executed: both launches split across the cluster.
  ASSERT_TRUE(runtime().SetScheduler("hetero_split").ok());
  auto mid_split = runtime().CreateBuffer(bytes);
  auto out_split = runtime().CreateBuffer(bytes);
  ASSERT_TRUE(mid_split.ok() && out_split.ok());
  ASSERT_TRUE(
      runtime().WriteBuffer(*mid_split, 0, values.data(), bytes).ok());
  chain(*mid_split, *out_split, /*preferred=*/-1);

  std::vector<std::int32_t> got_single(n);
  std::vector<std::int32_t> got_split(n);
  ASSERT_TRUE(
      runtime().ReadBuffer(*out_single, 0, got_single.data(), bytes).ok());
  ASSERT_TRUE(
      runtime().ReadBuffer(*out_split, 0, got_split.data(), bytes).ok());
  EXPECT_EQ(std::memcmp(got_single.data(), got_split.data(), bytes), 0);
  EXPECT_EQ(got_split[0], 6 * (0 - n / 2));
}

TEST_F(ClusterRuntimeTest, ConsumerShardsPullProducerSlicesPeerToPeer) {
  // Producer runs whole on node 0; the split consumer's shards on other
  // nodes must fetch their input slices FROM node 0 directly — p2p bytes
  // move, zero additional host payload.
  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  const int n = 1024;
  auto buffer = runtime().CreateBuffer(static_cast<std::uint64_t>(n) * 4);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(n);
  for (int i = 0; i < n; ++i) values[i] = i + 1;
  ASSERT_TRUE(runtime().WriteBuffer(*buffer, 0, values.data(), n * 4).ok());

  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::PartitionedBuffer(*buffer, 4),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 0;
  ASSERT_TRUE(runtime().LaunchKernel(spec).ok());  // Node 0 owns everything.

  auto before = runtime().DirectorySnapshotOf(*buffer);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(runtime().SetScheduler("hetero_split").ok());
  spec.preferred_node = -1;
  auto split = runtime().LaunchKernel(spec);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  ASSERT_GE(split->shard_count, 2u);

  auto after = runtime().DirectorySnapshotOf(*buffer);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->stats.p2p_bytes, before->stats.p2p_bytes);
  EXPECT_EQ(after->stats.relay_bytes, 0u);
  EXPECT_EQ(after->stats.host_payload_bytes(),
            before->stats.host_payload_bytes());

  std::vector<std::int32_t> got(n);
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, got.data(), n * 4).ok());
  for (int i = 0; i < n; ++i) ASSERT_EQ(got[i], 4 * (i + 1)) << i;
}

TEST(ClusterRuntimePeerlessTest, HostRelayFallbackWhenNodesHaveNoLinks) {
  // Same chained scenario on a cluster whose nodes cannot reach each
  // other: pulls fail with kPeerUnreachable, the host relays every slice,
  // and the results stay correct.
  workloads::RegisterAllNativeKernels();
  auto cluster = SimCluster::Create({.gpu_nodes = 2, .fpga_nodes = 1}, {},
                                    SimCluster::PeerTopology::kNone);
  ASSERT_TRUE(cluster.ok());
  auto& rt = (*cluster)->runtime();
  auto program = rt.BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  const int n = 512;
  auto buffer = rt.CreateBuffer(static_cast<std::uint64_t>(n) * 4);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(n, 3);
  ASSERT_TRUE(rt.WriteBuffer(*buffer, 0, values.data(), n * 4).ok());

  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::PartitionedBuffer(*buffer, 4),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 0;
  ASSERT_TRUE(rt.LaunchKernel(spec).ok());
  ASSERT_TRUE(rt.SetScheduler("hetero_split").ok());
  spec.preferred_node = -1;
  auto split = rt.LaunchKernel(spec);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  ASSERT_GE(split->shard_count, 2u);

  auto snapshot = rt.DirectorySnapshotOf(*buffer);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->stats.p2p_bytes, 0u);
  EXPECT_GT(snapshot->stats.relay_bytes, 0u);

  std::vector<std::int32_t> got(n);
  ASSERT_TRUE(rt.ReadBuffer(*buffer, 0, got.data(), n * 4).ok());
  for (int i = 0; i < n; ++i) ASSERT_EQ(got[i], 12) << i;
}

TEST_F(ClusterRuntimeTest, MigratePrefetchesSoTheLaunchShipsNothing) {
  auto program = runtime().BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  const int n = 256;
  auto buffer = runtime().CreateBuffer(static_cast<std::uint64_t>(n) * 4);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(n, 7);
  ASSERT_TRUE(runtime().WriteBuffer(*buffer, 0, values.data(), n * 4).ok());

  auto migrate = runtime().SubmitMigrate(*buffer, {}, /*target_node=*/1);
  ASSERT_TRUE(migrate.ok());
  ASSERT_TRUE(runtime().Wait(*migrate).ok());
  ASSERT_TRUE(runtime().ReleaseCommand(*migrate).ok());
  auto snapshot = runtime().DirectorySnapshotOf(*buffer);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->regions.size(), 1u);
  EXPECT_EQ(snapshot->regions[0].owners,
            (std::vector<std::int32_t>{1, -1}));  // Node 1 AND the host.

  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::Buffer(*buffer),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 1;
  auto result = runtime().LaunchKernel(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->bytes_shipped, 0u);  // Prefetch already placed it.

  // Migrating node 1's output back to the host IS the gather; the later
  // read finds everything fresh and moves nothing further.
  auto gather = runtime().SubmitMigrate(*buffer, {},
                                        ClusterRuntime::kMigrateToHost);
  ASSERT_TRUE(gather.ok());
  ASSERT_TRUE(runtime().Wait(*gather).ok());
  ASSERT_TRUE(runtime().ReleaseCommand(*gather).ok());
  auto before = runtime().DirectorySnapshotOf(*buffer);
  ASSERT_TRUE(before.ok());
  std::vector<std::int32_t> got(n);
  ASSERT_TRUE(runtime().ReadBuffer(*buffer, 0, got.data(), n * 4).ok());
  EXPECT_EQ(got[0], 14);
  auto after = runtime().DirectorySnapshotOf(*buffer);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->stats.host_bytes_in, before->stats.host_bytes_in);
}

TEST_F(ClusterRuntimeTest, MigrateDiscardTransfersNothingAndValidates) {
  const int n = 64;
  auto buffer = runtime().CreateBuffer(static_cast<std::uint64_t>(n) * 4);
  ASSERT_TRUE(buffer.ok());
  // Validation.
  EXPECT_EQ(runtime().SubmitMigrate(999, {}, 0).code(),
            ErrorCode::kInvalidMemObject);
  EXPECT_EQ(runtime().SubmitMigrate(*buffer, {}, 7).code(),
            ErrorCode::kInvalidValue);
  EXPECT_EQ(
      runtime().SubmitMigrate(*buffer, {{0, 0}}, 0).code(),
      ErrorCode::kInvalidValue);
  EXPECT_EQ(
      runtime()
          .SubmitMigrate(*buffer, {{static_cast<std::uint64_t>(n) * 4, 4}}, 0)
          .code(),
      ErrorCode::kInvalidValue);

  // CONTENT_UNDEFINED: ownership moves, no bytes do.
  auto migrate = runtime().SubmitMigrate(*buffer, {{0, 128}}, 0,
                                         /*discard_contents=*/true);
  ASSERT_TRUE(migrate.ok());
  ASSERT_TRUE(runtime().Wait(*migrate).ok());
  ASSERT_TRUE(runtime().ReleaseCommand(*migrate).ok());
  auto snapshot = runtime().DirectorySnapshotOf(*buffer);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_FALSE(snapshot->HostOwns(0, 128));
  EXPECT_TRUE(snapshot->HostOwns(128, n * 4));
  EXPECT_EQ(snapshot->stats.host_bytes_out, 0u);
  EXPECT_EQ(snapshot->stats.p2p_bytes, 0u);
}

// Satellite property test: randomized writes / copies / partitioned
// launches / migrations / reads, checked bit-identical against a host-only
// oracle after every read.
TEST_F(ClusterRuntimeTest, RandomizedOpsMatchHostOnlyOracle) {
  constexpr char kBump[] = R"(
    __kernel void bump(__global int* data, int n) {
      int i = get_global_id(0);
      if (i < n) data[i] = data[i] + 1;
    })";
  auto program = runtime().BuildProgram(kBump);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  constexpr std::size_t kBuffers = 3;
  constexpr std::uint64_t kBytes = 1024;  // 256 ints each.
  constexpr std::uint64_t kInts = kBytes / 4;
  std::vector<BufferId> ids;
  std::vector<std::vector<std::uint8_t>> oracle(
      kBuffers, std::vector<std::uint8_t>(kBytes, 0));
  for (std::size_t b = 0; b < kBuffers; ++b) {
    auto id = runtime().CreateBuffer(kBytes);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  std::mt19937 rng(0xD17EC70);
  auto range_in = [&rng](std::uint64_t limit) {
    return std::uniform_int_distribution<std::uint64_t>(0, limit)(rng);
  };
  const char* policies[] = {"user", "hetero_split"};
  for (int op = 0; op < 250; ++op) {
    const std::size_t b = range_in(kBuffers - 1);
    switch (range_in(5)) {
      case 0: case 1: {  // Byte-granular write.
        const std::uint64_t offset = range_in(kBytes - 1);
        const std::uint64_t size = 1 + range_in(kBytes - offset - 1);
        std::vector<std::uint8_t> data(size);
        for (auto& byte : data) byte = static_cast<std::uint8_t>(rng());
        ASSERT_TRUE(
            runtime().WriteBuffer(ids[b], offset, data.data(), size).ok());
        std::copy(data.begin(), data.end(), oracle[b].begin() + offset);
        break;
      }
      case 2: {  // Copy between (possibly identical) buffers.
        const std::size_t b2 = range_in(kBuffers - 1);
        const std::uint64_t src = range_in(kBytes - 1);
        const std::uint64_t dst = range_in(kBytes - 1);
        const std::uint64_t size =
            1 + range_in(std::min(kBytes - src, kBytes - dst) - 1);
        auto copy = runtime().SubmitCopy(ids[b], src, ids[b2], dst, size);
        ASSERT_TRUE(copy.ok());
        ASSERT_TRUE(runtime().Wait(*copy).ok());
        ASSERT_TRUE(runtime().ReleaseCommand(*copy).ok());
        std::vector<std::uint8_t> staged(
            oracle[b].begin() + src, oracle[b].begin() + src + size);
        std::copy(staged.begin(), staged.end(), oracle[b2].begin() + dst);
        break;
      }
      case 3: {  // Partitioned launch over a random index window.
        const std::uint64_t start = range_in(kInts - 2);
        const std::uint64_t count = 1 + range_in(kInts - start - 1);
        ASSERT_TRUE(runtime().SetScheduler(policies[range_in(1)]).ok());
        ClusterRuntime::LaunchSpec spec;
        spec.program = *program;
        spec.kernel_name = "bump";
        spec.args = {
            KernelArgValue::PartitionedBuffer(ids[b], 4),
            KernelArgValue::Scalar<std::int32_t>(
                static_cast<std::int32_t>(start + count))};
        spec.global[0] = count;
        spec.global_offset[0] = start;
        // FPGA nodes run only pre-built kernels; user-directed launches of
        // this source kernel stick to the GPU nodes.
        spec.preferred_node =
            runtime().scheduler_name() == "user"
                ? static_cast<int>(range_in(1))
                : -1;
        auto result = runtime().LaunchKernel(spec);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        for (std::uint64_t i = start; i < start + count; ++i) {
          std::int32_t v;
          std::memcpy(&v, oracle[b].data() + i * 4, 4);
          v += 1;
          std::memcpy(oracle[b].data() + i * 4, &v, 4);
        }
        break;
      }
      case 4: {  // Content-preserving migration (oracle unchanged).
        const std::uint64_t offset = range_in(kBytes - 1);
        const std::uint64_t size = 1 + range_in(kBytes - offset - 1);
        const int target =
            range_in(runtime().devices().size()) == 0
                ? ClusterRuntime::kMigrateToHost
                : static_cast<int>(range_in(runtime().devices().size() - 1));
        auto migrate =
            runtime().SubmitMigrate(ids[b], {{offset, size}}, target);
        ASSERT_TRUE(migrate.ok());
        ASSERT_TRUE(runtime().Wait(*migrate).ok());
        ASSERT_TRUE(runtime().ReleaseCommand(*migrate).ok());
        break;
      }
      case 5: {  // Read-back a window and compare against the oracle.
        const std::uint64_t offset = range_in(kBytes - 1);
        const std::uint64_t size = 1 + range_in(kBytes - offset - 1);
        std::vector<std::uint8_t> got(size);
        ASSERT_TRUE(
            runtime().ReadBuffer(ids[b], offset, got.data(), size).ok());
        ASSERT_EQ(std::memcmp(got.data(), oracle[b].data() + offset, size),
                  0)
            << "divergence at op " << op;
        break;
      }
    }
  }
  // Final full sweep: every buffer bit-identical to the oracle.
  for (std::size_t b = 0; b < kBuffers; ++b) {
    std::vector<std::uint8_t> got(kBytes);
    ASSERT_TRUE(runtime().ReadBuffer(ids[b], 0, got.data(), kBytes).ok());
    ASSERT_EQ(got, oracle[b]) << "buffer " << b;
  }
}

// ---- Scheduler feedback loop ---------------------------------------------

TEST(SchedulerFeedbackTest, BacklogDrainsAndLeastLoadedAlternatesAfter10k) {
  // Regression for the poisoned backlog signal: node_busy_ahead_ used to
  // only ever grow, so after a long session load-aware policies steered
  // on cumulative history instead of actual in-flight work. After 10k
  // COMPLETED launches the estimate must be back at ~0 and `leastloaded`
  // must still spread concurrent submissions across both nodes.
  workloads::RegisterAllNativeKernels();
  auto cluster = SimCluster::Create({.cpu_nodes = 2});
  ASSERT_TRUE(cluster.ok());
  auto& rt = (*cluster)->runtime();
  ASSERT_TRUE(rt.SetScheduler("leastloaded").ok());
  auto program = rt.BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  const int n = 4;
  auto buffer0 = rt.CreateBuffer(n * 4);
  auto buffer1 = rt.CreateBuffer(n * 4);
  ASSERT_TRUE(buffer0.ok() && buffer1.ok());
  std::vector<std::int32_t> values(n, 1);
  ASSERT_TRUE(rt.WriteBuffer(*buffer0, 0, values.data(), n * 4).ok());
  ASSERT_TRUE(rt.WriteBuffer(*buffer1, 0, values.data(), n * 4).ok());

  auto spec_for = [&](BufferId id) {
    ClusterRuntime::LaunchSpec spec;
    spec.program = *program;
    spec.kernel_name = "doubler";
    spec.args = {KernelArgValue::Buffer(id),
                 KernelArgValue::Scalar<std::int32_t>(n)};
    spec.global[0] = n;
    return spec;
  };

  // Age the session: 10,000 completed launches.
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(rt.LaunchKernel(spec_for(i % 2 == 0 ? *buffer0 : *buffer1))
                    .ok())
        << "launch " << i;
  }
  ASSERT_TRUE(rt.Finish().ok());
  EXPECT_NEAR(rt.SchedulerBacklogSeconds(0), 0.0, 1e-9);
  EXPECT_NEAR(rt.SchedulerBacklogSeconds(1), 0.0, 1e-9);

  // Concurrent pairs on independent buffers must still alternate: the
  // submit-time charge makes the second submit see the first one's node
  // as loaded. A marker gates execution so both placement decisions
  // happen while the pair is genuinely pending. (With the
  // monotonic-growth bug, whichever node had the smaller historical
  // total got BOTH launches of every pair.)
  for (int pair = 0; pair < 20; ++pair) {
    auto gate = rt.SubmitMarker();
    ASSERT_TRUE(gate.ok());
    auto a = rt.SubmitLaunch(spec_for(*buffer0), {*gate});
    auto b = rt.SubmitLaunch(spec_for(*buffer1), {*gate});
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(rt.CompleteMarker(*gate).ok());
    ASSERT_TRUE(rt.ReleaseCommand(*gate).ok());
    ASSERT_TRUE(rt.Wait(*a).ok());
    ASSERT_TRUE(rt.Wait(*b).ok());
    auto ra = rt.LaunchResultOf(*a);
    auto rb = rt.LaunchResultOf(*b);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_NE(ra->node, rb->node) << "pair " << pair;
    ASSERT_TRUE(rt.ReleaseCommand(*a).ok());
    ASSERT_TRUE(rt.ReleaseCommand(*b).ok());
  }
  ASSERT_TRUE(rt.Finish().ok());
  EXPECT_NEAR(rt.SchedulerBacklogSeconds(0), 0.0, 1e-9);
  EXPECT_NEAR(rt.SchedulerBacklogSeconds(1), 0.0, 1e-9);
}

TEST(SchedulerFeedbackTest, ShardedAndUnsplitLaunchesConvergeToSameRate) {
  // The per-shard rate sample divides each shard's modeled seconds by the
  // flops the cost model charges THAT shard — so a 2-shard co-execution
  // and an unsplit launch of the same kernel must learn the same
  // observed_seconds_per_flop. (The old sample divided the node's static
  // instruction-mix pair regardless of the analytic hint, biasing every
  // prediction that multiplied the rate by hint flops.)
  workloads::RegisterAllNativeKernels();
  const int n = 4096;
  sim::KernelCost hint;
  hint.flops = 1e9;  // Compute-bound: launch overhead stays negligible.
  hint.bytes = 4e6;
  hint.work_items = n;

  auto launch = [&](ClusterRuntime& rt, ProgramId program, BufferId buffer,
                    int preferred) {
    ClusterRuntime::LaunchSpec spec;
    spec.program = program;
    spec.kernel_name = "doubler";
    spec.args = {KernelArgValue::PartitionedBuffer(buffer, 4),
                 KernelArgValue::Scalar<std::int32_t>(n)};
    spec.global[0] = n;
    spec.preferred_node = preferred;
    spec.cost_hint = hint;
    return rt.LaunchKernel(spec);
  };
  auto prepare = [&](ClusterRuntime& rt, ProgramId* program,
                     BufferId* buffer) {
    auto p = rt.BuildProgram(kDoubler);
    ASSERT_TRUE(p.ok());
    auto b = rt.CreateBuffer(static_cast<std::uint64_t>(n) * 4);
    ASSERT_TRUE(b.ok());
    std::vector<std::int32_t> values(n, 1);
    ASSERT_TRUE(rt.WriteBuffer(*b, 0, values.data(), n * 4).ok());
    *program = *p;
    *buffer = *b;
  };

  // Unsplit reference on a single-node cluster.
  auto single = SimCluster::Create({.cpu_nodes = 1});
  ASSERT_TRUE(single.ok());
  ProgramId program = 0;
  BufferId buffer = 0;
  prepare((*single)->runtime(), &program, &buffer);
  auto result = launch((*single)->runtime(), program, buffer, 0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->shard_count, 1u);
  const auto unsplit = (*single)->runtime().ObservedKernelRate(0, "doubler");
  ASSERT_EQ(unsplit.samples, 1u);
  ASSERT_GT(unsplit.seconds_per_flop, 0.0);

  // The same kernel co-executed as 2 shards on two identical nodes.
  auto split = SimCluster::Create({.cpu_nodes = 2});
  ASSERT_TRUE(split.ok());
  auto& rt = (*split)->runtime();
  ASSERT_TRUE(rt.SetScheduler("hetero_split").ok());
  prepare(rt, &program, &buffer);
  result = launch(rt, program, buffer, -1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->shard_count, 2u);
  for (std::size_t node = 0; node < 2; ++node) {
    const auto sharded = rt.ObservedKernelRate(node, "doubler");
    ASSERT_EQ(sharded.samples, 1u) << "node " << node;
    EXPECT_NEAR(sharded.seconds_per_flop, unsplit.seconds_per_flop,
                0.01 * unsplit.seconds_per_flop)
        << "node " << node;
  }
}

TEST(SchedulerFeedbackTest, AdaptiveSplitConvergesOnMiscalibratedNode) {
  // Acceptance scenario: two spec-identical CPU nodes, but node 1's REAL
  // silicon runs at 1/3 of the spec sheet. The static hetero_split plan
  // stays 50/50 forever; adaptive_split must re-split from the observed
  // shard rates and reach a makespan within 10% of the oracle split
  // within 4 chained launches.
  workloads::RegisterAllNativeKernels();
  auto cluster = SimCluster::Create({.cpu_nodes = 2}, {},
                                    SimCluster::PeerTopology::kFullMesh,
                                    {1.0, 1.0 / 3.0});
  ASSERT_TRUE(cluster.ok());
  auto& rt = (*cluster)->runtime();
  ASSERT_TRUE(rt.SetScheduler("adaptive_split").ok());
  auto program = rt.BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  const int n = 4096;
  auto buffer = rt.CreateBuffer(static_cast<std::uint64_t>(n) * 4);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(n, 1);
  ASSERT_TRUE(rt.WriteBuffer(*buffer, 0, values.data(), n * 4).ok());

  sim::KernelCost hint;
  hint.flops = 2e9;
  hint.bytes = 1e6;
  hint.work_items = n;
  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::PartitionedBuffer(*buffer, 4),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.cost_hint = hint;

  std::vector<double> makespans;
  for (int iteration = 0; iteration < 4; ++iteration) {
    auto result = rt.LaunchKernel(spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->shard_count, 2u) << "iteration " << iteration;
    makespans.push_back(result->modeled_seconds);
  }

  // Oracle from the CONVERGED observed rates: the ideal split finishes
  // both shards together, total throughput = sum of node speeds.
  const auto rate0 = rt.ObservedKernelRate(0, "doubler");
  const auto rate1 = rt.ObservedKernelRate(1, "doubler");
  ASSERT_GT(rate0.samples, 0u);
  ASSERT_GT(rate1.samples, 0u);
  // The mis-calibration is visible in the observed rates (~3x apart).
  EXPECT_NEAR(rate1.seconds_per_flop / rate0.seconds_per_flop, 3.0, 0.45);
  const double oracle = hint.flops / (1.0 / rate0.seconds_per_flop +
                                      1.0 / rate1.seconds_per_flop);
  // First (static-model) launch split 50/50, so the slow node straggled
  // at ~1.5x the oracle makespan; the converged plan is within 10%.
  EXPECT_GT(makespans.front(), 1.4 * oracle);
  EXPECT_LE(makespans.back(), 1.1 * oracle);
  // And the feedback drained cleanly.
  ASSERT_TRUE(rt.Finish().ok());
  EXPECT_NEAR(rt.SchedulerBacklogSeconds(0), 0.0, 1e-9);
  EXPECT_NEAR(rt.SchedulerBacklogSeconds(1), 0.0, 1e-9);

  // Functional correctness survived every re-split: 4 doublings.
  std::vector<std::int32_t> got(n);
  ASSERT_TRUE(rt.ReadBuffer(*buffer, 0, got.data(), n * 4).ok());
  for (int i = 0; i < n; ++i) ASSERT_EQ(got[i], 16) << i;
}

TEST(ClusterRuntimeErrorsTest, EmptyConnectionListRejected) {
  auto runtime = ClusterRuntime::Connect({});
  EXPECT_FALSE(runtime.ok());
}

TEST(ClusterRuntimeErrorsTest, DeadNodeFailsHandshake) {
  auto [host_end, node_end] = net::CreateSimChannel();
  node_end->Start([](net::Message) { /* mute node */ });
  std::vector<net::ConnectionPtr> connections;
  connections.push_back(std::move(host_end));
  RuntimeOptions options;
  options.rpc_timeout = std::chrono::milliseconds(200);
  auto runtime = ClusterRuntime::Connect(std::move(connections), options);
  EXPECT_FALSE(runtime.ok());
  node_end->Close();
}

}  // namespace
}  // namespace haocl::host
