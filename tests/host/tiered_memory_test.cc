// Tiered device memory: capacity accounting, LRU spill/eviction, and
// out-of-core staged launches. Nodes get deliberately tiny capacities via
// SimCluster's mem_capacities override so a few kilobytes of buffers
// exercise the same machinery gigabytes would.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "host/sim_cluster.h"

namespace haocl::host {
namespace {

constexpr char kDoublerSource[] = R"(
__kernel void doubler2(__global int* data, int n) {
  int i = get_global_id(0);
  if (i < n) data[i] = data[i] * 2;
}
)";

constexpr char kRowSumSource[] = R"(
__kernel void rowsum_tiered(__global const float* in, __global float* out,
                            int m) {
  int i = get_global_id(0);
  float s = 0.0f;
  for (int j = 0; j < m; j++) {
    s = s + in[i * m + j];
  }
  out[i] = s;
}
)";

constexpr char kMatmulSource[] = R"(
__kernel void mm_tiered(__global const float* a, __global const float* b,
                        __global float* c, int n, int rows) {
  int row = get_global_id(0);
  int col = get_global_id(1);
  if (row >= rows || col >= n) return;
  float acc = 0.0f;
  for (int k = 0; k < n; k++) {
    acc += a[row * n + k] * b[k * n + col];
  }
  c[row * n + col] = acc;
}
)";

std::unique_ptr<SimCluster> MakeCluster(
    SimCluster::Shape shape, std::vector<std::uint64_t> capacities,
    RuntimeOptions options = {}) {
  auto cluster =
      SimCluster::Create(shape, std::move(options),
                         SimCluster::PeerTopology::kFullMesh, {},
                         std::move(capacities));
  EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
  return cluster.ok() ? *std::move(cluster) : nullptr;
}

// Blocking doubler launch of `buffer` (whole range) on `node`.
Expected<LaunchResult> LaunchDoubler(ClusterRuntime& runtime,
                                     ProgramId program, BufferId buffer,
                                     std::uint64_t elements, int node) {
  ClusterRuntime::LaunchSpec spec;
  spec.program = program;
  spec.kernel_name = "doubler2";
  spec.args = {KernelArgValue::PartitionedBuffer(buffer, 4),
               KernelArgValue::Scalar<std::int32_t>(
                   static_cast<std::int32_t>(elements))};
  spec.global[0] = elements;
  spec.preferred_node = node;
  return runtime.LaunchKernel(spec);
}

TEST(TieredMemoryTest, HandshakeReportsCapacity) {
  auto cluster = MakeCluster({.gpu_nodes = 1, .cpu_nodes = 1}, {4096, 0});
  ASSERT_NE(cluster, nullptr);
  auto& runtime = cluster->runtime();
  ASSERT_EQ(runtime.devices().size(), 2u);
  EXPECT_EQ(runtime.devices()[0].mem_capacity_bytes, 4096u);
  // The CPU node keeps its stock preset.
  EXPECT_EQ(runtime.devices()[1].mem_capacity_bytes, 64ull << 30);
  auto stats = runtime.NodeMemoryStatsOf(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->capacity_bytes, 4096u);
  EXPECT_EQ(stats->resident_bytes, 0u);
  auto view = runtime.QueryClusterView();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->nodes[0].mem_capacity_bytes, 4096u);
  EXPECT_EQ(view->nodes[0].mem_free_bytes, 4096u);
  EXPECT_FALSE(runtime.NodeMemoryStatsOf(7).ok());
}

TEST(TieredMemoryTest, LaunchReservesWorkingSetInBothLedgers) {
  auto cluster = MakeCluster({.gpu_nodes = 1}, {8192});
  ASSERT_NE(cluster, nullptr);
  auto& runtime = cluster->runtime();
  auto program = runtime.BuildProgram(kDoublerSource);
  ASSERT_TRUE(program.ok());
  auto buffer = runtime.CreateBuffer(4096);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(1024, 3);
  ASSERT_TRUE(runtime.WriteBuffer(*buffer, 0, values.data(), 4096).ok());
  ASSERT_TRUE(LaunchDoubler(runtime, *program, *buffer, 1024, 0).ok());
  auto stats = runtime.NodeMemoryStatsOf(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->resident_bytes, 4096u);
  // The node's own ledger agrees with the host's.
  EXPECT_EQ(cluster->server(0).bytes_resident(), 4096u);
}

TEST(TieredMemoryTest, LruEvictionSpillsColdestBuffer) {
  auto cluster = MakeCluster({.gpu_nodes = 1}, {8192});
  ASSERT_NE(cluster, nullptr);
  auto& runtime = cluster->runtime();
  auto program = runtime.BuildProgram(kDoublerSource);
  ASSERT_TRUE(program.ok());
  BufferId buffers[3];
  std::vector<std::int32_t> values(1024, 5);
  for (auto& id : buffers) {
    auto buffer = runtime.CreateBuffer(4096);
    ASSERT_TRUE(buffer.ok());
    ASSERT_TRUE(runtime.WriteBuffer(*buffer, 0, values.data(), 4096).ok());
    id = *buffer;
  }
  // A then B fill the 8 KiB tier; C forces the eviction of A (the
  // least-recently-launched buffer), whose only fresh copy is the node's —
  // so it spills to the host shadow.
  ASSERT_TRUE(LaunchDoubler(runtime, *program, buffers[0], 1024, 0).ok());
  ASSERT_TRUE(LaunchDoubler(runtime, *program, buffers[1], 1024, 0).ok());
  const TransferStats before = runtime.transfer_stats();
  EXPECT_EQ(before.spill_bytes, 0u);
  ASSERT_TRUE(LaunchDoubler(runtime, *program, buffers[2], 1024, 0).ok());
  auto stats = runtime.NodeMemoryStatsOf(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_LE(stats->resident_bytes, 8192u);
  EXPECT_EQ(cluster->server(0).bytes_resident(), stats->resident_bytes);
  const TransferStats after = runtime.transfer_stats();
  EXPECT_EQ(after.spill_bytes, 4096u);
  EXPECT_EQ(after.spill_transfers, 1u);
  EXPECT_GE(after.evicted_bytes, 4096u);
  // The spill is NOT host coherence payload (BENCH_p2p's metric): C's own
  // input legitimately shipped host -> node, but nothing was gathered.
  EXPECT_EQ(after.host_bytes_in, before.host_bytes_in);
  EXPECT_EQ(after.host_bytes_out, before.host_bytes_out + 4096);
  // A's fresh bytes now live in the host shadow: the read needs no wire
  // traffic and sees the doubled values.
  auto snapshot = runtime.DirectorySnapshotOf(buffers[0]);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot->HostOwns(0, 4096));
  std::vector<std::int32_t> readback(1024);
  ASSERT_TRUE(runtime.ReadBuffer(buffers[0], 0, readback.data(), 4096).ok());
  for (std::int32_t v : readback) ASSERT_EQ(v, 10);
  const TransferStats read_stats = runtime.transfer_stats();
  EXPECT_EQ(read_stats.host_bytes_in, after.host_bytes_in);
}

TEST(TieredMemoryTest, CreateBufferBeyondClusterCapacityFails) {
  auto cluster = MakeCluster({.gpu_nodes = 2}, {4096, 8192});
  ASSERT_NE(cluster, nullptr);
  auto& runtime = cluster->runtime();
  EXPECT_TRUE(runtime.CreateBuffer(12288).ok());  // Exactly the sum.
  auto too_big = runtime.CreateBuffer(12289);
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.code(), ErrorCode::kMemObjectAllocationFailure);
}

TEST(OocLaunchTest, OversubscribedDoublerRunsStagedAndBitIdentical) {
  // Working set 4 KiB against the GPU's 1 KiB tier: 4x oversubscribed.
  // The stage budget double-buffers, so stages are 128 elements (512
  // bytes) each. The roomy CPU node keeps the cluster-wide capacity (the
  // honest clCreateBuffer bound) above the buffer size.
  auto cluster = MakeCluster({.gpu_nodes = 1, .cpu_nodes = 1},
                             {1024, 1 << 20});
  ASSERT_NE(cluster, nullptr);
  auto& runtime = cluster->runtime();
  auto program = runtime.BuildProgram(kDoublerSource);
  ASSERT_TRUE(program.ok());
  auto buffer = runtime.CreateBuffer(4096);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(1024);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<std::int32_t>(i);
  }
  ASSERT_TRUE(runtime.WriteBuffer(*buffer, 0, values.data(), 4096).ok());
  auto result = LaunchDoubler(runtime, *program, *buffer, 1024, 0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->shard_count, 1u);
  EXPECT_EQ(result->stage_count, 8u);  // 1024 / 128.
  auto stats = runtime.NodeMemoryStatsOf(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_LE(stats->resident_bytes, 1024u);
  std::vector<std::int32_t> readback(1024);
  ASSERT_TRUE(runtime.ReadBuffer(*buffer, 0, readback.data(), 4096).ok());
  for (std::size_t i = 0; i < readback.size(); ++i) {
    ASSERT_EQ(readback[i], values[i] * 2) << "element " << i;
  }
}

// Runs the mm_tiered matmul on one GPU with the given capacity override
// (0 = unbounded) and returns the output matrix.
std::vector<float> RunMatmul(std::uint64_t capacity,
                             std::uint32_t* stage_count) {
  constexpr int kN = 64;
  auto cluster = MakeCluster({.gpu_nodes = 1},
                             capacity != 0 ? std::vector<std::uint64_t>{capacity}
                                           : std::vector<std::uint64_t>{});
  EXPECT_NE(cluster, nullptr);
  auto& runtime = cluster->runtime();
  auto program = runtime.BuildProgram(kMatmulSource);
  EXPECT_TRUE(program.ok()) << runtime.BuildLog(program.ok() ? *program : 0);
  const std::uint64_t bytes = static_cast<std::uint64_t>(kN) * kN * 4;
  auto a = runtime.CreateBuffer(bytes);
  auto b = runtime.CreateBuffer(bytes);
  auto c = runtime.CreateBuffer(bytes);
  EXPECT_TRUE(a.ok() && b.ok() && c.ok());
  std::vector<float> host_a(static_cast<std::size_t>(kN) * kN);
  std::vector<float> host_b(host_a.size());
  std::mt19937 rng(42);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& v : host_a) v = dist(rng);
  for (auto& v : host_b) v = dist(rng);
  EXPECT_TRUE(runtime.WriteBuffer(*a, 0, host_a.data(), bytes).ok());
  EXPECT_TRUE(runtime.WriteBuffer(*b, 0, host_b.data(), bytes).ok());

  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "mm_tiered";
  const std::uint64_t row_bytes = kN * 4;
  spec.args = {KernelArgValue::PartitionedBuffer(*a, row_bytes),
               KernelArgValue::Buffer(*b),
               KernelArgValue::PartitionedBuffer(*c, row_bytes),
               KernelArgValue::Scalar<std::int32_t>(kN),
               KernelArgValue::Scalar<std::int32_t>(kN)};
  spec.work_dim = 2;
  spec.global[0] = kN;
  spec.global[1] = kN;
  spec.preferred_node = 0;
  auto result = runtime.LaunchKernel(spec);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok() && stage_count != nullptr) {
    *stage_count = result->stage_count;
  }
  std::vector<float> out(host_a.size());
  EXPECT_TRUE(runtime.ReadBuffer(*c, 0, out.data(), bytes).ok());
  if (capacity != 0) {
    auto stats = runtime.NodeMemoryStatsOf(0);
    EXPECT_TRUE(stats.ok());
    if (stats.ok()) EXPECT_LE(stats->resident_bytes, capacity);
  }
  return out;
}

TEST(OocLaunchTest, OversubscribedMatmulBitIdenticalToInCore) {
  // b (16 KiB, replicated) + 64 rows x 512 B = 48 KiB working set against
  // a 24 KiB device: 2x oversubscribed, staged 8 rows at a time.
  std::uint32_t staged_stages = 0;
  std::uint32_t incore_stages = 0;
  const std::vector<float> staged = RunMatmul(24576, &staged_stages);
  const std::vector<float> incore = RunMatmul(0, &incore_stages);
  EXPECT_EQ(incore_stages, 1u);
  EXPECT_EQ(staged_stages, 8u);
  ASSERT_EQ(staged.size(), incore.size());
  for (std::size_t i = 0; i < staged.size(); ++i) {
    ASSERT_EQ(staged[i], incore[i]) << "element " << i;  // Bit-identical.
  }
}

// Virtual makespan of the oversubscribed rowsum with the staged pipeline
// on or off. Compute is hinted to roughly match the per-stage transfer
// time, the regime where overlapping transfers with compute pays.
double RowSumMakespan(bool pipelined) {
  constexpr std::uint64_t kRows = 8192;
  constexpr std::uint64_t kCols = 16;
  RuntimeOptions options;
  options.stage_pipeline = pipelined;
  auto cluster = MakeCluster({.gpu_nodes = 1, .cpu_nodes = 1},
                             {128 << 10, 4 << 20}, options);
  EXPECT_NE(cluster, nullptr);
  auto& runtime = cluster->runtime();
  auto program = runtime.BuildProgram(kRowSumSource);
  EXPECT_TRUE(program.ok());
  const std::uint64_t in_bytes = kRows * kCols * 4;
  const std::uint64_t out_bytes = kRows * 4;
  auto in = runtime.CreateBuffer(in_bytes);
  auto out = runtime.CreateBuffer(out_bytes);
  EXPECT_TRUE(in.ok() && out.ok());
  std::vector<float> host_in(kRows * kCols, 0.5f);
  EXPECT_TRUE(runtime.WriteBuffer(*in, 0, host_in.data(), in_bytes).ok());

  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "rowsum_tiered";
  spec.args = {KernelArgValue::PartitionedBuffer(*in, kCols * 4),
               KernelArgValue::PartitionedBuffer(*out, 4),
               KernelArgValue::Scalar<std::int32_t>(kCols)};
  spec.global[0] = kRows;
  spec.preferred_node = 0;
  sim::KernelCost cost;
  cost.flops = 2.8e10;  // ~0.6 ms per stage on the modeled GPU.
  cost.bytes = 1e6;
  spec.cost_hint = cost;
  const double start = runtime.timeline().Makespan();
  auto result = runtime.LaunchKernel(spec);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok()) EXPECT_GT(result->stage_count, 4u);
  std::vector<float> host_out(kRows);
  EXPECT_TRUE(runtime.ReadBuffer(*out, 0, host_out.data(), out_bytes).ok());
  for (float v : host_out) EXPECT_FLOAT_EQ(v, 8.0f);
  EXPECT_TRUE(runtime.Finish().ok());
  return runtime.timeline().Makespan() - start;
}

TEST(OocLaunchTest, StagedPipelineBeatsSerialStaging) {
  const double serial = RowSumMakespan(false);
  const double pipelined = RowSumMakespan(true);
  EXPECT_GT(serial, 0.0);
  EXPECT_GT(pipelined, 0.0);
  // The acceptance bar is 1.3x in the bench's regime; assert a slightly
  // softer bound here to stay robust to worker-interleaving jitter in the
  // virtual-time recording order.
  EXPECT_GT(serial / pipelined, 1.2);
}

TEST(TieredMemoryTest, RandomizedLaunchesAndEvictionsKeepLedgersConsistent) {
  auto cluster = MakeCluster({.gpu_nodes = 1, .cpu_nodes = 1}, {8192, 6144});
  ASSERT_NE(cluster, nullptr);
  auto& runtime = cluster->runtime();
  auto program = runtime.BuildProgram(kDoublerSource);
  ASSERT_TRUE(program.ok());
  constexpr std::uint64_t kBufferBytes = 3072;  // 768 ints.
  std::vector<BufferId> buffers;
  std::vector<std::int32_t> scratch(kBufferBytes / 4, 1);
  for (int i = 0; i < 4; ++i) {
    auto buffer = runtime.CreateBuffer(kBufferBytes);
    ASSERT_TRUE(buffer.ok());
    ASSERT_TRUE(
        runtime.WriteBuffer(*buffer, 0, scratch.data(), kBufferBytes).ok());
    buffers.push_back(*buffer);
  }
  std::mt19937 rng(1234);
  auto check_invariants = [&] {
    ASSERT_TRUE(runtime.Finish().ok());
    for (std::size_t node = 0; node < 2; ++node) {
      auto stats = runtime.NodeMemoryStatsOf(node);
      ASSERT_TRUE(stats.ok());
      // Accounted resident bytes never exceed capacity...
      EXPECT_LE(stats->resident_bytes, stats->capacity_bytes);
      // ...the node's own ledger never disagrees with the host's
      // (no region resident-but-unaccounted, no double-free)...
      EXPECT_EQ(cluster->server(node).bytes_resident(),
                stats->resident_bytes);
      // ...and every directory-owned byte is materialized in the pool.
      std::uint64_t owned = 0;
      for (BufferId id : buffers) {
        auto snapshot = runtime.DirectorySnapshotOf(id);
        ASSERT_TRUE(snapshot.ok());
        for (const auto& region : snapshot->regions) {
          for (std::int32_t owner : region.owners) {
            if (owner == static_cast<std::int32_t>(node)) {
              owned += region.end - region.begin;
            }
          }
        }
      }
      EXPECT_LE(owned, stats->resident_bytes);
    }
  };
  for (int op = 0; op < 120; ++op) {
    const BufferId id = buffers[rng() % buffers.size()];
    const int node = static_cast<int>(rng() % 2);
    switch (rng() % 4) {
      case 0:  // Launch (reserves, may evict a colder buffer).
        ASSERT_TRUE(
            LaunchDoubler(runtime, *program, id, kBufferBytes / 4, node)
                .ok());
        break;
      case 1: {  // Host write: every node copy goes stale.
        ASSERT_TRUE(
            runtime.WriteBuffer(id, 0, scratch.data(), kBufferBytes).ok());
        break;
      }
      case 2: {  // Migration prefetch (reserves on the target too).
        auto handle = runtime.SubmitMigrate(id, {}, node);
        ASSERT_TRUE(handle.ok());
        ASSERT_TRUE(runtime.Wait(*handle).ok());
        ASSERT_TRUE(runtime.ReleaseCommand(*handle).ok());
        break;
      }
      case 3: {  // Lazy gather to the host.
        std::vector<std::int32_t> readback(kBufferBytes / 4);
        ASSERT_TRUE(
            runtime.ReadBuffer(id, 0, readback.data(), kBufferBytes).ok());
        break;
      }
    }
    if (op % 20 == 19) check_invariants();
  }
  check_invariants();
}

TEST(TieredMemoryTest, CapacityPressureSessionKeepsResidentBounded) {
  // A long launch session cycling three buffers through a tier that holds
  // barely two: every launch reserves, most evict, and the ledgers must
  // stay exact throughout (the 10k-launch acceptance scenario).
  auto cluster = MakeCluster({.gpu_nodes = 1}, {2048});
  ASSERT_NE(cluster, nullptr);
  auto& runtime = cluster->runtime();
  auto program = runtime.BuildProgram(kDoublerSource);
  ASSERT_TRUE(program.ok());
  std::vector<BufferId> buffers;
  std::vector<std::int32_t> values(256, 1);
  for (int i = 0; i < 3; ++i) {
    auto buffer = runtime.CreateBuffer(1024);
    ASSERT_TRUE(buffer.ok());
    ASSERT_TRUE(runtime.WriteBuffer(*buffer, 0, values.data(), 1024).ok());
    buffers.push_back(*buffer);
  }
  constexpr int kLaunches = 10000;
  for (int i = 0; i < kLaunches; ++i) {
    auto result =
        LaunchDoubler(runtime, *program, buffers[i % buffers.size()], 256, 0);
    ASSERT_TRUE(result.ok()) << "launch " << i << ": "
                             << result.status().ToString();
    if (i % 1000 == 0) {
      auto stats = runtime.NodeMemoryStatsOf(0);
      ASSERT_TRUE(stats.ok());
      ASSERT_LE(stats->resident_bytes, 2048u);
    }
  }
  ASSERT_TRUE(runtime.Finish().ok());
  auto stats = runtime.NodeMemoryStatsOf(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_LE(stats->resident_bytes, 2048u);
  EXPECT_EQ(cluster->server(0).bytes_resident(), stats->resident_bytes);
  const TransferStats stats_all = runtime.transfer_stats();
  EXPECT_GT(stats_all.evicted_bytes, 0u);
}

}  // namespace
}  // namespace haocl::host
