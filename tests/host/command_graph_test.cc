// The asynchronous command graph: dependency ordering, concurrent
// execution with out-of-order completion (the distinct-node overlap the
// dispatch redesign exists for), manual (user-event) gating, failure
// propagation to transitive dependents, and monotonic profiling stamps.
#include "host/command_graph.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

namespace haocl::host {
namespace {

using Exec = CommandGraph::Execution;

TEST(CommandGraphTest, DependencyChainRunsInOrder) {
  CommandGraph graph;
  std::mutex mutex;
  std::vector<int> order;
  auto record = [&](int tag) {
    return [&, tag](Exec&) {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(tag);
      return Status::Ok();
    };
  };
  const CommandId a = graph.Submit(record(1), {}, "a");
  const CommandId b = graph.Submit(record(2), {a}, "b");
  const CommandId c = graph.Submit(record(3), {b}, "c");
  ASSERT_TRUE(graph.Wait(c).ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(*graph.QueryState(a), CommandState::kComplete);
  EXPECT_EQ(*graph.QueryState(b), CommandState::kComplete);
  EXPECT_EQ(graph.CommandsRetired(), 3u);
}

TEST(CommandGraphTest, DiamondWaitsForBothBranches) {
  CommandGraph graph;
  std::atomic<int> done{0};
  auto tick = [&](Exec&) {
    ++done;
    return Status::Ok();
  };
  const CommandId root = graph.Submit(tick, {}, "root");
  const CommandId left = graph.Submit(tick, {root}, "left");
  const CommandId right = graph.Submit(tick, {root}, "right");
  int seen_at_join = -1;
  const CommandId join = graph.Submit(
      [&](Exec&) {
        seen_at_join = done.load();
        return Status::Ok();
      },
      {left, right}, "join");
  ASSERT_TRUE(graph.Wait(join).ok());
  EXPECT_EQ(seen_at_join, 3);  // Root + both branches retired first.
}

// Two independent commands must execute CONCURRENTLY and may retire out of
// submission order. Each body waits for the other to reach a checkpoint;
// serialized execution would deadlock (bounded by the timeout), and the
// second-submitted command provably finishes first.
TEST(CommandGraphTest, IndependentCommandsOverlapAndRetireOutOfOrder) {
  CommandGraph graph;
  std::mutex mutex;
  std::condition_variable cv;
  bool a_started = false;
  bool release_a = false;

  const CommandId a = graph.Submit(
      [&](Exec&) {
        std::unique_lock<std::mutex> lock(mutex);
        a_started = true;
        cv.notify_all();
        // A holds its worker until the test releases it, so B provably
        // starts, runs, and retires while A is mid-flight.
        if (!cv.wait_for(lock, std::chrono::seconds(10),
                         [&] { return release_a; })) {
          return Status(ErrorCode::kInternal, "test never released A");
        }
        return Status::Ok();
      },
      {}, "a");
  const CommandId b = graph.Submit(
      [&](Exec&) {
        std::unique_lock<std::mutex> lock(mutex);
        // B cannot finish before A is running: overlap is mandatory.
        if (!cv.wait_for(lock, std::chrono::seconds(10),
                         [&] { return a_started; })) {
          return Status(ErrorCode::kInternal, "no overlap: A never started");
        }
        return Status::Ok();
      },
      {}, "b");

  // B (submitted second) retires while A is still running.
  ASSERT_TRUE(graph.Wait(b).ok());
  EXPECT_EQ(*graph.QueryState(a), CommandState::kRunning);
  {
    std::lock_guard<std::mutex> lock(mutex);
    release_a = true;
  }
  cv.notify_all();
  ASSERT_TRUE(graph.Wait(a).ok());
  EXPECT_GE(graph.PeakRunning(), 2u);
}

TEST(CommandGraphTest, FailurePropagatesToTransitiveDependents) {
  CommandGraph graph;
  bool downstream_ran = false;
  const CommandId bad = graph.Submit(
      [](Exec&) { return Status(ErrorCode::kNetworkError, "boom"); }, {},
      "bad");
  const CommandId child = graph.Submit(
      [&](Exec&) {
        downstream_ran = true;
        return Status::Ok();
      },
      {bad}, "child");
  const CommandId grandchild = graph.Submit(
      [&](Exec&) {
        downstream_ran = true;
        return Status::Ok();
      },
      {child}, "grandchild");
  const CommandId independent =
      graph.Submit([](Exec&) { return Status::Ok(); }, {}, "independent");

  EXPECT_EQ(graph.Wait(bad).code(), ErrorCode::kNetworkError);
  EXPECT_EQ(graph.Wait(child).code(), ErrorCode::kDependencyFailed);
  EXPECT_EQ(graph.Wait(grandchild).code(), ErrorCode::kDependencyFailed);
  EXPECT_TRUE(graph.Wait(independent).ok());
  EXPECT_FALSE(downstream_ran);
  EXPECT_EQ(*graph.QueryState(child), CommandState::kFailed);
}

TEST(CommandGraphTest, ManualCommandGatesDependents) {
  CommandGraph graph;
  bool ran = false;
  const CommandId gate = graph.SubmitManual({}, "gate");
  const CommandId gated = graph.Submit(
      [&](Exec&) {
        ran = true;
        return Status::Ok();
      },
      {gate}, "gated");

  // Deterministic: the dependent cannot leave kQueued before the gate
  // resolves, no matter how long the workers spin.
  EXPECT_EQ(*graph.QueryState(gated), CommandState::kQueued);
  EXPECT_FALSE(ran);

  ASSERT_TRUE(graph.Complete(gate).ok());
  ASSERT_TRUE(graph.Wait(gated).ok());
  EXPECT_TRUE(ran);
  // Resolving twice is an error.
  EXPECT_EQ(graph.Complete(gate).code(), ErrorCode::kInvalidOperation);
}

TEST(CommandGraphTest, ManualFailureFailsDependents) {
  CommandGraph graph;
  const CommandId gate = graph.SubmitManual({}, "gate");
  const CommandId gated =
      graph.Submit([](Exec&) { return Status::Ok(); }, {gate}, "gated");
  ASSERT_TRUE(
      graph.Complete(gate, Status(ErrorCode::kInternal, "aborted")).ok());
  EXPECT_EQ(graph.Wait(gated).code(), ErrorCode::kDependencyFailed);
}

TEST(CommandGraphTest, ProfileStampsAreMonotonic) {
  CommandGraph graph;
  const CommandId a = graph.Submit([](Exec&) { return Status::Ok(); }, {});
  const CommandId b =
      graph.Submit([](Exec& e) {
        e.SetSpan(0.5, 0.75);  // Modeled work interval.
        return Status::Ok();
      }, {a});
  ASSERT_TRUE(graph.Wait(b).ok());

  for (CommandId id : {a, b}) {
    auto profile = graph.QueryProfile(id);
    ASSERT_TRUE(profile.ok());
    EXPECT_LT(profile->queued_at, profile->submitted_at);
    EXPECT_LE(profile->submitted_at, profile->started_at);
    EXPECT_LE(profile->started_at, profile->finished_at);
  }
  auto b_profile = graph.QueryProfile(b);
  EXPECT_DOUBLE_EQ(b_profile->started_at, 0.5);
  EXPECT_DOUBLE_EQ(b_profile->finished_at, 0.75);
}

TEST(CommandGraphTest, UnknownDependencyFailsTheCommand) {
  CommandGraph graph;
  const CommandId cmd =
      graph.Submit([](Exec&) { return Status::Ok(); }, {9999}, "orphan");
  EXPECT_EQ(graph.Wait(cmd).code(), ErrorCode::kInvalidValue);
}

TEST(CommandGraphTest, UnknownIdQueriesError) {
  CommandGraph graph;
  EXPECT_EQ(graph.Wait(42).code(), ErrorCode::kInvalidValue);
  EXPECT_FALSE(graph.QueryState(42).ok());
  EXPECT_FALSE(graph.QueryProfile(42).ok());
  EXPECT_EQ(graph.Complete(42).code(), ErrorCode::kInvalidValue);
}

TEST(CommandGraphTest, ReleaseReclaimsRetiredRecords) {
  CommandGraph graph;
  const CommandId cmd = graph.Submit([](Exec&) { return Status::Ok(); });
  ASSERT_TRUE(graph.Wait(cmd).ok());
  EXPECT_EQ(graph.LiveRecords(), 1u);
  EXPECT_TRUE(graph.Release(cmd));
  EXPECT_EQ(graph.LiveRecords(), 0u);
  // The record is gone; queries error, Wait resolves as retired-OK.
  EXPECT_FALSE(graph.QueryState(cmd).ok());
  EXPECT_TRUE(graph.Wait(cmd).ok());
  // Ids the graph never issued stay errors.
  EXPECT_FALSE(graph.Wait(cmd + 1000).ok());
}

TEST(CommandGraphTest, RetainKeepsRecordAcrossOneRelease) {
  CommandGraph graph;
  const CommandId cmd = graph.Submit([](Exec&) { return Status::Ok(); });
  graph.Retain(cmd);
  ASSERT_TRUE(graph.Wait(cmd).ok());
  EXPECT_FALSE(graph.Release(cmd));  // One reference left.
  EXPECT_TRUE(graph.QueryState(cmd).ok());
  EXPECT_TRUE(graph.Release(cmd));
  EXPECT_FALSE(graph.QueryState(cmd).ok());
}

TEST(CommandGraphTest, ReleaseBeforeRetirementReclaimsAtRetire) {
  CommandGraph graph;
  const CommandId gate = graph.SubmitManual({}, "gate");
  const CommandId cmd =
      graph.Submit([](Exec&) { return Status::Ok(); }, {gate}, "after");
  EXPECT_TRUE(graph.Release(cmd));  // Queued; reclaimed once it retires.
  EXPECT_EQ(graph.LiveRecords(), 2u);  // Still live until the gate opens.
  ASSERT_TRUE(graph.Complete(gate).ok());
  ASSERT_TRUE(graph.Wait(cmd).ok());  // Retired-OK (record may be gone).
  graph.Release(gate);
  EXPECT_EQ(graph.LiveRecords(), 0u);
}

TEST(CommandGraphTest, DependenciesOnReclaimedIdsResolveAsRetired) {
  CommandGraph graph;
  const CommandId a = graph.Submit([](Exec&) { return Status::Ok(); });
  ASSERT_TRUE(graph.Wait(a).ok());
  ASSERT_TRUE(graph.Release(a));
  // Strong and weak edges on the reclaimed id behave like edges on any
  // retired-OK command: the dependent simply runs.
  const CommandId b =
      graph.Submit([](Exec&) { return Status::Ok(); }, {a}, "b", {a});
  EXPECT_TRUE(graph.Wait(b).ok());
}

TEST(CommandGraphTest, QueryStatusPeeksWithoutBlocking) {
  CommandGraph graph;
  const CommandId gate = graph.SubmitManual({}, "gate");
  EXPECT_EQ(graph.QueryStatus(gate).code(), ErrorCode::kInvalidOperation);
  ASSERT_TRUE(graph.Complete(gate).ok());
  EXPECT_TRUE(graph.QueryStatus(gate).ok());
}

TEST(CommandGraphTest, ShutdownFailsPendingCommands) {
  CommandGraph graph;
  const CommandId gate = graph.SubmitManual({}, "gate");
  const CommandId gated =
      graph.Submit([](Exec&) { return Status::Ok(); }, {gate}, "gated");
  graph.Shutdown();
  EXPECT_EQ(*graph.QueryState(gate), CommandState::kFailed);
  EXPECT_EQ(*graph.QueryState(gated), CommandState::kFailed);
  // Submitting after shutdown fails immediately instead of hanging.
  const CommandId late =
      graph.Submit([](Exec&) { return Status::Ok(); }, {}, "late");
  EXPECT_EQ(graph.Wait(late).code(), ErrorCode::kInternal);
}

TEST(CommandGraphTest, WaitAllDrainsEverything) {
  CommandGraph graph;
  std::atomic<int> done{0};
  std::vector<CommandId> ids;
  for (int i = 0; i < 32; ++i) {
    ids.push_back(graph.Submit(
        [&](Exec&) {
          ++done;
          return Status::Ok();
        },
        i == 0 ? std::vector<CommandId>{} : std::vector<CommandId>{ids[0]}));
  }
  ASSERT_TRUE(graph.WaitAll().ok());
  EXPECT_EQ(done.load(), 32);
  EXPECT_EQ(graph.RunningCount(), 0u);
}

}  // namespace
}  // namespace haocl::host
