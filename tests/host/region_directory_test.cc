// RegionDirectory unit tests: interval arithmetic the coherence layer
// stands on — tiling invariants, write/transfer transitions, coalescing,
// and the missing-range queries the transfer engine plans with.
#include "host/region_directory.h"

#include <gtest/gtest.h>

namespace haocl::host {
namespace {

constexpr RegionDirectory::Owner kN0 = 0;
constexpr RegionDirectory::Owner kN1 = 1;
constexpr RegionDirectory::Owner kN2 = 2;
constexpr RegionDirectory::Owner kHost = 3;

RegionDirectory Make(std::uint64_t size = 1000) {
  return RegionDirectory(size, /*owner_count=*/4, /*initial_owner=*/kHost);
}

// Every byte in [0, size) belongs to exactly one region, regions are
// ordered, non-empty, and always have at least one owner.
void CheckInvariants(const RegionDirectory& dir) {
  std::uint64_t expected_begin = 0;
  for (const auto& region : dir.regions()) {
    EXPECT_EQ(region.begin, expected_begin);
    EXPECT_LT(region.begin, region.end);
    EXPECT_FALSE(region.owners.empty());
    EXPECT_TRUE(std::is_sorted(region.owners.begin(), region.owners.end()));
    expected_begin = region.end;
  }
  EXPECT_EQ(expected_begin, dir.size());
}

TEST(RegionDirectoryTest, StartsWithInitialOwnerEverywhere) {
  RegionDirectory dir = Make();
  EXPECT_EQ(dir.region_count(), 1u);
  EXPECT_TRUE(dir.Covers(kHost, 0, 1000));
  EXPECT_FALSE(dir.Covers(kN0, 0, 1));
  EXPECT_EQ(dir.BytesOwnedBy(kHost), 1000u);
  EXPECT_EQ(dir.epoch(), 0u);
  CheckInvariants(dir);
}

TEST(RegionDirectoryTest, MarkWrittenReplacesOwnersAndBumpsEpoch) {
  RegionDirectory dir = Make();
  dir.MarkWritten(100, 300, kN1);
  EXPECT_EQ(dir.epoch(), 1u);
  EXPECT_TRUE(dir.Covers(kN1, 100, 300));
  EXPECT_FALSE(dir.Covers(kHost, 100, 300));
  EXPECT_TRUE(dir.Covers(kHost, 0, 100));
  EXPECT_TRUE(dir.Covers(kHost, 300, 1000));
  EXPECT_EQ(dir.BytesOwnedBy(kN1), 200u);
  EXPECT_EQ(dir.BytesOwnedBy(kHost), 800u);
  CheckInvariants(dir);
}

TEST(RegionDirectoryTest, AddOwnerJoinsWithoutEvicting) {
  RegionDirectory dir = Make();
  dir.MarkWritten(0, 1000, kN0);
  dir.AddOwner(200, 600, kN1);
  EXPECT_TRUE(dir.Covers(kN0, 0, 1000));
  EXPECT_TRUE(dir.Covers(kN1, 200, 600));
  EXPECT_FALSE(dir.Covers(kN1, 199, 201));
  CheckInvariants(dir);
}

TEST(RegionDirectoryTest, AdjacentEqualOwnerRegionsCoalesce) {
  RegionDirectory dir = Make();
  dir.MarkWritten(0, 500, kN0);
  dir.MarkWritten(500, 1000, kN0);
  EXPECT_EQ(dir.region_count(), 1u);
  // Different owners stay split...
  dir.MarkWritten(250, 750, kN1);
  EXPECT_EQ(dir.region_count(), 3u);
  // ...until a covering write folds them back together.
  dir.MarkWritten(0, 1000, kN2);
  EXPECT_EQ(dir.region_count(), 1u);
  CheckInvariants(dir);
}

TEST(RegionDirectoryTest, MissingForCoalescesAcrossOwnerBoundaries) {
  RegionDirectory dir = Make();
  // [0,200) node0, [200,400) node1, [400,600) host, [600,1000) node2:
  dir.MarkWritten(0, 200, kN0);
  dir.MarkWritten(200, 400, kN1);
  dir.MarkWritten(600, 1000, kN2);
  // The host misses [0,400) and [600,1000); the two stale runs either side
  // of its [400,600) must each come back as ONE span even though their
  // owner sets differ mid-run.
  auto missing = dir.MissingFor(kHost, 0, 1000);
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0].begin, 0u);
  EXPECT_EQ(missing[0].end, 400u);
  EXPECT_EQ(missing[1].begin, 600u);
  EXPECT_EQ(missing[1].end, 1000u);
  // Clipped queries clip the spans too.
  missing = dir.MissingFor(kHost, 100, 700);
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0].begin, 100u);
  EXPECT_EQ(missing[0].end, 400u);
  EXPECT_EQ(missing[1].begin, 600u);
  EXPECT_EQ(missing[1].end, 700u);
  EXPECT_TRUE(dir.MissingFor(kHost, 450, 550).empty());
}

TEST(RegionDirectoryTest, QueryClipsToRange) {
  RegionDirectory dir = Make();
  dir.MarkWritten(300, 700, kN0);
  auto regions = dir.Query(100, 500);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].begin, 100u);
  EXPECT_EQ(regions[0].end, 300u);
  EXPECT_EQ(regions[0].owners, std::vector<RegionDirectory::Owner>{kHost});
  EXPECT_EQ(regions[1].begin, 300u);
  EXPECT_EQ(regions[1].end, 500u);
  EXPECT_EQ(regions[1].owners, std::vector<RegionDirectory::Owner>{kN0});
}

TEST(RegionDirectoryTest, EpochsTrackDistinctWrites) {
  RegionDirectory dir = Make();
  dir.MarkWritten(0, 500, kN0);   // epoch 1
  dir.MarkWritten(500, 1000, kN1);  // epoch 2
  auto regions = dir.Query(0, 1000);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].epoch, 1u);
  EXPECT_EQ(regions[1].epoch, 2u);
  // A transfer does not advance the epoch.
  dir.AddOwner(0, 500, kHost);
  EXPECT_EQ(dir.epoch(), 2u);
}

TEST(RegionDirectoryTest, ManyInterleavedWritesKeepTilingSound) {
  RegionDirectory dir = Make(4096);
  std::uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = next() % 4096;
    const std::uint64_t b = next() % 4096;
    const std::uint64_t begin = std::min(a, b);
    const std::uint64_t end = std::max(a, b) + 1;
    const auto owner = static_cast<RegionDirectory::Owner>(next() % 4);
    if (next() % 2 == 0) {
      dir.MarkWritten(begin, end, owner);
      EXPECT_TRUE(dir.Covers(owner, begin, end));
      EXPECT_TRUE(dir.MissingFor(owner, begin, end).empty());
    } else {
      dir.AddOwner(begin, end, owner);
      EXPECT_TRUE(dir.Covers(owner, begin, end));
    }
    CheckInvariants(dir);
  }
  // Steady state stays compact: at most one region per owner-set change,
  // far below the operation count.
  EXPECT_LT(dir.region_count(), 64u);
}

}  // namespace
}  // namespace haocl::host
