// VirtualTimeline: phase accounting, resource serialization, paper-scale
// amplification, and the peer-to-peer replication model.
#include "host/virtual_timeline.h"

#include <gtest/gtest.h>

namespace haocl::host {
namespace {

VirtualTimeline MakeTimeline(std::size_t gpus) {
  return VirtualTimeline(sim::ClusterTopology::Make(gpus, 0));
}

TEST(VirtualTimelineTest, PhasesAccumulate) {
  VirtualTimeline timeline = MakeTimeline(2);
  timeline.RecordDataCreate(1.5);
  timeline.RecordTransferToNode(0, 1'000'000);
  timeline.RecordKernel(0, 0.25);
  timeline.RecordTransferFromNode(0, 1'000'000);
  EXPECT_DOUBLE_EQ(timeline.phases().Get(kPhaseDataCreate), 1.5);
  EXPECT_GT(timeline.phases().Get(kPhaseDataTransfer), 0.0);
  EXPECT_DOUBLE_EQ(timeline.phases().Get(kPhaseCompute), 0.25);
  EXPECT_GT(timeline.Makespan(), 1.75);
}

TEST(VirtualTimelineTest, PerNodeChainsAreIndependent) {
  VirtualTimeline timeline = MakeTimeline(2);
  timeline.RecordKernel(0, 1.0);
  timeline.RecordKernel(1, 1.0);
  // Two kernels on different nodes overlap: makespan 1s, not 2s.
  EXPECT_NEAR(timeline.Makespan(), 1.0, 1e-9);
  timeline.RecordKernel(0, 1.0);  // Same node serializes.
  EXPECT_NEAR(timeline.Makespan(), 2.0, 1e-9);
}

TEST(VirtualTimelineTest, TransferAmplificationScalesBytes) {
  VirtualTimeline small = MakeTimeline(1);
  small.RecordTransferToNode(0, 1'000'000);
  VirtualTimeline big = MakeTimeline(1);
  big.SetAmplification(/*transfer=*/100.0, /*compute=*/1.0);
  big.RecordTransferToNode(0, 1'000'000);
  // 100x the bytes: wire time grows ~100x (minus the constant latency).
  EXPECT_GT(big.phases().Get(kPhaseDataTransfer),
            50.0 * small.phases().Get(kPhaseDataTransfer));
}

TEST(VirtualTimelineTest, DataCreateAmplifiesWithTransferFactor) {
  VirtualTimeline timeline = MakeTimeline(1);
  timeline.SetAmplification(8.0, 1.0);
  timeline.RecordDataCreate(1.0);
  EXPECT_DOUBLE_EQ(timeline.phases().Get(kPhaseDataCreate), 8.0);
}

TEST(VirtualTimelineTest, KernelSecondsAreNotAmplifiedByTimeline) {
  // Compute amplification is the caller's job (cost-based), so constant
  // launch overheads are not inflated; RecordKernel must take the seconds
  // it is given.
  VirtualTimeline timeline = MakeTimeline(1);
  timeline.SetAmplification(10.0, 10.0);
  timeline.RecordKernel(0, 0.5);
  EXPECT_DOUBLE_EQ(timeline.phases().Get(kPhaseCompute), 0.5);
}

TEST(VirtualTimelineTest, ReplicationBuildsMulticastTree) {
  // Broadcasting B bytes to 8 nodes: host-only scatter serializes 8 wire
  // times on the uplink; with peers relaying, later copies come from
  // earlier receivers in parallel, so completion is ~tree depth.
  const std::uint64_t bytes = 100'000'000;  // ~0.85 s on GbE.
  VirtualTimeline serial = MakeTimeline(8);
  for (std::size_t node = 0; node < 8; ++node) {
    serial.RecordTransferToNode(node, bytes);
  }
  VirtualTimeline tree = MakeTimeline(8);
  std::vector<std::size_t> holders;
  for (std::size_t node = 0; node < 8; ++node) {
    tree.RecordReplicationToNode(node, bytes, holders);
    holders.push_back(node);
  }
  EXPECT_LT(tree.Makespan(), 0.7 * serial.Makespan());
}

TEST(VirtualTimelineTest, ReplicationWithNoHoldersFallsBackToHost) {
  VirtualTimeline timeline = MakeTimeline(2);
  const sim::SimTime done = timeline.RecordReplicationToNode(1, 1000, {});
  EXPECT_GT(done, 0.0);
  EXPECT_GT(timeline.phases().Get(kPhaseDataTransfer), 0.0);
}

TEST(VirtualTimelineTest, ResetPreservesAmplification) {
  VirtualTimeline timeline = MakeTimeline(1);
  timeline.SetAmplification(4.0, 9.0);
  timeline.RecordDataCreate(1.0);
  timeline.Reset();
  EXPECT_DOUBLE_EQ(timeline.Makespan(), 0.0);
  EXPECT_DOUBLE_EQ(timeline.phases().Total(), 0.0);
  EXPECT_DOUBLE_EQ(timeline.transfer_amplification(), 4.0);
  EXPECT_DOUBLE_EQ(timeline.compute_amplification(), 9.0);
}

TEST(VirtualTimelineTest, EnergyTracksComputeBusyTime) {
  VirtualTimeline timeline = MakeTimeline(1);  // One Tesla P4 at 75 W.
  timeline.RecordKernel(0, 2.0);
  EXPECT_NEAR(timeline.TotalEnergyJoules(), 150.0, 1.0);
}

TEST(VirtualTimelineTest, GatherSynchronizesHostClock) {
  VirtualTimeline timeline = MakeTimeline(2);
  timeline.RecordKernel(1, 3.0);
  timeline.RecordTransferFromNode(1, 1000);
  // The host waited for node 1's result, so a later host-side create
  // starts after the gather.
  timeline.RecordDataCreate(0.5);
  EXPECT_GT(timeline.Makespan(), 3.5);
}

}  // namespace
}  // namespace haocl::host
