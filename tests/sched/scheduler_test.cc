// Scheduling policies: eligibility rules, cost-model decisions, fairness
// properties, and the user-extension registry.
#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>

namespace haocl::sched {
namespace {

NodeView MakeNode(const std::string& name, NodeType type) {
  NodeView node;
  node.name = name;
  node.type = type;
  node.spec = sim::SpecForType(type);
  return node;
}

ClusterView MakeCluster(std::size_t gpus, std::size_t fpgas,
                        std::size_t cpus = 0) {
  ClusterView view;
  for (std::size_t i = 0; i < gpus; ++i) {
    view.nodes.push_back(MakeNode("gpu" + std::to_string(i), NodeType::kGpu));
  }
  for (std::size_t i = 0; i < fpgas; ++i) {
    view.nodes.push_back(
        MakeNode("fpga" + std::to_string(i), NodeType::kFpga));
  }
  for (std::size_t i = 0; i < cpus; ++i) {
    view.nodes.push_back(MakeNode("cpu" + std::to_string(i), NodeType::kCpu));
  }
  return view;
}

TaskInfo RegularTask(double gflops = 10.0) {
  TaskInfo task;
  task.kernel_name = "matmul_partition";
  task.cost.flops = gflops * 1e9;
  task.cost.bytes = 1e8;
  task.input_bytes = 1 << 20;
  task.output_bytes = 1 << 20;
  return task;
}

TEST(EligibilityTest, FpgaNeedsBitstream) {
  ClusterView cluster = MakeCluster(2, 2);
  TaskInfo task = RegularTask();
  task.fpga_binary_available = false;
  auto eligible = cluster.EligibleFor(task);
  ASSERT_EQ(eligible.size(), 2u);
  for (std::size_t i : eligible) {
    EXPECT_EQ(cluster.nodes[i].type, NodeType::kGpu);
  }
  task.fpga_binary_available = true;
  EXPECT_EQ(cluster.EligibleFor(task).size(), 4u);
}

TEST(EligibilityTest, DeadNodesExcluded) {
  ClusterView cluster = MakeCluster(3, 0);
  cluster.nodes[1].alive = false;
  auto eligible = cluster.EligibleFor(RegularTask());
  EXPECT_EQ(eligible, (std::vector<std::size_t>{0, 2}));
}

TEST(UserDirectedTest, HonorsInstructionAndRejectsMissing) {
  auto policy = MakeUserDirectedPolicy();
  ClusterView cluster = MakeCluster(2, 1);
  TaskInfo task = RegularTask();
  task.preferred_node = 2;
  auto node = policy->SelectNode(task, cluster);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*node, 2u);

  task.preferred_node = -1;
  EXPECT_EQ(policy->SelectNode(task, cluster).code(),
            ErrorCode::kSchedulerError);
  task.preferred_node = 99;
  EXPECT_FALSE(policy->SelectNode(task, cluster).ok());

  cluster.nodes[2].alive = false;
  task.preferred_node = 2;
  EXPECT_EQ(policy->SelectNode(task, cluster).code(),
            ErrorCode::kNodeUnreachable);
}

TEST(RoundRobinTest, RotatesUniformly) {
  auto policy = MakeRoundRobinPolicy();
  ClusterView cluster = MakeCluster(4, 0);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 100; ++i) {
    auto node = policy->SelectNode(RegularTask(), cluster);
    ASSERT_TRUE(node.ok());
    counts[*node]++;
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [node, count] : counts) EXPECT_EQ(count, 25);
}

TEST(LeastLoadedTest, AvoidsBackloggedNode) {
  auto policy = MakeLeastLoadedPolicy();
  ClusterView cluster = MakeCluster(3, 0);
  cluster.nodes[0].busy_seconds_ahead = 10.0;
  cluster.nodes[1].busy_seconds_ahead = 0.5;
  cluster.nodes[2].busy_seconds_ahead = 3.0;
  auto node = policy->SelectNode(RegularTask(), cluster);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*node, 1u);
}

TEST(HeteroTest, PicksGpuForRegularCompute) {
  auto policy = MakeHeterogeneityAwarePolicy();
  ClusterView cluster = MakeCluster(1, 1, 1);
  TaskInfo task = RegularTask(/*gflops=*/500.0);
  auto node = policy->SelectNode(task, cluster);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(cluster.nodes[*node].type, NodeType::kGpu);
}

TEST(HeteroTest, PicksFpgaForIrregularKernels) {
  auto policy = MakeHeterogeneityAwarePolicy();
  ClusterView cluster = MakeCluster(1, 1);
  TaskInfo task = RegularTask(/*gflops=*/500.0);
  task.cost.irregular = true;  // GPU efficiency collapses, FPGA holds.
  auto node = policy->SelectNode(task, cluster);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(cluster.nodes[*node].type, NodeType::kFpga);
}

TEST(HeteroTest, AccountsForBacklogAndTransfers) {
  auto policy = MakeHeterogeneityAwarePolicy();
  ClusterView cluster = MakeCluster(2, 0);
  cluster.nodes[0].busy_seconds_ahead = 100.0;  // Fast node, long queue.
  auto node = policy->SelectNode(RegularTask(), cluster);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*node, 1u);
}

TEST(PredictTest, KernelRateBeatsAgnosticBeatsStatic) {
  // The cost model prefers the most specific runtime profile: this
  // kernel's own observed rate on the node, then the node's agnostic
  // average, then the static device model.
  NodeView node = MakeNode("gpu0", NodeType::kGpu);
  TaskInfo task = RegularTask(100.0);
  const double static_seconds = PredictComputeSeconds(task, node);
  EXPECT_DOUBLE_EQ(static_seconds, StaticComputeSeconds(task, node));

  node.observed_seconds_per_flop = 2.0 * static_seconds / task.cost.flops;
  EXPECT_DOUBLE_EQ(PredictComputeSeconds(task, node), 2.0 * static_seconds);

  node.kernel_seconds_per_flop = 4.0 * static_seconds / task.cost.flops;
  node.kernel_rate_samples = 1;
  EXPECT_DOUBLE_EQ(PredictComputeSeconds(task, node), 4.0 * static_seconds);
  // StaticComputeSeconds never consults the profiles.
  EXPECT_DOUBLE_EQ(StaticComputeSeconds(task, node), static_seconds);
}

TEST(HeteroTest, RuntimeProfileOverridesStaticModel) {
  ClusterView cluster = MakeCluster(2, 0);
  TaskInfo task = RegularTask(100.0);
  // Static model says both nodes are equal; a runtime profile showing
  // node 0 is actually 10x slower must flip the decision.
  cluster.nodes[0].observed_seconds_per_flop = 10.0 / 5.5e12;
  cluster.nodes[1].observed_seconds_per_flop = 1.0 / 5.5e12;
  auto policy = MakeHeterogeneityAwarePolicy();
  auto node = policy->SelectNode(task, cluster);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*node, 1u);
}

TEST(PowerAwareTest, TradesLatencyForEnergyWithinBudget) {
  // A Tesla P4 is so efficient that the built-in presets rarely give a
  // slower-but-greener option; construct one explicitly (a low-power
  // accelerator with better FLOP/J but lower peak).
  ClusterView cluster = MakeCluster(1, 0);
  NodeView eco = MakeNode("eco0", NodeType::kFpga);
  eco.spec.compute_gflops = 1000.0;  // ~5.5x slower than the P4...
  eco.spec.power_watts = 10.0;       // ...but 100 GFLOP/J vs the P4's 73.
  cluster.nodes.push_back(eco);

  TaskInfo task;
  task.kernel_name = "matmul_partition";
  task.cost.flops = 1e10;
  task.cost.bytes = 1e6;

  // Generous budget: the greener node wins.
  auto relaxed = MakePowerAwarePolicy(/*max_slowdown=*/8.0);
  auto node = relaxed->SelectNode(task, cluster);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(cluster.nodes[*node].name, "eco0");

  // Tight budget: the fastest node wins instead.
  auto strict = MakePowerAwarePolicy(1.0);
  node = strict->SelectNode(task, cluster);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(cluster.nodes[*node].type, NodeType::kGpu);
}

TEST(PredictTest, CompletionIsMonotoneInWork) {
  NodeView node = MakeNode("gpu0", NodeType::kGpu);
  double prev = 0.0;
  for (double gflops = 1; gflops <= 1000; gflops *= 10) {
    TaskInfo task = RegularTask(gflops);
    const double t = PredictCompletionSeconds(task, node);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(PredictTest, EnergyTracksPower) {
  TaskInfo task = RegularTask(100.0);
  NodeView gpu = MakeNode("gpu", NodeType::kGpu);
  NodeView cpu = MakeNode("cpu", NodeType::kCpu);
  // CPU: slower AND higher wattage => strictly more energy.
  EXPECT_GT(PredictEnergyJoules(task, cpu), PredictEnergyJoules(task, gpu));
}

TEST(RegistryTest, BuiltinsPresent) {
  auto names = RegisteredPolicyNames();
  for (const char* want :
       {"user", "roundrobin", "leastloaded", "hetero", "hetero_split",
        "adaptive_split", "power"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << want;
  }
  EXPECT_FALSE(MakePolicyByName("does-not-exist").ok());
}

TEST(RegistryTest, UserPolicyPlugsIn) {
  // The paper's extensibility claim: a custom policy registered by name.
  class AlwaysLast : public SchedulingPolicy {
   public:
    [[nodiscard]] std::string name() const override { return "alwayslast"; }
    Expected<std::size_t> SelectNode(const TaskInfo& task,
                                     const ClusterView& cluster) override {
      auto eligible = cluster.EligibleFor(task);
      if (eligible.empty()) {
        return Status(ErrorCode::kSchedulerError, "none");
      }
      return eligible.back();
    }
  };
  RegisterPolicy("alwayslast", [] {
    return std::unique_ptr<SchedulingPolicy>(new AlwaysLast());
  });
  auto policy = MakePolicyByName("alwayslast");
  ASSERT_TRUE(policy.ok());
  ClusterView cluster = MakeCluster(3, 0);
  auto node = (*policy)->SelectNode(RegularTask(), cluster);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*node, 2u);
}

// ---- Placement plans ------------------------------------------------------

TaskInfo SplittableTask(std::uint64_t extent, double gflops = 100.0) {
  TaskInfo task = RegularTask(gflops);
  task.dim0_extent = extent;
  task.splittable = true;
  return task;
}

TEST(PlanValidationTest, AcceptsSingleFullRangeShard) {
  ClusterView cluster = MakeCluster(2, 0);
  TaskInfo task = RegularTask();
  task.dim0_extent = 128;
  auto plan = PlacementPlan::SingleNode(1, 128);
  EXPECT_TRUE(ValidatePlan(plan, task, cluster).ok());
}

TEST(PlanValidationTest, RejectsEmptyPlanAndEmptyShard) {
  ClusterView cluster = MakeCluster(2, 0);
  TaskInfo task = SplittableTask(128);
  PlacementPlan plan;
  EXPECT_FALSE(ValidatePlan(plan, task, cluster).ok());
  plan.shards = {{0, 0, 128, 1.0}, {1, 128, 0, 0.0}};
  EXPECT_FALSE(ValidatePlan(plan, task, cluster).ok());
}

TEST(PlanValidationTest, RejectsOverlapGapAndShortCoverage) {
  ClusterView cluster = MakeCluster(2, 0);
  TaskInfo task = SplittableTask(128);
  PlacementPlan plan;
  plan.shards = {{0, 0, 80, 0.5}, {1, 64, 64, 0.5}};  // Overlap at 64..80.
  EXPECT_FALSE(ValidatePlan(plan, task, cluster).ok());
  plan.shards = {{0, 0, 32, 0.5}, {1, 64, 64, 0.5}};  // Gap 32..64.
  EXPECT_FALSE(ValidatePlan(plan, task, cluster).ok());
  plan.shards = {{0, 0, 64, 0.5}, {1, 64, 32, 0.5}};  // Covers 96 of 128.
  EXPECT_FALSE(ValidatePlan(plan, task, cluster).ok());
}

TEST(PlanValidationTest, RejectsOutOfRangeShards) {
  ClusterView cluster = MakeCluster(2, 0);
  TaskInfo task = SplittableTask(128);
  PlacementPlan plan;
  plan.shards = {{0, 0, 64, 0.5}, {1, 64, 128, 0.5}};  // Past the extent.
  EXPECT_FALSE(ValidatePlan(plan, task, cluster).ok());
  plan.shards = {{7, 0, 128, 1.0}};  // No such node.
  EXPECT_FALSE(ValidatePlan(plan, task, cluster).ok());
  cluster.nodes[1].alive = false;
  plan.shards = {{0, 0, 64, 0.5}, {1, 64, 64, 0.5}};  // Dead node.
  EXPECT_FALSE(ValidatePlan(plan, task, cluster).ok());
}

TEST(PlanValidationTest, MultiShardNeedsSplittableTask) {
  ClusterView cluster = MakeCluster(2, 0);
  TaskInfo task = RegularTask();
  task.dim0_extent = 128;
  task.splittable = false;
  PlacementPlan plan;
  plan.shards = {{0, 0, 64, 0.5}, {1, 64, 64, 0.5}};
  EXPECT_FALSE(ValidatePlan(plan, task, cluster).ok());
  task.splittable = true;
  EXPECT_TRUE(ValidatePlan(plan, task, cluster).ok());
}

TEST(PlanAdapterTest, SelectNodeOnlyPoliciesPlanOneFullShard) {
  // A policy written against the old node-picking API — including
  // user-registered ones — must plan exactly the shard SelectNode implies.
  class AlwaysSecond : public SchedulingPolicy {
   public:
    [[nodiscard]] std::string name() const override { return "alwayssecond"; }
    Expected<std::size_t> SelectNode(const TaskInfo&,
                                     const ClusterView&) override {
      return 1;
    }
  };
  AlwaysSecond policy;
  ClusterView cluster = MakeCluster(3, 0);
  TaskInfo task = SplittableTask(1000);
  auto plan = policy.PlanLaunch(task, cluster);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->shards.size(), 1u);
  EXPECT_EQ(plan->shards[0].node, 1u);
  EXPECT_EQ(plan->shards[0].global_offset, 0u);
  EXPECT_EQ(plan->shards[0].global_count, 1000u);
  EXPECT_TRUE(ValidatePlan(*plan, task, cluster).ok());

  // Built-in single-node policies go through the same adapter.
  auto builtin = MakeLeastLoadedPolicy();
  auto builtin_plan = builtin->PlanLaunch(task, cluster);
  auto builtin_node = builtin->SelectNode(task, cluster);
  ASSERT_TRUE(builtin_plan.ok() && builtin_node.ok());
  ASSERT_EQ(builtin_plan->shards.size(), 1u);
  EXPECT_EQ(builtin_plan->shards[0].node, *builtin_node);
  EXPECT_EQ(builtin_plan->shards[0].global_count, 1000u);
}

TEST(HeteroSplitTest, ShardsTileTheRangeAcrossEligibleNodes) {
  auto policy = MakeHeterogeneityAwareSplitPolicy();
  ClusterView cluster = MakeCluster(2, 0, 1);
  TaskInfo task = SplittableTask(4096);
  auto plan = policy->PlanLaunch(task, cluster);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlan(*plan, task, cluster).ok());
  EXPECT_GE(plan->shards.size(), 2u);
  std::uint64_t covered = 0;
  for (const auto& shard : plan->shards) covered += shard.global_count;
  EXPECT_EQ(covered, 4096u);
}

TEST(HeteroSplitTest, FasterNodesGetLargerShards) {
  auto policy = MakeHeterogeneityAwareSplitPolicy();
  ClusterView cluster = MakeCluster(1, 0, 1);  // GPU + CPU.
  TaskInfo task = SplittableTask(4096, /*gflops=*/500.0);
  auto plan = policy->PlanLaunch(task, cluster);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->shards.size(), 2u);
  std::uint64_t gpu_rows = 0;
  std::uint64_t cpu_rows = 0;
  for (const auto& shard : plan->shards) {
    if (cluster.nodes[shard.node].type == NodeType::kGpu) {
      gpu_rows = shard.global_count;
    } else {
      cpu_rows = shard.global_count;
    }
  }
  EXPECT_GT(gpu_rows, cpu_rows);
  // Shares follow the compute model: rows_i ~ 1 / compute_seconds_i.
  const double gpu_seconds =
      PredictComputeSeconds(task, cluster.nodes[0]);
  const double cpu_seconds =
      PredictComputeSeconds(task, cluster.nodes[1]);
  const double want_ratio = cpu_seconds / gpu_seconds;
  const double got_ratio =
      static_cast<double>(gpu_rows) / static_cast<double>(cpu_rows);
  EXPECT_NEAR(got_ratio, want_ratio, 0.25 * want_ratio);
}

TEST(HeteroSplitTest, NonSplittableFallsBackToBestSingleNode) {
  auto policy = MakeHeterogeneityAwareSplitPolicy();
  ClusterView cluster = MakeCluster(2, 0, 1);
  TaskInfo task = RegularTask(500.0);
  task.dim0_extent = 4096;
  task.splittable = false;
  auto plan = policy->PlanLaunch(task, cluster);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->shards.size(), 1u);
  EXPECT_EQ(plan->shards[0].global_count, 4096u);
  auto best = MakeHeterogeneityAwarePolicy()->SelectNode(task, cluster);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(plan->shards[0].node, *best);
}

TEST(HeteroSplitTest, RespectsWorkGroupAlignment) {
  auto policy = MakeHeterogeneityAwareSplitPolicy();
  ClusterView cluster = MakeCluster(2, 0, 1);
  TaskInfo task = SplittableTask(1024);
  task.dim0_align = 64;
  auto plan = policy->PlanLaunch(task, cluster);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlan(*plan, task, cluster).ok());
  for (const auto& shard : plan->shards) {
    EXPECT_EQ(shard.global_offset % 64, 0u);
  }
}

TEST(HeteroSplitTest, RoundingLeftoverGoesToTheFastestShard) {
  // Skewed cluster, residency-ordered so the SLOWEST device owns the last
  // shard: the whole-alignment part of the rounding leftover must land on
  // the fastest shard, not blindly on the tail, while offsets stay
  // aligned and the sub-alignment tail rides the last shard.
  auto policy = MakeHeterogeneityAwareSplitPolicy();
  ClusterView cluster = MakeCluster(1, 0, 1);  // GPU (fast) + CPU (slow).
  TaskInfo task = SplittableTask(1000 * 64 + 17, /*gflops=*/500.0);
  task.dim0_align = 64;
  // Residency hints force the CPU's shard LAST (GPU holds the front).
  cluster.nodes[0].resident_dim0_begin = 0;
  cluster.nodes[1].resident_dim0_begin = 1;
  auto plan = policy->PlanLaunch(task, cluster);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlan(*plan, task, cluster).ok());
  ASSERT_EQ(plan->shards.size(), 2u);
  EXPECT_EQ(plan->provenance, PlacementPlan::Provenance::kStaticModel);
  ASSERT_EQ(plan->shards[0].node, 0u);  // GPU first by residency.
  ASSERT_EQ(plan->shards[1].node, 1u);
  for (const auto& shard : plan->shards) {
    EXPECT_EQ(shard.global_offset % 64, 0u);
  }
  // The GPU shard must exceed its pure proportional floor by at least the
  // whole-align leftover it absorbed, and the CPU tail carries ONLY its
  // floor plus the sub-align remainder (17) — the old code dumped the
  // whole leftover on the tail, growing the slowest device's share.
  const std::uint64_t units = task.dim0_extent / 64;
  const double gpu_rate = 1.0 / StaticComputeSeconds(task, cluster.nodes[0]);
  const double cpu_rate = 1.0 / StaticComputeSeconds(task, cluster.nodes[1]);
  const auto cpu_floor = static_cast<std::uint64_t>(
                             static_cast<double>(units) * cpu_rate /
                             (gpu_rate + cpu_rate)) *
                         64;
  EXPECT_EQ(plan->shards[1].global_count, cpu_floor + 17);
}

TEST(AdaptiveSplitTest, NoSamplesPlansLikeHeteroSplit) {
  // First launch of a kernel: no observed rates anywhere, so the adaptive
  // policy must produce exactly the static policy's plan.
  auto adaptive = MakeAdaptiveSplitPolicy();
  auto baseline = MakeHeterogeneityAwareSplitPolicy();
  ClusterView cluster = MakeCluster(2, 0, 1);
  TaskInfo task = SplittableTask(4096, /*gflops=*/500.0);
  auto got = adaptive->PlanLaunch(task, cluster);
  auto want = baseline->PlanLaunch(task, cluster);
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ(got->provenance, PlacementPlan::Provenance::kStaticModel);
  ASSERT_EQ(got->shards.size(), want->shards.size());
  for (std::size_t i = 0; i < got->shards.size(); ++i) {
    EXPECT_EQ(got->shards[i].node, want->shards[i].node);
    EXPECT_EQ(got->shards[i].global_offset, want->shards[i].global_offset);
    EXPECT_EQ(got->shards[i].global_count, want->shards[i].global_count);
  }
}

TEST(AdaptiveSplitTest, ObservedRatesReplanTheSplit) {
  // Two spec-identical GPUs, but the observed rate table says node 0 is
  // really 3x slower: the re-split must give node 1 ~3x the rows while
  // the static policy still splits ~50/50.
  auto adaptive = MakeAdaptiveSplitPolicy();
  ClusterView cluster = MakeCluster(2, 0);
  TaskInfo task = SplittableTask(4096, /*gflops=*/500.0);
  const double spec_rate =
      StaticComputeSeconds(task, cluster.nodes[0]) / task.cost.flops;
  cluster.nodes[0].kernel_seconds_per_flop = 3.0 * spec_rate;
  cluster.nodes[0].kernel_rate_samples = 2;
  cluster.nodes[1].kernel_seconds_per_flop = spec_rate;
  cluster.nodes[1].kernel_rate_samples = 2;
  auto plan = adaptive->PlanLaunch(task, cluster);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlan(*plan, task, cluster).ok());
  EXPECT_EQ(plan->provenance, PlacementPlan::Provenance::kObservedRates);
  ASSERT_EQ(plan->shards.size(), 2u);
  std::uint64_t slow_rows = 0;
  std::uint64_t fast_rows = 0;
  for (const auto& shard : plan->shards) {
    (shard.node == 0 ? slow_rows : fast_rows) = shard.global_count;
  }
  const double ratio =
      static_cast<double>(fast_rows) / static_cast<double>(slow_rows);
  EXPECT_NEAR(ratio, 3.0, 0.3);

  // The static baseline ignores the table entirely.
  auto baseline = MakeHeterogeneityAwareSplitPolicy()->PlanLaunch(task,
                                                                  cluster);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->shards.size(), 2u);
  EXPECT_EQ(baseline->shards[0].global_count,
            baseline->shards[1].global_count);

  // Mixed knowledge (one node sampled, one not) is flagged as blended.
  cluster.nodes[1].kernel_rate_samples = 0;
  cluster.nodes[1].kernel_seconds_per_flop = 0.0;
  auto blended = adaptive->PlanLaunch(task, cluster);
  ASSERT_TRUE(blended.ok());
  EXPECT_EQ(blended->provenance, PlacementPlan::Provenance::kBlended);
}

TEST(AdaptiveSplitTest, ValidatePlanHoldsUnderRandomizedResplits) {
  // Property test: whatever the extents, alignments, backlogs, residency
  // hints, and observed-rate perturbations, every adaptive re-split must
  // pass the coverage/overlap/alignment validator.
  auto policy = MakeAdaptiveSplitPolicy();
  std::mt19937 rng(20260730);
  std::uniform_int_distribution<int> node_count(2, 5);
  std::uniform_int_distribution<int> align_pick(0, 3);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const std::uint64_t aligns[] = {1, 16, 64, 128};
  for (int iteration = 0; iteration < 300; ++iteration) {
    const int n = node_count(rng);
    ClusterView cluster = MakeCluster(n / 2, 0, n - n / 2);
    TaskInfo task = SplittableTask(
        1 + static_cast<std::uint64_t>(unit(rng) * 100000.0),
        /*gflops=*/1.0 + unit(rng) * 500.0);
    task.dim0_align = aligns[align_pick(rng)];
    for (NodeView& node : cluster.nodes) {
      node.busy_seconds_ahead = unit(rng) * 0.1;
      if (unit(rng) < 0.7) {
        const double spec_rate =
            StaticComputeSeconds(task, node) / task.cost.flops;
        // Observed rate off the spec by up to 8x either way.
        node.kernel_seconds_per_flop =
            spec_rate * std::pow(8.0, 2.0 * unit(rng) - 1.0);
        node.kernel_rate_samples = 1 + static_cast<std::uint64_t>(
                                           unit(rng) * 10.0);
      }
      if (unit(rng) < 0.5) {
        node.resident_dim0_begin = static_cast<std::uint64_t>(
            unit(rng) * static_cast<double>(task.dim0_extent));
      }
    }
    auto plan = policy->PlanLaunch(task, cluster);
    ASSERT_TRUE(plan.ok()) << "iteration " << iteration;
    EXPECT_TRUE(ValidatePlan(*plan, task, cluster).ok())
        << "iteration " << iteration << ": "
        << ValidatePlan(*plan, task, cluster).ToString();
  }
}

// Parameterized sweep: for every policy, selections are always eligible.
class AllPoliciesTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllPoliciesTest, SelectionsAreAlwaysEligible) {
  auto policy = MakePolicyByName(GetParam());
  ASSERT_TRUE(policy.ok());
  ClusterView cluster = MakeCluster(3, 2, 1);
  cluster.nodes[4].alive = false;
  for (int i = 0; i < 50; ++i) {
    TaskInfo task = RegularTask(1.0 + i);
    task.fpga_binary_available = i % 2 == 0;
    task.preferred_node = 0;  // Only the user policy consumes this.
    auto node = (*policy)->SelectNode(task, cluster);
    ASSERT_TRUE(node.ok()) << GetParam();
    EXPECT_TRUE(cluster.nodes[*node].alive);
    if (!task.fpga_binary_available) {
      EXPECT_NE(cluster.nodes[*node].type, NodeType::kFpga);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, AllPoliciesTest,
                         ::testing::Values("user", "roundrobin",
                                           "leastloaded", "hetero",
                                           "hetero_split", "adaptive_split",
                                           "power"));

// ---- Tiered memory: capacity-aware plans ----------------------------------

// 1 KiB per dim-0 index, no replicated args, splittable over 1000 indices.
TaskInfo MemoryBoundTask() {
  TaskInfo task = RegularTask();
  task.splittable = true;
  task.dim0_extent = 1000;
  task.bytes_per_index = 1024;
  task.replicated_bytes = 0;
  return task;
}

TEST(PlanValidationTest, ShardFitsOrStagesHonorsCapacity) {
  TaskInfo task = MemoryBoundTask();
  NodeView node = MakeNode("gpu0", NodeType::kGpu);
  node.mem_capacity_bytes = 0;  // Unknown: everything fits.
  EXPECT_TRUE(ShardFitsOrStages(task, node, 1000));
  node.mem_capacity_bytes = 1 << 20;  // Holds the whole shard.
  EXPECT_TRUE(ShardFitsOrStages(task, node, 1000));
  node.mem_capacity_bytes = 64 << 10;  // Oversubscribed but stageable.
  EXPECT_TRUE(ShardFitsOrStages(task, node, 1000));
  task.splittable = false;  // Cannot stage: must fit whole.
  EXPECT_FALSE(ShardFitsOrStages(task, node, 1000));
  task.splittable = true;
  task.replicated_bytes = 63 << 10;  // Replicated args crowd out stages.
  EXPECT_FALSE(ShardFitsOrStages(task, node, 1000));
}

TEST(PlanValidationTest, RejectsShardsThatCannotStage) {
  ClusterView cluster = MakeCluster(1, 0);
  cluster.nodes[0].mem_capacity_bytes = 64 << 10;
  TaskInfo task = MemoryBoundTask();
  task.splittable = false;  // 1000 KiB working set, 64 KiB device.
  PlacementPlan plan = PlacementPlan::SingleNode(0, task.dim0_extent);
  Status status = ValidatePlan(plan, task, cluster);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cannot fit or stage"), std::string::npos);
  task.splittable = true;  // Staging makes the same plan feasible.
  EXPECT_TRUE(ValidatePlan(plan, task, cluster).ok());
}

TEST(HeteroSplitTest, CapacityCapsShardSizes) {
  // Two identical GPUs, but one can hold only 100 indices in-core: the
  // static rate split (50/50) must shift the excess to the roomy node so
  // the small-memory node gets a smaller, feasible shard.
  ClusterView cluster = MakeCluster(2, 0);
  cluster.nodes[0].mem_capacity_bytes = 100 * 1024;
  cluster.nodes[1].mem_capacity_bytes = 0;  // Unbounded.
  TaskInfo task = MemoryBoundTask();
  auto policy = MakeHeterogeneityAwareSplitPolicy();
  auto plan = policy->PlanLaunch(task, cluster);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(ValidatePlan(*plan, task, cluster).ok());
  ASSERT_EQ(plan->shards.size(), 2u);
  for (const PlacementShard& shard : plan->shards) {
    if (shard.node == 0) {
      EXPECT_LE(shard.global_count, 100u);
    } else {
      EXPECT_GE(shard.global_count, 900u);
    }
  }
}

TEST(HeteroSplitTest, ClusterWideShortfallLeavesStagedRemainder) {
  // Neither node holds its half in-core; the capped excess lands on the
  // fastest node, whose shard then stages out-of-core — the plan is still
  // valid because the task is splittable.
  ClusterView cluster = MakeCluster(2, 0);
  cluster.nodes[0].mem_capacity_bytes = 100 * 1024;
  cluster.nodes[1].mem_capacity_bytes = 100 * 1024;
  TaskInfo task = MemoryBoundTask();
  auto policy = MakeHeterogeneityAwareSplitPolicy();
  auto plan = policy->PlanLaunch(task, cluster);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(ValidatePlan(*plan, task, cluster).ok());
  std::uint64_t total = 0;
  for (const PlacementShard& shard : plan->shards) {
    total += shard.global_count;
  }
  EXPECT_EQ(total, task.dim0_extent);
}

}  // namespace
}  // namespace haocl::sched
