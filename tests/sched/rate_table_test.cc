// Per-(node, kernel) runtime-profile table: EWMA folding, keying, and
// the kernel-agnostic aggregate.
#include "sched/rate_table.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace haocl::sched {
namespace {

TEST(RateTableTest, EmptyTableHasNoRates) {
  KernelRateTable table(2);
  EXPECT_EQ(table.Lookup(0, "matmul").samples, 0u);
  EXPECT_DOUBLE_EQ(table.Lookup(0, "matmul").seconds_per_flop, 0.0);
  EXPECT_DOUBLE_EQ(table.NodeAverage(1), 0.0);
  // Out-of-range nodes answer empty instead of crashing.
  EXPECT_EQ(table.Lookup(7, "matmul").samples, 0u);
  EXPECT_DOUBLE_EQ(table.NodeAverage(7), 0.0);
}

TEST(RateTableTest, FirstSampleSeedsThenEwmaSmooths) {
  KernelRateTable table(1);
  table.Observe(0, "matmul", 1e-12);
  auto rate = table.Lookup(0, "matmul");
  EXPECT_EQ(rate.samples, 1u);
  EXPECT_DOUBLE_EQ(rate.seconds_per_flop, 1e-12);

  table.Observe(0, "matmul", 2e-12);
  rate = table.Lookup(0, "matmul");
  EXPECT_EQ(rate.samples, 2u);
  EXPECT_DOUBLE_EQ(rate.seconds_per_flop, 0.7 * 1e-12 + 0.3 * 2e-12);
}

TEST(RateTableTest, KeysAreIndependentPerNodeAndKernel) {
  KernelRateTable table(2);
  table.Observe(0, "matmul", 1e-12);
  table.Observe(0, "spmv", 5e-12);
  table.Observe(1, "matmul", 9e-12);
  EXPECT_DOUBLE_EQ(table.Lookup(0, "matmul").seconds_per_flop, 1e-12);
  EXPECT_DOUBLE_EQ(table.Lookup(0, "spmv").seconds_per_flop, 5e-12);
  EXPECT_DOUBLE_EQ(table.Lookup(1, "matmul").seconds_per_flop, 9e-12);
  EXPECT_EQ(table.Lookup(1, "spmv").samples, 0u);
  // The agnostic aggregate folds every kernel on the node.
  EXPECT_DOUBLE_EQ(table.NodeAverage(0), 0.7 * 1e-12 + 0.3 * 5e-12);
  EXPECT_DOUBLE_EQ(table.NodeAverage(1), 9e-12);
}

TEST(RateTableTest, NonPositiveSamplesAreIgnored) {
  KernelRateTable table(1);
  table.Observe(0, "matmul", 0.0);
  table.Observe(0, "matmul", -1.0);
  EXPECT_EQ(table.Lookup(0, "matmul").samples, 0u);
}

TEST(RateTableTest, ResetClearsEverything) {
  KernelRateTable table(1);
  table.Observe(0, "matmul", 1e-12);
  table.Reset();
  EXPECT_EQ(table.Lookup(0, "matmul").samples, 0u);
  EXPECT_DOUBLE_EQ(table.NodeAverage(0), 0.0);
}

TEST(RateTableTest, ConcurrentObserversStayConsistent) {
  // Shard epilogues feed the table from parallel graph workers; samples
  // must never be lost or torn.
  KernelRateTable table(4);
  std::vector<std::thread> threads;
  constexpr int kPerThread = 500;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&table, t] {
      for (int i = 0; i < kPerThread; ++i) {
        table.Observe(static_cast<std::size_t>(t), "stream", 1e-12);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::size_t node = 0; node < 4; ++node) {
    auto rate = table.Lookup(node, "stream");
    EXPECT_EQ(rate.samples, static_cast<std::uint64_t>(kPerThread));
    EXPECT_DOUBLE_EQ(rate.seconds_per_flop, 1e-12);
  }
}

}  // namespace
}  // namespace haocl::sched
