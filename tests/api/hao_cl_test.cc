// The OpenCL Wrapper Lib: an unmodified OpenCL 1.2 host program written
// against cl* entry points must run on the distributed cluster. Also
// covers error-code conformance on misuse.
#include "api/hao_cl.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "api/runtime_binding.h"
#include "workloads/workload.h"

namespace {

using haocl::api::BindSimCluster;
using haocl::api::UnbindRuntime;

class HaoClApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    haocl::workloads::RegisterAllNativeKernels();
    haocl::host::SimCluster::Shape shape;
    shape.gpu_nodes = 2;
    shape.fpga_nodes = 1;
    ASSERT_TRUE(BindSimCluster(shape).ok());
    ASSERT_EQ(clGetPlatformIDs(1, &platform_, nullptr), CL_SUCCESS);
  }
  void TearDown() override { UnbindRuntime(); }

  cl_platform_id platform_ = nullptr;
};

TEST_F(HaoClApiTest, PlatformAndDeviceDiscovery) {
  cl_uint num_platforms = 0;
  ASSERT_EQ(clGetPlatformIDs(0, nullptr, &num_platforms), CL_SUCCESS);
  EXPECT_EQ(num_platforms, 1u);

  char name[64];
  ASSERT_EQ(clGetPlatformInfo(platform_, CL_PLATFORM_NAME, sizeof(name), name,
                              nullptr),
            CL_SUCCESS);
  EXPECT_STREQ(name, "HaoCL");

  cl_uint num_devices = 0;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_ALL, 0, nullptr,
                           &num_devices),
            CL_SUCCESS);
  EXPECT_EQ(num_devices, 4u);  // Virtual cluster device + 3 nodes.

  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 0, nullptr,
                           &num_devices),
            CL_SUCCESS);
  EXPECT_EQ(num_devices, 2u);
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_ACCELERATOR, 0, nullptr,
                           &num_devices),
            CL_SUCCESS);
  EXPECT_EQ(num_devices, 1u);

  cl_device_id first = nullptr;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_DEFAULT, 1, &first,
                           nullptr),
            CL_SUCCESS);
  char device_name[128];
  ASSERT_EQ(clGetDeviceInfo(first, CL_DEVICE_NAME, sizeof(device_name),
                            device_name, nullptr),
            CL_SUCCESS);
  EXPECT_NE(std::string(device_name).find("HaoCL Cluster"),
            std::string::npos);
}

// The canonical unmodified OpenCL host program: vector addition. This is
// the paper's core usability claim end-to-end.
TEST_F(HaoClApiTest, UnmodifiedVectorAddProgram) {
  cl_device_id device = nullptr;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &device,
                           nullptr),
            CL_SUCCESS);

  cl_int err = CL_SUCCESS;
  cl_context context = clCreateContext(nullptr, 1, &device, nullptr, nullptr,
                                       &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_command_queue queue =
      clCreateCommandQueue(context, device, CL_QUEUE_PROFILING_ENABLE, &err);
  ASSERT_EQ(err, CL_SUCCESS);

  const int n = 1000;
  std::vector<float> a(n), b(n), c(n, 0.0f);
  for (int i = 0; i < n; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = static_cast<float>(3 * i);
  }
  cl_mem a_mem = clCreateBuffer(context, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                                n * sizeof(float), a.data(), &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_mem b_mem = clCreateBuffer(context, CL_MEM_READ_ONLY, n * sizeof(float),
                                nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_mem c_mem = clCreateBuffer(context, CL_MEM_WRITE_ONLY, n * sizeof(float),
                                nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clEnqueueWriteBuffer(queue, b_mem, CL_TRUE, 0, n * sizeof(float),
                                 b.data(), 0, nullptr, nullptr),
            CL_SUCCESS);

  const char* source = R"(
    __kernel void vadd(__global const float* a, __global const float* b,
                       __global float* c, int n) {
      int i = get_global_id(0);
      if (i < n) c[i] = a[i] + b[i];
    })";
  cl_program program =
      clCreateProgramWithSource(context, 1, &source, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(program, 1, &device, "", nullptr, nullptr),
            CL_SUCCESS);
  cl_kernel kernel = clCreateKernel(program, "vadd", &err);
  ASSERT_EQ(err, CL_SUCCESS);

  ASSERT_EQ(clSetKernelArg(kernel, 0, sizeof(cl_mem), &a_mem), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 1, sizeof(cl_mem), &b_mem), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 2, sizeof(cl_mem), &c_mem), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 3, sizeof(int), &n), CL_SUCCESS);

  const size_t global = 1024;
  cl_event event = nullptr;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global,
                                   nullptr, 0, nullptr, &event),
            CL_SUCCESS);
  ASSERT_EQ(clWaitForEvents(1, &event), CL_SUCCESS);
  ASSERT_EQ(clEnqueueReadBuffer(queue, c_mem, CL_TRUE, 0, n * sizeof(float),
                                c.data(), 0, nullptr, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clFinish(queue), CL_SUCCESS);

  for (int i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(c[i], static_cast<float>(4 * i)) << i;
  }

  // Profiling: end >= start, both nonzero after a real kernel.
  cl_ulong start_ns = 0;
  cl_ulong end_ns = 0;
  ASSERT_EQ(clGetEventProfilingInfo(event, CL_PROFILING_COMMAND_START,
                                    sizeof(start_ns), &start_ns, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clGetEventProfilingInfo(event, CL_PROFILING_COMMAND_END,
                                    sizeof(end_ns), &end_ns, nullptr),
            CL_SUCCESS);
  EXPECT_GT(end_ns, start_ns);

  EXPECT_EQ(clReleaseEvent(event), CL_SUCCESS);
  EXPECT_EQ(clReleaseKernel(kernel), CL_SUCCESS);
  EXPECT_EQ(clReleaseProgram(program), CL_SUCCESS);
  for (cl_mem mem : {a_mem, b_mem, c_mem}) {
    EXPECT_EQ(clReleaseMemObject(mem), CL_SUCCESS);
  }
  EXPECT_EQ(clReleaseCommandQueue(queue), CL_SUCCESS);
  EXPECT_EQ(clReleaseContext(context), CL_SUCCESS);
}

TEST_F(HaoClApiTest, ClusterDeviceSchedulesAutomatically) {
  // Queue on the virtual cluster device: the scheduler places kernels.
  auto* runtime = haocl::api::BoundRuntime();
  ASSERT_TRUE(runtime->SetScheduler("leastloaded").ok());

  cl_device_id cluster_device = nullptr;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_DEFAULT, 1,
                           &cluster_device, nullptr),
            CL_SUCCESS);
  cl_int err;
  cl_context context = clCreateContext(nullptr, 1, &cluster_device, nullptr,
                                       nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_command_queue queue =
      clCreateCommandQueue(context, cluster_device, 0, &err);
  ASSERT_EQ(err, CL_SUCCESS);

  const char* source = R"(
    __kernel void inc(__global int* data) {
      data[get_global_id(0)] += 1;
    })";
  cl_program program =
      clCreateProgramWithSource(context, 1, &source, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(program, 0, nullptr, nullptr, nullptr, nullptr),
            CL_SUCCESS);
  cl_kernel kernel = clCreateKernel(program, "inc", &err);
  ASSERT_EQ(err, CL_SUCCESS);

  std::vector<int> data(64, 41);
  cl_mem mem = clCreateBuffer(context, CL_MEM_COPY_HOST_PTR, 64 * 4,
                              data.data(), &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 0, sizeof(cl_mem), &mem), CL_SUCCESS);
  const size_t global = 64;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global,
                                   nullptr, 0, nullptr, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clEnqueueReadBuffer(queue, mem, CL_TRUE, 0, 64 * 4, data.data(),
                                0, nullptr, nullptr),
            CL_SUCCESS);
  for (int v : data) ASSERT_EQ(v, 42);

  clReleaseMemObject(mem);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);
}

TEST_F(HaoClApiTest, BuildFailureReportsLog) {
  cl_device_id device;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &device,
                           nullptr),
            CL_SUCCESS);
  cl_int err;
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  const char* bad = "__kernel void broken( {";
  cl_program program =
      clCreateProgramWithSource(context, 1, &bad, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  EXPECT_EQ(clBuildProgram(program, 1, &device, nullptr, nullptr, nullptr),
            CL_BUILD_PROGRAM_FAILURE);

  cl_int status = CL_SUCCESS;
  ASSERT_EQ(clGetProgramBuildInfo(program, device, CL_PROGRAM_BUILD_STATUS,
                                  sizeof(status), &status, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(status, CL_BUILD_PROGRAM_FAILURE);

  size_t log_size = 0;
  ASSERT_EQ(clGetProgramBuildInfo(program, device, CL_PROGRAM_BUILD_LOG, 0,
                                  nullptr, &log_size),
            CL_SUCCESS);
  EXPECT_GT(log_size, 1u);

  // Kernel creation on an unbuilt program fails cleanly.
  cl_kernel kernel = clCreateKernel(program, "broken", &err);
  EXPECT_EQ(kernel, nullptr);
  EXPECT_EQ(err, CL_INVALID_PROGRAM_EXECUTABLE);

  clReleaseProgram(program);
  clReleaseContext(context);
}

TEST_F(HaoClApiTest, ErrorCodesOnMisuse) {
  // Invalid handles are detected, not dereferenced.
  EXPECT_EQ(clRetainContext(nullptr), CL_INVALID_CONTEXT);
  EXPECT_EQ(clReleaseMemObject(nullptr), CL_INVALID_MEM_OBJECT);
  EXPECT_EQ(clFinish(nullptr), CL_INVALID_COMMAND_QUEUE);
  EXPECT_EQ(clWaitForEvents(0, nullptr), CL_INVALID_VALUE);

  cl_device_id device;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &device,
                           nullptr),
            CL_SUCCESS);
  cl_int err;
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);

  // Zero-size buffer.
  cl_mem mem = clCreateBuffer(context, CL_MEM_READ_WRITE, 0, nullptr, &err);
  EXPECT_EQ(mem, nullptr);
  EXPECT_EQ(err, CL_INVALID_BUFFER_SIZE);
  // COPY_HOST_PTR without a pointer.
  mem = clCreateBuffer(context, CL_MEM_COPY_HOST_PTR, 16, nullptr, &err);
  EXPECT_EQ(mem, nullptr);
  EXPECT_EQ(err, CL_INVALID_VALUE);

  const char* source = R"(
    __kernel void two(__global int* buf, float scale) { buf[0] = (int)scale; }
  )";
  cl_program program =
      clCreateProgramWithSource(context, 1, &source, nullptr, &err);
  ASSERT_EQ(clBuildProgram(program, 0, nullptr, nullptr, nullptr, nullptr),
            CL_SUCCESS);
  cl_kernel kernel = clCreateKernel(program, "two", &err);
  ASSERT_EQ(err, CL_SUCCESS);
  EXPECT_EQ(clCreateKernel(program, "nosuch", &err), nullptr);
  EXPECT_EQ(err, CL_INVALID_KERNEL_NAME);

  // Arg index/size validation against the compiled signature.
  float scale = 2.0f;
  EXPECT_EQ(clSetKernelArg(kernel, 7, sizeof(float), &scale),
            CL_INVALID_ARG_INDEX);
  EXPECT_EQ(clSetKernelArg(kernel, 1, sizeof(double), &scale),
            CL_INVALID_ARG_SIZE);
  EXPECT_EQ(clSetKernelArg(kernel, 0, sizeof(float), &scale),
            CL_INVALID_ARG_SIZE);  // Buffer arg needs cl_mem.

  // Launch with unset args is rejected.
  cl_command_queue queue = clCreateCommandQueue(context, device, 0, &err);
  const size_t global = 1;
  EXPECT_EQ(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global,
                                   nullptr, 0, nullptr, nullptr),
            CL_INVALID_KERNEL_ARGS);
  // Bad work dimension.
  EXPECT_EQ(clEnqueueNDRangeKernel(queue, kernel, 4, nullptr, &global,
                                   nullptr, 0, nullptr, nullptr),
            CL_INVALID_WORK_DIMENSION);

  clReleaseKernel(kernel);
  clReleaseProgram(program);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);
}

TEST_F(HaoClApiTest, LocalMemoryKernelThroughApi) {
  cl_device_id device;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &device,
                           nullptr),
            CL_SUCCESS);
  cl_int err;
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  cl_command_queue queue = clCreateCommandQueue(context, device, 0, &err);

  const char* source = R"(
    __kernel void reduce(__global const int* in, __global int* out,
                         __local int* scratch) {
      int lid = get_local_id(0);
      scratch[lid] = in[get_global_id(0)];
      barrier(1);
      for (int off = (int)get_local_size(0) / 2; off > 0; off /= 2) {
        if (lid < off) scratch[lid] += scratch[lid + off];
        barrier(1);
      }
      if (lid == 0) out[get_group_id(0)] = scratch[0];
    })";
  cl_program program =
      clCreateProgramWithSource(context, 1, &source, nullptr, &err);
  ASSERT_EQ(clBuildProgram(program, 0, nullptr, nullptr, nullptr, nullptr),
            CL_SUCCESS);
  cl_kernel kernel = clCreateKernel(program, "reduce", &err);

  const int n = 256;
  const int local = 64;
  std::vector<int> in(n, 1);
  std::vector<int> out(n / local, 0);
  cl_mem in_mem = clCreateBuffer(context, CL_MEM_COPY_HOST_PTR, n * 4,
                                 in.data(), &err);
  cl_mem out_mem =
      clCreateBuffer(context, CL_MEM_WRITE_ONLY, out.size() * 4, nullptr,
                     &err);
  ASSERT_EQ(clSetKernelArg(kernel, 0, sizeof(cl_mem), &in_mem), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 1, sizeof(cl_mem), &out_mem), CL_SUCCESS);
  // Local pointer arg: NULL value + byte size, per the OpenCL spec.
  ASSERT_EQ(clSetKernelArg(kernel, 2, local * 4, nullptr), CL_SUCCESS);

  const size_t global_size = n;
  const size_t local_size = local;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global_size,
                                   &local_size, 0, nullptr, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clEnqueueReadBuffer(queue, out_mem, CL_TRUE, 0, out.size() * 4,
                                out.data(), 0, nullptr, nullptr),
            CL_SUCCESS);
  for (int v : out) ASSERT_EQ(v, local);

  clReleaseMemObject(in_mem);
  clReleaseMemObject(out_mem);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);
}

TEST_F(HaoClApiTest, RetainReleaseRefcounts) {
  cl_device_id device;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &device,
                           nullptr),
            CL_SUCCESS);
  cl_int err;
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  ASSERT_EQ(clRetainContext(context), CL_SUCCESS);
  EXPECT_EQ(clReleaseContext(context), CL_SUCCESS);  // refs 2 -> 1.
  EXPECT_EQ(clReleaseContext(context), CL_SUCCESS);  // refs 1 -> 0, freed.

  cl_mem mem;
  {
    cl_context c2 = clCreateContext(nullptr, 1, &device, nullptr, nullptr,
                                    &err);
    mem = clCreateBuffer(c2, CL_MEM_READ_WRITE, 64, nullptr, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    ASSERT_EQ(clRetainMemObject(mem), CL_SUCCESS);
    EXPECT_EQ(clReleaseMemObject(mem), CL_SUCCESS);
    EXPECT_EQ(clReleaseMemObject(mem), CL_SUCCESS);
    clReleaseContext(c2);
  }
}

TEST(HaoClUnboundTest, NoPlatformWithoutCluster) {
  UnbindRuntime();
  cl_uint num_platforms = 99;
  EXPECT_EQ(clGetPlatformIDs(0, nullptr, &num_platforms), CL_SUCCESS);
  EXPECT_EQ(num_platforms, 0u);
}

}  // namespace
