// The OpenCL Wrapper Lib: an unmodified OpenCL 1.2 host program written
// against cl* entry points must run on the distributed cluster. Also
// covers error-code conformance on misuse.
#include "api/hao_cl.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "api/runtime_binding.h"
#include "workloads/workload.h"

namespace {

using haocl::api::BindSimCluster;
using haocl::api::UnbindRuntime;

class HaoClApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    haocl::workloads::RegisterAllNativeKernels();
    haocl::host::SimCluster::Shape shape;
    shape.gpu_nodes = 2;
    shape.fpga_nodes = 1;
    ASSERT_TRUE(BindSimCluster(shape).ok());
    ASSERT_EQ(clGetPlatformIDs(1, &platform_, nullptr), CL_SUCCESS);
  }
  void TearDown() override { UnbindRuntime(); }

  cl_platform_id platform_ = nullptr;
};

TEST_F(HaoClApiTest, DeviceMemorySizesAreHonest) {
  // Devices report the capacities the tiered-memory subsystem manages:
  // each node its own device memory, the virtual cluster device the
  // cluster-wide sum — and allocations past that sum fail.
  cl_device_id cluster = nullptr;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_DEFAULT, 1, &cluster,
                           nullptr),
            CL_SUCCESS);
  cl_ulong cluster_bytes = 0;
  ASSERT_EQ(clGetDeviceInfo(cluster, CL_DEVICE_GLOBAL_MEM_SIZE,
                            sizeof(cluster_bytes), &cluster_bytes, nullptr),
            CL_SUCCESS);
  // 2 GPUs (8 GiB each) + 1 FPGA (16 GiB).
  EXPECT_EQ(cluster_bytes, 32ull << 30);

  cl_device_id gpu = nullptr;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &gpu, nullptr),
            CL_SUCCESS);
  cl_ulong gpu_bytes = 0;
  ASSERT_EQ(clGetDeviceInfo(gpu, CL_DEVICE_GLOBAL_MEM_SIZE,
                            sizeof(gpu_bytes), &gpu_bytes, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(gpu_bytes, 8ull << 30);
  cl_ulong max_alloc = 0;
  ASSERT_EQ(clGetDeviceInfo(gpu, CL_DEVICE_MAX_MEM_ALLOC_SIZE,
                            sizeof(max_alloc), &max_alloc, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(max_alloc, 8ull << 30);

  cl_int err = CL_SUCCESS;
  cl_context context =
      clCreateContext(nullptr, 1, &cluster, nullptr, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  // Beyond the cluster-wide capacity: an honest allocation failure
  // instead of a buffer no device set could ever hold.
  cl_mem too_big = clCreateBuffer(context, 0, (32ull << 30) + 1, nullptr,
                                  &err);
  EXPECT_EQ(too_big, nullptr);
  EXPECT_EQ(err, CL_MEM_OBJECT_ALLOCATION_FAILURE);
  clReleaseContext(context);
}

TEST_F(HaoClApiTest, PlatformAndDeviceDiscovery) {
  cl_uint num_platforms = 0;
  ASSERT_EQ(clGetPlatformIDs(0, nullptr, &num_platforms), CL_SUCCESS);
  EXPECT_EQ(num_platforms, 1u);

  char name[64];
  ASSERT_EQ(clGetPlatformInfo(platform_, CL_PLATFORM_NAME, sizeof(name), name,
                              nullptr),
            CL_SUCCESS);
  EXPECT_STREQ(name, "HaoCL");

  cl_uint num_devices = 0;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_ALL, 0, nullptr,
                           &num_devices),
            CL_SUCCESS);
  EXPECT_EQ(num_devices, 4u);  // Virtual cluster device + 3 nodes.

  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 0, nullptr,
                           &num_devices),
            CL_SUCCESS);
  EXPECT_EQ(num_devices, 2u);
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_ACCELERATOR, 0, nullptr,
                           &num_devices),
            CL_SUCCESS);
  EXPECT_EQ(num_devices, 1u);

  cl_device_id first = nullptr;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_DEFAULT, 1, &first,
                           nullptr),
            CL_SUCCESS);
  char device_name[128];
  ASSERT_EQ(clGetDeviceInfo(first, CL_DEVICE_NAME, sizeof(device_name),
                            device_name, nullptr),
            CL_SUCCESS);
  EXPECT_NE(std::string(device_name).find("HaoCL Cluster"),
            std::string::npos);
}

// The canonical unmodified OpenCL host program: vector addition. This is
// the paper's core usability claim end-to-end.
TEST_F(HaoClApiTest, UnmodifiedVectorAddProgram) {
  cl_device_id device = nullptr;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &device,
                           nullptr),
            CL_SUCCESS);

  cl_int err = CL_SUCCESS;
  cl_context context = clCreateContext(nullptr, 1, &device, nullptr, nullptr,
                                       &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_command_queue queue =
      clCreateCommandQueue(context, device, CL_QUEUE_PROFILING_ENABLE, &err);
  ASSERT_EQ(err, CL_SUCCESS);

  const int n = 1000;
  std::vector<float> a(n), b(n), c(n, 0.0f);
  for (int i = 0; i < n; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = static_cast<float>(3 * i);
  }
  cl_mem a_mem = clCreateBuffer(context, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                                n * sizeof(float), a.data(), &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_mem b_mem = clCreateBuffer(context, CL_MEM_READ_ONLY, n * sizeof(float),
                                nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_mem c_mem = clCreateBuffer(context, CL_MEM_WRITE_ONLY, n * sizeof(float),
                                nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clEnqueueWriteBuffer(queue, b_mem, CL_TRUE, 0, n * sizeof(float),
                                 b.data(), 0, nullptr, nullptr),
            CL_SUCCESS);

  const char* source = R"(
    __kernel void vadd(__global const float* a, __global const float* b,
                       __global float* c, int n) {
      int i = get_global_id(0);
      if (i < n) c[i] = a[i] + b[i];
    })";
  cl_program program =
      clCreateProgramWithSource(context, 1, &source, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(program, 1, &device, "", nullptr, nullptr),
            CL_SUCCESS);
  cl_kernel kernel = clCreateKernel(program, "vadd", &err);
  ASSERT_EQ(err, CL_SUCCESS);

  ASSERT_EQ(clSetKernelArg(kernel, 0, sizeof(cl_mem), &a_mem), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 1, sizeof(cl_mem), &b_mem), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 2, sizeof(cl_mem), &c_mem), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 3, sizeof(int), &n), CL_SUCCESS);

  const size_t global = 1024;
  cl_event event = nullptr;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global,
                                   nullptr, 0, nullptr, &event),
            CL_SUCCESS);
  ASSERT_EQ(clWaitForEvents(1, &event), CL_SUCCESS);
  ASSERT_EQ(clEnqueueReadBuffer(queue, c_mem, CL_TRUE, 0, n * sizeof(float),
                                c.data(), 0, nullptr, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clFinish(queue), CL_SUCCESS);

  for (int i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(c[i], static_cast<float>(4 * i)) << i;
  }

  // Profiling: end >= start, both nonzero after a real kernel.
  cl_ulong start_ns = 0;
  cl_ulong end_ns = 0;
  ASSERT_EQ(clGetEventProfilingInfo(event, CL_PROFILING_COMMAND_START,
                                    sizeof(start_ns), &start_ns, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clGetEventProfilingInfo(event, CL_PROFILING_COMMAND_END,
                                    sizeof(end_ns), &end_ns, nullptr),
            CL_SUCCESS);
  EXPECT_GT(end_ns, start_ns);

  EXPECT_EQ(clReleaseEvent(event), CL_SUCCESS);
  EXPECT_EQ(clReleaseKernel(kernel), CL_SUCCESS);
  EXPECT_EQ(clReleaseProgram(program), CL_SUCCESS);
  for (cl_mem mem : {a_mem, b_mem, c_mem}) {
    EXPECT_EQ(clReleaseMemObject(mem), CL_SUCCESS);
  }
  EXPECT_EQ(clReleaseCommandQueue(queue), CL_SUCCESS);
  EXPECT_EQ(clReleaseContext(context), CL_SUCCESS);
}

TEST_F(HaoClApiTest, ClusterDeviceSchedulesAutomatically) {
  // Queue on the virtual cluster device: the scheduler places kernels.
  auto* runtime = haocl::api::BoundRuntime();
  ASSERT_TRUE(runtime->SetScheduler("leastloaded").ok());

  cl_device_id cluster_device = nullptr;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_DEFAULT, 1,
                           &cluster_device, nullptr),
            CL_SUCCESS);
  cl_int err;
  cl_context context = clCreateContext(nullptr, 1, &cluster_device, nullptr,
                                       nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_command_queue queue =
      clCreateCommandQueue(context, cluster_device, 0, &err);
  ASSERT_EQ(err, CL_SUCCESS);

  const char* source = R"(
    __kernel void inc(__global int* data) {
      data[get_global_id(0)] += 1;
    })";
  cl_program program =
      clCreateProgramWithSource(context, 1, &source, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(program, 0, nullptr, nullptr, nullptr, nullptr),
            CL_SUCCESS);
  cl_kernel kernel = clCreateKernel(program, "inc", &err);
  ASSERT_EQ(err, CL_SUCCESS);

  std::vector<int> data(64, 41);
  cl_mem mem = clCreateBuffer(context, CL_MEM_COPY_HOST_PTR, 64 * 4,
                              data.data(), &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 0, sizeof(cl_mem), &mem), CL_SUCCESS);
  const size_t global = 64;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global,
                                   nullptr, 0, nullptr, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clEnqueueReadBuffer(queue, mem, CL_TRUE, 0, 64 * 4, data.data(),
                                0, nullptr, nullptr),
            CL_SUCCESS);
  for (int v : data) ASSERT_EQ(v, 42);

  clReleaseMemObject(mem);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);
}

TEST_F(HaoClApiTest, BuildFailureReportsLog) {
  cl_device_id device;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &device,
                           nullptr),
            CL_SUCCESS);
  cl_int err;
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  const char* bad = "__kernel void broken( {";
  cl_program program =
      clCreateProgramWithSource(context, 1, &bad, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  EXPECT_EQ(clBuildProgram(program, 1, &device, nullptr, nullptr, nullptr),
            CL_BUILD_PROGRAM_FAILURE);

  cl_int status = CL_SUCCESS;
  ASSERT_EQ(clGetProgramBuildInfo(program, device, CL_PROGRAM_BUILD_STATUS,
                                  sizeof(status), &status, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(status, CL_BUILD_PROGRAM_FAILURE);

  size_t log_size = 0;
  ASSERT_EQ(clGetProgramBuildInfo(program, device, CL_PROGRAM_BUILD_LOG, 0,
                                  nullptr, &log_size),
            CL_SUCCESS);
  EXPECT_GT(log_size, 1u);

  // Kernel creation on an unbuilt program fails cleanly.
  cl_kernel kernel = clCreateKernel(program, "broken", &err);
  EXPECT_EQ(kernel, nullptr);
  EXPECT_EQ(err, CL_INVALID_PROGRAM_EXECUTABLE);

  clReleaseProgram(program);
  clReleaseContext(context);
}

TEST_F(HaoClApiTest, ErrorCodesOnMisuse) {
  // Invalid handles are detected, not dereferenced.
  EXPECT_EQ(clRetainContext(nullptr), CL_INVALID_CONTEXT);
  EXPECT_EQ(clReleaseMemObject(nullptr), CL_INVALID_MEM_OBJECT);
  EXPECT_EQ(clFinish(nullptr), CL_INVALID_COMMAND_QUEUE);
  EXPECT_EQ(clWaitForEvents(0, nullptr), CL_INVALID_VALUE);

  cl_device_id device;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &device,
                           nullptr),
            CL_SUCCESS);
  cl_int err;
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);

  // Zero-size buffer.
  cl_mem mem = clCreateBuffer(context, CL_MEM_READ_WRITE, 0, nullptr, &err);
  EXPECT_EQ(mem, nullptr);
  EXPECT_EQ(err, CL_INVALID_BUFFER_SIZE);
  // COPY_HOST_PTR without a pointer.
  mem = clCreateBuffer(context, CL_MEM_COPY_HOST_PTR, 16, nullptr, &err);
  EXPECT_EQ(mem, nullptr);
  EXPECT_EQ(err, CL_INVALID_VALUE);

  const char* source = R"(
    __kernel void two(__global int* buf, float scale) { buf[0] = (int)scale; }
  )";
  cl_program program =
      clCreateProgramWithSource(context, 1, &source, nullptr, &err);
  ASSERT_EQ(clBuildProgram(program, 0, nullptr, nullptr, nullptr, nullptr),
            CL_SUCCESS);
  cl_kernel kernel = clCreateKernel(program, "two", &err);
  ASSERT_EQ(err, CL_SUCCESS);
  EXPECT_EQ(clCreateKernel(program, "nosuch", &err), nullptr);
  EXPECT_EQ(err, CL_INVALID_KERNEL_NAME);

  // Arg index/size validation against the compiled signature.
  float scale = 2.0f;
  EXPECT_EQ(clSetKernelArg(kernel, 7, sizeof(float), &scale),
            CL_INVALID_ARG_INDEX);
  EXPECT_EQ(clSetKernelArg(kernel, 1, sizeof(double), &scale),
            CL_INVALID_ARG_SIZE);
  EXPECT_EQ(clSetKernelArg(kernel, 0, sizeof(float), &scale),
            CL_INVALID_ARG_SIZE);  // Buffer arg needs cl_mem.

  // Launch with unset args is rejected.
  cl_command_queue queue = clCreateCommandQueue(context, device, 0, &err);
  const size_t global = 1;
  EXPECT_EQ(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global,
                                   nullptr, 0, nullptr, nullptr),
            CL_INVALID_KERNEL_ARGS);
  // Bad work dimension.
  EXPECT_EQ(clEnqueueNDRangeKernel(queue, kernel, 4, nullptr, &global,
                                   nullptr, 0, nullptr, nullptr),
            CL_INVALID_WORK_DIMENSION);

  clReleaseKernel(kernel);
  clReleaseProgram(program);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);
}

TEST_F(HaoClApiTest, LocalMemoryKernelThroughApi) {
  cl_device_id device;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &device,
                           nullptr),
            CL_SUCCESS);
  cl_int err;
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  cl_command_queue queue = clCreateCommandQueue(context, device, 0, &err);

  const char* source = R"(
    __kernel void reduce(__global const int* in, __global int* out,
                         __local int* scratch) {
      int lid = get_local_id(0);
      scratch[lid] = in[get_global_id(0)];
      barrier(1);
      for (int off = (int)get_local_size(0) / 2; off > 0; off /= 2) {
        if (lid < off) scratch[lid] += scratch[lid + off];
        barrier(1);
      }
      if (lid == 0) out[get_group_id(0)] = scratch[0];
    })";
  cl_program program =
      clCreateProgramWithSource(context, 1, &source, nullptr, &err);
  ASSERT_EQ(clBuildProgram(program, 0, nullptr, nullptr, nullptr, nullptr),
            CL_SUCCESS);
  cl_kernel kernel = clCreateKernel(program, "reduce", &err);

  const int n = 256;
  const int local = 64;
  std::vector<int> in(n, 1);
  std::vector<int> out(n / local, 0);
  cl_mem in_mem = clCreateBuffer(context, CL_MEM_COPY_HOST_PTR, n * 4,
                                 in.data(), &err);
  cl_mem out_mem =
      clCreateBuffer(context, CL_MEM_WRITE_ONLY, out.size() * 4, nullptr,
                     &err);
  ASSERT_EQ(clSetKernelArg(kernel, 0, sizeof(cl_mem), &in_mem), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 1, sizeof(cl_mem), &out_mem), CL_SUCCESS);
  // Local pointer arg: NULL value + byte size, per the OpenCL spec.
  ASSERT_EQ(clSetKernelArg(kernel, 2, local * 4, nullptr), CL_SUCCESS);

  const size_t global_size = n;
  const size_t local_size = local;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global_size,
                                   &local_size, 0, nullptr, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clEnqueueReadBuffer(queue, out_mem, CL_TRUE, 0, out.size() * 4,
                                out.data(), 0, nullptr, nullptr),
            CL_SUCCESS);
  for (int v : out) ASSERT_EQ(v, local);

  clReleaseMemObject(in_mem);
  clReleaseMemObject(out_mem);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);
}

TEST_F(HaoClApiTest, RetainReleaseRefcounts) {
  cl_device_id device;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &device,
                           nullptr),
            CL_SUCCESS);
  cl_int err;
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  ASSERT_EQ(clRetainContext(context), CL_SUCCESS);
  EXPECT_EQ(clReleaseContext(context), CL_SUCCESS);  // refs 2 -> 1.
  EXPECT_EQ(clReleaseContext(context), CL_SUCCESS);  // refs 1 -> 0, freed.

  cl_mem mem;
  {
    cl_context c2 = clCreateContext(nullptr, 1, &device, nullptr, nullptr,
                                    &err);
    mem = clCreateBuffer(c2, CL_MEM_READ_WRITE, 64, nullptr, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    ASSERT_EQ(clRetainMemObject(mem), CL_SUCCESS);
    EXPECT_EQ(clReleaseMemObject(mem), CL_SUCCESS);
    EXPECT_EQ(clReleaseMemObject(mem), CL_SUCCESS);
    clReleaseContext(c2);
  }
}

// ---- Deferred queues, real events, async semantics -----------------------

class HaoClAsyncTest : public HaoClApiTest {
 protected:
  void SetUpPipeline() {
    cl_int err;
    ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &device_,
                             nullptr),
              CL_SUCCESS);
    context_ = clCreateContext(nullptr, 1, &device_, nullptr, nullptr, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    queue_ = clCreateCommandQueue(context_, device_,
                                  CL_QUEUE_PROFILING_ENABLE, &err);
    ASSERT_EQ(err, CL_SUCCESS);
  }
  void TearDownPipeline() {
    if (queue_ != nullptr) clReleaseCommandQueue(queue_);
    if (context_ != nullptr) clReleaseContext(context_);
  }

  cl_device_id device_ = nullptr;
  cl_context context_ = nullptr;
  cl_command_queue queue_ = nullptr;
};

TEST_F(HaoClAsyncTest, UserEventGateDefersNonBlockingRead) {
  SetUpPipeline();
  cl_int err;
  std::vector<std::int32_t> init(8, 123);
  cl_mem mem = clCreateBuffer(context_, CL_MEM_COPY_HOST_PTR, 32,
                              init.data(), &err);
  ASSERT_EQ(err, CL_SUCCESS);

  cl_event gate = clCreateUserEvent(context_, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_int gate_status = -1;
  ASSERT_EQ(clGetEventInfo(gate, CL_EVENT_COMMAND_EXECUTION_STATUS,
                           sizeof(gate_status), &gate_status, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(gate_status, CL_SUBMITTED);

  // Non-blocking read gated on the user event: the enqueue returns
  // immediately and the destination must stay untouched — the node RPC
  // cannot even start until the gate resolves.
  std::vector<std::int32_t> sink(8, -1);
  cl_event read_event = nullptr;
  ASSERT_EQ(clEnqueueReadBuffer(queue_, mem, CL_FALSE, 0, 32, sink.data(), 1,
                                &gate, &read_event),
            CL_SUCCESS);
  cl_int read_status = -1;
  ASSERT_EQ(clGetEventInfo(read_event, CL_EVENT_COMMAND_EXECUTION_STATUS,
                           sizeof(read_status), &read_status, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(read_status, CL_QUEUED);
  EXPECT_EQ(sink[0], -1);

  ASSERT_EQ(clSetUserEventStatus(gate, CL_COMPLETE), CL_SUCCESS);
  ASSERT_EQ(clWaitForEvents(1, &read_event), CL_SUCCESS);
  EXPECT_EQ(sink[0], 123);
  ASSERT_EQ(clGetEventInfo(read_event, CL_EVENT_COMMAND_EXECUTION_STATUS,
                           sizeof(read_status), &read_status, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(read_status, CL_COMPLETE);

  // Setting a resolved user event again is rejected.
  EXPECT_EQ(clSetUserEventStatus(gate, CL_COMPLETE), CL_INVALID_OPERATION);

  clReleaseEvent(read_event);
  clReleaseEvent(gate);
  clReleaseMemObject(mem);
  TearDownPipeline();
}

TEST_F(HaoClAsyncTest, NonBlockingWriteSnapshotsSourceAtEnqueue) {
  SetUpPipeline();
  cl_int err;
  cl_mem mem = clCreateBuffer(context_, CL_MEM_READ_WRITE, 32, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_event gate = clCreateUserEvent(context_, &err);
  ASSERT_EQ(err, CL_SUCCESS);

  std::vector<std::int32_t> source(8, 55);
  ASSERT_EQ(clEnqueueWriteBuffer(queue_, mem, CL_FALSE, 0, 32, source.data(),
                                 1, &gate, nullptr),
            CL_SUCCESS);
  // Mutate the source AFTER the enqueue but BEFORE execution: the deferred
  // write must have captured the original contents.
  std::fill(source.begin(), source.end(), -999);
  ASSERT_EQ(clSetUserEventStatus(gate, CL_COMPLETE), CL_SUCCESS);
  ASSERT_EQ(clFinish(queue_), CL_SUCCESS);

  std::vector<std::int32_t> got(8, 0);
  ASSERT_EQ(clEnqueueReadBuffer(queue_, mem, CL_TRUE, 0, 32, got.data(), 0,
                                nullptr, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(got[0], 55);
  EXPECT_EQ(got[7], 55);

  clReleaseEvent(gate);
  clReleaseMemObject(mem);
  TearDownPipeline();
}

TEST_F(HaoClAsyncTest, WaitListOrdersCommandsAcrossQueues) {
  SetUpPipeline();
  cl_int err;
  cl_command_queue other_queue =
      clCreateCommandQueue(context_, device_, 0, &err);
  ASSERT_EQ(err, CL_SUCCESS);

  const char* source = R"(
    __kernel void fill7(__global int* data) {
      data[get_global_id(0)] = 7;
    })";
  cl_program program =
      clCreateProgramWithSource(context_, 1, &source, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(program, 0, nullptr, nullptr, nullptr, nullptr),
            CL_SUCCESS);
  cl_kernel kernel = clCreateKernel(program, "fill7", &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_mem mem = clCreateBuffer(context_, CL_MEM_READ_WRITE, 64 * 4, nullptr,
                              &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 0, sizeof(cl_mem), &mem), CL_SUCCESS);

  // Gate the producer kernel on queue 1; consumer read lives on queue 2
  // and is ordered ONLY by its wait list (queues are independent).
  cl_event gate = clCreateUserEvent(context_, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  const size_t global = 64;
  cl_event kernel_event = nullptr;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue_, kernel, 1, nullptr, &global,
                                   nullptr, 1, &gate, &kernel_event),
            CL_SUCCESS);
  std::vector<std::int32_t> got(64, 0);
  cl_event read_event = nullptr;
  ASSERT_EQ(clEnqueueReadBuffer(other_queue, mem, CL_FALSE, 0, 64 * 4,
                                got.data(), 1, &kernel_event, &read_event),
            CL_SUCCESS);

  // Whole pipeline is still gated.
  cl_int status = -1;
  ASSERT_EQ(clGetEventInfo(read_event, CL_EVENT_COMMAND_EXECUTION_STATUS,
                           sizeof(status), &status, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(status, CL_QUEUED);

  ASSERT_EQ(clSetUserEventStatus(gate, CL_COMPLETE), CL_SUCCESS);
  ASSERT_EQ(clWaitForEvents(1, &read_event), CL_SUCCESS);
  for (int v : got) ASSERT_EQ(v, 7);

  clReleaseEvent(gate);
  clReleaseEvent(kernel_event);
  clReleaseEvent(read_event);
  clReleaseMemObject(mem);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  clReleaseCommandQueue(other_queue);
  TearDownPipeline();
}

TEST_F(HaoClAsyncTest, FinishDrainsDeferredPipeline) {
  SetUpPipeline();
  cl_int err;
  const char* source = R"(
    __kernel void doubler(__global int* data, int n) {
      int i = get_global_id(0);
      if (i < n) data[i] = data[i] * 2;
    })";
  cl_program program =
      clCreateProgramWithSource(context_, 1, &source, nullptr, &err);
  ASSERT_EQ(clBuildProgram(program, 0, nullptr, nullptr, nullptr, nullptr),
            CL_SUCCESS);
  cl_kernel kernel = clCreateKernel(program, "doubler", &err);
  ASSERT_EQ(err, CL_SUCCESS);

  const int n = 256;
  std::vector<std::int32_t> data(n, 3);
  cl_mem mem = clCreateBuffer(context_, CL_MEM_READ_WRITE, n * 4, nullptr,
                              &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 0, sizeof(cl_mem), &mem), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 1, sizeof(int), &n), CL_SUCCESS);

  // Everything non-blocking: write, two chained launches, read. clFinish
  // is the only synchronization point.
  ASSERT_EQ(clEnqueueWriteBuffer(queue_, mem, CL_FALSE, 0, n * 4,
                                 data.data(), 0, nullptr, nullptr),
            CL_SUCCESS);
  const size_t global = n;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue_, kernel, 1, nullptr, &global,
                                   nullptr, 0, nullptr, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clEnqueueNDRangeKernel(queue_, kernel, 1, nullptr, &global,
                                   nullptr, 0, nullptr, nullptr),
            CL_SUCCESS);
  std::vector<std::int32_t> got(n, 0);
  ASSERT_EQ(clEnqueueReadBuffer(queue_, mem, CL_FALSE, 0, n * 4, got.data(),
                                0, nullptr, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clFinish(queue_), CL_SUCCESS);
  for (int v : got) ASSERT_EQ(v, 12);  // 3 * 2 * 2.

  clReleaseMemObject(mem);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  TearDownPipeline();
}

TEST_F(HaoClAsyncTest, ProfilingStampsFollowLifecycleOrder) {
  SetUpPipeline();
  cl_int err;
  const char* source = R"(
    __kernel void inc(__global int* data) {
      data[get_global_id(0)] += 1;
    })";
  cl_program program =
      clCreateProgramWithSource(context_, 1, &source, nullptr, &err);
  ASSERT_EQ(clBuildProgram(program, 0, nullptr, nullptr, nullptr, nullptr),
            CL_SUCCESS);
  cl_kernel kernel = clCreateKernel(program, "inc", &err);
  cl_mem mem = clCreateBuffer(context_, CL_MEM_READ_WRITE, 64 * 4, nullptr,
                              &err);
  ASSERT_EQ(clSetKernelArg(kernel, 0, sizeof(cl_mem), &mem), CL_SUCCESS);

  const size_t global = 64;
  cl_event event = nullptr;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue_, kernel, 1, nullptr, &global,
                                   nullptr, 0, nullptr, &event),
            CL_SUCCESS);

  // Profiling info is unavailable while the command may still be in
  // flight... (the event resolves lazily, so probe once drained).
  ASSERT_EQ(clFinish(queue_), CL_SUCCESS);
  cl_ulong queued = 0, submit = 0, start = 0, end = 0;
  ASSERT_EQ(clGetEventProfilingInfo(event, CL_PROFILING_COMMAND_QUEUED,
                                    sizeof(queued), &queued, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clGetEventProfilingInfo(event, CL_PROFILING_COMMAND_SUBMIT,
                                    sizeof(submit), &submit, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clGetEventProfilingInfo(event, CL_PROFILING_COMMAND_START,
                                    sizeof(start), &start, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clGetEventProfilingInfo(event, CL_PROFILING_COMMAND_END,
                                    sizeof(end), &end, nullptr),
            CL_SUCCESS);
  // The satellite contract: QUEUED < SUBMIT <= START <= END, END > START
  // for a real kernel.
  EXPECT_LT(queued, submit);
  EXPECT_LE(submit, start);
  EXPECT_LT(start, end);

  clReleaseEvent(event);
  clReleaseMemObject(mem);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  TearDownPipeline();
}

TEST_F(HaoClAsyncTest, MigrateMemObjectsPrefetchesAndChains) {
  SetUpPipeline();
  cl_int err;
  cl_mem mem = clCreateBuffer(context_, CL_MEM_READ_WRITE, 256, nullptr,
                              &err);
  cl_mem other = clCreateBuffer(context_, CL_MEM_READ_WRITE, 256, nullptr,
                                &err);
  ASSERT_EQ(err, CL_SUCCESS);
  std::vector<std::int32_t> init(64, 11);
  ASSERT_EQ(clEnqueueWriteBuffer(queue_, mem, CL_FALSE, 0, 256, init.data(),
                                 0, nullptr, nullptr),
            CL_SUCCESS);

  // Device-directed migration of both buffers, one event for the batch;
  // it chains on the in-order queue behind the write.
  cl_mem mems[2] = {mem, other};
  cl_event event = nullptr;
  ASSERT_EQ(clEnqueueMigrateMemObjects(queue_, 2, mems, 0, 0, nullptr,
                                       &event),
            CL_SUCCESS);
  ASSERT_NE(event, nullptr);
  ASSERT_EQ(clWaitForEvents(1, &event), CL_SUCCESS);
  cl_int exec_status = CL_QUEUED;
  ASSERT_EQ(clGetEventInfo(event, CL_EVENT_COMMAND_EXECUTION_STATUS,
                           sizeof exec_status, &exec_status, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(exec_status, CL_COMPLETE);
  clReleaseEvent(event);

  // Migrating back to the host (the explicit lazy gather) and reading
  // still sees the written values.
  ASSERT_EQ(clEnqueueMigrateMemObjects(queue_, 1, &mem,
                                       CL_MIGRATE_MEM_OBJECT_HOST, 0,
                                       nullptr, nullptr),
            CL_SUCCESS);
  std::vector<std::int32_t> got(64, 0);
  ASSERT_EQ(clEnqueueReadBuffer(queue_, mem, CL_TRUE, 0, 256, got.data(), 0,
                                nullptr, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(got, init);

  // CONTENT_UNDEFINED is accepted (pure ownership move).
  ASSERT_EQ(clEnqueueMigrateMemObjects(
                queue_, 1, &other,
                CL_MIGRATE_MEM_OBJECT_CONTENT_UNDEFINED, 0, nullptr,
                nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clFinish(queue_), CL_SUCCESS);

  // Misuse: no mem objects, bad handle, unknown flag bits.
  EXPECT_EQ(clEnqueueMigrateMemObjects(queue_, 0, nullptr, 0, 0, nullptr,
                                       nullptr),
            CL_INVALID_VALUE);
  cl_mem bogus = nullptr;
  EXPECT_EQ(clEnqueueMigrateMemObjects(queue_, 1, &bogus, 0, 0, nullptr,
                                       nullptr),
            CL_INVALID_MEM_OBJECT);
  EXPECT_EQ(clEnqueueMigrateMemObjects(queue_, 1, &mem, 1u << 7, 0, nullptr,
                                       nullptr),
            CL_INVALID_VALUE);

  clReleaseMemObject(mem);
  clReleaseMemObject(other);
  TearDownPipeline();
}

TEST_F(HaoClApiTest, MigrateOnClusterDeviceIsAnOrderedNoOp) {
  // The virtual cluster device has no fixed placement: a device-directed
  // migration is the legal no-op hint, but it must still behave as an
  // in-order command (event completes after the queue's earlier work).
  cl_int err;
  cl_device_id device;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_DEFAULT, 1, &device,
                           nullptr),
            CL_SUCCESS);
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_command_queue queue = clCreateCommandQueue(context, device, 0, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_mem mem = clCreateBuffer(context, CL_MEM_READ_WRITE, 64, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  std::vector<std::uint8_t> data(64, 42);
  ASSERT_EQ(clEnqueueWriteBuffer(queue, mem, CL_FALSE, 0, 64, data.data(),
                                 0, nullptr, nullptr),
            CL_SUCCESS);
  cl_event event = nullptr;
  ASSERT_EQ(clEnqueueMigrateMemObjects(queue, 1, &mem, 0, 0, nullptr,
                                       &event),
            CL_SUCCESS);
  ASSERT_EQ(clWaitForEvents(1, &event), CL_SUCCESS);
  std::vector<std::uint8_t> got(64, 0);
  ASSERT_EQ(clEnqueueReadBuffer(queue, mem, CL_TRUE, 0, 64, got.data(), 0,
                                nullptr, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(got, data);
  clReleaseEvent(event);
  clReleaseMemObject(mem);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);
}

TEST_F(HaoClAsyncTest, EnqueueBoundsAreValidated) {
  SetUpPipeline();
  cl_int err;
  cl_mem mem = clCreateBuffer(context_, CL_MEM_READ_WRITE, 64, nullptr, &err);
  cl_mem other = clCreateBuffer(context_, CL_MEM_READ_WRITE, 32, nullptr,
                                &err);
  ASSERT_EQ(err, CL_SUCCESS);
  std::vector<std::uint8_t> host(128, 0);

  // offset + size beyond the buffer: CL_INVALID_VALUE from the shim, for
  // reads, writes, and both ends of a copy.
  EXPECT_EQ(clEnqueueWriteBuffer(queue_, mem, CL_TRUE, 32, 64, host.data(),
                                 0, nullptr, nullptr),
            CL_INVALID_VALUE);
  EXPECT_EQ(clEnqueueReadBuffer(queue_, mem, CL_TRUE, 60, 8, host.data(), 0,
                                nullptr, nullptr),
            CL_INVALID_VALUE);
  EXPECT_EQ(clEnqueueCopyBuffer(queue_, mem, other, 0, 0, 48, 0, nullptr,
                                nullptr),
            CL_INVALID_VALUE);  // dst too small.
  EXPECT_EQ(clEnqueueCopyBuffer(queue_, mem, other, 48, 0, 32, 0, nullptr,
                                nullptr),
            CL_INVALID_VALUE);  // src over-read.
  // Zero-size transfers are invalid too.
  EXPECT_EQ(clEnqueueWriteBuffer(queue_, mem, CL_TRUE, 0, 0, host.data(), 0,
                                 nullptr, nullptr),
            CL_INVALID_VALUE);
  // offset + size wrapping around size_t must not sneak past the check.
  EXPECT_EQ(clEnqueueWriteBuffer(queue_, mem, CL_TRUE,
                                 std::numeric_limits<size_t>::max() - 4, 8,
                                 host.data(), 0, nullptr, nullptr),
            CL_INVALID_VALUE);
  // In-range still works.
  EXPECT_EQ(clEnqueueWriteBuffer(queue_, mem, CL_TRUE, 32, 32, host.data(),
                                 0, nullptr, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(clEnqueueCopyBuffer(queue_, mem, other, 32, 0, 32, 0, nullptr,
                                nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clFinish(queue_), CL_SUCCESS);

  clReleaseMemObject(mem);
  clReleaseMemObject(other);
  TearDownPipeline();
}

TEST_F(HaoClAsyncTest, FailedUserEventFailsDependentsAndFinish) {
  SetUpPipeline();
  cl_int err;
  std::vector<std::int32_t> init(8, 5);
  cl_mem mem = clCreateBuffer(context_, CL_MEM_COPY_HOST_PTR, 32,
                              init.data(), &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_event gate = clCreateUserEvent(context_, &err);
  ASSERT_EQ(err, CL_SUCCESS);

  std::vector<std::int32_t> sink(8, -1);
  cl_event read_event = nullptr;
  ASSERT_EQ(clEnqueueReadBuffer(queue_, mem, CL_FALSE, 0, 32, sink.data(), 1,
                                &gate, &read_event),
            CL_SUCCESS);
  ASSERT_EQ(clSetUserEventStatus(gate, -1), CL_SUCCESS);

  EXPECT_EQ(clWaitForEvents(1, &read_event),
            CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST);
  cl_int status = 0;
  ASSERT_EQ(clGetEventInfo(read_event, CL_EVENT_COMMAND_EXECUTION_STATUS,
                           sizeof(status), &status, nullptr),
            CL_SUCCESS);
  EXPECT_LT(status, 0);
  EXPECT_EQ(sink[0], -1);  // The gated read never ran.
  // The queue's tail failed; clFinish reports it.
  EXPECT_EQ(clFinish(queue_), CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST);

  // One failed command does NOT poison the in-order queue: a subsequent
  // independent enqueue still executes (queue chaining is ordering-only).
  ASSERT_EQ(clEnqueueReadBuffer(queue_, mem, CL_TRUE, 0, 32, sink.data(), 0,
                                nullptr, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(sink[0], 5);
  EXPECT_EQ(clFinish(queue_), CL_SUCCESS);

  clReleaseEvent(gate);
  clReleaseEvent(read_event);
  clReleaseMemObject(mem);
  TearDownPipeline();
}

TEST_F(HaoClAsyncTest, GlobalWorkOffsetShiftsGlobalIds) {
  // clEnqueueNDRangeKernel's global_work_offset (OpenCL 1.1+) maps through
  // the wire protocol: only ids [16, 48) run, so only that slice changes.
  SetUpPipeline();
  const char* source = R"(
    __kernel void mark(__global int* data) {
      data[get_global_id(0)] = (int)get_global_id(0) + 1;
    })";
  cl_int err;
  cl_program program =
      clCreateProgramWithSource(context_, 1, &source, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(program, 0, nullptr, nullptr, nullptr, nullptr),
            CL_SUCCESS);
  cl_kernel kernel = clCreateKernel(program, "mark", &err);
  ASSERT_EQ(err, CL_SUCCESS);

  std::vector<cl_int> zeros(64, 0);
  cl_mem buffer = clCreateBuffer(context_, CL_MEM_COPY_HOST_PTR,
                                 zeros.size() * 4, zeros.data(), &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 0, sizeof(buffer), &buffer), CL_SUCCESS);

  const size_t offset = 16;
  const size_t size = 32;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue_, kernel, 1, &offset, &size,
                                   nullptr, 0, nullptr, nullptr),
            CL_SUCCESS);
  std::vector<cl_int> got(64, -1);
  ASSERT_EQ(clEnqueueReadBuffer(queue_, buffer, CL_TRUE, 0, got.size() * 4,
                                got.data(), 0, nullptr, nullptr),
            CL_SUCCESS);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(got[i], i >= 16 && i < 48 ? i + 1 : 0) << i;
  }
  clReleaseMemObject(buffer);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  TearDownPipeline();
}

TEST_F(HaoClAsyncTest, PartitionedAnnotationSplitsAcrossNodes) {
  // The HaoCL extension end-to-end: annotate the output buffer as
  // row-partitioned, schedule on the virtual cluster device with the
  // splitting policy, and the single enqueue co-executes across nodes
  // while producing exactly the sequential result.
  cl_int err;
  cl_device_id cluster_device = nullptr;
  ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_DEFAULT, 1,
                           &cluster_device, nullptr),
            CL_SUCCESS);
  context_ = clCreateContext(nullptr, 1, &cluster_device, nullptr, nullptr,
                             &err);
  ASSERT_EQ(err, CL_SUCCESS);
  queue_ = clCreateCommandQueue(context_, cluster_device, 0, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_TRUE(haocl::api::BoundRuntime()
                  ->SetScheduler("hetero_split")
                  .ok());

  const char* source = R"(
    __kernel void fill(__global int* data, int n) {
      int i = get_global_id(0);
      if (i < n) data[i] = 3 * i + 7;
    })";
  cl_program program =
      clCreateProgramWithSource(context_, 1, &source, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(program, 0, nullptr, nullptr, nullptr, nullptr),
            CL_SUCCESS);
  cl_kernel kernel = clCreateKernel(program, "fill", &err);
  ASSERT_EQ(err, CL_SUCCESS);

  const cl_int n = 1024;
  cl_mem buffer =
      clCreateBuffer(context_, CL_MEM_READ_WRITE, n * 4, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 0, sizeof(buffer), &buffer), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 1, sizeof(n), &n), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArgAccessPatternHAOCL(
                kernel, 0, CL_HAOCL_ARG_ACCESS_PARTITIONED_DIM0, 4),
            CL_SUCCESS);
  // Misuse is rejected: scalar args carry no access pattern, and
  // PARTITIONED needs a stride.
  EXPECT_EQ(clSetKernelArgAccessPatternHAOCL(
                kernel, 1, CL_HAOCL_ARG_ACCESS_PARTITIONED_DIM0, 4),
            CL_INVALID_ARG_VALUE);
  EXPECT_EQ(clSetKernelArgAccessPatternHAOCL(
                kernel, 0, CL_HAOCL_ARG_ACCESS_PARTITIONED_DIM0, 0),
            CL_INVALID_ARG_VALUE);

  const size_t size = n;
  cl_event done = nullptr;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue_, kernel, 1, nullptr, &size,
                                   nullptr, 0, nullptr, &done),
            CL_SUCCESS);
  std::vector<cl_int> got(n, 0);
  ASSERT_EQ(clEnqueueReadBuffer(queue_, buffer, CL_TRUE, 0, n * 4,
                                got.data(), 1, &done, nullptr),
            CL_SUCCESS);
  for (cl_int i = 0; i < n; ++i) ASSERT_EQ(got[i], 3 * i + 7);
  clReleaseEvent(done);
  clReleaseMemObject(buffer);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  TearDownPipeline();
}

TEST(HaoClUnboundTest, NoPlatformWithoutCluster) {
  UnbindRuntime();
  cl_uint num_platforms = 99;
  EXPECT_EQ(clGetPlatformIDs(0, nullptr, &num_platforms), CL_SUCCESS);
  EXPECT_EQ(num_platforms, 0u);
}

}  // namespace
