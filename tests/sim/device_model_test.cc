#include "sim/device_model.h"

#include <gtest/gtest.h>

#include "sim/network_model.h"

namespace haocl::sim {
namespace {

KernelCost RegularCost(double flops, double bytes) {
  KernelCost c;
  c.flops = flops;
  c.bytes = bytes;
  c.work_items = 1024;
  return c;
}

TEST(DeviceModelTest, PresetsMatchPaperTestbed) {
  EXPECT_EQ(XeonE52686().type, NodeType::kCpu);
  EXPECT_EQ(TeslaP4().type, NodeType::kGpu);
  EXPECT_EQ(XilinxVU9P().type, NodeType::kFpga);
  // Relative ordering the paper's evaluation depends on.
  EXPECT_GT(TeslaP4().compute_gflops, XilinxVU9P().compute_gflops);
  EXPECT_GT(XilinxVU9P().compute_gflops, XeonE52686().compute_gflops);
  EXPECT_LT(XilinxVU9P().power_watts, XeonE52686().power_watts);
}

TEST(DeviceModelTest, GpuBeatsCpuOnRegularCompute) {
  const KernelCost cost = RegularCost(/*flops=*/1e12, /*bytes=*/1e9);
  EXPECT_LT(ModelKernelTime(TeslaP4(), cost),
            ModelKernelTime(XeonE52686(), cost));
}

TEST(DeviceModelTest, FpgaWinsOnIrregularKernels) {
  KernelCost cost = RegularCost(1e11, 1e8);
  cost.irregular = true;
  // Divergent kernels collapse GPU efficiency; the FPGA pipeline does not.
  EXPECT_LT(ModelKernelTime(XilinxVU9P(), cost),
            ModelKernelTime(TeslaP4(), cost));
}

TEST(DeviceModelTest, RooflineComputeBound) {
  // Huge flops, tiny bytes: time tracks flops/peak.
  const DeviceSpec gpu = TeslaP4();
  const KernelCost cost = RegularCost(5.5e12, 1.0);
  const double t = ModelKernelTime(gpu, cost);
  EXPECT_NEAR(t, 1.0, 0.01);  // 5.5 TFLOP / 5.5 TFLOPs ~ 1 s.
}

TEST(DeviceModelTest, RooflineMemoryBound) {
  const DeviceSpec gpu = TeslaP4();
  const KernelCost cost = RegularCost(1.0, 192e9);
  EXPECT_NEAR(ModelKernelTime(gpu, cost), 1.0, 0.01);
}

TEST(DeviceModelTest, TimeIsMonotoneInWork) {
  const DeviceSpec dev = XilinxVU9P();
  double prev = 0.0;
  for (double flops = 1e6; flops <= 1e12; flops *= 10) {
    const double t = ModelKernelTime(dev, RegularCost(flops, flops));
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(DeviceModelTest, FpgaChargesPipelineFill) {
  DeviceSpec fpga = XilinxVU9P();
  const KernelCost tiny = RegularCost(1.0, 1.0);
  EXPECT_GE(ModelKernelTime(fpga, tiny),
            fpga.pipeline_fill_s + fpga.launch_overhead_s);
}

TEST(DeviceModelTest, ScaledCostDividesWork) {
  const KernelCost whole = RegularCost(1e10, 1e8);
  const KernelCost half = whole.Scaled(0.5);
  EXPECT_DOUBLE_EQ(half.flops, 0.5e10);
  EXPECT_DOUBLE_EQ(half.bytes, 0.5e8);
  EXPECT_EQ(half.work_items, whole.work_items / 2);
}

TEST(NetworkModelTest, GigabitEthernetShape) {
  const LinkSpec link = GigabitEthernet();
  // Latency floor for small messages.
  EXPECT_GE(link.TransferTime(1), link.latency_s);
  // 1 GB at ~117 MB/s payload: just under 9 seconds.
  const double t = link.TransferTime(1'000'000'000);
  EXPECT_GT(t, 8.0);
  EXPECT_LT(t, 9.5);
  // Monotone in size.
  EXPECT_LT(link.TransferTime(1000), link.TransferTime(1'000'000));
}

TEST(NetworkModelTest, TenGigIsFaster) {
  EXPECT_LT(TenGigabitEthernet().TransferTime(1 << 20),
            GigabitEthernet().TransferTime(1 << 20));
}

TEST(DeviceModelTest, SpecForTypeCoversAll) {
  EXPECT_EQ(SpecForType(NodeType::kCpu).type, NodeType::kCpu);
  EXPECT_EQ(SpecForType(NodeType::kGpu).type, NodeType::kGpu);
  EXPECT_EQ(SpecForType(NodeType::kFpga).type, NodeType::kFpga);
}

}  // namespace
}  // namespace haocl::sim
