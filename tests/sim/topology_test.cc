#include "sim/topology.h"

#include <gtest/gtest.h>

namespace haocl::sim {
namespace {

TEST(SerialResourceTest, SerializesOverlappingRequests) {
  SerialResource r;
  EXPECT_DOUBLE_EQ(r.Acquire(0.0, 1.0), 1.0);
  // Second request arrives at t=0.5 but the resource is busy until 1.0.
  EXPECT_DOUBLE_EQ(r.Acquire(0.5, 1.0), 2.0);
  // A request after the busy period starts immediately.
  EXPECT_DOUBLE_EQ(r.Acquire(5.0, 1.0), 6.0);
  EXPECT_DOUBLE_EQ(r.busy_total(), 3.0);
}

TEST(TopologyTest, MakeBuildsRequestedShape) {
  auto topo = ClusterTopology::Make(16, 4, 2);
  EXPECT_EQ(topo.size(), 22u);
  EXPECT_EQ(topo.NodesOfType(NodeType::kGpu).size(), 16u);
  EXPECT_EQ(topo.NodesOfType(NodeType::kFpga).size(), 4u);
  EXPECT_EQ(topo.NodesOfType(NodeType::kCpu).size(), 2u);
  EXPECT_EQ(topo.node(0).device.type, NodeType::kGpu);
  EXPECT_EQ(topo.node(16).device.type, NodeType::kFpga);
}

TEST(TopologyTest, FromConfig) {
  ClusterConfig config;
  config.AddNode({"a", NodeType::kGpu, "127.0.0.1", 9000});
  config.AddNode({"b", NodeType::kFpga, "127.0.0.1", 9001});
  auto topo = ClusterTopology::FromConfig(config);
  ASSERT_EQ(topo.size(), 2u);
  EXPECT_EQ(topo.node(0).name, "a");
  EXPECT_EQ(topo.node(1).device.type, NodeType::kFpga);
}

TEST(TopologyTest, HostUplinkSerializesScatter) {
  // Scattering the same bytes to N nodes serializes on the host NIC, so
  // the finish time grows ~linearly with N — the Fig. 3 transfer shape.
  auto topo = ClusterTopology::Make(4, 0);
  const std::uint64_t chunk = 10'000'000;  // 10 MB each.
  SimTime last = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    last = std::max(last, topo.HostToNode(i, chunk, 0.0));
  }
  const SimTime one = GigabitEthernet().TransferTime(chunk);
  EXPECT_GT(last, 3.9 * one);
  EXPECT_LT(last, 4.5 * one);
}

TEST(TopologyTest, GatherSerializesOnHostNic) {
  auto topo = ClusterTopology::Make(4, 0);
  const std::uint64_t chunk = 10'000'000;
  SimTime last = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    last = std::max(last, topo.NodeToHost(i, chunk, 0.0));
  }
  const SimTime one = GigabitEthernet().TransferTime(chunk);
  EXPECT_GT(last, 3.9 * one);
}

TEST(TopologyTest, NodeToNodeDoesNotTouchHostNic) {
  auto topo = ClusterTopology::Make(4, 0);
  topo.NodeToNode(0, 1, 1'000'000, 0.0);
  EXPECT_DOUBLE_EQ(topo.host_nic().busy_total(), 0.0);
  EXPECT_GT(topo.node(0).nic.busy_total(), 0.0);
  EXPECT_GT(topo.node(1).nic.busy_total(), 0.0);
}

TEST(TopologyTest, KernelsOnDistinctNodesRunConcurrently) {
  auto topo = ClusterTopology::Make(2, 0);
  KernelCost cost;
  cost.flops = 5.5e12;  // ~1 s on a P4.
  const SimTime t0 = topo.RunKernel(0, cost, 0.0);
  const SimTime t1 = topo.RunKernel(1, cost, 0.0);
  EXPECT_NEAR(t0, 1.0, 0.05);
  EXPECT_NEAR(t1, 1.0, 0.05);  // Parallel, not 2.0.
}

TEST(TopologyTest, SameNodeKernelsSerialize) {
  auto topo = ClusterTopology::Make(1, 0);
  KernelCost cost;
  cost.flops = 5.5e12;
  topo.RunKernel(0, cost, 0.0);
  const SimTime t = topo.RunKernel(0, cost, 0.0);
  EXPECT_NEAR(t, 2.0, 0.1);
}

TEST(TopologyTest, FpgaReconfigurationChargedOnBitstreamSwap) {
  auto topo = ClusterTopology::Make(0, 1);
  KernelCost cost;
  cost.flops = 1e6;
  const SimTime first = topo.RunKernel(0, cost, 0.0, "matmul.xclbin");
  // Same bitstream: no reconfiguration.
  const SimTime second = topo.RunKernel(0, cost, first, "matmul.xclbin");
  // Different bitstream: pays the reconfigure penalty.
  const SimTime third = topo.RunKernel(0, cost, second, "spmv.xclbin");
  const double reconf = XilinxVU9P().reconfigure_s;
  EXPECT_GT(first, reconf);
  EXPECT_LT(second - first, reconf);
  EXPECT_GT(third - second, reconf * 0.99);
}

TEST(TopologyTest, EnergyAccounting) {
  auto topo = ClusterTopology::Make(1, 1);
  KernelCost cost;
  cost.flops = 5.5e12;
  topo.RunKernel(0, cost, 0.0);  // ~1 s on GPU at 75 W.
  const double joules = topo.TotalEnergyJoules();
  EXPECT_NEAR(joules, 75.0, 5.0);
}

TEST(TopologyTest, ResetTimeClearsEverything) {
  auto topo = ClusterTopology::Make(1, 1);
  KernelCost cost;
  cost.flops = 1e9;
  topo.RunKernel(0, cost, 0.0);
  topo.HostToNode(0, 1000, 0.0);
  topo.ResetTime();
  EXPECT_DOUBLE_EQ(topo.host_nic().busy_total(), 0.0);
  EXPECT_DOUBLE_EQ(topo.node(0).compute.busy_total(), 0.0);
  EXPECT_DOUBLE_EQ(topo.TotalEnergyJoules(), 0.0);
}

}  // namespace
}  // namespace haocl::sim
