// Device drivers + ICD dispatch: timing models, native/interpreted paths,
// the FPGA bitstream policy, and driver installation.
#include "driver/device_driver.h"

#include <gtest/gtest.h>

#include "driver/icd.h"
#include "driver/native_registry.h"
#include "oclc/program.h"

namespace haocl::driver {
namespace {

constexpr char kSource[] = R"(
  __kernel void muladd(__global float* data, float a, float b, int n) {
    int i = get_global_id(0);
    if (i < n) data[i] = data[i] * a + b;
  })";

TEST(IcdTest, BuiltinDriversInstalled) {
  auto& icd = IcdRegistry::Instance();
  EXPECT_TRUE(icd.Has(NodeType::kCpu));
  EXPECT_TRUE(icd.Has(NodeType::kGpu));
  EXPECT_TRUE(icd.Has(NodeType::kFpga));
  auto gpu = icd.Create(NodeType::kGpu);
  ASSERT_TRUE(gpu.ok());
  EXPECT_EQ((*gpu)->spec().type, NodeType::kGpu);
  EXPECT_EQ((*gpu)->spec().model_name, "NVIDIA Tesla P4");
}

TEST(IcdTest, CustomDriverInstallAndDispatch) {
  // A vendor can install its own driver; subsequent Create() dispatches to
  // it. Restore the builtin afterwards.
  class NullDriver : public DeviceDriver {
   public:
    [[nodiscard]] const sim::DeviceSpec& spec() const override {
      return spec_;
    }
    Expected<std::shared_ptr<const oclc::Module>> Build(
        const std::string&, std::string*) override {
      return Status(ErrorCode::kCompilerNotAvailable, "null driver");
    }
    Status Launch(const oclc::Module&, const std::string&,
                  const std::vector<oclc::ArgBinding>&, const oclc::NDRange&,
                  LaunchProfile*, const sim::KernelCost*) override {
      return Status(ErrorCode::kUnimplemented, "null driver");
    }

   private:
    sim::DeviceSpec spec_ = sim::XeonE52686();
  };

  IcdRegistry::Instance().Install(
      NodeType::kCpu, [] { return std::make_unique<NullDriver>(); });
  auto driver = IcdRegistry::Instance().Create(NodeType::kCpu);
  ASSERT_TRUE(driver.ok());
  std::string log;
  EXPECT_EQ((*driver)->Build("x", &log).code(),
            ErrorCode::kCompilerNotAvailable);
  IcdRegistry::Instance().Install(NodeType::kCpu, MakeCpuDriver);
}

TEST(DriverTest, GpuLaunchExecutesAndProfiles) {
  auto driver = MakeGpuDriver();
  std::string log;
  auto module = driver->Build(kSource, &log);
  ASSERT_TRUE(module.ok()) << log;

  const int n = 512;
  std::vector<float> data(n, 2.0f);
  oclc::NDRange range;
  range.global[0] = n;
  LaunchProfile profile;
  Status s = driver->Launch(
      **module, "muladd",
      {oclc::ArgBinding::Buffer(data.data(), n * 4),
       oclc::ArgBinding::Float(3.0f), oclc::ArgBinding::Float(1.0f),
       oclc::ArgBinding::Int(n)},
      range, &profile);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (float v : data) ASSERT_FLOAT_EQ(v, 7.0f);
  EXPECT_GT(profile.modeled_seconds, 0.0);
  EXPECT_GT(profile.flops, 0u);
  EXPECT_FALSE(profile.used_native_binary);
}

TEST(DriverTest, NativeFastPathPreferred) {
  auto driver = MakeCpuDriver();
  std::string log;
  auto module = driver->Build(
      "__kernel void nat_test(__global int* d) { d[0] = 1; }", &log);
  ASSERT_TRUE(module.ok());
  bool native_ran = false;
  NativeKernelRegistry::Instance().Register(
      "nat_test",
      [&native_ran](const std::vector<oclc::ArgBinding>& args,
                    const oclc::NDRange&) {
        native_ran = true;
        *reinterpret_cast<std::int32_t*>(args[0].data) = 99;
        return Status::Ok();
      });
  std::vector<std::int32_t> data(1, 0);
  oclc::NDRange range;
  LaunchProfile profile;
  ASSERT_TRUE(driver
                  ->Launch(**module, "nat_test",
                           {oclc::ArgBinding::Buffer(data.data(), 4)}, range,
                           &profile)
                  .ok());
  EXPECT_TRUE(native_ran);
  EXPECT_TRUE(profile.used_native_binary);
  EXPECT_EQ(data[0], 99);  // The native binary ran, not the interpreter.
  NativeKernelRegistry::Instance().Unregister("nat_test");
}

TEST(DriverTest, FpgaRefusesUnknownKernels) {
  auto driver = MakeFpgaDriver();
  std::string log;
  auto module = driver->Build(
      "__kernel void no_bitstream(__global int* d) { d[0] = 1; }", &log);
  ASSERT_TRUE(module.ok());
  std::vector<std::int32_t> data(1, 0);
  oclc::NDRange range;
  Status s = driver->Launch(**module, "no_bitstream",
                            {oclc::ArgBinding::Buffer(data.data(), 4)}, range,
                            nullptr);
  EXPECT_EQ(s.code(), ErrorCode::kInvalidProgramExecutable);
}

TEST(DriverTest, FpgaRunsRegisteredBitstream) {
  NativeKernelRegistry::Instance().Register(
      "with_bitstream",
      [](const std::vector<oclc::ArgBinding>& args, const oclc::NDRange&) {
        *reinterpret_cast<std::int32_t*>(args[0].data) = 7;
        return Status::Ok();
      });
  auto driver = MakeFpgaDriver();
  std::string log;
  auto module = driver->Build(
      "__kernel void with_bitstream(__global int* d) { d[0] = 1; }", &log);
  ASSERT_TRUE(module.ok());
  std::vector<std::int32_t> data(1, 0);
  oclc::NDRange range;
  LaunchProfile profile;
  ASSERT_TRUE(driver
                  ->Launch(**module, "with_bitstream",
                           {oclc::ArgBinding::Buffer(data.data(), 4)}, range,
                           &profile)
                  .ok());
  EXPECT_EQ(data[0], 7);
  EXPECT_TRUE(profile.used_native_binary);
  NativeKernelRegistry::Instance().Unregister("with_bitstream");
}

TEST(DriverTest, BuildFailurePopulatesLog) {
  auto driver = MakeGpuDriver();
  std::string log;
  auto module = driver->Build("__kernel void broken(", &log);
  EXPECT_FALSE(module.ok());
  EXPECT_FALSE(log.empty());
}

TEST(DriverTest, CostEstimateScalesWithRange) {
  auto driver = MakeGpuDriver();
  std::string log;
  auto module = driver->Build(kSource, &log);
  ASSERT_TRUE(module.ok());
  const oclc::CompiledFunction* kernel = (*module)->FindKernel("muladd");
  ASSERT_NE(kernel, nullptr);

  oclc::NDRange small;
  small.global[0] = 100;
  oclc::NDRange big;
  big.global[0] = 100000;
  auto cost_small = EstimateKernelCost(**module, *kernel, {}, small);
  auto cost_big = EstimateKernelCost(**module, *kernel, {}, big);
  EXPECT_GT(cost_big.flops, cost_small.flops * 100);
  EXPECT_EQ(cost_big.work_items, 100000u);
}

TEST(DriverTest, UnknownKernelNameRejected) {
  auto driver = MakeGpuDriver();
  std::string log;
  auto module = driver->Build(kSource, &log);
  ASSERT_TRUE(module.ok());
  oclc::NDRange range;
  Status s = driver->Launch(**module, "nope", {}, range, nullptr);
  EXPECT_EQ(s.code(), ErrorCode::kInvalidKernelName);
}

TEST(RegistryTest, NamesAreSortedAndUnique) {
  auto& registry = NativeKernelRegistry::Instance();
  registry.Register("zz_probe", [](const std::vector<oclc::ArgBinding>&,
                                   const oclc::NDRange&) {
    return Status::Ok();
  });
  auto names = registry.Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_TRUE(registry.Contains("zz_probe"));
  registry.Unregister("zz_probe");
  EXPECT_FALSE(registry.Contains("zz_probe"));
}

}  // namespace
}  // namespace haocl::driver
