// RPC call deadlines: a peer that never answers must fail pending calls
// with kNodeLost once the armed timeout expires — the liveness signal the
// elastic failure-recovery loop keys on — while answered calls are
// untouched and a disarmed client keeps the legacy wait-forever contract.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/protocol.h"
#include "net/rpc.h"
#include "net/sim_transport.h"

namespace haocl::net {
namespace {

TEST(RpcDeadlineTest, UnansweredCallFailsWithNodeLost) {
  auto [host_end, node_end] = CreateSimChannel();
  RpcClient client(std::move(host_end));
  client.SetCallTimeout(std::chrono::milliseconds(50));
  // The "node" end never reads, never replies: a hung peer.
  const auto start = std::chrono::steady_clock::now();
  auto reply = client.Call(MsgType::kHeartbeat, /*session=*/1, {});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kNodeLost);
  // The diagnostic names the call that died.
  EXPECT_NE(reply.status().message().find("deadline"), std::string::npos)
      << reply.status().message();
  // It fired on the deadline, not on the synchronous Call's 30s fallback.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(RpcDeadlineTest, AsyncFutureFailsOnDeadline) {
  auto [host_end, node_end] = CreateSimChannel();
  RpcClient client(std::move(host_end));
  client.SetCallTimeout(std::chrono::milliseconds(30));
  auto future = client.CallAsync(MsgType::kQueryLoad, 1, {});
  auto reply = future->Wait();
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kNodeLost);
}

TEST(RpcDeadlineTest, AnsweredCallUnaffectedByDeadline) {
  auto [host_end, node_end] = CreateSimChannel();
  // Echo server: answer every request with an empty kStatusReply.
  node_end->Start([&](Message msg) {
    StatusReply ok_reply;
    ok_reply.status_code = 0;
    Message reply;
    reply.type = MsgType::kStatusReply;
    reply.session = msg.session;
    reply.seq = msg.seq;
    reply.payload = ok_reply.Encode();
    (void)node_end->Send(reply);
  });
  RpcClient client(std::move(host_end));
  client.SetCallTimeout(std::chrono::milliseconds(200));
  for (int i = 0; i < 10; ++i) {
    auto reply = client.Call(MsgType::kHeartbeat, 1, {});
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->type, MsgType::kStatusReply);
  }
}

TEST(RpcDeadlineTest, DeadlineAppliesOnlyToCallsAfterArming) {
  auto [host_end, node_end] = CreateSimChannel();
  RpcClient client(std::move(host_end));
  // Armed mid-flight: the first call (no deadline) would wait forever on
  // its future, so use the blocking Call's own short timeout to reap it.
  auto unarmed = client.Call(MsgType::kHeartbeat, 1, {},
                             std::chrono::milliseconds(50));
  ASSERT_FALSE(unarmed.ok());
  EXPECT_NE(unarmed.status().code(), ErrorCode::kNodeLost);
  client.SetCallTimeout(std::chrono::milliseconds(30));
  auto armed = client.Call(MsgType::kHeartbeat, 1, {});
  ASSERT_FALSE(armed.ok());
  EXPECT_EQ(armed.status().code(), ErrorCode::kNodeLost);
}

}  // namespace
}  // namespace haocl::net
