// Transport tests: the in-process channel and the real TCP loopback path
// must behave identically (ordering, large frames, clean shutdown).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/sync.h"
#include "net/rpc.h"
#include "net/sim_transport.h"
#include "net/tcp_transport.h"

namespace haocl::net {
namespace {

Message Make(MsgType type, std::uint64_t seq,
             std::vector<std::uint8_t> payload = {}) {
  Message msg;
  msg.type = type;
  msg.seq = seq;
  msg.payload = std::move(payload);
  return msg;
}

TEST(SimTransportTest, BidirectionalOrdering) {
  auto [a, b] = CreateSimChannel();
  BlockingQueue<std::uint64_t> got_a;
  BlockingQueue<std::uint64_t> got_b;
  a->Start([&](Message m) { got_a.Push(m.seq); });
  b->Start([&](Message m) { got_b.Push(m.seq); });
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(a->Send(Make(MsgType::kQueryLoad, i)).ok());
    ASSERT_TRUE(b->Send(Make(MsgType::kStatusReply, 1000 + i)).ok());
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(*got_b.Pop(), i);          // a -> b arrives in order.
    EXPECT_EQ(*got_a.Pop(), 1000 + i);   // b -> a arrives in order.
  }
  a->Close();
  b->Close();
}

TEST(SimTransportTest, SendAfterPeerCloseFails) {
  auto [a, b] = CreateSimChannel();
  a->Start([](Message) {});
  b->Start([](Message) {});
  b->Close();
  Status s = a->Send(Make(MsgType::kQueryLoad, 1));
  EXPECT_FALSE(s.ok());
  a->Close();
}

TEST(SimTransportTest, CountsBytesAndMessages) {
  auto [a, b] = CreateSimChannel();
  b->Start([](Message) {});
  a->Start([](Message) {});
  Message m = Make(MsgType::kWriteBuffer, 1,
                   std::vector<std::uint8_t>(1000, 0xAB));
  ASSERT_TRUE(a->Send(m).ok());
  EXPECT_EQ(a->messages_sent(), 1u);
  EXPECT_EQ(a->bytes_sent(), m.WireSize());
  a->Close();
  b->Close();
}

TEST(SimListenerTest, ConnectDeliversServerEnd) {
  SimListener listener;
  BlockingQueue<ConnectionPtr> accepted;
  ASSERT_TRUE(
      listener.Start([&](ConnectionPtr c) { accepted.Push(std::move(c)); })
          .ok());
  auto client = listener.Connect();
  ASSERT_TRUE(client.ok());
  auto server = accepted.Pop();
  ASSERT_TRUE(server.has_value());

  BlockingQueue<std::uint64_t> got;
  (*server)->Start([&](Message m) { got.Push(m.seq); });
  (*client)->Start([](Message) {});
  ASSERT_TRUE((*client)->Send(Make(MsgType::kHelloRequest, 5)).ok());
  EXPECT_EQ(*got.Pop(), 5u);
  (*client)->Close();
  (*server)->Close();
  listener.Stop();
  EXPECT_FALSE(listener.Connect().ok());
}

class TcpTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    listener_ = std::make_unique<TcpListener>(0);  // Ephemeral port.
    ASSERT_TRUE(listener_
                    ->Start([this](ConnectionPtr c) {
                      accepted_.Push(std::move(c));
                    })
                    .ok());
  }
  void TearDown() override { listener_->Stop(); }

  std::unique_ptr<TcpListener> listener_;
  BlockingQueue<ConnectionPtr> accepted_;
};

TEST_F(TcpTransportTest, RoundTripOverLoopback) {
  auto client = TcpConnect("127.0.0.1", listener_->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto server = accepted_.Pop();
  ASSERT_TRUE(server.has_value());

  BlockingQueue<Message> at_server;
  (*server)->Start([&](Message m) { at_server.Push(std::move(m)); });
  BlockingQueue<Message> at_client;
  (*client)->Start([&](Message m) { at_client.Push(std::move(m)); });

  ASSERT_TRUE((*client)
                  ->Send(Make(MsgType::kWriteBuffer, 9,
                              std::vector<std::uint8_t>{1, 2, 3}))
                  .ok());
  auto got = at_server.Pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->seq, 9u);
  EXPECT_EQ(got->payload, (std::vector<std::uint8_t>{1, 2, 3}));

  ASSERT_TRUE((*server)->Send(Make(MsgType::kStatusReply, 9)).ok());
  auto reply = at_client.Pop();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MsgType::kStatusReply);

  (*client)->Close();
  (*server)->Close();
}

TEST_F(TcpTransportTest, LargeFrameSurvives) {
  auto client = TcpConnect("127.0.0.1", listener_->port());
  ASSERT_TRUE(client.ok());
  auto server = accepted_.Pop();
  BlockingQueue<Message> at_server;
  (*server)->Start([&](Message m) { at_server.Push(std::move(m)); });
  (*client)->Start([](Message) {});

  std::vector<std::uint8_t> big(8 << 20);  // 8 MB.
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  ASSERT_TRUE((*client)->Send(Make(MsgType::kWriteBuffer, 1, big)).ok());
  auto got = at_server.Pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, big);
  (*client)->Close();
  (*server)->Close();
}

TEST_F(TcpTransportTest, ManyMessagesStayOrdered) {
  auto client = TcpConnect("127.0.0.1", listener_->port());
  ASSERT_TRUE(client.ok());
  auto server = accepted_.Pop();
  BlockingQueue<std::uint64_t> seqs;
  (*server)->Start([&](Message m) { seqs.Push(m.seq); });
  (*client)->Start([](Message) {});
  for (std::uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE((*client)
                    ->Send(Make(MsgType::kQueryLoad, i,
                                std::vector<std::uint8_t>(i % 97, 1)))
                    .ok());
  }
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(*seqs.Pop(), i);
  }
  (*client)->Close();
  (*server)->Close();
}

TEST(TcpConnectTest, RefusedConnectionReported) {
  // Port 1 is essentially never listening.
  auto client = TcpConnect("127.0.0.1", 1);
  EXPECT_FALSE(client.ok());
  EXPECT_EQ(client.code(), ErrorCode::kNetworkError);
}

TEST(TcpConnectTest, BadAddressReported) {
  EXPECT_FALSE(TcpConnect("not-an-ip", 80).ok());
}

// ---- RPC -------------------------------------------------------------------

TEST(RpcTest, CallMatchesReplyBySeq) {
  auto [host_end, node_end] = CreateSimChannel();
  // Echo server: replies with the request seq and type kStatusReply.
  auto* node_raw = node_end.get();
  node_end->Start([node_raw](Message m) {
    Message reply;
    reply.type = MsgType::kStatusReply;
    reply.seq = m.seq;
    reply.payload = m.payload;
    (void)node_raw->Send(reply);
  });
  RpcClient client(std::move(host_end));

  // Issue out-of-order async calls; all must resolve.
  auto f1 = client.CallAsync(MsgType::kQueryLoad, 1, {1});
  auto f2 = client.CallAsync(MsgType::kQueryLoad, 1, {2});
  auto f3 = client.CallAsync(MsgType::kQueryLoad, 1, {3});
  EXPECT_EQ(f3->Wait().value().payload, (std::vector<std::uint8_t>{3}));
  EXPECT_EQ(f1->Wait().value().payload, (std::vector<std::uint8_t>{1}));
  EXPECT_EQ(f2->Wait().value().payload, (std::vector<std::uint8_t>{2}));
  client.Close();
  node_raw->Close();
}

TEST(RpcTest, TimeoutWhenNodeSilent) {
  auto [host_end, node_end] = CreateSimChannel();
  node_end->Start([](Message) { /* never reply */ });
  RpcClient client(std::move(host_end));
  auto reply = client.Call(MsgType::kQueryLoad, 1, {},
                           std::chrono::milliseconds(50));
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.code(), ErrorCode::kNetworkError);
  client.Close();
  node_end->Close();
}

TEST(RpcTest, CloseFailsPendingCalls) {
  auto [host_end, node_end] = CreateSimChannel();
  node_end->Start([](Message) {});
  RpcClient client(std::move(host_end));
  auto pending = client.CallAsync(MsgType::kQueryLoad, 1, {});
  client.Close();
  EXPECT_FALSE(pending->Wait().ok());
  node_end->Close();
}

}  // namespace
}  // namespace haocl::net
