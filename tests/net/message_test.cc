#include "net/message.h"

#include <gtest/gtest.h>

#include "net/protocol.h"

namespace haocl::net {
namespace {

TEST(MessageTest, SerializeDeserializeRoundTrip) {
  Message msg;
  msg.type = MsgType::kLaunchKernel;
  msg.seq = 42;
  msg.session = 7;
  msg.payload = {1, 2, 3, 4, 5};
  auto frame = msg.Serialize();
  auto parsed = Message::Deserialize(frame.data(), frame.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->type, MsgType::kLaunchKernel);
  EXPECT_EQ(parsed->seq, 42u);
  EXPECT_EQ(parsed->session, 7u);
  EXPECT_EQ(parsed->payload, msg.payload);
}

TEST(MessageTest, EmptyPayload) {
  Message msg;
  msg.type = MsgType::kQueryLoad;
  auto frame = msg.Serialize();
  EXPECT_EQ(frame.size(), Message::kHeaderSize);
  auto parsed = Message::Deserialize(frame.data(), frame.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(MessageTest, BadMagicRejected) {
  Message msg;
  auto frame = msg.Serialize();
  frame[0] ^= 0xFF;
  EXPECT_FALSE(Message::Deserialize(frame.data(), frame.size()).ok());
  EXPECT_FALSE(Message::ParseHeader(frame.data(), frame.size()).ok());
}

TEST(MessageTest, TruncatedHeaderRejected) {
  Message msg;
  auto frame = msg.Serialize();
  EXPECT_FALSE(Message::ParseHeader(frame.data(), 5).ok());
  EXPECT_FALSE(Message::Deserialize(frame.data(), 5).ok());
}

TEST(MessageTest, SizeMismatchRejected) {
  Message msg;
  msg.payload = {1, 2, 3};
  auto frame = msg.Serialize();
  // Claim the full frame but hand over one byte less.
  EXPECT_FALSE(Message::Deserialize(frame.data(), frame.size() - 1).ok());
}

TEST(MessageTest, AbsurdPayloadLengthRejected) {
  Message msg;
  auto frame = msg.Serialize();
  // Patch the payload-size field (last 8 header bytes) to something huge.
  for (std::size_t i = Message::kHeaderSize - 8; i < Message::kHeaderSize;
       ++i) {
    frame[i] = 0xFF;
  }
  auto header = Message::ParseHeader(frame.data(), frame.size());
  EXPECT_FALSE(header.ok());
  EXPECT_EQ(header.code(), ErrorCode::kProtocolError);
}

// ----- Protocol payload codecs ---------------------------------------------

TEST(ProtocolTest, HelloRoundTrip) {
  HelloRequest req;
  req.host_name = "host-A";
  auto decoded = HelloRequest::Decode(req.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->host_name, "host-A");

  HelloReply reply;
  reply.node_name = "gpu3";
  reply.device_type = NodeType::kGpu;
  reply.device_model = "Tesla P4";
  reply.compute_gflops = 5500;
  reply.simd_width = 32;
  auto r = HelloReply::Decode(reply.Encode());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->node_name, "gpu3");
  EXPECT_EQ(r->device_type, NodeType::kGpu);
  EXPECT_DOUBLE_EQ(r->compute_gflops, 5500);
  EXPECT_EQ(r->simd_width, 32u);

  HelloReply scalar_reply;  // Default: scalar device, width 1.
  auto sr = HelloReply::Decode(scalar_reply.Encode());
  ASSERT_TRUE(sr.ok());
  EXPECT_EQ(sr->simd_width, 1u);
}

TEST(ProtocolTest, BufferRequestsRoundTrip) {
  CreateBufferRequest create{11, 4096};
  auto c = CreateBufferRequest::Decode(create.Encode());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->buffer_id, 11u);
  EXPECT_EQ(c->size, 4096u);

  WriteBufferRequest write;
  write.buffer_id = 11;
  write.offset = 128;
  write.data = {9, 8, 7};
  auto w = WriteBufferRequest::Decode(write.Encode());
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->offset, 128u);
  EXPECT_EQ(w->data, write.data);

  ReadBufferRequest read{11, 0, 256};
  auto r = ReadBufferRequest::Decode(read.Encode());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size, 256u);

  CopyBufferRequest copy{1, 2, 10, 20, 30};
  auto cp = CopyBufferRequest::Decode(copy.Encode());
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp->dst_offset, 20u);
}

TEST(ProtocolTest, LaunchKernelRoundTrip) {
  LaunchKernelRequest req;
  req.program_id = 3;
  req.kernel_name = "matmul_partition";
  WireKernelArg buf;
  buf.kind = WireKernelArg::Kind::kBuffer;
  buf.buffer_id = 17;
  buf.written_begin = 128;
  buf.written_end = 640;
  WireKernelArg scalar;
  scalar.kind = WireKernelArg::Kind::kScalar;
  scalar.scalar_bytes = {0, 1, 0, 0};
  WireKernelArg local;
  local.kind = WireKernelArg::Kind::kLocalSize;
  local.local_size = 1024;
  req.args = {buf, scalar, local};
  req.work_dim = 2;
  req.global[0] = 256;
  req.global[1] = 128;
  req.local[0] = 16;
  req.local[1] = 8;
  req.local_specified = true;

  auto decoded = LaunchKernelRequest::Decode(req.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kernel_name, "matmul_partition");
  ASSERT_EQ(decoded->args.size(), 3u);
  EXPECT_EQ(decoded->args[0].buffer_id, 17u);
  EXPECT_EQ(decoded->args[0].written_begin, 128u);
  EXPECT_EQ(decoded->args[0].written_end, 640u);
  EXPECT_EQ(decoded->args[1].scalar_bytes.size(), 4u);
  EXPECT_EQ(decoded->args[2].local_size, 1024u);
  EXPECT_EQ(decoded->global[1], 128u);
  EXPECT_TRUE(decoded->local_specified);
  EXPECT_FALSE(decoded->has_cost_hint);  // None set: none decoded.

  // The analytic cost hint (shard-scaled work estimate) rides along.
  req.has_cost_hint = true;
  req.hint_flops = 2.5e9;
  req.hint_bytes = 1e6;
  req.hint_work_items = 256;
  req.hint_irregular = true;
  auto hinted = LaunchKernelRequest::Decode(req.Encode());
  ASSERT_TRUE(hinted.ok()) << hinted.status().ToString();
  ASSERT_TRUE(hinted->has_cost_hint);
  EXPECT_DOUBLE_EQ(hinted->hint_flops, 2.5e9);
  EXPECT_DOUBLE_EQ(hinted->hint_bytes, 1e6);
  EXPECT_EQ(hinted->hint_work_items, 256u);
  EXPECT_TRUE(hinted->hint_irregular);
}

TEST(ProtocolTest, MemoryNoticeRoundTrip) {
  MemoryNoticeRequest notice;
  notice.buffer_id = 9;
  notice.reserve = true;
  notice.regions = {{0, 4096}, {8192, 1024}};
  auto decoded = MemoryNoticeRequest::Decode(notice.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->buffer_id, 9u);
  EXPECT_TRUE(decoded->reserve);
  ASSERT_EQ(decoded->regions.size(), 2u);
  EXPECT_EQ(decoded->regions[1].offset, 8192u);
  EXPECT_EQ(decoded->regions[1].size, 1024u);

  notice.reserve = false;
  notice.regions.clear();
  auto evict = MemoryNoticeRequest::Decode(notice.Encode());
  ASSERT_TRUE(evict.ok());
  EXPECT_FALSE(evict->reserve);
  EXPECT_TRUE(evict->regions.empty());

  EXPECT_FALSE(MemoryNoticeRequest::Decode({1, 2, 3}).ok());
}

TEST(ProtocolTest, HelloAndLoadCarryMemoryCapacity) {
  HelloReply hello;
  hello.node_name = "gpu0";
  hello.device_type = NodeType::kGpu;
  hello.mem_capacity_bytes = 8ull << 30;
  auto decoded = HelloReply::Decode(hello.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->mem_capacity_bytes, 8ull << 30);

  LoadReply load;
  load.bytes_resident = 12345;
  load.mem_capacity_bytes = 65536;
  auto load_decoded = LoadReply::Decode(load.Encode());
  ASSERT_TRUE(load_decoded.ok());
  EXPECT_EQ(load_decoded->bytes_resident, 12345u);
  EXPECT_EQ(load_decoded->mem_capacity_bytes, 65536u);
}

TEST(ProtocolTest, TruncatedPayloadsRejected) {
  LaunchKernelRequest req;
  req.kernel_name = "k";
  WireKernelArg arg;
  arg.kind = WireKernelArg::Kind::kBuffer;
  arg.buffer_id = 1;
  req.args = {arg};
  auto bytes = req.Encode();
  for (std::size_t cut : {std::size_t{1}, bytes.size() / 2,
                          bytes.size() - 1}) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + cut);
    EXPECT_FALSE(LaunchKernelRequest::Decode(truncated).ok())
        << "cut=" << cut;
  }
}

TEST(ProtocolTest, StatusReplyConveysErrors) {
  StatusReply reply = StatusReply::FromStatus(
      Status(ErrorCode::kInvalidMemObject, "no buffer 9"));
  auto decoded = StatusReply::Decode(reply.Encode());
  ASSERT_TRUE(decoded.ok());
  Status status = decoded->ToStatus();
  EXPECT_EQ(status.code(), ErrorCode::kInvalidMemObject);
  EXPECT_EQ(status.message(), "no buffer 9");
}

}  // namespace
}  // namespace haocl::net
