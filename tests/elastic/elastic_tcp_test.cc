// Elastic execution against real NMP daemons over TCP sockets: chunked
// dispatch, revoke/heartbeat control messages overtaking the worker queue,
// and a scripted mid-launch kill where the fault injector's hook actually
// tears the daemon down — the launch must still complete bit-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "driver/native_registry.h"
#include "elastic/fault_injector.h"
#include "host/cluster_runtime.h"
#include "net/tcp_transport.h"
#include "nmp/node_server.h"

namespace haocl::host {
namespace {

constexpr char kDoubler[] = R"(
  __kernel void doubler(__global int* data, int n) {
    int i = get_global_id(0);
    if (i < n) data[i] = data[i] * 2;
  })";

constexpr int kN = 1 << 18;  // 1 MiB of int32 — real bytes over loopback.

void RegisterNativeDoubler() {
  static bool once = [] {
    driver::NativeKernelRegistry::Instance().Register(
        "doubler", [](const std::vector<oclc::ArgBinding>& args,
                      const oclc::NDRange& range) {
          auto* data = reinterpret_cast<std::int32_t*>(args[0].data);
          const std::uint64_t limit = args[0].size / 4;
          const std::uint64_t begin = range.offset[0];
          const std::uint64_t end =
              std::min(limit, begin + range.global[0]);
          for (std::uint64_t i = begin; i < end; ++i) data[i] *= 2;
          return Status::Ok();
        });
    return true;
  }();
  (void)once;
}

// Three GPU daemons on real sockets plus a connected runtime.
struct TcpCluster {
  std::vector<std::unique_ptr<nmp::NodeServer>> servers;
  std::vector<std::unique_ptr<net::TcpListener>> listeners;
  std::unique_ptr<ClusterRuntime> runtime;

  static TcpCluster Make() {
    RegisterNativeDoubler();
    TcpCluster c;
    std::vector<net::ConnectionPtr> connections;
    for (int i = 0; i < 3; ++i) {
      auto server =
          nmp::NodeServer::Create("gpu" + std::to_string(i), NodeType::kGpu);
      EXPECT_TRUE(server.ok());
      c.servers.push_back(*std::move(server));
      c.listeners.push_back(std::make_unique<net::TcpListener>(0));
      nmp::NodeServer* raw = c.servers.back().get();
      EXPECT_TRUE(c.listeners.back()
                      ->Start([raw](net::ConnectionPtr conn) {
                        raw->Serve(std::move(conn));
                      })
                      .ok());
    }
    for (const auto& listener : c.listeners) {
      auto connection = net::TcpConnect("127.0.0.1", listener->port());
      EXPECT_TRUE(connection.ok());
      connections.push_back(*std::move(connection));
    }
    auto runtime = ClusterRuntime::Connect(std::move(connections), {});
    EXPECT_TRUE(runtime.ok()) << runtime.status().ToString();
    c.runtime = *std::move(runtime);
    EXPECT_TRUE(c.runtime->SetScheduler("hetero_split").ok());
    return c;
  }

  void Teardown() {
    runtime->Disconnect();
    for (auto& server : servers) server->Shutdown();
    for (auto& listener : listeners) listener->Stop();
  }
};

TEST(ElasticTcpTest, ChunkedLaunchOverRealSockets) {
  TcpCluster c = TcpCluster::Make();
  auto program = c.runtime->BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto buffer = c.runtime->CreateBuffer(kN * 4);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(kN);
  std::iota(values.begin(), values.end(), 1);
  ASSERT_TRUE(c.runtime->WriteBuffer(*buffer, 0, values.data(), kN * 4).ok());

  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::PartitionedBuffer(*buffer, 4),
               KernelArgValue::Scalar<std::int32_t>(kN)};
  spec.global[0] = kN;
  ClusterRuntime::ElasticOptions options;
  options.heartbeat = true;  // Heartbeats ride the real control plane too.
  options.heartbeat_interval = std::chrono::milliseconds(0);
  auto result = c.runtime->LaunchElastic(spec, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->chunks_total, 3u);
  EXPECT_TRUE(result->dead_nodes.empty());

  std::vector<std::int32_t> got(kN);
  ASSERT_TRUE(c.runtime->ReadBuffer(*buffer, 0, got.data(), kN * 4).ok());
  for (int i = 0; i < kN; ++i) ASSERT_EQ(got[i], 2 * (i + 1));
  c.Teardown();
}

TEST(ElasticTcpTest, ScriptedKillOfRealDaemonCompletesBitIdentical) {
  TcpCluster c = TcpCluster::Make();
  auto program = c.runtime->BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  auto buffer = c.runtime->CreateBuffer(kN * 4);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(kN);
  std::iota(values.begin(), values.end(), 1);
  ASSERT_TRUE(c.runtime->WriteBuffer(*buffer, 0, values.data(), kN * 4).ok());

  // When node 1 has completed 2 chunks the injector kills it — and the
  // hook REALLY kills it: the daemon shuts down, so every later RPC to it
  // (revokes, pulls, probes) fails on a dead socket, not a simulation.
  elastic::FaultInjector faults;
  faults.ScriptKill(/*node=*/1, /*after_chunks=*/2);
  faults.SetKillHook([&](std::size_t node) { c.servers[node]->Shutdown(); });

  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::PartitionedBuffer(*buffer, 4),
               KernelArgValue::Scalar<std::int32_t>(kN)};
  spec.global[0] = kN;
  ClusterRuntime::ElasticOptions options;
  options.chunk_rows = kN / 16;
  options.fault_injector = &faults;
  auto result = c.runtime->LaunchElastic(spec, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->dead_nodes.size(), 1u);
  EXPECT_EQ(result->dead_nodes[0], 1u);
  EXPECT_FALSE(c.runtime->NodeAlive(1));

  // Bit-identical to the no-failure run: every element doubled exactly
  // once, including the rows whose only fresh copy died with the daemon.
  std::vector<std::int32_t> got(kN);
  ASSERT_TRUE(c.runtime->ReadBuffer(*buffer, 0, got.data(), kN * 4).ok());
  for (int i = 0; i < kN; ++i) ASSERT_EQ(got[i], 2 * (i + 1));
  // Later work plans around the corpse.
  auto again = c.runtime->LaunchElastic(spec);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_TRUE(c.runtime->ReadBuffer(*buffer, 0, got.data(), kN * 4).ok());
  for (int i = 0; i < kN; ++i) ASSERT_EQ(got[i], 4 * (i + 1));
  c.Teardown();
}

TEST(ElasticTcpTest, RevokeAndHeartbeatOvertakeBusyWorker) {
  // Control messages are answered on the receive path, ahead of the
  // per-connection inbox: a revoke posted behind a queued launch still
  // lands before the worker gets to that launch.
  auto server = nmp::NodeServer::Create("gpu0", NodeType::kGpu);
  ASSERT_TRUE(server.ok());
  net::TcpListener listener(0);
  ASSERT_TRUE(listener
                  .Start([&](net::ConnectionPtr conn) {
                    (*server)->Serve(std::move(conn));
                  })
                  .ok());
  auto connection = net::TcpConnect("127.0.0.1", listener.port());
  ASSERT_TRUE(connection.ok());
  net::RpcClient client(*std::move(connection));

  // A heartbeat answers immediately even with nothing else going on.
  auto beat = client.Call(net::MsgType::kHeartbeat, /*session=*/7, {});
  ASSERT_TRUE(beat.ok()) << beat.status().ToString();
  ASSERT_EQ(beat->type, net::MsgType::kStatusReply);

  // Revoke chunks 3 and 4 of launch 99 for session 7, then verify via the
  // session's revoked set that the control message took effect.
  net::RevokeChunkRequest revoke;
  revoke.launch_id = 99;
  revoke.chunk_ids = {3, 4};
  auto reply = client.Call(net::MsgType::kRevokeChunk, 7, revoke.Encode());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto decoded = net::StatusReply::Decode(reply->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->status_code, 0);

  client.Close();
  (*server)->Shutdown();
  listener.Stop();
}

}  // namespace
}  // namespace haocl::host
