// StealCoordinator unit tests against a scripted mock executor: virtual-time
// dispatch, straggler stealing with revocation, transient-vs-fatal failure
// triage, mid-launch death recovery, and the all-dead terminal case.
#include "elastic/steal_coordinator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "elastic/fault_injector.h"

namespace haocl::elastic {
namespace {

sched::PlacementPlan PlanFor(
    const std::vector<std::pair<std::size_t, std::uint64_t>>& shards) {
  sched::PlacementPlan plan;
  std::uint64_t offset = 0;
  for (const auto& [node, rows] : shards) {
    plan.shards.push_back(
        {.node = node, .global_offset = offset, .global_count = rows});
    offset += rows;
  }
  return plan;
}

// Executor with per-node scripted seconds-per-row, failure scripts, and a
// full audit trail of what ran where.
class MockExecutor : public ChunkExecutor {
 public:
  struct Exec {
    std::uint64_t chunk_id;
    std::size_t node;
    std::uint64_t offset;
    std::uint64_t count;
  };

  explicit MockExecutor(std::vector<double> seconds_per_row)
      : seconds_per_row_(std::move(seconds_per_row)) {}

  Expected<ChunkOutcome> Execute(const Chunk& chunk,
                                 std::size_t node) override {
    auto transient = fail_times_.find(node);
    if (transient != fail_times_.end() && transient->second > 0) {
      --transient->second;
      return Status(fail_code_, "scripted transient failure");
    }
    if (fail_after_.count(node) != 0 && executed_on_[node] >= fail_after_[node]) {
      return Status(fail_code_, "scripted failure");
    }
    ++executed_on_[node];
    executions_.push_back({chunk.id, node, chunk.offset, chunk.count});
    ChunkOutcome outcome;
    outcome.modeled_seconds =
        static_cast<double>(chunk.count) * seconds_per_row_[node];
    outcome.bytes_shipped = chunk.count * 4;
    return outcome;
  }

  void Revoke(std::size_t node, std::uint64_t launch_id,
              const std::vector<std::uint64_t>& chunk_ids) override {
    for (std::uint64_t id : chunk_ids) revokes_[node].insert(id);
    revoke_order_.push_back(node);
    last_revoke_launch_ = launch_id;
  }

  Status Probe(std::size_t node) override {
    if (dead_to_probe_.count(node) != 0) {
      return Status(ErrorCode::kNodeLost, "probe: dead");
    }
    return Status::Ok();
  }

  double SecondsPerRow(std::size_t node) override {
    return seconds_per_row_[node];
  }
  double BacklogSeconds(std::size_t node) override {
    auto it = backlog_.find(node);
    return it == backlog_.end() ? 0.0 : it->second;
  }
  std::uint64_t ResidentRowsOn(std::size_t node, std::uint64_t offset,
                               std::uint64_t count) override {
    auto it = resident_.find(node);
    if (it == resident_.end()) return 0;
    const auto [begin, end] = it->second;
    const std::uint64_t lo = std::max(offset, begin);
    const std::uint64_t hi = std::min(offset + count, end);
    return hi > lo ? hi - lo : 0;
  }

  Expected<std::vector<ChunkLedger::RowSpan>> OnNodeDead(
      std::size_t node) override {
    dead_declared_.insert(node);
    auto it = lost_rows_.find(node);
    if (it == lost_rows_.end()) return std::vector<ChunkLedger::RowSpan>{};
    return it->second;
  }

  std::vector<double> seconds_per_row_;
  std::map<std::size_t, double> backlog_;
  // Node -> resident row window [begin, end) for locality ranking.
  std::map<std::size_t, std::pair<std::uint64_t, std::uint64_t>> resident_;
  // Node -> fail every Execute once `executed_on_` reaches this count.
  std::map<std::size_t, std::uint64_t> fail_after_;
  // Node -> fail the next N Executes, then recover (transient faults).
  std::map<std::size_t, std::uint64_t> fail_times_;
  ErrorCode fail_code_ = ErrorCode::kNodeLost;
  std::set<std::size_t> dead_to_probe_;
  std::map<std::size_t, std::vector<ChunkLedger::RowSpan>> lost_rows_;

  std::vector<Exec> executions_;
  std::map<std::size_t, std::uint64_t> executed_on_;
  std::map<std::size_t, std::set<std::uint64_t>> revokes_;
  std::vector<std::size_t> revoke_order_;  // Victims, in steal order.
  std::uint64_t last_revoke_launch_ = 0;
  std::set<std::size_t> dead_declared_;
};

TEST(StealCoordinatorTest, BalancedNodesKeepTheirOwnChunks) {
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(PlanFor({{0, 64}, {1, 64}}), 1, 16).ok());
  MockExecutor exec({0.001, 0.001});
  StealCoordinator coordinator(&ledger, &exec, {0, 1}, {});
  const CoordinatorReport report = coordinator.Run();
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.chunks_total, 8u);
  EXPECT_EQ(report.chunks_stolen, 0u);
  EXPECT_EQ(report.chunks_reexecuted, 0u);
  for (const auto& e : exec.executions_) {
    EXPECT_EQ(e.node, e.offset < 64 ? 0u : 1u);
  }
  EXPECT_TRUE(ledger.AllDone());
  // Both clocks ~0.064s; makespan is the max.
  EXPECT_NEAR(report.makespan_seconds, 0.064, 1e-9);
}

TEST(StealCoordinatorTest, FastNodeStealsStragglerTail) {
  // Node 0 is 5x slower than node 1 but the plan split 50/50 (the host's
  // static model was wrong). Node 1 must steal node 0's tail.
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(PlanFor({{0, 64}, {1, 64}}), 1, 16).ok());
  MockExecutor exec({0.005, 0.001});
  CoordinatorOptions options;
  options.launch_id = 42;
  StealCoordinator coordinator(&ledger, &exec, {0, 1}, options);
  const CoordinatorReport report = coordinator.Run();
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_GT(report.chunks_stolen, 0u);
  EXPECT_EQ(report.chunks_reexecuted, 0u);  // Stealing never re-runs work.
  // Stolen chunks were revoked on the victim, tagged with the launch id.
  EXPECT_FALSE(exec.revokes_[0].empty());
  EXPECT_EQ(exec.last_revoke_launch_, 42u);
  // Every row ran exactly once (no dropped, no duplicated work).
  std::set<std::uint64_t> rows;
  for (const auto& e : exec.executions_) {
    for (std::uint64_t r = e.offset; r < e.offset + e.count; ++r) {
      EXPECT_TRUE(rows.insert(r).second) << "row " << r << " ran twice";
    }
  }
  EXPECT_EQ(rows.size(), 128u);
  // The makespan beats the no-steal schedule (node 0 alone: 0.32s).
  EXPECT_LT(report.makespan_seconds, 0.32);
}

TEST(StealCoordinatorTest, StealingOffRunsStaticPlan) {
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(PlanFor({{0, 64}, {1, 64}}), 1, 16).ok());
  MockExecutor exec({0.005, 0.001});
  CoordinatorOptions options;
  options.stealing = false;
  StealCoordinator coordinator(&ledger, &exec, {0, 1}, options);
  const CoordinatorReport report = coordinator.Run();
  ASSERT_TRUE(report.status.ok());
  EXPECT_EQ(report.chunks_stolen, 0u);
  EXPECT_NEAR(report.makespan_seconds, 0.32, 1e-9);  // The straggler's tail.
}

TEST(StealCoordinatorTest, BacklogBiasesVictimChoice) {
  // Nodes 1 and 2 have identical pending work, but node 2 also has broker
  // backlog queued ahead — it is the slower one to finish, so the thief
  // must pick it.
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(PlanFor({{1, 32}, {2, 32}}), 1, 16).ok());
  MockExecutor exec({0.001, 0.001, 0.001});
  exec.backlog_[2] = 1.0;
  CoordinatorOptions options;
  options.max_steal_chunks = 1;
  StealCoordinator coordinator(&ledger, &exec, {0, 1, 2}, options);
  const CoordinatorReport report = coordinator.Run();
  ASSERT_TRUE(report.status.ok());
  ASSERT_GT(report.chunks_stolen, 0u);
  // The first steal hit the backlogged node.
  ASSERT_FALSE(exec.revoke_order_.empty());
  EXPECT_EQ(exec.revoke_order_.front(), 2u);
}

TEST(StealCoordinatorTest, LocalityBreaksVictimTies) {
  // Two equally-loaded victims; the thief's directory already holds node
  // 2's rows [32, 64), so node 2 is preferred within the 10% work band.
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(PlanFor({{1, 32}, {2, 32}}), 1, 16).ok());
  MockExecutor exec({0.001, 0.001, 0.001});
  exec.resident_[0] = {32, 64};
  CoordinatorOptions options;
  options.max_steal_chunks = 1;
  StealCoordinator coordinator(&ledger, &exec, {0, 1, 2}, options);
  const CoordinatorReport report = coordinator.Run();
  ASSERT_TRUE(report.status.ok());
  ASSERT_GT(report.chunks_stolen, 0u);
  // The FIRST steal (both victims equally loaded) chose the local one;
  // later steals may legitimately drain the other victim too.
  ASSERT_FALSE(exec.revoke_order_.empty());
  EXPECT_EQ(exec.revoke_order_.front(), 2u);
}

TEST(StealCoordinatorTest, TransientErrorRetriesWithoutFailOver) {
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(PlanFor({{0, 32}, {1, 32}}), 1, 16).ok());
  MockExecutor exec({0.001, 0.001});
  // Node 0's first two Executes fail with a network error, but the node
  // still answers probes: transient, chunk re-queued, node stays alive and
  // finishes its share after the retries.
  exec.fail_times_[0] = 2;
  exec.fail_code_ = ErrorCode::kNetworkError;
  StealCoordinator coordinator(&ledger, &exec, {0, 1}, {});
  const CoordinatorReport report = coordinator.Run();
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_TRUE(report.dead_nodes.empty());
  EXPECT_GT(exec.executed_on_[0], 0u);
  EXPECT_TRUE(ledger.AllDone());
}

TEST(StealCoordinatorTest, FatalErrorAbortsLaunch) {
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(PlanFor({{0, 32}}), 1, 16).ok());
  MockExecutor exec({0.001});
  exec.fail_after_[0] = 0;
  exec.fail_code_ = ErrorCode::kInvalidKernelName;  // Not a liveness error.
  StealCoordinator coordinator(&ledger, &exec, {0}, {});
  const CoordinatorReport report = coordinator.Run();
  EXPECT_EQ(report.status.code(), ErrorCode::kInvalidKernelName);
  EXPECT_TRUE(report.dead_nodes.empty());
}

TEST(StealCoordinatorTest, DeadNodeChunksRequeueOntoSurvivors) {
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(PlanFor({{0, 64}, {1, 64}}), 1, 16).ok());
  MockExecutor exec({0.001, 0.001});
  // Node 0 completes 2 chunks then every Execute fails kNodeLost, and
  // probes agree it is dead. Its outputs for rows [0,32) survived (no
  // lost_rows_ script) so only the NOT-done chunks re-run on node 1.
  exec.fail_after_[0] = 2;
  exec.dead_to_probe_.insert(0);
  StealCoordinator coordinator(&ledger, &exec, {0, 1}, {});
  const CoordinatorReport report = coordinator.Run();
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  ASSERT_EQ(report.dead_nodes.size(), 1u);
  EXPECT_EQ(report.dead_nodes[0], 0u);
  EXPECT_EQ(exec.dead_declared_.count(0), 1u);
  EXPECT_TRUE(ledger.AllDone());
  // Done rows [0,32) ran exactly once; everything else completed on node 1.
  std::map<std::uint64_t, std::uint64_t> runs;
  for (const auto& e : exec.executions_) {
    for (std::uint64_t r = e.offset; r < e.offset + e.count; ++r) ++runs[r];
  }
  for (std::uint64_t r = 0; r < 128; ++r) {
    EXPECT_EQ(runs[r], 1u) << "row " << r;
  }
}

TEST(StealCoordinatorTest, LostOutputRowsReexecute) {
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(PlanFor({{0, 64}, {1, 64}}), 1, 16).ok());
  MockExecutor exec({0.001, 0.001});
  exec.fail_after_[0] = 2;  // Dies with [0,32) done...
  exec.dead_to_probe_.insert(0);
  exec.lost_rows_[0] = {{16, 32}};  // ...but [16,32)'s output died with it.
  StealCoordinator coordinator(&ledger, &exec, {0, 1}, {});
  const CoordinatorReport report = coordinator.Run();
  ASSERT_TRUE(report.status.ok());
  EXPECT_TRUE(ledger.AllDone());
  std::map<std::uint64_t, std::uint64_t> runs;
  for (const auto& e : exec.executions_) {
    for (std::uint64_t r = e.offset; r < e.offset + e.count; ++r) ++runs[r];
  }
  for (std::uint64_t r = 0; r < 128; ++r) {
    EXPECT_EQ(runs[r], r >= 16 && r < 32 ? 2u : 1u) << "row " << r;
  }
  EXPECT_GE(report.chunks_reexecuted, 1u);
}

TEST(StealCoordinatorTest, AllNodesDeadReportsNodeLost) {
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(PlanFor({{0, 32}, {1, 32}}), 1, 16).ok());
  MockExecutor exec({0.001, 0.001});
  exec.fail_after_[0] = 0;
  exec.fail_after_[1] = 0;
  exec.dead_to_probe_ = {0, 1};
  StealCoordinator coordinator(&ledger, &exec, {0, 1}, {});
  const CoordinatorReport report = coordinator.Run();
  EXPECT_EQ(report.status.code(), ErrorCode::kNodeLost);
  EXPECT_EQ(report.dead_nodes.size(), 2u);
}

TEST(StealCoordinatorTest, NotifyNodeDeadTakesEffectBeforeDispatch) {
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(PlanFor({{0, 32}, {1, 32}}), 1, 16).ok());
  MockExecutor exec({0.001, 0.001});
  StealCoordinator coordinator(&ledger, &exec, {0, 1}, {});
  coordinator.NotifyNodeDead(0);
  const CoordinatorReport report = coordinator.Run();
  ASSERT_TRUE(report.status.ok());
  ASSERT_EQ(report.dead_nodes.size(), 1u);
  EXPECT_EQ(report.dead_nodes[0], 0u);
  // Node 0 never ran anything; node 1 ran all 64 rows.
  EXPECT_EQ(exec.executed_on_[0], 0u);
  EXPECT_TRUE(ledger.AllDone());
}

TEST(StealCoordinatorTest, RevokedExecutionRetargetsInsteadOfLooping) {
  // An Execute that returns kChunkRevoked (device-side skip) re-queues the
  // chunk; the launch still completes with every row run exactly once.
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(PlanFor({{0, 32}, {1, 32}}), 1, 16).ok());
  class RevokeOnce : public MockExecutor {
   public:
    using MockExecutor::MockExecutor;
    Expected<ChunkOutcome> Execute(const Chunk& chunk,
                                   std::size_t node) override {
      if (!tripped_ && node == 0) {
        tripped_ = true;
        return Status(ErrorCode::kChunkRevoked, "skipped");
      }
      return MockExecutor::Execute(chunk, node);
    }
    bool tripped_ = false;
  } exec({0.001, 0.001});
  StealCoordinator coordinator(&ledger, &exec, {0, 1}, {});
  const CoordinatorReport report = coordinator.Run();
  ASSERT_TRUE(report.status.ok());
  EXPECT_TRUE(report.dead_nodes.empty());
  std::set<std::uint64_t> rows;
  for (const auto& e : exec.executions_) {
    for (std::uint64_t r = e.offset; r < e.offset + e.count; ++r) {
      EXPECT_TRUE(rows.insert(r).second);
    }
  }
  EXPECT_EQ(rows.size(), 64u);
}

TEST(FaultInjectorTest, ScriptedKillTripsAfterNChunks) {
  FaultInjector faults;
  faults.ScriptKill(0, /*after_chunks=*/2);
  int hook_fired = 0;
  faults.SetKillHook([&](std::size_t node) {
    EXPECT_EQ(node, 0u);
    ++hook_fired;
  });
  EXPECT_TRUE(faults.BeforeExecute(0).ok());
  faults.AfterExecute(0);
  EXPECT_TRUE(faults.BeforeExecute(0).ok());
  faults.AfterExecute(0);  // Completion #2 trips the kill.
  EXPECT_EQ(hook_fired, 1);
  EXPECT_TRUE(faults.IsDead(0));
  const Status dead = faults.BeforeExecute(0);
  EXPECT_EQ(dead.code(), ErrorCode::kNodeLost);
  EXPECT_EQ(faults.CompletedChunks(0), 2u);
  // Other nodes are untouched.
  EXPECT_TRUE(faults.BeforeExecute(1).ok());
}

TEST(FaultInjectorTest, ScriptedDelaySlowsLaterChunks) {
  FaultInjector faults;
  faults.ScriptDelay(1, /*after_chunks=*/1, /*seconds=*/0.25);
  EXPECT_TRUE(faults.BeforeExecute(1).ok());
  EXPECT_EQ(faults.AfterExecute(1), 0.0);   // Chunk 1: no delay yet.
  EXPECT_EQ(faults.AfterExecute(1), 0.25);  // Chunk 2 onward: delayed.
  EXPECT_EQ(faults.AfterExecute(1), 0.25);
}

}  // namespace
}  // namespace haocl::elastic
