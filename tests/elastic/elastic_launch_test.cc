// Elastic launches on a full SimCluster: chunked dispatch bit-identity,
// straggler rescue by work stealing, scripted mid-launch node death with
// directory-driven recovery, heartbeat sweeps, and the stats plumbing.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "driver/native_registry.h"
#include "elastic/fault_injector.h"
#include "host/cluster_runtime.h"
#include "host/sim_cluster.h"

namespace haocl::host {
namespace {

constexpr char kDoubler[] = R"(
  __kernel void doubler(__global int* data, int n) {
    int i = get_global_id(0);
    if (i < n) data[i] = data[i] * 2;
  })";

// Large enough that a chunk's modeled memory time dwarfs the (unscaled)
// per-launch overhead — otherwise a 5x-slower straggler looks no slower
// and there is nothing for stealing to rescue.
constexpr int kN = 1 << 21;

// Native fast path for the doubler so multi-million-row launches do not
// crawl through the interpreter; the modeled time still comes from the
// node's (possibly speed-scaled) spec.
void RegisterNativeDoubler() {
  static bool once = [] {
    driver::NativeKernelRegistry::Instance().Register(
        "doubler", [](const std::vector<oclc::ArgBinding>& args,
                      const oclc::NDRange& range) {
          auto* data = reinterpret_cast<std::int32_t*>(args[0].data);
          const std::uint64_t limit = args[0].size / 4;
          const std::uint64_t begin = range.offset[0];
          const std::uint64_t end =
              std::min(limit, begin + range.global[0]);
          for (std::uint64_t i = begin; i < end; ++i) data[i] *= 2;
          return Status::Ok();
        });
    return true;
  }();
  (void)once;
}

// Builds the doubler launch over a freshly written buffer and returns
// (program, buffer). The caller owns the elastic options.
struct Fixture {
  std::unique_ptr<SimCluster> cluster;
  ProgramId program = 0;
  BufferId buffer = 0;

  static Fixture Make(std::vector<double> speed_factors = {}) {
    RegisterNativeDoubler();
    Fixture f;
    auto cluster = SimCluster::Create({.gpu_nodes = 3}, {},
                                      SimCluster::PeerTopology::kFullMesh,
                                      std::move(speed_factors));
    EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
    f.cluster = *std::move(cluster);
    // LaunchElastic seeds its ledger from the session policy's plan; the
    // default "user" policy refuses to place without an explicit device.
    EXPECT_TRUE(f.cluster->runtime().SetScheduler("hetero_split").ok());
    auto program = f.cluster->runtime().BuildProgram(kDoubler);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    f.program = *program;
    auto buffer = f.cluster->runtime().CreateBuffer(kN * 4);
    EXPECT_TRUE(buffer.ok());
    f.buffer = *buffer;
    std::vector<std::int32_t> values(kN);
    std::iota(values.begin(), values.end(), 1);
    EXPECT_TRUE(f.cluster->runtime()
                    .WriteBuffer(f.buffer, 0, values.data(), kN * 4)
                    .ok());
    return f;
  }

  ClusterRuntime::LaunchSpec Spec() const {
    ClusterRuntime::LaunchSpec spec;
    spec.program = program;
    spec.kernel_name = "doubler";
    spec.args = {KernelArgValue::PartitionedBuffer(buffer, 4),
                 KernelArgValue::Scalar<std::int32_t>(kN)};
    spec.global[0] = kN;
    return spec;
  }

  // Verifies every element equals the doubled input — what a single-node
  // run produces, bit for bit.
  void ExpectDoubled() {
    std::vector<std::int32_t> got(kN);
    ASSERT_TRUE(cluster->runtime()
                    .ReadBuffer(buffer, 0, got.data(), kN * 4)
                    .ok());
    for (int i = 0; i < kN; ++i) {
      ASSERT_EQ(got[i], 2 * (i + 1)) << "element " << i;
    }
  }
};

TEST(ElasticLaunchTest, ChunkedLaunchMatchesSingleNodeResult) {
  Fixture f = Fixture::Make();
  auto result = f.cluster->runtime().LaunchElastic(f.Spec());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 3 shards x kDefaultChunksPerShard chunks each (modulo rounding).
  EXPECT_GE(result->chunks_total, 3u);
  EXPECT_GT(result->makespan_seconds, 0.0);
  EXPECT_EQ(result->dead_nodes.size(), 0u);
  f.ExpectDoubled();
}

TEST(ElasticLaunchTest, ExplicitChunkRowsRespected) {
  Fixture f = Fixture::Make();
  ClusterRuntime::ElasticOptions options;
  options.chunk_rows = kN / 16;
  auto result = f.cluster->runtime().LaunchElastic(f.Spec(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Chunks are cut per shard, so remainders add at most one chunk each.
  EXPECT_GE(result->chunks_total, 16u);
  EXPECT_LE(result->chunks_total, 16u + 3u);
  f.ExpectDoubled();
}

TEST(ElasticLaunchTest, StealingRescuesStraggler) {
  // Node 0's real silicon is 5x slower than the host's static model
  // believes, so the plan overloads it. With stealing the fast peers take
  // its tail; the makespan must beat the no-steal run decisively.
  const std::vector<double> kStraggler = {0.2, 1.0, 1.0};
  double makespan_steal = 0.0;
  std::uint64_t stolen = 0;
  {
    Fixture f = Fixture::Make(kStraggler);
    auto result = f.cluster->runtime().LaunchElastic(f.Spec());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    makespan_steal = result->makespan_seconds;
    stolen = result->chunks_stolen;
    f.ExpectDoubled();
    // The stolen-chunk count surfaces in the runtime-wide stats.
    EXPECT_EQ(f.cluster->runtime().transfer_stats().stolen_chunks, stolen);
  }
  double makespan_static = 0.0;
  {
    Fixture f = Fixture::Make(kStraggler);
    ClusterRuntime::ElasticOptions options;
    options.stealing = false;
    auto result = f.cluster->runtime().LaunchElastic(f.Spec(), options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    makespan_static = result->makespan_seconds;
    EXPECT_EQ(result->chunks_stolen, 0u);
    f.ExpectDoubled();
  }
  EXPECT_GT(stolen, 0u);
  EXPECT_LT(makespan_steal, makespan_static * 0.75)
      << "steal=" << makespan_steal << " static=" << makespan_static;
}

TEST(ElasticLaunchTest, ScriptedKillCompletesBitIdentical) {
  Fixture f = Fixture::Make();
  elastic::FaultInjector faults;
  faults.ScriptKill(/*node=*/1, /*after_chunks=*/2);
  ClusterRuntime::ElasticOptions options;
  options.chunk_rows = kN / 16;  // ~16 chunks: the kill lands mid-launch.
  options.fault_injector = &faults;
  auto result = f.cluster->runtime().LaunchElastic(f.Spec(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->dead_nodes.size(), 1u);
  EXPECT_EQ(result->dead_nodes[0], 1u);
  EXPECT_FALSE(f.cluster->runtime().NodeAlive(1));
  // Node 1's finished chunks were in-place writes whose only fresh copy
  // died with it: they re-ran from the host shadow's pre-image. Exactly
  // once each — a double re-run would quadruple instead of double.
  EXPECT_GE(result->chunks_reexecuted, 1u);
  f.ExpectDoubled();
  // Re-executions shipped their input rows again; the stats say so.
  EXPECT_GT(f.cluster->runtime().transfer_stats().reexec_bytes, 0u);
}

TEST(ElasticLaunchTest, KillBeforeFirstChunkRecovers) {
  Fixture f = Fixture::Make();
  elastic::FaultInjector faults;
  faults.ScriptKill(/*node=*/2, /*after_chunks=*/0);
  ClusterRuntime::ElasticOptions options;
  options.fault_injector = &faults;
  auto result = f.cluster->runtime().LaunchElastic(f.Spec(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->dead_nodes.size(), 1u);
  // Nothing completed there, so nothing re-executes — its chunks simply
  // run elsewhere for the first time.
  f.ExpectDoubled();
}

TEST(ElasticLaunchTest, DeadNodeExcludedFromLaterLaunches) {
  Fixture f = Fixture::Make();
  elastic::FaultInjector faults;
  faults.ScriptKill(1, 0);
  ClusterRuntime::ElasticOptions options;
  options.fault_injector = &faults;
  ASSERT_TRUE(f.cluster->runtime().LaunchElastic(f.Spec(), options).ok());

  // A second elastic launch (no injector) plans around the dead node.
  auto again = f.cluster->runtime().LaunchElastic(f.Spec());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->dead_nodes.empty());
  // A forced launch onto the corpse is refused.
  ClusterRuntime::LaunchSpec forced = f.Spec();
  forced.force_node = 1;
  auto refused = f.cluster->runtime().LaunchKernel(forced);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), ErrorCode::kNodeLost);
  // Probing it fails; the others still answer.
  EXPECT_FALSE(f.cluster->runtime().ProbeNode(1).ok());
  EXPECT_TRUE(f.cluster->runtime().ProbeNode(0).ok());
}

TEST(ElasticLaunchTest, HeartbeatSweepRunsCleanly) {
  Fixture f = Fixture::Make();
  ClusterRuntime::ElasticOptions options;
  options.heartbeat = true;
  options.heartbeat_interval = std::chrono::milliseconds(0);  // Every loop.
  auto result = f.cluster->runtime().LaunchElastic(f.Spec(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->dead_nodes.empty());
  f.ExpectDoubled();
}

TEST(ElasticLaunchTest, NonSplittableKernelRejected) {
  Fixture f = Fixture::Make();
  ClusterRuntime::LaunchSpec spec = f.Spec();
  // Whole-buffer (replicated) written arg pins the launch to one node.
  spec.args[0] = KernelArgValue::Buffer(f.buffer);
  auto result = f.cluster->runtime().LaunchElastic(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidOperation);
}

TEST(ElasticLaunchTest, ElasticTagsOnSpecRejected) {
  Fixture f = Fixture::Make();
  ClusterRuntime::LaunchSpec spec = f.Spec();
  spec.force_node = 0;
  EXPECT_FALSE(f.cluster->runtime().LaunchElastic(spec).ok());
}

}  // namespace
}  // namespace haocl::host
