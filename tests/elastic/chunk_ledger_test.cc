// ChunkLedger unit tests: chunking, acquire order, tail stealing, revoked
// MarkDone arbitration, and failure re-queue with output-loss dedup.
#include "elastic/chunk_ledger.h"

#include <gtest/gtest.h>

namespace haocl::elastic {
namespace {

sched::PlacementPlan TwoShardPlan() {
  // Node 0: rows [0, 64); node 1: rows [64, 128).
  sched::PlacementPlan plan;
  plan.shards.push_back({.node = 0, .global_offset = 0, .global_count = 64});
  plan.shards.push_back({.node = 1, .global_offset = 64, .global_count = 64});
  return plan;
}

TEST(ChunkLedgerTest, InitCutsShardsIntoAlignedChunks) {
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(TwoShardPlan(), /*align=*/1, /*chunk_rows=*/16).ok());
  const auto chunks = ledger.Snapshot();
  ASSERT_EQ(chunks.size(), 8u);
  EXPECT_EQ(ledger.stats().total_chunks, 8u);
  std::uint64_t expect_offset = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].id, i + 1);  // Dense, 1-based, offset order.
    EXPECT_EQ(chunks[i].offset, expect_offset);
    EXPECT_EQ(chunks[i].count, 16u);
    EXPECT_EQ(chunks[i].owner, i < 4 ? 0u : 1u);
    EXPECT_EQ(chunks[i].state, ChunkState::kPending);
    expect_offset += 16;
  }
}

TEST(ChunkLedgerTest, EmptyPlanRejected) {
  ChunkLedger ledger;
  EXPECT_FALSE(ledger.Init(sched::PlacementPlan{}, 1, 16).ok());
}

TEST(ChunkLedgerTest, AcquireFrontOfOwnRange) {
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(TwoShardPlan(), 1, 16).ok());
  auto chunk = ledger.Acquire(1);
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->offset, 64u);  // Node 1's FRONT chunk, not node 0's.
  EXPECT_EQ(chunk->attempts, 1u);
  auto next = ledger.Acquire(1);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->offset, 80u);
  EXPECT_EQ(ledger.PendingRowsOf(1), 32u);
  // A node with no shard has nothing until it steals.
  EXPECT_FALSE(ledger.Acquire(7).has_value());
}

TEST(ChunkLedgerTest, StealTakesTailChunksOnly) {
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(TwoShardPlan(), 1, 16).ok());
  auto running = ledger.Acquire(0);  // [0,16) running on the victim.
  ASSERT_TRUE(running.has_value());
  const auto stolen = ledger.Steal(/*victim=*/0, /*thief=*/1, 2);
  ASSERT_EQ(stolen.size(), 2u);
  // Tail of the victim's pending range, returned in offset order.
  EXPECT_EQ(stolen[0].offset, 32u);
  EXPECT_EQ(stolen[1].offset, 48u);
  for (const Chunk& chunk : stolen) {
    EXPECT_EQ(chunk.owner, 1u);
    EXPECT_TRUE(chunk.stolen);
    EXPECT_EQ(chunk.state, ChunkState::kPending);
  }
  EXPECT_EQ(ledger.stats().stolen_chunks, 2u);
  EXPECT_EQ(ledger.PendingRowsOf(0), 16u);  // Only [16,32) left.
  // The running chunk was never touched.
  EXPECT_TRUE(ledger.MarkDone(running->id, 0).ok());
}

TEST(ChunkLedgerTest, MarkDoneAfterRetargetIsRevoked) {
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(TwoShardPlan(), 1, 16).ok());
  auto chunk = ledger.Acquire(0);
  ASSERT_TRUE(chunk.has_value());
  ASSERT_TRUE(ledger.Requeue(chunk->id).ok());          // Back to pending...
  (void)ledger.Steal(0, 1, 4);                          // ...stolen by node 1.
  // Node 0's stale completion must not win.
  const Status late = ledger.MarkDone(chunk->id, 0);
  EXPECT_EQ(late.code(), ErrorCode::kChunkRevoked);
  // The new owner completes it for real.
  auto retry = ledger.Acquire(1);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->id, chunk->id);
  EXPECT_EQ(retry->attempts, 2u);
  EXPECT_TRUE(ledger.MarkDone(retry->id, 1).ok());
}

TEST(ChunkLedgerTest, DrainsToAllDone) {
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(TwoShardPlan(), 1, 16).ok());
  for (std::size_t node = 0; node < 2; ++node) {
    while (auto chunk = ledger.Acquire(node)) {
      ASSERT_TRUE(ledger.MarkDone(chunk->id, node).ok());
    }
  }
  EXPECT_TRUE(ledger.AllDone());
  EXPECT_EQ(ledger.RemainingChunks(), 0u);
  EXPECT_EQ(ledger.stats().done_chunks, 8u);
}

TEST(ChunkLedgerTest, ReassignLostRequeuesNonDoneAndLostOutputs) {
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(TwoShardPlan(), 1, 16).ok());
  // Node 0 completes [0,16) and [16,32), is running [32,48).
  auto first = ledger.Acquire(0);
  ASSERT_TRUE(ledger.MarkDone(first->id, 0).ok());
  auto second = ledger.Acquire(0);
  ASSERT_TRUE(ledger.MarkDone(second->id, 0).ok());
  auto third = ledger.Acquire(0);
  ASSERT_TRUE(third.has_value());

  // Node 0 dies. Outputs of [16,48) died with it; [0,16) survived (say it
  // was gathered to the host before the crash).
  const auto requeued =
      ledger.ReassignLost(/*dead=*/0, /*survivors=*/{1}, {{16, 48}});
  // Re-queued: done-[16,32) (output lost), running-[32,48), pending-[48,64).
  ASSERT_EQ(requeued.size(), 3u);
  EXPECT_EQ(requeued[0].offset, 16u);
  EXPECT_EQ(requeued[1].offset, 32u);
  EXPECT_EQ(requeued[2].offset, 48u);
  for (const Chunk& chunk : requeued) {
    EXPECT_EQ(chunk.owner, 1u);
    EXPECT_EQ(chunk.state, ChunkState::kPending);
  }
  // Done chunk [0,16) whose output survived is NOT re-run (it would
  // double-apply an in-place kernel).
  const auto chunks = ledger.Snapshot();
  EXPECT_EQ(chunks[0].state, ChunkState::kDone);
  EXPECT_EQ(ledger.stats().requeued_chunks, 3u);
  EXPECT_EQ(ledger.PendingRowsOf(1), 64u + 48u);
}

TEST(ChunkLedgerTest, ReassignRotatesAcrossSurvivors) {
  sched::PlacementPlan plan;
  plan.shards.push_back({.node = 0, .global_offset = 0, .global_count = 64});
  ChunkLedger ledger;
  ASSERT_TRUE(ledger.Init(plan, 1, 16).ok());
  const auto requeued = ledger.ReassignLost(0, {1, 2}, {});
  ASSERT_EQ(requeued.size(), 4u);
  EXPECT_EQ(requeued[0].owner, 1u);
  EXPECT_EQ(requeued[1].owner, 2u);
  EXPECT_EQ(requeued[2].owner, 1u);
  EXPECT_EQ(requeued[3].owner, 2u);
}

TEST(ChunkLedgerTest, AlignmentRoundsChunkRows) {
  sched::PlacementPlan plan;
  plan.shards.push_back({.node = 0, .global_offset = 0, .global_count = 100});
  ChunkLedger ledger;
  // chunk_rows=30 with align=16 -> 32-row chunks plus the short tail.
  ASSERT_TRUE(ledger.Init(plan, /*align=*/16, /*chunk_rows=*/30).ok());
  const auto chunks = ledger.Snapshot();
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0].count, 32u);
  EXPECT_EQ(chunks[1].count, 32u);
  EXPECT_EQ(chunks[2].count, 32u);
  EXPECT_EQ(chunks[3].count, 4u);  // 100 % 32, the unaligned tail.
}

}  // namespace
}  // namespace haocl::elastic
