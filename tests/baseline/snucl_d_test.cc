// SnuCL-D comparator model: the qualitative properties Fig. 2 depends on.
#include "baseline/snucl_d.h"

#include <gtest/gtest.h>

namespace haocl::baseline {
namespace {

TEST(SnuClDTest, CfdUnsupported) {
  SnuClDModel model;
  auto result = model.Run(ProfileFor("CFD", 1.0), 4);
  EXPECT_FALSE(result.supported);
}

TEST(SnuClDTest, AllOtherAppsSupported) {
  SnuClDModel model;
  for (const char* app : {"MatrixMul", "kNN", "BFS", "SpMV"}) {
    EXPECT_TRUE(model.Run(ProfileFor(app, 1.0), 2).supported) << app;
  }
}

TEST(SnuClDTest, ZeroNodesUnsupported) {
  SnuClDModel model;
  EXPECT_FALSE(model.Run(ProfileFor("MatrixMul", 1.0), 0).supported);
}

TEST(SnuClDTest, ReplicationTransferGrowsWithNodes) {
  SnuClDModel model;
  const WorkloadProfile profile = ProfileFor("MatrixMul", 1.0);
  const auto two = model.Run(profile, 2);
  const auto eight = model.Run(profile, 8);
  // Data replication: 4x nodes => ~4x input transfer (the constant output
  // gather dilutes the ratio slightly).
  const double ratio = eight.transfer_seconds / two.transfer_seconds;
  EXPECT_GT(ratio, 3.0);
  EXPECT_LE(ratio, 4.0);
}

TEST(SnuClDTest, ComputeShrinksSublinearlyOnSkewedApps) {
  SnuClDModel model;
  // Paper-scale BFS (scale 200 ~ millions of vertices): per-launch fixed
  // overheads stop dominating and the straggler penalty becomes visible.
  const WorkloadProfile bfs = ProfileFor("BFS", 200.0);
  const auto one = model.Run(bfs, 1);
  const auto eight = model.Run(bfs, 8);
  const double speedup = one.compute_seconds / eight.compute_seconds;
  EXPECT_GT(speedup, 1.5);  // Still some scaling...
  EXPECT_LT(speedup, 7.0);  // ...but clearly sublinear (stragglers).
}

TEST(SnuClDTest, DenseAppScalesBetterThanIrregular) {
  SnuClDModel model;
  auto speedup_of = [&model](const char* app) {
    const WorkloadProfile profile = ProfileFor(app, 1.0);
    return model.Run(profile, 1).compute_seconds /
           model.Run(profile, 8).compute_seconds;
  };
  EXPECT_GT(speedup_of("MatrixMul"), speedup_of("BFS"));
}

TEST(SnuClDTest, ProfilesScaleWithFactor) {
  const WorkloadProfile small = ProfileFor("SpMV", 0.1);
  const WorkloadProfile large = ProfileFor("SpMV", 1.0);
  EXPECT_LT(small.input_bytes, large.input_bytes);
  EXPECT_LT(small.total_flops, large.total_flops);
  EXPECT_EQ(small.irregular, large.irregular);
}

}  // namespace
}  // namespace haocl::baseline
