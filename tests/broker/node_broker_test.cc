// NodeBroker unit tests: the shared memory ledger across session views,
// per-tenant quotas, launch admission control, weighted fair-share
// arbitration, the shared kernel-rate table, and shutdown semantics.
// Everything here drives the broker directly — no transport, no sessions.
#include "broker/node_broker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace haocl::broker {
namespace {

TEST(NodeBrokerTest, LedgersShareOneCapacity) {
  NodeBroker broker(/*mem_capacity_bytes=*/1000);
  runtime::MemoryLedger* a = broker.LedgerFor(1);
  runtime::MemoryLedger* b = broker.LedgerFor(2);

  ASSERT_TRUE(a->Reserve(/*buffer=*/10, 0, 700).ok());
  EXPECT_EQ(broker.resident_bytes(), 700u);
  EXPECT_EQ(a->resident_bytes(), 700u);
  EXPECT_EQ(b->resident_bytes(), 0u);

  // The second tenant sees the FIRST tenant's consumption: 400 more do
  // not fit in the 300 that remain, even though b itself holds nothing.
  Status over = b->Reserve(20, 0, 400);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.code(), ErrorCode::kMemObjectAllocationFailure);
  EXPECT_EQ(broker.resident_bytes(), 700u);  // Failed reserve charged 0.

  ASSERT_TRUE(b->Reserve(20, 0, 300).ok());
  EXPECT_EQ(broker.resident_bytes(), 1000u);
  EXPECT_EQ(broker.resident_bytes_of(2), 300u);

  // Releasing tenant a's buffer frees the node for tenant b.
  EXPECT_EQ(a->ReleaseBuffer(10), 700u);
  EXPECT_EQ(broker.resident_bytes(), 300u);
  ASSERT_TRUE(b->Reserve(21, 0, 400).ok());
  EXPECT_EQ(broker.resident_bytes(), 700u);
}

TEST(NodeBrokerTest, OverlappingRangesChargeOnce) {
  NodeBroker broker(1000);
  runtime::MemoryLedger* a = broker.LedgerFor(1);
  ASSERT_TRUE(a->Reserve(1, 0, 600).ok());
  // Re-reserving a resident range is free, so it succeeds even though a
  // fresh 600 would not fit next to the existing 600.
  ASSERT_TRUE(a->Reserve(1, 100, 500).ok());
  EXPECT_EQ(broker.resident_bytes(), 600u);
  // Extending charges only the new bytes.
  ASSERT_TRUE(a->Reserve(1, 500, 900).ok());
  EXPECT_EQ(broker.resident_bytes(), 900u);
}

TEST(NodeBrokerTest, TenantQuotaCapsBelowNodeCapacity) {
  NodeBroker broker(10000);
  TenantConfig config;
  config.name = "capped";
  config.mem_quota_bytes = 500;
  broker.RegisterTenant(7, config);
  runtime::MemoryLedger* capped = broker.LedgerFor(7);

  Status over = capped->Reserve(1, 0, 600);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.code(), ErrorCode::kMemObjectAllocationFailure);

  ASSERT_TRUE(capped->Reserve(1, 0, 400).ok());
  EXPECT_FALSE(capped->Reserve(2, 0, 200).ok());  // 400 + 200 > 500.
  ASSERT_TRUE(capped->Reserve(2, 0, 100).ok());

  // An unquota'd tenant still has the rest of the device.
  runtime::MemoryLedger* free_rider = broker.LedgerFor(8);
  ASSERT_TRUE(free_rider->Reserve(3, 0, 9000).ok());
  EXPECT_EQ(broker.resident_bytes(), 9500u);
}

TEST(NodeBrokerTest, UnregisterReturnsResidentBytesToTheNode) {
  NodeBroker broker(1000);
  ASSERT_TRUE(broker.LedgerFor(1)->Reserve(1, 0, 800).ok());
  runtime::MemoryLedger* b = broker.LedgerFor(2);
  ASSERT_FALSE(b->Reserve(2, 0, 800).ok());
  broker.UnregisterTenant(1);
  EXPECT_EQ(broker.resident_bytes(), 0u);
  ASSERT_TRUE(b->Reserve(2, 0, 800).ok());
}

TEST(NodeBrokerTest, AdmissionControlRejectsOverShareBacklog) {
  BrokerLimits limits;
  limits.max_backlog_seconds = 5.0;
  NodeBroker broker(0, limits);

  // 4s of admitted backlog fits the 5s budget.
  auto first = broker.AcquireLaunchSlot(1, 4.0);
  ASSERT_TRUE(first.ok());
  EXPECT_NEAR(broker.backlog_seconds(), 4.0, 1e-12);

  // The same tenant's next 2s would push the node to 6s > 5s, and the
  // tenant (alone, so its share is the whole budget) past its share:
  // rejected WITHOUT blocking.
  auto rejected = broker.AcquireLaunchSlot(1, 2.0);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), ErrorCode::kBackpressure);
  EXPECT_EQ(broker.StatsFor(1).launches_rejected, 1u);
  EXPECT_NEAR(broker.backlog_seconds(), 4.0, 1e-12);  // Not charged.

  // Completion refunds the backlog; the retry is admitted.
  broker.CompleteLaunch(1, *first, /*success=*/true, 4.0, "k", 0.0);
  auto retried = broker.AcquireLaunchSlot(1, 2.0);
  ASSERT_TRUE(retried.ok());
  broker.CompleteLaunch(1, *retried, true, 2.0, "k", 0.0);
  EXPECT_NEAR(broker.backlog_seconds(), 0.0, 1e-12);
  EXPECT_EQ(broker.StatsFor(1).launches_admitted, 2u);
}

TEST(NodeBrokerTest, WeightedFairQueuingServesLightBeforeHogBacklog) {
  NodeBroker broker(0);
  TenantConfig hog;
  hog.name = "hog";
  hog.weight = 1.0;
  broker.RegisterTenant(1, hog);
  TenantConfig light;
  light.name = "light";
  light.weight = 10.0;
  broker.RegisterTenant(2, light);

  // Occupy the gate so subsequent acquires queue up as waiters.
  auto gate = broker.AcquireLaunchSlot(99, 1.0);
  ASSERT_TRUE(gate.ok());

  std::mutex order_mutex;
  std::vector<int> order;
  auto serve = [&broker, &order_mutex, &order](std::uint64_t session,
                                               int tag) {
    auto grant = broker.AcquireLaunchSlot(session, 10.0);
    ASSERT_TRUE(grant.ok());
    {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(tag);
    }
    broker.CompleteLaunch(session, *grant, true, 10.0, "k", 0.0);
  };

  // Enqueue, in arrival order: hog #1, hog #2, then light. Polling the
  // backlog between spawns pins the arrival order without sleeping.
  std::thread hog1(serve, 1, 101);
  while (broker.backlog_seconds_of(1) < 10.0) std::this_thread::yield();
  std::thread hog2(serve, 1, 102);
  while (broker.backlog_seconds_of(1) < 20.0) std::this_thread::yield();
  std::thread light1(serve, 2, 201);
  while (broker.backlog_seconds_of(2) < 10.0) std::this_thread::yield();

  // Start tags: hog #1 tags at virtual time 0 and advances the hog's
  // virtual finish to 10/1; hog #2 therefore tags at 10. The light
  // tenant also tags at 0 (its finish advances only 10/10 = 1) and wins
  // the tag-0 tie on weight, so the fair order is light, hog #1, hog #2
  // — the light launch overtakes the hog's whole queued backlog.
  broker.CompleteLaunch(99, *gate, true, 1.0, "k", 0.0);
  hog1.join();
  hog2.join();
  light1.join();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 201);
  EXPECT_EQ(order[1], 101);
  EXPECT_EQ(order[2], 102);
}

TEST(NodeBrokerTest, ServedWorkTracksWeightsUnderSaturation) {
  // Throughput-level fairness: a 10:1 weight pair, both saturated with
  // FOUR concurrent submitters each (so each tenant always has waiters
  // at the gate — the regime where weighted fair queuing, not arrival
  // timing, decides every slot). Served launches must land within 2x of
  // the 10:1 weight ratio.
  NodeBroker broker(0);
  broker.RegisterTenant(1, {"hog", 1.0, 0});
  broker.RegisterTenant(2, {"light", 10.0, 0});

  constexpr int kLightTarget = 200;
  std::atomic<int> light_completed{0};
  std::atomic<int> hog_completed{0};
  std::atomic<bool> stop{false};
  auto pump = [&broker, &stop](std::uint64_t session,
                               std::atomic<int>& completed) {
    while (!stop.load()) {
      auto grant = broker.AcquireLaunchSlot(session, 1.0);
      if (!grant.ok()) return;  // Only on shutdown.
      // Occupy the slot for real: while the holder sleeps, every other
      // thread re-reaches the gate, so each completion arbitrates over a
      // FULL waiter set (with zero-length service, OS scheduling quanta
      // — not the arbiter — would decide who even shows up).
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      broker.CompleteLaunch(session, *grant, true, 1.0, "k", 0.0);
      completed.fetch_add(1);
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back(pump, 1, std::ref(hog_completed));
    threads.emplace_back(pump, 2, std::ref(light_completed));
  }
  while (light_completed.load() < kLightTarget) std::this_thread::yield();
  stop.store(true);
  for (auto& thread : threads) thread.join();

  // Expected hog share: kLightTarget / 10 = 20. Allow 2x either way,
  // plus the <= 8 in-flight completions racing the stop flag.
  const int hog = hog_completed.load();
  EXPECT_LE(hog, 2 * kLightTarget / 10 + 8)
      << "hog overtook its fair share: " << hog << " vs light "
      << light_completed.load();
  EXPECT_GE(hog, kLightTarget / 10 / 2)
      << "hog starved below its fair share: " << hog;
}

TEST(NodeBrokerTest, FifoArbitrationServesArrivalOrder) {
  BrokerLimits limits;
  limits.arbitration = BrokerLimits::Arbitration::kFifo;
  NodeBroker broker(0, limits);
  broker.RegisterTenant(1, {"hog", 1.0, 0});
  broker.RegisterTenant(2, {"light", 10.0, 0});

  auto gate = broker.AcquireLaunchSlot(99, 1.0);
  ASSERT_TRUE(gate.ok());

  std::mutex order_mutex;
  std::vector<int> order;
  auto serve = [&](std::uint64_t session, int tag) {
    auto grant = broker.AcquireLaunchSlot(session, 10.0);
    ASSERT_TRUE(grant.ok());
    {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(tag);
    }
    broker.CompleteLaunch(session, *grant, true, 10.0, "k", 0.0);
  };
  std::thread hog1(serve, 1, 101);
  while (broker.backlog_seconds_of(1) < 10.0) std::this_thread::yield();
  std::thread hog2(serve, 1, 102);
  while (broker.backlog_seconds_of(1) < 20.0) std::this_thread::yield();
  std::thread light1(serve, 2, 201);
  while (broker.backlog_seconds_of(2) < 10.0) std::this_thread::yield();

  // FIFO: weights do not matter; the light launch waits out the hog's
  // whole backlog — the starvation BENCH_tenancy quantifies.
  broker.CompleteLaunch(99, *gate, true, 1.0, "k", 0.0);
  hog1.join();
  hog2.join();
  light1.join();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 101);
  EXPECT_EQ(order[1], 102);
  EXPECT_EQ(order[2], 201);
}

TEST(NodeBrokerTest, SharedRateTableFoldsAllSessions) {
  NodeBroker broker(0);
  auto grant = broker.AcquireLaunchSlot(1, 0.5);
  ASSERT_TRUE(grant.ok());
  broker.CompleteLaunch(1, *grant, true, /*modeled_seconds=*/2.0, "matmul",
                        /*flops=*/1e9);

  // A DIFFERENT session reads the rate session 1 observed.
  auto rates = broker.KernelRates();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_EQ(rates[0].kernel, "matmul");
  EXPECT_EQ(rates[0].samples, 1u);
  EXPECT_NEAR(rates[0].seconds_per_flop, 2e-9, 1e-15);

  // Failed launches contribute nothing.
  auto failed = broker.AcquireLaunchSlot(2, 0.5);
  ASSERT_TRUE(failed.ok());
  broker.CompleteLaunch(2, *failed, /*success=*/false, 9.0, "matmul", 1e9);
  EXPECT_EQ(broker.KernelRates()[0].samples, 1u);
  EXPECT_EQ(broker.kernels_completed(), 1u);
}

TEST(NodeBrokerTest, ShutdownWakesBlockedWaiters) {
  NodeBroker broker(0);
  auto gate = broker.AcquireLaunchSlot(1, 1.0);
  ASSERT_TRUE(gate.ok());

  std::atomic<bool> woke{false};
  Status waiter_status = Status::Ok();
  std::thread waiter([&] {
    auto blocked = broker.AcquireLaunchSlot(2, 1.0);
    waiter_status = blocked.ok() ? Status::Ok() : blocked.status();
    woke = true;
  });
  while (broker.backlog_seconds_of(2) < 1.0) std::this_thread::yield();
  EXPECT_FALSE(woke.load());

  broker.Shutdown();
  waiter.join();
  EXPECT_EQ(waiter_status.code(), ErrorCode::kDeviceNotAvailable);
  // The aborted waiter's backlog charge was refunded.
  EXPECT_NEAR(broker.backlog_seconds_of(2), 0.0, 1e-12);
  // Post-shutdown acquires fail immediately.
  EXPECT_FALSE(broker.AcquireLaunchSlot(3, 1.0).ok());
}

}  // namespace
}  // namespace haocl::broker
