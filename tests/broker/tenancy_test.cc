// Multi-tenant serving behaviour through FULL sessions (host runtime ->
// wire -> node server -> broker): admission control surfacing as
// kBackpressure on the host, weighted fair-share arbitration protecting
// a light tenant from a fleet of hogs, and cross-session kernel-rate
// seeding (a new session plans from the rates its neighbours already
// observed, converging in one launch).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "broker/node_broker.h"
#include "host/cluster_runtime.h"
#include "host/sim_cluster.h"

namespace haocl::host {
namespace {

constexpr char kDoubler[] = R"(
  __kernel void doubler(__global int* data, int n) {
    int i = get_global_id(0);
    if (i < n) data[i] = data[i] * 2;
  })";

// One tenant's working set: remote-built program, an n-int buffer
// resident on node 0 (via one warm launch), and the launch spec the
// contended phases below re-submit. The warm launch means the contended
// traffic is pure kernel launches — no program builds or data shipping.
struct TenantWork {
  ProgramId program = 0;
  BufferId buffer = 0;
  ClusterRuntime::LaunchSpec spec;
};

TenantWork PrepareTenant(ClusterRuntime& rt, int n) {
  TenantWork work;
  auto program = rt.BuildProgram(kDoubler);
  EXPECT_TRUE(program.ok());
  work.program = *program;
  auto buffer = rt.CreateBuffer(static_cast<std::uint64_t>(n) * 4);
  EXPECT_TRUE(buffer.ok());
  work.buffer = *buffer;
  std::vector<std::int32_t> values(n, 1);
  EXPECT_TRUE(rt.WriteBuffer(work.buffer, 0, values.data(), n * 4).ok());

  work.spec.program = work.program;
  work.spec.kernel_name = "doubler";
  work.spec.args = {KernelArgValue::Buffer(work.buffer),
                    KernelArgValue::Scalar<std::int32_t>(n)};
  work.spec.global[0] = n;
  work.spec.preferred_node = 0;
  sim::KernelCost hint;
  hint.flops = 1e9;
  hint.bytes = static_cast<double>(n) * 4;
  hint.work_items = n;
  work.spec.cost_hint = hint;

  auto warm = rt.LaunchKernel(work.spec);
  EXPECT_TRUE(warm.ok()) << warm.status().ToString();
  return work;
}

TEST(TenancyTest, SaturatedNodeBackpressuresSubmit) {
  auto cluster = SimCluster::Create({.gpu_nodes = 1});
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ClusterRuntime& rt = (*cluster)->runtime();
  TenantWork work = PrepareTenant(rt, 64);

  // Headroom: another launch is admitted.
  ASSERT_TRUE(rt.LaunchKernel(work.spec).ok());

  // Saturate: with an (absurdly) tiny backlog budget, the cost hint's
  // predicted seconds are over the tenant's share — the node rejects the
  // submit and the rejection travels back over the wire as
  // kBackpressure, not as a hang or a generic failure.
  broker::BrokerLimits limits;
  limits.max_backlog_seconds = 1e-12;
  (*cluster)->server(0).broker().SetLimits(limits);
  auto rejected = rt.LaunchKernel(work.spec);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), ErrorCode::kBackpressure)
      << rejected.status().ToString();
  EXPECT_GE((*cluster)->server(0).broker().StatsFor(1).launches_rejected, 1u);

  // Lifting the limit un-wedges the tenant: nothing leaked or jammed.
  limits.max_backlog_seconds = 0.0;
  (*cluster)->server(0).broker().SetLimits(limits);
  auto retried = rt.LaunchKernel(work.spec);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  ASSERT_TRUE(rt.Finish().ok());
  EXPECT_NEAR((*cluster)->server(0).broker().backlog_seconds(), 0.0, 1e-9);
}

TEST(TenancyTest, FairShareProtectsLightTenantFromHogFleet) {
  // Four hog sessions (weight 1 each) flood the node with chained
  // launches while one light tenant (weight 10) drains a modest batch.
  // Each session pipelines through one connection worker, so it has at
  // most ONE launch waiting at the broker gate at a time — a session can
  // never take two consecutive slots while someone else waits. The
  // arbitration question is who gets the slot when the gate frees, and
  // weighted fair queuing must pick the light tenant every time it
  // waits: the hog fleet collectively gets about one slot per light slot
  // (alternation), where FIFO round-robin would give it four. We assert
  // the fleet stays within 2x of alternation.
  RuntimeOptions hog_options;
  hog_options.session_id = 1;
  hog_options.tenant_name = "hog";
  hog_options.tenant_weight = 1.0;
  auto cluster = SimCluster::Create({.gpu_nodes = 1}, hog_options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  std::vector<ClusterRuntime*> hogs;
  std::vector<std::unique_ptr<ClusterRuntime>> owned;
  hogs.push_back(&(*cluster)->runtime());
  for (std::uint64_t session = 2; session <= 4; ++session) {
    RuntimeOptions options;
    options.session_id = session;
    options.tenant_name = "hog";
    options.tenant_weight = 1.0;
    auto runtime = (*cluster)->ConnectSecondSession(options);
    ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
    hogs.push_back(runtime->get());
    owned.push_back(*std::move(runtime));
  }
  RuntimeOptions light_options;
  light_options.session_id = 5;
  light_options.tenant_name = "light";
  light_options.tenant_weight = 10.0;
  auto light = (*cluster)->ConnectSecondSession(light_options);
  ASSERT_TRUE(light.ok()) << light.status().ToString();

  // Kernels large enough that execution dominates the host turnaround
  // (several thread hops per completed launch, each with scheduling
  // latency on a loaded machine), so every saturated session is back
  // waiting at the gate before the current launch finishes. Sized for
  // the lane-batch VM engine, which retires simple kernels like this
  // more than an order of magnitude faster than the old interpreter.
  const int n = 1 << 19;
  std::vector<TenantWork> hog_work;
  hog_work.reserve(hogs.size());
  for (ClusterRuntime* hog : hogs) hog_work.push_back(PrepareTenant(*hog, n));
  TenantWork light_work = PrepareTenant(**light, n);

  constexpr int kHogSubmits = 30;
  constexpr int kLightSubmits = 40;
  for (std::size_t i = 0; i < hogs.size(); ++i) {
    for (int j = 0; j < kHogSubmits; ++j) {
      ASSERT_TRUE(hogs[i]->SubmitLaunch(hog_work[i].spec).ok());
    }
  }
  for (int j = 0; j < kLightSubmits; ++j) {
    ASSERT_TRUE((*light)->SubmitLaunch(light_work.spec).ok());
  }

  const broker::NodeBroker& broker = (*cluster)->server(0).broker();
  auto fleet_completed = [&broker] {
    std::uint64_t total = 0;
    for (std::uint64_t session = 1; session <= 4; ++session) {
      total += broker.StatsFor(session).kernels_completed;
    }
    return total;
  };
  const std::uint64_t fleet_before = fleet_completed();
  ASSERT_TRUE((*light)->Finish().ok());
  const std::uint64_t fleet_during = fleet_completed() - fleet_before;

  EXPECT_EQ(broker.StatsFor(5).kernels_completed,
            static_cast<std::uint64_t>(kLightSubmits) + 1);  // + warm.
  // Alternation bound: ~1 hog slot per light slot; 2x margin absorbs
  // snapshot skew and warm-up races. FIFO would sit near 4x.
  EXPECT_LE(fleet_during, static_cast<std::uint64_t>(2 * kLightSubmits))
      << "hog fleet was served " << fleet_during
      << " launches while the light tenant drained " << kLightSubmits;
  // Work-conserving: the fleet is throttled, not starved.
  EXPECT_GE(fleet_during, static_cast<std::uint64_t>(kLightSubmits / 4));

  // The wire-level stats snapshot agrees with the in-process broker.
  auto stats = (*light)->QueryBrokerStats(0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->tenants.size(), 5u);
  double light_weight = 0.0;
  for (const auto& tenant : stats->tenants) {
    if (tenant.session == 5) light_weight = tenant.weight;
  }
  EXPECT_EQ(light_weight, 10.0);

  // Drain the flood: nothing deadlocked, every admitted launch ran.
  for (ClusterRuntime* hog : hogs) ASSERT_TRUE(hog->Finish().ok());
  EXPECT_EQ(fleet_completed(),
            hogs.size() * (static_cast<std::uint64_t>(kHogSubmits) + 1));
  EXPECT_NEAR(broker.backlog_seconds(), 0.0, 1e-9);
  (*light)->Disconnect();
  for (auto& runtime : owned) runtime->Disconnect();
}

TEST(TenancyTest, SecondSessionSeedsRatesFromBroker) {
  // Node 1's real silicon runs at 1/4 of its spec sheet. Session A's
  // adaptive_split launches converge onto the observed rates, which fold
  // into the node broker's SHARED rate table. A second session
  // connecting afterwards is seeded from that table at connect — so its
  // very FIRST partitioned launch plans the converged split instead of
  // re-living A's 50/50 straggler phase.
  auto cluster = SimCluster::Create({.gpu_nodes = 2}, {},
                                    SimCluster::PeerTopology::kFullMesh,
                                    {1.0, 0.25});
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ClusterRuntime& a = (*cluster)->runtime();
  ASSERT_TRUE(a.SetScheduler("adaptive_split").ok());

  auto program = a.BuildProgram(kDoubler);
  ASSERT_TRUE(program.ok());
  const int n = 4096;
  auto buffer = a.CreateBuffer(static_cast<std::uint64_t>(n) * 4);
  ASSERT_TRUE(buffer.ok());
  std::vector<std::int32_t> values(n, 1);
  ASSERT_TRUE(a.WriteBuffer(*buffer, 0, values.data(), n * 4).ok());

  sim::KernelCost hint;
  hint.flops = 2e9;
  hint.bytes = 1e6;
  hint.work_items = n;
  ClusterRuntime::LaunchSpec spec;
  spec.program = *program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::PartitionedBuffer(*buffer, 4),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.cost_hint = hint;

  double a_first = 0.0;
  double a_converged = 0.0;
  for (int iteration = 0; iteration < 5; ++iteration) {
    auto result = a.LaunchKernel(spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->shard_count, 2u);
    if (iteration == 0) a_first = result->modeled_seconds;
    a_converged = result->modeled_seconds;
  }
  const auto a_rate0 = a.ObservedKernelRate(0, "doubler");
  const auto a_rate1 = a.ObservedKernelRate(1, "doubler");
  ASSERT_GT(a_rate0.samples, 0u);
  ASSERT_GT(a_rate1.samples, 0u);
  // A's static 50/50 first launch straggled on the slow node.
  ASSERT_GT(a_first, 1.4 * a_converged);

  // Session B: its rate table is seeded during Connect, BEFORE it has
  // launched anything.
  RuntimeOptions options_b;
  options_b.session_id = 2;
  options_b.tenant_name = "beta";
  auto b = (*cluster)->ConnectSecondSession(options_b);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_TRUE((*b)->SetScheduler("adaptive_split").ok());
  const auto b_rate0 = (*b)->ObservedKernelRate(0, "doubler");
  const auto b_rate1 = (*b)->ObservedKernelRate(1, "doubler");
  ASSERT_GT(b_rate0.samples, 0u);
  ASSERT_GT(b_rate1.samples, 0u);
  // The seeded rates carry A's observation: node 1 is ~4x slower.
  EXPECT_NEAR(b_rate1.seconds_per_flop / b_rate0.seconds_per_flop, 4.0, 1.2);

  // B's FIRST launch already splits from the shared rates: makespan near
  // A's converged plan, nowhere near A's straggler first launch.
  auto b_program = (*b)->BuildProgram(kDoubler);
  ASSERT_TRUE(b_program.ok());
  auto b_buffer = (*b)->CreateBuffer(static_cast<std::uint64_t>(n) * 4);
  ASSERT_TRUE(b_buffer.ok());
  ASSERT_TRUE((*b)->WriteBuffer(*b_buffer, 0, values.data(), n * 4).ok());
  ClusterRuntime::LaunchSpec b_spec = spec;
  b_spec.program = *b_program;
  b_spec.args = {KernelArgValue::PartitionedBuffer(*b_buffer, 4),
                 KernelArgValue::Scalar<std::int32_t>(n)};
  auto first = (*b)->LaunchKernel(b_spec);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->shard_count, 2u);
  EXPECT_LE(first->modeled_seconds, 1.25 * a_converged)
      << "seeded session did not plan from the shared rates";
  EXPECT_LE(first->modeled_seconds, 0.75 * a_first);
  ASSERT_TRUE((*b)->Finish().ok());
  (*b)->Disconnect();
}

}  // namespace
}  // namespace haocl::host
