// Shared-ledger regression: two sessions against ONE capacity-starved
// node must budget the node's device memory JOINTLY. Before the broker,
// each session owned a private full-capacity pool, so a second tenant
// could materialize past what the device really holds; now the second
// allocation past capacity fails cleanly with
// kMemObjectAllocationFailure, and releasing the first tenant's buffer
// frees the node for the second. Verified over both the in-process
// transport (SimCluster) and real TCP, since the TCP node servers run
// the same broker.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/sync.h"
#include "driver/device_driver.h"
#include "host/cluster_runtime.h"
#include "host/sim_cluster.h"
#include "net/tcp_transport.h"
#include "nmp/node_server.h"

namespace haocl::host {
namespace {

constexpr char kDoubler[] = R"(
  __kernel void doubler(__global int* data, int n) {
    int i = get_global_id(0);
    if (i < n) data[i] = data[i] * 2;
  })";

// 4 KiB device: tenant A fills 3 KiB, so B's 2 KiB cannot materialize
// until A releases — but B's 512 bytes still can.
constexpr std::uint64_t kCapacity = 4096;
constexpr int kBigInts = 768;    // 3072 bytes.
constexpr int kSecondInts = 512; // 2048 bytes.
constexpr int kSmallInts = 128;  // 512 bytes.

// Builds the doubler, writes `n` ints, launches over them (which
// materializes the buffer on node 0), and returns the launch status.
Expected<BufferId> RunDoubler(ClusterRuntime& rt, ProgramId program, int n,
                              Status* launch_status) {
  auto buffer = rt.CreateBuffer(static_cast<std::uint64_t>(n) * 4);
  if (!buffer.ok()) return buffer.status();
  std::vector<std::int32_t> values(n, 1);
  Status wrote = rt.WriteBuffer(*buffer, 0, values.data(), values.size() * 4);
  if (!wrote.ok()) return wrote;
  ClusterRuntime::LaunchSpec spec;
  spec.program = program;
  spec.kernel_name = "doubler";
  spec.args = {KernelArgValue::Buffer(*buffer),
               KernelArgValue::Scalar<std::int32_t>(n)};
  spec.global[0] = n;
  spec.preferred_node = 0;
  auto result = rt.LaunchKernel(spec);
  *launch_status = result.ok() ? Status::Ok() : result.status();
  return buffer;
}

void RunSharedLedgerScenario(ClusterRuntime& a, ClusterRuntime& b,
                             const std::function<std::uint64_t()>&
                                 node_resident) {
  auto program_a = a.BuildProgram(kDoubler);
  auto program_b = b.BuildProgram(kDoubler);
  ASSERT_TRUE(program_a.ok() && program_b.ok());

  // Tenant A materializes 3 KiB of the 4 KiB device.
  Status launch_a = Status::Ok();
  auto buffer_a = RunDoubler(a, *program_a, kBigInts, &launch_a);
  ASSERT_TRUE(buffer_a.ok()) << buffer_a.status().ToString();
  ASSERT_TRUE(launch_a.ok()) << launch_a.ToString();
  EXPECT_EQ(node_resident(), static_cast<std::uint64_t>(kBigInts) * 4);

  // Tenant B's 2 KiB does not fit next to A's 3 KiB — even though B's
  // OWN view of the node is empty. The failure is clean: the launch
  // reports the allocation failure and B's session stays usable.
  Status launch_b = Status::Ok();
  auto big_b = RunDoubler(b, *program_b, kSecondInts, &launch_b);
  ASSERT_TRUE(big_b.ok());
  ASSERT_FALSE(launch_b.ok());
  EXPECT_EQ(launch_b.code(), ErrorCode::kMemObjectAllocationFailure)
      << launch_b.ToString();

  // B's 512 bytes still fit in the remaining 1 KiB.
  Status launch_small = Status::Ok();
  auto small_b = RunDoubler(b, *program_b, kSmallInts, &launch_small);
  ASSERT_TRUE(small_b.ok());
  ASSERT_TRUE(launch_small.ok()) << launch_small.ToString();

  // A releases its buffer: the shared ledger frees 3 KiB and B's big
  // launch (same buffer, retried) now materializes.
  ASSERT_TRUE(a.ReleaseBuffer(*buffer_a).ok());
  ASSERT_TRUE(a.Finish().ok());
  EXPECT_LE(node_resident(),
            static_cast<std::uint64_t>(kSmallInts + kSecondInts) * 4);

  ClusterRuntime::LaunchSpec retry;
  retry.program = *program_b;
  retry.kernel_name = "doubler";
  retry.args = {KernelArgValue::Buffer(*big_b),
                KernelArgValue::Scalar<std::int32_t>(kSecondInts)};
  retry.global[0] = kSecondInts;
  retry.preferred_node = 0;
  auto retried = b.LaunchKernel(retry);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();

  // Contents survived the contention dance: the retried launch was B's
  // first successful doubling of that buffer.
  std::vector<std::int32_t> got(kSecondInts);
  ASSERT_TRUE(b.ReadBuffer(*big_b, 0, got.data(), got.size() * 4).ok());
  for (int i = 0; i < kSecondInts; ++i) ASSERT_EQ(got[i], 2) << i;
  ASSERT_TRUE(b.Finish().ok());
}

TEST(SharedLedgerTest, TwoSessionsShareOneNodeLedgerSim) {
  RuntimeOptions options_a;
  options_a.session_id = 1;
  options_a.tenant_name = "alpha";
  auto cluster = SimCluster::Create({.gpu_nodes = 1}, options_a,
                                    SimCluster::PeerTopology::kFullMesh, {},
                                    {kCapacity});
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  RuntimeOptions options_b;
  options_b.session_id = 2;
  options_b.tenant_name = "beta";
  auto second = (*cluster)->ConnectSecondSession(options_b);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  RunSharedLedgerScenario(
      (*cluster)->runtime(), **second,
      [&] { return (*cluster)->server(0).broker().resident_bytes(); });

  // Broker bookkeeping kept the per-tenant attribution.
  const auto tenants = (*cluster)->server(0).broker().AllTenants();
  ASSERT_EQ(tenants.size(), 2u);
  for (const auto& tenant : tenants) {
    EXPECT_TRUE(tenant.name == "alpha" || tenant.name == "beta")
        << tenant.name;
  }
  (*second)->Disconnect();
}

TEST(SharedLedgerTest, TwoSessionsShareOneNodeLedgerTcp) {
  // One real NMP behind a TCP listener, capacity-starved; two hosts dial
  // in as separate sessions.
  sim::DeviceSpec spec = sim::SpecForType(NodeType::kGpu);
  spec.mem_capacity_bytes = kCapacity;
  auto server = std::make_unique<nmp::NodeServer>(
      "gpu0", NodeType::kGpu, driver::MakeSimulatedDriver(spec));
  net::TcpListener listener(0);
  ASSERT_TRUE(
      listener.Start([&](net::ConnectionPtr c) { server->Serve(std::move(c)); })
          .ok());

  auto connect_session = [&](std::uint64_t session_id, const char* tenant)
      -> Expected<std::unique_ptr<ClusterRuntime>> {
    auto connection = net::TcpConnect("127.0.0.1", listener.port());
    if (!connection.ok()) return connection.status();
    std::vector<net::ConnectionPtr> connections;
    connections.push_back(*std::move(connection));
    RuntimeOptions options;
    options.session_id = session_id;
    options.tenant_name = tenant;
    return ClusterRuntime::Connect(std::move(connections), options);
  };
  auto a = connect_session(1, "alpha");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = connect_session(2, "beta");
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  RunSharedLedgerScenario(**a, **b,
                          [&] { return server->broker().resident_bytes(); });

  (*a)->Disconnect();
  (*b)->Disconnect();
  server->Shutdown();
  listener.Stop();
}

}  // namespace
}  // namespace haocl::host
