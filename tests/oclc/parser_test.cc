#include "oclc/parser.h"

#include <gtest/gtest.h>

namespace haocl::oclc {
namespace {

TEST(ParserTest, KernelSignature) {
  auto unit = Parse(R"(
    __kernel void k(__global float* a, __local int* scratch, uint n) {}
  )");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  ASSERT_EQ((*unit)->functions.size(), 1u);
  const FunctionDecl& fn = *(*unit)->functions[0];
  EXPECT_TRUE(fn.is_kernel);
  EXPECT_EQ(fn.name, "k");
  ASSERT_EQ(fn.params.size(), 3u);
  EXPECT_TRUE(fn.params[0].type.is_pointer);
  EXPECT_EQ(fn.params[0].type.space, AddressSpace::kGlobal);
  EXPECT_EQ(fn.params[0].type.scalar, ScalarType::kF32);
  EXPECT_EQ(fn.params[1].type.space, AddressSpace::kLocal);
  EXPECT_FALSE(fn.params[2].type.is_pointer);
  EXPECT_EQ(fn.params[2].type.scalar, ScalarType::kU32);
}

TEST(ParserTest, NonKernelHelperFunction) {
  auto unit = Parse("float sq(float x) { return x * x; }");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  EXPECT_FALSE((*unit)->functions[0]->is_kernel);
  EXPECT_EQ((*unit)->functions[0]->return_type.scalar, ScalarType::kF32);
}

TEST(ParserTest, QualifierOrderFlexible) {
  auto unit = Parse(R"(
    __kernel void k(const __global float* a, __global const float* b) {}
  )");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  const FunctionDecl& fn = *(*unit)->functions[0];
  EXPECT_EQ(fn.params[0].type.space, AddressSpace::kGlobal);
  EXPECT_EQ(fn.params[1].type.space, AddressSpace::kGlobal);
}

TEST(ParserTest, OperatorPrecedence) {
  auto unit = Parse(R"(
    __kernel void k(__global int* o) {
      o[0] = 1 + 2 * 3;       // 7, not 9
      o[1] = (1 + 2) * 3;     // 9
      o[2] = 1 << 2 + 1;      // shift binds looser than +
      o[3] = 5 & 3 | 4;
    })");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  // Structure check: first statement's RHS is Add(1, Mul(2, 3)).
  const Stmt& block = *(*unit)->functions[0]->body;
  const Stmt& s0 = *block.body[0];
  ASSERT_EQ(s0.kind, StmtKind::kExpr);
  const Expr& assign = *s0.expr;
  ASSERT_EQ(assign.kind, ExprKind::kAssign);
  const Expr& rhs = *assign.children[1];
  ASSERT_EQ(rhs.kind, ExprKind::kBinary);
  EXPECT_EQ(rhs.binary_op, BinaryOp::kAdd);
  EXPECT_EQ(rhs.children[1]->binary_op, BinaryOp::kMul);
}

TEST(ParserTest, ControlFlowForms) {
  auto unit = Parse(R"(
    __kernel void k(__global int* o) {
      for (int i = 0; i < 4; i++) o[i] = i;
      for (;;) break;
      int j = 0;
      while (j < 10) j++;
      do { j--; } while (j > 0);
      if (j == 0) o[0] = 1; else o[0] = 2;
    })");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
}

TEST(ParserTest, LocalArrayDeclaration) {
  auto unit = Parse(R"(
    __kernel void k() {
      __local float tile[16 * 16];
      float priv[8];
    })");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  const Stmt& block = *(*unit)->functions[0]->body;
  EXPECT_EQ(block.body[0]->decl_space, AddressSpace::kLocal);
  EXPECT_NE(block.body[0]->declarators[0].array_size, nullptr);
  EXPECT_EQ(block.body[1]->decl_space, AddressSpace::kPrivate);
}

TEST(ParserTest, CastVersusParen) {
  auto unit = Parse(R"(
    __kernel void k(__global float* o, __global int* i) {
      o[0] = (float)i[0];
      o[1] = (o[0] + 1.0f);
    })");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  const Stmt& block = *(*unit)->functions[0]->body;
  const Expr& cast_rhs = *block.body[0]->expr->children[1];
  EXPECT_EQ(cast_rhs.kind, ExprKind::kCast);
  const Expr& paren_rhs = *block.body[1]->expr->children[1];
  EXPECT_EQ(paren_rhs.kind, ExprKind::kBinary);
}

TEST(ParserTest, TernaryNested) {
  auto unit = Parse(R"(
    __kernel void k(__global int* o, int a) {
      o[0] = a > 0 ? 1 : a < 0 ? -1 : 0;
    })");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
}

TEST(ParserTest, MissingSemicolonFails) {
  auto unit = Parse("__kernel void k() { int x = 1 }");
  ASSERT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("expected"), std::string::npos);
}

TEST(ParserTest, UnbalancedBraceFails) {
  EXPECT_FALSE(Parse("__kernel void k() { if (1) {").ok());
}

TEST(ParserTest, MissingParamNameFails) {
  EXPECT_FALSE(Parse("__kernel void k(int) {}").ok());
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto unit = Parse("__kernel void k() {\n  int x = ;\n}");
  ASSERT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("line 2"), std::string::npos)
      << unit.status().ToString();
}

TEST(ParserTest, EmptyParameterListWithVoid) {
  auto unit = Parse("__kernel void k(void) {}");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  EXPECT_TRUE((*unit)->functions[0]->params.empty());
}

TEST(ParserTest, MultipleDeclaratorsPerStatement) {
  auto unit = Parse("__kernel void k() { int a = 1, b, c = 3; }");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  const Stmt& decl = *(*unit)->functions[0]->body->body[0];
  ASSERT_EQ(decl.declarators.size(), 3u);
  EXPECT_NE(decl.declarators[0].init, nullptr);
  EXPECT_EQ(decl.declarators[1].init, nullptr);
}

}  // namespace
}  // namespace haocl::oclc
