// Barrier semantics and __local memory: the parts of the execution model
// the FPGA/GPU simulation depends on for tiled kernels.
#include <gtest/gtest.h>

#include <vector>

#include "oclc/program.h"
#include "oclc/vm.h"

namespace haocl::oclc {
namespace {

std::shared_ptr<const Module> MustCompile(const std::string& source) {
  auto module = Compile(source);
  EXPECT_TRUE(module.ok()) << module.status().ToString();
  return module.ok() ? *module : nullptr;
}

TEST(VmBarrierTest, LocalMemoryReverseWithinGroup) {
  // Classic barrier test: stage into local memory, barrier, read back
  // reversed. Wrong barrier handling produces garbage.
  auto module = MustCompile(R"(
    #define CLK_LOCAL_MEM_FENCE 1
    __kernel void reverse_group(__global const int* in, __global int* out) {
      __local int tile[64];
      int lid = get_local_id(0);
      int gid = get_global_id(0);
      int size = get_local_size(0);
      tile[lid] = in[gid];
      barrier(CLK_LOCAL_MEM_FENCE);
      out[gid] = tile[size - 1 - lid];
    })");
  ASSERT_NE(module, nullptr);
  const int n = 256;
  std::vector<int> in(n), out(n, -1);
  for (int i = 0; i < n; ++i) in[i] = i;
  const CompiledFunction* fn = module->FindKernel("reverse_group");
  ASSERT_NE(fn, nullptr);
  NDRange range;
  range.global[0] = n;
  range.local[0] = 64;
  range.local_specified = true;
  Status s = LaunchKernel(*module, *fn,
                          {ArgBinding::Buffer(in.data(), n * 4),
                           ArgBinding::Buffer(out.data(), n * 4)},
                          range);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (int g = 0; g < n / 64; ++g) {
    for (int l = 0; l < 64; ++l) {
      EXPECT_EQ(out[g * 64 + l], in[g * 64 + (63 - l)]);
    }
  }
}

TEST(VmBarrierTest, TreeReductionWithLocalPointerArg) {
  // __local scratch passed from the host via clSetKernelArg(size, NULL):
  // the local-pointer-argument flavour of local memory.
  auto module = MustCompile(R"(
    __kernel void reduce_sum(__global const float* in, __global float* out,
                             __local float* scratch, int n) {
      int lid = get_local_id(0);
      int gid = get_global_id(0);
      scratch[lid] = gid < n ? in[gid] : 0.0f;
      barrier(1);
      for (int offset = (int)get_local_size(0) / 2; offset > 0;
           offset = offset / 2) {
        if (lid < offset) {
          scratch[lid] += scratch[lid + offset];
        }
        barrier(1);
      }
      if (lid == 0) out[get_group_id(0)] = scratch[0];
    })");
  ASSERT_NE(module, nullptr);
  const int n = 1024;
  const int local = 128;
  std::vector<float> in(n);
  double want_total = 0.0;
  for (int i = 0; i < n; ++i) {
    in[i] = static_cast<float>((i % 17) - 4);
    want_total += in[i];
  }
  std::vector<float> out(n / local, 0.0f);
  const CompiledFunction* fn = module->FindKernel("reduce_sum");
  ASSERT_NE(fn, nullptr);
  NDRange range;
  range.global[0] = n;
  range.local[0] = local;
  range.local_specified = true;
  Status s = LaunchKernel(*module, *fn,
                          {ArgBinding::Buffer(in.data(), n * 4),
                           ArgBinding::Buffer(out.data(), out.size() * 4),
                           ArgBinding::LocalMem(local * 4),
                           ArgBinding::Int(n)},
                          range);
  ASSERT_TRUE(s.ok()) << s.ToString();
  double total = 0.0;
  for (float v : out) total += v;
  EXPECT_NEAR(total, want_total, 1e-3);
}

TEST(VmBarrierTest, TiledMatrixMultiplyMatchesNaive) {
  // The exact kernel shape the MatrixMul benchmark ships: 16x16 tiles
  // staged through __local arrays with two barriers per tile.
  auto module = MustCompile(R"(
    #define TILE 8
    __kernel void matmul_tiled(__global const float* a,
                               __global const float* b,
                               __global float* c, int n) {
      __local float ta[TILE * TILE];
      __local float tb[TILE * TILE];
      int row = get_global_id(1);
      int col = get_global_id(0);
      int lrow = get_local_id(1);
      int lcol = get_local_id(0);
      float acc = 0.0f;
      for (int t = 0; t < n / TILE; t++) {
        ta[lrow * TILE + lcol] = a[row * n + t * TILE + lcol];
        tb[lrow * TILE + lcol] = b[(t * TILE + lrow) * n + col];
        barrier(1);
        for (int k = 0; k < TILE; k++) {
          acc += ta[lrow * TILE + k] * tb[k * TILE + lcol];
        }
        barrier(1);
      }
      c[row * n + col] = acc;
    })");
  ASSERT_NE(module, nullptr);
  const int n = 32;
  std::vector<float> a(n * n), b(n * n), c(n * n, 0.0f), want(n * n, 0.0f);
  for (int i = 0; i < n * n; ++i) {
    a[i] = static_cast<float>((i * 7) % 13) * 0.25f;
    b[i] = static_cast<float>((i * 5) % 11) * 0.5f;
  }
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        want[i * n + j] += a[i * n + k] * b[k * n + j];
      }
    }
  }
  const CompiledFunction* fn = module->FindKernel("matmul_tiled");
  ASSERT_NE(fn, nullptr);
  NDRange range;
  range.work_dim = 2;
  range.global[0] = n;
  range.global[1] = n;
  range.local[0] = 8;
  range.local[1] = 8;
  range.local_specified = true;
  LaunchOptions options;
  options.num_threads = 4;
  Status s = LaunchKernel(*module, *fn,
                          {ArgBinding::Buffer(a.data(), a.size() * 4),
                           ArgBinding::Buffer(b.data(), b.size() * 4),
                           ArgBinding::Buffer(c.data(), c.size() * 4),
                           ArgBinding::Int(n)},
                          range, options);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (int i = 0; i < n * n; ++i) {
    ASSERT_NEAR(c[i], want[i], 1e-2f) << "at " << i;
  }
}

TEST(VmBarrierTest, BarrierDivergenceIsAnError) {
  auto module = MustCompile(R"(
    __kernel void diverge(__global int* out) {
      int lid = get_local_id(0);
      if (lid < 2) {
        barrier(1);
      }
      out[get_global_id(0)] = lid;
    })");
  ASSERT_NE(module, nullptr);
  std::vector<int> out(4, 0);
  const CompiledFunction* fn = module->FindKernel("diverge");
  ASSERT_NE(fn, nullptr);
  NDRange range;
  range.global[0] = 4;
  range.local[0] = 4;
  range.local_specified = true;
  Status s = LaunchKernel(*module, *fn,
                          {ArgBinding::Buffer(out.data(), 16)}, range);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("divergence"), std::string::npos)
      << s.ToString();
}

TEST(VmBarrierTest, LocalMemoryIsZeroInitializedPerGroup) {
  // Each group accumulates into local memory; stale values from a previous
  // group would double-count.
  auto module = MustCompile(R"(
    __kernel void accumulate(__global int* out) {
      __local int acc[1];
      int lid = get_local_id(0);
      if (lid == 0) acc[0] = 0;
      barrier(1);
      atomic_add(acc, 1);
      barrier(1);
      if (lid == 0) out[get_group_id(0)] = acc[0];
    })");
  ASSERT_NE(module, nullptr);
  std::vector<int> out(8, -1);
  const CompiledFunction* fn = module->FindKernel("accumulate");
  ASSERT_NE(fn, nullptr);
  NDRange range;
  range.global[0] = 64;
  range.local[0] = 8;
  range.local_specified = true;
  Status s = LaunchKernel(*module, *fn,
                          {ArgBinding::Buffer(out.data(), 32)}, range);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (int g = 0; g < 8; ++g) EXPECT_EQ(out[g], 8) << "group " << g;
}

}  // namespace
}  // namespace haocl::oclc
