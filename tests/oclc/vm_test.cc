// Functional tests of the compile -> launch path: scalar kernels, control
// flow, type conversions, pointer arithmetic, builtins, atomics, private
// arrays, helper-function calls, and launch validation errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "oclc/program.h"
#include "oclc/vm.h"

namespace haocl::oclc {
namespace {

std::shared_ptr<const Module> MustCompile(const std::string& source) {
  auto module = Compile(source);
  EXPECT_TRUE(module.ok()) << module.status().ToString();
  return module.ok() ? *module : nullptr;
}

Status RunK(const Module& module, const std::string& kernel,
           const std::vector<ArgBinding>& args, std::uint64_t global,
           std::uint64_t local = 0) {
  const CompiledFunction* fn = module.FindKernel(kernel);
  if (fn == nullptr) {
    return Status(ErrorCode::kInvalidKernelName, "no kernel " + kernel);
  }
  NDRange range;
  range.work_dim = 1;
  range.global[0] = global;
  if (local != 0) {
    range.local[0] = local;
    range.local_specified = true;
  }
  return LaunchKernel(module, *fn, args, range);
}

TEST(VmTest, VectorAdd) {
  auto module = MustCompile(R"(
    __kernel void vadd(__global const float* a, __global const float* b,
                       __global float* c, int n) {
      int i = get_global_id(0);
      if (i < n) c[i] = a[i] + b[i];
    })");
  ASSERT_NE(module, nullptr);

  const int n = 1000;
  std::vector<float> a(n), b(n), c(n, 0.0f);
  for (int i = 0; i < n; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = static_cast<float>(2 * i);
  }
  Status s = RunK(*module, "vadd",
                 {ArgBinding::Buffer(a.data(), a.size() * 4),
                  ArgBinding::Buffer(b.data(), b.size() * 4),
                  ArgBinding::Buffer(c.data(), c.size() * 4),
                  ArgBinding::Int(n)},
                 1024);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (int i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(c[i], static_cast<float>(3 * i)) << "at " << i;
  }
}

TEST(VmTest, ControlFlowLoopsAndBranches) {
  auto module = MustCompile(R"(
    __kernel void collatz_steps(__global const int* in, __global int* out,
                                int n) {
      int i = get_global_id(0);
      if (i >= n) return;
      int x = in[i];
      int steps = 0;
      while (x != 1 && steps < 10000) {
        if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
        steps++;
      }
      out[i] = steps;
    })");
  ASSERT_NE(module, nullptr);

  std::vector<int> in = {1, 2, 3, 6, 7, 27};
  std::vector<int> out(in.size(), -1);
  Status s = RunK(*module, "collatz_steps",
                 {ArgBinding::Buffer(in.data(), in.size() * 4),
                  ArgBinding::Buffer(out.data(), out.size() * 4),
                  ArgBinding::Int(static_cast<int>(in.size()))},
                 8);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(out[2], 7);
  EXPECT_EQ(out[3], 8);
  EXPECT_EQ(out[4], 16);
  EXPECT_EQ(out[5], 111);
}

TEST(VmTest, ForLoopBreakContinue) {
  auto module = MustCompile(R"(
    __kernel void sum_odd_until(__global int* out, int limit, int stop) {
      int total = 0;
      for (int i = 0; i < limit; i++) {
        if (i % 2 == 0) continue;
        if (i >= stop) break;
        total += i;
      }
      out[get_global_id(0)] = total;
    })");
  ASSERT_NE(module, nullptr);
  std::vector<int> out(1, 0);
  Status s = RunK(*module, "sum_odd_until",
                 {ArgBinding::Buffer(out.data(), 4), ArgBinding::Int(100),
                  ArgBinding::Int(10)},
                 1);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(out[0], 1 + 3 + 5 + 7 + 9);
}

TEST(VmTest, TypeConversionsRoundTrip) {
  auto module = MustCompile(R"(
    __kernel void convert(__global float* f, __global int* i,
                          __global ulong* u) {
      int g = get_global_id(0);
      f[g] = (float)(i[g]) * 0.5f;
      u[g] = (ulong)(i[g] + 1000000);
      i[g] = (int)(f[g] - 0.5f);
    })");
  ASSERT_NE(module, nullptr);
  std::vector<float> f(4, 0.0f);
  std::vector<int> i = {10, 21, -8, 7};
  std::vector<std::uint64_t> u(4, 0);
  Status s = RunK(*module, "convert",
                 {ArgBinding::Buffer(f.data(), 16),
                  ArgBinding::Buffer(i.data(), 16),
                  ArgBinding::Buffer(u.data(), 32)},
                 4);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FLOAT_EQ(f[0], 5.0f);
  EXPECT_FLOAT_EQ(f[1], 10.5f);
  EXPECT_FLOAT_EQ(f[2], -4.0f);
  EXPECT_EQ(u[2], 1000000 - 8);
  EXPECT_EQ(i[1], 10);   // (int)(10.5 - 0.5) = 10
  EXPECT_EQ(i[2], -4);   // (int)(-4.0 - 0.5) = (int)-4.5 = -4
}

TEST(VmTest, MathBuiltins) {
  auto module = MustCompile(R"(
    __kernel void mathy(__global float* out, __global const float* in) {
      int i = get_global_id(0);
      float x = in[i];
      out[i] = sqrt(x) + fabs(-x) + fmax(x, 2.0f) + fmin(x, 2.0f) +
               pow(x, 2.0f) + floor(x) + ceil(x);
    })");
  ASSERT_NE(module, nullptr);
  std::vector<float> in = {1.5f, 4.0f};
  std::vector<float> out(2, 0.0f);
  Status s = RunK(*module, "mathy",
                 {ArgBinding::Buffer(out.data(), 8),
                  ArgBinding::Buffer(in.data(), 8)},
                 2);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (int i = 0; i < 2; ++i) {
    const float x = in[i];
    const float want = std::sqrt(x) + std::fabs(-x) + std::fmax(x, 2.0f) +
                       std::fmin(x, 2.0f) + std::pow(x, 2.0f) +
                       std::floor(x) + std::ceil(x);
    EXPECT_NEAR(out[i], want, 1e-5f) << "at " << i;
  }
}

TEST(VmTest, IntegerBuiltinsMinMaxClampAbs) {
  auto module = MustCompile(R"(
    __kernel void intops(__global int* out) {
      out[0] = min(3, 7);
      out[1] = max(3, 7);
      out[2] = clamp(10, 0, 5);
      out[3] = clamp(-3, 0, 5);
      out[4] = abs(-42);
    })");
  ASSERT_NE(module, nullptr);
  std::vector<int> out(5, 0);
  Status s = RunK(*module, "intops", {ArgBinding::Buffer(out.data(), 20)}, 1);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(out[0], 3);
  EXPECT_EQ(out[1], 7);
  EXPECT_EQ(out[2], 5);
  EXPECT_EQ(out[3], 0);
  EXPECT_EQ(out[4], 42);
}

TEST(VmTest, AtomicsAcrossWorkGroups) {
  auto module = MustCompile(R"(
    __kernel void count(__global int* counter, __global int* hist,
                        __global const int* data, int n) {
      int i = get_global_id(0);
      if (i >= n) return;
      atomic_add(counter, 1);
      atomic_add(hist + (data[i] % 8), 1);
      atomic_max(counter + 1, data[i]);
      atomic_min(counter + 2, data[i]);
    })");
  ASSERT_NE(module, nullptr);
  const int n = 4096;
  std::vector<int> counter = {0, -2147483647 - 1, 2147483647};
  std::vector<int> hist(8, 0);
  std::vector<int> data(n);
  for (int i = 0; i < n; ++i) data[i] = (i * 37) % 1000;

  LaunchOptions options;
  options.num_threads = 4;  // Force real cross-thread atomics.
  NDRange range;
  range.global[0] = n;
  range.local[0] = 64;
  range.local_specified = true;
  const CompiledFunction* fn = module->FindKernel("count");
  ASSERT_NE(fn, nullptr);
  Status s = LaunchKernel(*module, *fn,
                          {ArgBinding::Buffer(counter.data(), 12),
                           ArgBinding::Buffer(hist.data(), 32),
                           ArgBinding::Buffer(data.data(), n * 4),
                           ArgBinding::Int(n)},
                          range, options);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(counter[0], n);
  EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), 0), n);
  EXPECT_EQ(counter[1], *std::max_element(data.begin(), data.end()));
  EXPECT_EQ(counter[2], *std::min_element(data.begin(), data.end()));
}

TEST(VmTest, PrivateArrayTopK) {
  auto module = MustCompile(R"(
    __kernel void top4(__global const float* in, __global float* out, int n) {
      float best[4];
      for (int k = 0; k < 4; k++) best[k] = -1.0e30f;
      for (int i = 0; i < n; i++) {
        float v = in[i];
        for (int k = 0; k < 4; k++) {
          if (v > best[k]) {
            float tmp = best[k];
            best[k] = v;
            v = tmp;
          }
        }
      }
      for (int k = 0; k < 4; k++) out[k] = best[k];
    })");
  ASSERT_NE(module, nullptr);
  std::vector<float> in = {5, 1, 9, 3, 7, 2, 8, 6};
  std::vector<float> out(4, 0);
  Status s = RunK(*module, "top4",
                 {ArgBinding::Buffer(in.data(), in.size() * 4),
                  ArgBinding::Buffer(out.data(), 16),
                  ArgBinding::Int(static_cast<int>(in.size()))},
                 1);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FLOAT_EQ(out[0], 9);
  EXPECT_FLOAT_EQ(out[1], 8);
  EXPECT_FLOAT_EQ(out[2], 7);
  EXPECT_FLOAT_EQ(out[3], 6);
}

TEST(VmTest, HelperFunctionCalls) {
  auto module = MustCompile(R"(
    float square(float x) { return x * x; }
    float hypot2(float a, float b) { return square(a) + square(b); }
    int fib(int n) {
      if (n < 2) return n;
      return fib(n - 1) + fib(n - 2);
    }
    __kernel void use_helpers(__global float* f, __global int* i) {
      int g = get_global_id(0);
      f[g] = hypot2(3.0f, 4.0f);
      i[g] = fib(10);
    })");
  ASSERT_NE(module, nullptr);
  std::vector<float> f(2, 0);
  std::vector<int> i(2, 0);
  Status s = RunK(*module, "use_helpers",
                 {ArgBinding::Buffer(f.data(), 8),
                  ArgBinding::Buffer(i.data(), 8)},
                 2);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FLOAT_EQ(f[0], 25.0f);
  EXPECT_EQ(i[1], 55);
}

TEST(VmTest, TernaryAndLogicalShortCircuit) {
  auto module = MustCompile(R"(
    __kernel void pick(__global int* out, __global const int* in, int n) {
      int i = get_global_id(0);
      // Short-circuit: the right operand would fault if evaluated at i==0.
      int guard = (i > 0 && in[i - 1] > 0) ? 1 : 0;
      out[i] = (in[i] > 5 || guard) ? in[i] : -in[i];
    })");
  ASSERT_NE(module, nullptr);
  std::vector<int> in = {3, 9, 2, 7};
  std::vector<int> out(4, 0);
  Status s = RunK(*module, "pick",
                 {ArgBinding::Buffer(out.data(), 16),
                  ArgBinding::Buffer(in.data(), 16), ArgBinding::Int(4)},
                 4);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(out[0], -3);  // 3 <= 5, guard 0 at i==0.
  EXPECT_EQ(out[1], 9);
  EXPECT_EQ(out[2], 2);   // guard: in[1]=9>0 -> keep positive.
  EXPECT_EQ(out[3], 7);
}

TEST(VmTest, IncrementDecrementOperators) {
  auto module = MustCompile(R"(
    __kernel void incdec(__global int* out) {
      int a = 5;
      out[0] = a++;
      out[1] = a;
      out[2] = ++a;
      out[3] = a--;
      out[4] = --a;
      int idx = 5;
      out[idx++] = 100;   // out[5]
      out[idx] = 200;     // out[6]
      out[7] = 0;
      out[7]++;
      ++out[7];
    })");
  ASSERT_NE(module, nullptr);
  std::vector<int> out(8, -1);
  Status s = RunK(*module, "incdec", {ArgBinding::Buffer(out.data(), 32)}, 1);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[1], 6);
  EXPECT_EQ(out[2], 7);
  EXPECT_EQ(out[3], 7);
  EXPECT_EQ(out[4], 5);
  EXPECT_EQ(out[5], 100);
  EXPECT_EQ(out[6], 200);
  EXPECT_EQ(out[7], 2);
}

TEST(VmTest, PointerArithmetic) {
  auto module = MustCompile(R"(
    __kernel void strided(__global float* data, int stride, int n) {
      __global float* p = data + get_global_id(0) * stride;
      for (int i = 0; i < n; i++) {
        p[i] = p[i] * 2.0f;
      }
    })");
  ASSERT_NE(module, nullptr);
  std::vector<float> data = {1, 2, 3, 4, 5, 6};
  Status s = RunK(*module, "strided",
                 {ArgBinding::Buffer(data.data(), 24), ArgBinding::Int(3),
                  ArgBinding::Int(3)},
                 2);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(data[i], 2.0f * (i + 1));
}

TEST(VmTest, OutOfBoundsAccessTraps) {
  auto module = MustCompile(R"(
    __kernel void oob(__global int* out, int n) {
      out[n] = 1;  // One past the end.
    })");
  ASSERT_NE(module, nullptr);
  std::vector<int> out(4, 0);
  Status s = RunK(*module, "oob",
                 {ArgBinding::Buffer(out.data(), 16), ArgBinding::Int(4)}, 1);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("out-of-bounds"), std::string::npos)
      << s.ToString();
}

TEST(VmTest, DivisionByZeroTraps) {
  auto module = MustCompile(R"(
    __kernel void divz(__global int* out, int d) { out[0] = 10 / d; })");
  ASSERT_NE(module, nullptr);
  std::vector<int> out(1, 0);
  Status s = RunK(*module, "divz",
                 {ArgBinding::Buffer(out.data(), 4), ArgBinding::Int(0)}, 1);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("division by zero"), std::string::npos);
}

TEST(VmTest, InfiniteLoopHitsBudget) {
  auto module = MustCompile(R"(
    __kernel void spin(__global int* out) {
      while (true) { out[0] = out[0]; }
    })");
  ASSERT_NE(module, nullptr);
  std::vector<int> out(1, 0);
  const CompiledFunction* fn = module->FindKernel("spin");
  ASSERT_NE(fn, nullptr);
  NDRange range;
  range.global[0] = 1;
  LaunchOptions options;
  options.max_instructions_per_item = 10000;
  Status s = LaunchKernel(*module, *fn, {ArgBinding::Buffer(out.data(), 4)},
                          range, options);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("budget"), std::string::npos);
}

TEST(VmTest, LaunchValidationErrors) {
  auto module = MustCompile(R"(
    __kernel void k(__global int* buf, int n) { buf[0] = n; })");
  ASSERT_NE(module, nullptr);
  const CompiledFunction* fn = module->FindKernel("k");
  ASSERT_NE(fn, nullptr);
  std::vector<int> buf(1);
  NDRange range;
  range.global[0] = 4;

  // Wrong arg count.
  EXPECT_EQ(LaunchKernel(*module, *fn, {ArgBinding::Int(1)}, range).code(),
            ErrorCode::kInvalidKernelArgs);
  // Scalar where buffer expected.
  EXPECT_EQ(LaunchKernel(*module, *fn,
                         {ArgBinding::Int(1), ArgBinding::Int(1)}, range)
                .code(),
            ErrorCode::kInvalidArgValue);
  // Global not divisible by local.
  NDRange bad = range;
  bad.local[0] = 3;
  bad.local_specified = true;
  EXPECT_EQ(LaunchKernel(*module, *fn,
                         {ArgBinding::Buffer(buf.data(), 4),
                          ArgBinding::Int(1)},
                         bad)
                .code(),
            ErrorCode::kInvalidWorkGroupSize);
  // Oversized work-group.
  NDRange big;
  big.global[0] = 2048;
  big.local[0] = 2048;
  big.local_specified = true;
  EXPECT_EQ(LaunchKernel(*module, *fn,
                         {ArgBinding::Buffer(buf.data(), 4),
                          ArgBinding::Int(1)},
                         big)
                .code(),
            ErrorCode::kInvalidWorkGroupSize);
}

TEST(VmTest, TwoDimensionalRange) {
  auto module = MustCompile(R"(
    __kernel void fill2d(__global int* out, int width) {
      int x = get_global_id(0);
      int y = get_global_id(1);
      out[y * width + x] = x * 100 + y;
    })");
  ASSERT_NE(module, nullptr);
  const int w = 8;
  const int h = 4;
  std::vector<int> out(w * h, -1);
  const CompiledFunction* fn = module->FindKernel("fill2d");
  ASSERT_NE(fn, nullptr);
  NDRange range;
  range.work_dim = 2;
  range.global[0] = w;
  range.global[1] = h;
  range.local[0] = 4;
  range.local[1] = 2;
  range.local_specified = true;
  Status s = LaunchKernel(*module, *fn,
                          {ArgBinding::Buffer(out.data(), out.size() * 4),
                           ArgBinding::Int(w)},
                          range);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      EXPECT_EQ(out[y * w + x], x * 100 + y) << x << "," << y;
    }
  }
}

TEST(VmTest, UnsignedWrapAndShift) {
  auto module = MustCompile(R"(
    __kernel void bits(__global uint* out) {
      uint x = 0xFFFFFFFFu;
      out[0] = x + 1u;          // wraps to 0
      out[1] = x >> 4;          // logical shift
      out[2] = (1u << 31);
      int y = -16;
      out[3] = (uint)(y >> 2);  // arithmetic shift of signed
    })");
  ASSERT_NE(module, nullptr);
  std::vector<std::uint32_t> out(4, 7);
  Status s = RunK(*module, "bits", {ArgBinding::Buffer(out.data(), 16)}, 1);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 0x0FFFFFFFu);
  EXPECT_EQ(out[2], 0x80000000u);
  EXPECT_EQ(out[3], static_cast<std::uint32_t>(-4));
}

}  // namespace
}  // namespace haocl::oclc
