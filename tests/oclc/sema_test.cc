// Semantic-analysis rejection tests: every diagnostic the compiler can
// produce should fire on a minimal program (these surface as
// CL_BUILD_PROGRAM_FAILURE build logs through the public API).
#include "oclc/sema.h"

#include <gtest/gtest.h>

#include "oclc/parser.h"

namespace haocl::oclc {
namespace {

Status AnalyzeSource(const std::string& source) {
  auto unit = Parse(source);
  if (!unit.ok()) return unit.status();
  return Analyze(**unit);
}

void ExpectRejected(const std::string& source, const std::string& needle) {
  Status s = AnalyzeSource(source);
  ASSERT_FALSE(s.ok()) << "expected rejection of: " << source;
  EXPECT_NE(s.message().find(needle), std::string::npos)
      << "wanted '" << needle << "' in: " << s.ToString();
}

TEST(SemaTest, AcceptsWellTypedKernel) {
  Status s = AnalyzeSource(R"(
    float helper(float a, int b) { return a * (float)b; }
    __kernel void k(__global float* out, __global const float* in, int n) {
      int i = (int)get_global_id(0);
      if (i < n) out[i] = helper(in[i], i);
    })");
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(SemaTest, UndeclaredVariable) {
  ExpectRejected("__kernel void k(__global int* o) { o[0] = missing; }",
                 "undeclared");
}

TEST(SemaTest, Redefinition) {
  ExpectRejected("__kernel void k() { int a; float a; }", "redefinition");
}

TEST(SemaTest, RedefinitionOfFunction) {
  ExpectRejected("void f() {} void f() {} __kernel void k() {}",
                 "redefinition of function");
}

TEST(SemaTest, ShadowingInInnerScopeAllowed) {
  Status s = AnalyzeSource(R"(
    __kernel void k(__global int* o) {
      int a = 1;
      { int a = 2; o[0] = a; }
      o[1] = a;
    })");
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(SemaTest, SubscriptOnScalar) {
  ExpectRejected("__kernel void k() { int a; a[0] = 1; }", "not a pointer");
}

TEST(SemaTest, FloatArrayIndex) {
  ExpectRejected("__kernel void k(__global int* o) { o[1.5f] = 1; }",
                 "index must be an integer");
}

TEST(SemaTest, PointerScalarComparison) {
  ExpectRejected("__kernel void k(__global int* o) { if (o == 1) o[0] = 0; }",
                 "compare pointer with scalar");
}

TEST(SemaTest, ModOnFloats) {
  ExpectRejected("__kernel void k(__global float* o) { o[0] = 1.0f % 2.0f; }",
                 "integer operation");
}

TEST(SemaTest, AssignPointerToScalar) {
  ExpectRejected("__kernel void k(__global int* o) { int x; x = o; }",
                 "cannot assign pointer");
}

TEST(SemaTest, PointerAddressSpaceMismatch) {
  ExpectRejected(R"(
    __kernel void k(__global float* g) {
      __local float l[4];
      g = l;
    })",
                 "incompatible pointer");
}

TEST(SemaTest, BreakOutsideLoop) {
  ExpectRejected("__kernel void k() { break; }", "outside of a loop");
}

TEST(SemaTest, ReturnValueFromVoid) {
  ExpectRejected("__kernel void k() { return 1; }", "void function");
}

TEST(SemaTest, MissingReturnValue) {
  ExpectRejected("int f() { return; } __kernel void k() {}",
                 "must return a value");
}

TEST(SemaTest, CallUnknownFunction) {
  ExpectRejected("__kernel void k() { nosuch(1); }", "unknown function");
}

TEST(SemaTest, CallKernelFromDevice) {
  ExpectRejected(R"(
    __kernel void a() {}
    __kernel void k() { a(); }
  )",
                 "kernels cannot be called");
}

TEST(SemaTest, WrongArgumentCount) {
  ExpectRejected(R"(
    int f(int a, int b) { return a + b; }
    __kernel void k(__global int* o) { o[0] = f(1); }
  )",
                 "wrong number of arguments");
}

TEST(SemaTest, BuiltinBadOverload) {
  ExpectRejected("__kernel void k(__global float* o) { o[0] = sqrt(o); }",
                 "no matching overload");
}

TEST(SemaTest, BarrierOutsideKernel) {
  ExpectRejected(R"(
    void helper() { barrier(1); }
    __kernel void k() { helper(); }
  )",
                 "barrier() may only be called from a kernel");
}

TEST(SemaTest, ArrayInHelperFunction) {
  ExpectRejected("void f() { float a[4]; } __kernel void k() {}",
                 "may only be declared in kernels");
}

TEST(SemaTest, NonConstantArraySize) {
  ExpectRejected("__kernel void k(int n) { float a[n]; }",
                 "constant");
}

TEST(SemaTest, ConstantFoldedArraySizeAccepted) {
  Status s = AnalyzeSource(R"(
    #define TILE 8
    __kernel void k() { __local float t[TILE * TILE + 2]; }
  )");
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(SemaTest, ShadowingBuiltinName) {
  ExpectRejected("float sqrt(float x) { return x; } __kernel void k() {}",
                 "shadows a builtin");
}

TEST(SemaTest, AtomicsRequireIntPointer) {
  ExpectRejected(
      "__kernel void k(__global float* f) { atomic_add(f, 1.0f); }",
      "no matching overload");
}

TEST(SemaTest, VoidVariableRejected) {
  ExpectRejected("__kernel void k() { void v; }", "void");
}

TEST(SemaTest, TernaryBranchTypeMismatch) {
  ExpectRejected(R"(
    __kernel void k(__global int* a, __global float* b, int c) {
      __global int* p = c ? a : b;
    })",
                 "different types");
}

// Type-inference spot checks across the numeric lattice.
struct PromotionCase {
  const char* expr;
  const char* comment;
};

class SemaPromotionTest : public ::testing::TestWithParam<PromotionCase> {};

TEST_P(SemaPromotionTest, WellTypedArithmeticAccepted) {
  const std::string source = std::string(R"(
    __kernel void k(__global double* o, int i, uint u, long l, ulong ul,
                    float f, double d, char c, uchar uc, short s) {
      o[0] = )") + GetParam().expr + "; }";
  Status status = AnalyzeSource(source);
  EXPECT_TRUE(status.ok())
      << GetParam().comment << ": " << status.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Promotions, SemaPromotionTest,
    ::testing::Values(
        PromotionCase{"i + u", "int + uint -> uint"},
        PromotionCase{"i + l", "int + long -> long"},
        PromotionCase{"u + ul", "uint + ulong -> ulong"},
        PromotionCase{"i + f", "int + float -> float"},
        PromotionCase{"f + d", "float + double -> double"},
        PromotionCase{"c + s", "char + short -> int"},
        PromotionCase{"uc + c", "uchar + char -> int"},
        PromotionCase{"l + f", "long + float -> float"},
        PromotionCase{"(i << 2) + (u >> 1)", "shift keeps promoted lhs"},
        PromotionCase{"i % 3 + u % 2u", "mod on integers"}));

}  // namespace
}  // namespace haocl::oclc
