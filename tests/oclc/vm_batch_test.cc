// Lane-batch engine specifics: dispatch amortization visible in VmStats,
// trace fusion firing on MAC loops, divergence bail-out to the
// interpreter, budget-trap parity between the engines, the kernel-aware
// ChooseLocalSize widening, and the compute-unit -> pool-width mapping.
// Bit-identity of results is covered exhaustively by vm_differential_test.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/simd.h"
#include "oclc/program.h"
#include "oclc/vm.h"
#include "sim/device_model.h"

namespace haocl::oclc {
namespace {

std::shared_ptr<const Module> MustCompile(const std::string& source) {
  auto module = Compile(source);
  EXPECT_TRUE(module.ok()) << module.status().ToString();
  return module.ok() ? *module : nullptr;
}

Status RunWithStats(const Module& module, const std::string& kernel,
                    const std::vector<ArgBinding>& args, std::uint64_t global,
                    const LaunchOptions& options, VmStats* stats) {
  const CompiledFunction* fn = module.FindKernel(kernel);
  if (fn == nullptr) {
    return Status(ErrorCode::kInvalidKernelName, "no kernel " + kernel);
  }
  NDRange range;
  range.work_dim = 1;
  range.global[0] = global;
  return LaunchKernel(module, *fn, args, range, options, stats);
}

constexpr char kMacLoop[] = R"(
  __kernel void mac(__global const float* a, __global const float* b,
                    __global float* c, int n) {
    int i = get_global_id(0);
    float acc = 0.0f;
    for (int k = 0; k < n; k++) {
      acc += a[i * n + k] * b[k];
    }
    c[i] = acc;
  })";

TEST(VmBatchTest, BatchStepsAmortizeDispatchAcrossLanes) {
  auto module = MustCompile(kMacLoop);
  ASSERT_NE(module, nullptr);
  const int n = 64;
  std::vector<float> a(64 * n, 1.5f), b(n, 2.0f), c(64, 0.0f);
  std::vector<ArgBinding> args = {
      ArgBinding::Buffer(a.data(), a.size() * 4),
      ArgBinding::Buffer(b.data(), b.size() * 4),
      ArgBinding::Buffer(c.data(), c.size() * 4), ArgBinding::Int(n)};

  LaunchOptions options;
  options.num_threads = 1;
  VmStats stats;
  ASSERT_TRUE(RunWithStats(*module, "mac", args, 64, options, &stats).ok());
  EXPECT_GT(stats.instructions, 0u);
  EXPECT_GT(stats.batch_steps, 0u);
  EXPECT_EQ(stats.bailouts, 0u);  // Uniform trip count: no divergence.
  EXPECT_EQ(stats.groups, 1u);    // 64 items fit one wide group.
  // The whole point: far fewer dispatches than retired instructions.
  EXPECT_LT(stats.batch_steps * 8, stats.instructions);
}

TEST(VmBatchTest, TraceFusionFiresOnMacLoopAndPreservesBits) {
  auto module = MustCompile(kMacLoop);
  ASSERT_NE(module, nullptr);
  const int n = 32;
  std::vector<float> a(128 * n), b(n), c_fused(128, -1.0f),
      c_plain(128, -1.0f);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = 0.001f * static_cast<float>(i % 97) - 0.3f;
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = 0.05f * static_cast<float>(i) - 0.7f;
  }

  LaunchOptions fused;
  fused.num_threads = 1;
  VmStats fused_stats;
  ASSERT_TRUE(RunWithStats(*module, "mac",
                           {ArgBinding::Buffer(a.data(), a.size() * 4),
                            ArgBinding::Buffer(b.data(), b.size() * 4),
                            ArgBinding::Buffer(c_fused.data(), 128 * 4),
                            ArgBinding::Int(n)},
                           128, fused, &fused_stats)
                  .ok());
  EXPECT_GT(fused_stats.fused_steps, 0u);

  LaunchOptions plain;
  plain.num_threads = 1;
  plain.enable_trace_fusion = false;
  VmStats plain_stats;
  ASSERT_TRUE(RunWithStats(*module, "mac",
                           {ArgBinding::Buffer(a.data(), a.size() * 4),
                            ArgBinding::Buffer(b.data(), b.size() * 4),
                            ArgBinding::Buffer(c_plain.data(), 128 * 4),
                            ArgBinding::Int(n)},
                           128, plain, &plain_stats)
                  .ok());
  EXPECT_EQ(plain_stats.fused_steps, 0u);
  // Same retired work either way, and bit-identical floats.
  EXPECT_EQ(fused_stats.instructions, plain_stats.instructions);
  EXPECT_EQ(0, std::memcmp(c_fused.data(), c_plain.data(), 128 * 4));
}

TEST(VmBatchTest, DivergentBranchBailsOutToInterpreter) {
  auto module = MustCompile(R"(
    __kernel void collatz(__global const int* in, __global int* out) {
      int i = get_global_id(0);
      int x = in[i];
      int steps = 0;
      while (x != 1) {
        if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
        steps++;
      }
      out[i] = steps;
    })");
  ASSERT_NE(module, nullptr);
  std::vector<std::int32_t> in(64), out(64, -1);
  for (int i = 0; i < 64; ++i) in[i] = i + 1;  // Divergent trip counts.

  LaunchOptions options;
  options.num_threads = 1;
  VmStats stats;
  ASSERT_TRUE(RunWithStats(*module, "collatz",
                           {ArgBinding::Buffer(in.data(), in.size() * 4),
                            ArgBinding::Buffer(out.data(), out.size() * 4)},
                           64, options, &stats)
                  .ok());
  EXPECT_GT(stats.bailouts, 0u);
  EXPECT_EQ(out[0], 0);   // 1 is already there.
  EXPECT_EQ(out[1], 1);   // 2 -> 1.
  EXPECT_EQ(out[26], 111);  // 27: the classic long orbit.
}

TEST(VmBatchTest, MaskedGuardAvoidsBailout) {
  // A divergent straight-line guard (bitwise &, no short-circuit jump)
  // must run under a partial-lane mask — zero bail-outs — and disabling
  // masking must force the old whole-group bail-out on the same input.
  auto module = MustCompile(R"(
    __kernel void guard(__global const int* sel, __global int* out, int n) {
      int i = get_global_id(0);
      if ((sel[i] != 0) & (i < n)) {
        out[i] = sel[i] * 3;
      }
    })");
  ASSERT_NE(module, nullptr);
  const int n = 256;
  std::vector<std::int32_t> sel(n), out_masked(n, -1), out_bail(n, -1);
  for (int i = 0; i < n; ++i) sel[i] = i % 3 == 0 ? 1 : 0;

  LaunchOptions masked;
  masked.num_threads = 1;
  VmStats masked_stats;
  ASSERT_TRUE(RunWithStats(*module, "guard",
                           {ArgBinding::Buffer(sel.data(), n * 4),
                            ArgBinding::Buffer(out_masked.data(), n * 4),
                            ArgBinding::Int(n)},
                           n, masked, &masked_stats)
                  .ok());
  EXPECT_EQ(masked_stats.bailouts, 0u);
  EXPECT_GT(masked_stats.masked_steps, 0u);

  LaunchOptions bail;
  bail.num_threads = 1;
  bail.enable_lane_masking = false;
  VmStats bail_stats;
  ASSERT_TRUE(RunWithStats(*module, "guard",
                           {ArgBinding::Buffer(sel.data(), n * 4),
                            ArgBinding::Buffer(out_bail.data(), n * 4),
                            ArgBinding::Int(n)},
                           n, bail, &bail_stats)
                  .ok());
  EXPECT_GT(bail_stats.bailouts, 0u);
  EXPECT_EQ(bail_stats.masked_steps, 0u);
  EXPECT_EQ(0, std::memcmp(out_masked.data(), out_bail.data(), n * 4));
}

TEST(VmBatchTest, MaskedBudgetChargesMatchInterpreterAtEveryTrapPoint) {
  // The lockstep runaway budget must charge identically whether a
  // divergent guard ran masked, bailed out, or went through the
  // interpreter: sweep the budget across the feasible range and demand
  // the same ok/trap outcome (and message) from every configuration.
  auto module = MustCompile(R"(
    __kernel void guarded_spin(__global const int* sel, __global int* out,
                               int iters) {
      int i = get_global_id(0);
      int acc = 0;
      for (int k = 0; k < iters; k++) {
        if ((sel[i] & 1) == (k & 1)) { acc = acc + 13; }
      }
      out[i] = acc;
    })");
  ASSERT_NE(module, nullptr);
  const int n = 64;
  const int iters = 40;
  std::vector<std::int32_t> sel(n);
  for (int i = 0; i < n; ++i) sel[i] = i;  // Half the lanes flip each step.

  for (std::uint64_t budget : {60u, 150u, 300u, 450u, 600u, 5000u}) {
    std::string outcome[3];
    int idx = 0;
    for (auto [engine, masking] :
         {std::pair{VmEngine::kBatched, true},
          std::pair{VmEngine::kBatched, false},
          std::pair{VmEngine::kInterpreter, true}}) {
      std::vector<std::int32_t> out(n, 0);
      LaunchOptions options;
      options.num_threads = 1;
      options.engine = engine;
      options.enable_lane_masking = masking;
      options.max_instructions_per_item = budget;
      Status s = RunWithStats(*module, "guarded_spin",
                              {ArgBinding::Buffer(sel.data(), n * 4),
                               ArgBinding::Buffer(out.data(), n * 4),
                               ArgBinding::Int(iters)},
                              n, options, nullptr);
      outcome[idx++] = s.ok() ? "ok" : s.ToString();
    }
    EXPECT_EQ(outcome[0], outcome[1]) << "budget " << budget;
    EXPECT_EQ(outcome[0], outcome[2]) << "budget " << budget;
  }
}

TEST(VmBatchTest, SimdStepsReportedOnlyWhenEnabled) {
  auto module = MustCompile(kMacLoop);
  ASSERT_NE(module, nullptr);
  const int n = 32;
  std::vector<float> a(128 * n, 0.5f), b(n, 2.0f), c(128, 0.0f);
  auto args = [&] {
    return std::vector<ArgBinding>{
        ArgBinding::Buffer(a.data(), a.size() * 4),
        ArgBinding::Buffer(b.data(), b.size() * 4),
        ArgBinding::Buffer(c.data(), c.size() * 4), ArgBinding::Int(n)};
  };
  LaunchOptions vector;
  vector.num_threads = 1;
  VmStats vector_stats;
  ASSERT_TRUE(
      RunWithStats(*module, "mac", args(), 128, vector, &vector_stats).ok());
  if (simd::kEnabled) {
    EXPECT_GT(vector_stats.simd_steps, 0u);
  } else {
    EXPECT_EQ(vector_stats.simd_steps, 0u);  // Scalar-fallback build.
  }

  LaunchOptions scalar;
  scalar.num_threads = 1;
  scalar.enable_simd = false;
  VmStats scalar_stats;
  ASSERT_TRUE(
      RunWithStats(*module, "mac", args(), 128, scalar, &scalar_stats).ok());
  EXPECT_EQ(scalar_stats.simd_steps, 0u);
}

TEST(VmBatchTest, InterpreterEngineRunsWithoutBatchDispatch) {
  auto module = MustCompile(kMacLoop);
  ASSERT_NE(module, nullptr);
  const int n = 8;
  std::vector<float> a(16 * n, 1.0f), b(n, 1.0f), c(16, 0.0f);
  LaunchOptions options;
  options.num_threads = 1;
  options.engine = VmEngine::kInterpreter;
  VmStats stats;
  ASSERT_TRUE(RunWithStats(*module, "mac",
                           {ArgBinding::Buffer(a.data(), a.size() * 4),
                            ArgBinding::Buffer(b.data(), b.size() * 4),
                            ArgBinding::Buffer(c.data(), c.size() * 4),
                            ArgBinding::Int(n)},
                           16, options, &stats)
                  .ok());
  EXPECT_GT(stats.instructions, 0u);
  EXPECT_EQ(stats.batch_steps, 0u);
  EXPECT_EQ(stats.fused_steps, 0u);
  EXPECT_EQ(c[0], static_cast<float>(n));
}

TEST(VmBatchTest, BudgetTrapIsIdenticalAcrossEngines) {
  auto module = MustCompile(R"(
    __kernel void spin(__global int* out) {
      int x = 0;
      while (x >= 0) { x = x + 1; if (x < 0) break; x = 0; }
      out[0] = x;
    })");
  ASSERT_NE(module, nullptr);
  std::int32_t sink = 0;
  for (VmEngine engine : {VmEngine::kBatched, VmEngine::kInterpreter}) {
    LaunchOptions options;
    options.num_threads = 1;
    options.engine = engine;
    options.max_instructions_per_item = 5000;
    Status s = RunWithStats(*module, "spin",
                            {ArgBinding::Buffer(&sink, sizeof(sink))}, 4,
                            options, nullptr);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.ToString().find("budget"), std::string::npos) << s.ToString();
  }
}

TEST(VmBatchTest, ChooseLocalSizeWidensBarrierFreeKernels) {
  auto wide = MustCompile(kMacLoop);
  ASSERT_NE(wide, nullptr);
  const CompiledFunction* mac = wide->FindKernel("mac");
  ASSERT_NE(mac, nullptr);
  EXPECT_FALSE(mac->uses_barrier);

  NDRange range;
  range.global[0] = 1024;
  ChooseLocalSize(range, mac);
  EXPECT_EQ(range.local[0], 256u);

  // Odd extents still get the largest divisor <= 256.
  NDRange odd;
  odd.global[0] = 3 * 7 * 11;  // 231.
  ChooseLocalSize(odd, mac);
  EXPECT_EQ(odd.local[0], 231u);

  // Vector-width alignment: 500's largest divisor <= 256 is 250, but SIMD
  // builds prefer 100 — the largest multiple of the vector width — so no
  // group runs a permanent scalar tail.
  NDRange vec;
  vec.global[0] = 500;
  ChooseLocalSize(vec, mac);
  if (simd::kEnabled) {
    EXPECT_EQ(vec.local[0], 100u);
    EXPECT_EQ(vec.local[0] % static_cast<std::uint64_t>(simd::kWidth), 0u);
  } else {
    EXPECT_EQ(vec.local[0], 250u);
  }

  // Kernel-less (legacy callers) and barrier kernels keep the 64 cap.
  NDRange legacy;
  legacy.global[0] = 1024;
  ChooseLocalSize(legacy);
  EXPECT_EQ(legacy.local[0], 64u);

  auto barrier = MustCompile(R"(
    __kernel void rev(__global int* data, __local int* tmp) {
      int l = get_local_id(0);
      int size = get_local_size(0);
      tmp[l] = data[get_global_id(0)];
      barrier(1);
      data[get_global_id(0)] = tmp[size - 1 - l];
    })");
  ASSERT_NE(barrier, nullptr);
  const CompiledFunction* rev = barrier->FindKernel("rev");
  ASSERT_NE(rev, nullptr);
  EXPECT_TRUE(rev->uses_barrier);
  NDRange brange;
  brange.global[0] = 1024;
  ChooseLocalSize(brange, rev);
  EXPECT_EQ(brange.local[0], 64u);
}

TEST(VmBatchTest, ExecPoolWidthMapsComputeUnitsToHostThreads) {
  sim::DeviceSpec cpu = sim::XeonE52686();
  EXPECT_EQ(cpu.compute_units, 16);
  EXPECT_EQ(sim::ExecPoolWidth(cpu, 64), 16);
  EXPECT_EQ(sim::ExecPoolWidth(cpu, 8), 8);  // Clamped to host silicon.
  sim::DeviceSpec gpu = sim::TeslaP4();
  EXPECT_EQ(gpu.compute_units, 20);
  sim::DeviceSpec legacy;  // Pre-compute-unit spec: single-threaded.
  EXPECT_EQ(sim::ExecPoolWidth(legacy, 64), 1);
}

TEST(VmBatchTest, MultiThreadedPoolMatchesSingleThread) {
  auto module = MustCompile(kMacLoop);
  ASSERT_NE(module, nullptr);
  const int n = 16;
  const std::uint64_t global = 1024;
  std::vector<float> a(global * n), b(n), c1(global, 0.0f), c8(global, 0.0f);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = 0.01f * static_cast<float>(i % 53);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = 0.1f * static_cast<float>(i + 1);
  }
  for (int threads : {1, 8}) {
    auto& c = threads == 1 ? c1 : c8;
    LaunchOptions options;
    options.num_threads = threads;
    VmStats stats;
    ASSERT_TRUE(RunWithStats(*module, "mac",
                             {ArgBinding::Buffer(a.data(), a.size() * 4),
                              ArgBinding::Buffer(b.data(), b.size() * 4),
                              ArgBinding::Buffer(c.data(), global * 4),
                              ArgBinding::Int(n)},
                             global, options, &stats)
                    .ok());
    EXPECT_EQ(stats.threads_used, threads == 1 ? 1 : stats.threads_used);
    EXPECT_GT(stats.groups, 1u);
  }
  EXPECT_EQ(0, std::memcmp(c1.data(), c8.data(), global * 4));
}

}  // namespace
}  // namespace haocl::oclc
