#include "oclc/lexer.h"

#include <gtest/gtest.h>

namespace haocl::oclc {
namespace {

TEST(LexerTest, EmptySourceYieldsEnd) {
  auto tokens = Lex("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto tokens = Lex("__kernel void foo int x");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "__kernel");
  EXPECT_EQ((*tokens)[1].text, "void");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[2].text, "foo");
  EXPECT_EQ((*tokens)[3].text, "int");
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kIdentifier);
}

TEST(LexerTest, IntegerLiteralsWithSuffixes) {
  auto tokens = Lex("42 0x1F 7u 9L 3UL");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].int_value, 42u);
  EXPECT_EQ((*tokens)[1].int_value, 0x1Fu);
  EXPECT_TRUE((*tokens)[2].is_unsigned);
  EXPECT_TRUE((*tokens)[3].is_long);
  EXPECT_TRUE((*tokens)[4].is_unsigned);
  EXPECT_TRUE((*tokens)[4].is_long);
}

TEST(LexerTest, FloatLiterals) {
  auto tokens = Lex("1.5 2.0f .25 3e2 4.5e-3f 7.");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ((*tokens)[0].float_value, 1.5);
  EXPECT_TRUE((*tokens)[1].is_float_suffix);
  EXPECT_DOUBLE_EQ((*tokens)[2].float_value, 0.25);
  EXPECT_DOUBLE_EQ((*tokens)[3].float_value, 300.0);
  EXPECT_DOUBLE_EQ((*tokens)[4].float_value, 0.0045);
  EXPECT_TRUE((*tokens)[4].is_float_suffix);
  EXPECT_DOUBLE_EQ((*tokens)[5].float_value, 7.0);
}

TEST(LexerTest, OperatorsGreedy) {
  auto tokens = Lex("a+++b <<= >>= <= >= == != && || += -=");
  ASSERT_TRUE(tokens.ok());
  // a ++ + b
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kPlusPlus);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kPlus);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kShlAssign);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kShrAssign);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kGe);
  EXPECT_EQ((*tokens)[8].kind, TokenKind::kEq);
  EXPECT_EQ((*tokens)[9].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[10].kind, TokenKind::kAmpAmp);
  EXPECT_EQ((*tokens)[11].kind, TokenKind::kPipePipe);
  EXPECT_EQ((*tokens)[12].kind, TokenKind::kPlusAssign);
  EXPECT_EQ((*tokens)[13].kind, TokenKind::kMinusAssign);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = Lex("a // line comment\nb /* block\ncomment */ c");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // a b c <end>
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
  EXPECT_EQ((*tokens)[2].text, "c");
}

TEST(LexerTest, UnterminatedBlockCommentFails) {
  auto tokens = Lex("a /* never closed");
  EXPECT_FALSE(tokens.ok());
}

TEST(LexerTest, ObjectMacroSubstitution) {
  auto tokens = Lex("#define TILE 16\nint x = TILE * TILE;");
  ASSERT_TRUE(tokens.ok());
  int literal_count = 0;
  for (const Token& t : *tokens) {
    if (t.kind == TokenKind::kIntLiteral) {
      EXPECT_EQ(t.int_value, 16u);
      ++literal_count;
    }
  }
  EXPECT_EQ(literal_count, 2);
}

TEST(LexerTest, PragmaIgnored) {
  auto tokens = Lex("#pragma OPENCL EXTENSION cl_khr_fp64 : enable\nint x;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "int");
}

TEST(LexerTest, FunctionLikeMacroRejected) {
  auto tokens = Lex("#define SQ(x) ((x)*(x))\n");
  EXPECT_FALSE(tokens.ok());
}

TEST(LexerTest, UnknownDirectiveRejected) {
  EXPECT_FALSE(Lex("#include <stdio.h>").ok());
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = Lex("a\n  b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].loc.line, 1);
  EXPECT_EQ((*tokens)[1].loc.line, 2);
  EXPECT_EQ((*tokens)[1].loc.column, 3);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto tokens = Lex("int x = `;");
  EXPECT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("unexpected character"),
            std::string::npos);
}

}  // namespace
}  // namespace haocl::oclc
