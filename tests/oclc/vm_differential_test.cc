// Randomized differential test: the lane-batch engine must produce
// BYTE-IDENTICAL output to the legacy interpreter (the oracle, kept
// behind LaunchOptions::engine) on every Table I workload kernel —
// matmul, SpMV (both stages), BFS expansion, CFD stepping, and kNN (both
// stages) — across randomized shapes, inputs, and NDRange offsets.
//
// Single-threaded on purpose: bfs_expand has benign equal-value write
// races across work-items (byte-identical results but order-dependent
// interleavings), so thread count must not differ between the runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "oclc/program.h"
#include "oclc/vm.h"
#include "workloads/workload.h"

namespace haocl::oclc {
namespace {

std::shared_ptr<const Module> CompileWorkload(
    const std::unique_ptr<workloads::Workload>& workload) {
  auto module = Compile(workload->kernel_source());
  EXPECT_TRUE(module.ok()) << workload->name() << ": "
                           << module.status().ToString();
  return module.ok() ? *module : nullptr;
}

// Runs `kernel` twice — batched then interpreter — over private copies of
// the output buffers and asserts the bytes agree. `outputs` indexes into
// `buffers` naming which bindings the kernel writes.
void ExpectEngineParity(const Module& module, const std::string& kernel,
                        std::vector<std::vector<std::uint8_t>> buffers,
                        const std::vector<std::size_t>& buffer_args,
                        const std::vector<ArgBinding>& scalar_tail,
                        const std::vector<std::size_t>& outputs,
                        const NDRange& range,
                        VmStats* batched_stats = nullptr) {
  const CompiledFunction* fn = module.FindKernel(kernel);
  ASSERT_NE(fn, nullptr) << kernel;

  std::vector<std::vector<std::uint8_t>> oracle_buffers = buffers;
  auto bind = [&](std::vector<std::vector<std::uint8_t>>& store) {
    std::vector<ArgBinding> args;
    for (std::size_t idx : buffer_args) {
      args.push_back(ArgBinding::Buffer(store[idx].data(), store[idx].size()));
    }
    for (const ArgBinding& s : scalar_tail) args.push_back(s);
    return args;
  };

  LaunchOptions batched;
  batched.num_threads = 1;
  batched.engine = VmEngine::kBatched;
  VmStats stats;
  Status sb =
      LaunchKernel(module, *fn, bind(buffers), range, batched, &stats);
  ASSERT_TRUE(sb.ok()) << kernel << ": " << sb.ToString();
  if (batched_stats != nullptr) *batched_stats = stats;

  LaunchOptions oracle;
  oracle.num_threads = 1;
  oracle.engine = VmEngine::kInterpreter;
  Status so = LaunchKernel(module, *fn, bind(oracle_buffers), range, oracle);
  ASSERT_TRUE(so.ok()) << kernel << ": " << so.ToString();

  for (std::size_t idx : outputs) {
    ASSERT_EQ(buffers[idx].size(), oracle_buffers[idx].size());
    EXPECT_EQ(0, std::memcmp(buffers[idx].data(), oracle_buffers[idx].data(),
                             buffers[idx].size()))
        << kernel << ": batched output diverged from the interpreter "
        << "(buffer " << idx << ", " << buffers[idx].size() << " bytes)";
  }
}

std::vector<std::uint8_t> FloatBytes(const std::vector<float>& v) {
  std::vector<std::uint8_t> bytes(v.size() * 4);
  std::memcpy(bytes.data(), v.data(), bytes.size());
  return bytes;
}

std::vector<std::uint8_t> IntBytes(const std::vector<std::int32_t>& v) {
  std::vector<std::uint8_t> bytes(v.size() * 4);
  std::memcpy(bytes.data(), v.data(), bytes.size());
  return bytes;
}

TEST(VmDifferentialTest, MatmulPartition) {
  auto workload = workloads::MakeMatrixMul();
  auto module = CompileWorkload(workload);
  ASSERT_NE(module, nullptr);
  std::mt19937 rng(20200707);
  std::uniform_real_distribution<float> val(-2.0f, 2.0f);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 1 + static_cast<int>(rng() % 40);
    const int rows = 1 + static_cast<int>(rng() % 40);
    std::vector<float> a(static_cast<std::size_t>(rows) * n);
    std::vector<float> b(static_cast<std::size_t>(n) * n);
    std::vector<float> c(static_cast<std::size_t>(rows) * n, -7.0f);
    for (float& x : a) x = val(rng);
    for (float& x : b) x = val(rng);
    NDRange range;
    range.work_dim = 2;
    range.global[0] = static_cast<std::uint64_t>(rows);
    range.global[1] = static_cast<std::uint64_t>(n);
    ExpectEngineParity(*module, "matmul_partition",
                       {FloatBytes(a), FloatBytes(b), FloatBytes(c)},
                       {0, 1, 2}, {ArgBinding::Int(n), ArgBinding::Int(rows)},
                       {2}, range);
  }
}

TEST(VmDifferentialTest, SpmvBothStages) {
  auto workload = workloads::MakeSpmv();
  auto module = CompileWorkload(workload);
  ASSERT_NE(module, nullptr);
  std::mt19937 rng(42);
  std::uniform_real_distribution<float> val(-1.0f, 1.0f);
  for (int trial = 0; trial < 6; ++trial) {
    const int rows = 1 + static_cast<int>(rng() % 200);
    std::vector<std::int32_t> row_ptr(rows + 1, 0);
    std::vector<std::int32_t> col_idx;
    std::vector<float> values;
    for (int r = 0; r < rows; ++r) {
      const int nnz = static_cast<int>(rng() % 8);
      for (int i = 0; i < nnz; ++i) {
        col_idx.push_back(static_cast<std::int32_t>(rng() % rows));
        values.push_back(val(rng));
      }
      row_ptr[r + 1] = static_cast<std::int32_t>(col_idx.size());
    }
    if (col_idx.empty()) {  // Keep the buffers non-empty for binding.
      col_idx.push_back(0);
      values.push_back(0.0f);
    }
    std::vector<float> x(rows);
    for (float& v : x) v = val(rng);
    std::vector<float> y(rows, -3.0f);
    NDRange compute_range;
    compute_range.global[0] = static_cast<std::uint64_t>(rows);
    ExpectEngineParity(
        *module, "spmv_compute",
        {IntBytes(row_ptr), IntBytes(col_idx), FloatBytes(values),
         FloatBytes(x), FloatBytes(y)},
        {0, 1, 2, 3, 4}, {ArgBinding::Int(rows)}, {4}, compute_range);

    const int chunk = 1 + static_cast<int>(rng() % 16);
    const int chunks = (rows + chunk - 1) / chunk;
    std::vector<std::int32_t> chunk_nnz(chunks, -1);
    NDRange part_range;
    part_range.global[0] = static_cast<std::uint64_t>(chunks);
    ExpectEngineParity(*module, "spmv_partition",
                       {IntBytes(row_ptr), IntBytes(chunk_nnz)}, {0, 1},
                       {ArgBinding::Int(rows), ArgBinding::Int(chunk)}, {1},
                       part_range);
  }
}

TEST(VmDifferentialTest, BfsExpand) {
  auto workload = workloads::MakeBfs();
  auto module = CompileWorkload(workload);
  ASSERT_NE(module, nullptr);
  std::mt19937 rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const int vertices = 2 + static_cast<int>(rng() % 300);
    std::vector<std::int32_t> row_ptr(vertices + 1, 0);
    std::vector<std::int32_t> adj;
    for (int v = 0; v < vertices; ++v) {
      const int degree = static_cast<int>(rng() % 6);
      for (int e = 0; e < degree; ++e) {
        adj.push_back(static_cast<std::int32_t>(rng() % vertices));
      }
      row_ptr[v + 1] = static_cast<std::int32_t>(adj.size());
    }
    if (adj.empty()) adj.push_back(0);
    std::vector<std::int32_t> frontier(vertices, 0);
    std::vector<std::int32_t> levels(vertices, -1);
    for (int v = 0; v < vertices; ++v) {
      if (rng() % 4 == 0) {
        frontier[v] = 1;
        levels[v] = 0;
      }
    }
    std::vector<std::int32_t> next(vertices, 0);
    NDRange range;
    range.global[0] = static_cast<std::uint64_t>(vertices);
    ExpectEngineParity(
        *module, "bfs_expand",
        {IntBytes(row_ptr), IntBytes(adj), IntBytes(frontier), IntBytes(next),
         IntBytes(levels)},
        {0, 1, 2, 3, 4},
        {ArgBinding::Int(vertices), ArgBinding::Int(1)}, {3, 4}, range);
  }
}

TEST(VmDifferentialTest, CfdStep) {
  auto workload = workloads::MakeCfd();
  auto module = CompileWorkload(workload);
  ASSERT_NE(module, nullptr);
  std::mt19937 rng(11);
  std::uniform_real_distribution<float> val(-1.0f, 1.0f);
  constexpr int kFaces = 4;
  for (int trial = 0; trial < 6; ++trial) {
    const int cells = 1 + static_cast<int>(rng() % 400);
    std::vector<float> state(cells);
    for (float& v : state) v = val(rng);
    std::vector<float> next_state(cells, 0.0f);
    std::vector<std::int32_t> neighbors(cells * kFaces);
    std::vector<float> face_area(cells * kFaces);
    for (int i = 0; i < cells * kFaces; ++i) {
      // ~1/4 boundary faces (reflecting), rest interior.
      neighbors[i] = rng() % 4 == 0
                         ? -1
                         : static_cast<std::int32_t>(rng() % cells);
      face_area[i] = 0.5f + 0.5f * val(rng);
    }
    NDRange range;
    range.global[0] = static_cast<std::uint64_t>(cells);
    ExpectEngineParity(
        *module, "cfd_step",
        {FloatBytes(state), FloatBytes(next_state), IntBytes(neighbors),
         FloatBytes(face_area)},
        {0, 1, 2, 3},
        {ArgBinding::Float(0.01f), ArgBinding::Int(cells)}, {1}, range);
  }
}

TEST(VmDifferentialTest, KnnBothStages) {
  auto workload = workloads::MakeKnn();
  auto module = CompileWorkload(workload);
  ASSERT_NE(module, nullptr);
  std::mt19937 rng(13);
  std::uniform_real_distribution<float> val(-5.0f, 5.0f);
  constexpr int kK = 8;
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 1 + static_cast<int>(rng() % 500);
    std::vector<float> points(2 * n);
    for (float& v : points) v = val(rng);
    std::vector<float> dist(n, -1.0f);
    NDRange dist_range;
    dist_range.global[0] = static_cast<std::uint64_t>(n);
    ExpectEngineParity(*module, "knn_distances",
                       {FloatBytes(points), FloatBytes(dist)}, {0, 1},
                       {ArgBinding::Float(val(rng)),
                        ArgBinding::Float(val(rng)), ArgBinding::Int(n)},
                       {1}, dist_range);

    // Stage 2 only needs some distance array; random works (ties and
    // duplicates included — they stress the insertion order).
    std::vector<float> real_dist(n);
    for (float& v : real_dist) v = val(rng) * val(rng);
    // kNN top-K per strided scanner; the private-array insertion sort has
    // heavily data-dependent branches — the divergence bail-out path gets
    // a real workout here.
    const std::uint64_t scanners = 1 + rng() % 64;
    std::vector<float> cand_dist(scanners * kK, 0.0f);
    std::vector<std::int32_t> cand_idx(scanners * kK, -2);
    NDRange topk_range;
    topk_range.global[0] = scanners;
    ExpectEngineParity(
        *module, "knn_topk",
        {FloatBytes(real_dist), FloatBytes(cand_dist), IntBytes(cand_idx)},
        {0, 1, 2}, {ArgBinding::Int(n)}, {1, 2}, topk_range);
  }
}

// Randomized divergent-guard kernels: per-lane conditions built from
// bitwise &/| (no short-circuit jumps) guarding short straight-line
// bodies. These must take the partial-lane masked path — zero whole-group
// bail-outs — and still match the interpreter byte for byte.
TEST(VmDifferentialTest, DivergentGuardRunsMaskedNotBailedOut) {
  auto module = Compile(R"(
    __kernel void guard_store(__global const int* sel,
                              __global const float* x, __global float* out,
                              int n, float bias) {
      int i = get_global_id(0);
      float v = x[i] * 1.5f;
      if ((sel[i] > 0) & (i < n)) {
        out[i] = v + bias;
      }
    })");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  std::mt19937 rng(20260809);
  std::uniform_real_distribution<float> val(-4.0f, 4.0f);
  for (int trial = 0; trial < 8; ++trial) {
    // Multiple of 64 so ChooseLocalSize always yields wide (divergable)
    // groups — a prime extent would degenerate to single-lane groups.
    const int n = 64 * (1 + static_cast<int>(rng() % 8));
    std::vector<std::int32_t> sel(n);
    for (auto& s : sel) s = static_cast<std::int32_t>(rng() % 3) - 1;
    std::vector<float> x(n), out(n, -9.0f);
    for (float& v : x) v = val(rng);
    NDRange range;
    range.global[0] = static_cast<std::uint64_t>(n);
    VmStats stats;
    ExpectEngineParity(**module, "guard_store",
                       {IntBytes(sel), FloatBytes(x), FloatBytes(out)},
                       {0, 1, 2},
                       {ArgBinding::Int(n), ArgBinding::Float(val(rng))}, {2},
                       range, &stats);
    EXPECT_EQ(stats.bailouts, 0u) << "guard forced a whole-group bail-out";
    EXPECT_GT(stats.masked_steps, 0u) << "guard never took the masked path";
  }
}

TEST(VmDifferentialTest, ChainedGuardsRunMaskedNotBailedOut) {
  auto module = Compile(R"(
    __kernel void guard_multi(__global const int* sel, __global int* out,
                              int n) {
      int i = get_global_id(0);
      int v = out[i];
      if ((sel[i] & 1) != 0) { v = v + 7; }
      if (((sel[i] & 2) != 0) | (v > n)) { v = v * 3 - 1; }
      out[i] = v;
    })");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  std::mt19937 rng(31337);
  for (int trial = 0; trial < 8; ++trial) {
    // Multiple of 32: wide groups (see DivergentGuardRunsMaskedNotBailedOut).
    const int n = 32 * (1 + static_cast<int>(rng() % 12));
    std::vector<std::int32_t> sel(n), out(n);
    for (auto& s : sel) s = static_cast<std::int32_t>(rng() % 4);
    for (auto& v : out) v = static_cast<std::int32_t>(rng() % 64);
    NDRange range;
    range.global[0] = static_cast<std::uint64_t>(n);
    VmStats stats;
    ExpectEngineParity(**module, "guard_multi", {IntBytes(sel), IntBytes(out)},
                       {0, 1}, {ArgBinding::Int(n / 2)}, {1}, range, &stats);
    EXPECT_EQ(stats.bailouts, 0u) << "guard forced a whole-group bail-out";
    EXPECT_GT(stats.masked_steps, 0u) << "guard never took the masked path";
  }
}

// The masked path composes with sharded launches: a global offset shifts
// every lane id, and the guard still masks instead of bailing out.
TEST(VmDifferentialTest, DivergentGuardShardWithGlobalOffset) {
  auto module = Compile(R"(
    __kernel void guard_shard(__global const int* sel, __global int* out,
                              int n) {
      int i = get_global_id(0);
      if ((sel[i] != 0) & (i < n)) {
        out[i] = i * 2 + 1;
      }
    })");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  std::mt19937 rng(555);
  const int n = 512;
  std::vector<std::int32_t> sel(n), out(n, -5);
  for (auto& s : sel) s = static_cast<std::int32_t>(rng() % 2);
  NDRange range;  // Shard: items [96, 352) only.
  range.global[0] = 256;
  range.offset[0] = 96;
  VmStats stats;
  ExpectEngineParity(**module, "guard_shard", {IntBytes(sel), IntBytes(out)},
                     {0, 1}, {ArgBinding::Int(n)}, {1}, range, &stats);
  EXPECT_EQ(stats.bailouts, 0u);
  EXPECT_GT(stats.masked_steps, 0u);
}

// NDRange offsets (sharded launches) go through get_global_id the same
// way on both engines.
TEST(VmDifferentialTest, MatmulWithGlobalOffsetShard) {
  auto workload = workloads::MakeMatrixMul();
  auto module = CompileWorkload(workload);
  ASSERT_NE(module, nullptr);
  std::mt19937 rng(99);
  std::uniform_real_distribution<float> val(-1.0f, 1.0f);
  const int n = 24;
  const int rows = 24;
  std::vector<float> a(static_cast<std::size_t>(rows) * n);
  std::vector<float> b(static_cast<std::size_t>(n) * n);
  std::vector<float> c(static_cast<std::size_t>(rows) * n, 0.0f);
  for (float& x : a) x = val(rng);
  for (float& x : b) x = val(rng);
  NDRange range;  // Shard: rows [8, 20) only.
  range.work_dim = 2;
  range.global[0] = 12;
  range.global[1] = static_cast<std::uint64_t>(n);
  range.offset[0] = 8;
  ExpectEngineParity(*module, "matmul_partition",
                     {FloatBytes(a), FloatBytes(b), FloatBytes(c)}, {0, 1, 2},
                     {ArgBinding::Int(n), ArgBinding::Int(rows)}, {2}, range);
}

}  // namespace
}  // namespace haocl::oclc
