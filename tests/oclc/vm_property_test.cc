// Property tests: the interpreter must agree with a native C++ reference on
// randomized inputs, sweeping launch geometries. These are the equivalence
// guarantees that let the FPGA driver substitute pre-built native kernels
// ("bitstreams") for interpreted ones.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "oclc/program.h"
#include "oclc/vm.h"

namespace haocl::oclc {
namespace {

std::shared_ptr<const Module> MustCompile(const std::string& source) {
  auto module = Compile(source);
  EXPECT_TRUE(module.ok()) << module.status().ToString();
  return module.ok() ? *module : nullptr;
}

// ---------------------------------------------------------------- SAXPY

class SaxpyProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SaxpyProperty, MatchesNativeReference) {
  const int n = std::get<0>(GetParam());
  const int local = std::get<1>(GetParam());
  if (n % local != 0) GTEST_SKIP() << "geometry not divisible";

  auto module = MustCompile(R"(
    __kernel void saxpy(__global float* y, __global const float* x,
                        float a, int n) {
      int i = get_global_id(0);
      if (i < n) y[i] = a * x[i] + y[i];
    })");
  ASSERT_NE(module, nullptr);

  std::mt19937 rng(n * 31 + local);
  std::uniform_real_distribution<float> dist(-10.0f, 10.0f);
  std::vector<float> x(n), y(n), want(n);
  const float a = dist(rng);
  for (int i = 0; i < n; ++i) {
    x[i] = dist(rng);
    y[i] = dist(rng);
    want[i] = a * x[i] + y[i];
  }

  const CompiledFunction* fn = module->FindKernel("saxpy");
  NDRange range;
  range.global[0] = n;
  range.local[0] = local;
  range.local_specified = true;
  Status s = LaunchKernel(*module, *fn,
                          {ArgBinding::Buffer(y.data(), n * 4),
                           ArgBinding::Buffer(x.data(), n * 4),
                           ArgBinding::Float(a), ArgBinding::Int(n)},
                          range);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (int i = 0; i < n; ++i) ASSERT_FLOAT_EQ(y[i], want[i]) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SaxpyProperty,
    ::testing::Combine(::testing::Values(64, 256, 1000, 4096),
                       ::testing::Values(1, 8, 50, 64)));

// ------------------------------------------------------ Integer semantics

class IntSemanticsProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(IntSemanticsProperty, WrapDivModShiftAgreeWithCpp) {
  auto module = MustCompile(R"(
    __kernel void intsem(__global int* out, __global const int* a,
                         __global const int* b, int n) {
      int i = get_global_id(0);
      if (i >= n) return;
      int x = a[i];
      int y = b[i];
      int acc = x + y;
      acc = acc * 31 + (x - y);
      acc = acc ^ (x & y) ^ (x | y);
      acc += x << (y & 15);
      acc += x >> (y & 7);
      if (y != 0) {
        acc += x / y + x % y;
      }
      out[i] = acc;
    })");
  ASSERT_NE(module, nullptr);

  const int n = 512;
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> dist(-1000000, 1000000);
  std::vector<int> a(n), b(n), out(n, 0), want(n);
  for (int i = 0; i < n; ++i) {
    a[i] = dist(rng);
    b[i] = dist(rng);
    const int x = a[i];
    const int y = b[i];
    // Mirror of the kernel with the same wrapping semantics.
    auto wadd = [](int p, int q) {
      return static_cast<int>(static_cast<unsigned>(p) +
                              static_cast<unsigned>(q));
    };
    auto wmul = [](int p, int q) {
      return static_cast<int>(static_cast<unsigned>(p) *
                              static_cast<unsigned>(q));
    };
    int acc = wadd(x, y);
    acc = wadd(wmul(acc, 31), x - y);
    acc = acc ^ (x & y) ^ (x | y);
    acc = wadd(acc, static_cast<int>(static_cast<unsigned>(x) << (y & 15)));
    acc = wadd(acc, x >> (y & 7));
    if (y != 0) acc = wadd(acc, x / y + x % y);
    want[i] = acc;
  }

  const CompiledFunction* fn = module->FindKernel("intsem");
  NDRange range;
  range.global[0] = n;
  Status s = LaunchKernel(*module, *fn,
                          {ArgBinding::Buffer(out.data(), n * 4),
                           ArgBinding::Buffer(a.data(), n * 4),
                           ArgBinding::Buffer(b.data(), n * 4),
                           ArgBinding::Int(n)},
                          range);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (int i = 0; i < n; ++i) ASSERT_EQ(out[i], want[i]) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntSemanticsProperty,
                         ::testing::Range(1u, 9u));

// ------------------------------------------------------- Float semantics

class FloatSemanticsProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(FloatSemanticsProperty, SinglePrecisionIsBitExact) {
  // The VM computes f32 ops by rounding after every operation; that must
  // be bit-identical to native float arithmetic, not double-then-truncate.
  auto module = MustCompile(R"(
    __kernel void fsem(__global float* out, __global const float* a,
                       __global const float* b, int n) {
      int i = get_global_id(0);
      if (i >= n) return;
      float x = a[i];
      float y = b[i];
      float acc = x + y;
      acc = acc * x - y;
      acc = acc / (y * y + 1.0f);
      acc += sqrt(fabs(x)) * 0.125f;
      out[i] = acc;
    })");
  ASSERT_NE(module, nullptr);

  const int n = 512;
  std::mt19937 rng(GetParam() * 7919);
  std::uniform_real_distribution<float> dist(-100.0f, 100.0f);
  std::vector<float> a(n), b(n), out(n, 0), want(n);
  for (int i = 0; i < n; ++i) {
    a[i] = dist(rng);
    b[i] = dist(rng);
    const float x = a[i];
    const float y = b[i];
    float acc = x + y;
    acc = acc * x - y;
    acc = acc / (y * y + 1.0f);
    acc += std::sqrt(std::fabs(x)) * 0.125f;
    want[i] = acc;
  }

  const CompiledFunction* fn = module->FindKernel("fsem");
  NDRange range;
  range.global[0] = n;
  Status s = LaunchKernel(*module, *fn,
                          {ArgBinding::Buffer(out.data(), n * 4),
                           ArgBinding::Buffer(a.data(), n * 4),
                           ArgBinding::Buffer(b.data(), n * 4),
                           ArgBinding::Int(n)},
                          range);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], want[i]) << "i=" << i << " a=" << a[i] << " b=" << b[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloatSemanticsProperty,
                         ::testing::Range(1u, 9u));

// ------------------------------------------------- Reduction determinism

class ReductionProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReductionProperty, GroupReductionSumsEveryElementOnce) {
  const int groups = std::get<0>(GetParam());
  const int local = std::get<1>(GetParam());
  auto module = MustCompile(R"(
    __kernel void reduce(__global const int* in, __global int* partial,
                         __local int* scratch) {
      int lid = get_local_id(0);
      scratch[lid] = in[get_global_id(0)];
      barrier(1);
      for (int off = (int)get_local_size(0) / 2; off > 0; off /= 2) {
        if (lid < off) scratch[lid] += scratch[lid + off];
        barrier(1);
      }
      if (lid == 0) partial[get_group_id(0)] = scratch[0];
    })");
  ASSERT_NE(module, nullptr);
  const int n = groups * local;
  std::mt19937 rng(n);
  std::uniform_int_distribution<int> dist(-50, 50);
  std::vector<int> in(n);
  long long want = 0;
  for (int i = 0; i < n; ++i) {
    in[i] = dist(rng);
    want += in[i];
  }
  std::vector<int> partial(groups, 0);
  const CompiledFunction* fn = module->FindKernel("reduce");
  NDRange range;
  range.global[0] = n;
  range.local[0] = local;
  range.local_specified = true;
  LaunchOptions options;
  options.num_threads = 4;
  Status s = LaunchKernel(*module, *fn,
                          {ArgBinding::Buffer(in.data(), n * 4),
                           ArgBinding::Buffer(partial.data(), groups * 4),
                           ArgBinding::LocalMem(local * 4)},
                          range, options);
  ASSERT_TRUE(s.ok()) << s.ToString();
  long long got = 0;
  for (int v : partial) got += v;
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ReductionProperty,
    ::testing::Combine(::testing::Values(1, 3, 16),
                       ::testing::Values(2, 8, 64, 256)));

}  // namespace
}  // namespace haocl::oclc
