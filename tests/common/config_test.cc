#include "common/config.h"

#include <gtest/gtest.h>

namespace haocl {
namespace {

TEST(ConfigTest, ParsesNodesAndOptions) {
  auto config = ClusterConfig::Parse(R"(
# HaoCL cluster map
node gpu0  gpu  10.0.0.1 9000
node gpu1  gpu  10.0.0.2 9000
node fpga0 fpga 10.0.0.3 9001
node cpu0  cpu  10.0.0.4 9002
option scheduler hetero
option data_port_base 9100
)");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->nodes().size(), 4u);
  EXPECT_EQ(config->CountByType(NodeType::kGpu), 2u);
  EXPECT_EQ(config->CountByType(NodeType::kFpga), 1u);
  EXPECT_EQ(config->CountByType(NodeType::kCpu), 1u);
  EXPECT_EQ(config->nodes()[2].name, "fpga0");
  EXPECT_EQ(config->nodes()[2].port, 9001);
  EXPECT_EQ(config->GetOption("scheduler", "user"), "hetero");
  EXPECT_EQ(config->GetOptionInt("data_port_base", 0), 9100);
  EXPECT_EQ(config->GetOptionInt("missing", 7), 7);
}

TEST(ConfigTest, EmptyAndCommentsOnly) {
  auto config = ClusterConfig::Parse("# nothing\n\n   \n");
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->nodes().empty());
}

TEST(ConfigTest, BadTypeRejectedWithLineNumber) {
  auto config = ClusterConfig::Parse("node n1 tpu 10.0.0.1 9000\n");
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(config.status().message().find("tpu"), std::string::npos);
}

TEST(ConfigTest, BadPortRejected) {
  EXPECT_FALSE(ClusterConfig::Parse("node n1 gpu 10.0.0.1 99999\n").ok());
  EXPECT_FALSE(ClusterConfig::Parse("node n1 gpu 10.0.0.1 abc\n").ok());
}

TEST(ConfigTest, WrongArityRejected) {
  EXPECT_FALSE(ClusterConfig::Parse("node n1 gpu 10.0.0.1\n").ok());
  EXPECT_FALSE(ClusterConfig::Parse("option onlykey\n").ok());
}

TEST(ConfigTest, UnknownDirectiveRejected) {
  EXPECT_FALSE(ClusterConfig::Parse("device n1 gpu 10.0.0.1 9000\n").ok());
}

TEST(ConfigTest, SerializeRoundTrip) {
  ClusterConfig config;
  config.AddNode({"gpu0", NodeType::kGpu, "127.0.0.1", 9000});
  config.AddNode({"fpga0", NodeType::kFpga, "127.0.0.1", 9001});
  config.SetOption("scheduler", "roundrobin");
  auto reparsed = ClusterConfig::Parse(config.Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->nodes(), config.nodes());
  EXPECT_EQ(reparsed->GetOption("scheduler", ""), "roundrobin");
}

TEST(ConfigTest, ParseNodeTypeNames) {
  EXPECT_EQ(*ParseNodeType("cpu"), NodeType::kCpu);
  EXPECT_EQ(*ParseNodeType("gpu"), NodeType::kGpu);
  EXPECT_EQ(*ParseNodeType("fpga"), NodeType::kFpga);
  EXPECT_FALSE(ParseNodeType("asic").ok());
  EXPECT_STREQ(NodeTypeName(NodeType::kFpga), "fpga");
}

TEST(ConfigTest, MissingFileFails) {
  EXPECT_FALSE(ClusterConfig::LoadFile("/nonexistent/cluster.conf").ok());
}

}  // namespace
}  // namespace haocl
