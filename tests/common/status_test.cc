#include "common/status.h"

#include <gtest/gtest.h>

namespace haocl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kInvalidDevice, "no such device");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidDevice);
  EXPECT_EQ(s.ToString(), "INVALID_DEVICE: no such device");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (ErrorCode code : {ErrorCode::kOk, ErrorCode::kDeviceNotFound,
                         ErrorCode::kBuildProgramFailure,
                         ErrorCode::kInvalidValue, ErrorCode::kNetworkError,
                         ErrorCode::kProtocolError, ErrorCode::kInternal,
                         ErrorCode::kUnimplemented}) {
    EXPECT_STRNE(ErrorCodeName(code), "UNKNOWN");
  }
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.code(), ErrorCode::kOk);
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> e(ErrorCode::kInvalidValue, "bad");
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.code(), ErrorCode::kInvalidValue);
  EXPECT_EQ(e.status().message(), "bad");
}

TEST(ExpectedTest, OkStatusIsNotAValue) {
  // Constructing Expected from an OK status is a bug; it must surface as an
  // internal error rather than pretend to hold a value.
  Expected<int> e{Status::Ok()};
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.code(), ErrorCode::kInternal);
}

TEST(ExpectedTest, MoveOutValue) {
  Expected<std::string> e(std::string(1000, 'x'));
  std::string taken = *std::move(e);
  EXPECT_EQ(taken.size(), 1000u);
}

Status FailingOp() { return Status(ErrorCode::kNetworkError, "down"); }
Status UsesReturnIfError() {
  HAOCL_RETURN_IF_ERROR(FailingOp());
  return Status(ErrorCode::kInternal, "unreached");
}

Expected<int> GivesSeven() { return 7; }
Expected<int> GivesError() {
  return Expected<int>(ErrorCode::kInvalidValue, "nope");
}
Status UsesAssignOrReturn(int* out) {
  HAOCL_ASSIGN_OR_RETURN(int v, GivesSeven());
  HAOCL_ASSIGN_OR_RETURN(int w, GivesError());
  *out = v + w;
  return Status::Ok();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), ErrorCode::kNetworkError);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_EQ(UsesAssignOrReturn(&out).code(), ErrorCode::kInvalidValue);
  EXPECT_EQ(out, 0);
}

}  // namespace
}  // namespace haocl
