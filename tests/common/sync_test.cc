#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace haocl {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, CloseReleasesBlockedConsumer) {
  BlockingQueue<int> q;
  std::atomic<bool> got_nullopt{false};
  std::thread consumer([&] {
    auto item = q.Pop();
    got_nullopt = !item.has_value();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
  EXPECT_TRUE(got_nullopt);
}

TEST(BlockingQueueTest, DrainsAfterClose) {
  BlockingQueue<int> q;
  q.Push(7);
  q.Close();
  EXPECT_EQ(*q.Pop(), 7);           // Already-queued items still drain.
  EXPECT_FALSE(q.Pop().has_value());  // Then it reports closed.
  q.Push(8);                          // Dropped silently after close.
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 1000;
  std::atomic<long long> sum{0};
  std::atomic<int> count{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.Pop()) {
        sum += *item;
        ++count;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kItemsEach; ++i) q.Push(p * kItemsEach + i);
    });
  }
  for (auto& t : producers) t.join();
  while (count.load() < kProducers * kItemsEach) {
    std::this_thread::yield();
  }
  q.Close();
  for (auto& t : consumers) t.join();

  const long long n = kProducers * kItemsEach;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(PromiseTest, SetThenWait) {
  Promise<int> p;
  p.Set(99);
  EXPECT_EQ(p.Wait(), 99);
  EXPECT_TRUE(p.Ready());
}

TEST(PromiseTest, FirstWriterWins) {
  Promise<int> p;
  p.Set(1);
  p.Set(2);
  EXPECT_EQ(p.Wait(), 1);
}

TEST(PromiseTest, WaitBlocksUntilSet) {
  Promise<std::string> p;
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    p.Set("done");
  });
  EXPECT_EQ(p.Wait(), "done");
  setter.join();
}

TEST(PromiseTest, WaitForTimesOut) {
  Promise<int> p;
  EXPECT_EQ(p.WaitFor(std::chrono::milliseconds(10)), nullptr);
  p.Set(5);
  const int* v = p.WaitFor(std::chrono::milliseconds(10));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace haocl
