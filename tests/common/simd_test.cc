// The SIMD abstraction must match scalar semantics lane-for-lane on every
// backend (AVX2/SSE2/NEON/scalar): exact i32 wrap, IEEE single-rounding
// float ops, the f64->f32->f64 conversion sandwich the VM uses for f32
// rows, low-word extraction / sign-extension against the 8-byte `Value`
// row layout, gathers, blends, and the lane mask. The forced-scalar CI job
// runs this same file against the fallback implementation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "common/simd.h"

namespace haocl::simd {
namespace {

TEST(VmSimd, ReportsBackend) {
  EXPECT_EQ(kWidth, 4);
  EXPECT_NE(kIsaName[0], '\0');
#if defined(HAOCL_SIMD_FORCE_SCALAR)
  EXPECT_FALSE(kEnabled);
#endif
}

TEST(VmSimd, I32ArithWrapsLikeScalar) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::int32_t> dist(INT32_MIN, INT32_MAX);
  for (int trial = 0; trial < 200; ++trial) {
    std::int32_t a[4], b[4], out[4];
    for (int i = 0; i < 4; ++i) {
      a[i] = dist(rng);
      b[i] = dist(rng);
    }
    const VecI32 va = VecI32::Load(a), vb = VecI32::Load(b);
    Add(va, vb).Store(out);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(out[i], static_cast<std::int32_t>(
                            static_cast<std::uint32_t>(a[i]) +
                            static_cast<std::uint32_t>(b[i])));
    }
    Sub(va, vb).Store(out);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(out[i], static_cast<std::int32_t>(
                            static_cast<std::uint32_t>(a[i]) -
                            static_cast<std::uint32_t>(b[i])));
    }
    Mul(va, vb).Store(out);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(out[i], static_cast<std::int32_t>(
                            static_cast<std::uint32_t>(a[i]) *
                            static_cast<std::uint32_t>(b[i])));
    }
    Min(va, vb).Store(out);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], a[i] < b[i] ? a[i] : b[i]);
    Max(va, vb).Store(out);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], a[i] > b[i] ? a[i] : b[i]);
  }
}

TEST(VmSimd, I32CompareAndBlendAndMask) {
  const std::int32_t a[4] = {1, -5, 7, INT32_MIN};
  const std::int32_t b[4] = {1, 3, -7, INT32_MAX};
  const VecI32 va = VecI32::Load(a), vb = VecI32::Load(b);

  std::int32_t out[4];
  CmpEq(va, vb).Store(out);
  EXPECT_EQ(out[0], -1);
  EXPECT_EQ(out[1], 0);
  CmpLt(va, vb).Store(out);
  EXPECT_EQ(out[1], -1);
  EXPECT_EQ(out[2], 0);
  EXPECT_EQ(out[3], -1);
  CmpGt(va, vb).Store(out);
  EXPECT_EQ(out[2], -1);
  Not(CmpEq(va, vb)).Store(out);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], -1);

  const VecI32 picked = Blend(CmpLt(va, vb), va, vb);
  picked.Store(out);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], a[i] < b[i] ? a[i] : b[i]);

  const LaneMask mask = LaneMask::FromVec(CmpLt(va, vb));
  EXPECT_TRUE(mask.Any());
  EXPECT_FALSE(mask.AllSet());
  EXPECT_EQ(mask.Count(), 2);
  EXPECT_FALSE(mask.Test(0));
  EXPECT_TRUE(mask.Test(1));
  EXPECT_TRUE(AnyTrue(CmpLt(va, vb)));
  EXPECT_FALSE(AllTrue(CmpLt(va, vb)));
  EXPECT_TRUE(AllTrue(CmpEq(va, va)));
}

TEST(VmSimd, ValueRowLowWordRoundTrip) {
  // A canonical-i32 Value row: 8-byte lanes holding sign-extended i32.
  std::int64_t row[4] = {-3, 0x7fffffffLL, INT64_C(-2147483648), 42};
  const VecI32 low = VecI32::LoadLow64(row);
  std::int32_t out[4];
  low.Store(out);
  EXPECT_EQ(out[0], -3);
  EXPECT_EQ(out[1], 0x7fffffff);
  EXPECT_EQ(out[2], INT32_MIN);
  EXPECT_EQ(out[3], 42);

  std::int64_t sext[4];
  low.StoreSignExt64(sext);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(sext[i], row[i]);

  std::uint64_t zext[4];
  low.StoreZeroExt64(zext);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(zext[i], static_cast<std::uint32_t>(row[i]));
  }
}

TEST(VmSimd, F32MatchesScalarRoundingExactly) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<float> dist(-1e4f, 1e4f);
  for (int trial = 0; trial < 200; ++trial) {
    float a[4], b[4], out[4];
    for (int i = 0; i < 4; ++i) {
      a[i] = dist(rng);
      b[i] = dist(rng);
    }
    const VecF32 va = VecF32::Load(a), vb = VecF32::Load(b);
    Add(va, vb).Store(out);
    for (int i = 0; i < 4; ++i) {
      const float expect = a[i] + b[i];
      EXPECT_EQ(0, std::memcmp(&out[i], &expect, 4));
    }
    Mul(va, vb).Store(out);
    for (int i = 0; i < 4; ++i) {
      const float expect = a[i] * b[i];
      EXPECT_EQ(0, std::memcmp(&out[i], &expect, 4));
    }
    Div(va, vb).Store(out);
    for (int i = 0; i < 4; ++i) {
      const float expect = a[i] / b[i];
      EXPECT_EQ(0, std::memcmp(&out[i], &expect, 4));
    }
  }
}

TEST(VmSimd, F64F32ConversionSandwichIsByteExact) {
  // The engine stores f32 lanes widened to double; its vector tier
  // converts f64->f32, operates, and widens back. That sequence must be
  // byte-identical to the scalar static_cast chain.
  std::mt19937 rng(13);
  std::uniform_real_distribution<double> dist(-1e6, 1e6);
  for (int trial = 0; trial < 200; ++trial) {
    double a[4], b[4], out[4];
    for (int i = 0; i < 4; ++i) {
      a[i] = dist(rng);
      b[i] = dist(rng);
    }
    const VecF64 va = VecF64::Load(a), vb = VecF64::Load(b);
    // Two separate roundings — mul then add — exactly like the VM's MAC.
    const VecF32 m = Mul(ToF32(va), ToF32(vb));
    const VecF64 widened = ToF64(Add(ToF32(va), m));
    widened.Store(out);
    for (int i = 0; i < 4; ++i) {
      const float sm = static_cast<float>(a[i]) * static_cast<float>(b[i]);
      const float sr = static_cast<float>(a[i]) + sm;
      const double expect = sr;
      EXPECT_EQ(0, std::memcmp(&out[i], &expect, 8));
    }
  }
}

TEST(VmSimd, F64ArithMatchesScalar) {
  const double a[4] = {1.5, -2.25, 1e300, -0.0};
  const double b[4] = {2.0, 0.5, 1e-300, 3.0};
  double out[4];
  const VecF64 va = VecF64::Load(a), vb = VecF64::Load(b);
  Add(va, vb).Store(out);
  for (int i = 0; i < 4; ++i) {
    const double expect = a[i] + b[i];
    EXPECT_EQ(0, std::memcmp(&out[i], &expect, 8));
  }
  Sub(va, vb).Store(out);
  for (int i = 0; i < 4; ++i) {
    const double expect = a[i] - b[i];
    EXPECT_EQ(0, std::memcmp(&out[i], &expect, 8));
  }
  Mul(va, vb).Store(out);
  for (int i = 0; i < 4; ++i) {
    const double expect = a[i] * b[i];
    EXPECT_EQ(0, std::memcmp(&out[i], &expect, 8));
  }
  Div(va, vb).Store(out);
  for (int i = 0; i < 4; ++i) {
    const double expect = a[i] / b[i];
    EXPECT_EQ(0, std::memcmp(&out[i], &expect, 8));
  }
}

TEST(VmSimd, GatherReadsArbitraryAndUnalignedElementOffsets) {
  std::vector<float> pool(64);
  for (int i = 0; i < 64; ++i) pool[static_cast<std::size_t>(i)] = 0.5f * i;
  const std::int32_t idx[4] = {63, 0, 17, 4};
  float fout[4];
  VecF32::Gather(pool.data(), VecI32::Load(idx)).Store(fout);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(fout[i], pool[static_cast<std::size_t>(idx[i])]);
  }

  std::vector<double> dpool(32);
  for (int i = 0; i < 32; ++i) dpool[static_cast<std::size_t>(i)] = -1.25 * i;
  const std::int32_t didx[4] = {31, 2, 2, 0};
  double dout[4];
  VecF64::Gather(dpool.data(), VecI32::Load(didx)).Store(dout);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(dout[i], dpool[static_cast<std::size_t>(didx[i])]);
  }
}

TEST(VmSimd, FmaAndHorizontalReductions) {
  const float a[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  const float b[4] = {0.5f, 0.5f, 0.5f, 0.5f};
  const float c[4] = {1.0f, 1.0f, 1.0f, 1.0f};
  float out[4];
  Fma(VecF32::Load(a), VecF32::Load(b), VecF32::Load(c)).Store(out);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], a[i] * b[i] + c[i]);

  const std::int32_t v[4] = {5, -9, 120, 3};
  EXPECT_EQ(HMin(VecI32::Load(v)), -9);
  EXPECT_EQ(HMax(VecI32::Load(v)), 120);
}

}  // namespace
}  // namespace haocl::simd
