#include "common/wire.h"

#include <gtest/gtest.h>

#include <random>

namespace haocl {
namespace {

TEST(WireTest, ScalarRoundTrip) {
  WireWriter w;
  w.WriteU8(0xAB);
  w.WriteU16(0xBEEF);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI32(-42);
  w.WriteI64(-1234567890123ll);
  w.WriteF64(3.14159);
  w.WriteBool(true);
  w.WriteBool(false);

  WireReader r(w.bytes());
  EXPECT_EQ(*r.ReadU8(), 0xAB);
  EXPECT_EQ(*r.ReadU16(), 0xBEEF);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*r.ReadI32(), -42);
  EXPECT_EQ(*r.ReadI64(), -1234567890123ll);
  EXPECT_DOUBLE_EQ(*r.ReadF64(), 3.14159);
  EXPECT_TRUE(*r.ReadBool());
  EXPECT_FALSE(*r.ReadBool());
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, StringAndBytesRoundTrip) {
  WireWriter w;
  w.WriteString("clEnqueueNDRangeKernel");
  w.WriteString("");
  std::vector<std::uint8_t> blob = {1, 2, 3, 0, 255};
  w.WriteByteVector(blob);

  WireReader r(w.bytes());
  EXPECT_EQ(*r.ReadString(), "clEnqueueNDRangeKernel");
  EXPECT_EQ(*r.ReadString(), "");
  EXPECT_EQ(*r.ReadByteVector(), blob);
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, FixedVectorRoundTrip) {
  WireWriter w;
  std::vector<std::uint64_t> sizes = {1024, 1, 7};
  w.WriteFixedVector(sizes);
  WireReader r(w.bytes());
  EXPECT_EQ(*r.ReadFixedVector<std::uint64_t>(), sizes);
}

TEST(WireTest, TruncatedFixedFails) {
  WireWriter w;
  w.WriteU16(7);
  WireReader r(w.bytes());
  auto v = r.ReadU32();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.code(), ErrorCode::kProtocolError);
}

TEST(WireTest, TruncatedStringFails) {
  WireWriter w;
  w.WriteU32(100);  // Claims 100 bytes, supplies none.
  WireReader r(w.bytes());
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(WireTest, TruncatedByteVectorFails) {
  WireWriter w;
  w.WriteU64(1ULL << 40);  // Absurd length.
  WireReader r(w.bytes());
  EXPECT_FALSE(r.ReadByteVector().ok());
}

TEST(WireTest, OversizedVectorCountFails) {
  WireWriter w;
  w.WriteU32(0xFFFFFFFF);
  WireReader r(w.bytes());
  EXPECT_FALSE(r.ReadFixedVector<std::uint64_t>().ok());
}

TEST(WireTest, EmptyReaderAtEnd) {
  WireReader r(nullptr, 0);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_FALSE(r.ReadU8().ok());
}

// Property: randomized mixed-field messages survive a round trip. This is
// the invariant the whole RPC protocol rests on.
TEST(WireTest, RandomizedRoundTripProperty) {
  std::mt19937_64 rng(12345);
  for (int iter = 0; iter < 200; ++iter) {
    WireWriter w;
    std::vector<int> kinds;
    std::vector<std::uint64_t> ints;
    std::vector<std::string> strings;
    std::vector<std::vector<std::uint8_t>> blobs;
    const int fields = 1 + static_cast<int>(rng() % 20);
    for (int i = 0; i < fields; ++i) {
      switch (rng() % 3) {
        case 0: {
          std::uint64_t v = rng();
          w.WriteU64(v);
          ints.push_back(v);
          kinds.push_back(0);
          break;
        }
        case 1: {
          std::string s(rng() % 64, 'a' + static_cast<char>(rng() % 26));
          w.WriteString(s);
          strings.push_back(s);
          kinds.push_back(1);
          break;
        }
        default: {
          std::vector<std::uint8_t> blob(rng() % 256);
          for (auto& b : blob) b = static_cast<std::uint8_t>(rng());
          w.WriteByteVector(blob);
          blobs.push_back(blob);
          kinds.push_back(2);
          break;
        }
      }
    }
    WireReader r(w.bytes());
    std::size_t ii = 0;
    std::size_t si = 0;
    std::size_t bi = 0;
    for (int kind : kinds) {
      if (kind == 0) {
        ASSERT_EQ(*r.ReadU64(), ints[ii++]);
      } else if (kind == 1) {
        ASSERT_EQ(*r.ReadString(), strings[si++]);
      } else {
        ASSERT_EQ(*r.ReadByteVector(), blobs[bi++]);
      }
    }
    ASSERT_TRUE(r.AtEnd());
  }
}

}  // namespace
}  // namespace haocl
