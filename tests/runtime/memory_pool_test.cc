// MemoryPool: the shared reservation API both the host's per-node ledgers
// and the node-side DeviceSession pools are built on.
#include "runtime/memory_pool.h"

#include <gtest/gtest.h>

namespace haocl::runtime {
namespace {

TEST(MemoryPoolTest, ReserveChargesOnlyNewBytes) {
  MemoryPool pool(1000);
  ASSERT_TRUE(pool.Reserve(1, 0, 100).ok());
  EXPECT_EQ(pool.resident_bytes(), 100u);
  // Overlapping re-reservation charges only the uncovered tail.
  ASSERT_TRUE(pool.Reserve(1, 50, 150).ok());
  EXPECT_EQ(pool.resident_bytes(), 150u);
  EXPECT_EQ(pool.ResidentOf(1), 150u);
  // Fully covered: free.
  ASSERT_TRUE(pool.Reserve(1, 0, 150).ok());
  EXPECT_EQ(pool.resident_bytes(), 150u);
  // A different buffer accounts separately.
  ASSERT_TRUE(pool.Reserve(2, 0, 100).ok());
  EXPECT_EQ(pool.resident_bytes(), 250u);
  EXPECT_EQ(pool.free_bytes(), 750u);
}

TEST(MemoryPoolTest, CapacityEnforcedAllOrNothing) {
  MemoryPool pool(100);
  ASSERT_TRUE(pool.Reserve(1, 0, 80).ok());
  // 30 new bytes would exceed 100: nothing is charged.
  EXPECT_EQ(pool.Reserve(2, 0, 30).code(),
            ErrorCode::kMemObjectAllocationFailure);
  EXPECT_EQ(pool.resident_bytes(), 80u);
  EXPECT_EQ(pool.ResidentOf(2), 0u);
  // Exactly filling the pool is fine.
  ASSERT_TRUE(pool.Reserve(2, 0, 20).ok());
  EXPECT_EQ(pool.free_bytes(), 0u);
}

TEST(MemoryPoolTest, ReserveAllIsTransactional) {
  MemoryPool pool(100);
  // The two ranges overlap: the transaction needs 60 bytes, not 80.
  ASSERT_TRUE(pool.ReserveAll({{1, 0, 40}, {1, 20, 60}}).ok());
  EXPECT_EQ(pool.resident_bytes(), 60u);
  // Second transaction would need 70 new bytes (> 40 free): refused whole,
  // including the part that would have fit.
  EXPECT_FALSE(pool.ReserveAll({{2, 0, 30}, {3, 0, 40}}).ok());
  EXPECT_EQ(pool.ResidentOf(2), 0u);
  EXPECT_EQ(pool.ResidentOf(3), 0u);
  EXPECT_EQ(pool.resident_bytes(), 60u);
}

TEST(MemoryPoolTest, ReleaseSplitsIntervals) {
  MemoryPool pool(1000);
  ASSERT_TRUE(pool.Reserve(1, 0, 100).ok());
  EXPECT_EQ(pool.Release(1, 25, 75), 50u);
  EXPECT_EQ(pool.resident_bytes(), 50u);
  auto spans = pool.ResidentSpansOf(1);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].begin, 0u);
  EXPECT_EQ(spans[0].end, 25u);
  EXPECT_EQ(spans[1].begin, 75u);
  EXPECT_EQ(spans[1].end, 100u);
  // Releasing an unmaterialized range is a no-op.
  EXPECT_EQ(pool.Release(1, 30, 60), 0u);
  EXPECT_EQ(pool.ReleaseBuffer(1), 50u);
  EXPECT_EQ(pool.resident_bytes(), 0u);
  EXPECT_TRUE(pool.ResidentBuffers().empty());
}

TEST(MemoryPoolTest, NewBytesInCostsWithoutMutating) {
  MemoryPool pool(1000);
  ASSERT_TRUE(pool.Reserve(7, 0, 100).ok());
  EXPECT_EQ(pool.NewBytesIn({{7, 50, 200}}), 100u);
  EXPECT_EQ(pool.NewBytesIn({{7, 50, 200}, {8, 0, 10}}), 110u);
  // Overlap within the query is counted once.
  EXPECT_EQ(pool.NewBytesIn({{8, 0, 30}, {8, 20, 50}}), 50u);
  EXPECT_EQ(pool.resident_bytes(), 100u);
}

TEST(MemoryPoolTest, UnboundedPoolNeverFails) {
  MemoryPool pool;  // Capacity 0 = unbounded.
  EXPECT_FALSE(pool.bounded());
  ASSERT_TRUE(pool.Reserve(1, 0, 1ull << 40).ok());
  EXPECT_EQ(pool.free_bytes(), ~0ull);
  EXPECT_EQ(pool.resident_bytes(), 1ull << 40);
}

TEST(MemoryPoolTest, ResidentBuffersReportsTotals) {
  MemoryPool pool(1000);
  ASSERT_TRUE(pool.ReserveAll({{3, 0, 10}, {1, 0, 30}, {2, 5, 25}}).ok());
  auto buffers = pool.ResidentBuffers();
  ASSERT_EQ(buffers.size(), 3u);
  EXPECT_EQ(buffers[0], (std::pair<std::uint64_t, std::uint64_t>{1, 30}));
  EXPECT_EQ(buffers[1], (std::pair<std::uint64_t, std::uint64_t>{2, 20}));
  EXPECT_EQ(buffers[2], (std::pair<std::uint64_t, std::uint64_t>{3, 10}));
}

}  // namespace
}  // namespace haocl::runtime
