// DeviceSession: the node-local execution engine, driven without any
// networking (the NMP wraps exactly this surface).
#include "runtime/device_session.h"

#include <gtest/gtest.h>

#include <cstring>

#include "driver/icd.h"

namespace haocl::runtime {
namespace {

class DeviceSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto driver = driver::IcdRegistry::Instance().Create(NodeType::kGpu);
    ASSERT_TRUE(driver.ok());
    driver_ = *std::move(driver);
    session_ = std::make_unique<DeviceSession>(driver_.get());
  }

  std::unique_ptr<driver::DeviceDriver> driver_;
  std::unique_ptr<DeviceSession> session_;
};

TEST_F(DeviceSessionTest, BufferLifecycle) {
  ASSERT_TRUE(session_->CreateBuffer(1, 64).ok());
  EXPECT_EQ(session_->buffer_count(), 1u);

  std::vector<std::uint8_t> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_TRUE(session_->WriteBuffer(1, 0, data).ok());
  auto read = session_->ReadBuffer(1, 0, 64);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);

  // Partial read/write with offsets.
  ASSERT_TRUE(session_->WriteBuffer(1, 60, {9, 9, 9, 9}).ok());
  auto tail = session_->ReadBuffer(1, 60, 4);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, (std::vector<std::uint8_t>{9, 9, 9, 9}));

  ASSERT_TRUE(session_->ReleaseBuffer(1).ok());
  EXPECT_EQ(session_->buffer_count(), 0u);
  EXPECT_FALSE(session_->ReleaseBuffer(1).ok());
}

TEST_F(DeviceSessionTest, BufferErrors) {
  EXPECT_EQ(session_->CreateBuffer(1, 0).code(),
            ErrorCode::kInvalidBufferSize);
  ASSERT_TRUE(session_->CreateBuffer(1, 16).ok());
  EXPECT_FALSE(session_->CreateBuffer(1, 16).ok());  // Duplicate id.
  EXPECT_EQ(session_->WriteBuffer(2, 0, {1}).code(),
            ErrorCode::kInvalidMemObject);
  EXPECT_EQ(session_->WriteBuffer(1, 15, {1, 2}).code(),
            ErrorCode::kInvalidValue);  // Past the end.
  EXPECT_FALSE(session_->ReadBuffer(1, 8, 9).ok());
}

TEST_F(DeviceSessionTest, CopyBuffer) {
  ASSERT_TRUE(session_->CreateBuffer(1, 16).ok());
  ASSERT_TRUE(session_->CreateBuffer(2, 16).ok());
  ASSERT_TRUE(session_->WriteBuffer(1, 0, {1, 2, 3, 4}).ok());
  net::CopyBufferRequest copy;
  copy.src_buffer_id = 1;
  copy.dst_buffer_id = 2;
  copy.src_offset = 0;
  copy.dst_offset = 8;
  copy.size = 4;
  ASSERT_TRUE(session_->CopyBuffer(copy).ok());
  auto read = session_->ReadBuffer(2, 8, 4);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, (std::vector<std::uint8_t>{1, 2, 3, 4}));

  copy.size = 100;
  EXPECT_FALSE(session_->CopyBuffer(copy).ok());
}

TEST_F(DeviceSessionTest, PullSliceStoresPeerBytes) {
  ASSERT_TRUE(session_->CreateBuffer(1, 16).ok());
  net::PullSliceRequest pull;
  pull.buffer_id = 1;
  pull.offset = 4;
  pull.size = 4;
  pull.source_node = 2;
  int fetches = 0;
  auto fetch = [&fetches](std::uint32_t peer, std::uint64_t buffer,
                          std::uint64_t offset, std::uint64_t size)
      -> Expected<std::vector<std::uint8_t>> {
    ++fetches;
    EXPECT_EQ(peer, 2u);
    EXPECT_EQ(buffer, 1u);
    EXPECT_EQ(offset, 4u);
    EXPECT_EQ(size, 4u);
    return std::vector<std::uint8_t>{9, 8, 7, 6};
  };
  ASSERT_TRUE(session_->PullSlice(pull, fetch).ok());
  EXPECT_EQ(fetches, 1);
  auto read = session_->ReadBuffer(1, 4, 4);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, (std::vector<std::uint8_t>{9, 8, 7, 6}));

  // Out-of-range and missing-buffer pulls fail BEFORE fetching from the
  // peer; fetch failures and short slices propagate.
  pull.offset = 14;
  EXPECT_EQ(session_->PullSlice(pull, fetch).code(),
            ErrorCode::kInvalidValue);
  pull.buffer_id = 99;
  pull.offset = 0;
  EXPECT_EQ(session_->PullSlice(pull, fetch).code(),
            ErrorCode::kInvalidMemObject);
  EXPECT_EQ(fetches, 1);
  pull.buffer_id = 1;
  auto unreachable = [](std::uint32_t, std::uint64_t, std::uint64_t,
                        std::uint64_t) -> Expected<std::vector<std::uint8_t>> {
    return Status(ErrorCode::kPeerUnreachable, "no link");
  };
  EXPECT_EQ(session_->PullSlice(pull, unreachable).code(),
            ErrorCode::kPeerUnreachable);
  auto truncated = [](std::uint32_t, std::uint64_t, std::uint64_t,
                      std::uint64_t) -> Expected<std::vector<std::uint8_t>> {
    return std::vector<std::uint8_t>{1};
  };
  EXPECT_EQ(session_->PullSlice(pull, truncated).code(),
            ErrorCode::kProtocolError);
}

TEST_F(DeviceSessionTest, PushSliceSendsLocalBytes) {
  ASSERT_TRUE(session_->CreateBuffer(1, 16).ok());
  ASSERT_TRUE(session_->WriteBuffer(1, 8, {5, 6, 7, 8}).ok());
  net::PushSliceRequest push;
  push.buffer_id = 1;
  push.offset = 8;
  push.size = 4;
  push.target_node = 1;
  std::vector<std::uint8_t> stored;
  auto store = [&stored](std::uint32_t peer, std::uint64_t buffer,
                         std::uint64_t offset,
                         std::vector<std::uint8_t> data) {
    EXPECT_EQ(peer, 1u);
    EXPECT_EQ(buffer, 1u);
    EXPECT_EQ(offset, 8u);
    stored = std::move(data);
    return Status::Ok();
  };
  ASSERT_TRUE(session_->PushSlice(push, store).ok());
  EXPECT_EQ(stored, (std::vector<std::uint8_t>{5, 6, 7, 8}));

  push.buffer_id = 99;
  EXPECT_EQ(session_->PushSlice(push, store).code(),
            ErrorCode::kInvalidMemObject);
  push.buffer_id = 1;
  push.offset = 14;
  EXPECT_FALSE(session_->PushSlice(push, store).ok());
  auto rejecting = [](std::uint32_t, std::uint64_t, std::uint64_t,
                      std::vector<std::uint8_t>) {
    return Status(ErrorCode::kPeerUnreachable, "no link");
  };
  push.offset = 0;
  EXPECT_EQ(session_->PushSlice(push, rejecting).code(),
            ErrorCode::kPeerUnreachable);
}

TEST_F(DeviceSessionTest, BuildAndLaunch) {
  auto build = session_->BuildProgram(5, R"(
    __kernel void doubler(__global int* data, int n) {
      int i = get_global_id(0);
      if (i < n) data[i] = data[i] * 2;
    })");
  ASSERT_EQ(build.status_code, 0) << build.build_log;
  ASSERT_EQ(build.kernel_names, std::vector<std::string>{"doubler"});

  const int n = 100;
  ASSERT_TRUE(session_->CreateBuffer(1, n * 4).ok());
  std::vector<std::uint8_t> bytes(n * 4);
  std::vector<std::int32_t> values(n);
  for (int i = 0; i < n; ++i) values[i] = i;
  std::memcpy(bytes.data(), values.data(), bytes.size());
  ASSERT_TRUE(session_->WriteBuffer(1, 0, bytes).ok());

  net::LaunchKernelRequest launch;
  launch.program_id = 5;
  launch.kernel_name = "doubler";
  net::WireKernelArg buffer_arg;
  buffer_arg.kind = net::WireKernelArg::Kind::kBuffer;
  buffer_arg.buffer_id = 1;
  net::WireKernelArg scalar_arg;
  scalar_arg.kind = net::WireKernelArg::Kind::kScalar;
  scalar_arg.scalar_bytes.resize(4);
  std::memcpy(scalar_arg.scalar_bytes.data(), &n, 4);
  launch.args = {buffer_arg, scalar_arg};
  launch.work_dim = 1;
  launch.global[0] = 128;

  auto reply = session_->LaunchKernel(launch);
  ASSERT_EQ(reply.status_code, 0) << reply.error_message;
  EXPECT_GT(reply.modeled_seconds, 0.0);
  EXPECT_GT(reply.modeled_joules, 0.0);

  auto read = session_->ReadBuffer(1, 0, n * 4);
  ASSERT_TRUE(read.ok());
  std::memcpy(values.data(), read->data(), read->size());
  for (int i = 0; i < n; ++i) ASSERT_EQ(values[i], 2 * i);

  EXPECT_EQ(session_->Load().kernels_executed, 1u);
}

TEST_F(DeviceSessionTest, BuildFailureCarriesLog) {
  auto build = session_->BuildProgram(1, "__kernel void broken( {");
  EXPECT_NE(build.status_code, 0);
  EXPECT_FALSE(build.build_log.empty());
  EXPECT_EQ(session_->program_count(), 0u);
}

TEST_F(DeviceSessionTest, LaunchErrors) {
  auto build = session_->BuildProgram(1, R"(
    __kernel void k(__global int* data, int n) { data[0] = n; })");
  ASSERT_EQ(build.status_code, 0);

  net::LaunchKernelRequest launch;
  launch.program_id = 99;  // No such program.
  launch.kernel_name = "k";
  EXPECT_EQ(session_->LaunchKernel(launch).status_code,
            static_cast<std::int32_t>(ErrorCode::kInvalidProgram));

  launch.program_id = 1;
  launch.kernel_name = "missing";
  EXPECT_EQ(session_->LaunchKernel(launch).status_code,
            static_cast<std::int32_t>(ErrorCode::kInvalidKernelName));

  launch.kernel_name = "k";
  launch.args = {};  // Wrong arity.
  EXPECT_EQ(session_->LaunchKernel(launch).status_code,
            static_cast<std::int32_t>(ErrorCode::kInvalidKernelArgs));

  // Dangling buffer id.
  net::WireKernelArg buffer_arg;
  buffer_arg.kind = net::WireKernelArg::Kind::kBuffer;
  buffer_arg.buffer_id = 42;
  net::WireKernelArg scalar_arg;
  scalar_arg.kind = net::WireKernelArg::Kind::kScalar;
  scalar_arg.scalar_bytes.resize(4);
  launch.args = {buffer_arg, scalar_arg};
  launch.global[0] = 1;
  EXPECT_EQ(session_->LaunchKernel(launch).status_code,
            static_cast<std::int32_t>(ErrorCode::kInvalidMemObject));

  // Wrong scalar width.
  ASSERT_TRUE(session_->CreateBuffer(42, 16).ok());
  scalar_arg.scalar_bytes.resize(2);
  launch.args = {buffer_arg, scalar_arg};
  EXPECT_EQ(session_->LaunchKernel(launch).status_code,
            static_cast<std::int32_t>(ErrorCode::kInvalidArgSize));
}

TEST_F(DeviceSessionTest, ScalarSignExtension) {
  auto build = session_->BuildProgram(1, R"(
    __kernel void store(__global long* out, int v, char c) {
      out[0] = v;
      out[1] = c;
    })");
  ASSERT_EQ(build.status_code, 0) << build.build_log;
  ASSERT_TRUE(session_->CreateBuffer(1, 16).ok());

  net::LaunchKernelRequest launch;
  launch.program_id = 1;
  launch.kernel_name = "store";
  net::WireKernelArg buffer_arg;
  buffer_arg.kind = net::WireKernelArg::Kind::kBuffer;
  buffer_arg.buffer_id = 1;
  net::WireKernelArg int_arg;
  int_arg.kind = net::WireKernelArg::Kind::kScalar;
  const std::int32_t v = -123456;
  int_arg.scalar_bytes.resize(4);
  std::memcpy(int_arg.scalar_bytes.data(), &v, 4);
  net::WireKernelArg char_arg;
  char_arg.kind = net::WireKernelArg::Kind::kScalar;
  const std::int8_t c = -7;
  char_arg.scalar_bytes.resize(1);
  std::memcpy(char_arg.scalar_bytes.data(), &c, 1);
  launch.args = {buffer_arg, int_arg, char_arg};
  launch.global[0] = 1;

  auto reply = session_->LaunchKernel(launch);
  ASSERT_EQ(reply.status_code, 0) << reply.error_message;
  auto read = session_->ReadBuffer(1, 0, 16);
  ASSERT_TRUE(read.ok());
  std::int64_t out[2];
  std::memcpy(out, read->data(), 16);
  EXPECT_EQ(out[0], -123456);
  EXPECT_EQ(out[1], -7);
}

TEST(DeviceSessionMemoryTest, PoolTracksResidencyAndEnforcesCapacity) {
  // A 1 KiB device: writes materialize regions, the ledger charges them,
  // and a write that would not fit fails as the device OOM it models.
  sim::DeviceSpec spec = sim::TeslaP4();
  spec.mem_capacity_bytes = 1024;
  auto driver = driver::MakeSimulatedDriver(spec);
  DeviceSession session(driver.get());
  ASSERT_TRUE(session.CreateBuffer(1, 4096).ok());  // Address space only.
  EXPECT_EQ(session.resident_bytes(), 0u);
  std::vector<std::uint8_t> chunk(512, 0xAB);
  ASSERT_TRUE(session.WriteBuffer(1, 0, chunk).ok());
  EXPECT_EQ(session.resident_bytes(), 512u);
  // Rewriting the same region charges nothing new.
  ASSERT_TRUE(session.WriteBuffer(1, 0, chunk).ok());
  EXPECT_EQ(session.resident_bytes(), 512u);
  ASSERT_TRUE(session.WriteBuffer(1, 512, chunk).ok());
  EXPECT_EQ(session.resident_bytes(), 1024u);
  // One more byte range would exceed the device.
  EXPECT_EQ(session.WriteBuffer(1, 1024, chunk).code(),
            ErrorCode::kMemObjectAllocationFailure);
  EXPECT_EQ(session.resident_bytes(), 1024u);
  EXPECT_EQ(session.Load().bytes_resident, 1024u);
  EXPECT_EQ(session.Load().mem_capacity_bytes, 1024u);

  // A host eviction notice releases the accounted bytes; a reservation
  // notice charges them back (discard migrations).
  net::MemoryNoticeRequest evict;
  evict.buffer_id = 1;
  evict.reserve = false;
  evict.regions = {{0, 512}};
  ASSERT_TRUE(session.MemoryNotice(evict).ok());
  EXPECT_EQ(session.resident_bytes(), 512u);
  net::MemoryNoticeRequest reserve;
  reserve.buffer_id = 1;
  reserve.reserve = true;
  reserve.regions = {{0, 256}};
  ASSERT_TRUE(session.MemoryNotice(reserve).ok());
  EXPECT_EQ(session.resident_bytes(), 768u);
  // Releasing the buffer frees its whole ledger.
  ASSERT_TRUE(session.ReleaseBuffer(1).ok());
  EXPECT_EQ(session.resident_bytes(), 0u);
}

TEST(DeviceSessionMemoryTest, KernelWritesChargeTheLedger) {
  sim::DeviceSpec spec = sim::TeslaP4();
  spec.mem_capacity_bytes = 1024;
  auto driver = driver::MakeSimulatedDriver(spec);
  DeviceSession session(driver.get());
  auto build = session.BuildProgram(1, R"(
    __kernel void fill(__global int* o) { o[get_global_id(0)] = 7; })");
  ASSERT_EQ(build.status_code, 0) << build.build_log;
  ASSERT_TRUE(session.CreateBuffer(1, 512).ok());
  net::LaunchKernelRequest launch;
  launch.program_id = 1;
  launch.kernel_name = "fill";
  net::WireKernelArg arg;
  arg.kind = net::WireKernelArg::Kind::kBuffer;
  arg.buffer_id = 1;
  arg.written_begin = 0;
  arg.written_end = 512;
  launch.args = {arg};
  launch.global[0] = 128;
  auto reply = session.LaunchKernel(launch);
  ASSERT_EQ(reply.status_code, 0) << reply.error_message;
  EXPECT_EQ(session.resident_bytes(), 512u);
  // A written range past the buffer end is rejected before execution.
  ASSERT_TRUE(session.CreateBuffer(2, 64).ok());
  arg.buffer_id = 2;
  arg.written_end = 128;
  launch.args = {arg};
  auto bad = session.LaunchKernel(launch);
  EXPECT_EQ(bad.status_code,
            static_cast<std::int32_t>(ErrorCode::kInvalidValue));
}

TEST(FpgaSessionTest, RequiresPrebuiltBitstream) {
  auto driver = driver::IcdRegistry::Instance().Create(NodeType::kFpga);
  ASSERT_TRUE(driver.ok());
  DeviceSession session(driver->get());
  auto build = session.BuildProgram(1, R"(
    __kernel void unknown_kernel(__global int* o) { o[0] = 1; })");
  ASSERT_EQ(build.status_code, 0);
  ASSERT_TRUE(session.CreateBuffer(1, 4).ok());
  net::LaunchKernelRequest launch;
  launch.program_id = 1;
  launch.kernel_name = "unknown_kernel";
  net::WireKernelArg arg;
  arg.kind = net::WireKernelArg::Kind::kBuffer;
  arg.buffer_id = 1;
  launch.args = {arg};
  launch.global[0] = 1;
  auto reply = session.LaunchKernel(launch);
  EXPECT_EQ(reply.status_code,
            static_cast<std::int32_t>(ErrorCode::kInvalidProgramExecutable));
  EXPECT_NE(reply.error_message.find("bitstream"), std::string::npos);
}

}  // namespace
}  // namespace haocl::runtime
