// MemoryPool: byte-accurate accounting of one device's memory tier.
//
// The pool tracks which byte ranges of which logical buffers are
// MATERIALIZED on a device (occupying its memory), independently of
// whether those bytes are fresh — a replica that went stale still holds
// silicon until it is evicted. Both sides of the wire share this one
// reservation API: the host runtime keeps a pool per node (the
// authoritative ledger its eviction policy and the scheduler's
// mem_free_bytes read), and each DeviceSession keeps its own (fed by the
// transfers it observes plus explicit reservation/eviction notices), so
// the two ledgers never disagree by construction.
//
// Reservations are all-or-nothing against the capacity: Reserve charges
// only the bytes not already resident and fails without side effects when
// they would not fit. Capacity 0 means unbounded (a device that never
// reported one).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/status.h"

namespace haocl::runtime {

class MemoryPool {
 public:
  // One byte range of one logical buffer.
  struct BufferRange {
    std::uint64_t buffer = 0;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };
  struct Span {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };

  MemoryPool() = default;
  explicit MemoryPool(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] bool bounded() const { return capacity_ != 0; }

  // Charges the not-yet-resident bytes of [begin, end). Fails with
  // kMemObjectAllocationFailure (charging nothing) when they would push
  // the pool past its capacity.
  Status Reserve(std::uint64_t buffer, std::uint64_t begin, std::uint64_t end);

  // Transactional multi-range reserve: either every range is charged or
  // none is. Ranges may overlap each other and existing residency; each
  // byte is charged at most once.
  Status ReserveAll(const std::vector<BufferRange>& ranges);

  // Releases the resident bytes of [begin, end) (no-op where nothing is
  // resident). Returns the number of bytes actually freed.
  std::uint64_t Release(std::uint64_t buffer, std::uint64_t begin,
                        std::uint64_t end);
  // Releases everything the buffer holds; returns the bytes freed.
  std::uint64_t ReleaseBuffer(std::uint64_t buffer);

  [[nodiscard]] std::uint64_t resident_bytes() const;
  [[nodiscard]] std::uint64_t free_bytes() const;  // ~0 when unbounded.
  [[nodiscard]] std::uint64_t ResidentOf(std::uint64_t buffer) const;
  // Bytes a Reserve of the ranges would newly charge right now.
  [[nodiscard]] std::uint64_t NewBytesIn(
      const std::vector<BufferRange>& ranges) const;
  // Every buffer with resident bytes, as (buffer, bytes) pairs.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  ResidentBuffers() const;
  // Resident spans of one buffer, in order (tests / spill planning).
  [[nodiscard]] std::vector<Span> ResidentSpansOf(std::uint64_t buffer) const;

 private:
  // Sorted disjoint non-adjacent intervals, keyed by begin.
  using IntervalMap = std::map<std::uint64_t, std::uint64_t>;

  // Bytes of [begin, end) not covered by `intervals`.
  static std::uint64_t UncoveredLocked(const IntervalMap& intervals,
                                       std::uint64_t begin, std::uint64_t end);
  // Costs the transaction without mutating buffers_: builds the
  // would-be interval sets of every touched buffer into `scratch`
  // (double-counting nothing, even across overlapping ranges) and
  // returns the newly covered bytes. Requires mutex_ held.
  std::uint64_t CostLocked(const std::vector<BufferRange>& ranges,
                           std::map<std::uint64_t, IntervalMap>* scratch)
      const;
  // Inserts [begin, end), merging; returns newly covered bytes.
  static std::uint64_t InsertLocked(IntervalMap& intervals,
                                    std::uint64_t begin, std::uint64_t end);
  // Removes [begin, end); returns bytes removed.
  static std::uint64_t EraseLocked(IntervalMap& intervals,
                                   std::uint64_t begin, std::uint64_t end);

  mutable std::mutex mutex_;
  std::uint64_t capacity_ = 0;
  std::uint64_t resident_ = 0;
  std::map<std::uint64_t, IntervalMap> buffers_;
};

}  // namespace haocl::runtime
