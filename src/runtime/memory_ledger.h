// MemoryLedger: the device-memory accounting surface a DeviceSession
// charges its materializations against.
//
// Historically every session owned a private MemoryPool sized to the
// device capacity, so two sessions sharing one physical node could
// jointly oversubscribe it — each ledger believed it had the whole
// device. The ledger interface breaks that: the NMP hands every session
// a view onto the node's single shared ledger (broker/node_broker.h),
// where capacity is enforced across ALL sessions and per-tenant quotas
// apply. A session constructed without a ledger (unit tests driving
// DeviceSession directly) falls back to a private PoolLedger, which
// reproduces the old single-tenant semantics exactly.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "runtime/memory_pool.h"

namespace haocl::runtime {

class MemoryLedger {
 public:
  virtual ~MemoryLedger() = default;

  // Charges the not-yet-resident bytes of [begin, end) of `buffer`.
  // Fails with kMemObjectAllocationFailure (charging nothing) when they
  // would exceed the device capacity or the session's quota.
  virtual Status Reserve(std::uint64_t buffer, std::uint64_t begin,
                         std::uint64_t end) = 0;
  // Releases the resident bytes of [begin, end); returns bytes freed.
  virtual std::uint64_t Release(std::uint64_t buffer, std::uint64_t begin,
                                std::uint64_t end) = 0;
  // Releases everything the buffer holds; returns bytes freed.
  virtual std::uint64_t ReleaseBuffer(std::uint64_t buffer) = 0;

  // Bytes THIS session has resident.
  [[nodiscard]] virtual std::uint64_t resident_bytes() const = 0;
  // The device capacity the ledger budgets against (0 = unbounded).
  [[nodiscard]] virtual std::uint64_t capacity() const = 0;
};

// Private single-session ledger over one MemoryPool: the pre-broker
// behaviour, kept for sessions that are not served through an NMP.
class PoolLedger final : public MemoryLedger {
 public:
  explicit PoolLedger(std::uint64_t capacity_bytes) : pool_(capacity_bytes) {}

  Status Reserve(std::uint64_t buffer, std::uint64_t begin,
                 std::uint64_t end) override {
    return pool_.Reserve(buffer, begin, end);
  }
  std::uint64_t Release(std::uint64_t buffer, std::uint64_t begin,
                        std::uint64_t end) override {
    return pool_.Release(buffer, begin, end);
  }
  std::uint64_t ReleaseBuffer(std::uint64_t buffer) override {
    return pool_.ReleaseBuffer(buffer);
  }
  [[nodiscard]] std::uint64_t resident_bytes() const override {
    return pool_.resident_bytes();
  }
  [[nodiscard]] std::uint64_t capacity() const override {
    return pool_.capacity();
  }

 private:
  MemoryPool pool_;
};

}  // namespace haocl::runtime
