#include "runtime/memory_pool.h"

#include <algorithm>

namespace haocl::runtime {

std::uint64_t MemoryPool::UncoveredLocked(const IntervalMap& intervals,
                                          std::uint64_t begin,
                                          std::uint64_t end) {
  if (begin >= end) return 0;
  std::uint64_t covered = 0;
  auto it = intervals.upper_bound(begin);
  if (it != intervals.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) it = prev;
  }
  for (; it != intervals.end() && it->first < end; ++it) {
    const std::uint64_t b = std::max(begin, it->first);
    const std::uint64_t e = std::min(end, it->second);
    if (e > b) covered += e - b;
  }
  return (end - begin) - covered;
}

std::uint64_t MemoryPool::InsertLocked(IntervalMap& intervals,
                                       std::uint64_t begin,
                                       std::uint64_t end) {
  if (begin >= end) return 0;
  const std::uint64_t added = UncoveredLocked(intervals, begin, end);
  if (added == 0) return 0;
  // Merge with any interval overlapping or touching [begin, end).
  auto it = intervals.upper_bound(begin);
  if (it != intervals.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) it = prev;
  }
  std::uint64_t new_begin = begin;
  std::uint64_t new_end = end;
  while (it != intervals.end() && it->first <= end) {
    new_begin = std::min(new_begin, it->first);
    new_end = std::max(new_end, it->second);
    it = intervals.erase(it);
  }
  intervals.emplace(new_begin, new_end);
  return added;
}

std::uint64_t MemoryPool::EraseLocked(IntervalMap& intervals,
                                      std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return 0;
  std::uint64_t removed = 0;
  auto it = intervals.upper_bound(begin);
  if (it != intervals.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) it = prev;
  }
  while (it != intervals.end() && it->first < end) {
    const std::uint64_t ib = it->first;
    const std::uint64_t ie = it->second;
    it = intervals.erase(it);
    if (ib < begin) intervals.emplace(ib, begin);
    if (ie > end) intervals.emplace(end, ie);
    removed += std::min(ie, end) - std::max(ib, begin);
  }
  return removed;
}

std::uint64_t MemoryPool::CostLocked(
    const std::vector<BufferRange>& ranges,
    std::map<std::uint64_t, IntervalMap>* scratch) const {
  std::uint64_t needed = 0;
  for (const BufferRange& range : ranges) {
    if (range.begin >= range.end) continue;
    auto it = scratch->find(range.buffer);
    if (it == scratch->end()) {
      auto existing = buffers_.find(range.buffer);
      it = scratch
               ->emplace(range.buffer, existing == buffers_.end()
                                           ? IntervalMap{}
                                           : existing->second)
               .first;
    }
    needed += InsertLocked(it->second, range.begin, range.end);
  }
  return needed;
}

Status MemoryPool::Reserve(std::uint64_t buffer, std::uint64_t begin,
                           std::uint64_t end) {
  return ReserveAll({{buffer, begin, end}});
}

Status MemoryPool::ReserveAll(const std::vector<BufferRange>& ranges) {
  std::lock_guard<std::mutex> lock(mutex_);
  // First pass: cost the transaction without mutating. Overlap between the
  // requested ranges themselves must not double-count, so cost against a
  // scratch copy of each touched buffer's interval set.
  std::map<std::uint64_t, IntervalMap> scratch;
  const std::uint64_t needed = CostLocked(ranges, &scratch);
  if (capacity_ != 0 && needed > capacity_ - std::min(capacity_, resident_)) {
    return Status(ErrorCode::kMemObjectAllocationFailure,
                  "reservation of " + std::to_string(needed) +
                      " new bytes exceeds device capacity (" +
                      std::to_string(resident_) + " of " +
                      std::to_string(capacity_) + " resident)");
  }
  for (auto& [buffer, intervals] : scratch) {
    buffers_[buffer] = std::move(intervals);
  }
  resident_ += needed;
  return Status::Ok();
}

std::uint64_t MemoryPool::Release(std::uint64_t buffer, std::uint64_t begin,
                                  std::uint64_t end) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buffers_.find(buffer);
  if (it == buffers_.end()) return 0;
  const std::uint64_t removed = EraseLocked(it->second, begin, end);
  if (it->second.empty()) buffers_.erase(it);
  resident_ -= removed;
  return removed;
}

std::uint64_t MemoryPool::ReleaseBuffer(std::uint64_t buffer) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buffers_.find(buffer);
  if (it == buffers_.end()) return 0;
  std::uint64_t removed = 0;
  for (const auto& [begin, end] : it->second) removed += end - begin;
  buffers_.erase(it);
  resident_ -= removed;
  return removed;
}

std::uint64_t MemoryPool::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_;
}

std::uint64_t MemoryPool::free_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) return ~0ull;
  return capacity_ - std::min(capacity_, resident_);
}

std::uint64_t MemoryPool::ResidentOf(std::uint64_t buffer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buffers_.find(buffer);
  if (it == buffers_.end()) return 0;
  std::uint64_t total = 0;
  for (const auto& [begin, end] : it->second) total += end - begin;
  return total;
}

std::uint64_t MemoryPool::NewBytesIn(
    const std::vector<BufferRange>& ranges) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::uint64_t, IntervalMap> scratch;
  return CostLocked(ranges, &scratch);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
MemoryPool::ResidentBuffers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(buffers_.size());
  for (const auto& [buffer, intervals] : buffers_) {
    std::uint64_t total = 0;
    for (const auto& [begin, end] : intervals) total += end - begin;
    if (total > 0) out.emplace_back(buffer, total);
  }
  return out;
}

std::vector<MemoryPool::Span> MemoryPool::ResidentSpansOf(
    std::uint64_t buffer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Span> out;
  auto it = buffers_.find(buffer);
  if (it == buffers_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [begin, end] : it->second) out.push_back({begin, end});
  return out;
}

}  // namespace haocl::runtime
