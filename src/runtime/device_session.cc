#include "runtime/device_session.h"

#include <cstring>

namespace haocl::runtime {
namespace {

Status NoSuchBuffer(std::uint64_t id) {
  return Status(ErrorCode::kInvalidMemObject,
                "no buffer with id " + std::to_string(id));
}

}  // namespace

Status DeviceSession::CreateBuffer(std::uint64_t buffer_id,
                                   std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (size == 0) {
    return Status(ErrorCode::kInvalidBufferSize, "zero-sized buffer");
  }
  if (buffers_.count(buffer_id) != 0) {
    return Status(ErrorCode::kInvalidValue,
                  "buffer id " + std::to_string(buffer_id) + " already exists");
  }
  // A real allocation can fail; surface that as the OpenCL error rather
  // than letting bad_alloc escape across the protocol boundary.
  try {
    buffers_[buffer_id].resize(size, 0);
  } catch (const std::bad_alloc&) {
    buffers_.erase(buffer_id);
    return Status(ErrorCode::kMemObjectAllocationFailure,
                  "cannot allocate " + std::to_string(size) + " bytes");
  }
  bytes_allocated_ += size;
  return Status::Ok();
}

Status DeviceSession::WriteBuffer(std::uint64_t buffer_id,
                                  std::uint64_t offset,
                                  const std::vector<std::uint8_t>& data) {
  std::lock_guard<std::mutex> lock(mutex_);
  return WriteBufferLocked(buffer_id, offset, data);
}

Status DeviceSession::WriteBufferLocked(
    std::uint64_t buffer_id, std::uint64_t offset,
    const std::vector<std::uint8_t>& data) {
  auto it = buffers_.find(buffer_id);
  if (it == buffers_.end()) return NoSuchBuffer(buffer_id);
  if (offset + data.size() > it->second.size()) {
    return Status(ErrorCode::kInvalidValue,
                  "write beyond buffer end: offset " + std::to_string(offset) +
                      " + " + std::to_string(data.size()) + " > " +
                      std::to_string(it->second.size()));
  }
  // Arriving bytes materialize device memory: charge the pool before
  // touching the replica. The host's per-node ledger charges the same
  // range around this transfer, so a failure here means the host
  // mis-budgeted — surface it as the device OOM it models.
  HAOCL_RETURN_IF_ERROR(
      ledger_->Reserve(buffer_id, offset, offset + data.size()));
  std::memcpy(it->second.data() + offset, data.data(), data.size());
  return Status::Ok();
}

Expected<std::vector<std::uint8_t>> DeviceSession::ReadBuffer(
    std::uint64_t buffer_id, std::uint64_t offset, std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ReadBufferLocked(buffer_id, offset, size);
}

Expected<std::vector<std::uint8_t>> DeviceSession::ReadBufferLocked(
    std::uint64_t buffer_id, std::uint64_t offset, std::uint64_t size) {
  auto it = buffers_.find(buffer_id);
  if (it == buffers_.end()) return NoSuchBuffer(buffer_id);
  if (offset + size > it->second.size()) {
    return Status(ErrorCode::kInvalidValue, "read beyond buffer end");
  }
  return std::vector<std::uint8_t>(it->second.begin() + offset,
                                   it->second.begin() + offset + size);
}

Status DeviceSession::CopyBuffer(const net::CopyBufferRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto src = buffers_.find(request.src_buffer_id);
  if (src == buffers_.end()) return NoSuchBuffer(request.src_buffer_id);
  auto dst = buffers_.find(request.dst_buffer_id);
  if (dst == buffers_.end()) return NoSuchBuffer(request.dst_buffer_id);
  if (request.src_offset + request.size > src->second.size() ||
      request.dst_offset + request.size > dst->second.size()) {
    return Status(ErrorCode::kInvalidValue, "copy out of range");
  }
  HAOCL_RETURN_IF_ERROR(ledger_->Reserve(request.dst_buffer_id,
                                      request.dst_offset,
                                      request.dst_offset + request.size));
  std::memmove(dst->second.data() + request.dst_offset,
               src->second.data() + request.src_offset, request.size);
  return Status::Ok();
}

Status DeviceSession::ReleaseBuffer(std::uint64_t buffer_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buffers_.find(buffer_id);
  if (it == buffers_.end()) return NoSuchBuffer(buffer_id);
  bytes_allocated_ -= it->second.size();
  ledger_->ReleaseBuffer(buffer_id);
  buffers_.erase(it);
  return Status::Ok();
}

Status DeviceSession::MemoryNotice(const net::MemoryNoticeRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buffers_.find(request.buffer_id);
  if (it == buffers_.end()) return NoSuchBuffer(request.buffer_id);
  for (const net::MemoryRegion& region : request.regions) {
    if (region.size == 0 ||
        region.offset + region.size > it->second.size()) {
      return Status(ErrorCode::kInvalidValue,
                    "memory notice region beyond buffer end");
    }
    if (request.reserve) {
      HAOCL_RETURN_IF_ERROR(ledger_->Reserve(request.buffer_id, region.offset,
                                          region.offset + region.size));
    } else {
      ledger_->Release(request.buffer_id, region.offset,
                    region.offset + region.size);
    }
  }
  return Status::Ok();
}

net::BuildProgramReply DeviceSession::BuildProgram(std::uint64_t program_id,
                                                   const std::string& source) {
  std::lock_guard<std::mutex> lock(mutex_);
  net::BuildProgramReply reply;
  std::string build_log;
  auto module = driver_->Build(source, &build_log);
  if (!module.ok()) {
    reply.status_code =
        static_cast<std::int32_t>(ErrorCode::kBuildProgramFailure);
    reply.build_log = build_log.empty() ? module.status().message() : build_log;
    return reply;
  }
  ProgramEntry entry;
  entry.module = *std::move(module);
  entry.build_log = build_log;
  reply.kernel_names = entry.module->KernelNames();
  programs_[program_id] = std::move(entry);
  return reply;
}

Status DeviceSession::ReleaseProgram(std::uint64_t program_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (programs_.erase(program_id) == 0) {
    return Status(ErrorCode::kInvalidProgram,
                  "no program with id " + std::to_string(program_id));
  }
  return Status::Ok();
}

void DeviceSession::RevokeChunks(std::uint64_t launch_id,
                                 const std::vector<std::uint64_t>& chunk_ids) {
  if (launch_id == 0) return;
  std::lock_guard<std::mutex> lock(revoked_mutex_);
  auto& set = revoked_[launch_id];
  for (std::uint64_t id : chunk_ids) set.insert(id);
}

std::size_t DeviceSession::revoked_count(std::uint64_t launch_id) const {
  std::lock_guard<std::mutex> lock(revoked_mutex_);
  auto it = revoked_.find(launch_id);
  return it == revoked_.end() ? 0 : it->second.size();
}

net::LaunchKernelReply DeviceSession::LaunchKernel(
    const net::LaunchKernelRequest& request) {
  // Revocation check before any state is touched: a stolen/re-queued chunk
  // must leave no trace here. The entry is CONSUMED by the skip — a revoke
  // targets the one execution that was queued when it arrived, so a later
  // re-targeting of the same chunk back to this node runs normally instead
  // of being skipped forever.
  if (request.elastic_launch_id != 0) {
    std::lock_guard<std::mutex> revoked_lock(revoked_mutex_);
    auto it = revoked_.find(request.elastic_launch_id);
    if (it != revoked_.end() &&
        it->second.count(request.elastic_chunk_id) != 0) {
      it->second.erase(request.elastic_chunk_id);
      if (it->second.empty()) revoked_.erase(it);
      net::LaunchKernelReply reply;
      reply.status_code = static_cast<std::int32_t>(ErrorCode::kChunkRevoked);
      reply.error_message = "chunk " +
                            std::to_string(request.elastic_chunk_id) +
                            " of launch " +
                            std::to_string(request.elastic_launch_id) +
                            " was revoked; skipped";
      return reply;
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  net::LaunchKernelReply reply;
  auto fail = [&reply](const Status& status) {
    reply.status_code = static_cast<std::int32_t>(status.code());
    reply.error_message = status.message();
    return reply;
  };

  auto program = programs_.find(request.program_id);
  if (program == programs_.end()) {
    return fail(Status(ErrorCode::kInvalidProgram,
                       "no program " + std::to_string(request.program_id)));
  }
  const oclc::Module& module = *program->second.module;
  const oclc::CompiledFunction* kernel =
      module.FindKernel(request.kernel_name);
  if (kernel == nullptr) {
    return fail(Status(ErrorCode::kInvalidKernelName,
                       "no kernel '" + request.kernel_name + "'"));
  }
  if (request.args.size() != kernel->params.size()) {
    return fail(Status(ErrorCode::kInvalidKernelArgs,
                       "kernel '" + request.kernel_name + "' takes " +
                           std::to_string(kernel->params.size()) +
                           " args, got " +
                           std::to_string(request.args.size())));
  }

  // Bind wire arguments to VM bindings.
  std::vector<oclc::ArgBinding> bindings;
  bindings.reserve(request.args.size());
  for (std::size_t i = 0; i < request.args.size(); ++i) {
    const net::WireKernelArg& arg = request.args[i];
    const oclc::KernelArgInfo& param = kernel->params[i];
    switch (arg.kind) {
      case net::WireKernelArg::Kind::kBuffer: {
        auto it = buffers_.find(arg.buffer_id);
        if (it == buffers_.end()) {
          return fail(NoSuchBuffer(arg.buffer_id));
        }
        // Kernel outputs materialize device memory with no transfer this
        // session could observe: charge the written range now, mirroring
        // the host ledger's launch-epilogue charge.
        if (arg.written_end > arg.written_begin) {
          if (arg.written_end > it->second.size()) {
            return fail(Status(ErrorCode::kInvalidValue,
                               "written range beyond buffer end"));
          }
          Status reserved = ledger_->Reserve(arg.buffer_id, arg.written_begin,
                                          arg.written_end);
          if (!reserved.ok()) return fail(reserved);
        }
        bindings.push_back(oclc::ArgBinding::Buffer(it->second.data(),
                                                    it->second.size()));
        break;
      }
      case net::WireKernelArg::Kind::kScalar: {
        if (param.type.is_pointer) {
          return fail(Status(ErrorCode::kInvalidArgValue,
                             "scalar bound to pointer arg " +
                                 std::to_string(i)));
        }
        const std::size_t want = oclc::ScalarSize(param.type.scalar);
        if (arg.scalar_bytes.size() != want) {
          return fail(Status(ErrorCode::kInvalidArgSize,
                             "arg " + std::to_string(i) + " of '" +
                                 request.kernel_name + "' expects " +
                                 std::to_string(want) + " bytes, got " +
                                 std::to_string(arg.scalar_bytes.size())));
        }
        // Reinterpret the raw bytes exactly as clSetKernelArg received
        // them, using the declared parameter type.
        oclc::ArgBinding binding;
        binding.kind = oclc::ArgBinding::Kind::kScalar;
        binding.scalar_type = param.type.scalar;
        std::uint8_t raw[8] = {0};
        std::memcpy(raw, arg.scalar_bytes.data(), want);
        switch (param.type.scalar) {
          case oclc::ScalarType::kF32: {
            float f;
            std::memcpy(&f, raw, 4);
            binding.scalar.f = f;
            break;
          }
          case oclc::ScalarType::kF64: {
            double d;
            std::memcpy(&d, raw, 8);
            binding.scalar.f = d;
            break;
          }
          default: {
            // Integers: zero-extend then sign-extend per type.
            std::uint64_t u = 0;
            std::memcpy(&u, raw, want);
            if (oclc::IsSignedInt(param.type.scalar)) {
              const int bits = static_cast<int>(want) * 8;
              const std::int64_t shifted =
                  static_cast<std::int64_t>(u << (64 - bits));
              binding.scalar.i = shifted >> (64 - bits);
            } else {
              binding.scalar.u = u;
            }
            break;
          }
        }
        bindings.push_back(binding);
        break;
      }
      case net::WireKernelArg::Kind::kLocalSize:
        bindings.push_back(oclc::ArgBinding::LocalMem(arg.local_size));
        break;
    }
  }

  oclc::NDRange range;
  range.work_dim = request.work_dim;
  for (int d = 0; d < 3; ++d) {
    range.global[d] = request.global[d];
    range.local[d] = request.local[d];
    range.offset[d] = request.global_offset[d];
  }
  range.local_specified = request.local_specified;

  driver::LaunchProfile profile;
  // Host-supplied analytic work estimate (shard-scaled): the timing model
  // profiles the work the host accounts, not the static guess.
  sim::KernelCost hint_cost;
  const sim::KernelCost* cost_hint = nullptr;
  if (request.has_cost_hint) {
    hint_cost.flops = request.hint_flops;
    hint_cost.bytes = request.hint_bytes;
    hint_cost.work_items = request.hint_work_items;
    hint_cost.irregular = request.hint_irregular;
    cost_hint = &hint_cost;
  }
  // Execute WITHOUT the session lock: peer slice exchange (and any other
  // channel sharing this session) must not stall behind a long kernel.
  // The bindings' buffer pointers stay valid — unordered_map nodes are
  // stable, and the host's hazard ordering keeps the buffers this kernel
  // uses alive and unwritten until the launch reply. The module is pinned
  // by the shared_ptr copy below.
  const std::shared_ptr<const oclc::Module> pinned = program->second.module;
  lock.unlock();
  Status launched = driver_->Launch(*pinned, request.kernel_name, bindings,
                                    range, &profile, cost_hint);
  lock.lock();
  if (!launched.ok()) return fail(launched);

  reply.modeled_seconds = profile.modeled_seconds;
  reply.modeled_joules = profile.modeled_joules;
  reply.flops = profile.flops;
  reply.bytes_accessed = profile.bytes_accessed;
  ++kernels_executed_;
  busy_seconds_total_ += profile.modeled_seconds;
  vm_instructions_total_ += profile.vm_instructions;
  vm_batch_steps_total_ += profile.vm_batch_steps;
  vm_simd_steps_total_ += profile.vm_simd_steps;
  vm_masked_steps_total_ += profile.vm_masked_steps;
  vm_bailouts_total_ += profile.vm_bailouts;
  return reply;
}

Status DeviceSession::PullSlice(const net::PullSliceRequest& request,
                                const PeerFetch& fetch) {
  // Phase 1: validate the local replica before going to the peer, so a
  // missing allocation fails fast without a network round-trip.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = buffers_.find(request.buffer_id);
    if (it == buffers_.end()) return NoSuchBuffer(request.buffer_id);
    if (request.offset + request.size > it->second.size()) {
      return Status(ErrorCode::kInvalidValue, "pull slice out of range");
    }
  }
  // Phase 2: fetch WITHOUT the session lock. Two nodes cross-pulling from
  // each other would otherwise each hold their own lock while waiting for
  // the peer's ReadBuffer, which needs that lock — a distributed deadlock.
  auto bytes = fetch(request.source_node, request.buffer_id, request.offset,
                     request.size);
  if (!bytes.ok()) return bytes.status();
  if (bytes->size() != request.size) {
    return Status(ErrorCode::kProtocolError, "short peer slice");
  }
  // Phase 3: re-validate (the buffer may have been released mid-fetch) and
  // store.
  std::lock_guard<std::mutex> lock(mutex_);
  return WriteBufferLocked(request.buffer_id, request.offset, *bytes);
}

Status DeviceSession::PushSlice(const net::PushSliceRequest& request,
                                const PeerStore& store) {
  std::vector<std::uint8_t> bytes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto local = ReadBufferLocked(request.buffer_id, request.offset,
                                  request.size);
    if (!local.ok()) return local.status();
    bytes = *std::move(local);
  }
  // Lock dropped across the peer store (see PullSlice).
  return store(request.target_node, request.buffer_id, request.offset,
               std::move(bytes));
}

net::LoadReply DeviceSession::Load() const {
  std::lock_guard<std::mutex> lock(mutex_);
  net::LoadReply reply;
  reply.queue_depth = 0;  // Filled by the NMP, which owns the queue.
  reply.buffers_held = buffers_.size();
  reply.bytes_allocated = bytes_allocated_;
  reply.bytes_resident = ledger_->resident_bytes();
  reply.mem_capacity_bytes = ledger_->capacity();
  reply.busy_seconds_total = busy_seconds_total_;
  reply.kernels_executed = kernels_executed_;
  return reply;
}

}  // namespace haocl::runtime
