// DeviceSession: the node-local OpenCL execution engine.
//
// One DeviceSession exists per (device node, user session). It owns the
// node-side state a forwarded OpenCL application needs: device buffers,
// built programs, and the driver handle, and it executes the command stream
// in order (the in-order command-queue semantics OpenCL guarantees). The
// NMP is a thin protocol shell around this class; unit tests drive it
// directly without any networking.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "driver/device_driver.h"
#include "net/protocol.h"
#include "runtime/memory_ledger.h"

namespace haocl::runtime {

class DeviceSession {
 public:
  // The driver is shared with other sessions on the same node (a "shared"
  // device in the paper's terms); the session only owns its own objects.
  // Every byte range that materializes here (host writes, peer slices,
  // kernel outputs) is charged against `ledger`, and host eviction
  // notices release it — the node-side half of the tiered-memory ledger.
  // When the NMP supplies a ledger it is a view onto the node's shared
  // broker ledger (capacity enforced across all sessions, quotas apply);
  // without one, the session budgets a private pool at device capacity,
  // the pre-broker single-tenant behaviour. A supplied ledger must
  // outlive the session.
  explicit DeviceSession(driver::DeviceDriver* driver,
                         MemoryLedger* ledger = nullptr)
      : driver_(driver),
        owned_ledger_(ledger == nullptr
                          ? std::make_unique<PoolLedger>(
                                driver->spec().mem_capacity_bytes)
                          : nullptr),
        ledger_(ledger == nullptr ? owned_ledger_.get() : ledger) {}

  DeviceSession(const DeviceSession&) = delete;
  DeviceSession& operator=(const DeviceSession&) = delete;

  // ---- Buffers ----------------------------------------------------------
  Status CreateBuffer(std::uint64_t buffer_id, std::uint64_t size);
  Status WriteBuffer(std::uint64_t buffer_id, std::uint64_t offset,
                     const std::vector<std::uint8_t>& data);
  Expected<std::vector<std::uint8_t>> ReadBuffer(std::uint64_t buffer_id,
                                                 std::uint64_t offset,
                                                 std::uint64_t size);
  Status CopyBuffer(const net::CopyBufferRequest& request);
  Status ReleaseBuffer(std::uint64_t buffer_id);

  // ---- Programs ---------------------------------------------------------
  net::BuildProgramReply BuildProgram(std::uint64_t program_id,
                                      const std::string& source);
  Status ReleaseProgram(std::uint64_t program_id);

  // ---- Kernels ----------------------------------------------------------
  // A request tagged with a non-zero elastic_launch_id is a chunk of an
  // elastic launch: if the host revoked that (launch, chunk) before the
  // node got to it (stolen by a peer, or re-queued after a failure), the
  // launch is skipped and the reply carries kChunkRevoked so the caller
  // knows no bytes were written.
  net::LaunchKernelReply LaunchKernel(const net::LaunchKernelRequest& request);

  // Marks chunks of an elastic launch as revoked so queued-but-unstarted
  // sub-launches for them are skipped. Safe to call from the connection's
  // receive path while a launch executes (own mutex, never nested).
  void RevokeChunks(std::uint64_t launch_id,
                    const std::vector<std::uint64_t>& chunk_ids);
  // Revoked chunks recorded for `launch_id` (tests/diagnostics).
  [[nodiscard]] std::size_t revoked_count(std::uint64_t launch_id) const;

  // ---- Node-to-node slice exchange --------------------------------------
  // Transport hooks the NMP supplies: fetch a byte range of a buffer from a
  // peer node / store one on a peer node. The session itself stays
  // transport-free.
  using PeerFetch = std::function<Expected<std::vector<std::uint8_t>>(
      std::uint32_t peer, std::uint64_t buffer_id, std::uint64_t offset,
      std::uint64_t size)>;
  using PeerStore =
      std::function<Status(std::uint32_t peer, std::uint64_t buffer_id,
                           std::uint64_t offset,
                           std::vector<std::uint8_t> data)>;

  // Pulls [offset, offset+size) of `buffer_id` from the request's source
  // peer into the local replica. The session lock is NOT held across the
  // peer fetch, so two nodes cross-pulling from each other cannot deadlock
  // — the slice range is validated before and re-validated after the
  // fetch.
  Status PullSlice(const net::PullSliceRequest& request,
                   const PeerFetch& fetch);
  // Sends [offset, offset+size) of the local replica to the request's
  // target peer (lock dropped during the store, mirroring PullSlice).
  Status PushSlice(const net::PushSliceRequest& request,
                   const PeerStore& store);

  // ---- Tiered memory ----------------------------------------------------
  // Applies a host reservation/eviction notice to the session's memory
  // pool (see net::MemoryNoticeRequest).
  Status MemoryNotice(const net::MemoryNoticeRequest& request);

  // ---- Introspection ----------------------------------------------------
  [[nodiscard]] net::LoadReply Load() const;
  [[nodiscard]] const sim::DeviceSpec& spec() const { return driver_->spec(); }
  [[nodiscard]] std::size_t buffer_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return buffers_.size();
  }
  [[nodiscard]] std::size_t program_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return programs_.size();
  }
  // Bytes of buffer regions THIS session materialized in device memory
  // per its ledger (what LoadReply.bytes_resident reports).
  [[nodiscard]] std::uint64_t resident_bytes() const {
    return ledger_->resident_bytes();
  }
  // Cumulative VM execution counters across this session's launches
  // (exact retired work-item instructions, not the static-mix estimate;
  // zero contribution from native-binary launches). The batch ratio —
  // instructions per dispatch — is the amortization the lane-batch
  // engine achieved.
  [[nodiscard]] std::uint64_t vm_instructions_total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return vm_instructions_total_;
  }
  [[nodiscard]] std::uint64_t vm_batch_steps_total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return vm_batch_steps_total_;
  }
  [[nodiscard]] std::uint64_t vm_bailouts_total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return vm_bailouts_total_;
  }
  [[nodiscard]] std::uint64_t vm_simd_steps_total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return vm_simd_steps_total_;
  }
  [[nodiscard]] std::uint64_t vm_masked_steps_total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return vm_masked_steps_total_;
  }

 private:
  struct ProgramEntry {
    std::shared_ptr<const oclc::Module> module;
    std::string build_log;
  };

  // Require mutex_ held.
  Status WriteBufferLocked(std::uint64_t buffer_id, std::uint64_t offset,
                           const std::vector<std::uint8_t>& data);
  Expected<std::vector<std::uint8_t>> ReadBufferLocked(std::uint64_t buffer_id,
                                                       std::uint64_t offset,
                                                       std::uint64_t size);

  driver::DeviceDriver* driver_;
  // Fallback private ledger when none is injected (see ctor).
  std::unique_ptr<PoolLedger> owned_ledger_;
  // Device-memory ledger (internally synchronized; safe under mutex_,
  // which never nests inside it).
  MemoryLedger* ledger_;
  // One session is now reachable from several connections at once (the
  // host's channel plus peer slice-exchange channels), so every public
  // entry point locks.
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> buffers_;
  std::unordered_map<std::uint64_t, ProgramEntry> programs_;

  // Elastic revocations, guarded by their own leaf mutex so the receive
  // path can record one while mutex_ is held by a running launch.
  mutable std::mutex revoked_mutex_;
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>>
      revoked_;  // launch_id -> chunk ids.

  // Monitor counters the scheduler's resource monitor reads.
  std::uint64_t bytes_allocated_ = 0;
  std::uint64_t kernels_executed_ = 0;
  double busy_seconds_total_ = 0.0;
  // VM execution totals (see the accessors above).
  std::uint64_t vm_instructions_total_ = 0;
  std::uint64_t vm_batch_steps_total_ = 0;
  std::uint64_t vm_simd_steps_total_ = 0;
  std::uint64_t vm_masked_steps_total_ = 0;
  std::uint64_t vm_bailouts_total_ = 0;
};

}  // namespace haocl::runtime
