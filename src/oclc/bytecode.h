// Stack bytecode the codegen lowers the AST into and the VM executes.
//
// Why bytecode instead of a tree-walking interpreter: OpenCL work-groups
// synchronize at barrier() — every work-item in the group must reach the
// barrier before any proceeds. With an explicit program counter and operand
// stack per work-item, suspending at a barrier is just saving the machine
// state, which a recursive tree-walker cannot do without coroutines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oclc/type.h"

namespace haocl::oclc {

enum class Opcode : std::uint8_t {
  kNop,
  kPushConst,    // a = literal pool index            -> push
  kLoadLocal,    // a = slot                          -> push
  kStoreLocal,   // a = slot                          pop ->
  kDup,          // duplicate top of stack
  kPop,          // discard top of stack
  kLoadMem,      // type = element type; pop addr     -> push value
  kStoreMem,     // type = element type; pop value, addr ->
  kPtrAdd,       // a = element size; pop index(i64), ptr -> push ptr'
  kAdd, kSub, kMul, kDiv, kMod,        // type-tagged arithmetic
  kNeg,
  kBitAnd, kBitOr, kBitXor, kShl, kShr, kBitNot,
  kEq, kNe, kLt, kLe, kGt, kGe,        // push bool
  kLogicalNot,
  kConvert,      // type = source; a = target ScalarType
  kJump,         // a = target pc
  kJumpIfFalse,  // a = target pc; pop bool
  kJumpIfTrue,   // a = target pc; pop bool
  kCall,         // a = function index; args on stack
  kCallBuiltin,  // a = builtin id; b = argc
  kReturn,       // b = 1 if a value is on the stack
  kBarrier,      // work-group barrier
};

// Batchability metadata the codegen attaches to instructions. The lane-batch
// engine (vm_batch.cc) runs a whole work-group in lockstep; a branch whose
// condition is group-uniform (proven by codegen's conservative analysis)
// lets the engine take lane 0's direction without scanning every lane.
inline constexpr std::uint8_t kInstrFlagUniformBranch = 1u << 0;
// On kLoadLocal: the slot's value is an affine function of the lane id
// (stride may be 0), per codegen's lane-dependence fixpoint. The batch
// engine uses this to classify indexed-load offsets as
// contiguous/strided/uniform and hoist the per-lane bounds test to one
// whole-chunk range precheck.
inline constexpr std::uint8_t kInstrFlagLaneAffine = 1u << 1;
// On kLoadLocal: the slot is group-uniform (affine with stride 0).
inline constexpr std::uint8_t kInstrFlagLaneUniform = 1u << 2;
// On a forward kJumpIfFalse: the guarded region is straight-line and
// side-effect-maskable, and the jump target IS the re-convergence pc.
// Codegen sets this for `if`-without-`else` bodies built only from
// maskable opcodes; the batch engine may then execute the region under a
// partial-lane mask instead of bailing out on divergence.
inline constexpr std::uint8_t kInstrFlagMaskedRegion = 1u << 3;

// The opcode subset allowed inside a masked divergent region: straight-line
// data flow whose side effects (local/memory stores, builtin calls) the
// engine can suppress per-lane. No control transfer, no user calls, no
// barriers. Shared by codegen's region flagging and the batch engine's
// masked executor so the two never drift apart.
[[nodiscard]] inline constexpr bool IsMaskableOp(Opcode op) {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kPushConst:
    case Opcode::kLoadLocal:
    case Opcode::kStoreLocal:
    case Opcode::kDup:
    case Opcode::kPop:
    case Opcode::kLoadMem:
    case Opcode::kStoreMem:
    case Opcode::kPtrAdd:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kMod:
    case Opcode::kNeg:
    case Opcode::kBitAnd:
    case Opcode::kBitOr:
    case Opcode::kBitXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kBitNot:
    case Opcode::kEq:
    case Opcode::kNe:
    case Opcode::kLt:
    case Opcode::kLe:
    case Opcode::kGt:
    case Opcode::kGe:
    case Opcode::kLogicalNot:
    case Opcode::kConvert:
    case Opcode::kCallBuiltin:
      return true;
    case Opcode::kJump:
    case Opcode::kJumpIfFalse:
    case Opcode::kJumpIfTrue:
    case Opcode::kCall:
    case Opcode::kReturn:
    case Opcode::kBarrier:
      return false;
  }
  return false;
}

struct Instruction {
  Opcode op = Opcode::kNop;
  ScalarType type = ScalarType::kVoid;  // Operand type for typed ops.
  std::int32_t a = 0;                   // Primary operand (slot/target/id).
  std::int32_t b = 0;                   // Secondary operand.
  std::uint8_t flags = 0;               // kInstrFlag* bits (last: emit sites
                                        // brace-init the first four fields).
};

// Runtime representation of any scalar value. The static type is carried by
// the instruction stream, not the value, so a slot is just 8 bytes.
union Value {
  std::int64_t i;
  std::uint64_t u;
  double f;
};

// A __local or __private array declared in a function body.
struct ArrayAlloc {
  AddressSpace space = AddressSpace::kLocal;
  ScalarType element = ScalarType::kF32;
  std::uint64_t count = 0;
  [[nodiscard]] std::uint64_t ByteSize() const {
    return count * ScalarSize(element);
  }
};

// Kernel argument descriptor, used by clSetKernelArg validation and by the
// NMP to bind buffers at launch.
struct KernelArgInfo {
  std::string name;
  Type type;
  // `const T*` parameter: the launch cannot modify the buffer, so the
  // host's coherence protocol keeps replicas valid across such launches.
  bool pointee_const = false;
  [[nodiscard]] bool IsBuffer() const {
    return type.is_pointer && (type.space == AddressSpace::kGlobal ||
                               type.space == AddressSpace::kConstant);
  }
  [[nodiscard]] bool IsLocalPointer() const {
    return type.is_pointer && type.space == AddressSpace::kLocal;
  }
};

// One compiled function (kernel or helper).
struct CompiledFunction {
  std::string name;
  bool is_kernel = false;
  Type return_type;
  std::vector<KernelArgInfo> params;
  std::uint32_t entry_pc = 0;     // Index into Module::code.
  std::uint32_t local_slots = 0;  // Scalar slots incl. params.
  std::vector<ArrayAlloc> arrays;  // Body-declared local/private arrays.
  bool uses_barrier = false;
  // Peak operand-stack depth of this function's own frame (exact, computed
  // by codegen from the emitted bytecode). The lane-batch engine sizes its
  // SoA stack from this so pushes inside the dispatch loop are unchecked.
  // 0 means "unknown" and disables batched execution for the function.
  std::uint32_t max_stack_slots = 0;
};

// A compiled translation unit: shared code array + literal pool + functions.
struct Module {
  std::vector<Instruction> code;
  std::vector<Value> literals;
  std::vector<CompiledFunction> functions;

  [[nodiscard]] const CompiledFunction* FindKernel(
      const std::string& name) const {
    for (const auto& fn : functions) {
      if (fn.is_kernel && fn.name == name) return &fn;
    }
    return nullptr;
  }

  [[nodiscard]] std::vector<std::string> KernelNames() const {
    std::vector<std::string> names;
    for (const auto& fn : functions) {
      if (fn.is_kernel) names.push_back(fn.name);
    }
    return names;
  }
};

}  // namespace haocl::oclc
