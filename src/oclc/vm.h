// Bytecode VM executing compiled kernels over an NDRange.
//
// Execution model: work-groups are independent and are distributed across a
// pool of host threads (this is the "compute unit" parallelism of the
// simulated device). Within a work-group, work-items are interpreted
// cooperatively: each runs until it finishes or reaches a barrier(); at a
// barrier every item's machine state (pc, operand stack, locals, frames) is
// suspended, and all items resume only after the whole group arrived —
// the OpenCL barrier semantics, without coroutines or OS threads per item.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "oclc/bytecode.h"

namespace haocl::oclc {

// Launch geometry (OpenCL NDRange, up to 3 dimensions).
struct NDRange {
  std::uint32_t work_dim = 1;
  std::uint64_t global[3] = {1, 1, 1};
  std::uint64_t local[3] = {1, 1, 1};
  // clEnqueueNDRangeKernel's global_work_offset: get_global_id(d) returns
  // offset[d] + linear id, while get_global_size(d) stays global[d]. The
  // host runtime uses this to run one shard of a partitioned launch.
  std::uint64_t offset[3] = {0, 0, 0};
  bool local_specified = false;
};

// One bound kernel argument.
struct ArgBinding {
  enum class Kind : std::uint8_t { kBuffer, kScalar, kLocalMem };
  Kind kind = Kind::kScalar;

  // kBuffer: borrowed device-buffer bytes (writable).
  std::uint8_t* data = nullptr;
  std::uint64_t size = 0;

  // kScalar: canonical value + its declared type.
  Value scalar{};
  ScalarType scalar_type = ScalarType::kI32;

  // kLocalMem: per-group scratch size in bytes.
  std::uint64_t local_size = 0;

  static ArgBinding Buffer(void* data, std::uint64_t size) {
    ArgBinding b;
    b.kind = Kind::kBuffer;
    b.data = static_cast<std::uint8_t*>(data);
    b.size = size;
    return b;
  }
  static ArgBinding Scalar(Value v, ScalarType t) {
    ArgBinding b;
    b.kind = Kind::kScalar;
    b.scalar = v;
    b.scalar_type = t;
    return b;
  }
  static ArgBinding LocalMem(std::uint64_t bytes) {
    ArgBinding b;
    b.kind = Kind::kLocalMem;
    b.local_size = bytes;
    return b;
  }
  // Convenience constructors used heavily in tests.
  static ArgBinding Int(std::int32_t v) {
    Value value;
    value.i = v;
    return Scalar(value, ScalarType::kI32);
  }
  static ArgBinding UInt(std::uint32_t v) {
    Value value;
    value.u = v;
    return Scalar(value, ScalarType::kU32);
  }
  static ArgBinding Long(std::int64_t v) {
    Value value;
    value.i = v;
    return Scalar(value, ScalarType::kI64);
  }
  static ArgBinding Float(float v) {
    Value value;
    value.f = static_cast<double>(v);
    return Scalar(value, ScalarType::kF32);
  }
  static ArgBinding Double(double v) {
    Value value;
    value.f = v;
    return Scalar(value, ScalarType::kF64);
  }
};

struct LaunchOptions {
  int num_threads = 1;  // Host threads across work-groups.
  std::uint64_t max_instructions_per_item = 1ULL << 33;  // Runaway guard.
};

// Executes `kernel` from `module` over `range` with `args` bound in
// declaration order. Blocking; returns once every work-group finished.
Status LaunchKernel(const Module& module, const CompiledFunction& kernel,
                    const std::vector<ArgBinding>& args, const NDRange& range,
                    const LaunchOptions& options = {});

// Fills in range.local when the caller did not specify it, mirroring the
// OpenCL runtime's choice for clEnqueueNDRangeKernel(local_size=NULL).
void ChooseLocalSize(NDRange& range) noexcept;

}  // namespace haocl::oclc
