// Bytecode VM executing compiled kernels over an NDRange.
//
// Execution model: work-groups are independent and are distributed across a
// pool of host threads (this is the "compute unit" parallelism of the
// simulated device). Within a work-group two engines exist:
//
//  - kBatched (default): the whole group runs in lockstep as one lane
//    batch — each instruction is dispatched once and applied to every
//    work-item through a contiguous-lane inner loop over SoA operand
//    stacks. barrier() is just the end of a batch step. When a branch
//    condition diverges across lanes the engine bails out to the
//    interpreter for the rest of the group. See docs/vm.md.
//  - kInterpreter: the original one-work-item-at-a-time interpreter; each
//    item runs until it finishes or reaches a barrier(), where its machine
//    state (pc, operand stack, locals, frames) is suspended until the whole
//    group arrived. Kept bit-identical as the oracle for the batched
//    engine.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "oclc/bytecode.h"

namespace haocl::oclc {

// Launch geometry (OpenCL NDRange, up to 3 dimensions).
struct NDRange {
  std::uint32_t work_dim = 1;
  std::uint64_t global[3] = {1, 1, 1};
  std::uint64_t local[3] = {1, 1, 1};
  // clEnqueueNDRangeKernel's global_work_offset: get_global_id(d) returns
  // offset[d] + linear id, while get_global_size(d) stays global[d]. The
  // host runtime uses this to run one shard of a partitioned launch.
  std::uint64_t offset[3] = {0, 0, 0};
  bool local_specified = false;
};

// One bound kernel argument.
struct ArgBinding {
  enum class Kind : std::uint8_t { kBuffer, kScalar, kLocalMem };
  Kind kind = Kind::kScalar;

  // kBuffer: borrowed device-buffer bytes (writable).
  std::uint8_t* data = nullptr;
  std::uint64_t size = 0;

  // kScalar: canonical value + its declared type.
  Value scalar{};
  ScalarType scalar_type = ScalarType::kI32;

  // kLocalMem: per-group scratch size in bytes.
  std::uint64_t local_size = 0;

  static ArgBinding Buffer(void* data, std::uint64_t size) {
    ArgBinding b;
    b.kind = Kind::kBuffer;
    b.data = static_cast<std::uint8_t*>(data);
    b.size = size;
    return b;
  }
  static ArgBinding Scalar(Value v, ScalarType t) {
    ArgBinding b;
    b.kind = Kind::kScalar;
    b.scalar = v;
    b.scalar_type = t;
    return b;
  }
  static ArgBinding LocalMem(std::uint64_t bytes) {
    ArgBinding b;
    b.kind = Kind::kLocalMem;
    b.local_size = bytes;
    return b;
  }
  // Convenience constructors used heavily in tests.
  static ArgBinding Int(std::int32_t v) {
    Value value;
    value.i = v;
    return Scalar(value, ScalarType::kI32);
  }
  static ArgBinding UInt(std::uint32_t v) {
    Value value;
    value.u = v;
    return Scalar(value, ScalarType::kU32);
  }
  static ArgBinding Long(std::int64_t v) {
    Value value;
    value.i = v;
    return Scalar(value, ScalarType::kI64);
  }
  static ArgBinding Float(float v) {
    Value value;
    value.f = static_cast<double>(v);
    return Scalar(value, ScalarType::kF32);
  }
  static ArgBinding Double(double v) {
    Value value;
    value.f = v;
    return Scalar(value, ScalarType::kF64);
  }
};

// Which per-group execution engine LaunchKernel uses.
enum class VmEngine : std::uint8_t {
  kBatched,      // Lane-batch lockstep engine (falls back on divergence).
  kInterpreter,  // Legacy per-work-item interpreter (the oracle).
};

struct LaunchOptions {
  // Host threads across work-groups. 0 means "auto": one thread per
  // hardware thread, capped by the number of groups. Device drivers size
  // this from sim::DeviceSpec::compute_units instead.
  int num_threads = 0;
  std::uint64_t max_instructions_per_item = 1ULL << 33;  // Runaway guard.
  VmEngine engine = VmEngine::kBatched;
  // Fuse hot straight-line bytecode sequences (indexed loads, MAC pairs,
  // loop-counter steps) into single batched ops. Batched engine only;
  // results are bit-identical either way.
  bool enable_trace_fusion = true;
  // Vectorize per-lane inner loops (uniform arithmetic, fused MAC/indexed
  // loads/compares) with host SIMD. Batched engine only; bit-identical.
  // No-op when the build forces the scalar backend (HAOCL_ENABLE_SIMD=OFF).
  bool enable_simd = true;
  // Run short straight-line divergent regions (flagged by codegen) under a
  // partial-lane mask instead of bailing the whole group out to the
  // interpreter. Batched engine only; bit-identical, including trap pcs
  // and the runaway-budget charge.
  bool enable_lane_masking = true;
};

// Execution counters for one launch (filled when the caller passes a stats
// out-param; aggregated across the worker pool).
struct VmStats {
  std::uint64_t instructions = 0;  // Work-item instructions executed.
  std::uint64_t batch_steps = 0;   // Batched dispatches (1 per instruction
                                   // per GROUP, not per item).
  std::uint64_t fused_steps = 0;   // Batched dispatches through a fused op.
  std::uint64_t simd_steps = 0;    // Batched dispatches that took a vector
                                   // path (subset of batch_steps).
  std::uint64_t masked_steps = 0;  // Instructions executed under a partial
                                   // lane mask instead of a bail-out.
  std::uint64_t bailouts = 0;      // Groups that diverged to the interpreter.
  std::uint64_t groups = 0;        // Work-groups executed.
  int threads_used = 0;            // Pool width actually used.
};

// Executes `kernel` from `module` over `range` with `args` bound in
// declaration order. Blocking; returns once every work-group finished.
Status LaunchKernel(const Module& module, const CompiledFunction& kernel,
                    const std::vector<ArgBinding>& args, const NDRange& range,
                    const LaunchOptions& options = {},
                    VmStats* stats = nullptr);

// Fills in range.local when the caller did not specify it, mirroring the
// OpenCL runtime's choice for clEnqueueNDRangeKernel(local_size=NULL).
// When the kernel is known and barrier-free, prefers wider dim-0 groups
// (up to 256 lanes) so the batched engine amortizes dispatch; barrier
// kernels keep the conservative 64 cap.
void ChooseLocalSize(NDRange& range) noexcept;
void ChooseLocalSize(NDRange& range, const CompiledFunction* kernel) noexcept;

}  // namespace haocl::oclc
