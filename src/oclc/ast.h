// Abstract syntax tree for the OpenCL C subset. Nodes are owned through
// std::unique_ptr; the tree is immutable after parsing except for the type
// annotations sema fills in.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "oclc/token.h"
#include "oclc/type.h"

namespace haocl::oclc {

// ---------------------------------------------------------------- Expressions

enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLogicalAnd, kLogicalOr,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
};

enum class UnaryOp : std::uint8_t {
  kNeg, kLogicalNot, kBitNot, kPlus,
  kPreInc, kPreDec, kPostInc, kPostDec,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
  kIntLiteral,
  kFloatLiteral,
  kBoolLiteral,
  kVarRef,
  kBinary,
  kUnary,
  kAssign,       // lhs op= rhs (op == nullopt encoded as kAdd + plain flag)
  kCall,
  kSubscript,    // base[index]
  kCast,
  kTernary,
};

struct Expr {
  ExprKind kind;
  SourceLocation loc;

  // Literals.
  std::uint64_t int_value = 0;
  double float_value = 0.0;
  bool literal_unsigned = false;
  bool literal_long = false;
  bool literal_float32 = false;

  // kVarRef / kCall.
  std::string name;

  // kBinary / kUnary / kAssign compound op.
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNeg;
  bool compound = false;  // kAssign: true for +=, -=, ...

  // Children: operands / call args / [base, index] / [cond, then, else].
  std::vector<ExprPtr> children;

  // kCast target.
  Type cast_type;

  // Filled by sema.
  Type type;
  int symbol_slot = -1;        // kVarRef: resolved variable slot.
  int builtin_id = -1;         // kCall: builtin table index, or -1.
  int callee_index = -1;       // kCall: user function index, or -1.
};

// ----------------------------------------------------------------- Statements

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : std::uint8_t {
  kExpr,
  kDecl,
  kBlock,
  kIf,
  kFor,
  kWhile,
  kDoWhile,
  kReturn,
  kBreak,
  kContinue,
  kEmpty,
};

// One declarator in a declaration statement.
struct Declarator {
  std::string name;
  ExprPtr init;                 // May be null.
  ExprPtr array_size;           // Non-null for array declarations.
  SourceLocation loc;
  // Filled by sema.
  int slot = -1;
  std::int64_t array_count = 0;
  int alloc_index = -1;         // Local/private array allocation id.
};

struct Stmt {
  StmtKind kind;
  SourceLocation loc;

  ExprPtr expr;                 // kExpr / kReturn value / conditions.
  std::vector<StmtPtr> body;    // kBlock children; kIf: [then, else?];
                                // kFor: [init?, body]; kWhile/kDoWhile: [body]
  ExprPtr cond;                 // kIf / kFor / kWhile / kDoWhile condition.
  ExprPtr step;                 // kFor increment.

  // kDecl.
  Type decl_type;               // Element type for arrays.
  AddressSpace decl_space = AddressSpace::kPrivate;
  std::vector<Declarator> declarators;
};

// ------------------------------------------------------------------ Functions

struct ParamDecl {
  std::string name;
  Type type;
  bool pointee_const = false;  // `const T*`: the kernel never writes it.
  SourceLocation loc;
  int slot = -1;  // Filled by sema.
};

struct FunctionDecl {
  std::string name;
  Type return_type;
  bool is_kernel = false;
  std::vector<ParamDecl> params;
  StmtPtr body;
  SourceLocation loc;

  // Filled by sema / codegen.
  int local_slot_count = 0;
  int index = -1;
  bool uses_barrier = false;
};

struct TranslationUnit {
  std::vector<std::unique_ptr<FunctionDecl>> functions;
};

}  // namespace haocl::oclc
