#include "oclc/type.h"

namespace haocl::oclc {

const char* ScalarTypeName(ScalarType t) noexcept {
  switch (t) {
    case ScalarType::kVoid: return "void";
    case ScalarType::kBool: return "bool";
    case ScalarType::kI8: return "char";
    case ScalarType::kU8: return "uchar";
    case ScalarType::kI16: return "short";
    case ScalarType::kU16: return "ushort";
    case ScalarType::kI32: return "int";
    case ScalarType::kU32: return "uint";
    case ScalarType::kI64: return "long";
    case ScalarType::kU64: return "ulong";
    case ScalarType::kF32: return "float";
    case ScalarType::kF64: return "double";
  }
  return "?";
}

const char* AddressSpaceName(AddressSpace s) noexcept {
  switch (s) {
    case AddressSpace::kPrivate: return "__private";
    case AddressSpace::kGlobal: return "__global";
    case AddressSpace::kLocal: return "__local";
    case AddressSpace::kConstant: return "__constant";
  }
  return "?";
}

std::string Type::ToString() const {
  std::string out;
  if (is_pointer) {
    out = std::string(AddressSpaceName(space)) + " " +
          ScalarTypeName(scalar) + "*";
  } else {
    out = ScalarTypeName(scalar);
  }
  return out;
}

ScalarType Promote(ScalarType t) noexcept {
  switch (t) {
    case ScalarType::kBool:
    case ScalarType::kI8:
    case ScalarType::kI16:
      return ScalarType::kI32;
    case ScalarType::kU8:
    case ScalarType::kU16:
      // Values of these types always fit in int, per C promotion rules.
      return ScalarType::kI32;
    default:
      return t;
  }
}

ScalarType CommonArithmeticType(ScalarType a, ScalarType b) noexcept {
  if (a == ScalarType::kF64 || b == ScalarType::kF64) return ScalarType::kF64;
  if (a == ScalarType::kF32 || b == ScalarType::kF32) return ScalarType::kF32;
  a = Promote(a);
  b = Promote(b);
  if (a == b) return a;
  if (a == ScalarType::kU64 || b == ScalarType::kU64) return ScalarType::kU64;
  if (a == ScalarType::kI64 || b == ScalarType::kI64) {
    // i64 can represent all u32 values.
    return ScalarType::kI64;
  }
  if (a == ScalarType::kU32 || b == ScalarType::kU32) return ScalarType::kU32;
  return ScalarType::kI32;
}

}  // namespace haocl::oclc
