// One-call compiler driver: source text -> executable Module.
// This is what a device node's "vendor compiler" runs when the NMP services
// a clBuildProgram forwarded from the host.
#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "oclc/bytecode.h"

namespace haocl::oclc {

struct CompileResult {
  std::shared_ptr<const Module> module;
  std::string build_log;  // Empty on success; diagnostics on failure.
};

// Compiles OpenCL C source. On failure the Status carries
// kBuildProgramFailure and the same text is placed in build_log by
// CompileWithLog.
Expected<std::shared_ptr<const Module>> Compile(const std::string& source);

// Variant that always returns a result with the build log filled in,
// matching clGetProgramBuildInfo(CL_PROGRAM_BUILD_LOG) behaviour.
CompileResult CompileWithLog(const std::string& source);

}  // namespace haocl::oclc
