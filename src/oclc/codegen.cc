#include "oclc/codegen.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "oclc/builtins.h"

namespace haocl::oclc {
namespace {

// Per-function lowering context.
class FunctionGen {
 public:
  FunctionGen(const TranslationUnit& unit, const FunctionDecl& fn,
              Module& module)
      : unit_(unit), fn_(fn), module_(module) {}

  Status Run() {
    CompiledFunction out;
    out.name = fn_.name;
    out.is_kernel = fn_.is_kernel;
    out.return_type = fn_.return_type;
    out.entry_pc = static_cast<std::uint32_t>(module_.code.size());
    out.uses_barrier = fn_.uses_barrier;
    for (const ParamDecl& param : fn_.params) {
      out.params.push_back(
          KernelArgInfo{param.name, param.type, param.pointee_const});
    }
    next_slot_ = fn_.local_slot_count;

    AnalyzeUniformity();
    AnalyzeLaneDep();
    CollectArrays(*fn_.body, out.arrays);
    HAOCL_RETURN_IF_ERROR(EmitStmt(*fn_.body));
    // Implicit return for void functions / fallthrough.
    Emit({Opcode::kReturn, ScalarType::kVoid, 0, 0});

    out.local_slots = static_cast<std::uint32_t>(next_slot_);
    out.max_stack_slots = ComputeMaxStack(out.entry_pc);
    module_.functions.push_back(std::move(out));
    return Status::Ok();
  }

 private:
  // ------------------------------------------------ Batchability analyses

  // Group-uniformity of local slots, computed to a fixpoint before emission.
  // A slot is uniform when every write to it stores a group-uniform value;
  // the lane-batch engine then reads a uniform branch condition from lane 0
  // alone. Conservative: memory loads, get_global_id/get_local_id, atomics,
  // and user calls are non-uniform. Flags are a pure optimization — the
  // engine scans every lane when a branch is unflagged.
  void AnalyzeUniformity() {
    slot_uniform_.assign(fn_.local_slot_count, true);
    bool changed = true;
    while (changed) {
      changed = false;
      ScanStmtUniform(*fn_.body, changed);
    }
  }

  [[nodiscard]] bool SlotUniform(int slot) const {
    // Scratch slots (allocated during emission, beyond the analyzed range)
    // hold addresses/memory values: non-uniform.
    return slot >= 0 &&
           static_cast<std::size_t>(slot) < slot_uniform_.size() &&
           slot_uniform_[slot];
  }

  void Demote(int slot, bool& changed) {
    if (slot >= 0 && static_cast<std::size_t>(slot) < slot_uniform_.size() &&
        slot_uniform_[slot]) {
      slot_uniform_[slot] = false;
      changed = true;
    }
  }

  [[nodiscard]] static bool IsIncDec(const Expr& e) {
    return e.kind == ExprKind::kUnary &&
           (e.unary_op == UnaryOp::kPreInc || e.unary_op == UnaryOp::kPreDec ||
            e.unary_op == UnaryOp::kPostInc ||
            e.unary_op == UnaryOp::kPostDec);
  }

  [[nodiscard]] bool ExprUniform(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kIntLiteral:
      case ExprKind::kFloatLiteral:
      case ExprKind::kBoolLiteral:
        return true;
      case ExprKind::kVarRef:
        // Array decay pushes a constant encoded pointer: uniform.
        return e.symbol_slot < 0 || SlotUniform(e.symbol_slot);
      case ExprKind::kBinary:
        return ExprUniform(*e.children[0]) && ExprUniform(*e.children[1]);
      case ExprKind::kUnary:
        if (IsIncDec(e)) {
          const Expr& operand = *e.children[0];
          return operand.kind == ExprKind::kVarRef &&
                 SlotUniform(operand.symbol_slot);
        }
        return ExprUniform(*e.children[0]);
      case ExprKind::kAssign: {
        bool uniform = ExprUniform(*e.children[1]);
        if (e.compound) {
          const Expr& lhs = *e.children[0];
          uniform = uniform && lhs.kind == ExprKind::kVarRef &&
                    SlotUniform(lhs.symbol_slot);
        }
        return uniform;
      }
      case ExprKind::kCall: {
        if (e.builtin_id == -2) return true;  // barrier(): void.
        if (e.builtin_id < 0) return false;   // User calls: conservative.
        const auto id = static_cast<BuiltinId>(e.builtin_id);
        if (id == BuiltinId::kGetGlobalId || id == BuiltinId::kGetLocalId ||
            IsAtomic(id)) {
          return false;
        }
        // Group ids/sizes/offsets and pure math: uniform in uniform args.
        for (const ExprPtr& arg : e.children) {
          if (!ExprUniform(*arg)) return false;
        }
        return true;
      }
      case ExprKind::kSubscript:
        return false;  // Memory another work-item may have written.
      case ExprKind::kCast:
        return ExprUniform(*e.children[0]);
      case ExprKind::kTernary:
        return ExprUniform(*e.children[0]) && ExprUniform(*e.children[1]) &&
               ExprUniform(*e.children[2]);
    }
    return false;
  }

  void ScanExprUniform(const Expr& e, bool& changed) {
    for (const ExprPtr& child : e.children) {
      if (child != nullptr) ScanExprUniform(*child, changed);
    }
    if (e.kind == ExprKind::kAssign) {
      const Expr& lhs = *e.children[0];
      if (lhs.kind == ExprKind::kVarRef && lhs.symbol_slot >= 0 &&
          !ExprUniform(e)) {
        Demote(lhs.symbol_slot, changed);
      }
    }
    // ++/-- preserves the slot's uniformity (old value +/- a literal).
  }

  void ScanStmtUniform(const Stmt& stmt, bool& changed) {
    if (stmt.kind == StmtKind::kDecl) {
      for (const Declarator& decl : stmt.declarators) {
        if (decl.array_size != nullptr || decl.init == nullptr) continue;
        if (!ExprUniform(*decl.init)) Demote(decl.slot, changed);
      }
    }
    if (stmt.expr != nullptr) ScanExprUniform(*stmt.expr, changed);
    if (stmt.cond != nullptr) ScanExprUniform(*stmt.cond, changed);
    if (stmt.step != nullptr) ScanExprUniform(*stmt.step, changed);
    for (const StmtPtr& child : stmt.body) {
      if (child != nullptr) ScanStmtUniform(*child, changed);
    }
  }

  // Tags a just-emitted conditional jump whose condition is group-uniform.
  void FlagIfUniform(std::size_t at, const Expr& cond) {
    if (ExprUniform(cond)) {
      module_.code[at].flags |= kInstrFlagUniformBranch;
    }
  }

  // Lane dependence of local slots: a three-point lattice refining the
  // uniformity analysis. kUniform = same value in every lane, kAffine =
  // value is `base + stride * lane_id` for group-uniform base/stride
  // (get_global_id(0)/get_local_id(0) are the generators; closed under
  // +/- affine and * uniform), kVarying = anything else. The batch engine
  // uses the affine hint to turn uniform-base indexed loads into
  // contiguous/strided vector loads with one whole-chunk bounds precheck;
  // it still verifies the actual lane stride at dispatch time, so the
  // analysis only has to be conservative about *uniformity*, never about
  // the exact stride (i32 wrap included).
  enum class LaneDep : std::uint8_t { kUniform = 0, kAffine = 1, kVarying = 2 };

  static LaneDep JoinLane(LaneDep a, LaneDep b) { return a > b ? a : b; }

  void AnalyzeLaneDep() {
    slot_lane_.assign(fn_.local_slot_count, LaneDep::kUniform);
    bool changed = true;
    while (changed) {
      changed = false;
      ScanStmtLane(*fn_.body, changed);
    }
  }

  [[nodiscard]] LaneDep SlotLane(int slot) const {
    if (slot < 0 || static_cast<std::size_t>(slot) >= slot_lane_.size()) {
      return LaneDep::kVarying;  // Scratch slots: addresses/memory values.
    }
    return slot_lane_[slot];
  }

  void DemoteLane(int slot, LaneDep to, bool& changed) {
    if (slot < 0 || static_cast<std::size_t>(slot) >= slot_lane_.size()) {
      return;
    }
    const LaneDep joined = JoinLane(slot_lane_[slot], to);
    if (joined != slot_lane_[slot]) {
      slot_lane_[slot] = joined;
      changed = true;
    }
  }

  [[nodiscard]] LaneDep BinaryLane(BinaryOp op, LaneDep a, LaneDep b) const {
    switch (op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
        // affine +/- affine stays affine (strides add).
        return JoinLane(a, b) <= LaneDep::kAffine ? JoinLane(a, b)
                                                  : LaneDep::kVarying;
      case BinaryOp::kMul:
        if (a == LaneDep::kUniform && b == LaneDep::kUniform) {
          return LaneDep::kUniform;
        }
        if ((a == LaneDep::kAffine && b == LaneDep::kUniform) ||
            (a == LaneDep::kUniform && b == LaneDep::kAffine)) {
          return LaneDep::kAffine;  // Stride scales by a uniform factor.
        }
        return LaneDep::kVarying;
      default:
        // Division, modulo, shifts, bit ops, compares, logicals: affine-ness
        // does not survive; only uniform-in/uniform-out holds.
        return (a == LaneDep::kUniform && b == LaneDep::kUniform)
                   ? LaneDep::kUniform
                   : LaneDep::kVarying;
    }
  }

  [[nodiscard]] LaneDep ExprLane(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kIntLiteral:
      case ExprKind::kFloatLiteral:
      case ExprKind::kBoolLiteral:
        return LaneDep::kUniform;
      case ExprKind::kVarRef:
        return e.symbol_slot < 0 ? LaneDep::kUniform : SlotLane(e.symbol_slot);
      case ExprKind::kBinary:
        return BinaryLane(e.binary_op, ExprLane(*e.children[0]),
                          ExprLane(*e.children[1]));
      case ExprKind::kUnary: {
        if (IsIncDec(e)) {
          const Expr& operand = *e.children[0];
          return operand.kind == ExprKind::kVarRef
                     ? SlotLane(operand.symbol_slot)
                     : LaneDep::kVarying;
        }
        const LaneDep operand = ExprLane(*e.children[0]);
        if (e.unary_op == UnaryOp::kPlus || e.unary_op == UnaryOp::kNeg) {
          return operand;  // Negation flips the stride's sign.
        }
        return operand == LaneDep::kUniform ? LaneDep::kUniform
                                            : LaneDep::kVarying;
      }
      case ExprKind::kAssign: {
        const LaneDep rhs = ExprLane(*e.children[1]);
        if (!e.compound) return rhs;
        const Expr& lhs = *e.children[0];
        if (lhs.kind != ExprKind::kVarRef) return LaneDep::kVarying;
        return BinaryLane(e.binary_op, SlotLane(lhs.symbol_slot), rhs);
      }
      case ExprKind::kCall: {
        if (e.builtin_id == -2) return LaneDep::kUniform;  // barrier(): void.
        if (e.builtin_id < 0) return LaneDep::kVarying;    // User calls.
        const auto id = static_cast<BuiltinId>(e.builtin_id);
        if (id == BuiltinId::kGetGlobalId || id == BuiltinId::kGetLocalId) {
          // Dimension 0 is the lane generator when lanes are linearized
          // dim-0-fastest (the engine re-checks the realized stride).
          const bool dim0 = e.children.size() == 1 &&
                            e.children[0]->kind == ExprKind::kIntLiteral &&
                            e.children[0]->int_value == 0;
          return dim0 ? LaneDep::kAffine : LaneDep::kVarying;
        }
        if (IsAtomic(id)) return LaneDep::kVarying;
        for (const ExprPtr& arg : e.children) {
          if (ExprLane(*arg) != LaneDep::kUniform) return LaneDep::kVarying;
        }
        return LaneDep::kUniform;
      }
      case ExprKind::kSubscript:
        return LaneDep::kVarying;
      case ExprKind::kCast:
        // Conversions keep the hint: the engine's stride verification is
        // exact, so truncation cannot mislead it.
        return ExprLane(*e.children[0]);
      case ExprKind::kTernary: {
        const LaneDep all =
            JoinLane(ExprLane(*e.children[0]),
                     JoinLane(ExprLane(*e.children[1]),
                              ExprLane(*e.children[2])));
        return all == LaneDep::kUniform ? LaneDep::kUniform
                                        : LaneDep::kVarying;
      }
    }
    return LaneDep::kVarying;
  }

  void ScanExprLane(const Expr& e, bool& changed) {
    for (const ExprPtr& child : e.children) {
      if (child != nullptr) ScanExprLane(*child, changed);
    }
    if (e.kind == ExprKind::kAssign) {
      const Expr& lhs = *e.children[0];
      if (lhs.kind == ExprKind::kVarRef && lhs.symbol_slot >= 0) {
        DemoteLane(lhs.symbol_slot, ExprLane(e), changed);
      }
    }
    // ++/-- preserves the slot's lane dependence (old value +/- a literal).
  }

  void ScanStmtLane(const Stmt& stmt, bool& changed) {
    if (stmt.kind == StmtKind::kDecl) {
      for (const Declarator& decl : stmt.declarators) {
        if (decl.array_size != nullptr || decl.init == nullptr) continue;
        DemoteLane(decl.slot, ExprLane(*decl.init), changed);
      }
    }
    if (stmt.expr != nullptr) ScanExprLane(*stmt.expr, changed);
    if (stmt.cond != nullptr) ScanExprLane(*stmt.cond, changed);
    if (stmt.step != nullptr) ScanExprLane(*stmt.step, changed);
    for (const StmtPtr& child : stmt.body) {
      if (child != nullptr) ScanStmtLane(*child, changed);
    }
  }

  // kLoadLocal flags from the lane-dependence lattice, consumed by the
  // batch plan's indexed-load matcher.
  [[nodiscard]] std::uint8_t LoadLocalFlags(int slot) const {
    switch (SlotLane(slot)) {
      case LaneDep::kUniform:
        return kInstrFlagLaneAffine | kInstrFlagLaneUniform;
      case LaneDep::kAffine:
        return kInstrFlagLaneAffine;
      case LaneDep::kVarying:
        return 0;
    }
    return 0;
  }

  // An `if` without `else` whose body lowered to straight-line maskable
  // code re-converges exactly at the branch target: flag the branch so the
  // batch engine can run the body under a partial-lane mask instead of
  // bailing the whole group out. Any control transfer inside the body
  // (nested if/loop/break/continue, `&&`/`||`/`?:`, calls, barriers)
  // shows up as a non-maskable opcode and vetoes the flag.
  static constexpr std::size_t kMaxMaskedRegionLen = 64;
  void MaybeFlagMaskedRegion(std::size_t branch_at) {
    const std::size_t begin = branch_at + 1;
    const std::size_t end = module_.code.size();
    if (end <= begin || end - begin > kMaxMaskedRegionLen) return;
    for (std::size_t pc = begin; pc < end; ++pc) {
      if (!IsMaskableOp(module_.code[pc].op)) return;
    }
    module_.code[branch_at].flags |= kInstrFlagMaskedRegion;
  }

  // Exact peak operand-stack depth of this function's own frame, from a
  // worklist walk over the emitted bytecode's static stack effects. The
  // lane-batch engine pre-sizes its SoA stack from this; returns 0 (meaning
  // "unknown", batching disabled) if the walk finds an inconsistency.
  [[nodiscard]] std::uint32_t ComputeMaxStack(std::uint32_t entry) const {
    const auto& code = module_.code;
    const std::size_t n = code.size();
    if (entry >= n) return 0;
    std::vector<std::int32_t> height(n, -1);
    std::vector<std::uint32_t> work;
    height[entry] = 0;
    work.push_back(entry);
    std::int32_t peak = 0;
    bool ok = true;

    auto visit = [&](std::size_t pc, std::int32_t h) {
      if (pc >= n || h < 0) {
        ok = false;
        return;
      }
      if (height[pc] == -1) {
        height[pc] = h;
        work.push_back(static_cast<std::uint32_t>(pc));
      } else if (height[pc] != h) {
        ok = false;
      }
    };

    while (ok && !work.empty()) {
      const std::uint32_t pc = work.back();
      work.pop_back();
      const std::int32_t h = height[pc];
      const Instruction& in = code[pc];
      std::int32_t delta = 0;
      switch (in.op) {
        case Opcode::kPushConst:
        case Opcode::kLoadLocal:
        case Opcode::kDup:
          delta = 1;
          break;
        case Opcode::kStoreLocal:
        case Opcode::kPop:
        case Opcode::kPtrAdd:
        case Opcode::kAdd:
        case Opcode::kSub:
        case Opcode::kMul:
        case Opcode::kDiv:
        case Opcode::kMod:
        case Opcode::kBitAnd:
        case Opcode::kBitOr:
        case Opcode::kBitXor:
        case Opcode::kShl:
        case Opcode::kShr:
        case Opcode::kEq:
        case Opcode::kNe:
        case Opcode::kLt:
        case Opcode::kLe:
        case Opcode::kGt:
        case Opcode::kGe:
          delta = -1;
          break;
        case Opcode::kStoreMem:
          delta = -2;
          break;
        case Opcode::kCall: {
          const FunctionDecl& callee = *unit_.functions[in.a];
          delta = -in.b + (callee.return_type.IsVoid() ? 0 : 1);
          break;
        }
        case Opcode::kCallBuiltin:
          delta = -in.b + (in.type != ScalarType::kVoid ? 1 : 0);
          break;
        default:
          // kNop, kLoadMem, kNeg, kBitNot, kLogicalNot, kConvert, jumps,
          // kReturn, kBarrier: net zero (jumps handled below; kJumpIf* pops
          // its condition, see successor deltas).
          delta = 0;
          break;
      }
      if (in.op == Opcode::kJumpIfFalse || in.op == Opcode::kJumpIfTrue) {
        delta = -1;
      }
      const std::int32_t after = h + delta;
      if (after < 0) {
        ok = false;
        break;
      }
      peak = std::max(peak, std::max(h, after));
      switch (in.op) {
        case Opcode::kReturn:
          break;  // Terminal.
        case Opcode::kJump:
          visit(static_cast<std::size_t>(in.a), after);
          break;
        case Opcode::kJumpIfFalse:
        case Opcode::kJumpIfTrue:
          visit(static_cast<std::size_t>(in.a), after);
          visit(pc + 1, after);
          break;
        default:
          visit(pc + 1, after);
          break;
      }
    }
    if (!ok) return 0;
    // 0 must mean "unknown": a trivial frame that never pushes still
    // reports one slot so batching stays enabled.
    return static_cast<std::uint32_t>(std::max(peak, 1));
  }

  // ----------------------------------------------------------- Emit helpers

  std::size_t Emit(Instruction instr) {
    module_.code.push_back(instr);
    return module_.code.size() - 1;
  }

  std::int32_t AddLiteral(Value v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    auto [it, inserted] = literal_index_.try_emplace(
        bits, static_cast<std::int32_t>(module_.literals.size()));
    if (inserted) module_.literals.push_back(v);
    return it->second;
  }

  void PushInt(std::int64_t v) {
    Value value;
    value.i = v;
    Emit({Opcode::kPushConst, ScalarType::kI64, AddLiteral(value), 0});
  }
  void PushFloat(double v) {
    Value value;
    value.f = v;
    Emit({Opcode::kPushConst, ScalarType::kF64, AddLiteral(value), 0});
  }
  void PushPtr(std::uint64_t encoded) {
    Value value;
    value.u = encoded;
    Emit({Opcode::kPushConst, ScalarType::kU64, AddLiteral(value), 0});
  }

  // Emits a conversion when the types differ.
  void Convert(ScalarType from, ScalarType to) {
    if (from == to) return;
    Emit({Opcode::kConvert, from, static_cast<std::int32_t>(to), 0});
  }

  // Converts whatever numeric is on top of the stack to bool.
  void ToBool(const Type& type) {
    ScalarType t = type.is_pointer ? ScalarType::kU64 : type.scalar;
    Convert(t, ScalarType::kBool);
  }

  int AllocScratch() { return next_slot_++; }

  std::size_t EmitJump(Opcode op) { return Emit({op, ScalarType::kVoid, -1, 0}); }
  void PatchJump(std::size_t at) {
    module_.code[at].a = static_cast<std::int32_t>(module_.code.size());
  }
  void JumpTo(std::size_t target) {
    Emit({Opcode::kJump, ScalarType::kVoid, static_cast<std::int32_t>(target),
          0});
  }

  static Status ErrorAt(SourceLocation loc, const std::string& what) {
    return Status(ErrorCode::kBuildProgramFailure,
                  "codegen error at line " + std::to_string(loc.line) + ": " +
                      what);
  }

  // Region id for a body-declared array (see vm.cc for the table layout).
  [[nodiscard]] std::uint64_t ArrayRegion(int alloc_index) const {
    return fn_.params.size() + static_cast<std::uint64_t>(alloc_index);
  }

  // Collects body-declared arrays in alloc_index order.
  void CollectArrays(const Stmt& stmt, std::vector<ArrayAlloc>& out) {
    if (stmt.kind == StmtKind::kDecl) {
      for (const Declarator& decl : stmt.declarators) {
        if (decl.array_size == nullptr) continue;
        ArrayAlloc alloc;
        alloc.space = stmt.decl_space == AddressSpace::kLocal
                          ? AddressSpace::kLocal
                          : AddressSpace::kPrivate;
        alloc.element = stmt.decl_type.scalar;
        alloc.count = static_cast<std::uint64_t>(decl.array_count);
        if (static_cast<std::size_t>(decl.alloc_index) >= out.size()) {
          out.resize(decl.alloc_index + 1);
        }
        out[decl.alloc_index] = alloc;
      }
    }
    for (const StmtPtr& child : stmt.body) {
      if (child != nullptr) CollectArrays(*child, out);
    }
  }

  // ------------------------------------------------------------- Statements

  Status EmitStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kEmpty:
        return Status::Ok();
      case StmtKind::kExpr: {
        HAOCL_RETURN_IF_ERROR(EmitExpr(*stmt.expr, /*want_value=*/false));
        return Status::Ok();
      }
      case StmtKind::kBlock:
        for (const StmtPtr& child : stmt.body) {
          HAOCL_RETURN_IF_ERROR(EmitStmt(*child));
        }
        return Status::Ok();
      case StmtKind::kDecl:
        for (const Declarator& decl : stmt.declarators) {
          if (decl.array_size != nullptr) continue;  // Allocation only.
          if (decl.init != nullptr) {
            HAOCL_RETURN_IF_ERROR(EmitExpr(*decl.init, true));
            if (!stmt.decl_type.is_pointer) {
              Convert(decl.init->type.is_pointer ? ScalarType::kU64
                                                 : decl.init->type.scalar,
                      stmt.decl_type.scalar);
            }
            Emit({Opcode::kStoreLocal, ScalarType::kVoid, decl.slot, 0});
          }
        }
        return Status::Ok();
      case StmtKind::kIf: {
        HAOCL_RETURN_IF_ERROR(EmitExpr(*stmt.cond, true));
        ToBool(stmt.cond->type);
        std::size_t to_else = EmitJump(Opcode::kJumpIfFalse);
        FlagIfUniform(to_else, *stmt.cond);
        HAOCL_RETURN_IF_ERROR(EmitStmt(*stmt.body[0]));
        if (stmt.body.size() > 1) {
          std::size_t to_end = EmitJump(Opcode::kJump);
          PatchJump(to_else);
          HAOCL_RETURN_IF_ERROR(EmitStmt(*stmt.body[1]));
          PatchJump(to_end);
        } else {
          PatchJump(to_else);
          MaybeFlagMaskedRegion(to_else);
        }
        return Status::Ok();
      }
      case StmtKind::kFor: {
        if (stmt.body[0] != nullptr) {
          HAOCL_RETURN_IF_ERROR(EmitStmt(*stmt.body[0]));
        }
        std::size_t cond_pc = module_.code.size();
        std::size_t to_end = 0;
        bool has_cond = stmt.cond != nullptr;
        if (has_cond) {
          HAOCL_RETURN_IF_ERROR(EmitExpr(*stmt.cond, true));
          ToBool(stmt.cond->type);
          to_end = EmitJump(Opcode::kJumpIfFalse);
          FlagIfUniform(to_end, *stmt.cond);
        }
        loops_.push_back({});
        HAOCL_RETURN_IF_ERROR(EmitStmt(*stmt.body[1]));
        // Continue lands on the step expression.
        std::size_t step_pc = module_.code.size();
        if (stmt.step != nullptr) {
          HAOCL_RETURN_IF_ERROR(EmitExpr(*stmt.step, false));
        }
        JumpTo(cond_pc);
        LoopContext loop = loops_.back();
        loops_.pop_back();
        if (has_cond) PatchJump(to_end);
        for (std::size_t at : loop.breaks) PatchJump(at);
        for (std::size_t at : loop.continues) {
          module_.code[at].a = static_cast<std::int32_t>(step_pc);
        }
        return Status::Ok();
      }
      case StmtKind::kWhile: {
        std::size_t cond_pc = module_.code.size();
        HAOCL_RETURN_IF_ERROR(EmitExpr(*stmt.cond, true));
        ToBool(stmt.cond->type);
        std::size_t to_end = EmitJump(Opcode::kJumpIfFalse);
        FlagIfUniform(to_end, *stmt.cond);
        loops_.push_back({});
        HAOCL_RETURN_IF_ERROR(EmitStmt(*stmt.body[0]));
        JumpTo(cond_pc);
        LoopContext loop = loops_.back();
        loops_.pop_back();
        PatchJump(to_end);
        for (std::size_t at : loop.breaks) PatchJump(at);
        for (std::size_t at : loop.continues) {
          module_.code[at].a = static_cast<std::int32_t>(cond_pc);
        }
        return Status::Ok();
      }
      case StmtKind::kDoWhile: {
        std::size_t body_pc = module_.code.size();
        loops_.push_back({});
        HAOCL_RETURN_IF_ERROR(EmitStmt(*stmt.body[0]));
        std::size_t cond_pc = module_.code.size();
        HAOCL_RETURN_IF_ERROR(EmitExpr(*stmt.cond, true));
        ToBool(stmt.cond->type);
        std::size_t back_jump = Emit({Opcode::kJumpIfTrue, ScalarType::kVoid,
                                      static_cast<std::int32_t>(body_pc), 0});
        FlagIfUniform(back_jump, *stmt.cond);
        LoopContext loop = loops_.back();
        loops_.pop_back();
        for (std::size_t at : loop.breaks) PatchJump(at);
        for (std::size_t at : loop.continues) {
          module_.code[at].a = static_cast<std::int32_t>(cond_pc);
        }
        return Status::Ok();
      }
      case StmtKind::kReturn:
        if (stmt.expr != nullptr) {
          HAOCL_RETURN_IF_ERROR(EmitExpr(*stmt.expr, true));
          if (!fn_.return_type.is_pointer) {
            Convert(stmt.expr->type.is_pointer ? ScalarType::kU64
                                               : stmt.expr->type.scalar,
                    fn_.return_type.scalar);
          }
          Emit({Opcode::kReturn, ScalarType::kVoid, 0, 1});
        } else {
          Emit({Opcode::kReturn, ScalarType::kVoid, 0, 0});
        }
        return Status::Ok();
      case StmtKind::kBreak:
        loops_.back().breaks.push_back(EmitJump(Opcode::kJump));
        return Status::Ok();
      case StmtKind::kContinue:
        loops_.back().continues.push_back(EmitJump(Opcode::kJump));
        return Status::Ok();
    }
    return Status(ErrorCode::kInternal, "unhandled stmt kind in codegen");
  }

  // ------------------------------------------------------------ Expressions

  // Emits `expr`; when want_value, exactly one value is left on the stack
  // (none for void calls — callers never request a void value).
  Status EmitExpr(const Expr& expr, bool want_value) {
    switch (expr.kind) {
      case ExprKind::kIntLiteral: {
        PushInt(static_cast<std::int64_t>(expr.int_value));
        // Literal already sits in the canonical i64 slot; reinterpret per
        // the literal's type (no-op for value purposes).
        if (!want_value) Emit({Opcode::kPop, ScalarType::kVoid, 0, 0});
        return Status::Ok();
      }
      case ExprKind::kFloatLiteral: {
        if (expr.type.scalar == ScalarType::kF32) {
          PushFloat(static_cast<double>(static_cast<float>(expr.float_value)));
        } else {
          PushFloat(expr.float_value);
        }
        if (!want_value) Emit({Opcode::kPop, ScalarType::kVoid, 0, 0});
        return Status::Ok();
      }
      case ExprKind::kBoolLiteral:
        PushInt(static_cast<std::int64_t>(expr.int_value));
        if (!want_value) Emit({Opcode::kPop, ScalarType::kVoid, 0, 0});
        return Status::Ok();
      case ExprKind::kVarRef:
        if (expr.symbol_slot >= 0) {
          Emit({Opcode::kLoadLocal, ScalarType::kVoid, expr.symbol_slot, 0,
                LoadLocalFlags(expr.symbol_slot)});
        } else {
          // Array decaying to a pointer: builtin_id carries the alloc index.
          const std::uint64_t region = ArrayRegion(expr.builtin_id);
          const PtrSpace space = expr.type.space == AddressSpace::kLocal
                                     ? PtrSpace::kLocal
                                     : PtrSpace::kPrivate;
          PushPtr(MakePointer(space, region, 0));
        }
        if (!want_value) Emit({Opcode::kPop, ScalarType::kVoid, 0, 0});
        return Status::Ok();
      case ExprKind::kBinary:
        HAOCL_RETURN_IF_ERROR(EmitBinary(expr));
        if (!want_value) Emit({Opcode::kPop, ScalarType::kVoid, 0, 0});
        return Status::Ok();
      case ExprKind::kUnary:
        return EmitUnary(expr, want_value);
      case ExprKind::kAssign:
        return EmitAssign(expr, want_value);
      case ExprKind::kCall:
        return EmitCall(expr, want_value);
      case ExprKind::kSubscript: {
        HAOCL_RETURN_IF_ERROR(EmitAddress(expr));
        Emit({Opcode::kLoadMem, expr.type.scalar, 0, 0});
        if (!want_value) Emit({Opcode::kPop, ScalarType::kVoid, 0, 0});
        return Status::Ok();
      }
      case ExprKind::kCast: {
        const Expr& operand = *expr.children[0];
        HAOCL_RETURN_IF_ERROR(EmitExpr(operand, true));
        if (!expr.type.is_pointer && !operand.type.is_pointer) {
          Convert(operand.type.scalar, expr.type.scalar);
        }
        if (!want_value) Emit({Opcode::kPop, ScalarType::kVoid, 0, 0});
        return Status::Ok();
      }
      case ExprKind::kTernary: {
        const Expr& cond = *expr.children[0];
        const Expr& then_expr = *expr.children[1];
        const Expr& else_expr = *expr.children[2];
        HAOCL_RETURN_IF_ERROR(EmitExpr(cond, true));
        ToBool(cond.type);
        std::size_t to_else = EmitJump(Opcode::kJumpIfFalse);
        FlagIfUniform(to_else, cond);
        HAOCL_RETURN_IF_ERROR(EmitExpr(then_expr, true));
        if (!expr.type.is_pointer) {
          Convert(then_expr.type.is_pointer ? ScalarType::kU64
                                            : then_expr.type.scalar,
                  expr.type.scalar);
        }
        std::size_t to_end = EmitJump(Opcode::kJump);
        PatchJump(to_else);
        HAOCL_RETURN_IF_ERROR(EmitExpr(else_expr, true));
        if (!expr.type.is_pointer) {
          Convert(else_expr.type.is_pointer ? ScalarType::kU64
                                            : else_expr.type.scalar,
                  expr.type.scalar);
        }
        PatchJump(to_end);
        if (!want_value) Emit({Opcode::kPop, ScalarType::kVoid, 0, 0});
        return Status::Ok();
      }
    }
    return Status(ErrorCode::kInternal, "unhandled expr kind in codegen");
  }

  // Pushes the address (encoded pointer) of `base[index]`.
  Status EmitAddress(const Expr& subscript) {
    const Expr& base = *subscript.children[0];
    const Expr& index = *subscript.children[1];
    HAOCL_RETURN_IF_ERROR(EmitExpr(base, true));
    HAOCL_RETURN_IF_ERROR(EmitExpr(index, true));
    Convert(index.type.scalar, ScalarType::kI64);
    Emit({Opcode::kPtrAdd, ScalarType::kVoid,
          static_cast<std::int32_t>(ScalarSize(base.type.scalar)), 0});
    return Status::Ok();
  }

  Status EmitBinary(const Expr& expr) {
    const Expr& lhs = *expr.children[0];
    const Expr& rhs = *expr.children[1];

    // Short-circuit logical operators.
    if (expr.binary_op == BinaryOp::kLogicalAnd ||
        expr.binary_op == BinaryOp::kLogicalOr) {
      const bool is_and = expr.binary_op == BinaryOp::kLogicalAnd;
      HAOCL_RETURN_IF_ERROR(EmitExpr(lhs, true));
      ToBool(lhs.type);
      std::size_t shortcut =
          EmitJump(is_and ? Opcode::kJumpIfFalse : Opcode::kJumpIfTrue);
      FlagIfUniform(shortcut, lhs);
      HAOCL_RETURN_IF_ERROR(EmitExpr(rhs, true));
      ToBool(rhs.type);
      std::size_t to_end = EmitJump(Opcode::kJump);
      PatchJump(shortcut);
      PushInt(is_and ? 0 : 1);
      PatchJump(to_end);
      return Status::Ok();
    }

    // Pointer arithmetic.
    if ((expr.binary_op == BinaryOp::kAdd || expr.binary_op == BinaryOp::kSub) &&
        expr.type.is_pointer) {
      const Expr* ptr = lhs.type.is_pointer ? &lhs : &rhs;
      const Expr* idx = lhs.type.is_pointer ? &rhs : &lhs;
      HAOCL_RETURN_IF_ERROR(EmitExpr(*ptr, true));
      HAOCL_RETURN_IF_ERROR(EmitExpr(*idx, true));
      Convert(idx->type.scalar, ScalarType::kI64);
      if (expr.binary_op == BinaryOp::kSub) {
        Emit({Opcode::kNeg, ScalarType::kI64, 0, 0});
      }
      Emit({Opcode::kPtrAdd, ScalarType::kVoid,
            static_cast<std::int32_t>(ScalarSize(ptr->type.scalar)), 0});
      return Status::Ok();
    }

    // Comparisons and plain arithmetic: convert both to the common type.
    const bool is_compare =
        expr.binary_op == BinaryOp::kEq || expr.binary_op == BinaryOp::kNe ||
        expr.binary_op == BinaryOp::kLt || expr.binary_op == BinaryOp::kLe ||
        expr.binary_op == BinaryOp::kGt || expr.binary_op == BinaryOp::kGe;

    ScalarType common;
    if (lhs.type.is_pointer || rhs.type.is_pointer) {
      common = ScalarType::kU64;  // Pointer comparison.
    } else if (expr.binary_op == BinaryOp::kShl ||
               expr.binary_op == BinaryOp::kShr) {
      common = expr.type.scalar;
    } else if (is_compare) {
      common = CommonArithmeticType(lhs.type.scalar, rhs.type.scalar);
    } else {
      common = expr.type.scalar;
    }

    HAOCL_RETURN_IF_ERROR(EmitExpr(lhs, true));
    if (!lhs.type.is_pointer) Convert(lhs.type.scalar, common);
    HAOCL_RETURN_IF_ERROR(EmitExpr(rhs, true));
    if (!rhs.type.is_pointer) Convert(rhs.type.scalar, common);

    Opcode op;
    switch (expr.binary_op) {
      case BinaryOp::kAdd: op = Opcode::kAdd; break;
      case BinaryOp::kSub: op = Opcode::kSub; break;
      case BinaryOp::kMul: op = Opcode::kMul; break;
      case BinaryOp::kDiv: op = Opcode::kDiv; break;
      case BinaryOp::kMod: op = Opcode::kMod; break;
      case BinaryOp::kBitAnd: op = Opcode::kBitAnd; break;
      case BinaryOp::kBitOr: op = Opcode::kBitOr; break;
      case BinaryOp::kBitXor: op = Opcode::kBitXor; break;
      case BinaryOp::kShl: op = Opcode::kShl; break;
      case BinaryOp::kShr: op = Opcode::kShr; break;
      case BinaryOp::kEq: op = Opcode::kEq; break;
      case BinaryOp::kNe: op = Opcode::kNe; break;
      case BinaryOp::kLt: op = Opcode::kLt; break;
      case BinaryOp::kLe: op = Opcode::kLe; break;
      case BinaryOp::kGt: op = Opcode::kGt; break;
      case BinaryOp::kGe: op = Opcode::kGe; break;
      default:
        return Status(ErrorCode::kInternal, "bad binary op");
    }
    Emit({op, common, 0, 0});
    return Status::Ok();
  }

  Status EmitUnary(const Expr& expr, bool want_value) {
    const Expr& operand = *expr.children[0];
    switch (expr.unary_op) {
      case UnaryOp::kPlus: {
        HAOCL_RETURN_IF_ERROR(EmitExpr(operand, true));
        Convert(operand.type.scalar, expr.type.scalar);
        if (!want_value) Emit({Opcode::kPop, ScalarType::kVoid, 0, 0});
        return Status::Ok();
      }
      case UnaryOp::kNeg:
        HAOCL_RETURN_IF_ERROR(EmitExpr(operand, true));
        Convert(operand.type.scalar, expr.type.scalar);
        Emit({Opcode::kNeg, expr.type.scalar, 0, 0});
        if (!want_value) Emit({Opcode::kPop, ScalarType::kVoid, 0, 0});
        return Status::Ok();
      case UnaryOp::kLogicalNot:
        HAOCL_RETURN_IF_ERROR(EmitExpr(operand, true));
        ToBool(operand.type);
        Emit({Opcode::kLogicalNot, ScalarType::kBool, 0, 0});
        if (!want_value) Emit({Opcode::kPop, ScalarType::kVoid, 0, 0});
        return Status::Ok();
      case UnaryOp::kBitNot:
        HAOCL_RETURN_IF_ERROR(EmitExpr(operand, true));
        Convert(operand.type.scalar, expr.type.scalar);
        Emit({Opcode::kBitNot, expr.type.scalar, 0, 0});
        if (!want_value) Emit({Opcode::kPop, ScalarType::kVoid, 0, 0});
        return Status::Ok();
      case UnaryOp::kPreInc:
      case UnaryOp::kPreDec:
      case UnaryOp::kPostInc:
      case UnaryOp::kPostDec:
        return EmitIncDec(expr, want_value);
    }
    return Status(ErrorCode::kInternal, "unhandled unary op in codegen");
  }

  Status EmitIncDec(const Expr& expr, bool want_value) {
    const Expr& operand = *expr.children[0];
    const bool is_inc = expr.unary_op == UnaryOp::kPreInc ||
                        expr.unary_op == UnaryOp::kPostInc;
    const bool is_post = expr.unary_op == UnaryOp::kPostInc ||
                         expr.unary_op == UnaryOp::kPostDec;

    // Emits "value +/- 1" for the value currently on top of the stack.
    auto apply_delta = [&](const Type& t) {
      if (t.is_pointer) {
        PushInt(is_inc ? 1 : -1);
        Emit({Opcode::kPtrAdd, ScalarType::kVoid,
              static_cast<std::int32_t>(ScalarSize(t.scalar)), 0});
      } else if (IsFloat(t.scalar)) {
        PushFloat(1.0);
        Convert(ScalarType::kF64, t.scalar);
        Emit({is_inc ? Opcode::kAdd : Opcode::kSub, t.scalar, 0, 0});
      } else {
        PushInt(1);
        Convert(ScalarType::kI64, t.scalar == ScalarType::kBool
                                      ? ScalarType::kI32
                                      : t.scalar);
        Emit({is_inc ? Opcode::kAdd : Opcode::kSub,
              t.scalar == ScalarType::kBool ? ScalarType::kI32 : t.scalar, 0,
              0});
      }
    };

    if (operand.kind == ExprKind::kVarRef && operand.symbol_slot >= 0) {
      Emit({Opcode::kLoadLocal, ScalarType::kVoid, operand.symbol_slot, 0});
      if (is_post && want_value) Emit({Opcode::kDup, ScalarType::kVoid, 0, 0});
      apply_delta(operand.type);
      if (!is_post && want_value) Emit({Opcode::kDup, ScalarType::kVoid, 0, 0});
      Emit({Opcode::kStoreLocal, ScalarType::kVoid, operand.symbol_slot, 0});
      return Status::Ok();
    }

    // Memory lvalue: go through scratch slots.
    if (operand.kind != ExprKind::kSubscript) {
      return ErrorAt(expr.loc, "++/-- needs a variable or array element");
    }
    const int addr_slot = AllocScratch();
    const int value_slot = AllocScratch();
    HAOCL_RETURN_IF_ERROR(EmitAddress(operand));
    Emit({Opcode::kStoreLocal, ScalarType::kVoid, addr_slot, 0});
    Emit({Opcode::kLoadLocal, ScalarType::kVoid, addr_slot, 0});
    Emit({Opcode::kLoadMem, operand.type.scalar, 0, 0});
    Emit({Opcode::kStoreLocal, ScalarType::kVoid, value_slot, 0});
    // Write back old +/- 1.
    Emit({Opcode::kLoadLocal, ScalarType::kVoid, addr_slot, 0});
    Emit({Opcode::kLoadLocal, ScalarType::kVoid, value_slot, 0});
    apply_delta(operand.type);
    if (!is_post) Emit({Opcode::kStoreLocal, ScalarType::kVoid, value_slot, 0});
    if (!is_post) Emit({Opcode::kLoadLocal, ScalarType::kVoid, value_slot, 0});
    Emit({Opcode::kStoreMem, operand.type.scalar, 0, 0});
    if (want_value) {
      Emit({Opcode::kLoadLocal, ScalarType::kVoid, value_slot, 0});
      if (!is_post) {
        // value_slot already holds the updated value (stored above).
      }
    }
    return Status::Ok();
  }

  Status EmitAssign(const Expr& expr, bool want_value) {
    const Expr& lhs = *expr.children[0];
    const Expr& rhs = *expr.children[1];

    // Scalar / pointer variable on the left.
    if (lhs.kind == ExprKind::kVarRef && lhs.symbol_slot >= 0) {
      if (expr.compound) {
        Emit({Opcode::kLoadLocal, ScalarType::kVoid, lhs.symbol_slot, 0});
        HAOCL_RETURN_IF_ERROR(EmitCompoundTop(expr, lhs, rhs));
      } else {
        HAOCL_RETURN_IF_ERROR(EmitExpr(rhs, true));
        if (!lhs.type.is_pointer) {
          Convert(rhs.type.is_pointer ? ScalarType::kU64 : rhs.type.scalar,
                  lhs.type.scalar);
        }
      }
      if (want_value) Emit({Opcode::kDup, ScalarType::kVoid, 0, 0});
      Emit({Opcode::kStoreLocal, ScalarType::kVoid, lhs.symbol_slot, 0});
      return Status::Ok();
    }

    if (lhs.kind != ExprKind::kSubscript) {
      return ErrorAt(expr.loc, "unsupported assignment target");
    }

    // Memory store: a[i] = v  or  a[i] op= v.
    HAOCL_RETURN_IF_ERROR(EmitAddress(lhs));
    if (expr.compound) {
      Emit({Opcode::kDup, ScalarType::kVoid, 0, 0});
      Emit({Opcode::kLoadMem, lhs.type.scalar, 0, 0});
      HAOCL_RETURN_IF_ERROR(EmitCompoundTop(expr, lhs, rhs));
    } else {
      HAOCL_RETURN_IF_ERROR(EmitExpr(rhs, true));
      Convert(rhs.type.is_pointer ? ScalarType::kU64 : rhs.type.scalar,
              lhs.type.scalar);
    }
    if (want_value) {
      const int value_slot = AllocScratch();
      Emit({Opcode::kStoreLocal, ScalarType::kVoid, value_slot, 0});
      Emit({Opcode::kLoadLocal, ScalarType::kVoid, value_slot, 0});
      Emit({Opcode::kStoreMem, lhs.type.scalar, 0, 0});
      Emit({Opcode::kLoadLocal, ScalarType::kVoid, value_slot, 0});
    } else {
      Emit({Opcode::kStoreMem, lhs.type.scalar, 0, 0});
    }
    return Status::Ok();
  }

  // With the current lhs VALUE on top of the stack, computes
  // `lhs_value op rhs` and leaves the result (converted back to the lhs
  // type) on the stack.
  Status EmitCompoundTop(const Expr& expr, const Expr& lhs, const Expr& rhs) {
    if (lhs.type.is_pointer) {
      HAOCL_RETURN_IF_ERROR(EmitExpr(rhs, true));
      Convert(rhs.type.scalar, ScalarType::kI64);
      if (expr.binary_op == BinaryOp::kSub) {
        Emit({Opcode::kNeg, ScalarType::kI64, 0, 0});
      }
      Emit({Opcode::kPtrAdd, ScalarType::kVoid,
            static_cast<std::int32_t>(ScalarSize(lhs.type.scalar)), 0});
      return Status::Ok();
    }
    const ScalarType common =
        CommonArithmeticType(lhs.type.scalar, rhs.type.scalar);
    Convert(lhs.type.scalar, common);
    HAOCL_RETURN_IF_ERROR(EmitExpr(rhs, true));
    Convert(rhs.type.scalar, common);
    Opcode op;
    switch (expr.binary_op) {
      case BinaryOp::kAdd: op = Opcode::kAdd; break;
      case BinaryOp::kSub: op = Opcode::kSub; break;
      case BinaryOp::kMul: op = Opcode::kMul; break;
      case BinaryOp::kDiv: op = Opcode::kDiv; break;
      case BinaryOp::kMod: op = Opcode::kMod; break;
      case BinaryOp::kBitAnd: op = Opcode::kBitAnd; break;
      case BinaryOp::kBitOr: op = Opcode::kBitOr; break;
      case BinaryOp::kBitXor: op = Opcode::kBitXor; break;
      case BinaryOp::kShl: op = Opcode::kShl; break;
      case BinaryOp::kShr: op = Opcode::kShr; break;
      default:
        return Status(ErrorCode::kInternal, "bad compound op");
    }
    Emit({op, common, 0, 0});
    Convert(common, lhs.type.scalar);
    return Status::Ok();
  }

  Status EmitCall(const Expr& expr, bool want_value) {
    // barrier().
    if (expr.builtin_id == -2) {
      Emit({Opcode::kBarrier, ScalarType::kVoid, 0, 0});
      return Status::Ok();
    }

    if (expr.builtin_id >= 0) {
      // Builtins: push args. Work-item and math builtins take converted
      // numeric args; atomics take a pointer + numeric operand(s).
      const auto id = static_cast<BuiltinId>(expr.builtin_id);
      for (const ExprPtr& arg : expr.children) {
        HAOCL_RETURN_IF_ERROR(EmitExpr(*arg, true));
        if (!arg->type.is_pointer) {
          // Math builtins compute in the result type; integer builtins in
          // their own type. The VM re-reads types from the instruction
          // stream, so convert numeric args to the builtin result type
          // except for atomics (operand matches pointee type).
          if (IsAtomic(id)) {
            Convert(arg->type.scalar, expr.type.scalar);
          } else if (IsFloat(expr.type.scalar)) {
            Convert(arg->type.scalar, expr.type.scalar);
          } else if (IsWorkItemFn(id)) {
            Convert(arg->type.scalar, ScalarType::kU32);
          } else {
            Convert(arg->type.scalar, expr.type.scalar);
          }
        }
      }
      Emit({Opcode::kCallBuiltin, expr.type.scalar, expr.builtin_id,
            static_cast<std::int32_t>(expr.children.size())});
      if (!want_value && !expr.type.IsVoid()) {
        Emit({Opcode::kPop, ScalarType::kVoid, 0, 0});
      }
      return Status::Ok();
    }

    // User function call: push args converted to parameter types.
    const FunctionDecl& callee = *unit_.functions[expr.callee_index];
    for (std::size_t i = 0; i < expr.children.size(); ++i) {
      const Expr& arg = *expr.children[i];
      HAOCL_RETURN_IF_ERROR(EmitExpr(arg, true));
      const Type& param_type = callee.params[i].type;
      if (!param_type.is_pointer && !arg.type.is_pointer) {
        Convert(arg.type.scalar, param_type.scalar);
      }
    }
    Emit({Opcode::kCall, ScalarType::kVoid, expr.callee_index,
          static_cast<std::int32_t>(expr.children.size())});
    if (!want_value && !callee.return_type.IsVoid()) {
      Emit({Opcode::kPop, ScalarType::kVoid, 0, 0});
    }
    return Status::Ok();
  }

  static bool IsAtomic(BuiltinId id) {
    return id >= BuiltinId::kAtomicAdd && id <= BuiltinId::kAtomicCmpxchg;
  }
  static bool IsWorkItemFn(BuiltinId id) {
    return id >= BuiltinId::kGetGlobalId && id <= BuiltinId::kGetWorkDim;
  }

  struct LoopContext {
    std::vector<std::size_t> breaks;
    std::vector<std::size_t> continues;
  };

  const TranslationUnit& unit_;
  const FunctionDecl& fn_;
  Module& module_;
  std::unordered_map<std::uint64_t, std::int32_t> literal_index_;
  std::vector<LoopContext> loops_;
  std::vector<bool> slot_uniform_;  // See AnalyzeUniformity().
  std::vector<LaneDep> slot_lane_;  // See AnalyzeLaneDep().
  int next_slot_ = 0;
};

}  // namespace

Expected<Module> Generate(const TranslationUnit& unit) {
  Module module;
  for (const auto& fn : unit.functions) {
    FunctionGen gen(unit, *fn, module);
    HAOCL_RETURN_IF_ERROR(gen.Run());
  }
  return module;
}

}  // namespace haocl::oclc
