// Type system for the OpenCL C subset compiled by HaoCL's device drivers.
//
// Supported: the scalar types of OpenCL C (bool, char..ulong, float,
// double, size_t), and single-level pointers qualified by an address space
// (__global, __local, __constant, __private). Vector types, structs and
// images are outside the subset (none of the paper's benchmarks need them).
#pragma once

#include <cstdint>
#include <string>

namespace haocl::oclc {

enum class ScalarType : std::uint8_t {
  kVoid,
  kBool,
  kI8,   // char
  kU8,   // uchar
  kI16,  // short
  kU16,  // ushort
  kI32,  // int
  kU32,  // uint
  kI64,  // long
  kU64,  // ulong, size_t
  kF32,  // float
  kF64,  // double
};

enum class AddressSpace : std::uint8_t {
  kPrivate = 0,
  kGlobal = 1,
  kLocal = 2,
  kConstant = 3,
};

[[nodiscard]] constexpr std::size_t ScalarSize(ScalarType t) noexcept {
  switch (t) {
    case ScalarType::kVoid: return 0;
    case ScalarType::kBool:
    case ScalarType::kI8:
    case ScalarType::kU8: return 1;
    case ScalarType::kI16:
    case ScalarType::kU16: return 2;
    case ScalarType::kI32:
    case ScalarType::kU32:
    case ScalarType::kF32: return 4;
    case ScalarType::kI64:
    case ScalarType::kU64:
    case ScalarType::kF64: return 8;
  }
  return 0;
}

[[nodiscard]] constexpr bool IsFloat(ScalarType t) noexcept {
  return t == ScalarType::kF32 || t == ScalarType::kF64;
}

[[nodiscard]] constexpr bool IsInteger(ScalarType t) noexcept {
  return t >= ScalarType::kI8 && t <= ScalarType::kU64;
}

[[nodiscard]] constexpr bool IsSignedInt(ScalarType t) noexcept {
  return t == ScalarType::kI8 || t == ScalarType::kI16 ||
         t == ScalarType::kI32 || t == ScalarType::kI64;
}

[[nodiscard]] constexpr bool IsUnsignedInt(ScalarType t) noexcept {
  return t == ScalarType::kU8 || t == ScalarType::kU16 ||
         t == ScalarType::kU32 || t == ScalarType::kU64;
}

const char* ScalarTypeName(ScalarType t) noexcept;
const char* AddressSpaceName(AddressSpace s) noexcept;

// A complete type: a scalar, or a pointer to a scalar in an address space.
struct Type {
  ScalarType scalar = ScalarType::kVoid;
  bool is_pointer = false;
  AddressSpace space = AddressSpace::kPrivate;  // Pointee space if pointer.

  static Type Scalar(ScalarType t) { return Type{t, false, {}}; }
  static Type Pointer(ScalarType pointee, AddressSpace space) {
    return Type{pointee, true, space};
  }
  static Type Void() { return Scalar(ScalarType::kVoid); }

  [[nodiscard]] bool IsVoid() const noexcept {
    return !is_pointer && scalar == ScalarType::kVoid;
  }
  [[nodiscard]] bool IsNumeric() const noexcept {
    return !is_pointer && (IsInteger(scalar) || IsFloat(scalar) ||
                           scalar == ScalarType::kBool);
  }

  friend bool operator==(const Type&, const Type&) = default;

  [[nodiscard]] std::string ToString() const;
};

// Usual arithmetic conversions over the subset: the common type both
// operands are converted to before a binary arithmetic operation.
// Mirrors C: everything below int promotes to int first.
[[nodiscard]] ScalarType CommonArithmeticType(ScalarType a,
                                              ScalarType b) noexcept;

// Integer promotion applied to a single operand (unary ops).
[[nodiscard]] ScalarType Promote(ScalarType t) noexcept;

}  // namespace haocl::oclc
