// Token stream definitions for the OpenCL C lexer.
#pragma once

#include <cstdint>
#include <string>

namespace haocl::oclc {

enum class TokenKind : std::uint8_t {
  kEnd,
  kIdentifier,
  kIntLiteral,
  kFloatLiteral,
  kKeyword,
  // Punctuation & operators.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemicolon, kQuestion, kColon,
  kAssign,          // =
  kPlus, kMinus, kStar, kSlash, kPercent,
  kPlusPlus, kMinusMinus,
  kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign, kPercentAssign,
  kAmpAssign, kPipeAssign, kCaretAssign, kShlAssign, kShrAssign,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAmpAmp, kPipePipe, kBang,
  kAmp, kPipe, kCaret, kTilde, kShl, kShr,
};

struct SourceLocation {
  int line = 1;
  int column = 1;
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;          // Identifier / keyword spelling.
  std::uint64_t int_value = 0;
  double float_value = 0.0;
  bool is_unsigned = false;  // Literal suffix u/U seen.
  bool is_long = false;      // Literal suffix l/L seen.
  bool is_float_suffix = false;  // Literal suffix f/F seen.
  SourceLocation loc;
};

const char* TokenKindName(TokenKind kind) noexcept;

}  // namespace haocl::oclc
