#include "oclc/program.h"

#include "oclc/codegen.h"
#include "oclc/parser.h"
#include "oclc/sema.h"

namespace haocl::oclc {

Expected<std::shared_ptr<const Module>> Compile(const std::string& source) {
  auto unit = Parse(source);
  if (!unit.ok()) return unit.status();
  HAOCL_RETURN_IF_ERROR(Analyze(**unit));
  auto module = Generate(**unit);
  if (!module.ok()) return module.status();
  return std::make_shared<const Module>(*std::move(module));
}

CompileResult CompileWithLog(const std::string& source) {
  CompileResult result;
  auto module = Compile(source);
  if (module.ok()) {
    result.module = *std::move(module);
  } else {
    result.build_log = module.status().ToString();
  }
  return result;
}

}  // namespace haocl::oclc
