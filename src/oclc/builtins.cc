#include "oclc/builtins.h"

#include <array>

namespace haocl::oclc {
namespace {

struct NameEntry {
  const char* name;
  BuiltinId id;
};

constexpr NameEntry kNames[] = {
    {"get_global_id", BuiltinId::kGetGlobalId},
    {"get_local_id", BuiltinId::kGetLocalId},
    {"get_group_id", BuiltinId::kGetGroupId},
    {"get_global_size", BuiltinId::kGetGlobalSize},
    {"get_local_size", BuiltinId::kGetLocalSize},
    {"get_num_groups", BuiltinId::kGetNumGroups},
    {"get_global_offset", BuiltinId::kGetGlobalOffset},
    {"get_work_dim", BuiltinId::kGetWorkDim},
    {"sqrt", BuiltinId::kSqrt},
    {"rsqrt", BuiltinId::kRsqrt},
    {"fabs", BuiltinId::kFabs},
    {"exp", BuiltinId::kExp},
    {"log", BuiltinId::kLog},
    {"log2", BuiltinId::kLog2},
    {"sin", BuiltinId::kSin},
    {"cos", BuiltinId::kCos},
    {"tan", BuiltinId::kTan},
    {"pow", BuiltinId::kPow},
    {"floor", BuiltinId::kFloor},
    {"ceil", BuiltinId::kCeil},
    {"fmod", BuiltinId::kFmod},
    {"fmin", BuiltinId::kFmin},
    {"fmax", BuiltinId::kFmax},
    {"mad", BuiltinId::kMad},
    {"fma", BuiltinId::kFma},
    {"native_sqrt", BuiltinId::kNativeSqrt},
    {"native_exp", BuiltinId::kNativeExp},
    {"native_log", BuiltinId::kNativeLog},
    {"min", BuiltinId::kMin},
    {"max", BuiltinId::kMax},
    {"abs", BuiltinId::kAbs},
    {"clamp", BuiltinId::kClamp},
    {"atomic_add", BuiltinId::kAtomicAdd},
    {"atom_add", BuiltinId::kAtomicAdd},
    {"atomic_sub", BuiltinId::kAtomicSub},
    {"atomic_min", BuiltinId::kAtomicMin},
    {"atomic_max", BuiltinId::kAtomicMax},
    {"atomic_inc", BuiltinId::kAtomicInc},
    {"atomic_dec", BuiltinId::kAtomicDec},
    {"atomic_or", BuiltinId::kAtomicOr},
    {"atomic_and", BuiltinId::kAtomicAnd},
    {"atomic_xchg", BuiltinId::kAtomicXchg},
    {"atomic_cmpxchg", BuiltinId::kAtomicCmpxchg},
};

std::optional<BuiltinId> LookupName(const std::string& name) {
  for (const auto& entry : kNames) {
    if (name == entry.name) return entry.id;
  }
  return std::nullopt;
}

bool AllNumeric(const std::vector<Type>& args) {
  for (const Type& t : args) {
    if (!t.IsNumeric()) return false;
  }
  return true;
}

// Result category of an N-ary math builtin: f64 if any arg is f64 (or an
// integer, which converts to the float type), else f32.
ScalarType FloatResult(const std::vector<Type>& args) {
  for (const Type& t : args) {
    if (t.scalar == ScalarType::kF64) return ScalarType::kF64;
  }
  for (const Type& t : args) {
    if (IsInteger(t.scalar)) return ScalarType::kF64;  // C default promotion.
  }
  return ScalarType::kF32;
}

}  // namespace

bool IsBuiltinName(const std::string& name) {
  return LookupName(name).has_value();
}

const char* BuiltinName(BuiltinId id) noexcept {
  for (const auto& entry : kNames) {
    if (entry.id == id) return entry.name;
  }
  return "?";
}

std::optional<BuiltinSignature> ResolveBuiltin(
    const std::string& name, const std::vector<Type>& arg_types) {
  auto id = LookupName(name);
  if (!id.has_value()) return std::nullopt;

  const std::size_t argc = arg_types.size();
  auto sig = [&](Type result) {
    return BuiltinSignature{*id, result};
  };

  switch (*id) {
    case BuiltinId::kGetGlobalId:
    case BuiltinId::kGetLocalId:
    case BuiltinId::kGetGroupId:
    case BuiltinId::kGetGlobalSize:
    case BuiltinId::kGetLocalSize:
    case BuiltinId::kGetNumGroups:
    case BuiltinId::kGetGlobalOffset:
      if (argc != 1 || !arg_types[0].IsNumeric()) return std::nullopt;
      return sig(Type::Scalar(ScalarType::kU64));  // size_t
    case BuiltinId::kGetWorkDim:
      if (argc != 0) return std::nullopt;
      return sig(Type::Scalar(ScalarType::kU32));

    case BuiltinId::kSqrt:
    case BuiltinId::kRsqrt:
    case BuiltinId::kFabs:
    case BuiltinId::kExp:
    case BuiltinId::kLog:
    case BuiltinId::kLog2:
    case BuiltinId::kSin:
    case BuiltinId::kCos:
    case BuiltinId::kTan:
    case BuiltinId::kFloor:
    case BuiltinId::kCeil:
    case BuiltinId::kNativeSqrt:
    case BuiltinId::kNativeExp:
    case BuiltinId::kNativeLog:
      if (argc != 1 || !AllNumeric(arg_types)) return std::nullopt;
      return sig(Type::Scalar(FloatResult(arg_types)));

    case BuiltinId::kPow:
    case BuiltinId::kFmod:
    case BuiltinId::kFmin:
    case BuiltinId::kFmax:
      if (argc != 2 || !AllNumeric(arg_types)) return std::nullopt;
      return sig(Type::Scalar(FloatResult(arg_types)));

    case BuiltinId::kMad:
    case BuiltinId::kFma:
      if (argc != 3 || !AllNumeric(arg_types)) return std::nullopt;
      return sig(Type::Scalar(FloatResult(arg_types)));

    case BuiltinId::kMin:
    case BuiltinId::kMax: {
      if (argc != 2 || !AllNumeric(arg_types)) return std::nullopt;
      if (IsFloat(arg_types[0].scalar) || IsFloat(arg_types[1].scalar)) {
        return sig(Type::Scalar(FloatResult(arg_types)));
      }
      return sig(Type::Scalar(
          CommonArithmeticType(arg_types[0].scalar, arg_types[1].scalar)));
    }
    case BuiltinId::kAbs: {
      if (argc != 1 || !AllNumeric(arg_types)) return std::nullopt;
      if (IsFloat(arg_types[0].scalar)) {
        return sig(Type::Scalar(arg_types[0].scalar));
      }
      // OpenCL abs returns the unsigned counterpart; we keep the promoted
      // signed type for subset simplicity (values are non-negative anyway).
      return sig(Type::Scalar(Promote(arg_types[0].scalar)));
    }
    case BuiltinId::kClamp: {
      if (argc != 3 || !AllNumeric(arg_types)) return std::nullopt;
      ScalarType t = arg_types[0].scalar;
      if (IsFloat(t) || IsFloat(arg_types[1].scalar) ||
          IsFloat(arg_types[2].scalar)) {
        return sig(Type::Scalar(FloatResult(arg_types)));
      }
      return sig(Type::Scalar(Promote(t)));
    }

    case BuiltinId::kAtomicAdd:
    case BuiltinId::kAtomicSub:
    case BuiltinId::kAtomicMin:
    case BuiltinId::kAtomicMax:
    case BuiltinId::kAtomicOr:
    case BuiltinId::kAtomicAnd:
    case BuiltinId::kAtomicXchg: {
      if (argc != 2) return std::nullopt;
      const Type& ptr = arg_types[0];
      if (!ptr.is_pointer || !arg_types[1].IsNumeric()) return std::nullopt;
      if (ptr.scalar != ScalarType::kI32 && ptr.scalar != ScalarType::kU32) {
        return std::nullopt;
      }
      return sig(Type::Scalar(ptr.scalar));  // Returns the old value.
    }
    case BuiltinId::kAtomicInc:
    case BuiltinId::kAtomicDec: {
      if (argc != 1) return std::nullopt;
      const Type& ptr = arg_types[0];
      if (!ptr.is_pointer) return std::nullopt;
      if (ptr.scalar != ScalarType::kI32 && ptr.scalar != ScalarType::kU32) {
        return std::nullopt;
      }
      return sig(Type::Scalar(ptr.scalar));
    }
    case BuiltinId::kAtomicCmpxchg: {
      if (argc != 3) return std::nullopt;
      const Type& ptr = arg_types[0];
      if (!ptr.is_pointer || !arg_types[1].IsNumeric() ||
          !arg_types[2].IsNumeric()) {
        return std::nullopt;
      }
      if (ptr.scalar != ScalarType::kI32 && ptr.scalar != ScalarType::kU32) {
        return std::nullopt;
      }
      return sig(Type::Scalar(ptr.scalar));
    }
    case BuiltinId::kCount:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace haocl::oclc
