#include "oclc/sema.h"

#include <memory>
#include <unordered_map>
#include <vector>

#include "oclc/builtins.h"

namespace haocl::oclc {
namespace {

struct Symbol {
  Type type;
  int slot = -1;            // Scalar variables / pointer variables.
  bool is_array = false;
  int alloc_index = -1;     // Array allocation id within the function.
  AddressSpace array_space = AddressSpace::kPrivate;
  ScalarType array_elem = ScalarType::kF32;
};

class Scope {
 public:
  explicit Scope(Scope* parent) : parent_(parent) {}

  bool Declare(const std::string& name, Symbol symbol) {
    return symbols_.emplace(name, symbol).second;
  }

  const Symbol* Lookup(const std::string& name) const {
    auto it = symbols_.find(name);
    if (it != symbols_.end()) return &it->second;
    return parent_ != nullptr ? parent_->Lookup(name) : nullptr;
  }

  Scope* parent() const { return parent_; }

 private:
  Scope* parent_;
  std::unordered_map<std::string, Symbol> symbols_;
};

class Analyzer {
 public:
  explicit Analyzer(TranslationUnit& unit) : unit_(unit) {}

  Status Run() {
    // Pass 1: register all functions (allows forward calls).
    for (std::size_t i = 0; i < unit_.functions.size(); ++i) {
      FunctionDecl* fn = unit_.functions[i].get();
      fn->index = static_cast<int>(i);
      if (functions_.count(fn->name) != 0) {
        return ErrorAt(fn->loc, "redefinition of function '" + fn->name + "'");
      }
      if (IsBuiltinName(fn->name)) {
        return ErrorAt(fn->loc,
                       "function '" + fn->name + "' shadows a builtin");
      }
      functions_[fn->name] = fn;
    }
    // Pass 2: analyze bodies.
    for (auto& fn : unit_.functions) {
      HAOCL_RETURN_IF_ERROR(AnalyzeFunction(*fn));
    }
    return Status::Ok();
  }

 private:
  static Status ErrorAt(SourceLocation loc, const std::string& what) {
    return Status(ErrorCode::kBuildProgramFailure,
                  "semantic error at line " + std::to_string(loc.line) + ":" +
                      std::to_string(loc.column) + ": " + what);
  }

  Status AnalyzeFunction(FunctionDecl& fn) {
    current_fn_ = &fn;
    next_slot_ = 0;
    array_count_ = 0;

    Scope scope(nullptr);
    for (ParamDecl& param : fn.params) {
      if (param.type.IsVoid()) {
        return ErrorAt(param.loc, "parameter cannot have void type");
      }
      Symbol symbol;
      symbol.type = param.type;
      symbol.slot = next_slot_++;
      param.slot = symbol.slot;
      if (!scope.Declare(param.name, symbol)) {
        return ErrorAt(param.loc, "duplicate parameter '" + param.name + "'");
      }
    }
    HAOCL_RETURN_IF_ERROR(AnalyzeStmt(*fn.body, scope));
    fn.local_slot_count = next_slot_;
    return Status::Ok();
  }

  // ------------------------------------------------------------- Statements

  Status AnalyzeStmt(Stmt& stmt, Scope& scope) {
    switch (stmt.kind) {
      case StmtKind::kEmpty:
        return Status::Ok();
      case StmtKind::kExpr:
        return AnalyzeExpr(*stmt.expr, scope);
      case StmtKind::kBlock: {
        Scope inner(&scope);
        for (auto& child : stmt.body) {
          HAOCL_RETURN_IF_ERROR(AnalyzeStmt(*child, inner));
        }
        return Status::Ok();
      }
      case StmtKind::kDecl:
        return AnalyzeDecl(stmt, scope);
      case StmtKind::kIf: {
        HAOCL_RETURN_IF_ERROR(AnalyzeCondition(*stmt.cond, scope));
        HAOCL_RETURN_IF_ERROR(AnalyzeStmt(*stmt.body[0], scope));
        if (stmt.body.size() > 1) {
          HAOCL_RETURN_IF_ERROR(AnalyzeStmt(*stmt.body[1], scope));
        }
        return Status::Ok();
      }
      case StmtKind::kFor: {
        Scope inner(&scope);
        if (stmt.body[0] != nullptr) {
          HAOCL_RETURN_IF_ERROR(AnalyzeStmt(*stmt.body[0], inner));
        }
        if (stmt.cond != nullptr) {
          HAOCL_RETURN_IF_ERROR(AnalyzeCondition(*stmt.cond, inner));
        }
        if (stmt.step != nullptr) {
          HAOCL_RETURN_IF_ERROR(AnalyzeExpr(*stmt.step, inner));
        }
        ++loop_depth_;
        Status body_status = AnalyzeStmt(*stmt.body[1], inner);
        --loop_depth_;
        return body_status;
      }
      case StmtKind::kWhile:
      case StmtKind::kDoWhile: {
        HAOCL_RETURN_IF_ERROR(AnalyzeCondition(*stmt.cond, scope));
        ++loop_depth_;
        Status body_status = AnalyzeStmt(*stmt.body[0], scope);
        --loop_depth_;
        return body_status;
      }
      case StmtKind::kReturn: {
        if (stmt.expr == nullptr) {
          if (!current_fn_->return_type.IsVoid()) {
            return ErrorAt(stmt.loc, "non-void function must return a value");
          }
          return Status::Ok();
        }
        if (current_fn_->return_type.IsVoid()) {
          return ErrorAt(stmt.loc, "void function cannot return a value");
        }
        HAOCL_RETURN_IF_ERROR(AnalyzeExpr(*stmt.expr, scope));
        return CheckConvertible(stmt.expr->type, current_fn_->return_type,
                                stmt.loc, "return value");
      }
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        if (loop_depth_ == 0) {
          return ErrorAt(stmt.loc, "break/continue outside of a loop");
        }
        return Status::Ok();
    }
    return Status(ErrorCode::kInternal, "unhandled statement kind");
  }

  Status AnalyzeDecl(Stmt& stmt, Scope& scope) {
    for (Declarator& decl : stmt.declarators) {
      Symbol symbol;
      if (decl.array_size != nullptr) {
        // Array declaration: __local (work-group shared) or __private.
        if (stmt.decl_type.is_pointer) {
          return ErrorAt(decl.loc, "arrays of pointers are not supported");
        }
        if (!current_fn_->is_kernel) {
          // Keeps the VM's memory-region table per-launch instead of
          // per-frame; helper functions use scalars and caller pointers.
          return ErrorAt(decl.loc,
                         "array variables may only be declared in kernels");
        }
        if (stmt.decl_space == AddressSpace::kConstant) {
          return ErrorAt(decl.loc,
                         "__constant variables are not supported in bodies");
        }
        HAOCL_RETURN_IF_ERROR(AnalyzeExpr(*decl.array_size, scope));
        std::int64_t count = 0;
        if (!FoldIntConstant(*decl.array_size, &count) || count <= 0) {
          return ErrorAt(decl.loc,
                         "array size must be a positive integer constant");
        }
        decl.array_count = count;
        decl.alloc_index = array_count_++;
        if (decl.init != nullptr) {
          return ErrorAt(decl.loc, "array initializers are not supported");
        }
        symbol.is_array = true;
        symbol.alloc_index = decl.alloc_index;
        symbol.array_space = stmt.decl_space;
        symbol.array_elem = stmt.decl_type.scalar;
        symbol.type = Type::Pointer(stmt.decl_type.scalar, stmt.decl_space);
      } else {
        if (stmt.decl_space == AddressSpace::kLocal) {
          return ErrorAt(decl.loc,
                         "scalar __local variables are not supported; "
                         "declare a __local array instead");
        }
        if (stmt.decl_type.IsVoid()) {
          return ErrorAt(decl.loc, "cannot declare a void variable");
        }
        symbol.type = stmt.decl_type;
        symbol.slot = next_slot_++;
        decl.slot = symbol.slot;
        if (decl.init != nullptr) {
          HAOCL_RETURN_IF_ERROR(AnalyzeExpr(*decl.init, scope));
          HAOCL_RETURN_IF_ERROR(CheckConvertible(decl.init->type, symbol.type,
                                                 decl.loc,
                                                 "initializer for '" +
                                                     decl.name + "'"));
        }
      }
      if (!scope.Declare(decl.name, symbol)) {
        return ErrorAt(decl.loc, "redefinition of '" + decl.name + "'");
      }
    }
    return Status::Ok();
  }

  Status AnalyzeCondition(Expr& expr, Scope& scope) {
    HAOCL_RETURN_IF_ERROR(AnalyzeExpr(expr, scope));
    if (!expr.type.IsNumeric() && !expr.type.is_pointer) {
      return ErrorAt(expr.loc, "condition must be numeric");
    }
    return Status::Ok();
  }

  // ------------------------------------------------------------ Expressions

  Status AnalyzeExpr(Expr& expr, Scope& scope) {
    switch (expr.kind) {
      case ExprKind::kIntLiteral: {
        ScalarType t = ScalarType::kI32;
        if (expr.literal_unsigned && expr.literal_long) {
          t = ScalarType::kU64;
        } else if (expr.literal_long) {
          t = ScalarType::kI64;
        } else if (expr.literal_unsigned) {
          t = ScalarType::kU32;
        } else if (expr.int_value > 0x7fffffffULL) {
          t = expr.int_value > 0x7fffffffffffffffULL ? ScalarType::kU64
                                                     : ScalarType::kI64;
        }
        expr.type = Type::Scalar(t);
        return Status::Ok();
      }
      case ExprKind::kFloatLiteral:
        expr.type = Type::Scalar(expr.literal_float32 ? ScalarType::kF32
                                                      : ScalarType::kF64);
        return Status::Ok();
      case ExprKind::kBoolLiteral:
        expr.type = Type::Scalar(ScalarType::kBool);
        return Status::Ok();
      case ExprKind::kVarRef: {
        const Symbol* symbol = scope.Lookup(expr.name);
        if (symbol == nullptr) {
          return ErrorAt(expr.loc, "use of undeclared name '" + expr.name + "'");
        }
        expr.type = symbol->type;
        expr.symbol_slot = symbol->is_array ? -1 : symbol->slot;
        if (symbol->is_array) {
          // VarRef to an array decays to a pointer constant; codegen needs
          // the allocation id, carried via builtin_id (repurposed field).
          expr.builtin_id = symbol->alloc_index;
        }
        return Status::Ok();
      }
      case ExprKind::kBinary:
        return AnalyzeBinary(expr, scope);
      case ExprKind::kUnary:
        return AnalyzeUnary(expr, scope);
      case ExprKind::kAssign:
        return AnalyzeAssign(expr, scope);
      case ExprKind::kCall:
        return AnalyzeCall(expr, scope);
      case ExprKind::kSubscript: {
        Expr& base = *expr.children[0];
        Expr& index = *expr.children[1];
        HAOCL_RETURN_IF_ERROR(AnalyzeExpr(base, scope));
        HAOCL_RETURN_IF_ERROR(AnalyzeExpr(index, scope));
        if (!base.type.is_pointer) {
          return ErrorAt(expr.loc, "subscripted value is not a pointer");
        }
        if (!index.type.IsNumeric() || IsFloat(index.type.scalar)) {
          return ErrorAt(expr.loc, "array index must be an integer");
        }
        expr.type = Type::Scalar(base.type.scalar);
        return Status::Ok();
      }
      case ExprKind::kCast: {
        Expr& operand = *expr.children[0];
        HAOCL_RETURN_IF_ERROR(AnalyzeExpr(operand, scope));
        if (expr.cast_type.is_pointer) {
          if (!operand.type.is_pointer) {
            return ErrorAt(expr.loc, "cannot cast non-pointer to pointer");
          }
          if (operand.type.space != expr.cast_type.space) {
            return ErrorAt(expr.loc,
                           "pointer cast cannot change address space");
          }
        } else if (!operand.type.IsNumeric()) {
          return ErrorAt(expr.loc, "cannot cast a pointer to a scalar");
        }
        expr.type = expr.cast_type;
        return Status::Ok();
      }
      case ExprKind::kTernary: {
        Expr& cond = *expr.children[0];
        Expr& then_expr = *expr.children[1];
        Expr& else_expr = *expr.children[2];
        HAOCL_RETURN_IF_ERROR(AnalyzeCondition(cond, scope));
        HAOCL_RETURN_IF_ERROR(AnalyzeExpr(then_expr, scope));
        HAOCL_RETURN_IF_ERROR(AnalyzeExpr(else_expr, scope));
        if (then_expr.type.is_pointer || else_expr.type.is_pointer) {
          if (then_expr.type != else_expr.type) {
            return ErrorAt(expr.loc, "ternary branches have different types");
          }
          expr.type = then_expr.type;
        } else {
          expr.type = Type::Scalar(CommonArithmeticType(
              then_expr.type.scalar, else_expr.type.scalar));
        }
        return Status::Ok();
      }
    }
    return Status(ErrorCode::kInternal, "unhandled expression kind");
  }

  Status AnalyzeBinary(Expr& expr, Scope& scope) {
    Expr& lhs = *expr.children[0];
    Expr& rhs = *expr.children[1];
    HAOCL_RETURN_IF_ERROR(AnalyzeExpr(lhs, scope));
    HAOCL_RETURN_IF_ERROR(AnalyzeExpr(rhs, scope));

    switch (expr.binary_op) {
      case BinaryOp::kLogicalAnd:
      case BinaryOp::kLogicalOr:
        if ((!lhs.type.IsNumeric() && !lhs.type.is_pointer) ||
            (!rhs.type.IsNumeric() && !rhs.type.is_pointer)) {
          return ErrorAt(expr.loc, "logical operands must be scalar");
        }
        expr.type = Type::Scalar(ScalarType::kBool);
        return Status::Ok();
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        if (lhs.type.is_pointer != rhs.type.is_pointer) {
          return ErrorAt(expr.loc, "cannot compare pointer with scalar");
        }
        if (!lhs.type.is_pointer &&
            (!lhs.type.IsNumeric() || !rhs.type.IsNumeric())) {
          return ErrorAt(expr.loc, "comparison needs numeric operands");
        }
        expr.type = Type::Scalar(ScalarType::kBool);
        return Status::Ok();
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
        // Pointer arithmetic: ptr +/- int.
        if (lhs.type.is_pointer && rhs.type.IsNumeric() &&
            !IsFloat(rhs.type.scalar)) {
          expr.type = lhs.type;
          return Status::Ok();
        }
        if (expr.binary_op == BinaryOp::kAdd && rhs.type.is_pointer &&
            lhs.type.IsNumeric() && !IsFloat(lhs.type.scalar)) {
          expr.type = rhs.type;
          return Status::Ok();
        }
        [[fallthrough]];
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
        if (!lhs.type.IsNumeric() || !rhs.type.IsNumeric()) {
          return ErrorAt(expr.loc, "arithmetic needs numeric operands");
        }
        expr.type = Type::Scalar(
            CommonArithmeticType(lhs.type.scalar, rhs.type.scalar));
        return Status::Ok();
      case BinaryOp::kMod:
      case BinaryOp::kBitAnd:
      case BinaryOp::kBitOr:
      case BinaryOp::kBitXor:
      case BinaryOp::kShl:
      case BinaryOp::kShr:
        if (!lhs.type.IsNumeric() || IsFloat(lhs.type.scalar) ||
            !rhs.type.IsNumeric() || IsFloat(rhs.type.scalar)) {
          return ErrorAt(expr.loc, "integer operation needs integer operands");
        }
        if (expr.binary_op == BinaryOp::kShl ||
            expr.binary_op == BinaryOp::kShr) {
          expr.type = Type::Scalar(Promote(lhs.type.scalar));
        } else {
          expr.type = Type::Scalar(
              CommonArithmeticType(lhs.type.scalar, rhs.type.scalar));
        }
        return Status::Ok();
    }
    return Status(ErrorCode::kInternal, "unhandled binary op");
  }

  Status AnalyzeUnary(Expr& expr, Scope& scope) {
    Expr& operand = *expr.children[0];
    HAOCL_RETURN_IF_ERROR(AnalyzeExpr(operand, scope));
    switch (expr.unary_op) {
      case UnaryOp::kNeg:
      case UnaryOp::kPlus:
        if (!operand.type.IsNumeric()) {
          return ErrorAt(expr.loc, "unary +/- needs a numeric operand");
        }
        expr.type = Type::Scalar(Promote(operand.type.scalar));
        return Status::Ok();
      case UnaryOp::kLogicalNot:
        if (!operand.type.IsNumeric() && !operand.type.is_pointer) {
          return ErrorAt(expr.loc, "'!' needs a scalar operand");
        }
        expr.type = Type::Scalar(ScalarType::kBool);
        return Status::Ok();
      case UnaryOp::kBitNot:
        if (!operand.type.IsNumeric() || IsFloat(operand.type.scalar)) {
          return ErrorAt(expr.loc, "'~' needs an integer operand");
        }
        expr.type = Type::Scalar(Promote(operand.type.scalar));
        return Status::Ok();
      case UnaryOp::kPreInc:
      case UnaryOp::kPreDec:
      case UnaryOp::kPostInc:
      case UnaryOp::kPostDec:
        HAOCL_RETURN_IF_ERROR(CheckLvalue(operand, "increment/decrement"));
        if (!operand.type.IsNumeric() && !operand.type.is_pointer) {
          return ErrorAt(expr.loc, "++/-- needs a numeric or pointer operand");
        }
        expr.type = operand.type;
        return Status::Ok();
    }
    return Status(ErrorCode::kInternal, "unhandled unary op");
  }

  Status AnalyzeAssign(Expr& expr, Scope& scope) {
    Expr& lhs = *expr.children[0];
    Expr& rhs = *expr.children[1];
    HAOCL_RETURN_IF_ERROR(AnalyzeExpr(lhs, scope));
    HAOCL_RETURN_IF_ERROR(AnalyzeExpr(rhs, scope));
    HAOCL_RETURN_IF_ERROR(CheckLvalue(lhs, "assignment"));

    if (lhs.type.is_pointer) {
      if (expr.compound) {
        if (expr.binary_op != BinaryOp::kAdd &&
            expr.binary_op != BinaryOp::kSub) {
          return ErrorAt(expr.loc, "invalid compound op on pointer");
        }
        if (!rhs.type.IsNumeric() || IsFloat(rhs.type.scalar)) {
          return ErrorAt(expr.loc, "pointer += needs an integer");
        }
      } else if (!rhs.type.is_pointer || rhs.type != lhs.type) {
        return ErrorAt(expr.loc, "incompatible pointer assignment");
      }
    } else {
      if (!rhs.type.IsNumeric()) {
        return ErrorAt(expr.loc, "cannot assign pointer to scalar");
      }
      if (expr.compound) {
        const bool integer_only =
            expr.binary_op == BinaryOp::kMod ||
            expr.binary_op == BinaryOp::kBitAnd ||
            expr.binary_op == BinaryOp::kBitOr ||
            expr.binary_op == BinaryOp::kBitXor ||
            expr.binary_op == BinaryOp::kShl ||
            expr.binary_op == BinaryOp::kShr;
        if (integer_only &&
            (IsFloat(lhs.type.scalar) || IsFloat(rhs.type.scalar))) {
          return ErrorAt(expr.loc, "integer compound op on float operand");
        }
      }
    }
    expr.type = lhs.type;
    return Status::Ok();
  }

  Status AnalyzeCall(Expr& expr, Scope& scope) {
    std::vector<Type> arg_types;
    arg_types.reserve(expr.children.size());
    for (auto& arg : expr.children) {
      HAOCL_RETURN_IF_ERROR(AnalyzeExpr(*arg, scope));
      arg_types.push_back(arg->type);
    }

    // barrier() is special: lowered to a dedicated opcode.
    if (expr.name == "barrier" || expr.name == "mem_fence" ||
        expr.name == "work_group_barrier") {
      if (!current_fn_->is_kernel) {
        return ErrorAt(expr.loc, "barrier() may only be called from a kernel");
      }
      current_fn_->uses_barrier = true;
      expr.builtin_id = -2;  // Sentinel: barrier.
      expr.type = Type::Void();
      return Status::Ok();
    }

    if (auto sig = ResolveBuiltin(expr.name, arg_types)) {
      expr.builtin_id = static_cast<int>(sig->id);
      expr.type = sig->result;
      return Status::Ok();
    }
    if (IsBuiltinName(expr.name)) {
      return ErrorAt(expr.loc,
                     "no matching overload for builtin '" + expr.name + "'");
    }

    auto it = functions_.find(expr.name);
    if (it == functions_.end()) {
      return ErrorAt(expr.loc, "call to unknown function '" + expr.name + "'");
    }
    FunctionDecl* callee = it->second;
    if (callee->is_kernel) {
      return ErrorAt(expr.loc, "kernels cannot be called from device code");
    }
    if (callee->params.size() != expr.children.size()) {
      return ErrorAt(expr.loc, "wrong number of arguments to '" + expr.name +
                                   "': expected " +
                                   std::to_string(callee->params.size()));
    }
    for (std::size_t i = 0; i < arg_types.size(); ++i) {
      HAOCL_RETURN_IF_ERROR(CheckConvertible(
          arg_types[i], callee->params[i].type, expr.children[i]->loc,
          "argument " + std::to_string(i + 1) + " of '" + expr.name + "'"));
    }
    expr.callee_index = callee->index;
    expr.type = callee->return_type;
    return Status::Ok();
  }

  // --------------------------------------------------------------- Utility

  Status CheckLvalue(const Expr& expr, const char* what) {
    if (expr.kind == ExprKind::kVarRef && expr.symbol_slot >= 0) {
      return Status::Ok();
    }
    if (expr.kind == ExprKind::kSubscript) return Status::Ok();
    return ErrorAt(expr.loc, std::string("operand of ") + what +
                                 " is not assignable");
  }

  Status CheckConvertible(const Type& from, const Type& to, SourceLocation loc,
                          const std::string& what) {
    if (from == to) return Status::Ok();
    if (from.IsNumeric() && to.IsNumeric()) return Status::Ok();
    if (from.is_pointer && to.is_pointer && from.space == to.space &&
        from.scalar == to.scalar) {
      return Status::Ok();
    }
    return ErrorAt(loc, "cannot convert " + from.ToString() + " to " +
                            to.ToString() + " for " + what);
  }

  // Best-effort constant folding for array sizes (literals and arithmetic
  // over literals, after macro substitution).
  static bool FoldIntConstant(const Expr& expr, std::int64_t* out) {
    switch (expr.kind) {
      case ExprKind::kIntLiteral:
        *out = static_cast<std::int64_t>(expr.int_value);
        return true;
      case ExprKind::kBinary: {
        std::int64_t lhs = 0;
        std::int64_t rhs = 0;
        if (!FoldIntConstant(*expr.children[0], &lhs) ||
            !FoldIntConstant(*expr.children[1], &rhs)) {
          return false;
        }
        switch (expr.binary_op) {
          case BinaryOp::kAdd: *out = lhs + rhs; return true;
          case BinaryOp::kSub: *out = lhs - rhs; return true;
          case BinaryOp::kMul: *out = lhs * rhs; return true;
          case BinaryOp::kDiv:
            if (rhs == 0) return false;
            *out = lhs / rhs;
            return true;
          case BinaryOp::kShl: *out = lhs << rhs; return true;
          case BinaryOp::kShr: *out = lhs >> rhs; return true;
          default: return false;
        }
      }
      case ExprKind::kUnary:
        if (expr.unary_op == UnaryOp::kNeg) {
          std::int64_t v = 0;
          if (!FoldIntConstant(*expr.children[0], &v)) return false;
          *out = -v;
          return true;
        }
        return false;
      case ExprKind::kCast:
        return FoldIntConstant(*expr.children[0], out);
      default:
        return false;
    }
  }

  TranslationUnit& unit_;
  std::unordered_map<std::string, FunctionDecl*> functions_;
  FunctionDecl* current_fn_ = nullptr;
  int next_slot_ = 0;
  int array_count_ = 0;
  int loop_depth_ = 0;
};

}  // namespace

Status Analyze(TranslationUnit& unit) { return Analyzer(unit).Run(); }

}  // namespace haocl::oclc
