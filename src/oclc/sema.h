// Semantic analysis: resolves names to slots, checks and annotates types,
// resolves builtin/user calls, validates address-space rules (e.g. __local
// declarations only in kernels, barrier() only in kernels), and folds
// array-size constant expressions.
#pragma once

#include "common/status.h"
#include "oclc/ast.h"

namespace haocl::oclc {

// Analyzes the unit in place. On success every Expr has a valid `type`,
// every VarRef a `symbol_slot`, every Call a builtin or callee index, and
// every FunctionDecl its `local_slot_count` and `index`.
Status Analyze(TranslationUnit& unit);

}  // namespace haocl::oclc
