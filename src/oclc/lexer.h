// Hand-written lexer for the OpenCL C subset. Handles line/block comments,
// preprocessor-style `#define NAME VALUE` of object-like constants (enough
// for the CLK_*_MEM_FENCE idiom and kernel tuning knobs), and the literal
// suffixes f/F, u/U, l/L.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "oclc/token.h"

namespace haocl::oclc {

// Tokenizes the whole translation unit up front. Object-like #define macros
// are substituted during lexing (one level, no function-like macros).
Expected<std::vector<Token>> Lex(std::string_view source);

// True if `text` is a reserved word of the subset grammar.
bool IsKeyword(std::string_view text) noexcept;

}  // namespace haocl::oclc
