// Kernel launch driver: validation, local-size selection, the work-group
// worker pool, and the legacy per-work-item interpreter (the oracle engine).
// The default lane-batch engine lives in vm_batch.cc; everything the two
// engines share is in vm_internal.h.
#include "oclc/vm.h"

#include <atomic>
#include <mutex>
#include <thread>

#include "common/simd.h"
#include "oclc/vm_internal.h"

namespace haocl::oclc {
namespace {

using vmdetail::BatchGroupStats;
using vmdetail::BatchPlan;
using vmdetail::GroupContext;
using vmdetail::InitItem;
using vmdetail::ItemState;
using vmdetail::MakeLocalMem;
using vmdetail::RunItem;
using vmdetail::RunResult;
using vmdetail::RunStatesToCompletion;
using vmdetail::Trap;

// Legacy engine: one work-item at a time. `instructions` accumulates the
// number of work-item instructions retired (derived from budget drain).
Status RunGroup(GroupContext& grp, std::uint64_t* instructions) {
  const auto& local = grp.range.local;
  const std::uint64_t group_size = local[0] * local[1] * local[2];
  const std::uint64_t budget0 = grp.options.max_instructions_per_item;

  auto local_mem = MakeLocalMem(grp.kernel, grp.args);
  grp.local_mem = &local_mem;

  if (!grp.kernel.uses_barrier) {
    // Fast path: items are independent; reuse one machine state.
    ItemState st;
    for (std::uint64_t i = 0; i < group_size; ++i) {
      InitItem(st, grp.kernel, grp.args, grp, i);
      auto result = RunItem(st, grp);
      if (!result.ok()) return result.status();
      if (*result == RunResult::kBarrier) {
        return Trap(grp, st.pc, "barrier in kernel not marked uses_barrier");
      }
      *instructions += budget0 - st.budget;
    }
    return Status::Ok();
  }

  // Barrier path: all items live simultaneously; sweep until all done.
  std::vector<ItemState> states(group_size);
  for (std::uint64_t i = 0; i < group_size; ++i) {
    InitItem(states[i], grp.kernel, grp.args, grp, i);
  }
  Status s = RunStatesToCompletion(states, grp);
  if (!s.ok()) return s;
  for (const auto& st : states) *instructions += budget0 - st.budget;
  return Status::Ok();
}

}  // namespace

void ChooseLocalSize(NDRange& range) noexcept {
  ChooseLocalSize(range, nullptr);
}

void ChooseLocalSize(NDRange& range, const CompiledFunction* kernel) noexcept {
  if (range.local_specified) return;
  for (int d = 0; d < 3; ++d) range.local[d] = 1;
  // Barrier-free kernels get wide dim-0 groups so the lane-batch engine has
  // enough lanes to amortize dispatch; barrier kernels keep the conservative
  // cap (a barrier group holds all its items' machine state live at once).
  const bool wide = kernel != nullptr && !kernel->uses_barrier;
  const std::uint64_t cap = wide ? 256 : 64;
  // Largest power of two dividing global[0], capped.
  std::uint64_t size = 1;
  while (size < cap && range.global[0] % (size * 2) == 0) size *= 2;
  if (wide && size < cap) {
    // Odd dim-0 extents still deserve wide batches: largest divisor <= cap,
    // preferring a SIMD-width multiple so the vector tier runs full chunks
    // instead of scalar tails (e.g. 500 -> 100, not 250).
    std::uint64_t best = size;
    std::uint64_t best_vec = 0;
    for (std::uint64_t d = std::min<std::uint64_t>(cap, range.global[0]);
         d > size; --d) {
      if (range.global[0] % d != 0) continue;
      if (best == size) best = d;  // Largest divisor of any alignment.
      if (simd::kEnabled &&
          d % static_cast<std::uint64_t>(simd::kWidth) == 0) {
        best_vec = d;  // Largest vector-width-multiple divisor.
        break;
      }
    }
    size = best_vec != 0 ? best_vec : best;
  }
  range.local[0] = size;
  range.local_specified = true;
}

Status LaunchKernel(const Module& module, const CompiledFunction& kernel,
                    const std::vector<ArgBinding>& args, const NDRange& range,
                    const LaunchOptions& options, VmStats* stats) {
  // ---- Validation -------------------------------------------------------
  if (args.size() != kernel.params.size()) {
    return Status(ErrorCode::kInvalidKernelArgs,
                  "kernel '" + kernel.name + "' expects " +
                      std::to_string(kernel.params.size()) + " args, got " +
                      std::to_string(args.size()));
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    const KernelArgInfo& param = kernel.params[i];
    const ArgBinding& binding = args[i];
    if (param.IsBuffer() && binding.kind != ArgBinding::Kind::kBuffer) {
      return Status(ErrorCode::kInvalidArgValue,
                    "arg " + std::to_string(i) + " of '" + kernel.name +
                        "' needs a buffer");
    }
    if (param.IsLocalPointer() &&
        binding.kind != ArgBinding::Kind::kLocalMem) {
      return Status(ErrorCode::kInvalidArgValue,
                    "arg " + std::to_string(i) + " of '" + kernel.name +
                        "' needs a local memory size");
    }
    if (!param.type.is_pointer && binding.kind != ArgBinding::Kind::kScalar) {
      return Status(ErrorCode::kInvalidArgValue,
                    "arg " + std::to_string(i) + " of '" + kernel.name +
                        "' needs a scalar");
    }
  }
  if (range.work_dim < 1 || range.work_dim > 3) {
    return Status(ErrorCode::kInvalidWorkDimension, "work_dim must be 1..3");
  }
  NDRange run_range = range;
  for (int d = range.work_dim; d < 3; ++d) {
    run_range.global[d] = 1;
    run_range.local[d] = 1;
  }
  ChooseLocalSize(run_range, &kernel);
  std::uint64_t group_size = 1;
  for (int d = 0; d < 3; ++d) {
    if (run_range.global[d] == 0 || run_range.local[d] == 0) {
      return Status(ErrorCode::kInvalidWorkItemSize, "zero-sized dimension");
    }
    if (run_range.global[d] % run_range.local[d] != 0) {
      return Status(ErrorCode::kInvalidWorkGroupSize,
                    "global size not divisible by local size in dim " +
                        std::to_string(d));
    }
    group_size *= run_range.local[d];
  }
  if (group_size > 1024) {
    return Status(ErrorCode::kInvalidWorkGroupSize,
                  "work-group size exceeds device maximum (1024)");
  }

  const std::uint64_t num_groups[3] = {
      run_range.global[0] / run_range.local[0],
      run_range.global[1] / run_range.local[1],
      run_range.global[2] / run_range.local[2]};
  const std::uint64_t total_groups =
      num_groups[0] * num_groups[1] * num_groups[2];

  // ---- Execution --------------------------------------------------------
  int requested = options.num_threads;
  if (requested <= 0) {
    // Auto: one thread per hardware thread (drivers override this with the
    // simulated device's compute-unit count).
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw != 0 ? static_cast<int>(hw) : 4;
  }
  const int threads =
      std::max(1, std::min<int>(requested,
                                static_cast<int>(std::min<std::uint64_t>(
                                    total_groups, 64))));

  // A function compiled before the batch metadata existed (max_stack_slots
  // unknown) cannot be batched; run it through the oracle.
  const bool use_batched =
      options.engine == VmEngine::kBatched && kernel.max_stack_slots > 0;
  const BatchPlan plan = use_batched
                             ? vmdetail::BuildBatchPlan(module, options)
                             : BatchPlan{};

  std::atomic<std::uint64_t> next_group{0};
  std::mutex error_mutex;
  Status first_error;
  std::mutex stats_mutex;
  VmStats totals;
  totals.threads_used = threads;

  auto worker = [&] {
    VmStats acc;
    while (true) {
      const std::uint64_t g =
          next_group.fetch_add(1, std::memory_order_relaxed);
      if (g >= total_groups) break;
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error.ok()) break;  // Abandon after first failure.
      }
      GroupContext grp{module, kernel, args, run_range, options};
      grp.num_groups[0] = num_groups[0];
      grp.num_groups[1] = num_groups[1];
      grp.num_groups[2] = num_groups[2];
      grp.group_id[0] = g % num_groups[0];
      grp.group_id[1] = (g / num_groups[0]) % num_groups[1];
      grp.group_id[2] = g / (num_groups[0] * num_groups[1]);
      Status s;
      if (use_batched) {
        BatchGroupStats gs;
        s = vmdetail::RunGroupBatched(grp, plan, gs);
        acc.instructions += gs.instructions;
        acc.batch_steps += gs.batch_steps;
        acc.fused_steps += gs.fused_steps;
        acc.simd_steps += gs.simd_steps;
        acc.masked_steps += gs.masked_steps;
        if (gs.bailed_out) ++acc.bailouts;
      } else {
        s = RunGroup(grp, &acc.instructions);
      }
      ++acc.groups;
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = s;
        break;
      }
    }
    std::lock_guard<std::mutex> lock(stats_mutex);
    totals.instructions += acc.instructions;
    totals.batch_steps += acc.batch_steps;
    totals.fused_steps += acc.fused_steps;
    totals.simd_steps += acc.simd_steps;
    totals.masked_steps += acc.masked_steps;
    totals.bailouts += acc.bailouts;
    totals.groups += acc.groups;
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (stats != nullptr) *stats = totals;
  return first_error;
}

}  // namespace haocl::oclc
