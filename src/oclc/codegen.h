// Lowers an analyzed AST into the stack bytecode of bytecode.h.
#pragma once

#include "common/status.h"
#include "oclc/ast.h"
#include "oclc/bytecode.h"

namespace haocl::oclc {

// The unit must have passed Analyze().
Expected<Module> Generate(const TranslationUnit& unit);

// Pointer value encoding shared between codegen and the VM.
// Layout: [63:62] space tag, [61:48] region id, [47:0] byte offset.
enum class PtrSpace : std::uint64_t { kGlobal = 0, kLocal = 1, kPrivate = 2 };

constexpr std::uint64_t kPtrOffsetBits = 48;
constexpr std::uint64_t kPtrOffsetMask = (1ULL << kPtrOffsetBits) - 1;
constexpr std::uint64_t kPtrRegionBits = 14;
constexpr std::uint64_t kPtrRegionMask = (1ULL << kPtrRegionBits) - 1;

[[nodiscard]] constexpr std::uint64_t MakePointer(PtrSpace space,
                                                  std::uint64_t region,
                                                  std::uint64_t offset) {
  return (static_cast<std::uint64_t>(space) << 62) |
         ((region & kPtrRegionMask) << kPtrOffsetBits) |
         (offset & kPtrOffsetMask);
}

[[nodiscard]] constexpr PtrSpace PointerSpace(std::uint64_t ptr) {
  return static_cast<PtrSpace>(ptr >> 62);
}
[[nodiscard]] constexpr std::uint64_t PointerRegion(std::uint64_t ptr) {
  return (ptr >> kPtrOffsetBits) & kPtrRegionMask;
}
[[nodiscard]] constexpr std::uint64_t PointerOffset(std::uint64_t ptr) {
  return ptr & kPtrOffsetMask;
}

}  // namespace haocl::oclc
