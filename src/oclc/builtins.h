// Built-in function table: OpenCL C work-item queries, math, integer and
// atomic builtins needed by the benchmark kernels. Overload resolution is
// by argument count + numeric category; the table entry decides the result
// type given the (promoted) argument types.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "oclc/type.h"

namespace haocl::oclc {

enum class BuiltinId : std::int32_t {
  // Work-item functions (evaluated against the VM's work-item context).
  kGetGlobalId = 0,
  kGetLocalId,
  kGetGroupId,
  kGetGlobalSize,
  kGetLocalSize,
  kGetNumGroups,
  kGetGlobalOffset,
  kGetWorkDim,
  // Math (float/double).
  kSqrt, kRsqrt, kFabs, kExp, kLog, kLog2, kSin, kCos, kTan,
  kPow, kFloor, kCeil, kFmod, kFmin, kFmax, kMad, kFma,
  kNativeSqrt, kNativeExp, kNativeLog,  // Map to precise versions.
  // Integer / common.
  kMin, kMax, kAbs, kClamp,
  // Atomics on __global / __local int & uint.
  kAtomicAdd, kAtomicSub, kAtomicMin, kAtomicMax,
  kAtomicInc, kAtomicDec, kAtomicOr, kAtomicAnd, kAtomicXchg,
  kAtomicCmpxchg,
  kCount,
};

struct BuiltinSignature {
  BuiltinId id;
  Type result;                 // Resolved result type.
};

// Resolves `name(arg_types...)`. Returns nullopt if `name` is not a
// builtin; returns an engaged optional with id kCount (and an error set by
// the caller) never — bad argument lists produce nullopt too, and sema
// reports the mismatch.
std::optional<BuiltinSignature> ResolveBuiltin(
    const std::string& name, const std::vector<Type>& arg_types);

// True if the name is a builtin under any signature (for diagnostics).
bool IsBuiltinName(const std::string& name);

const char* BuiltinName(BuiltinId id) noexcept;

}  // namespace haocl::oclc
