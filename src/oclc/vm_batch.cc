// Lane-batch execution engine: runs a whole work-group in SIMT-style
// lockstep, dispatching each bytecode instruction ONCE and applying it to
// every work-item through a contiguous-lane inner loop.
//
// Layout: the operand stack and locals are SoA, slot-major —
// `stack[slot * lanes + lane]` — so each instruction touches a contiguous
// row of lanes (SIMD-friendly, one cache stream per operand). pc, sp, the
// frame stack, and the instruction budget are shared scalars while control
// flow is uniform, which is what makes a barrier() trivial: in lockstep all
// lanes arrive at kBarrier in the same batch step, so it is a no-op
// boundary instead of a per-item suspend/resume.
//
// When a branch condition disagrees across lanes (or a callee lacks batch
// metadata) the engine bails out: it materializes one legacy ItemState per
// lane from the SoA columns and finishes the group through the interpreter
// sweep. Combined with both engines sharing every evaluation helper in
// vm_internal.h, batched results are bit-identical to the interpreter.
//
// The runaway guard (max_instructions_per_item) is charged once per batch
// step instead of per work-item — in lockstep every lane retires the same
// instruction count, so one shared counter is exact, and the hot loop pays
// the check once per GROUP instead of once per item.
#include "common/simd.h"
#include "oclc/vm_internal.h"

namespace haocl::oclc::vmdetail {
namespace {

struct PrivateRegion {
  std::vector<std::uint8_t> data;  // lanes * stride bytes, lane-major.
  std::uint64_t stride = 0;        // 0 for non-private regions.
};

struct LaneBatch {
  std::uint32_t lanes = 0;
  std::uint32_t pc = 0;
  std::uint32_t sp = 0;    // Operand-stack height in slots (rows).
  std::uint32_t base = 0;  // Current frame's locals base row.
  std::uint64_t budget = 0;  // Shared: lockstep lanes retire in unison.
  std::vector<Value> stack;   // stack_slots rows of `lanes` values.
  std::uint32_t stack_slots = 0;
  std::vector<Value> locals;  // local_rows rows of `lanes` values.
  std::uint32_t local_rows = 0;
  std::vector<Frame> frames;  // Shared: uniform while control is uniform.
  std::vector<PrivateRegion> priv;
  std::vector<std::uint64_t> gid[3];
  std::vector<std::uint64_t> lid[3];
  // Masked-divergence bookkeeping. The shared budget charges a masked
  // region's whole span up-front; a lane that sat the region out is owed
  // that span back relative to the shared counter (the interpreter charges
  // per item). Refunds are applied on bail-out, and has_refund downgrades
  // the shared budget trap to a bail-out because lanes no longer exhaust
  // their budgets in unison.
  std::vector<std::uint64_t> refund;
  bool has_refund = false;
  std::vector<std::uint8_t> active;          // Masked-region lane mask.
  std::vector<std::int32_t> idx_scratch[2];  // Affine-load lane indices.
};

inline Value* Row(LaneBatch& b, std::uint32_t slot) {
  return b.stack.data() + static_cast<std::size_t>(slot) * b.lanes;
}

inline Value* LocalRow(LaneBatch& b, std::uint32_t row) {
  return b.locals.data() + static_cast<std::size_t>(row) * b.lanes;
}

void EnsureStackRows(LaneBatch& b, std::uint32_t rows) {
  if (rows > b.stack_slots) {
    b.stack.resize(static_cast<std::size_t>(rows) * b.lanes);
    b.stack_slots = rows;
  }
}

void InitBatch(LaneBatch& b, GroupContext& grp, std::uint32_t lanes) {
  const CompiledFunction& kernel = grp.kernel;
  b.lanes = lanes;
  b.pc = kernel.entry_pc;
  b.sp = 0;
  b.base = 0;
  b.budget = grp.options.max_instructions_per_item;
  b.frames.clear();
  EnsureStackRows(b, kernel.max_stack_slots);
  b.local_rows = kernel.local_slots;
  b.locals.assign(static_cast<std::size_t>(kernel.local_slots) * lanes,
                  Value{});
  b.refund.assign(lanes, 0);
  b.has_refund = false;
  b.active.assign(lanes, 1);
  b.idx_scratch[0].resize(lanes);
  b.idx_scratch[1].resize(lanes);

  const auto& local = grp.range.local;
  for (int d = 0; d < 3; ++d) {
    b.gid[d].resize(lanes);
    b.lid[d].resize(lanes);
  }
  for (std::uint32_t l = 0; l < lanes; ++l) {
    const std::uint64_t lin = l;
    b.lid[0][l] = lin % local[0];
    b.lid[1][l] = (lin / local[0]) % local[1];
    b.lid[2][l] = lin / (local[0] * local[1]);
    for (int d = 0; d < 3; ++d) {
      b.gid[d][l] = grp.range.offset[d] + grp.group_id[d] * local[d] +
                    b.lid[d][l];
    }
  }

  // Private arrays: one contiguous slab per region, lane-major slices.
  b.priv.assign(kernel.params.size() + kernel.arrays.size(), {});
  for (std::size_t i = 0; i < kernel.arrays.size(); ++i) {
    if (kernel.arrays[i].space == AddressSpace::kPrivate) {
      PrivateRegion& region = b.priv[kernel.params.size() + i];
      region.stride = kernel.arrays[i].ByteSize();
      region.data.assign(region.stride * lanes, 0);
    }
  }

  // Parameters are launch-uniform: compute once, broadcast the row.
  for (std::size_t i = 0; i < kernel.params.size(); ++i) {
    const KernelArgInfo& param = kernel.params[i];
    Value v;
    v.u = 0;
    if (param.IsBuffer()) {
      v.u = MakePointer(PtrSpace::kGlobal, i, 0);
    } else if (param.IsLocalPointer()) {
      v.u = MakePointer(PtrSpace::kLocal, i, 0);
    } else {
      v = ConvertValue(grp.args[i].scalar, grp.args[i].scalar_type,
                       param.type.scalar);
    }
    Value* row = LocalRow(b, static_cast<std::uint32_t>(i));
    for (std::uint32_t l = 0; l < lanes; ++l) row[l] = v;
  }
}

// Lane-aware twin of ResolvePtr: identical checks and messages; private
// pointers land in this lane's slice of the region slab.
inline Expected<std::uint8_t*> ResolveLanePtr(std::uint64_t ptr,
                                              std::uint64_t bytes,
                                              std::uint32_t lane, LaneBatch& b,
                                              GroupContext& grp) {
  const std::uint64_t region = PointerRegion(ptr);
  const std::uint64_t offset = PointerOffset(ptr);
  switch (PointerSpace(ptr)) {
    case PtrSpace::kGlobal: {
      if (region >= grp.args.size() ||
          grp.args[region].kind != ArgBinding::Kind::kBuffer) {
        return Status(ErrorCode::kInvalidKernelArgs,
                      "dangling global pointer (region " +
                          std::to_string(region) + ")");
      }
      const ArgBinding& binding = grp.args[region];
      if (offset + bytes > binding.size) {
        return OobError(grp, "global", offset, bytes, binding.size);
      }
      return binding.data + offset;
    }
    case PtrSpace::kLocal: {
      auto& mem = *grp.local_mem;
      if (region >= mem.size()) {
        return Status(ErrorCode::kInvalidKernelArgs, "bad local region");
      }
      if (offset + bytes > mem[region].size()) {
        return OobError(grp, "local", offset, bytes, mem[region].size());
      }
      return mem[region].data() + offset;
    }
    case PtrSpace::kPrivate: {
      if (region >= b.priv.size()) {
        return Status(ErrorCode::kInvalidKernelArgs, "bad private region");
      }
      PrivateRegion& r = b.priv[region];
      if (offset + bytes > r.stride) {
        return OobError(grp, "private", offset, bytes, r.stride);
      }
      return r.data.data() + lane * r.stride + offset;
    }
  }
  return Status(ErrorCode::kInternal, "bad pointer space");
}

// Transposes the SoA batch back into per-lane ItemStates and finishes the
// group through the interpreter sweep. Invoked on lane divergence or when a
// call target lacks batch metadata; the sweep's full barrier semantics also
// cover barrier-divergence detection from here on.
Status BailOut(LaneBatch& b, GroupContext& grp, const std::uint32_t* lane_pc,
               BatchGroupStats& stats) {
  stats.bailed_out = true;
  const std::uint32_t lanes = b.lanes;
  std::vector<ItemState> states(lanes);
  for (std::uint32_t l = 0; l < lanes; ++l) {
    ItemState& st = states[l];
    st.pc = lane_pc[l];
    st.base = b.base;
    // A lane skipped over masked regions is owed their spans back: per-item
    // budgets diverge from the shared counter exactly by the refund.
    st.budget = b.budget + (b.has_refund ? b.refund[l] : 0);
    st.done = false;
    st.stack.resize(b.sp);
    for (std::uint32_t s = 0; s < b.sp; ++s) {
      st.stack[s] = b.stack[static_cast<std::size_t>(s) * lanes + l];
    }
    st.locals.resize(b.local_rows);
    for (std::uint32_t r = 0; r < b.local_rows; ++r) {
      st.locals[r] = b.locals[static_cast<std::size_t>(r) * lanes + l];
    }
    st.frames = b.frames;
    for (int d = 0; d < 3; ++d) {
      st.global_id[d] = b.gid[d][l];
      st.local_id[d] = b.lid[d][l];
    }
    st.private_mem.resize(b.priv.size());
    for (std::size_t r = 0; r < b.priv.size(); ++r) {
      const PrivateRegion& region = b.priv[r];
      if (region.stride != 0) {
        const std::uint8_t* begin = region.data.data() + l * region.stride;
        st.private_mem[r].assign(begin, begin + region.stride);
      }
    }
  }
  std::vector<std::uint64_t> start_budget(lanes);
  for (std::uint32_t l = 0; l < lanes; ++l) start_budget[l] = states[l].budget;
  Status s = RunStatesToCompletion(states, grp);
  if (!s.ok()) return s;
  for (std::uint32_t l = 0; l < lanes; ++l) {
    stats.instructions += start_budget[l] - states[l].budget;
  }
  return Status::Ok();
}

Status BailOutUniform(LaneBatch& b, GroupContext& grp, std::uint32_t pc,
                      BatchGroupStats& stats) {
  std::vector<std::uint32_t> pcs(b.lanes, pc);
  return BailOut(b, grp, pcs.data(), stats);
}

// Hot arithmetic with the op/type switch hoisted out of the lane loop. Each
// body transcribes EvalBinary's exact expression for that (op, type) so
// results stay bit-identical; every write covers the full 8-byte union.
// Returns false for combinations left to the generic per-lane EvalBinary
// (div/mod traps, shifts, bitwise, narrow ints).
bool BinaryFastLoop(Opcode op, ScalarType t, Value* lhs, const Value* rhs,
                    std::uint32_t n) {
  switch (t) {
    case ScalarType::kF32:
      switch (op) {
        case Opcode::kAdd:
          for (std::uint32_t l = 0; l < n; ++l) {
            const float r = static_cast<float>(lhs[l].f) +
                            static_cast<float>(rhs[l].f);
            lhs[l].f = r;
          }
          return true;
        case Opcode::kSub:
          for (std::uint32_t l = 0; l < n; ++l) {
            const float r = static_cast<float>(lhs[l].f) -
                            static_cast<float>(rhs[l].f);
            lhs[l].f = r;
          }
          return true;
        case Opcode::kMul:
          for (std::uint32_t l = 0; l < n; ++l) {
            const float r = static_cast<float>(lhs[l].f) *
                            static_cast<float>(rhs[l].f);
            lhs[l].f = r;
          }
          return true;
        case Opcode::kDiv:
          for (std::uint32_t l = 0; l < n; ++l) {
            const float r = static_cast<float>(lhs[l].f) /
                            static_cast<float>(rhs[l].f);
            lhs[l].f = r;
          }
          return true;
        default:
          return false;
      }
    case ScalarType::kF64:
      switch (op) {
        case Opcode::kAdd:
          for (std::uint32_t l = 0; l < n; ++l) lhs[l].f = lhs[l].f + rhs[l].f;
          return true;
        case Opcode::kSub:
          for (std::uint32_t l = 0; l < n; ++l) lhs[l].f = lhs[l].f - rhs[l].f;
          return true;
        case Opcode::kMul:
          for (std::uint32_t l = 0; l < n; ++l) lhs[l].f = lhs[l].f * rhs[l].f;
          return true;
        case Opcode::kDiv:
          for (std::uint32_t l = 0; l < n; ++l) lhs[l].f = lhs[l].f / rhs[l].f;
          return true;
        default:
          return false;
      }
    case ScalarType::kI32:
      switch (op) {
        case Opcode::kAdd:
          for (std::uint32_t l = 0; l < n; ++l) {
            lhs[l].i = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(lhs[l].i) +
                static_cast<std::uint32_t>(rhs[l].i));
          }
          return true;
        case Opcode::kSub:
          for (std::uint32_t l = 0; l < n; ++l) {
            lhs[l].i = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(lhs[l].i) -
                static_cast<std::uint32_t>(rhs[l].i));
          }
          return true;
        case Opcode::kMul:
          for (std::uint32_t l = 0; l < n; ++l) {
            lhs[l].i = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(lhs[l].i) *
                static_cast<std::uint32_t>(rhs[l].i));
          }
          return true;
        default:
          return false;
      }
    case ScalarType::kI64:
      switch (op) {
        case Opcode::kAdd:
          for (std::uint32_t l = 0; l < n; ++l) {
            lhs[l].i = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(lhs[l].i) +
                static_cast<std::uint64_t>(rhs[l].i));
          }
          return true;
        case Opcode::kSub:
          for (std::uint32_t l = 0; l < n; ++l) {
            lhs[l].i = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(lhs[l].i) -
                static_cast<std::uint64_t>(rhs[l].i));
          }
          return true;
        case Opcode::kMul:
          for (std::uint32_t l = 0; l < n; ++l) {
            lhs[l].i = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(lhs[l].i) *
                static_cast<std::uint64_t>(rhs[l].i));
          }
          return true;
        default:
          return false;
      }
    case ScalarType::kU32:
      switch (op) {
        case Opcode::kAdd:
          for (std::uint32_t l = 0; l < n; ++l) {
            lhs[l].u = static_cast<std::uint32_t>(
                static_cast<std::uint32_t>(lhs[l].u) +
                static_cast<std::uint32_t>(rhs[l].u));
          }
          return true;
        case Opcode::kSub:
          for (std::uint32_t l = 0; l < n; ++l) {
            lhs[l].u = static_cast<std::uint32_t>(
                static_cast<std::uint32_t>(lhs[l].u) -
                static_cast<std::uint32_t>(rhs[l].u));
          }
          return true;
        case Opcode::kMul:
          for (std::uint32_t l = 0; l < n; ++l) {
            lhs[l].u = static_cast<std::uint32_t>(
                static_cast<std::uint32_t>(lhs[l].u) *
                static_cast<std::uint32_t>(rhs[l].u));
          }
          return true;
        default:
          return false;
      }
    case ScalarType::kU64:
      switch (op) {
        case Opcode::kAdd:
          for (std::uint32_t l = 0; l < n; ++l) lhs[l].u = lhs[l].u + rhs[l].u;
          return true;
        case Opcode::kSub:
          for (std::uint32_t l = 0; l < n; ++l) lhs[l].u = lhs[l].u - rhs[l].u;
          return true;
        case Opcode::kMul:
          for (std::uint32_t l = 0; l < n; ++l) lhs[l].u = lhs[l].u * rhs[l].u;
          return true;
        default:
          return false;
      }
    default:
      return false;
  }
}

// Vectorized twins of BinaryFastLoop's hot bodies, 4 lanes per step with
// tail lanes in scalar transcription. f32 rows hold widened doubles, so the
// vector op is a cvt-f64→f32 / op / widen-back sandwich — byte-identical to
// the scalar static_cast chain because each cvt is one correctly-rounded
// IEEE operation. i32/u32 wrap in 32 bits and re-canonicalize by sign/zero
// extension, exactly like the interpreter's storage convention. Returns
// false for combinations the caller should run through BinaryFastLoop.
bool SimdBinaryRows(Opcode op, ScalarType t, Value* lhs, const Value* rhs,
                    std::uint32_t n) {
  const std::uint32_t vec = n & ~3u;
  switch (t) {
    case ScalarType::kF32: {
      if (op != Opcode::kAdd && op != Opcode::kSub && op != Opcode::kMul &&
          op != Opcode::kDiv) {
        return false;
      }
      for (std::uint32_t c = 0; c < vec; c += 4) {
        const simd::VecF32 a = simd::ToF32(simd::VecF64::Load(&lhs[c].f));
        const simd::VecF32 x = simd::ToF32(simd::VecF64::Load(&rhs[c].f));
        simd::VecF32 r{};
        switch (op) {
          case Opcode::kAdd: r = simd::Add(a, x); break;
          case Opcode::kSub: r = simd::Sub(a, x); break;
          case Opcode::kMul: r = simd::Mul(a, x); break;
          default: r = simd::Div(a, x); break;
        }
        simd::ToF64(r).Store(&lhs[c].f);
      }
      for (std::uint32_t l = vec; l < n; ++l) {
        const float a = static_cast<float>(lhs[l].f);
        const float x = static_cast<float>(rhs[l].f);
        float r;
        switch (op) {
          case Opcode::kAdd: r = a + x; break;
          case Opcode::kSub: r = a - x; break;
          case Opcode::kMul: r = a * x; break;
          default: r = a / x; break;
        }
        lhs[l].f = r;
      }
      return true;
    }
    case ScalarType::kF64: {
      if (op != Opcode::kAdd && op != Opcode::kSub && op != Opcode::kMul &&
          op != Opcode::kDiv) {
        return false;
      }
      for (std::uint32_t c = 0; c < vec; c += 4) {
        const simd::VecF64 a = simd::VecF64::Load(&lhs[c].f);
        const simd::VecF64 x = simd::VecF64::Load(&rhs[c].f);
        simd::VecF64 r{};
        switch (op) {
          case Opcode::kAdd: r = simd::Add(a, x); break;
          case Opcode::kSub: r = simd::Sub(a, x); break;
          case Opcode::kMul: r = simd::Mul(a, x); break;
          default: r = simd::Div(a, x); break;
        }
        r.Store(&lhs[c].f);
      }
      for (std::uint32_t l = vec; l < n; ++l) {
        switch (op) {
          case Opcode::kAdd: lhs[l].f = lhs[l].f + rhs[l].f; break;
          case Opcode::kSub: lhs[l].f = lhs[l].f - rhs[l].f; break;
          case Opcode::kMul: lhs[l].f = lhs[l].f * rhs[l].f; break;
          default: lhs[l].f = lhs[l].f / rhs[l].f; break;
        }
      }
      return true;
    }
    case ScalarType::kI32: {
      if (op != Opcode::kAdd && op != Opcode::kSub && op != Opcode::kMul) {
        return false;
      }
      for (std::uint32_t c = 0; c < vec; c += 4) {
        const simd::VecI32 a = simd::VecI32::LoadLow64(lhs + c);
        const simd::VecI32 x = simd::VecI32::LoadLow64(rhs + c);
        simd::VecI32 r{};
        switch (op) {
          case Opcode::kAdd: r = simd::Add(a, x); break;
          case Opcode::kSub: r = simd::Sub(a, x); break;
          default: r = simd::Mul(a, x); break;
        }
        r.StoreSignExt64(lhs + c);
      }
      for (std::uint32_t l = vec; l < n; ++l) {
        const std::uint32_t a = static_cast<std::uint32_t>(lhs[l].i);
        const std::uint32_t x = static_cast<std::uint32_t>(rhs[l].i);
        switch (op) {
          case Opcode::kAdd: lhs[l].i = static_cast<std::int32_t>(a + x); break;
          case Opcode::kSub: lhs[l].i = static_cast<std::int32_t>(a - x); break;
          default: lhs[l].i = static_cast<std::int32_t>(a * x); break;
        }
      }
      return true;
    }
    case ScalarType::kU32: {
      if (op != Opcode::kAdd && op != Opcode::kSub && op != Opcode::kMul) {
        return false;
      }
      for (std::uint32_t c = 0; c < vec; c += 4) {
        const simd::VecI32 a = simd::VecI32::LoadLow64(lhs + c);
        const simd::VecI32 x = simd::VecI32::LoadLow64(rhs + c);
        simd::VecI32 r{};
        switch (op) {
          case Opcode::kAdd: r = simd::Add(a, x); break;
          case Opcode::kSub: r = simd::Sub(a, x); break;
          default: r = simd::Mul(a, x); break;
        }
        r.StoreZeroExt64(lhs + c);
      }
      for (std::uint32_t l = vec; l < n; ++l) {
        const std::uint32_t a = static_cast<std::uint32_t>(lhs[l].u);
        const std::uint32_t x = static_cast<std::uint32_t>(rhs[l].u);
        switch (op) {
          case Opcode::kAdd: lhs[l].u = a + x; break;
          case Opcode::kSub: lhs[l].u = a - x; break;
          default: lhs[l].u = a * x; break;
        }
      }
      return true;
    }
    default:
      return false;
  }
}

// Vectorized i32 compare of two rows into 0/1 Values (EvalCompare's i32
// path compares the sign-extended low words, which LoadLow64 extracts
// exactly). `out` may alias `lhs`: each chunk loads both inputs before
// storing.
void SimdCompareI32Rows(Opcode op, const Value* lhs, const Value* rhs,
                        Value* out, std::uint32_t n) {
  const std::uint32_t vec = n & ~3u;
  const simd::VecI32 one = simd::VecI32::Broadcast(1);
  for (std::uint32_t c = 0; c < vec; c += 4) {
    const simd::VecI32 a = simd::VecI32::LoadLow64(lhs + c);
    const simd::VecI32 x = simd::VecI32::LoadLow64(rhs + c);
    simd::VecI32 m{};
    switch (op) {
      case Opcode::kEq: m = simd::CmpEq(a, x); break;
      case Opcode::kNe: m = simd::Not(simd::CmpEq(a, x)); break;
      case Opcode::kLt: m = simd::CmpLt(a, x); break;
      case Opcode::kLe: m = simd::Not(simd::CmpGt(a, x)); break;
      case Opcode::kGt: m = simd::CmpGt(a, x); break;
      default: m = simd::Not(simd::CmpLt(a, x)); break;
    }
    simd::And(m, one).StoreSignExt64(out + c);
  }
  for (std::uint32_t l = vec; l < n; ++l) {
    Value v;
    v.i = EvalCompare(op, ScalarType::kI32, lhs[l], rhs[l]) ? 1 : 0;
    out[l] = v;
  }
}

// One lane of an IndexedLoad: recomputes exactly what the replaced
// bytecode would have — i32 wrap arithmetic for the two-term index, the
// sign-extending convert, kPtrAdd's offset masking — then resolves and
// loads. Everything reads locals; nothing touches the operand stack.
inline Expected<Value> IndexedLoadLane(LaneBatch& b, GroupContext& grp,
                                       const IndexedLoad& ld,
                                       std::uint32_t lane) {
  auto local_at = [&](std::int32_t slot) {
    return LocalRow(b, b.base + slot)[lane];
  };
  Value iv;
  if (ld.s2 >= 0) {
    // locals[s1]*locals[s2]+locals[s3], i32 with wrap (as kMul/kAdd).
    const std::int32_t m = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(local_at(ld.s1).i) *
        static_cast<std::uint32_t>(local_at(ld.s2).i));
    Value idx32;
    idx32.i = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(m) +
        static_cast<std::uint32_t>(local_at(ld.s3).i));
    iv = ConvertValue(idx32, ld.idx, ScalarType::kI64);
  } else {
    iv = ConvertValue(local_at(ld.s1), ld.idx, ScalarType::kI64);
  }
  const std::uint64_t base = local_at(ld.base).u;
  const std::uint64_t offset =
      PointerOffset(base) +
      static_cast<std::uint64_t>(iv.i) * static_cast<std::uint64_t>(ld.esize);
  const std::uint64_t addr =
      (base & ~kPtrOffsetMask) | (offset & kPtrOffsetMask);
  auto mem = ResolveLanePtr(addr, ScalarSize(ld.elem), lane, b, grp);
  if (!mem.ok()) return mem.status();
  return LoadScalar(*mem, ld.elem);
}

// A dispatch-uniform global base for an IndexedLoad. The base pointer is
// normally a broadcast kernel parameter, identical in every lane — then the
// region resolves ONCE and the lane loop is offset + bounds check + load,
// with no per-lane pointer decode.
struct UniformBase {
  const std::uint8_t* data = nullptr;
  std::uint64_t size = 0;
  std::uint64_t base_off = 0;
  bool ok = false;
};

inline UniformBase ResolveUniformBase(LaneBatch& b, GroupContext& grp,
                                      std::int32_t slot,
                                      bool known_uniform = false) {
  UniformBase out;
  const Value* row = LocalRow(b, b.base + slot);
  const std::uint64_t base0 = row[0].u;
  // Codegen-proved uniform bases need only a last-lane spot check (defense
  // against analysis bugs); anything else scans every lane.
  if (!known_uniform || row[b.lanes - 1].u != base0) {
    for (std::uint32_t l = 1; l < b.lanes; ++l) {
      if (row[l].u != base0) return out;
    }
  }
  if (PointerSpace(base0) != PtrSpace::kGlobal) return out;
  const std::uint64_t region = PointerRegion(base0);
  if (region >= grp.args.size() ||
      grp.args[region].kind != ArgBinding::Kind::kBuffer) {
    return out;
  }
  out.data = grp.args[region].data;
  out.size = grp.args[region].size;
  out.base_off = PointerOffset(base0);
  out.ok = true;
  return out;
}

// The fast path handles index slots whose canonical Value storage feeds the
// i64 convert through `.i` unchanged (signed ints are stored sign-extended).
inline bool FastIndexType(ScalarType t) {
  return t == ScalarType::kI32 || t == ScalarType::kI64;
}

struct IndexRows {
  const Value* s1 = nullptr;
  const Value* s2 = nullptr;
  const Value* s3 = nullptr;
  bool two_term = false;
};

inline IndexRows RowsFor(LaneBatch& b, const IndexedLoad& ld) {
  IndexRows r;
  r.s1 = LocalRow(b, b.base + ld.s1);
  if (ld.s2 >= 0) {
    r.s2 = LocalRow(b, b.base + ld.s2);
    r.s3 = LocalRow(b, b.base + ld.s3);
    r.two_term = true;
  }
  return r;
}

// One lane's element offset: the bytecode's i32 wrap arithmetic for
// s1*s2+s3, the sign-extending i64 convert, and kPtrAdd's offset masking.
inline std::uint64_t LaneElemOffset(const UniformBase& ub,
                                    const IndexRows& rows,
                                    const IndexedLoad& ld, std::uint32_t l) {
  std::int64_t idx;
  if (rows.two_term) {
    const std::int32_t m = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(rows.s1[l].i) *
        static_cast<std::uint32_t>(rows.s2[l].i));
    idx = static_cast<std::int32_t>(static_cast<std::uint32_t>(m) +
                                    static_cast<std::uint32_t>(rows.s3[l].i));
  } else {
    idx = rows.s1[l].i;
  }
  return (ub.base_off + static_cast<std::uint64_t>(idx) *
                            static_cast<std::uint64_t>(ld.esize)) &
         kPtrOffsetMask;
}

// How an IndexedLoad's lane offsets lay out in the uniform base buffer,
// decided by one whole-chunk classification instead of per-lane decode.
struct LanePlan {
  enum class Kind : std::uint8_t {
    kBroadcast,   // All lanes read the same element.
    kContiguous,  // Lane l reads element idx[0] + l (vector load).
    kGather,      // Arbitrary per-lane elements (vector gather).
  };
  Kind kind = Kind::kGather;
  const std::int32_t* idx = nullptr;  // Element index per lane, in-bounds.
  bool ok = false;
};

// One lane's element index with the bytecode's exact i32 wrap arithmetic.
inline std::int32_t LaneIndex(const IndexRows& rows, std::uint32_t l) {
  if (rows.two_term) {
    const std::uint32_t m = static_cast<std::uint32_t>(rows.s1[l].i) *
                            static_cast<std::uint32_t>(rows.s2[l].i);
    return static_cast<std::int32_t>(
        m + static_cast<std::uint32_t>(rows.s3[l].i));
  }
  return static_cast<std::int32_t>(rows.s1[l].i);
}

// Computes the lane element indices, prechecks the whole chunk against the
// buffer bounds, and classifies the layout. A failed precheck — any index
// that could trap or wrap through kPtrAdd's offset mask — returns !ok and
// the caller falls back to the exact per-lane slow path. On success the
// precheck guarantees base_off + idx*esize stays within [0, size - esize]
// and below kPtrOffsetMask for every lane, so the masked pointer arithmetic
// is the identity and loads cannot trap.
//
// Loads codegen proved affine classify in O(1): affinity under the
// bytecode's mod-2^32 arithmetic is EXACT (affine*uniform and
// affine+affine stay affine under wrap), so lanes 0 and 1 determine the
// stride and the endpoints bound every lane — provided the i64
// extrapolation never leaves [0, INT32_MAX], where wrap is the identity.
// Lane lanes-1 is spot-checked against the extrapolation as a cheap
// defense; any mismatch demotes to the full per-lane scan.
LanePlan ClassifyLaneIndices(LaneBatch& b, const IndexedLoad& ld,
                             const UniformBase& ub, std::int32_t* scratch) {
  LanePlan plan;
  if (ld.idx != ScalarType::kI32 ||
      ld.esize != static_cast<std::int32_t>(ScalarSize(ld.elem))) {
    return plan;  // Only the i32-index shape is classified.
  }
  const std::uint32_t lanes = b.lanes;
  const IndexRows rows = RowsFor(b, ld);
  const std::uint64_t esize = static_cast<std::uint64_t>(ld.esize);

  auto check_range = [&](std::int32_t mn, std::int32_t mx) {
    if (mn < 0) return false;
    const std::uint64_t last =
        ub.base_off + static_cast<std::uint64_t>(mx) * esize;
    return last <= kPtrOffsetMask && last + esize <= ub.size;
  };

  if (ld.affine) {
    const std::int32_t idx0 = LaneIndex(rows, 0);
    const std::int32_t stride =
        lanes > 1 ? static_cast<std::int32_t>(
                        static_cast<std::uint32_t>(LaneIndex(rows, 1)) -
                        static_cast<std::uint32_t>(idx0))
                  : 0;
    const std::int64_t end =
        idx0 + static_cast<std::int64_t>(stride) * (lanes - 1);
    if (idx0 >= 0 && end >= 0 && end <= INT32_MAX &&
        (lanes < 3 ||
         LaneIndex(rows, lanes - 1) == static_cast<std::int32_t>(end))) {
      const std::int32_t lo =
          stride >= 0 ? idx0 : static_cast<std::int32_t>(end);
      const std::int32_t hi =
          stride >= 0 ? static_cast<std::int32_t>(end) : idx0;
      if (!check_range(lo, hi)) return plan;
      plan.idx = scratch;
      plan.ok = true;
      if (stride == 0 || stride == 1) {
        // Broadcast/contiguous vector bodies only read idx[0], but the
        // scalar tail lanes still index idx[l] — fill both (no wrap: every
        // value sits between idx0 and end).
        scratch[0] = idx0;
        for (std::uint32_t l = lanes & ~3u; l < lanes; ++l) {
          scratch[l] = static_cast<std::int32_t>(
              idx0 + static_cast<std::int64_t>(stride) * l);
        }
        plan.kind = stride == 0 ? LanePlan::Kind::kBroadcast
                                : LanePlan::Kind::kContiguous;
        return plan;
      }
      // Strided: materialize the full ramp for the gather.
      for (std::uint32_t l = 0; l < lanes; ++l) {
        scratch[l] = static_cast<std::int32_t>(
            idx0 + static_cast<std::int64_t>(stride) * l);
      }
      plan.kind = LanePlan::Kind::kGather;
      return plan;
    }
    // Hint contradicted or wrapping: fall through to the full scan.
  }

  // Varying indices: compute every lane (vectorized, exact wrap) with a
  // running min/max for the range precheck.
  const std::uint32_t vec = lanes & ~3u;
  std::int32_t mn = INT32_MAX;
  std::int32_t mx = INT32_MIN;
  if (vec != 0) {
    simd::VecI32 vmn = simd::VecI32::Broadcast(INT32_MAX);
    simd::VecI32 vmx = simd::VecI32::Broadcast(INT32_MIN);
    for (std::uint32_t c = 0; c < vec; c += 4) {
      simd::VecI32 idx;
      if (rows.two_term) {
        const simd::VecI32 s1 = simd::VecI32::LoadLow64(rows.s1 + c);
        const simd::VecI32 s2 = simd::VecI32::LoadLow64(rows.s2 + c);
        const simd::VecI32 s3 = simd::VecI32::LoadLow64(rows.s3 + c);
        idx = simd::Add(simd::Mul(s1, s2), s3);  // Exact 32-bit wrap.
      } else {
        idx = simd::VecI32::LoadLow64(rows.s1 + c);
      }
      idx.Store(scratch + c);
      vmn = simd::Min(vmn, idx);
      vmx = simd::Max(vmx, idx);
    }
    mn = simd::HMin(vmn);
    mx = simd::HMax(vmx);
  }
  for (std::uint32_t l = vec; l < lanes; ++l) {
    const std::int32_t idx = LaneIndex(rows, l);
    scratch[l] = idx;
    mn = idx < mn ? idx : mn;
    mx = idx > mx ? idx : mx;
  }
  if (!check_range(mn, mx)) return plan;
  plan.idx = scratch;
  plan.ok = true;
  plan.kind =
      mn == mx ? LanePlan::Kind::kBroadcast : LanePlan::Kind::kGather;
  return plan;
}

// Four f32 elements for lanes [c, c+4) under a classified plan. The plan's
// precheck already proved every element in-bounds.
inline simd::VecF32 LoadF32Lanes(const std::uint8_t* base, const LanePlan& p,
                                 std::uint32_t c) {
  switch (p.kind) {
    case LanePlan::Kind::kBroadcast: {
      float v;
      std::memcpy(&v, base + static_cast<std::int64_t>(p.idx[0]) * 4, 4);
      return simd::VecF32::Broadcast(v);
    }
    case LanePlan::Kind::kContiguous:
      return simd::VecF32::Load(reinterpret_cast<const float*>(
          base + (static_cast<std::int64_t>(p.idx[0]) + c) * 4));
    case LanePlan::Kind::kGather:
    default:
      return simd::VecF32::Gather(reinterpret_cast<const float*>(base),
                                  simd::VecI32::Load(p.idx + c));
  }
}

inline simd::VecF64 LoadF64Lanes(const std::uint8_t* base, const LanePlan& p,
                                 std::uint32_t c) {
  switch (p.kind) {
    case LanePlan::Kind::kBroadcast: {
      double v;
      std::memcpy(&v, base + static_cast<std::int64_t>(p.idx[0]) * 8, 8);
      return simd::VecF64::Broadcast(v);
    }
    case LanePlan::Kind::kContiguous:
      return simd::VecF64::Load(reinterpret_cast<const double*>(
          base + (static_cast<std::int64_t>(p.idx[0]) + c) * 8));
    case LanePlan::Kind::kGather:
    default:
      return simd::VecF64::Gather(reinterpret_cast<const double*>(base),
                                  simd::VecI32::Load(p.idx + c));
  }
}

// Vector path for a fused kIndexedLoad: classify the lane offsets once,
// then load whole chunks. Falls back (returns false) when classification
// fails — unusual index type, possible trap, non-global base.
bool SimdIndexedLoad(LaneBatch& b, const IndexedLoad& ld,
                     const UniformBase& ub, Value* out) {
  const LanePlan plan =
      ClassifyLaneIndices(b, ld, ub, b.idx_scratch[0].data());
  if (!plan.ok) return false;
  const std::uint32_t lanes = b.lanes;
  const std::uint32_t vec = lanes & ~3u;
  if (plan.kind == LanePlan::Kind::kBroadcast) {
    const Value v = LoadScalar(
        ub.data + static_cast<std::int64_t>(plan.idx[0]) *
                      static_cast<std::int64_t>(ld.esize),
        ld.elem);
    for (std::uint32_t l = 0; l < lanes; ++l) out[l] = v;
    return true;
  }
  switch (ld.elem) {
    case ScalarType::kF32:
      for (std::uint32_t c = 0; c < vec; c += 4) {
        simd::ToF64(LoadF32Lanes(ub.data, plan, c)).Store(&out[c].f);
      }
      break;
    case ScalarType::kF64:
      for (std::uint32_t c = 0; c < vec; c += 4) {
        LoadF64Lanes(ub.data, plan, c).Store(&out[c].f);
      }
      break;
    case ScalarType::kI32:
      if (plan.kind == LanePlan::Kind::kContiguous) {
        const auto* src = reinterpret_cast<const std::int32_t*>(
            ub.data + static_cast<std::int64_t>(plan.idx[0]) * 4);
        for (std::uint32_t c = 0; c < vec; c += 4) {
          simd::VecI32::Load(src + c).StoreSignExt64(out + c);
        }
      } else {
        for (std::uint32_t l = 0; l < vec; ++l) {
          out[l] = LoadScalar(
              ub.data + static_cast<std::int64_t>(plan.idx[l]) * 4, ld.elem);
        }
      }
      break;
    case ScalarType::kU32:
      if (plan.kind == LanePlan::Kind::kContiguous) {
        const auto* src = reinterpret_cast<const std::int32_t*>(
            ub.data + static_cast<std::int64_t>(plan.idx[0]) * 4);
        for (std::uint32_t c = 0; c < vec; c += 4) {
          simd::VecI32::Load(src + c).StoreZeroExt64(out + c);
        }
      } else {
        for (std::uint32_t l = 0; l < vec; ++l) {
          out[l] = LoadScalar(
              ub.data + static_cast<std::int64_t>(plan.idx[l]) * 4, ld.elem);
        }
      }
      break;
    default:
      for (std::uint32_t l = 0; l < vec; ++l) {
        out[l] = LoadScalar(ub.data + static_cast<std::int64_t>(plan.idx[l]) *
                                          static_cast<std::int64_t>(ld.esize),
                            ld.elem);
      }
      break;
  }
  for (std::uint32_t l = vec; l < lanes; ++l) {
    out[l] = LoadScalar(ub.data + static_cast<std::int64_t>(plan.idx[l]) *
                                      static_cast<std::int64_t>(ld.esize),
                        ld.elem);
  }
  return true;
}

// Vector path for the fused MAC superop (acc += a[i]*b[j], f32/f64).
// MAC stays mul-then-add — two roundings, never an FMA — so results are
// byte-identical to the interpreter's kMul/kAdd pair.
bool SimdMac(LaneBatch& b, const FusedOp& op, const UniformBase& uba,
             const UniformBase& ubb, Value* acc) {
  const LanePlan pa =
      ClassifyLaneIndices(b, op.ld[0], uba, b.idx_scratch[0].data());
  if (!pa.ok) return false;
  const LanePlan pb =
      ClassifyLaneIndices(b, op.ld[1], ubb, b.idx_scratch[1].data());
  if (!pb.ok) return false;
  const std::uint32_t lanes = b.lanes;
  const std::uint32_t vec = lanes & ~3u;
  const bool bca = pa.kind == LanePlan::Kind::kBroadcast;
  const bool bcb = pb.kind == LanePlan::Kind::kBroadcast;
  if (op.type == ScalarType::kF32) {
    // Hoist broadcast operands (matmul's A[row*n+k] is one per group) out
    // of the chunk loop.
    const simd::VecF32 ba =
        bca ? LoadF32Lanes(uba.data, pa, 0) : simd::VecF32::Broadcast(0.0f);
    const simd::VecF32 bb =
        bcb ? LoadF32Lanes(ubb.data, pb, 0) : simd::VecF32::Broadcast(0.0f);
    for (std::uint32_t c = 0; c < vec; c += 4) {
      const simd::VecF32 xa = bca ? ba : LoadF32Lanes(uba.data, pa, c);
      const simd::VecF32 xb = bcb ? bb : LoadF32Lanes(ubb.data, pb, c);
      const simd::VecF32 m = simd::Mul(xa, xb);
      const simd::VecF32 r =
          simd::Add(simd::ToF32(simd::VecF64::Load(&acc[c].f)), m);
      simd::ToF64(r).Store(&acc[c].f);
    }
    for (std::uint32_t l = vec; l < lanes; ++l) {
      float xa;
      float xb;
      std::memcpy(&xa, uba.data + static_cast<std::int64_t>(pa.idx[l]) * 4, 4);
      std::memcpy(&xb, ubb.data + static_cast<std::int64_t>(pb.idx[l]) * 4, 4);
      const float m = xa * xb;
      const float r = static_cast<float>(acc[l].f) + m;
      acc[l].f = r;
    }
    return true;
  }
  if (op.type == ScalarType::kF64) {
    const simd::VecF64 ba =
        bca ? LoadF64Lanes(uba.data, pa, 0) : simd::VecF64::Broadcast(0.0);
    const simd::VecF64 bb =
        bcb ? LoadF64Lanes(ubb.data, pb, 0) : simd::VecF64::Broadcast(0.0);
    for (std::uint32_t c = 0; c < vec; c += 4) {
      const simd::VecF64 xa = bca ? ba : LoadF64Lanes(uba.data, pa, c);
      const simd::VecF64 xb = bcb ? bb : LoadF64Lanes(ubb.data, pb, c);
      const simd::VecF64 m = simd::Mul(xa, xb);
      const simd::VecF64 r = simd::Add(simd::VecF64::Load(&acc[c].f), m);
      r.Store(&acc[c].f);
    }
    for (std::uint32_t l = vec; l < lanes; ++l) {
      double xa;
      double xb;
      std::memcpy(&xa, uba.data + static_cast<std::int64_t>(pa.idx[l]) * 8, 8);
      std::memcpy(&xb, ubb.data + static_cast<std::int64_t>(pb.idx[l]) * 8, 8);
      const double m = xa * xb;
      const double r = acc[l].f + m;
      acc[l].f = r;
    }
    return true;
  }
  return false;
}

// Executes one fused superop over all lanes. The caller already charged the
// budget and verified the pattern applies at b.pc.
Status RunFused(LaneBatch& b, GroupContext& grp, const FusedOp& op,
                bool use_simd, BatchGroupStats& stats) {
  const std::uint32_t lanes = b.lanes;
  switch (op.kind) {
    case FusedOp::Kind::kLoadLocalPair: {
      std::memcpy(Row(b, b.sp), LocalRow(b, b.base + op.a),
                  sizeof(Value) * lanes);
      std::memcpy(Row(b, b.sp + 1), LocalRow(b, b.base + op.b),
                  sizeof(Value) * lanes);
      b.sp += 2;
      return Status::Ok();
    }
    case FusedOp::Kind::kMulAdd: {
      Value* acc = Row(b, b.sp - 3);
      const Value* x = Row(b, b.sp - 2);
      const Value* y = Row(b, b.sp - 1);
      if (op.type == ScalarType::kF32) {
        for (std::uint32_t l = 0; l < lanes; ++l) {
          // Two separate float roundings, exactly as kMul then kAdd.
          const float m = static_cast<float>(x[l].f) *
                          static_cast<float>(y[l].f);
          const float r = static_cast<float>(acc[l].f) + m;
          acc[l].f = r;
        }
      } else if (op.type == ScalarType::kF64) {
        for (std::uint32_t l = 0; l < lanes; ++l) {
          const double m = x[l].f * y[l].f;
          const double r = acc[l].f + m;
          acc[l].f = r;
        }
      } else {
        for (std::uint32_t l = 0; l < lanes; ++l) {
          Value m;
          Status s = EvalBinary(Opcode::kMul, op.type, x[l], y[l], &m);
          if (s.ok()) s = EvalBinary(Opcode::kAdd, op.type, acc[l], m, &acc[l]);
          if (!s.ok()) return s;  // Unreachable: int mul/add never trap.
        }
      }
      b.sp -= 2;
      return Status::Ok();
    }
    case FusedOp::Kind::kConvertPtrAddLoad:
    case FusedOp::Kind::kPtrAddLoad: {
      Value* ptr = Row(b, b.sp - 2);
      Value* idx = Row(b, b.sp - 1);
      const bool convert = op.kind == FusedOp::Kind::kConvertPtrAddLoad;
      const std::uint64_t bytes = ScalarSize(op.type);
      for (std::uint32_t l = 0; l < lanes; ++l) {
        const Value iv = convert
                             ? ConvertValue(idx[l], op.idx_type,
                                            ScalarType::kI64)
                             : idx[l];
        const std::uint64_t offset =
            PointerOffset(ptr[l].u) +
            static_cast<std::uint64_t>(iv.i) * static_cast<std::uint64_t>(op.a);
        const std::uint64_t addr =
            (ptr[l].u & ~kPtrOffsetMask) | (offset & kPtrOffsetMask);
        auto mem = ResolveLanePtr(addr, bytes, l, b, grp);
        if (!mem.ok()) return mem.status();
        ptr[l] = LoadScalar(*mem, op.type);
      }
      --b.sp;
      return Status::Ok();
    }
    case FusedOp::Kind::kLocalAddConst: {
      Value* row = LocalRow(b, b.base + op.a);
      // i32 +/- const (the classic k++): exact EvalBinary wrap math, no
      // per-lane call.
      if (op.type == ScalarType::kI32 &&
          (op.op == Opcode::kAdd || op.op == Opcode::kSub)) {
        const std::uint32_t c = static_cast<std::uint32_t>(op.constant.i);
        std::uint32_t l = 0;
        if (use_simd) {
          const simd::VecI32 vc =
              simd::VecI32::Broadcast(static_cast<std::int32_t>(c));
          const std::uint32_t vec = lanes & ~3u;
          if (op.op == Opcode::kAdd) {
            for (; l < vec; l += 4) {
              simd::Add(simd::VecI32::LoadLow64(row + l), vc)
                  .StoreSignExt64(row + l);
            }
          } else {
            for (; l < vec; l += 4) {
              simd::Sub(simd::VecI32::LoadLow64(row + l), vc)
                  .StoreSignExt64(row + l);
            }
          }
          if (vec != 0) ++stats.simd_steps;
        }
        if (op.op == Opcode::kAdd) {
          for (; l < lanes; ++l) {
            row[l].i = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(row[l].i) + c);
          }
        } else {
          for (; l < lanes; ++l) {
            row[l].i = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(row[l].i) - c);
          }
        }
        return Status::Ok();
      }
      for (std::uint32_t l = 0; l < lanes; ++l) {
        Status s = EvalBinary(op.op, op.type, row[l], op.constant, &row[l]);
        if (!s.ok()) return s;  // Unreachable: add/sub never trap.
      }
      return Status::Ok();
    }
    case FusedOp::Kind::kIndexedLoad: {
      const IndexedLoad& ld = op.ld[0];
      Value* out = Row(b, b.sp++);
      const UniformBase ub =
          ResolveUniformBase(b, grp, ld.base, ld.base_uniform);
      if (ub.ok && use_simd && SimdIndexedLoad(b, ld, ub, out)) {
        ++stats.simd_steps;
        return Status::Ok();
      }
      if (ub.ok && FastIndexType(ld.idx)) {
        const IndexRows rows = RowsFor(b, ld);
        const std::uint64_t bytes = ScalarSize(ld.elem);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          const std::uint64_t off = LaneElemOffset(ub, rows, ld, l);
          if (off + bytes > ub.size) {
            auto v = IndexedLoadLane(b, grp, ld, l);  // Exact trap message.
            if (!v.ok()) return v.status();
            out[l] = *v;
            continue;
          }
          out[l] = LoadScalar(ub.data + off, ld.elem);
        }
        return Status::Ok();
      }
      for (std::uint32_t l = 0; l < lanes; ++l) {
        auto v = IndexedLoadLane(b, grp, ld, l);
        if (!v.ok()) return v.status();
        out[l] = *v;
      }
      return Status::Ok();
    }
    case FusedOp::Kind::kMacLocal: {
      // locals[a] += load(ld[0]) * load(ld[1]) — the entire MAC loop body
      // in one per-lane pass, no operand-stack traffic at all.
      Value* acc = LocalRow(b, b.base + op.a);
      const IndexedLoad& lda = op.ld[0];
      const IndexedLoad& ldb = op.ld[1];
      if (use_simd &&
          (op.type == ScalarType::kF32 || op.type == ScalarType::kF64)) {
        const UniformBase sa =
            ResolveUniformBase(b, grp, lda.base, lda.base_uniform);
        const UniformBase sb =
            ResolveUniformBase(b, grp, ldb.base, ldb.base_uniform);
        if (sa.ok && sb.ok && SimdMac(b, op, sa, sb, acc)) {
          ++stats.simd_steps;
          return Status::Ok();
        }
      }
      if (op.type == ScalarType::kF32 && FastIndexType(lda.idx) &&
          FastIndexType(ldb.idx)) {
        const UniformBase uba =
            ResolveUniformBase(b, grp, lda.base, lda.base_uniform);
        const UniformBase ubb =
            ResolveUniformBase(b, grp, ldb.base, ldb.base_uniform);
        if (uba.ok && ubb.ok) {
          const IndexRows ra = RowsFor(b, lda);
          const IndexRows rb = RowsFor(b, ldb);
          for (std::uint32_t l = 0; l < lanes; ++l) {
            const std::uint64_t offa = LaneElemOffset(uba, ra, lda, l);
            const std::uint64_t offb = LaneElemOffset(ubb, rb, ldb, l);
            if (offa + 4 > uba.size || offb + 4 > ubb.size) {
              auto x = IndexedLoadLane(b, grp, lda, l);  // Exact trap.
              if (!x.ok()) return x.status();
              auto y = IndexedLoadLane(b, grp, ldb, l);
              if (!y.ok()) return y.status();
              const float m = static_cast<float>(x->f) *
                              static_cast<float>(y->f);
              const float r = static_cast<float>(acc[l].f) + m;
              acc[l].f = r;
              continue;
            }
            float xa;
            float xb;
            std::memcpy(&xa, uba.data + offa, 4);
            std::memcpy(&xb, ubb.data + offb, 4);
            // Two separate float roundings, exactly as kMul then kAdd.
            const float m = xa * xb;
            const float r = static_cast<float>(acc[l].f) + m;
            acc[l].f = r;
          }
          return Status::Ok();
        }
      }
      if (op.type == ScalarType::kF32) {
        for (std::uint32_t l = 0; l < lanes; ++l) {
          auto x = IndexedLoadLane(b, grp, op.ld[0], l);
          if (!x.ok()) return x.status();
          auto y = IndexedLoadLane(b, grp, op.ld[1], l);
          if (!y.ok()) return y.status();
          // Two separate float roundings, exactly as kMul then kAdd.
          const float m = static_cast<float>(x->f) * static_cast<float>(y->f);
          const float r = static_cast<float>(acc[l].f) + m;
          acc[l].f = r;
        }
      } else if (op.type == ScalarType::kF64) {
        for (std::uint32_t l = 0; l < lanes; ++l) {
          auto x = IndexedLoadLane(b, grp, op.ld[0], l);
          if (!x.ok()) return x.status();
          auto y = IndexedLoadLane(b, grp, op.ld[1], l);
          if (!y.ok()) return y.status();
          const double m = x->f * y->f;
          const double r = acc[l].f + m;
          acc[l].f = r;
        }
      } else {
        for (std::uint32_t l = 0; l < lanes; ++l) {
          auto x = IndexedLoadLane(b, grp, op.ld[0], l);
          if (!x.ok()) return x.status();
          auto y = IndexedLoadLane(b, grp, op.ld[1], l);
          if (!y.ok()) return y.status();
          Value m;
          Status s = EvalBinary(Opcode::kMul, op.type, *x, *y, &m);
          if (s.ok()) s = EvalBinary(Opcode::kAdd, op.type, acc[l], m, &acc[l]);
          if (!s.ok()) return s;  // Unreachable: int mul/add never trap.
        }
      }
      return Status::Ok();
    }
    case FusedOp::Kind::kCompareLocals: {
      const Value* lhs = LocalRow(b, b.base + op.a);
      const Value* rhs = LocalRow(b, b.base + op.b);
      Value* out = Row(b, b.sp++);
      if (use_simd && op.type == ScalarType::kI32) {
        SimdCompareI32Rows(op.op, lhs, rhs, out, lanes);
        ++stats.simd_steps;
        return Status::Ok();
      }
      // i32 loop conditions (k < n) get op-hoisted loops; EvalCompare's i32
      // path is cmp((int32)a.i, (int32)b.i), transcribed per opcode.
      if (op.type == ScalarType::kI32) {
        auto run = [&](auto cmp) {
          for (std::uint32_t l = 0; l < lanes; ++l) {
            out[l].i = cmp(static_cast<std::int32_t>(lhs[l].i),
                           static_cast<std::int32_t>(rhs[l].i))
                           ? 1
                           : 0;
          }
        };
        switch (op.op) {
          case Opcode::kEq: run([](auto x, auto y) { return x == y; }); break;
          case Opcode::kNe: run([](auto x, auto y) { return x != y; }); break;
          case Opcode::kLt: run([](auto x, auto y) { return x < y; }); break;
          case Opcode::kLe: run([](auto x, auto y) { return x <= y; }); break;
          case Opcode::kGt: run([](auto x, auto y) { return x > y; }); break;
          default: run([](auto x, auto y) { return x >= y; }); break;
        }
        return Status::Ok();
      }
      for (std::uint32_t l = 0; l < lanes; ++l) {
        Value v;
        v.i = EvalCompare(op.op, op.type, lhs[l], rhs[l]) ? 1 : 0;
        out[l] = v;
      }
      return Status::Ok();
    }
  }
  return Status(ErrorCode::kInternal, "bad fused op");
}

// Single-steps the straight-line region [b.pc, target) with b.active as the
// lane mask. Transient operand-stack traffic (push const/local/dup, pops)
// runs full-row — inactive lanes' garbage is discarded at re-convergence —
// but anything with an observable effect (stores, memory ops, builtins) and
// anything that could trap or hit UB on garbage (pointer decode, EvalBinary,
// kConvert on an arbitrary double) skips inactive lanes. At return b.pc ==
// target and all lanes are re-converged.
Status RunMaskedOps(LaneBatch& b, GroupContext& grp, std::uint32_t target) {
  const auto& code = grp.module.code;
  const auto& literals = grp.module.literals;
  const std::uint32_t lanes = b.lanes;
  const std::uint8_t* active = b.active.data();

  while (b.pc < target) {
    const Instruction& instr = code[b.pc++];
    switch (instr.op) {
      case Opcode::kNop:
        break;
      case Opcode::kPushConst: {
        const Value v = literals[instr.a];
        Value* row = Row(b, b.sp++);
        for (std::uint32_t l = 0; l < lanes; ++l) row[l] = v;
        break;
      }
      case Opcode::kLoadLocal:
        std::memcpy(Row(b, b.sp++), LocalRow(b, b.base + instr.a),
                    sizeof(Value) * lanes);
        break;
      case Opcode::kStoreLocal: {
        const Value* src = Row(b, --b.sp);
        Value* dst = LocalRow(b, b.base + instr.a);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          if (active[l]) dst[l] = src[l];
        }
        break;
      }
      case Opcode::kDup:
        std::memcpy(Row(b, b.sp), Row(b, b.sp - 1), sizeof(Value) * lanes);
        ++b.sp;
        break;
      case Opcode::kPop:
        --b.sp;
        break;
      case Opcode::kLoadMem: {
        Value* addr = Row(b, b.sp - 1);
        const std::uint64_t bytes = ScalarSize(instr.type);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          if (!active[l]) continue;
          auto mem = ResolveLanePtr(addr[l].u, bytes, l, b, grp);
          if (!mem.ok()) return mem.status();
          addr[l] = LoadScalar(*mem, instr.type);
        }
        break;
      }
      case Opcode::kStoreMem: {
        const Value* value = Row(b, b.sp - 1);
        const Value* addr = Row(b, b.sp - 2);
        const std::uint64_t bytes = ScalarSize(instr.type);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          if (!active[l]) continue;
          auto mem = ResolveLanePtr(addr[l].u, bytes, l, b, grp);
          if (!mem.ok()) return mem.status();
          StoreScalar(*mem, instr.type, value[l]);
        }
        b.sp -= 2;
        break;
      }
      case Opcode::kPtrAdd: {
        const Value* index = Row(b, b.sp - 1);
        Value* ptr = Row(b, b.sp - 2);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          if (!active[l]) continue;
          const std::uint64_t offset =
              PointerOffset(ptr[l].u) +
              static_cast<std::uint64_t>(index[l].i) *
                  static_cast<std::uint64_t>(instr.a);
          ptr[l].u = (ptr[l].u & ~kPtrOffsetMask) | (offset & kPtrOffsetMask);
        }
        --b.sp;
        break;
      }
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kMod:
      case Opcode::kBitAnd:
      case Opcode::kBitOr:
      case Opcode::kBitXor:
      case Opcode::kShl:
      case Opcode::kShr: {
        const Value* rhs = Row(b, b.sp - 1);
        Value* lhs = Row(b, b.sp - 2);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          if (!active[l]) continue;
          Status s = EvalBinary(instr.op, instr.type, lhs[l], rhs[l],
                                &lhs[l]);
          if (!s.ok()) return s;
        }
        --b.sp;
        break;
      }
      case Opcode::kNeg: {
        Value* row = Row(b, b.sp - 1);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          if (!active[l]) continue;
          Value v = row[l];
          if (IsFloat(instr.type)) {
            v.f = instr.type == ScalarType::kF32
                      ? -static_cast<float>(v.f)
                      : -v.f;
          } else if (IsUnsignedInt(instr.type)) {
            v.u = ScalarSize(instr.type) == 8
                      ? 0 - v.u
                      : static_cast<std::uint32_t>(0 - v.u);
          } else {
            v.i = ScalarSize(instr.type) == 8
                      ? -v.i
                      : static_cast<std::int32_t>(-v.i);
          }
          row[l] = v;
        }
        break;
      }
      case Opcode::kBitNot: {
        Value* row = Row(b, b.sp - 1);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          if (!active[l]) continue;
          Value v = row[l];
          if (IsUnsignedInt(instr.type)) {
            v.u = ScalarSize(instr.type) == 8
                      ? ~v.u
                      : static_cast<std::uint32_t>(~v.u);
          } else {
            v.i = ScalarSize(instr.type) == 8
                      ? ~v.i
                      : static_cast<std::int32_t>(
                            ~static_cast<std::int32_t>(v.i));
          }
          row[l] = v;
        }
        break;
      }
      case Opcode::kEq:
      case Opcode::kNe:
      case Opcode::kLt:
      case Opcode::kLe:
      case Opcode::kGt:
      case Opcode::kGe: {
        const Value* rhs = Row(b, b.sp - 1);
        Value* lhs = Row(b, b.sp - 2);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          if (!active[l]) continue;
          Value out;
          out.i = EvalCompare(instr.op, instr.type, lhs[l], rhs[l]) ? 1 : 0;
          lhs[l] = out;
        }
        --b.sp;
        break;
      }
      case Opcode::kLogicalNot: {
        Value* row = Row(b, b.sp - 1);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          if (active[l]) row[l].i = row[l].i == 0 ? 1 : 0;
        }
        break;
      }
      case Opcode::kConvert: {
        // Masked even though the result is transient: converting an
        // inactive lane's garbage (e.g. a huge double to int) is UB.
        Value* row = Row(b, b.sp - 1);
        const auto to = static_cast<ScalarType>(instr.a);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          if (active[l]) row[l] = ConvertValue(row[l], instr.type, to);
        }
        break;
      }
      case Opcode::kCallBuiltin: {
        const auto id = static_cast<BuiltinId>(instr.a);
        const int argc = instr.b;
        const std::uint32_t abase = b.sp - argc;
        const bool has_result = instr.type != ScalarType::kVoid;
        for (std::uint32_t l = 0; l < lanes; ++l) {
          if (!active[l]) continue;
          Value args[4];
          for (int i = 0; i < argc; ++i) {
            args[i] = b.stack[static_cast<std::size_t>(abase + i) * lanes + l];
          }
          Value out;
          if (IsWorkItemBuiltin(id)) {
            const std::uint64_t g[3] = {b.gid[0][l], b.gid[1][l],
                                        b.gid[2][l]};
            const std::uint64_t lo[3] = {b.lid[0][l], b.lid[1][l],
                                         b.lid[2][l]};
            out = EvalWorkItemBuiltin(id, g, lo, grp, args);
          } else if (IsAtomicBuiltin(id)) {
            auto mem = ResolveLanePtr(args[0].u, 4, l, b, grp);
            if (!mem.ok()) return mem.status();
            out = EvalAtomicAt(id, instr.type, *mem, args, argc);
          } else {
            out = EvalPureBuiltin(id, instr.type, args);
          }
          if (has_result) {
            b.stack[static_cast<std::size_t>(abase) * lanes + l] = out;
          }
        }
        b.sp = abase + (has_result ? 1 : 0);
        break;
      }
      default:
        // Unreachable: the caller pre-scanned the region with IsMaskableOp.
        return Trap(grp, b.pc - 1, "non-maskable op in masked region");
    }
  }
  return Status::Ok();
}

// Tries to run the divergent forward branch at pc-1 (operands already
// popped, condition row in `cond`) as a masked region instead of bailing
// out. Budget parity with the interpreter: the shared budget is charged the
// region's whole span once up-front — exactly what every lane would pay
// running it unmasked — and each inactive lane records a refund so a later
// bail-out (or per-lane trap pc) still sees the interpreter's per-item
// counter. Returns with *masked=false (and no state change) when the
// region is not eligible.
Status TryRunMaskedRegion(LaneBatch& b, GroupContext& grp,
                          const Instruction& instr, const Value* cond,
                          BatchGroupStats& stats, bool* masked) {
  *masked = false;
  if (instr.op != Opcode::kJumpIfFalse ||
      (instr.flags & kInstrFlagMaskedRegion) == 0 ||
      !grp.options.enable_lane_masking) {
    return Status::Ok();
  }
  const auto& code = grp.module.code;
  const auto target = static_cast<std::uint32_t>(instr.a);
  if (target <= b.pc || target > code.size()) return Status::Ok();
  const std::uint64_t span = target - b.pc;
  if (b.budget < span) return Status::Ok();  // Single-step to the exact trap.
  for (std::uint32_t p = b.pc; p < target; ++p) {
    if (!IsMaskableOp(code[p].op)) return Status::Ok();
  }
  const std::uint32_t lanes = b.lanes;
  std::uint32_t active_count = 0;
  for (std::uint32_t l = 0; l < lanes; ++l) {
    // kJumpIfFalse falls into the region when the condition is true.
    const std::uint8_t a = cond[l].i != 0 ? 1 : 0;
    b.active[l] = a;
    if (a) {
      ++active_count;
    } else {
      b.refund[l] += span;
    }
  }
  b.has_refund = true;
  b.budget -= span;
  stats.batch_steps += span;
  stats.masked_steps += span;
  stats.instructions += span * active_count;
  *masked = true;
  return RunMaskedOps(b, grp, target);
}

Status RunBatch(LaneBatch& b, GroupContext& grp, const BatchPlan& plan,
                BatchGroupStats& stats) {
  const auto& code = grp.module.code;
  const auto& literals = grp.module.literals;
  const std::uint32_t lanes = b.lanes;
  const bool use_simd =
      simd::kEnabled && grp.options.enable_simd &&
      lanes >= static_cast<std::uint32_t>(simd::kWidth);

  while (true) {
    // Trace-fused superop at this pc? One dispatch covers `length`
    // instructions; fall through to single-step near budget exhaustion so
    // the trap point matches the interpreter exactly.
    if (b.pc < plan.fused_at.size() && plan.fused_at[b.pc] >= 0) {
      const FusedOp& fop = plan.ops[plan.fused_at[b.pc]];
      if (b.budget >= fop.length) {
        b.budget -= fop.length;
        ++stats.batch_steps;
        ++stats.fused_steps;
        stats.instructions += static_cast<std::uint64_t>(fop.length) * lanes;
        Status s = RunFused(b, grp, fop, use_simd, stats);
        if (!s.ok()) return s;
        b.pc += fop.length;
        continue;
      }
    }

    if (b.budget == 0) {
      if (b.has_refund) {
        // Lanes owed refunds no longer exhaust their budgets in unison;
        // let the interpreter find each lane's exact trap point.
        return BailOutUniform(b, grp, b.pc, stats);
      }
      return Trap(grp, b.pc, "instruction budget exhausted (infinite loop?)");
    }
    --b.budget;
    if (b.pc >= code.size()) return Trap(grp, b.pc, "pc out of range");
    ++stats.batch_steps;
    stats.instructions += lanes;
    const Instruction& instr = code[b.pc++];

    switch (instr.op) {
      case Opcode::kNop:
        break;
      case Opcode::kPushConst: {
        const Value v = literals[instr.a];
        Value* row = Row(b, b.sp++);
        for (std::uint32_t l = 0; l < lanes; ++l) row[l] = v;
        break;
      }
      case Opcode::kLoadLocal:
        std::memcpy(Row(b, b.sp++), LocalRow(b, b.base + instr.a),
                    sizeof(Value) * lanes);
        break;
      case Opcode::kStoreLocal:
        std::memcpy(LocalRow(b, b.base + instr.a), Row(b, --b.sp),
                    sizeof(Value) * lanes);
        break;
      case Opcode::kDup:
        std::memcpy(Row(b, b.sp), Row(b, b.sp - 1), sizeof(Value) * lanes);
        ++b.sp;
        break;
      case Opcode::kPop:
        --b.sp;
        break;
      case Opcode::kLoadMem: {
        Value* addr = Row(b, b.sp - 1);
        const std::uint64_t bytes = ScalarSize(instr.type);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          auto mem = ResolveLanePtr(addr[l].u, bytes, l, b, grp);
          if (!mem.ok()) return mem.status();
          addr[l] = LoadScalar(*mem, instr.type);
        }
        break;
      }
      case Opcode::kStoreMem: {
        const Value* value = Row(b, b.sp - 1);
        const Value* addr = Row(b, b.sp - 2);
        const std::uint64_t bytes = ScalarSize(instr.type);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          auto mem = ResolveLanePtr(addr[l].u, bytes, l, b, grp);
          if (!mem.ok()) return mem.status();
          StoreScalar(*mem, instr.type, value[l]);
        }
        b.sp -= 2;
        break;
      }
      case Opcode::kPtrAdd: {
        const Value* index = Row(b, b.sp - 1);
        Value* ptr = Row(b, b.sp - 2);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          const std::uint64_t offset =
              PointerOffset(ptr[l].u) +
              static_cast<std::uint64_t>(index[l].i) *
                  static_cast<std::uint64_t>(instr.a);
          ptr[l].u = (ptr[l].u & ~kPtrOffsetMask) | (offset & kPtrOffsetMask);
        }
        --b.sp;
        break;
      }
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kMod:
      case Opcode::kBitAnd:
      case Opcode::kBitOr:
      case Opcode::kBitXor:
      case Opcode::kShl:
      case Opcode::kShr: {
        const Value* rhs = Row(b, b.sp - 1);
        Value* lhs = Row(b, b.sp - 2);
        if (use_simd && SimdBinaryRows(instr.op, instr.type, lhs, rhs,
                                       lanes)) {
          ++stats.simd_steps;
        } else if (!BinaryFastLoop(instr.op, instr.type, lhs, rhs, lanes)) {
          for (std::uint32_t l = 0; l < lanes; ++l) {
            Status s = EvalBinary(instr.op, instr.type, lhs[l], rhs[l],
                                  &lhs[l]);
            if (!s.ok()) return s;
          }
        }
        --b.sp;
        break;
      }
      case Opcode::kNeg: {
        Value* row = Row(b, b.sp - 1);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          Value v = row[l];
          if (IsFloat(instr.type)) {
            v.f = instr.type == ScalarType::kF32
                      ? -static_cast<float>(v.f)
                      : -v.f;
          } else if (IsUnsignedInt(instr.type)) {
            v.u = ScalarSize(instr.type) == 8
                      ? 0 - v.u
                      : static_cast<std::uint32_t>(0 - v.u);
          } else {
            v.i = ScalarSize(instr.type) == 8
                      ? -v.i
                      : static_cast<std::int32_t>(-v.i);
          }
          row[l] = v;
        }
        break;
      }
      case Opcode::kBitNot: {
        Value* row = Row(b, b.sp - 1);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          Value v = row[l];
          if (IsUnsignedInt(instr.type)) {
            v.u = ScalarSize(instr.type) == 8
                      ? ~v.u
                      : static_cast<std::uint32_t>(~v.u);
          } else {
            v.i = ScalarSize(instr.type) == 8
                      ? ~v.i
                      : static_cast<std::int32_t>(
                            ~static_cast<std::int32_t>(v.i));
          }
          row[l] = v;
        }
        break;
      }
      case Opcode::kEq:
      case Opcode::kNe:
      case Opcode::kLt:
      case Opcode::kLe:
      case Opcode::kGt:
      case Opcode::kGe: {
        const Value* rhs = Row(b, b.sp - 1);
        Value* lhs = Row(b, b.sp - 2);
        if (use_simd && instr.type == ScalarType::kI32) {
          SimdCompareI32Rows(instr.op, lhs, rhs, lhs, lanes);
          ++stats.simd_steps;
        } else {
          for (std::uint32_t l = 0; l < lanes; ++l) {
            Value out;
            out.i = EvalCompare(instr.op, instr.type, lhs[l], rhs[l]) ? 1 : 0;
            lhs[l] = out;
          }
        }
        --b.sp;
        break;
      }
      case Opcode::kLogicalNot: {
        Value* row = Row(b, b.sp - 1);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          row[l].i = row[l].i == 0 ? 1 : 0;
        }
        break;
      }
      case Opcode::kConvert: {
        Value* row = Row(b, b.sp - 1);
        const auto to = static_cast<ScalarType>(instr.a);
        for (std::uint32_t l = 0; l < lanes; ++l) {
          row[l] = ConvertValue(row[l], instr.type, to);
        }
        break;
      }
      case Opcode::kJump:
        b.pc = static_cast<std::uint32_t>(instr.a);
        break;
      case Opcode::kJumpIfFalse:
      case Opcode::kJumpIfTrue: {
        const Value* cond = Row(b, --b.sp);
        const bool want_true = instr.op == Opcode::kJumpIfTrue;
        const bool jump0 = (cond[0].i != 0) == want_true;
        bool divergent = false;
        if ((instr.flags & kInstrFlagUniformBranch) == 0) {
          for (std::uint32_t l = 1; l < lanes; ++l) {
            if (((cond[l].i != 0) == want_true) != jump0) {
              divergent = true;
              break;
            }
          }
        }
        if (!divergent) {
          if (jump0) b.pc = static_cast<std::uint32_t>(instr.a);
          break;
        }
        // Short straight-line guard bodies run under a partial-lane mask;
        // everything else transposes and finishes via the interpreter.
        bool masked = false;
        Status ms = TryRunMaskedRegion(b, grp, instr, cond, stats, &masked);
        if (masked) {
          if (!ms.ok()) return ms;
          break;
        }
        const auto target = static_cast<std::uint32_t>(instr.a);
        std::vector<std::uint32_t> pcs(lanes);
        for (std::uint32_t m = 0; m < lanes; ++m) {
          pcs[m] = ((cond[m].i != 0) == want_true) ? target : b.pc;
        }
        return BailOut(b, grp, pcs.data(), stats);
      }
      case Opcode::kCall: {
        const CompiledFunction& callee = grp.module.functions[instr.a];
        if (callee.max_stack_slots == 0) {
          // No batch metadata for the callee: refund this instruction and
          // re-execute the call through the interpreter.
          ++b.budget;
          --stats.batch_steps;
          stats.instructions -= lanes;
          return BailOutUniform(b, grp, b.pc - 1, stats);
        }
        if (b.frames.size() >= 256) {
          return Trap(grp, b.pc - 1, "call stack overflow");
        }
        EnsureStackRows(b, b.sp + callee.max_stack_slots);
        b.frames.push_back(Frame{b.pc, b.base});
        const std::uint32_t new_base = b.local_rows;
        b.local_rows = new_base + callee.local_slots;
        b.locals.resize(static_cast<std::size_t>(b.local_rows) * lanes);
        const auto argc = static_cast<std::uint32_t>(instr.b);
        for (std::uint32_t i = 0; i < argc; ++i) {
          std::memcpy(LocalRow(b, new_base + i), Row(b, b.sp - argc + i),
                      sizeof(Value) * lanes);
        }
        b.sp -= argc;
        b.base = new_base;
        b.pc = callee.entry_pc;
        break;
      }
      case Opcode::kCallBuiltin: {
        const auto id = static_cast<BuiltinId>(instr.a);
        const int argc = instr.b;
        const std::uint32_t abase = b.sp - argc;
        const bool has_result = instr.type != ScalarType::kVoid;
        for (std::uint32_t l = 0; l < lanes; ++l) {
          Value args[4];
          for (int i = 0; i < argc; ++i) {
            args[i] = b.stack[static_cast<std::size_t>(abase + i) * lanes + l];
          }
          Value out;
          if (IsWorkItemBuiltin(id)) {
            const std::uint64_t g[3] = {b.gid[0][l], b.gid[1][l],
                                        b.gid[2][l]};
            const std::uint64_t lo[3] = {b.lid[0][l], b.lid[1][l],
                                         b.lid[2][l]};
            out = EvalWorkItemBuiltin(id, g, lo, grp, args);
          } else if (IsAtomicBuiltin(id)) {
            auto mem = ResolveLanePtr(args[0].u, 4, l, b, grp);
            if (!mem.ok()) return mem.status();
            out = EvalAtomicAt(id, instr.type, *mem, args, argc);
          } else {
            out = EvalPureBuiltin(id, instr.type, args);
          }
          if (has_result) {
            b.stack[static_cast<std::size_t>(abase) * lanes + l] = out;
          }
        }
        b.sp = abase + (has_result ? 1 : 0);
        break;
      }
      case Opcode::kReturn: {
        if (b.frames.empty()) {
          // All lanes finish together (they are in lockstep by definition).
          return Status::Ok();
        }
        // If a value is being returned its row at sp-1 simply stays in
        // place and becomes the caller's new top of stack; sp is unchanged
        // either way (the interpreter pops and re-pushes it).
        const Frame frame = b.frames.back();
        b.frames.pop_back();
        b.local_rows = b.base;
        b.locals.resize(static_cast<std::size_t>(b.local_rows) * lanes);
        b.base = frame.prev_base;
        b.pc = frame.return_pc;
        break;
      }
      case Opcode::kBarrier:
        // Lockstep means every lane is here in the same batch step: the
        // barrier is already satisfied, no suspend/resume needed.
        if (!grp.kernel.uses_barrier) {
          return Trap(grp, b.pc, "barrier in kernel not marked uses_barrier");
        }
        break;
    }
  }
}

}  // namespace

BatchPlan BuildBatchPlan(const Module& module, const LaunchOptions& options) {
  BatchPlan plan;
  if (!options.enable_trace_fusion) return plan;
  const auto& code = module.code;
  const auto& literals = module.literals;

  // A fused superop must be straight-line: no jump may land strictly inside
  // it. Collect every possible entry point.
  std::vector<bool> is_target(code.size() + 1, false);
  for (const auto& fn : module.functions) {
    if (fn.entry_pc < is_target.size()) is_target[fn.entry_pc] = true;
  }
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Instruction& in = code[i];
    switch (in.op) {
      case Opcode::kJump:
      case Opcode::kJumpIfFalse:
      case Opcode::kJumpIfTrue:
        if (in.a >= 0 && static_cast<std::size_t>(in.a) < is_target.size()) {
          is_target[in.a] = true;
        }
        break;
      case Opcode::kCall:
        is_target[i + 1] = true;  // Return address.
        break;
      default:
        break;
    }
  }

  plan.fused_at.assign(code.size(), -1);
  auto straight = [&](std::size_t p, std::uint32_t len) {
    if (p + len > code.size()) return false;
    for (std::uint32_t u = 1; u < len; ++u) {
      if (is_target[p + u]) return false;
    }
    return true;
  };

  // Indexed load fed entirely from locals: either
  //   [load base][load s1][load s2][mul i32][load s3][add i32]
  //   [convert i32->i64][ptradd][loadmem]            (the a[row*n+k] shape)
  // or the single-index form
  //   [load base][load s1][convert ->i64][ptradd][loadmem].
  auto match_indexed_load = [&](std::size_t p, IndexedLoad* out) {
    if (straight(p, 9) && code[p].op == Opcode::kLoadLocal &&
        code[p + 1].op == Opcode::kLoadLocal &&
        code[p + 2].op == Opcode::kLoadLocal &&
        code[p + 3].op == Opcode::kMul &&
        code[p + 3].type == ScalarType::kI32 &&
        code[p + 4].op == Opcode::kLoadLocal &&
        code[p + 5].op == Opcode::kAdd &&
        code[p + 5].type == ScalarType::kI32 &&
        code[p + 6].op == Opcode::kConvert &&
        code[p + 6].type == ScalarType::kI32 &&
        static_cast<ScalarType>(code[p + 6].a) == ScalarType::kI64 &&
        code[p + 7].op == Opcode::kPtrAdd &&
        code[p + 8].op == Opcode::kLoadMem) {
      out->base = code[p].a;
      out->s1 = code[p + 1].a;
      out->s2 = code[p + 2].a;
      out->s3 = code[p + 4].a;
      out->idx = ScalarType::kI32;
      out->esize = code[p + 7].a;
      out->elem = code[p + 8].type;
      out->length = 9;
      // s1*s2+s3 is affine in the lane id iff the product has at most one
      // lane-affine factor (the other uniform) and the addend is affine.
      const std::uint8_t f1 = code[p + 1].flags;
      const std::uint8_t f2 = code[p + 2].flags;
      const std::uint8_t f3 = code[p + 4].flags;
      const bool prod_affine =
          ((f1 & kInstrFlagLaneAffine) != 0 &&
           (f2 & kInstrFlagLaneUniform) != 0) ||
          ((f1 & kInstrFlagLaneUniform) != 0 &&
           (f2 & kInstrFlagLaneAffine) != 0);
      out->affine = prod_affine && (f3 & kInstrFlagLaneAffine) != 0;
      out->base_uniform = (code[p].flags & kInstrFlagLaneUniform) != 0;
      return true;
    }
    if (straight(p, 5) && code[p].op == Opcode::kLoadLocal &&
        code[p + 1].op == Opcode::kLoadLocal &&
        code[p + 2].op == Opcode::kConvert &&
        static_cast<ScalarType>(code[p + 2].a) == ScalarType::kI64 &&
        code[p + 3].op == Opcode::kPtrAdd &&
        code[p + 4].op == Opcode::kLoadMem) {
      out->base = code[p].a;
      out->s1 = code[p + 1].a;
      out->s2 = -1;
      out->s3 = -1;
      out->idx = code[p + 2].type;
      out->esize = code[p + 3].a;
      out->elem = code[p + 4].type;
      out->length = 5;
      out->affine = (code[p + 1].flags & kInstrFlagLaneAffine) != 0;
      out->base_uniform = (code[p].flags & kInstrFlagLaneUniform) != 0;
      return true;
    }
    return false;
  };

  std::size_t i = 0;
  while (i < code.size()) {
    FusedOp op;
    bool matched = false;

    // The full MAC body — locals[acc] += A-load * B-load — in one superop
    // (up to 24 instructions: matmul's `acc += a[row*n+k] * b[k*n+col]`).
    if (code[i].op == Opcode::kLoadLocal &&
        match_indexed_load(i + 1, &op.ld[0]) &&
        match_indexed_load(i + 1 + op.ld[0].length, &op.ld[1])) {
      const std::size_t j = i + 1 + op.ld[0].length + op.ld[1].length;
      const std::uint32_t total =
          1 + op.ld[0].length + op.ld[1].length + 3;
      if (straight(i, total) && j + 2 < code.size() &&
          code[j].op == Opcode::kMul && code[j + 1].op == Opcode::kAdd &&
          code[j + 1].type == code[j].type &&
          code[j + 2].op == Opcode::kStoreLocal &&
          code[j + 2].a == code[i].a) {
        op.kind = FusedOp::Kind::kMacLocal;
        op.type = code[j].type;
        op.a = code[i].a;
        op.length = total;
        matched = true;
      }
    }
    // A lone indexed load (array subscript straight from locals).
    if (!matched && match_indexed_load(i, &op.ld[0])) {
      op.kind = FusedOp::Kind::kIndexedLoad;
      op.length = op.ld[0].length;
      matched = true;
    }

    // locals[s] = locals[s] +/- const  (loop counter steps; length 5 with
    // an intervening convert, 4 without).
    if (!matched && straight(i, 5) && code[i].op == Opcode::kLoadLocal &&
        code[i + 1].op == Opcode::kPushConst &&
        code[i + 2].op == Opcode::kConvert &&
        code[i + 2].type == code[i + 1].type &&
        (code[i + 3].op == Opcode::kAdd || code[i + 3].op == Opcode::kSub) &&
        code[i + 3].type == static_cast<ScalarType>(code[i + 2].a) &&
        code[i + 4].op == Opcode::kStoreLocal &&
        code[i + 4].a == code[i].a) {
      op.kind = FusedOp::Kind::kLocalAddConst;
      op.op = code[i + 3].op;
      op.type = code[i + 3].type;
      op.a = code[i].a;
      op.constant = ConvertValue(literals[code[i + 1].a], code[i + 2].type,
                                 op.type);
      op.length = 5;
      matched = true;
    }
    if (!matched && straight(i, 4) && code[i].op == Opcode::kLoadLocal &&
        code[i + 1].op == Opcode::kPushConst &&
        (code[i + 2].op == Opcode::kAdd || code[i + 2].op == Opcode::kSub) &&
        code[i + 2].type == code[i + 1].type &&
        code[i + 3].op == Opcode::kStoreLocal &&
        code[i + 3].a == code[i].a) {
      op.kind = FusedOp::Kind::kLocalAddConst;
      op.op = code[i + 2].op;
      op.type = code[i + 2].type;
      op.a = code[i].a;
      op.constant = literals[code[i + 1].a];
      op.length = 4;
      matched = true;
    }
    // locals[a] <cmp> locals[b]  (loop conditions: k < n).
    if (!matched && straight(i, 3) && code[i].op == Opcode::kLoadLocal &&
        code[i + 1].op == Opcode::kLoadLocal &&
        code[i + 2].op >= Opcode::kEq && code[i + 2].op <= Opcode::kGe) {
      op.kind = FusedOp::Kind::kCompareLocals;
      op.op = code[i + 2].op;
      op.type = code[i + 2].type;
      op.a = code[i].a;
      op.b = code[i + 1].a;
      op.length = 3;
      matched = true;
    }
    // load(ptr + convert(idx) * esize)  (array subscript reads).
    if (!matched && straight(i, 3) && code[i].op == Opcode::kConvert &&
        static_cast<ScalarType>(code[i].a) == ScalarType::kI64 &&
        code[i + 1].op == Opcode::kPtrAdd &&
        code[i + 2].op == Opcode::kLoadMem) {
      op.kind = FusedOp::Kind::kConvertPtrAddLoad;
      op.idx_type = code[i].type;
      op.a = code[i + 1].a;
      op.type = code[i + 2].type;
      op.length = 3;
      matched = true;
    }
    // acc, x, y -> acc + x*y  (MAC pairs).
    if (!matched && straight(i, 2) && code[i].op == Opcode::kMul &&
        code[i + 1].op == Opcode::kAdd &&
        code[i + 1].type == code[i].type) {
      op.kind = FusedOp::Kind::kMulAdd;
      op.type = code[i].type;
      op.length = 2;
      matched = true;
    }
    if (!matched && straight(i, 2) && code[i].op == Opcode::kPtrAdd &&
        code[i + 1].op == Opcode::kLoadMem) {
      op.kind = FusedOp::Kind::kPtrAddLoad;
      op.a = code[i].a;
      op.type = code[i + 1].type;
      op.length = 2;
      matched = true;
    }
    if (!matched && straight(i, 2) && code[i].op == Opcode::kLoadLocal &&
        code[i + 1].op == Opcode::kLoadLocal) {
      op.kind = FusedOp::Kind::kLoadLocalPair;
      op.a = code[i].a;
      op.b = code[i + 1].a;
      op.length = 2;
      matched = true;
    }

    if (matched) {
      plan.fused_at[i] = static_cast<std::int32_t>(plan.ops.size());
      plan.ops.push_back(op);
      i += op.length;
    } else {
      ++i;
    }
  }
  return plan;
}

Status RunGroupBatched(GroupContext& grp, const BatchPlan& plan,
                       BatchGroupStats& stats) {
  const auto& local = grp.range.local;
  const auto group_size =
      static_cast<std::uint32_t>(local[0] * local[1] * local[2]);
  auto local_mem = MakeLocalMem(grp.kernel, grp.args);
  grp.local_mem = &local_mem;
  LaneBatch b;
  InitBatch(b, grp, group_size);
  return RunBatch(b, grp, plan, stats);
}

}  // namespace haocl::oclc::vmdetail
