// Recursive-descent parser producing the AST. Grammar is the intersection
// of OpenCL C and what the paper's benchmark kernels need: functions,
// scalar/pointer declarations with address-space qualifiers, the full C
// expression grammar (without comma operator and unary * / &), and the
// usual control-flow statements.
#pragma once

#include <memory>

#include "common/status.h"
#include "oclc/ast.h"

namespace haocl::oclc {

Expected<std::unique_ptr<TranslationUnit>> Parse(std::string_view source);

}  // namespace haocl::oclc
