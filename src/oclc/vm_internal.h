// Shared machinery between the two VM engines (vm.cc's per-work-item
// interpreter and vm_batch.cc's lane-batch engine): the canonical Value
// representation, arithmetic/compare/convert semantics, the per-item
// machine state, pointer resolution, and the builtin evaluators.
//
// Everything here defines the VM's observable semantics ONCE so the two
// engines cannot drift: the batched engine's bit-identity guarantee rests
// on both engines funnelling through these helpers. Internal header — not
// part of the oclc public API.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "oclc/builtins.h"
#include "oclc/bytecode.h"
#include "oclc/codegen.h"
#include "oclc/vm.h"

namespace haocl::oclc::vmdetail {

// ----------------------------------------------------------- Value plumbing

// Canonical slot representation: signed ints sign-extended into .i,
// unsigned zero-extended into .u, floats widened into .f (every float is
// exactly representable as double), bool as 0/1 in .i.

inline Value LoadScalar(const std::uint8_t* src, ScalarType t) {
  Value v;
  v.u = 0;
  switch (t) {
    case ScalarType::kBool: {
      std::uint8_t raw;
      std::memcpy(&raw, src, 1);
      v.i = raw != 0 ? 1 : 0;
      break;
    }
    case ScalarType::kI8: {
      std::int8_t raw;
      std::memcpy(&raw, src, 1);
      v.i = raw;
      break;
    }
    case ScalarType::kU8: {
      std::uint8_t raw;
      std::memcpy(&raw, src, 1);
      v.u = raw;
      break;
    }
    case ScalarType::kI16: {
      std::int16_t raw;
      std::memcpy(&raw, src, 2);
      v.i = raw;
      break;
    }
    case ScalarType::kU16: {
      std::uint16_t raw;
      std::memcpy(&raw, src, 2);
      v.u = raw;
      break;
    }
    case ScalarType::kI32: {
      std::int32_t raw;
      std::memcpy(&raw, src, 4);
      v.i = raw;
      break;
    }
    case ScalarType::kU32: {
      std::uint32_t raw;
      std::memcpy(&raw, src, 4);
      v.u = raw;
      break;
    }
    case ScalarType::kI64:
      std::memcpy(&v.i, src, 8);
      break;
    case ScalarType::kU64:
      std::memcpy(&v.u, src, 8);
      break;
    case ScalarType::kF32: {
      float raw;
      std::memcpy(&raw, src, 4);
      v.f = raw;
      break;
    }
    case ScalarType::kF64:
      std::memcpy(&v.f, src, 8);
      break;
    case ScalarType::kVoid:
      break;
  }
  return v;
}

inline void StoreScalar(std::uint8_t* dst, ScalarType t, Value v) {
  switch (t) {
    case ScalarType::kBool: {
      std::uint8_t raw = v.i != 0 ? 1 : 0;
      std::memcpy(dst, &raw, 1);
      break;
    }
    case ScalarType::kI8: {
      auto raw = static_cast<std::int8_t>(v.i);
      std::memcpy(dst, &raw, 1);
      break;
    }
    case ScalarType::kU8: {
      auto raw = static_cast<std::uint8_t>(v.u);
      std::memcpy(dst, &raw, 1);
      break;
    }
    case ScalarType::kI16: {
      auto raw = static_cast<std::int16_t>(v.i);
      std::memcpy(dst, &raw, 2);
      break;
    }
    case ScalarType::kU16: {
      auto raw = static_cast<std::uint16_t>(v.u);
      std::memcpy(dst, &raw, 2);
      break;
    }
    case ScalarType::kI32: {
      auto raw = static_cast<std::int32_t>(v.i);
      std::memcpy(dst, &raw, 4);
      break;
    }
    case ScalarType::kU32: {
      auto raw = static_cast<std::uint32_t>(v.u);
      std::memcpy(dst, &raw, 4);
      break;
    }
    case ScalarType::kI64:
      std::memcpy(dst, &v.i, 8);
      break;
    case ScalarType::kU64:
      std::memcpy(dst, &v.u, 8);
      break;
    case ScalarType::kF32: {
      auto raw = static_cast<float>(v.f);
      std::memcpy(dst, &raw, 4);
      break;
    }
    case ScalarType::kF64:
      std::memcpy(dst, &v.f, 8);
      break;
    case ScalarType::kVoid:
      break;
  }
}

// Value-preserving conversion between canonical representations.
inline Value ConvertValue(Value v, ScalarType from, ScalarType to) {
  if (from == to) return v;
  // Widen source to one of {i64, u64, f64}.
  double as_f = 0.0;
  std::int64_t as_i = 0;
  std::uint64_t as_u = 0;
  enum class Cat { kSigned, kUnsigned, kFloat } cat;
  if (IsFloat(from)) {
    as_f = v.f;
    cat = Cat::kFloat;
  } else if (IsUnsignedInt(from)) {
    as_u = v.u;
    cat = Cat::kUnsigned;
  } else {  // signed ints and bool
    as_i = v.i;
    cat = Cat::kSigned;
  }

  Value out;
  out.u = 0;
  auto to_signed = [&](std::int64_t x) {
    switch (to) {
      case ScalarType::kBool: out.i = x != 0; break;
      case ScalarType::kI8: out.i = static_cast<std::int8_t>(x); break;
      case ScalarType::kI16: out.i = static_cast<std::int16_t>(x); break;
      case ScalarType::kI32: out.i = static_cast<std::int32_t>(x); break;
      default: out.i = x; break;
    }
  };
  auto to_unsigned = [&](std::uint64_t x) {
    switch (to) {
      case ScalarType::kBool: out.i = x != 0; break;
      case ScalarType::kU8: out.u = static_cast<std::uint8_t>(x); break;
      case ScalarType::kU16: out.u = static_cast<std::uint16_t>(x); break;
      case ScalarType::kU32: out.u = static_cast<std::uint32_t>(x); break;
      default: out.u = x; break;
    }
  };

  switch (to) {
    case ScalarType::kF32: {
      double wide = cat == Cat::kFloat  ? as_f
                    : cat == Cat::kSigned ? static_cast<double>(as_i)
                                          : static_cast<double>(as_u);
      out.f = static_cast<float>(wide);
      return out;
    }
    case ScalarType::kF64: {
      out.f = cat == Cat::kFloat  ? as_f
              : cat == Cat::kSigned ? static_cast<double>(as_i)
                                    : static_cast<double>(as_u);
      return out;
    }
    case ScalarType::kBool:
      out.i = cat == Cat::kFloat ? (as_f != 0.0)
              : cat == Cat::kSigned ? (as_i != 0)
                                    : (as_u != 0);
      return out;
    default:
      break;
  }
  // Integer target.
  std::int64_t wide_i;
  if (cat == Cat::kFloat) {
    wide_i = static_cast<std::int64_t>(as_f);
  } else if (cat == Cat::kUnsigned) {
    wide_i = static_cast<std::int64_t>(as_u);
  } else {
    wide_i = as_i;
  }
  if (IsSignedInt(to)) {
    to_signed(wide_i);
  } else {
    to_unsigned(static_cast<std::uint64_t>(wide_i));
  }
  return out;
}

// --------------------------------------------------------------- Arithmetic

inline Status TrapDivZero() {
  return Status(ErrorCode::kInvalidKernelArgs, "division by zero in kernel");
}

// Executes binary arithmetic/bitwise in the canonical representation with
// C-style wrapping (no UB on overflow).
inline Status EvalBinary(Opcode op, ScalarType t, Value a, Value b,
                         Value* out) {
  out->u = 0;
  if (t == ScalarType::kF32) {
    const float x = static_cast<float>(a.f);
    const float y = static_cast<float>(b.f);
    float r = 0.0f;
    switch (op) {
      case Opcode::kAdd: r = x + y; break;
      case Opcode::kSub: r = x - y; break;
      case Opcode::kMul: r = x * y; break;
      case Opcode::kDiv: r = x / y; break;
      default:
        return Status(ErrorCode::kInternal, "bad f32 op");
    }
    out->f = r;
    return Status::Ok();
  }
  if (t == ScalarType::kF64) {
    switch (op) {
      case Opcode::kAdd: out->f = a.f + b.f; break;
      case Opcode::kSub: out->f = a.f - b.f; break;
      case Opcode::kMul: out->f = a.f * b.f; break;
      case Opcode::kDiv: out->f = a.f / b.f; break;
      default:
        return Status(ErrorCode::kInternal, "bad f64 op");
    }
    return Status::Ok();
  }

  const bool is_unsigned = IsUnsignedInt(t);
  const bool is_64 = ScalarSize(t) == 8;
  if (is_unsigned) {
    std::uint64_t x = a.u;
    std::uint64_t y = b.u;
    if (!is_64) {
      x = static_cast<std::uint32_t>(x);
      y = static_cast<std::uint32_t>(y);
    }
    std::uint64_t r = 0;
    switch (op) {
      case Opcode::kAdd: r = x + y; break;
      case Opcode::kSub: r = x - y; break;
      case Opcode::kMul: r = x * y; break;
      case Opcode::kDiv:
        if (y == 0) return TrapDivZero();
        r = x / y;
        break;
      case Opcode::kMod:
        if (y == 0) return TrapDivZero();
        r = x % y;
        break;
      case Opcode::kBitAnd: r = x & y; break;
      case Opcode::kBitOr: r = x | y; break;
      case Opcode::kBitXor: r = x ^ y; break;
      case Opcode::kShl: r = x << (y & (is_64 ? 63 : 31)); break;
      case Opcode::kShr: r = x >> (y & (is_64 ? 63 : 31)); break;
      default:
        return Status(ErrorCode::kInternal, "bad uint op");
    }
    out->u = is_64 ? r : static_cast<std::uint32_t>(r);
    return Status::Ok();
  }

  // Signed (and bool, promoted upstream): compute in unsigned to get
  // well-defined wrapping, then sign-extend.
  std::int64_t x = a.i;
  std::int64_t y = b.i;
  if (!is_64) {
    x = static_cast<std::int32_t>(x);
    y = static_cast<std::int32_t>(y);
  }
  std::int64_t r = 0;
  switch (op) {
    case Opcode::kAdd:
      r = static_cast<std::int64_t>(static_cast<std::uint64_t>(x) +
                                    static_cast<std::uint64_t>(y));
      break;
    case Opcode::kSub:
      r = static_cast<std::int64_t>(static_cast<std::uint64_t>(x) -
                                    static_cast<std::uint64_t>(y));
      break;
    case Opcode::kMul:
      r = static_cast<std::int64_t>(static_cast<std::uint64_t>(x) *
                                    static_cast<std::uint64_t>(y));
      break;
    case Opcode::kDiv:
      if (y == 0) return TrapDivZero();
      if (y == -1 && x == INT64_MIN) return TrapDivZero();  // Overflow trap.
      r = x / y;
      break;
    case Opcode::kMod:
      if (y == 0) return TrapDivZero();
      if (y == -1) {
        r = 0;
      } else {
        r = x % y;
      }
      break;
    case Opcode::kBitAnd: r = x & y; break;
    case Opcode::kBitOr: r = x | y; break;
    case Opcode::kBitXor: r = x ^ y; break;
    case Opcode::kShl:
      r = static_cast<std::int64_t>(static_cast<std::uint64_t>(x)
                                    << (y & (is_64 ? 63 : 31)));
      break;
    case Opcode::kShr: r = x >> (y & (is_64 ? 63 : 31)); break;
    default:
      return Status(ErrorCode::kInternal, "bad int op");
  }
  out->i = is_64 ? r : static_cast<std::int32_t>(r);
  return Status::Ok();
}

inline bool EvalCompare(Opcode op, ScalarType t, Value a, Value b) {
  auto cmp = [&](auto x, auto y) {
    switch (op) {
      case Opcode::kEq: return x == y;
      case Opcode::kNe: return x != y;
      case Opcode::kLt: return x < y;
      case Opcode::kLe: return x <= y;
      case Opcode::kGt: return x > y;
      case Opcode::kGe: return x >= y;
      default: return false;
    }
  };
  if (t == ScalarType::kF32) {
    return cmp(static_cast<float>(a.f), static_cast<float>(b.f));
  }
  if (t == ScalarType::kF64) return cmp(a.f, b.f);
  if (IsUnsignedInt(t)) {
    if (ScalarSize(t) == 8) return cmp(a.u, b.u);
    return cmp(static_cast<std::uint32_t>(a.u),
               static_cast<std::uint32_t>(b.u));
  }
  if (ScalarSize(t) == 8) return cmp(a.i, b.i);
  return cmp(static_cast<std::int32_t>(a.i), static_cast<std::int32_t>(b.i));
}

// ------------------------------------------------------------- Machine state

struct Frame {
  std::uint32_t return_pc;
  std::uint32_t prev_base;
};

struct ItemState {
  std::uint32_t pc = 0;
  std::uint32_t base = 0;  // Current frame's locals base.
  std::vector<Value> stack;
  std::vector<Value> locals;
  std::vector<Frame> frames;
  std::vector<std::vector<std::uint8_t>> private_mem;  // By region id.
  std::uint64_t global_id[3] = {0, 0, 0};
  std::uint64_t local_id[3] = {0, 0, 0};
  std::uint64_t budget = 0;
  bool done = false;
};

struct GroupContext {
  const Module& module;
  const CompiledFunction& kernel;
  const std::vector<ArgBinding>& args;
  const NDRange& range;
  const LaunchOptions& options;
  std::uint64_t group_id[3] = {0, 0, 0};
  std::uint64_t num_groups[3] = {1, 1, 1};
  std::vector<std::vector<std::uint8_t>>* local_mem = nullptr;  // By region.
};

inline Status Trap(const GroupContext& grp, std::uint32_t pc,
                   const std::string& what) {
  return Status(ErrorCode::kInvalidKernelArgs,
                "kernel '" + grp.kernel.name + "' trap at pc " +
                    std::to_string(pc) + ": " + what);
}

inline Status OobError(const GroupContext& grp, const char* space,
                       std::uint64_t offset, std::uint64_t bytes,
                       std::uint64_t size) {
  return Status(ErrorCode::kInvalidKernelArgs,
                "kernel '" + grp.kernel.name + "': out-of-bounds " +
                    std::string(space) + " access: offset " +
                    std::to_string(offset) + " + " + std::to_string(bytes) +
                    " > size " + std::to_string(size));
}

// Resolves an encoded pointer to raw memory, bounds-checked.
inline Expected<std::uint8_t*> ResolvePtr(std::uint64_t ptr,
                                          std::uint64_t bytes, ItemState& st,
                                          GroupContext& grp) {
  const std::uint64_t region = PointerRegion(ptr);
  const std::uint64_t offset = PointerOffset(ptr);
  switch (PointerSpace(ptr)) {
    case PtrSpace::kGlobal: {
      if (region >= grp.args.size() ||
          grp.args[region].kind != ArgBinding::Kind::kBuffer) {
        return Status(ErrorCode::kInvalidKernelArgs,
                      "dangling global pointer (region " +
                          std::to_string(region) + ")");
      }
      const ArgBinding& binding = grp.args[region];
      if (offset + bytes > binding.size) {
        return OobError(grp, "global", offset, bytes, binding.size);
      }
      return binding.data + offset;
    }
    case PtrSpace::kLocal: {
      auto& mem = *grp.local_mem;
      if (region >= mem.size()) {
        return Status(ErrorCode::kInvalidKernelArgs, "bad local region");
      }
      if (offset + bytes > mem[region].size()) {
        return OobError(grp, "local", offset, bytes, mem[region].size());
      }
      return mem[region].data() + offset;
    }
    case PtrSpace::kPrivate: {
      if (region >= st.private_mem.size()) {
        return Status(ErrorCode::kInvalidKernelArgs, "bad private region");
      }
      if (offset + bytes > st.private_mem[region].size()) {
        return OobError(grp, "private", offset, bytes,
                        st.private_mem[region].size());
      }
      return st.private_mem[region].data() + offset;
    }
  }
  return Status(ErrorCode::kInternal, "bad pointer space");
}

// ----------------------------------------------------------------- Builtins

inline double MathUnary(BuiltinId id, double x) {
  switch (id) {
    case BuiltinId::kSqrt:
    case BuiltinId::kNativeSqrt: return std::sqrt(x);
    case BuiltinId::kRsqrt: return 1.0 / std::sqrt(x);
    case BuiltinId::kFabs: return std::fabs(x);
    case BuiltinId::kExp:
    case BuiltinId::kNativeExp: return std::exp(x);
    case BuiltinId::kLog:
    case BuiltinId::kNativeLog: return std::log(x);
    case BuiltinId::kLog2: return std::log2(x);
    case BuiltinId::kSin: return std::sin(x);
    case BuiltinId::kCos: return std::cos(x);
    case BuiltinId::kTan: return std::tan(x);
    case BuiltinId::kFloor: return std::floor(x);
    case BuiltinId::kCeil: return std::ceil(x);
    default: return 0.0;
  }
}

inline float MathUnaryF(BuiltinId id, float x) {
  switch (id) {
    case BuiltinId::kSqrt:
    case BuiltinId::kNativeSqrt: return std::sqrt(x);
    case BuiltinId::kRsqrt: return 1.0f / std::sqrt(x);
    case BuiltinId::kFabs: return std::fabs(x);
    case BuiltinId::kExp:
    case BuiltinId::kNativeExp: return std::exp(x);
    case BuiltinId::kLog:
    case BuiltinId::kNativeLog: return std::log(x);
    case BuiltinId::kLog2: return std::log2(x);
    case BuiltinId::kSin: return std::sin(x);
    case BuiltinId::kCos: return std::cos(x);
    case BuiltinId::kTan: return std::tan(x);
    case BuiltinId::kFloor: return std::floor(x);
    case BuiltinId::kCeil: return std::ceil(x);
    default: return 0.0f;
  }
}

inline bool IsAtomicBuiltin(BuiltinId id) {
  return id >= BuiltinId::kAtomicAdd && id <= BuiltinId::kAtomicCmpxchg;
}

inline bool IsWorkItemBuiltin(BuiltinId id) {
  return id >= BuiltinId::kGetGlobalId && id <= BuiltinId::kGetWorkDim;
}

// Atomics on already-resolved memory (the caller bounds-checks the 4-byte
// access for its own address space). Shared by both engines so the RMW
// sequences are identical.
inline Value EvalAtomicAt(BuiltinId id, ScalarType t, std::uint8_t* mem,
                          const Value* args, int argc) {
  Value old;
  old.u = 0;
  // i32/u32 share representation for the atomic RMW itself; the sign only
  // matters for min/max.
  auto* p = reinterpret_cast<std::int32_t*>(mem);
  auto* pu = reinterpret_cast<std::uint32_t*>(mem);
  const auto vi = static_cast<std::int32_t>(args[argc > 1 ? 1 : 0].i);
  const auto vu = static_cast<std::uint32_t>(args[argc > 1 ? 1 : 0].u);
  const bool is_signed = t == ScalarType::kI32;
  switch (id) {
    case BuiltinId::kAtomicAdd:
      old.i = __atomic_fetch_add(p, vi, __ATOMIC_RELAXED);
      break;
    case BuiltinId::kAtomicSub:
      old.i = __atomic_fetch_sub(p, vi, __ATOMIC_RELAXED);
      break;
    case BuiltinId::kAtomicInc:
      old.i = __atomic_fetch_add(p, 1, __ATOMIC_RELAXED);
      break;
    case BuiltinId::kAtomicDec:
      old.i = __atomic_fetch_sub(p, 1, __ATOMIC_RELAXED);
      break;
    case BuiltinId::kAtomicOr:
      old.i = __atomic_fetch_or(p, vi, __ATOMIC_RELAXED);
      break;
    case BuiltinId::kAtomicAnd:
      old.i = __atomic_fetch_and(p, vi, __ATOMIC_RELAXED);
      break;
    case BuiltinId::kAtomicXchg:
      old.i = __atomic_exchange_n(p, vi, __ATOMIC_RELAXED);
      break;
    case BuiltinId::kAtomicMin: {
      if (is_signed) {
        std::int32_t cur = __atomic_load_n(p, __ATOMIC_RELAXED);
        while (vi < cur && !__atomic_compare_exchange_n(
                               p, &cur, vi, true, __ATOMIC_RELAXED,
                               __ATOMIC_RELAXED)) {
        }
        old.i = cur;
      } else {
        std::uint32_t cur = __atomic_load_n(pu, __ATOMIC_RELAXED);
        while (vu < cur && !__atomic_compare_exchange_n(
                               pu, &cur, vu, true, __ATOMIC_RELAXED,
                               __ATOMIC_RELAXED)) {
        }
        old.u = cur;
      }
      break;
    }
    case BuiltinId::kAtomicMax: {
      if (is_signed) {
        std::int32_t cur = __atomic_load_n(p, __ATOMIC_RELAXED);
        while (vi > cur && !__atomic_compare_exchange_n(
                               p, &cur, vi, true, __ATOMIC_RELAXED,
                               __ATOMIC_RELAXED)) {
        }
        old.i = cur;
      } else {
        std::uint32_t cur = __atomic_load_n(pu, __ATOMIC_RELAXED);
        while (vu > cur && !__atomic_compare_exchange_n(
                               pu, &cur, vu, true, __ATOMIC_RELAXED,
                               __ATOMIC_RELAXED)) {
        }
        old.u = cur;
      }
      break;
    }
    case BuiltinId::kAtomicCmpxchg: {
      std::int32_t expected = static_cast<std::int32_t>(args[1].i);
      const std::int32_t desired = static_cast<std::int32_t>(args[2].i);
      __atomic_compare_exchange_n(p, &expected, desired, false,
                                  __ATOMIC_RELAXED, __ATOMIC_RELAXED);
      old.i = expected;
      break;
    }
    default:
      break;  // Unreachable: callers gate on IsAtomicBuiltin.
  }
  // Canonicalize sign extension.
  if (is_signed) {
    old.i = static_cast<std::int32_t>(old.i);
  } else {
    old.u = static_cast<std::uint32_t>(old.u);
  }
  return old;
}

// Work-item queries against explicit id arrays (so the batch engine can
// pass a lane's ids without an ItemState).
inline Value EvalWorkItemBuiltin(BuiltinId id, const std::uint64_t* global_id,
                                 const std::uint64_t* local_id,
                                 const GroupContext& grp, const Value* args) {
  Value out;
  out.u = 0;
  if (id == BuiltinId::kGetWorkDim) {
    out.u = grp.range.work_dim;
    return out;
  }
  const auto dim = static_cast<std::uint32_t>(args[0].u);
  if (dim >= 3) {
    out.u = id == BuiltinId::kGetGlobalSize || id == BuiltinId::kGetLocalSize ||
                    id == BuiltinId::kGetNumGroups
                ? 1
                : 0;
    return out;
  }
  switch (id) {
    case BuiltinId::kGetGlobalId: out.u = global_id[dim]; break;
    case BuiltinId::kGetLocalId: out.u = local_id[dim]; break;
    case BuiltinId::kGetGroupId: out.u = grp.group_id[dim]; break;
    case BuiltinId::kGetGlobalSize: out.u = grp.range.global[dim]; break;
    case BuiltinId::kGetLocalSize: out.u = grp.range.local[dim]; break;
    case BuiltinId::kGetNumGroups: out.u = grp.num_groups[dim]; break;
    case BuiltinId::kGetGlobalOffset: out.u = grp.range.offset[dim]; break;
    default: break;
  }
  return out;
}

// Math / min-max / clamp builtins: pure functions of their arguments.
inline Value EvalPureBuiltin(BuiltinId id, ScalarType result,
                             const Value* args) {
  Value out;
  out.u = 0;
  switch (id) {
    case BuiltinId::kMin:
    case BuiltinId::kMax: {
      const bool want_max = id == BuiltinId::kMax;
      if (result == ScalarType::kF32) {
        float x = static_cast<float>(args[0].f);
        float y = static_cast<float>(args[1].f);
        out.f = want_max ? std::fmax(x, y) : std::fmin(x, y);
      } else if (result == ScalarType::kF64) {
        out.f = want_max ? std::fmax(args[0].f, args[1].f)
                         : std::fmin(args[0].f, args[1].f);
      } else if (IsUnsignedInt(result)) {
        out.u = want_max ? std::max(args[0].u, args[1].u)
                         : std::min(args[0].u, args[1].u);
      } else {
        out.i = want_max ? std::max(args[0].i, args[1].i)
                         : std::min(args[0].i, args[1].i);
      }
      return out;
    }
    case BuiltinId::kAbs:
      if (result == ScalarType::kF32 || result == ScalarType::kF64) {
        out.f = std::fabs(args[0].f);
      } else if (IsUnsignedInt(result)) {
        out.u = args[0].u;
      } else {
        out.i = args[0].i < 0 ? -args[0].i : args[0].i;
      }
      return out;
    case BuiltinId::kClamp:
      if (result == ScalarType::kF32) {
        float x = static_cast<float>(args[0].f);
        float lo = static_cast<float>(args[1].f);
        float hi = static_cast<float>(args[2].f);
        out.f = std::fmin(std::fmax(x, lo), hi);
      } else if (result == ScalarType::kF64) {
        out.f = std::fmin(std::fmax(args[0].f, args[1].f), args[2].f);
      } else if (IsUnsignedInt(result)) {
        out.u = std::min(std::max(args[0].u, args[1].u), args[2].u);
      } else {
        out.i = std::min(std::max(args[0].i, args[1].i), args[2].i);
      }
      return out;
    case BuiltinId::kPow:
      out.f = result == ScalarType::kF32
                  ? static_cast<double>(std::pow(static_cast<float>(args[0].f),
                                                 static_cast<float>(args[1].f)))
                  : std::pow(args[0].f, args[1].f);
      return out;
    case BuiltinId::kFmod:
      out.f = result == ScalarType::kF32
                  ? static_cast<double>(std::fmod(
                        static_cast<float>(args[0].f),
                        static_cast<float>(args[1].f)))
                  : std::fmod(args[0].f, args[1].f);
      return out;
    case BuiltinId::kFmin:
      out.f = result == ScalarType::kF32
                  ? static_cast<double>(std::fmin(
                        static_cast<float>(args[0].f),
                        static_cast<float>(args[1].f)))
                  : std::fmin(args[0].f, args[1].f);
      return out;
    case BuiltinId::kFmax:
      out.f = result == ScalarType::kF32
                  ? static_cast<double>(std::fmax(
                        static_cast<float>(args[0].f),
                        static_cast<float>(args[1].f)))
                  : std::fmax(args[0].f, args[1].f);
      return out;
    case BuiltinId::kMad:
    case BuiltinId::kFma:
      if (result == ScalarType::kF32) {
        out.f = std::fma(static_cast<float>(args[0].f),
                         static_cast<float>(args[1].f),
                         static_cast<float>(args[2].f));
      } else {
        out.f = std::fma(args[0].f, args[1].f, args[2].f);
      }
      return out;
    default:
      break;
  }
  // Remaining unary math.
  if (result == ScalarType::kF32) {
    out.f = MathUnaryF(id, static_cast<float>(args[0].f));
  } else {
    out.f = MathUnary(id, args[0].f);
  }
  return out;
}

inline Expected<Value> EvalBuiltinCall(BuiltinId id, ScalarType result,
                                       Value* args, int argc, ItemState& st,
                                       GroupContext& grp) {
  if (IsWorkItemBuiltin(id)) {
    return EvalWorkItemBuiltin(id, st.global_id, st.local_id, grp, args);
  }
  if (IsAtomicBuiltin(id)) {
    auto mem = ResolvePtr(args[0].u, 4, st, grp);
    if (!mem.ok()) return mem.status();
    return EvalAtomicAt(id, result, *mem, args, argc);
  }
  return EvalPureBuiltin(id, result, args);
}

// ------------------------------------------------------------ Item execution

enum class RunResult { kDone, kBarrier };

inline Expected<RunResult> RunItem(ItemState& st, GroupContext& grp) {
  const auto& code = grp.module.code;
  const auto& literals = grp.module.literals;
  auto& stack = st.stack;

  auto pop = [&stack]() {
    Value v = stack.back();
    stack.pop_back();
    return v;
  };

  while (true) {
    if (st.budget == 0) {
      return Trap(grp, st.pc, "instruction budget exhausted (infinite loop?)");
    }
    --st.budget;
    if (st.pc >= code.size()) return Trap(grp, st.pc, "pc out of range");
    const Instruction& instr = code[st.pc++];

    switch (instr.op) {
      case Opcode::kNop:
        break;
      case Opcode::kPushConst:
        stack.push_back(literals[instr.a]);
        break;
      case Opcode::kLoadLocal:
        stack.push_back(st.locals[st.base + instr.a]);
        break;
      case Opcode::kStoreLocal:
        st.locals[st.base + instr.a] = pop();
        break;
      case Opcode::kDup:
        stack.push_back(stack.back());
        break;
      case Opcode::kPop:
        stack.pop_back();
        break;
      case Opcode::kLoadMem: {
        const Value addr = pop();
        auto mem = ResolvePtr(addr.u, ScalarSize(instr.type), st, grp);
        if (!mem.ok()) return mem.status();
        stack.push_back(LoadScalar(*mem, instr.type));
        break;
      }
      case Opcode::kStoreMem: {
        const Value value = pop();
        const Value addr = pop();
        auto mem = ResolvePtr(addr.u, ScalarSize(instr.type), st, grp);
        if (!mem.ok()) return mem.status();
        StoreScalar(*mem, instr.type, value);
        break;
      }
      case Opcode::kPtrAdd: {
        const Value index = pop();
        Value ptr = pop();
        const std::uint64_t offset =
            PointerOffset(ptr.u) +
            static_cast<std::uint64_t>(index.i) *
                static_cast<std::uint64_t>(instr.a);
        ptr.u = (ptr.u & ~kPtrOffsetMask) | (offset & kPtrOffsetMask);
        stack.push_back(ptr);
        break;
      }
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kMod:
      case Opcode::kBitAnd:
      case Opcode::kBitOr:
      case Opcode::kBitXor:
      case Opcode::kShl:
      case Opcode::kShr: {
        const Value rhs = pop();
        const Value lhs = pop();
        Value out;
        Status s = EvalBinary(instr.op, instr.type, lhs, rhs, &out);
        if (!s.ok()) return s;
        stack.push_back(out);
        break;
      }
      case Opcode::kNeg: {
        Value v = pop();
        if (IsFloat(instr.type)) {
          v.f = instr.type == ScalarType::kF32
                    ? -static_cast<float>(v.f)
                    : -v.f;
        } else if (IsUnsignedInt(instr.type)) {
          v.u = ScalarSize(instr.type) == 8
                    ? 0 - v.u
                    : static_cast<std::uint32_t>(0 - v.u);
        } else {
          v.i = ScalarSize(instr.type) == 8
                    ? -v.i
                    : static_cast<std::int32_t>(-v.i);
        }
        stack.push_back(v);
        break;
      }
      case Opcode::kBitNot: {
        Value v = pop();
        if (IsUnsignedInt(instr.type)) {
          v.u = ScalarSize(instr.type) == 8
                    ? ~v.u
                    : static_cast<std::uint32_t>(~v.u);
        } else {
          v.i = ScalarSize(instr.type) == 8
                    ? ~v.i
                    : static_cast<std::int32_t>(
                          ~static_cast<std::int32_t>(v.i));
        }
        stack.push_back(v);
        break;
      }
      case Opcode::kEq:
      case Opcode::kNe:
      case Opcode::kLt:
      case Opcode::kLe:
      case Opcode::kGt:
      case Opcode::kGe: {
        const Value rhs = pop();
        const Value lhs = pop();
        Value out;
        out.i = EvalCompare(instr.op, instr.type, lhs, rhs) ? 1 : 0;
        stack.push_back(out);
        break;
      }
      case Opcode::kLogicalNot: {
        Value v = pop();
        v.i = v.i == 0 ? 1 : 0;
        stack.push_back(v);
        break;
      }
      case Opcode::kConvert: {
        const Value v = pop();
        stack.push_back(ConvertValue(v, instr.type,
                                     static_cast<ScalarType>(instr.a)));
        break;
      }
      case Opcode::kJump:
        st.pc = static_cast<std::uint32_t>(instr.a);
        break;
      case Opcode::kJumpIfFalse: {
        const Value v = pop();
        if (v.i == 0) st.pc = static_cast<std::uint32_t>(instr.a);
        break;
      }
      case Opcode::kJumpIfTrue: {
        const Value v = pop();
        if (v.i != 0) st.pc = static_cast<std::uint32_t>(instr.a);
        break;
      }
      case Opcode::kCall: {
        const CompiledFunction& callee = grp.module.functions[instr.a];
        if (st.frames.size() >= 256) {
          return Trap(grp, st.pc - 1, "call stack overflow");
        }
        st.frames.push_back(Frame{st.pc, st.base});
        const auto new_base = static_cast<std::uint32_t>(st.locals.size());
        st.locals.resize(new_base + callee.local_slots);
        // Arguments were pushed left-to-right; pop right-to-left.
        for (int i = instr.b - 1; i >= 0; --i) {
          st.locals[new_base + i] = pop();
        }
        st.base = new_base;
        st.pc = callee.entry_pc;
        break;
      }
      case Opcode::kCallBuiltin: {
        Value args[4];
        const int argc = instr.b;
        for (int i = argc - 1; i >= 0; --i) args[i] = pop();
        auto result =
            EvalBuiltinCall(static_cast<BuiltinId>(instr.a), instr.type, args,
                            argc, st, grp);
        if (!result.ok()) return result.status();
        if (instr.type != ScalarType::kVoid) stack.push_back(*result);
        break;
      }
      case Opcode::kReturn: {
        Value ret;
        ret.u = 0;
        const bool has_value = instr.b != 0;
        if (has_value) ret = pop();
        if (st.frames.empty()) {
          st.done = true;
          return RunResult::kDone;
        }
        const Frame frame = st.frames.back();
        st.frames.pop_back();
        st.locals.resize(st.base);
        st.base = frame.prev_base;
        st.pc = frame.return_pc;
        if (has_value) stack.push_back(ret);
        break;
      }
      case Opcode::kBarrier:
        return RunResult::kBarrier;
    }
  }
}

// Sweeps pre-initialized item states to completion with full barrier
// semantics: each pass runs every live item to its next barrier or exit;
// mixed done/at-barrier outcomes are the OpenCL barrier-divergence error.
// Used by the interpreter's barrier path and by the batch engine after a
// divergence bail-out.
inline Status RunStatesToCompletion(std::vector<ItemState>& states,
                                    GroupContext& grp) {
  while (true) {
    std::uint64_t done = 0;
    std::uint64_t at_barrier = 0;
    for (auto& st : states) {
      if (st.done) {
        ++done;
        continue;
      }
      auto result = RunItem(st, grp);
      if (!result.ok()) return result.status();
      if (*result == RunResult::kDone) {
        ++done;
      } else {
        ++at_barrier;
      }
    }
    if (at_barrier == 0) return Status::Ok();
    if (done != 0) {
      return Status(ErrorCode::kInvalidKernelArgs,
                    "kernel '" + grp.kernel.name +
                        "': barrier divergence (some work-items exited while "
                        "others wait at a barrier)");
    }
  }
}

// ----------------------------------------------------------- Group execution

// Builds the per-group local-memory table: slots [0, num_args) for __local
// pointer arguments, then one slot per body-declared array (local entries
// allocated here, private ones per item).
inline std::vector<std::vector<std::uint8_t>> MakeLocalMem(
    const CompiledFunction& kernel, const std::vector<ArgBinding>& args) {
  std::vector<std::vector<std::uint8_t>> mem(kernel.params.size() +
                                             kernel.arrays.size());
  for (std::size_t i = 0; i < kernel.params.size(); ++i) {
    if (kernel.params[i].IsLocalPointer()) {
      mem[i].assign(args[i].local_size, 0);
    }
  }
  for (std::size_t i = 0; i < kernel.arrays.size(); ++i) {
    if (kernel.arrays[i].space == AddressSpace::kLocal) {
      mem[kernel.params.size() + i].assign(kernel.arrays[i].ByteSize(), 0);
    }
  }
  return mem;
}

inline void InitItem(ItemState& st, const CompiledFunction& kernel,
                     const std::vector<ArgBinding>& args, GroupContext& grp,
                     std::uint64_t local_linear) {
  st.pc = kernel.entry_pc;
  st.base = 0;
  st.stack.clear();
  st.frames.clear();
  st.done = false;
  st.budget = grp.options.max_instructions_per_item;
  st.locals.assign(kernel.local_slots, Value{});

  // Decompose the linear local index into 3D ids.
  const auto& local = grp.range.local;
  st.local_id[0] = local_linear % local[0];
  st.local_id[1] = (local_linear / local[0]) % local[1];
  st.local_id[2] = local_linear / (local[0] * local[1]);
  for (int d = 0; d < 3; ++d) {
    st.global_id[d] =
        grp.range.offset[d] + grp.group_id[d] * local[d] + st.local_id[d];
  }

  // Private arrays.
  st.private_mem.assign(kernel.params.size() + kernel.arrays.size(), {});
  for (std::size_t i = 0; i < kernel.arrays.size(); ++i) {
    if (kernel.arrays[i].space == AddressSpace::kPrivate) {
      st.private_mem[kernel.params.size() + i].assign(
          kernel.arrays[i].ByteSize(), 0);
    }
  }

  // Bind parameters into the entry frame's slots.
  for (std::size_t i = 0; i < kernel.params.size(); ++i) {
    const KernelArgInfo& param = kernel.params[i];
    Value v;
    v.u = 0;
    if (param.IsBuffer()) {
      v.u = MakePointer(PtrSpace::kGlobal, i, 0);
    } else if (param.IsLocalPointer()) {
      v.u = MakePointer(PtrSpace::kLocal, i, 0);
    } else {
      v = ConvertValue(args[i].scalar, args[i].scalar_type,
                       param.type.scalar);
    }
    st.locals[i] = v;
  }
}

// ----------------------------------------------------- Batch engine interface

// Per-group counters the batch engine fills (aggregated into VmStats by the
// launch's worker pool).
struct BatchGroupStats {
  std::uint64_t instructions = 0;
  std::uint64_t batch_steps = 0;
  std::uint64_t fused_steps = 0;
  std::uint64_t simd_steps = 0;    // Dispatches that took a vector path.
  std::uint64_t masked_steps = 0;  // Instructions run under a partial mask.
  bool bailed_out = false;
};

// Fusion plan over a module's code array (see vm_batch.cc). Built once per
// launch, shared read-only across the worker pool.
// One indexed global/local/private load taken entirely from locals:
// load(locals[base] + convert(idx)*esize) where idx is either locals[s1]
// (length 5: load, load, convert, ptradd, loadmem) or the i32 expression
// locals[s1]*locals[s2]+locals[s3] (length 9 — the `a[row*n+k]` shape).
struct IndexedLoad {
  std::int32_t base = -1;  // Pointer-holding local slot.
  std::int32_t s1 = -1;
  std::int32_t s2 = -1;    // -1: idx is locals[s1] alone.
  std::int32_t s3 = -1;
  std::int32_t esize = 0;            // kPtrAdd element size.
  ScalarType elem = ScalarType::kVoid;  // Loaded element type.
  ScalarType idx = ScalarType::kVoid;   // Convert source type.
  std::uint32_t length = 0;
  // Codegen proved the index expression affine in the lane id (stride may
  // be 0): the engine may classify the lane offsets as
  // broadcast/contiguous/strided after one whole-chunk range precheck.
  bool affine = false;
  // Codegen proved the base pointer local lane-uniform: the engine may
  // resolve the buffer region from lane 0 with a last-lane spot check
  // instead of scanning every lane.
  bool base_uniform = false;
};

struct FusedOp {
  enum class Kind : std::uint8_t {
    kLoadLocalPair,      // push locals[a], locals[b]
    kMulAdd,             // [acc, x, y] -> acc + x*y (two roundings, as-if)
    kConvertPtrAddLoad,  // [ptr, idx] -> load(ptr + convert(idx)*esize)
    kPtrAddLoad,         // [ptr, idx(i64)] -> load(ptr + idx*esize)
    kLocalAddConst,      // locals[a] = locals[a] +/- const
    kIndexedLoad,        // push load described by ld[0] (no stack traffic)
    kMacLocal,           // locals[a] += ld[0]-load * ld[1]-load — the whole
                         // matmul MAC body in one dispatch
    kCompareLocals,      // push locals[a] <op> locals[b]
  };
  Kind kind = Kind::kLoadLocalPair;
  ScalarType type = ScalarType::kVoid;       // Arithmetic / load type.
  ScalarType idx_type = ScalarType::kVoid;   // kConvertPtrAddLoad source.
  std::int32_t a = 0;                        // Slot / element size.
  std::int32_t b = 0;                        // Second slot.
  Opcode op = Opcode::kAdd;                  // kLocalAddConst: kAdd or kSub;
                                             // kCompareLocals: the compare.
  Value constant{};                          // kLocalAddConst, pre-converted.
  IndexedLoad ld[2];                         // kIndexedLoad / kMacLocal.
  std::uint32_t length = 0;                  // Instructions replaced.
};

struct BatchPlan {
  // code.size() entries: -1 or an index into ops for a fusion starting at
  // that pc. Empty when fusion is disabled.
  std::vector<std::int32_t> fused_at;
  std::vector<FusedOp> ops;
};

BatchPlan BuildBatchPlan(const Module& module, const LaunchOptions& options);

// Runs one work-group through the lane-batch engine. grp.local_mem is set
// up internally (like the interpreter's RunGroup). Bails out to the
// interpreter sweep on lane divergence; always returns bit-identical
// results to the interpreter.
Status RunGroupBatched(GroupContext& grp, const BatchPlan& plan,
                       BatchGroupStats& stats);

}  // namespace haocl::oclc::vmdetail
