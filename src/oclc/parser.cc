#include "oclc/parser.h"

#include <optional>
#include <utility>

#include "oclc/lexer.h"

namespace haocl::oclc {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Expected<std::unique_ptr<TranslationUnit>> Run() {
    auto unit = std::make_unique<TranslationUnit>();
    while (!At(TokenKind::kEnd)) {
      auto fn = ParseFunction();
      if (!fn.ok()) return fn.status();
      unit->functions.push_back(*std::move(fn));
    }
    return unit;
  }

 private:
  // ---------------------------------------------------------------- Helpers

  [[nodiscard]] const Token& Peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool At(TokenKind kind) const { return Peek().kind == kind; }
  [[nodiscard]] bool AtKeyword(std::string_view kw) const {
    return Peek().kind == TokenKind::kKeyword && Peek().text == kw;
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Match(TokenKind kind) {
    if (At(kind)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchKeyword(std::string_view kw) {
    if (AtKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    const Token& tok = Peek();
    return Status(ErrorCode::kBuildProgramFailure,
                  "parse error at line " + std::to_string(tok.loc.line) + ":" +
                      std::to_string(tok.loc.column) + ": " + what);
  }

  Status Expect(TokenKind kind) {
    if (Match(kind)) return Status::Ok();
    return Error(std::string("expected ") + TokenKindName(kind) + ", found " +
                 TokenKindName(Peek().kind) +
                 (Peek().text.empty() ? "" : " '" + Peek().text + "'"));
  }

  // ------------------------------------------------------------------ Types

  // True if the current token could begin a type (a scalar type keyword or
  // an address-space / const qualifier).
  [[nodiscard]] bool AtTypeStart() const {
    if (Peek().kind != TokenKind::kKeyword) return false;
    const std::string& t = Peek().text;
    return ScalarKeyword(t).has_value() || IsSpaceQualifier(t) ||
           t == "const" || t == "restrict" || t == "volatile";
  }

  static std::optional<ScalarType> ScalarKeyword(std::string_view t) {
    if (t == "void") return ScalarType::kVoid;
    if (t == "bool") return ScalarType::kBool;
    if (t == "char") return ScalarType::kI8;
    if (t == "uchar") return ScalarType::kU8;
    if (t == "short") return ScalarType::kI16;
    if (t == "ushort") return ScalarType::kU16;
    if (t == "int") return ScalarType::kI32;
    if (t == "uint") return ScalarType::kU32;
    if (t == "long") return ScalarType::kI64;
    if (t == "ulong") return ScalarType::kU64;
    if (t == "float") return ScalarType::kF32;
    if (t == "double") return ScalarType::kF64;
    if (t == "size_t") return ScalarType::kU64;
    return std::nullopt;
  }

  static bool IsSpaceQualifier(std::string_view t) {
    return t == "__global" || t == "global" || t == "__local" ||
           t == "local" || t == "__constant" || t == "constant" ||
           t == "__private" || t == "private";
  }

  static AddressSpace SpaceFromKeyword(std::string_view t) {
    if (t == "__global" || t == "global") return AddressSpace::kGlobal;
    if (t == "__local" || t == "local") return AddressSpace::kLocal;
    if (t == "__constant" || t == "constant") return AddressSpace::kConstant;
    return AddressSpace::kPrivate;
  }

  struct ParsedType {
    Type type;
    AddressSpace declared_space = AddressSpace::kPrivate;
    bool space_explicit = false;
    bool is_const = false;  // `const` appeared before the '*' (pointee).
  };

  // Parses: [qualifiers] scalar ['*']. Qualifiers may appear in any order
  // before the scalar keyword, as OpenCL allows.
  Expected<ParsedType> ParseType() {
    ParsedType out;
    std::optional<ScalarType> scalar;
    while (Peek().kind == TokenKind::kKeyword) {
      const std::string& t = Peek().text;
      if (IsSpaceQualifier(t)) {
        out.declared_space = SpaceFromKeyword(t);
        out.space_explicit = true;
        Advance();
        continue;
      }
      if (t == "const" || t == "restrict" || t == "volatile") {
        if (t == "const") out.is_const = true;
        Advance();
        continue;
      }
      if (auto s = ScalarKeyword(t)) {
        scalar = s;
        Advance();
        break;
      }
      break;
    }
    if (!scalar.has_value()) return Error("expected a type name");
    // Trailing qualifiers between scalar and '*' (e.g. `float const *`).
    while (true) {
      if (MatchKeyword("const")) {
        out.is_const = true;
        continue;
      }
      if (MatchKeyword("restrict") || MatchKeyword("volatile")) continue;
      break;
    }
    if (Match(TokenKind::kStar)) {
      out.type = Type::Pointer(*scalar, out.declared_space);
      while (MatchKeyword("const") || MatchKeyword("restrict") ||
             MatchKeyword("volatile")) {
      }
    } else {
      out.type = Type::Scalar(*scalar);
    }
    return out;
  }

  // -------------------------------------------------------------- Functions

  Expected<std::unique_ptr<FunctionDecl>> ParseFunction() {
    auto fn = std::make_unique<FunctionDecl>();
    fn->loc = Peek().loc;
    if (MatchKeyword("__kernel") || MatchKeyword("kernel")) {
      fn->is_kernel = true;
    }
    auto ret = ParseType();
    if (!ret.ok()) return ret.status();
    fn->return_type = ret->type;

    if (!At(TokenKind::kIdentifier)) return Error("expected function name");
    fn->name = Advance().text;

    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (!At(TokenKind::kRParen)) {
      do {
        if (MatchKeyword("void") && At(TokenKind::kRParen)) break;
        auto pt = ParseType();
        if (!pt.ok()) return pt.status();
        ParamDecl param;
        param.loc = Peek().loc;
        param.type = pt->type;
        param.pointee_const = pt->is_const;
        if (!At(TokenKind::kIdentifier)) return Error("expected parameter name");
        param.name = Advance().text;
        fn->params.push_back(std::move(param));
      } while (Match(TokenKind::kComma));
    }
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));

    auto body = ParseBlock();
    if (!body.ok()) return body.status();
    fn->body = *std::move(body);
    return fn;
  }

  // ------------------------------------------------------------- Statements

  Expected<StmtPtr> ParseBlock() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kBlock;
    stmt->loc = Peek().loc;
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    while (!At(TokenKind::kRBrace)) {
      if (At(TokenKind::kEnd)) return Error("unterminated block");
      auto child = ParseStatement();
      if (!child.ok()) return child.status();
      stmt->body.push_back(*std::move(child));
    }
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    return stmt;
  }

  Expected<StmtPtr> ParseStatement() {
    if (At(TokenKind::kLBrace)) return ParseBlock();
    if (AtKeyword("if")) return ParseIf();
    if (AtKeyword("for")) return ParseFor();
    if (AtKeyword("while")) return ParseWhile();
    if (AtKeyword("do")) return ParseDoWhile();
    if (AtKeyword("return")) return ParseReturn();
    if (AtKeyword("break") || AtKeyword("continue")) {
      auto stmt = std::make_unique<Stmt>();
      stmt->loc = Peek().loc;
      stmt->kind = AtKeyword("break") ? StmtKind::kBreak : StmtKind::kContinue;
      Advance();
      HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
      return stmt;
    }
    if (Match(TokenKind::kSemicolon)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kEmpty;
      return stmt;
    }
    if (AtTypeStart()) return ParseDeclStatement();
    return ParseExprStatement();
  }

  Expected<StmtPtr> ParseDeclStatement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kDecl;
    stmt->loc = Peek().loc;
    auto pt = ParseType();
    if (!pt.ok()) return pt.status();
    stmt->decl_type = pt->type;
    stmt->decl_space = pt->declared_space;
    do {
      Declarator decl;
      decl.loc = Peek().loc;
      if (!At(TokenKind::kIdentifier)) return Error("expected variable name");
      decl.name = Advance().text;
      if (Match(TokenKind::kLBracket)) {
        auto size = ParseExpression();
        if (!size.ok()) return size.status();
        decl.array_size = *std::move(size);
        HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      }
      if (Match(TokenKind::kAssign)) {
        auto init = ParseAssignment();
        if (!init.ok()) return init.status();
        decl.init = *std::move(init);
      }
      stmt->declarators.push_back(std::move(decl));
    } while (Match(TokenKind::kComma));
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return stmt;
  }

  Expected<StmtPtr> ParseExprStatement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kExpr;
    stmt->loc = Peek().loc;
    auto expr = ParseExpression();
    if (!expr.ok()) return expr.status();
    stmt->expr = *std::move(expr);
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return stmt;
  }

  Expected<StmtPtr> ParseIf() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kIf;
    stmt->loc = Peek().loc;
    Advance();  // if
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    auto cond = ParseExpression();
    if (!cond.ok()) return cond.status();
    stmt->cond = *std::move(cond);
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    auto then_branch = ParseStatement();
    if (!then_branch.ok()) return then_branch.status();
    stmt->body.push_back(*std::move(then_branch));
    if (MatchKeyword("else")) {
      auto else_branch = ParseStatement();
      if (!else_branch.ok()) return else_branch.status();
      stmt->body.push_back(*std::move(else_branch));
    }
    return stmt;
  }

  Expected<StmtPtr> ParseFor() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kFor;
    stmt->loc = Peek().loc;
    Advance();  // for
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    // Init clause: declaration, expression, or empty.
    if (Match(TokenKind::kSemicolon)) {
      stmt->body.push_back(nullptr);
    } else if (AtTypeStart()) {
      auto init = ParseDeclStatement();  // Consumes the ';'.
      if (!init.ok()) return init.status();
      stmt->body.push_back(*std::move(init));
    } else {
      auto init = ParseExprStatement();  // Consumes the ';'.
      if (!init.ok()) return init.status();
      stmt->body.push_back(*std::move(init));
    }
    // Condition.
    if (!At(TokenKind::kSemicolon)) {
      auto cond = ParseExpression();
      if (!cond.ok()) return cond.status();
      stmt->cond = *std::move(cond);
    }
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    // Step.
    if (!At(TokenKind::kRParen)) {
      auto step = ParseExpression();
      if (!step.ok()) return step.status();
      stmt->step = *std::move(step);
    }
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    auto body = ParseStatement();
    if (!body.ok()) return body.status();
    stmt->body.push_back(*std::move(body));
    return stmt;
  }

  Expected<StmtPtr> ParseWhile() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kWhile;
    stmt->loc = Peek().loc;
    Advance();  // while
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    auto cond = ParseExpression();
    if (!cond.ok()) return cond.status();
    stmt->cond = *std::move(cond);
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    auto body = ParseStatement();
    if (!body.ok()) return body.status();
    stmt->body.push_back(*std::move(body));
    return stmt;
  }

  Expected<StmtPtr> ParseDoWhile() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kDoWhile;
    stmt->loc = Peek().loc;
    Advance();  // do
    auto body = ParseStatement();
    if (!body.ok()) return body.status();
    stmt->body.push_back(*std::move(body));
    if (!MatchKeyword("while")) return Error("expected 'while' after do-body");
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    auto cond = ParseExpression();
    if (!cond.ok()) return cond.status();
    stmt->cond = *std::move(cond);
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return stmt;
  }

  Expected<StmtPtr> ParseReturn() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kReturn;
    stmt->loc = Peek().loc;
    Advance();  // return
    if (!At(TokenKind::kSemicolon)) {
      auto value = ParseExpression();
      if (!value.ok()) return value.status();
      stmt->expr = *std::move(value);
    }
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return stmt;
  }

  // ------------------------------------------------------------ Expressions

  Expected<ExprPtr> ParseExpression() { return ParseAssignment(); }

  Expected<ExprPtr> ParseAssignment() {
    auto lhs = ParseTernary();
    if (!lhs.ok()) return lhs;

    struct CompoundMap {
      TokenKind token;
      BinaryOp op;
    };
    static constexpr CompoundMap kCompound[] = {
        {TokenKind::kPlusAssign, BinaryOp::kAdd},
        {TokenKind::kMinusAssign, BinaryOp::kSub},
        {TokenKind::kStarAssign, BinaryOp::kMul},
        {TokenKind::kSlashAssign, BinaryOp::kDiv},
        {TokenKind::kPercentAssign, BinaryOp::kMod},
        {TokenKind::kAmpAssign, BinaryOp::kBitAnd},
        {TokenKind::kPipeAssign, BinaryOp::kBitOr},
        {TokenKind::kCaretAssign, BinaryOp::kBitXor},
        {TokenKind::kShlAssign, BinaryOp::kShl},
        {TokenKind::kShrAssign, BinaryOp::kShr},
    };

    if (At(TokenKind::kAssign)) {
      SourceLocation loc = Peek().loc;
      Advance();
      auto rhs = ParseAssignment();
      if (!rhs.ok()) return rhs;
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kAssign;
      expr->loc = loc;
      expr->compound = false;
      expr->children.push_back(*std::move(lhs));
      expr->children.push_back(*std::move(rhs));
      return ExprPtr(std::move(expr));
    }
    for (const auto& [token, op] : kCompound) {
      if (At(token)) {
        SourceLocation loc = Peek().loc;
        Advance();
        auto rhs = ParseAssignment();
        if (!rhs.ok()) return rhs;
        auto expr = std::make_unique<Expr>();
        expr->kind = ExprKind::kAssign;
        expr->loc = loc;
        expr->compound = true;
        expr->binary_op = op;
        expr->children.push_back(*std::move(lhs));
        expr->children.push_back(*std::move(rhs));
        return ExprPtr(std::move(expr));
      }
    }
    return lhs;
  }

  Expected<ExprPtr> ParseTernary() {
    auto cond = ParseBinary(0);
    if (!cond.ok()) return cond;
    if (!Match(TokenKind::kQuestion)) return cond;
    auto then_expr = ParseExpression();
    if (!then_expr.ok()) return then_expr;
    HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kColon));
    auto else_expr = ParseTernary();
    if (!else_expr.ok()) return else_expr;
    auto expr = std::make_unique<Expr>();
    expr->kind = ExprKind::kTernary;
    expr->loc = (*cond)->loc;
    expr->children.push_back(*std::move(cond));
    expr->children.push_back(*std::move(then_expr));
    expr->children.push_back(*std::move(else_expr));
    return ExprPtr(std::move(expr));
  }

  struct OpInfo {
    TokenKind token;
    BinaryOp op;
    int precedence;
  };

  static const OpInfo* LookupBinaryOp(TokenKind kind) {
    static constexpr OpInfo kOps[] = {
        {TokenKind::kPipePipe, BinaryOp::kLogicalOr, 1},
        {TokenKind::kAmpAmp, BinaryOp::kLogicalAnd, 2},
        {TokenKind::kPipe, BinaryOp::kBitOr, 3},
        {TokenKind::kCaret, BinaryOp::kBitXor, 4},
        {TokenKind::kAmp, BinaryOp::kBitAnd, 5},
        {TokenKind::kEq, BinaryOp::kEq, 6},
        {TokenKind::kNe, BinaryOp::kNe, 6},
        {TokenKind::kLt, BinaryOp::kLt, 7},
        {TokenKind::kLe, BinaryOp::kLe, 7},
        {TokenKind::kGt, BinaryOp::kGt, 7},
        {TokenKind::kGe, BinaryOp::kGe, 7},
        {TokenKind::kShl, BinaryOp::kShl, 8},
        {TokenKind::kShr, BinaryOp::kShr, 8},
        {TokenKind::kPlus, BinaryOp::kAdd, 9},
        {TokenKind::kMinus, BinaryOp::kSub, 9},
        {TokenKind::kStar, BinaryOp::kMul, 10},
        {TokenKind::kSlash, BinaryOp::kDiv, 10},
        {TokenKind::kPercent, BinaryOp::kMod, 10},
    };
    for (const auto& info : kOps) {
      if (info.token == kind) return &info;
    }
    return nullptr;
  }

  // Precedence-climbing over the binary operator table.
  Expected<ExprPtr> ParseBinary(int min_precedence) {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    while (true) {
      const OpInfo* info = LookupBinaryOp(Peek().kind);
      if (info == nullptr || info->precedence < min_precedence) return lhs;
      SourceLocation loc = Peek().loc;
      Advance();
      auto rhs = ParseBinary(info->precedence + 1);
      if (!rhs.ok()) return rhs;
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kBinary;
      expr->loc = loc;
      expr->binary_op = info->op;
      expr->children.push_back(*std::move(lhs));
      expr->children.push_back(*std::move(rhs));
      lhs = ExprPtr(std::move(expr));
    }
  }

  Expected<ExprPtr> ParseUnary() {
    SourceLocation loc = Peek().loc;
    auto make_unary = [&](UnaryOp op, ExprPtr operand) {
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kUnary;
      expr->loc = loc;
      expr->unary_op = op;
      expr->children.push_back(std::move(operand));
      return ExprPtr(std::move(expr));
    };

    if (Match(TokenKind::kMinus)) {
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      return make_unary(UnaryOp::kNeg, *std::move(operand));
    }
    if (Match(TokenKind::kPlus)) {
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      return make_unary(UnaryOp::kPlus, *std::move(operand));
    }
    if (Match(TokenKind::kBang)) {
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      return make_unary(UnaryOp::kLogicalNot, *std::move(operand));
    }
    if (Match(TokenKind::kTilde)) {
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      return make_unary(UnaryOp::kBitNot, *std::move(operand));
    }
    if (Match(TokenKind::kPlusPlus)) {
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      return make_unary(UnaryOp::kPreInc, *std::move(operand));
    }
    if (Match(TokenKind::kMinusMinus)) {
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      return make_unary(UnaryOp::kPreDec, *std::move(operand));
    }
    // Cast: '(' type ')' unary. Distinguishable because type names are
    // keywords in the subset (no typedefs).
    if (At(TokenKind::kLParen) && Peek(1).kind == TokenKind::kKeyword &&
        (ScalarKeyword(Peek(1).text).has_value() ||
         IsSpaceQualifier(Peek(1).text) || Peek(1).text == "const")) {
      Advance();  // (
      auto pt = ParseType();
      if (!pt.ok()) return pt.status();
      HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kCast;
      expr->loc = loc;
      expr->cast_type = pt->type;
      expr->children.push_back(*std::move(operand));
      return ExprPtr(std::move(expr));
    }
    return ParsePostfix();
  }

  Expected<ExprPtr> ParsePostfix() {
    auto expr = ParsePrimary();
    if (!expr.ok()) return expr;
    while (true) {
      if (Match(TokenKind::kLBracket)) {
        auto index = ParseExpression();
        if (!index.ok()) return index;
        HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
        auto sub = std::make_unique<Expr>();
        sub->kind = ExprKind::kSubscript;
        sub->loc = (*expr)->loc;
        sub->children.push_back(*std::move(expr));
        sub->children.push_back(*std::move(index));
        expr = ExprPtr(std::move(sub));
      } else if (At(TokenKind::kPlusPlus) || At(TokenKind::kMinusMinus)) {
        UnaryOp op = At(TokenKind::kPlusPlus) ? UnaryOp::kPostInc
                                              : UnaryOp::kPostDec;
        SourceLocation loc = Peek().loc;
        Advance();
        auto post = std::make_unique<Expr>();
        post->kind = ExprKind::kUnary;
        post->loc = loc;
        post->unary_op = op;
        post->children.push_back(*std::move(expr));
        expr = ExprPtr(std::move(post));
      } else {
        return expr;
      }
    }
  }

  Expected<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    auto expr = std::make_unique<Expr>();
    expr->loc = tok.loc;

    if (tok.kind == TokenKind::kIntLiteral) {
      expr->kind = ExprKind::kIntLiteral;
      expr->int_value = tok.int_value;
      expr->literal_unsigned = tok.is_unsigned;
      expr->literal_long = tok.is_long;
      Advance();
      return ExprPtr(std::move(expr));
    }
    if (tok.kind == TokenKind::kFloatLiteral) {
      expr->kind = ExprKind::kFloatLiteral;
      expr->float_value = tok.float_value;
      expr->literal_float32 = tok.is_float_suffix;
      Advance();
      return ExprPtr(std::move(expr));
    }
    if (tok.kind == TokenKind::kKeyword &&
        (tok.text == "true" || tok.text == "false")) {
      expr->kind = ExprKind::kBoolLiteral;
      expr->int_value = tok.text == "true" ? 1 : 0;
      Advance();
      return ExprPtr(std::move(expr));
    }
    if (tok.kind == TokenKind::kIdentifier) {
      std::string name = tok.text;
      Advance();
      if (Match(TokenKind::kLParen)) {
        expr->kind = ExprKind::kCall;
        expr->name = std::move(name);
        if (!At(TokenKind::kRParen)) {
          do {
            auto arg = ParseAssignment();
            if (!arg.ok()) return arg;
            expr->children.push_back(*std::move(arg));
          } while (Match(TokenKind::kComma));
        }
        HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return ExprPtr(std::move(expr));
      }
      expr->kind = ExprKind::kVarRef;
      expr->name = std::move(name);
      return ExprPtr(std::move(expr));
    }
    if (Match(TokenKind::kLParen)) {
      auto inner = ParseExpression();
      if (!inner.ok()) return inner;
      HAOCL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    return Error(std::string("unexpected token ") + TokenKindName(tok.kind) +
                 (tok.text.empty() ? "" : " '" + tok.text + "'"));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Expected<std::unique_ptr<TranslationUnit>> Parse(std::string_view source) {
  auto tokens = Lex(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(*std::move(tokens));
  return parser.Run();
}

}  // namespace haocl::oclc
