#include "oclc/lexer.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace haocl::oclc {
namespace {

const char* const kKeywords[] = {
    "__kernel", "kernel", "__global", "global", "__local", "local",
    "__constant", "constant", "__private", "private",
    "void", "bool", "char", "uchar", "short", "ushort", "int", "uint",
    "long", "ulong", "float", "double", "size_t",
    "if", "else", "for", "while", "do", "break", "continue", "return",
    "true", "false", "const", "restrict", "volatile",
};

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;
  int line = 1;
  int column = 1;

  [[nodiscard]] bool AtEnd() const { return pos >= text.size(); }
  [[nodiscard]] char Peek(std::size_t ahead = 0) const {
    return pos + ahead < text.size() ? text[pos + ahead] : '\0';
  }
  char Advance() {
    char c = text[pos++];
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    return c;
  }
  bool Match(char c) {
    if (Peek() == c) {
      Advance();
      return true;
    }
    return false;
  }
  [[nodiscard]] SourceLocation Loc() const { return {line, column}; }
};

Status LexError(const Cursor& cur, const std::string& what) {
  return Status(ErrorCode::kBuildProgramFailure,
                "lex error at line " + std::to_string(cur.line) + ":" +
                    std::to_string(cur.column) + ": " + what);
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Lexes a numeric literal starting at the cursor.
Expected<Token> LexNumber(Cursor& cur) {
  Token tok;
  tok.loc = cur.Loc();
  std::string digits;
  bool is_float = false;
  bool is_hex = false;

  if (cur.Peek() == '0' && (cur.Peek(1) == 'x' || cur.Peek(1) == 'X')) {
    is_hex = true;
    digits += cur.Advance();
    digits += cur.Advance();
    while (std::isxdigit(static_cast<unsigned char>(cur.Peek()))) {
      digits += cur.Advance();
    }
  } else {
    while (std::isdigit(static_cast<unsigned char>(cur.Peek()))) {
      digits += cur.Advance();
    }
    if (cur.Peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(cur.Peek(1)))) {
      is_float = true;
      digits += cur.Advance();
      while (std::isdigit(static_cast<unsigned char>(cur.Peek()))) {
        digits += cur.Advance();
      }
    } else if (cur.Peek() == '.' && !IsIdentChar(cur.Peek(1))) {
      is_float = true;
      digits += cur.Advance();
    }
    if (cur.Peek() == 'e' || cur.Peek() == 'E') {
      char next = cur.Peek(1);
      char next2 = cur.Peek(2);
      if (std::isdigit(static_cast<unsigned char>(next)) ||
          ((next == '+' || next == '-') &&
           std::isdigit(static_cast<unsigned char>(next2)))) {
        is_float = true;
        digits += cur.Advance();  // e
        if (cur.Peek() == '+' || cur.Peek() == '-') digits += cur.Advance();
        while (std::isdigit(static_cast<unsigned char>(cur.Peek()))) {
          digits += cur.Advance();
        }
      }
    }
  }

  // Suffixes.
  while (true) {
    char c = cur.Peek();
    if (c == 'f' || c == 'F') {
      tok.is_float_suffix = true;
      is_float = true;
      cur.Advance();
    } else if (c == 'u' || c == 'U') {
      tok.is_unsigned = true;
      cur.Advance();
    } else if (c == 'l' || c == 'L') {
      tok.is_long = true;
      cur.Advance();
    } else {
      break;
    }
  }

  if (is_float) {
    tok.kind = TokenKind::kFloatLiteral;
    tok.float_value = std::strtod(digits.c_str(), nullptr);
  } else {
    tok.kind = TokenKind::kIntLiteral;
    std::uint64_t value = 0;
    const char* begin = digits.c_str() + (is_hex ? 2 : 0);
    const char* end = digits.c_str() + digits.size();
    auto [ptr, ec] = std::from_chars(begin, end, value, is_hex ? 16 : 10);
    if (ec != std::errc() || ptr != end) {
      return LexError(cur, "bad integer literal '" + digits + "'");
    }
    tok.int_value = value;
  }
  return tok;
}

}  // namespace

bool IsKeyword(std::string_view text) noexcept {
  for (const char* kw : kKeywords) {
    if (text == kw) return true;
  }
  return false;
}

Expected<std::vector<Token>> Lex(std::string_view source) {
  std::vector<Token> tokens;
  std::unordered_map<std::string, std::vector<Token>> macros;
  Cursor cur{source};

  while (!cur.AtEnd()) {
    char c = cur.Peek();

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      cur.Advance();
      continue;
    }
    // Comments.
    if (c == '/' && cur.Peek(1) == '/') {
      while (!cur.AtEnd() && cur.Peek() != '\n') cur.Advance();
      continue;
    }
    if (c == '/' && cur.Peek(1) == '*') {
      cur.Advance();
      cur.Advance();
      while (!cur.AtEnd() && !(cur.Peek() == '*' && cur.Peek(1) == '/')) {
        cur.Advance();
      }
      if (cur.AtEnd()) return LexError(cur, "unterminated block comment");
      cur.Advance();
      cur.Advance();
      continue;
    }
    // Preprocessor: only `#define NAME TOKENS...` and `#pragma` (ignored).
    if (c == '#') {
      std::string directive;
      cur.Advance();
      while (IsIdentChar(cur.Peek())) directive += cur.Advance();
      if (directive == "pragma") {
        while (!cur.AtEnd() && cur.Peek() != '\n') cur.Advance();
        continue;
      }
      if (directive != "define") {
        return LexError(cur, "unsupported preprocessor directive #" + directive);
      }
      while (cur.Peek() == ' ' || cur.Peek() == '\t') cur.Advance();
      std::string name;
      while (IsIdentChar(cur.Peek())) name += cur.Advance();
      if (name.empty()) return LexError(cur, "#define without a name");
      if (cur.Peek() == '(') {
        return LexError(cur, "function-like macros are not supported");
      }
      // Lex the replacement list (rest of line) recursively.
      std::string body;
      while (!cur.AtEnd() && cur.Peek() != '\n') body += cur.Advance();
      auto body_tokens = Lex(body);
      if (!body_tokens.ok()) return body_tokens.status();
      body_tokens->pop_back();  // Drop kEnd.
      macros[name] = *std::move(body_tokens);
      continue;
    }

    if (IsIdentStart(c)) {
      Token tok;
      tok.loc = cur.Loc();
      while (IsIdentChar(cur.Peek())) tok.text += cur.Advance();
      if (auto it = macros.find(tok.text); it != macros.end()) {
        for (Token t : it->second) {
          t.loc = tok.loc;
          tokens.push_back(std::move(t));
        }
        continue;
      }
      tok.kind = IsKeyword(tok.text) ? TokenKind::kKeyword
                                     : TokenKind::kIdentifier;
      tokens.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur.Peek(1))))) {
      auto tok = LexNumber(cur);
      if (!tok.ok()) return tok.status();
      tokens.push_back(*std::move(tok));
      continue;
    }

    // Operators and punctuation.
    Token tok;
    tok.loc = cur.Loc();
    cur.Advance();
    switch (c) {
      case '(': tok.kind = TokenKind::kLParen; break;
      case ')': tok.kind = TokenKind::kRParen; break;
      case '{': tok.kind = TokenKind::kLBrace; break;
      case '}': tok.kind = TokenKind::kRBrace; break;
      case '[': tok.kind = TokenKind::kLBracket; break;
      case ']': tok.kind = TokenKind::kRBracket; break;
      case ',': tok.kind = TokenKind::kComma; break;
      case ';': tok.kind = TokenKind::kSemicolon; break;
      case '?': tok.kind = TokenKind::kQuestion; break;
      case ':': tok.kind = TokenKind::kColon; break;
      case '~': tok.kind = TokenKind::kTilde; break;
      case '+':
        tok.kind = cur.Match('+') ? TokenKind::kPlusPlus
                   : cur.Match('=') ? TokenKind::kPlusAssign
                                    : TokenKind::kPlus;
        break;
      case '-':
        tok.kind = cur.Match('-') ? TokenKind::kMinusMinus
                   : cur.Match('=') ? TokenKind::kMinusAssign
                                    : TokenKind::kMinus;
        break;
      case '*':
        tok.kind = cur.Match('=') ? TokenKind::kStarAssign : TokenKind::kStar;
        break;
      case '/':
        tok.kind = cur.Match('=') ? TokenKind::kSlashAssign : TokenKind::kSlash;
        break;
      case '%':
        tok.kind =
            cur.Match('=') ? TokenKind::kPercentAssign : TokenKind::kPercent;
        break;
      case '=':
        tok.kind = cur.Match('=') ? TokenKind::kEq : TokenKind::kAssign;
        break;
      case '!':
        tok.kind = cur.Match('=') ? TokenKind::kNe : TokenKind::kBang;
        break;
      case '<':
        if (cur.Match('<')) {
          tok.kind = cur.Match('=') ? TokenKind::kShlAssign : TokenKind::kShl;
        } else {
          tok.kind = cur.Match('=') ? TokenKind::kLe : TokenKind::kLt;
        }
        break;
      case '>':
        if (cur.Match('>')) {
          tok.kind = cur.Match('=') ? TokenKind::kShrAssign : TokenKind::kShr;
        } else {
          tok.kind = cur.Match('=') ? TokenKind::kGe : TokenKind::kGt;
        }
        break;
      case '&':
        tok.kind = cur.Match('&') ? TokenKind::kAmpAmp
                   : cur.Match('=') ? TokenKind::kAmpAssign
                                    : TokenKind::kAmp;
        break;
      case '|':
        tok.kind = cur.Match('|') ? TokenKind::kPipePipe
                   : cur.Match('=') ? TokenKind::kPipeAssign
                                    : TokenKind::kPipe;
        break;
      case '^':
        tok.kind =
            cur.Match('=') ? TokenKind::kCaretAssign : TokenKind::kCaret;
        break;
      default:
        return LexError(cur, std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(std::move(tok));
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.loc = cur.Loc();
  tokens.push_back(std::move(end));
  return tokens;
}

const char* TokenKindName(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kEnd: return "<end>";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kPlusPlus: return "'++'";
    case TokenKind::kMinusMinus: return "'--'";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kMinusAssign: return "'-='";
    case TokenKind::kStarAssign: return "'*='";
    case TokenKind::kSlashAssign: return "'/='";
    case TokenKind::kPercentAssign: return "'%='";
    case TokenKind::kAmpAssign: return "'&='";
    case TokenKind::kPipeAssign: return "'|='";
    case TokenKind::kCaretAssign: return "'^='";
    case TokenKind::kShlAssign: return "'<<='";
    case TokenKind::kShrAssign: return "'>>='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kAmpAmp: return "'&&'";
    case TokenKind::kPipePipe: return "'||'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kTilde: return "'~'";
    case TokenKind::kShl: return "'<<'";
    case TokenKind::kShr: return "'>>'";
  }
  return "?";
}

}  // namespace haocl::oclc
