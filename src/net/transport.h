// Transport abstraction of the communication backbone.
//
// The paper builds on Boost.Asio: the node management process creates an
// asynchronous acceptor/listener per port; the host creates a (synchronous)
// message+data channel per node. We reproduce that architecture with a
// Connection interface and two implementations:
//  - SimTransport (sim_transport.h): in-process queue pair, used when the
//    whole cluster runs inside one process (the default for tests/benches,
//    standing in for the cloud deployment we cannot spawn here);
//  - TcpTransport (tcp_transport.h): real POSIX sockets with the same frame
//    format, used for genuine multi-process deployments.
#pragma once

#include <functional>
#include <memory>

#include "common/status.h"
#include "net/message.h"

namespace haocl::net {

using MessageHandler = std::function<void(Message)>;

// A bidirectional, ordered, reliable message channel to one peer.
// Thread-safe for concurrent Send(); the receive handler is invoked from a
// single dispatcher thread per connection (messages stay ordered).
class Connection {
 public:
  virtual ~Connection() = default;

  // Queues a message for delivery. Fails once the peer is gone.
  virtual Status Send(const Message& message) = 0;

  // Starts asynchronous receipt. Must be called exactly once. The handler
  // runs on the connection's dispatcher thread.
  virtual void Start(MessageHandler handler) = 0;

  // Closes the channel; pending sends are dropped, the dispatcher drains.
  virtual void Close() = 0;

  // Diagnostics / virtual-time accounting.
  [[nodiscard]] virtual std::uint64_t bytes_sent() const = 0;
  [[nodiscard]] virtual std::uint64_t messages_sent() const = 0;
};

using ConnectionPtr = std::unique_ptr<Connection>;

// Server half: accepts incoming connections (the paper's "acceptor
// structure as a message and data listener").
class Listener {
 public:
  virtual ~Listener() = default;

  using AcceptHandler = std::function<void(ConnectionPtr)>;

  // Begins accepting asynchronously; each new connection is handed to the
  // handler (not yet started — the receiver decides when to Start it).
  virtual Status Start(AcceptHandler handler) = 0;
  virtual void Stop() = 0;
};

}  // namespace haocl::net
