#include "net/protocol.h"

namespace haocl::net {
namespace {

Status Malformed(const char* what) {
  return Status(ErrorCode::kProtocolError,
                std::string("malformed ") + what + " payload");
}

}  // namespace

// ---------------------------------------------------------------- Handshake

std::vector<std::uint8_t> HelloRequest::Encode() const {
  WireWriter w;
  w.WriteString(host_name);
  w.WriteU32(protocol_version);
  return std::move(w).Take();
}

Expected<HelloRequest> HelloRequest::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  HelloRequest out;
  auto name = r.ReadString();
  auto version = r.ReadU32();
  if (!name.ok() || !version.ok()) return Malformed("HelloRequest");
  out.host_name = *std::move(name);
  out.protocol_version = *version;
  return out;
}

std::vector<std::uint8_t> HelloReply::Encode() const {
  WireWriter w;
  w.WriteString(node_name);
  w.WriteU8(static_cast<std::uint8_t>(device_type));
  w.WriteString(device_model);
  w.WriteF64(compute_gflops);
  w.WriteF64(mem_bandwidth_gbps);
  w.WriteU64(mem_capacity_bytes);
  w.WriteU32(simd_width);
  w.WriteU32(protocol_version);
  return std::move(w).Take();
}

Expected<HelloReply> HelloReply::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  HelloReply out;
  auto name = r.ReadString();
  auto type = r.ReadU8();
  auto model = r.ReadString();
  auto gflops = r.ReadF64();
  auto bw = r.ReadF64();
  auto capacity = r.ReadU64();
  auto simd = r.ReadU32();
  auto version = r.ReadU32();
  if (!name.ok() || !type.ok() || !model.ok() || !gflops.ok() || !bw.ok() ||
      !capacity.ok() || !simd.ok() || !version.ok() || *type > 2) {
    return Malformed("HelloReply");
  }
  out.node_name = *std::move(name);
  out.device_type = static_cast<NodeType>(*type);
  out.device_model = *std::move(model);
  out.compute_gflops = *gflops;
  out.mem_bandwidth_gbps = *bw;
  out.mem_capacity_bytes = *capacity;
  out.simd_width = *simd;
  out.protocol_version = *version;
  return out;
}

// ------------------------------------------------------------------ Buffers

std::vector<std::uint8_t> CreateBufferRequest::Encode() const {
  WireWriter w;
  w.WriteU64(buffer_id);
  w.WriteU64(size);
  return std::move(w).Take();
}

Expected<CreateBufferRequest> CreateBufferRequest::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  CreateBufferRequest out;
  auto id = r.ReadU64();
  auto size = r.ReadU64();
  if (!id.ok() || !size.ok()) return Malformed("CreateBuffer");
  out.buffer_id = *id;
  out.size = *size;
  return out;
}

std::vector<std::uint8_t> WriteBufferRequest::Encode() const {
  WireWriter w(24 + data.size());
  w.WriteU64(buffer_id);
  w.WriteU64(offset);
  w.WriteByteVector(data);
  return std::move(w).Take();
}

Expected<WriteBufferRequest> WriteBufferRequest::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  WriteBufferRequest out;
  auto id = r.ReadU64();
  auto offset = r.ReadU64();
  auto data = r.ReadByteVector();
  if (!id.ok() || !offset.ok() || !data.ok()) return Malformed("WriteBuffer");
  out.buffer_id = *id;
  out.offset = *offset;
  out.data = *std::move(data);
  return out;
}

std::vector<std::uint8_t> ReadBufferRequest::Encode() const {
  WireWriter w;
  w.WriteU64(buffer_id);
  w.WriteU64(offset);
  w.WriteU64(size);
  return std::move(w).Take();
}

Expected<ReadBufferRequest> ReadBufferRequest::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  ReadBufferRequest out;
  auto id = r.ReadU64();
  auto offset = r.ReadU64();
  auto size = r.ReadU64();
  if (!id.ok() || !offset.ok() || !size.ok()) return Malformed("ReadBuffer");
  out.buffer_id = *id;
  out.offset = *offset;
  out.size = *size;
  return out;
}

std::vector<std::uint8_t> ReleaseBufferRequest::Encode() const {
  WireWriter w;
  w.WriteU64(buffer_id);
  return std::move(w).Take();
}

Expected<ReleaseBufferRequest> ReleaseBufferRequest::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  ReleaseBufferRequest out;
  auto id = r.ReadU64();
  if (!id.ok()) return Malformed("ReleaseBuffer");
  out.buffer_id = *id;
  return out;
}

std::vector<std::uint8_t> CopyBufferRequest::Encode() const {
  WireWriter w;
  w.WriteU64(src_buffer_id);
  w.WriteU64(dst_buffer_id);
  w.WriteU64(src_offset);
  w.WriteU64(dst_offset);
  w.WriteU64(size);
  return std::move(w).Take();
}

Expected<CopyBufferRequest> CopyBufferRequest::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  CopyBufferRequest out;
  auto src = r.ReadU64();
  auto dst = r.ReadU64();
  auto so = r.ReadU64();
  auto dofs = r.ReadU64();
  auto size = r.ReadU64();
  if (!src.ok() || !dst.ok() || !so.ok() || !dofs.ok() || !size.ok()) {
    return Malformed("CopyBuffer");
  }
  out.src_buffer_id = *src;
  out.dst_buffer_id = *dst;
  out.src_offset = *so;
  out.dst_offset = *dofs;
  out.size = *size;
  return out;
}

// ------------------------------------------------- Node-to-node exchange

std::vector<std::uint8_t> PullSliceRequest::Encode() const {
  WireWriter w;
  w.WriteU64(buffer_id);
  w.WriteU64(offset);
  w.WriteU64(size);
  w.WriteU32(source_node);
  return std::move(w).Take();
}

Expected<PullSliceRequest> PullSliceRequest::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  PullSliceRequest out;
  auto id = r.ReadU64();
  auto offset = r.ReadU64();
  auto size = r.ReadU64();
  auto source = r.ReadU32();
  if (!id.ok() || !offset.ok() || !size.ok() || !source.ok()) {
    return Malformed("PullSlice");
  }
  out.buffer_id = *id;
  out.offset = *offset;
  out.size = *size;
  out.source_node = *source;
  return out;
}

std::vector<std::uint8_t> PushSliceRequest::Encode() const {
  WireWriter w;
  w.WriteU64(buffer_id);
  w.WriteU64(offset);
  w.WriteU64(size);
  w.WriteU32(target_node);
  return std::move(w).Take();
}

Expected<PushSliceRequest> PushSliceRequest::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  PushSliceRequest out;
  auto id = r.ReadU64();
  auto offset = r.ReadU64();
  auto size = r.ReadU64();
  auto target = r.ReadU32();
  if (!id.ok() || !offset.ok() || !size.ok() || !target.ok()) {
    return Malformed("PushSlice");
  }
  out.buffer_id = *id;
  out.offset = *offset;
  out.size = *size;
  out.target_node = *target;
  return out;
}

// ------------------------------------------------------------ Memory notices

std::vector<std::uint8_t> MemoryNoticeRequest::Encode() const {
  WireWriter w;
  w.WriteU64(buffer_id);
  w.WriteBool(reserve);
  w.WriteU32(static_cast<std::uint32_t>(regions.size()));
  for (const MemoryRegion& region : regions) {
    w.WriteU64(region.offset);
    w.WriteU64(region.size);
  }
  return std::move(w).Take();
}

Expected<MemoryNoticeRequest> MemoryNoticeRequest::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  MemoryNoticeRequest out;
  auto id = r.ReadU64();
  auto reserve = r.ReadBool();
  auto count = r.ReadU32();
  if (!id.ok() || !reserve.ok() || !count.ok()) {
    return Malformed("MemoryNotice");
  }
  out.buffer_id = *id;
  out.reserve = *reserve;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto offset = r.ReadU64();
    auto size = r.ReadU64();
    if (!offset.ok() || !size.ok()) return Malformed("MemoryNotice");
    out.regions.push_back({*offset, *size});
  }
  return out;
}

// ----------------------------------------------------------------- Programs

std::vector<std::uint8_t> BuildProgramRequest::Encode() const {
  WireWriter w(16 + source.size());
  w.WriteU64(program_id);
  w.WriteString(source);
  return std::move(w).Take();
}

Expected<BuildProgramRequest> BuildProgramRequest::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  BuildProgramRequest out;
  auto id = r.ReadU64();
  auto source = r.ReadString();
  if (!id.ok() || !source.ok()) return Malformed("BuildProgram");
  out.program_id = *id;
  out.source = *std::move(source);
  return out;
}

std::vector<std::uint8_t> BuildProgramReply::Encode() const {
  WireWriter w;
  w.WriteI32(status_code);
  w.WriteString(build_log);
  w.WriteU32(static_cast<std::uint32_t>(kernel_names.size()));
  for (const std::string& name : kernel_names) w.WriteString(name);
  return std::move(w).Take();
}

Expected<BuildProgramReply> BuildProgramReply::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  BuildProgramReply out;
  auto code = r.ReadI32();
  auto log = r.ReadString();
  auto count = r.ReadU32();
  if (!code.ok() || !log.ok() || !count.ok()) return Malformed("BuildReply");
  out.status_code = *code;
  out.build_log = *std::move(log);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto name = r.ReadString();
    if (!name.ok()) return Malformed("BuildReply");
    out.kernel_names.push_back(*std::move(name));
  }
  return out;
}

std::vector<std::uint8_t> ReleaseProgramRequest::Encode() const {
  WireWriter w;
  w.WriteU64(program_id);
  return std::move(w).Take();
}

Expected<ReleaseProgramRequest> ReleaseProgramRequest::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  ReleaseProgramRequest out;
  auto id = r.ReadU64();
  if (!id.ok()) return Malformed("ReleaseProgram");
  out.program_id = *id;
  return out;
}

// ------------------------------------------------------------------ Kernels

std::vector<std::uint8_t> LaunchKernelRequest::Encode() const {
  WireWriter w;
  w.WriteU64(program_id);
  w.WriteString(kernel_name);
  w.WriteU32(static_cast<std::uint32_t>(args.size()));
  for (const WireKernelArg& arg : args) {
    w.WriteU8(static_cast<std::uint8_t>(arg.kind));
    switch (arg.kind) {
      case WireKernelArg::Kind::kBuffer:
        w.WriteU64(arg.buffer_id);
        w.WriteU64(arg.written_begin);
        w.WriteU64(arg.written_end);
        break;
      case WireKernelArg::Kind::kScalar:
        w.WriteByteVector(arg.scalar_bytes);
        break;
      case WireKernelArg::Kind::kLocalSize:
        w.WriteU64(arg.local_size);
        break;
    }
  }
  w.WriteU32(work_dim);
  for (int d = 0; d < 3; ++d) w.WriteU64(global[d]);
  for (int d = 0; d < 3; ++d) w.WriteU64(local[d]);
  for (int d = 0; d < 3; ++d) w.WriteU64(global_offset[d]);
  w.WriteBool(local_specified);
  w.WriteBool(has_cost_hint);
  if (has_cost_hint) {
    w.WriteF64(hint_flops);
    w.WriteF64(hint_bytes);
    w.WriteU64(hint_work_items);
    w.WriteBool(hint_irregular);
  }
  w.WriteU64(elastic_launch_id);
  w.WriteU64(elastic_chunk_id);
  return std::move(w).Take();
}

Expected<LaunchKernelRequest> LaunchKernelRequest::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  LaunchKernelRequest out;
  auto program = r.ReadU64();
  auto name = r.ReadString();
  auto argc = r.ReadU32();
  if (!program.ok() || !name.ok() || !argc.ok()) {
    return Malformed("LaunchKernel");
  }
  out.program_id = *program;
  out.kernel_name = *std::move(name);
  for (std::uint32_t i = 0; i < *argc; ++i) {
    auto kind = r.ReadU8();
    if (!kind.ok() || *kind > 2) return Malformed("LaunchKernel arg");
    WireKernelArg arg;
    arg.kind = static_cast<WireKernelArg::Kind>(*kind);
    switch (arg.kind) {
      case WireKernelArg::Kind::kBuffer: {
        auto id = r.ReadU64();
        auto wbegin = r.ReadU64();
        auto wend = r.ReadU64();
        if (!id.ok() || !wbegin.ok() || !wend.ok()) {
          return Malformed("LaunchKernel arg");
        }
        arg.buffer_id = *id;
        arg.written_begin = *wbegin;
        arg.written_end = *wend;
        break;
      }
      case WireKernelArg::Kind::kScalar: {
        auto data = r.ReadByteVector();
        if (!data.ok()) return Malformed("LaunchKernel arg");
        arg.scalar_bytes = *std::move(data);
        break;
      }
      case WireKernelArg::Kind::kLocalSize: {
        auto size = r.ReadU64();
        if (!size.ok()) return Malformed("LaunchKernel arg");
        arg.local_size = *size;
        break;
      }
    }
    out.args.push_back(std::move(arg));
  }
  auto dim = r.ReadU32();
  if (!dim.ok()) return Malformed("LaunchKernel range");
  out.work_dim = *dim;
  for (int d = 0; d < 3; ++d) {
    auto g = r.ReadU64();
    if (!g.ok()) return Malformed("LaunchKernel range");
    out.global[d] = *g;
  }
  for (int d = 0; d < 3; ++d) {
    auto l = r.ReadU64();
    if (!l.ok()) return Malformed("LaunchKernel range");
    out.local[d] = *l;
  }
  for (int d = 0; d < 3; ++d) {
    auto o = r.ReadU64();
    if (!o.ok()) return Malformed("LaunchKernel range");
    out.global_offset[d] = *o;
  }
  auto spec = r.ReadBool();
  if (!spec.ok()) return Malformed("LaunchKernel range");
  out.local_specified = *spec;
  auto has_hint = r.ReadBool();
  if (!has_hint.ok()) return Malformed("LaunchKernel hint");
  out.has_cost_hint = *has_hint;
  if (out.has_cost_hint) {
    auto flops = r.ReadF64();
    auto bytes = r.ReadF64();
    auto items = r.ReadU64();
    auto irregular = r.ReadBool();
    if (!flops.ok() || !bytes.ok() || !items.ok() || !irregular.ok()) {
      return Malformed("LaunchKernel hint");
    }
    out.hint_flops = *flops;
    out.hint_bytes = *bytes;
    out.hint_work_items = *items;
    out.hint_irregular = *irregular;
  }
  auto elastic_launch = r.ReadU64();
  auto elastic_chunk = r.ReadU64();
  if (!elastic_launch.ok() || !elastic_chunk.ok()) {
    return Malformed("LaunchKernel elastic tag");
  }
  out.elastic_launch_id = *elastic_launch;
  out.elastic_chunk_id = *elastic_chunk;
  return out;
}

std::vector<std::uint8_t> LaunchKernelReply::Encode() const {
  WireWriter w;
  w.WriteI32(status_code);
  w.WriteString(error_message);
  w.WriteF64(modeled_seconds);
  w.WriteF64(modeled_joules);
  w.WriteU64(flops);
  w.WriteU64(bytes_accessed);
  w.WriteF64(node_backlog_seconds);
  w.WriteF64(active_weight);
  return std::move(w).Take();
}

Expected<LaunchKernelReply> LaunchKernelReply::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  LaunchKernelReply out;
  auto code = r.ReadI32();
  auto message = r.ReadString();
  auto seconds = r.ReadF64();
  auto joules = r.ReadF64();
  auto flops = r.ReadU64();
  auto accessed = r.ReadU64();
  auto node_backlog = r.ReadF64();
  auto active = r.ReadF64();
  if (!code.ok() || !message.ok() || !seconds.ok() || !joules.ok() ||
      !flops.ok() || !accessed.ok() || !node_backlog.ok() || !active.ok()) {
    return Malformed("LaunchReply");
  }
  out.status_code = *code;
  out.error_message = *std::move(message);
  out.modeled_seconds = *seconds;
  out.modeled_joules = *joules;
  out.flops = *flops;
  out.bytes_accessed = *accessed;
  out.node_backlog_seconds = *node_backlog;
  out.active_weight = *active;
  return out;
}

std::vector<std::uint8_t> RevokeChunkRequest::Encode() const {
  WireWriter w;
  w.WriteU64(launch_id);
  w.WriteU32(static_cast<std::uint32_t>(chunk_ids.size()));
  for (std::uint64_t id : chunk_ids) w.WriteU64(id);
  return std::move(w).Take();
}

Expected<RevokeChunkRequest> RevokeChunkRequest::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  RevokeChunkRequest out;
  auto launch = r.ReadU64();
  auto count = r.ReadU32();
  if (!launch.ok() || !count.ok()) return Malformed("RevokeChunk");
  out.launch_id = *launch;
  out.chunk_ids.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto id = r.ReadU64();
    if (!id.ok()) return Malformed("RevokeChunk");
    out.chunk_ids.push_back(*id);
  }
  return out;
}

// --------------------------------------------------------------- Monitoring

namespace {

void EncodeKernelRates(WireWriter& w,
                       const std::vector<WireKernelRate>& rates) {
  w.WriteU32(static_cast<std::uint32_t>(rates.size()));
  for (const WireKernelRate& rate : rates) {
    w.WriteString(rate.kernel);
    w.WriteF64(rate.seconds_per_flop);
    w.WriteU64(rate.samples);
  }
}

Expected<std::vector<WireKernelRate>> DecodeKernelRates(WireReader& r) {
  auto count = r.ReadU32();
  if (!count.ok()) return Malformed("kernel rates");
  std::vector<WireKernelRate> rates;
  rates.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto kernel = r.ReadString();
    auto rate = r.ReadF64();
    auto samples = r.ReadU64();
    if (!kernel.ok() || !rate.ok() || !samples.ok()) {
      return Malformed("kernel rate entry");
    }
    rates.push_back({*std::move(kernel), *rate, *samples});
  }
  return rates;
}

}  // namespace

std::vector<std::uint8_t> LoadReply::Encode() const {
  WireWriter w;
  w.WriteU32(queue_depth);
  w.WriteU64(buffers_held);
  w.WriteU64(bytes_allocated);
  w.WriteU64(bytes_resident);
  w.WriteU64(mem_capacity_bytes);
  w.WriteF64(busy_seconds_total);
  w.WriteU64(kernels_executed);
  w.WriteU64(node_resident_bytes);
  w.WriteF64(node_backlog_seconds);
  w.WriteF64(tenant_backlog_seconds);
  w.WriteF64(active_weight);
  EncodeKernelRates(w, kernel_rates);
  return std::move(w).Take();
}

Expected<LoadReply> LoadReply::Decode(const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  LoadReply out;
  auto depth = r.ReadU32();
  auto buffers = r.ReadU64();
  auto alloc = r.ReadU64();
  auto resident = r.ReadU64();
  auto capacity = r.ReadU64();
  auto busy = r.ReadF64();
  auto kernels = r.ReadU64();
  auto node_resident = r.ReadU64();
  auto node_backlog = r.ReadF64();
  auto tenant_backlog = r.ReadF64();
  auto active = r.ReadF64();
  if (!depth.ok() || !buffers.ok() || !alloc.ok() || !resident.ok() ||
      !capacity.ok() || !busy.ok() || !kernels.ok() || !node_resident.ok() ||
      !node_backlog.ok() || !tenant_backlog.ok() || !active.ok()) {
    return Malformed("LoadReply");
  }
  auto rates = DecodeKernelRates(r);
  if (!rates.ok()) return rates.status();
  out.queue_depth = *depth;
  out.buffers_held = *buffers;
  out.bytes_allocated = *alloc;
  out.bytes_resident = *resident;
  out.mem_capacity_bytes = *capacity;
  out.busy_seconds_total = *busy;
  out.kernels_executed = *kernels;
  out.node_resident_bytes = *node_resident;
  out.node_backlog_seconds = *node_backlog;
  out.tenant_backlog_seconds = *tenant_backlog;
  out.active_weight = *active;
  out.kernel_rates = *std::move(rates);
  return out;
}

// ------------------------------------------------------------ Multi-tenancy

std::vector<std::uint8_t> ConfigureSessionRequest::Encode() const {
  WireWriter w;
  w.WriteString(tenant_name);
  w.WriteF64(weight);
  w.WriteU64(mem_quota_bytes);
  return std::move(w).Take();
}

Expected<ConfigureSessionRequest> ConfigureSessionRequest::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  ConfigureSessionRequest out;
  auto name = r.ReadString();
  auto weight = r.ReadF64();
  auto quota = r.ReadU64();
  if (!name.ok() || !weight.ok() || !quota.ok()) {
    return Malformed("ConfigureSession");
  }
  out.tenant_name = *std::move(name);
  out.weight = *weight;
  out.mem_quota_bytes = *quota;
  return out;
}

std::vector<std::uint8_t> BrokerStatsReply::Encode() const {
  WireWriter w;
  w.WriteU64(mem_capacity_bytes);
  w.WriteU64(resident_bytes);
  w.WriteF64(backlog_seconds);
  w.WriteF64(active_weight);
  w.WriteF64(max_backlog_seconds);
  w.WriteU32(static_cast<std::uint32_t>(tenants.size()));
  for (const BrokerTenantEntry& t : tenants) {
    w.WriteU64(t.session);
    w.WriteString(t.name);
    w.WriteF64(t.weight);
    w.WriteU64(t.mem_quota_bytes);
    w.WriteU64(t.resident_bytes);
    w.WriteF64(t.backlog_seconds);
    w.WriteF64(t.served_seconds);
    w.WriteU64(t.launches_admitted);
    w.WriteU64(t.launches_rejected);
    w.WriteU64(t.kernels_completed);
  }
  EncodeKernelRates(w, kernel_rates);
  return std::move(w).Take();
}

Expected<BrokerStatsReply> BrokerStatsReply::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  BrokerStatsReply out;
  auto capacity = r.ReadU64();
  auto resident = r.ReadU64();
  auto backlog = r.ReadF64();
  auto active = r.ReadF64();
  auto limit = r.ReadF64();
  auto count = r.ReadU32();
  if (!capacity.ok() || !resident.ok() || !backlog.ok() || !active.ok() ||
      !limit.ok() || !count.ok()) {
    return Malformed("BrokerStats");
  }
  out.mem_capacity_bytes = *capacity;
  out.resident_bytes = *resident;
  out.backlog_seconds = *backlog;
  out.active_weight = *active;
  out.max_backlog_seconds = *limit;
  out.tenants.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    BrokerTenantEntry t;
    auto session = r.ReadU64();
    auto name = r.ReadString();
    auto weight = r.ReadF64();
    auto quota = r.ReadU64();
    auto tenant_resident = r.ReadU64();
    auto tenant_backlog = r.ReadF64();
    auto served = r.ReadF64();
    auto admitted = r.ReadU64();
    auto rejected = r.ReadU64();
    auto completed = r.ReadU64();
    if (!session.ok() || !name.ok() || !weight.ok() || !quota.ok() ||
        !tenant_resident.ok() || !tenant_backlog.ok() || !served.ok() ||
        !admitted.ok() || !rejected.ok() || !completed.ok()) {
      return Malformed("BrokerStats tenant");
    }
    t.session = *session;
    t.name = *std::move(name);
    t.weight = *weight;
    t.mem_quota_bytes = *quota;
    t.resident_bytes = *tenant_resident;
    t.backlog_seconds = *tenant_backlog;
    t.served_seconds = *served;
    t.launches_admitted = *admitted;
    t.launches_rejected = *rejected;
    t.kernels_completed = *completed;
    out.tenants.push_back(std::move(t));
  }
  auto rates = DecodeKernelRates(r);
  if (!rates.ok()) return rates.status();
  out.kernel_rates = *std::move(rates);
  return out;
}

// ------------------------------------------------------------ Status replies

std::vector<std::uint8_t> StatusReply::Encode() const {
  WireWriter w;
  w.WriteI32(status_code);
  w.WriteString(message);
  return std::move(w).Take();
}

Expected<StatusReply> StatusReply::Decode(
    const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  StatusReply out;
  auto code = r.ReadI32();
  auto message = r.ReadString();
  if (!code.ok() || !message.ok()) return Malformed("StatusReply");
  out.status_code = *code;
  out.message = *std::move(message);
  return out;
}

}  // namespace haocl::net
