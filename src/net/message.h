// Message framing for the communication backbone.
//
// Every unit crossing a node boundary is a Message: a fixed header (magic,
// type, sequence number, session id, payload length) followed by a payload
// encoded with common/wire.h. The same frame format is used by the
// in-process transport and the TCP transport, so the NMP and the host
// runtime are transport-agnostic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace haocl::net {

enum class MsgType : std::uint16_t {
  // Handshake.
  kHelloRequest = 1,
  kHelloReply = 2,
  // Buffer management on a device node.
  kCreateBuffer = 10,
  kWriteBuffer = 11,
  kReadBuffer = 12,
  kReleaseBuffer = 13,
  kCopyBuffer = 14,
  // Node-to-node slice exchange (region directory): the host instructs a
  // node to pull a byte range from a peer / push one to a peer.
  kPullSlice = 15,
  kPushSlice = 16,
  // Tiered-memory reservation/eviction notice: keeps the node's memory
  // pool in lock-step with the host's per-node ledger for residency
  // changes no data transfer makes visible (evictions, discard
  // migrations).
  kMemoryNotice = 17,
  // Program / kernel management.
  kBuildProgram = 20,
  kReleaseProgram = 21,
  kLaunchKernel = 22,
  // Elastic execution: host -> node cancellation of chunk sub-launches the
  // coordinator re-targeted (stolen by a peer, or re-queued after their
  // owner died). Intercepted on the node's receive path so revocation
  // overtakes launches already queued behind long-running work.
  kRevokeChunk = 23,
  // Monitoring (scheduler's runtime information).
  kQueryLoad = 30,
  // Broker introspection: the node's shared ledger, per-tenant serving
  // stats, and shared kernel rates (multi-tenant fairness surface).
  kQueryBroker = 31,
  // Liveness probe: answered immediately on the node's receive path (never
  // queued behind data-plane work), so a timely reply means the node is
  // alive even when its command queue is deep. Paired with the RPC call
  // deadline, a missed reply marks the node dead (kNodeLost).
  kHeartbeat = 32,
  // Session control.
  kOpenSession = 40,
  kCloseSession = 41,
  kShutdown = 42,
  // Tenant registration at session connect: fair-share weight and memory
  // quota the node broker serves this session under.
  kConfigureSession = 43,
  // Replies.
  kStatusReply = 100,  // status only
  kHelloReplyData = 101,
  kReadReply = 102,    // status + bytes
  kBuildReply = 103,   // status + build log + kernel names
  kLaunchReply = 104,  // status + modeled timing
  kLoadReply = 105,    // monitor counters
  kBrokerReply = 106,  // broker ledger + tenant stats + shared rates
};

struct Message {
  MsgType type = MsgType::kStatusReply;
  std::uint64_t seq = 0;      // Request/response matching.
  std::uint64_t session = 0;  // Multi-user isolation.
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::size_t WireSize() const noexcept {
    return kHeaderSize + payload.size();
  }

  static constexpr std::uint32_t kMagic = 0x48414F43;  // "HAOC"
  static constexpr std::size_t kHeaderSize = 4 + 2 + 2 + 8 + 8 + 8;
  // Frames larger than this are rejected as protocol errors (a corrupted
  // length prefix must not make a node try to allocate petabytes).
  static constexpr std::uint64_t kMaxPayload = 1ULL << 32;

  // Serializes header+payload into a flat byte vector (TCP path).
  [[nodiscard]] std::vector<std::uint8_t> Serialize() const;

  // Parses a complete frame. `size` must be exactly one frame.
  static Expected<Message> Deserialize(const void* data, std::size_t size);

  // Parses just the fixed header, returning the payload length so stream
  // transports know how many more bytes to read.
  struct Header {
    MsgType type;
    std::uint64_t seq;
    std::uint64_t session;
    std::uint64_t payload_size;
  };
  static Expected<Header> ParseHeader(const void* data, std::size_t size);
};

const char* MsgTypeName(MsgType type) noexcept;

}  // namespace haocl::net
