// Real TCP transport: POSIX sockets, length-prefixed frames, one reader
// thread per connection. Proves the messaging stack works across genuine
// process boundaries; the examples ship a two-process demo using it.
#pragma once

#include <cstdint>
#include <string>

#include "net/transport.h"

namespace haocl::net {

// Dials host:port (blocking connect). The returned connection is not yet
// started.
Expected<ConnectionPtr> TcpConnect(const std::string& address,
                                   std::uint16_t port);

// Listens on 127.0.0.1:port (or any interface when address is "0.0.0.0").
// Port 0 asks the kernel for an ephemeral port, readable via port().
class TcpListener : public Listener {
 public:
  explicit TcpListener(std::uint16_t port, std::string address = "127.0.0.1");
  ~TcpListener() override;

  Status Start(AcceptHandler handler) override;
  void Stop() override;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint16_t port_;
  std::string address_;
};

}  // namespace haocl::net
