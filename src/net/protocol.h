// Typed request/reply payloads of the host <-> NMP protocol, with wire
// codecs. One struct per message type keeps the NMP's dispatch readable and
// gives the fuzz/failure tests a precise surface.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "common/wire.h"
#include "oclc/vm.h"

namespace haocl::net {

// ---------------------------------------------------------------- Handshake

struct HelloRequest {
  std::string host_name;
  std::uint32_t protocol_version = 1;

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<HelloRequest> Decode(const std::vector<std::uint8_t>& bytes);
};

struct HelloReply {
  std::string node_name;
  NodeType device_type = NodeType::kCpu;
  std::string device_model;
  double compute_gflops = 0.0;
  double mem_bandwidth_gbps = 0.0;
  // Device memory capacity; the host budget for resident regions on this
  // node (0 = unbounded).
  std::uint64_t mem_capacity_bytes = 0;
  // Native SIMD/SIMT width in 32-bit lanes (1 = scalar); schedulers prefer
  // vector-width-multiple partition sizes.
  std::uint32_t simd_width = 1;
  std::uint32_t protocol_version = 1;

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<HelloReply> Decode(const std::vector<std::uint8_t>& bytes);
};

// ------------------------------------------------------------------ Buffers

struct CreateBufferRequest {
  std::uint64_t buffer_id = 0;
  std::uint64_t size = 0;

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<CreateBufferRequest> Decode(
      const std::vector<std::uint8_t>& bytes);
};

struct WriteBufferRequest {
  std::uint64_t buffer_id = 0;
  std::uint64_t offset = 0;
  std::vector<std::uint8_t> data;

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<WriteBufferRequest> Decode(
      const std::vector<std::uint8_t>& bytes);
};

struct ReadBufferRequest {
  std::uint64_t buffer_id = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<ReadBufferRequest> Decode(
      const std::vector<std::uint8_t>& bytes);
};

struct ReleaseBufferRequest {
  std::uint64_t buffer_id = 0;

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<ReleaseBufferRequest> Decode(
      const std::vector<std::uint8_t>& bytes);
};

struct CopyBufferRequest {
  std::uint64_t src_buffer_id = 0;
  std::uint64_t dst_buffer_id = 0;
  std::uint64_t src_offset = 0;
  std::uint64_t dst_offset = 0;
  std::uint64_t size = 0;

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<CopyBufferRequest> Decode(
      const std::vector<std::uint8_t>& bytes);
};

// ------------------------------------------------- Node-to-node exchange

// Host -> node: fetch [offset, offset+size) of `buffer_id` from peer node
// `source_node` into the local replica. The payload never touches the host;
// a node without a link to the peer replies kPeerUnreachable and the host
// falls back to relaying the bytes itself.
struct PullSliceRequest {
  std::uint64_t buffer_id = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint32_t source_node = 0;  // Host-assigned peer index.

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<PullSliceRequest> Decode(
      const std::vector<std::uint8_t>& bytes);
};

// Host -> node: send [offset, offset+size) of the local replica of
// `buffer_id` to peer node `target_node` (which must already hold an
// allocation of the buffer). Mirror image of PullSliceRequest.
struct PushSliceRequest {
  std::uint64_t buffer_id = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint32_t target_node = 0;  // Host-assigned peer index.

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<PushSliceRequest> Decode(
      const std::vector<std::uint8_t>& bytes);
};

// ------------------------------------------------------------ Memory notices

// One byte range of a memory notice.
struct MemoryRegion {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

// Host -> node: align the node's memory-pool ledger with the host's
// per-node accounting. `reserve` charges the regions (a residency change
// with no accompanying payload, e.g. a discard migration); otherwise the
// regions are evicted — the node releases the accounted bytes (the host
// already demoted ownership in the region directory, spilling any sole
// copy to its shadow first).
struct MemoryNoticeRequest {
  std::uint64_t buffer_id = 0;
  bool reserve = false;
  std::vector<MemoryRegion> regions;

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<MemoryNoticeRequest> Decode(
      const std::vector<std::uint8_t>& bytes);
};

// ----------------------------------------------------------------- Programs

struct BuildProgramRequest {
  std::uint64_t program_id = 0;
  std::string source;

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<BuildProgramRequest> Decode(
      const std::vector<std::uint8_t>& bytes);
};

struct BuildProgramReply {
  std::int32_t status_code = 0;  // ErrorCode as int.
  std::string build_log;
  std::vector<std::string> kernel_names;

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<BuildProgramReply> Decode(
      const std::vector<std::uint8_t>& bytes);
};

struct ReleaseProgramRequest {
  std::uint64_t program_id = 0;

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<ReleaseProgramRequest> Decode(
      const std::vector<std::uint8_t>& bytes);
};

// ------------------------------------------------------------------ Kernels

// One kernel argument as shipped over the wire.
struct WireKernelArg {
  enum class Kind : std::uint8_t { kBuffer = 0, kScalar = 1, kLocalSize = 2 };
  Kind kind = Kind::kScalar;
  std::uint64_t buffer_id = 0;                // kBuffer
  std::vector<std::uint8_t> scalar_bytes;     // kScalar (raw, as from
                                              // clSetKernelArg)
  std::uint64_t local_size = 0;               // kLocalSize
  // Byte range of the buffer this launch WRITES (begin == end: read-only).
  // Kernel outputs materialize device memory without any transfer the node
  // could observe, so the node's memory pool charges this range at launch —
  // the same range the host charges in its per-node ledger.
  std::uint64_t written_begin = 0;            // kBuffer
  std::uint64_t written_end = 0;              // kBuffer
};

struct LaunchKernelRequest {
  std::uint64_t program_id = 0;
  std::string kernel_name;
  std::vector<WireKernelArg> args;
  std::uint32_t work_dim = 1;
  std::uint64_t global[3] = {1, 1, 1};
  std::uint64_t local[3] = {1, 1, 1};
  // get_global_id(d) on the node returns global_offset[d] + linear id —
  // how one shard of a partitioned launch runs its slice of the NDRange.
  std::uint64_t global_offset[3] = {0, 0, 0};
  bool local_specified = false;
  // Analytic cost hint for the node's timing model, already scaled to
  // this shard's share of the range (and to any host-side paper-scale
  // amplification). The driver's static instruction-mix estimator cannot
  // see data-dependent trip counts; when the host knows better, the node
  // models THIS work — so the reply's modeled_seconds/flops describe the
  // same work the host's scheduler accounts, and the observed rate fed
  // back per shard is consistent with the cost model's predictions.
  bool has_cost_hint = false;
  double hint_flops = 0.0;
  double hint_bytes = 0.0;
  std::uint64_t hint_work_items = 0;
  bool hint_irregular = false;
  // Elastic-execution tag: non-zero launch id marks this request as one
  // chunk of a host-coordinated elastic launch. A node checks the pair
  // against its revoked-chunk set before running — a revoked chunk is
  // skipped with kChunkRevoked instead of executed twice.
  std::uint64_t elastic_launch_id = 0;
  std::uint64_t elastic_chunk_id = 0;

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<LaunchKernelRequest> Decode(
      const std::vector<std::uint8_t>& bytes);
};

struct LaunchKernelReply {
  std::int32_t status_code = 0;
  std::string error_message;
  double modeled_seconds = 0.0;   // Device-model execution time.
  double modeled_joules = 0.0;    // Energy for the scheduler's power policy.
  std::uint64_t flops = 0;        // Profiled work (heterogeneity-aware
  std::uint64_t bytes_accessed = 0;  // scheduling feeds on these).
  // Broker snapshot piggybacked on every launch reply so the host's
  // fair-share view of the node (ALL tenants' backlog, not just its own)
  // stays fresh without extra monitoring round-trips.
  double node_backlog_seconds = 0.0;  // Admitted-but-unfinished, all tenants.
  double active_weight = 0.0;         // Σ weights of backlogged tenants.

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<LaunchKernelReply> Decode(
      const std::vector<std::uint8_t>& bytes);
};

// Host -> node: the steal coordinator re-targeted these chunks of an
// elastic launch (a peer stole them, or their owner died and survivors
// take over). The node must not run them even if their kLaunchKernel
// requests are already queued; it skips each with kChunkRevoked. The NMP
// answers this on its receive path, ahead of queued data-plane work.
struct RevokeChunkRequest {
  std::uint64_t launch_id = 0;
  std::vector<std::uint64_t> chunk_ids;

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<RevokeChunkRequest> Decode(
      const std::vector<std::uint8_t>& bytes);
};

// --------------------------------------------------------------- Monitoring

// One shared observed kernel rate exported by the node broker: the EWMA
// seconds-per-flop folded from EVERY session's completed launches on the
// node, so a freshly connected session can seed its own rate table from
// its neighbours' experience.
struct WireKernelRate {
  std::string kernel;
  double seconds_per_flop = 0.0;
  std::uint64_t samples = 0;
};

struct LoadReply {
  std::uint32_t queue_depth = 0;       // Commands waiting on the node.
  std::uint64_t buffers_held = 0;
  std::uint64_t bytes_allocated = 0;
  // Memory-pool ledger: bytes of buffer regions THIS session has
  // materialized in device memory, and the capacity they budget against
  // (0 = unbounded).
  std::uint64_t bytes_resident = 0;
  std::uint64_t mem_capacity_bytes = 0;
  double busy_seconds_total = 0.0;     // Modeled device busy time.
  std::uint64_t kernels_executed = 0;
  // ---- Node-broker fields (node-wide, across ALL sessions) ----
  std::uint64_t node_resident_bytes = 0;   // Shared-ledger resident total.
  double node_backlog_seconds = 0.0;       // All tenants' admitted backlog.
  double tenant_backlog_seconds = 0.0;     // The querying session's share.
  double active_weight = 0.0;              // Σ weights, backlogged tenants.
  std::vector<WireKernelRate> kernel_rates;  // Shared observed rates.

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<LoadReply> Decode(const std::vector<std::uint8_t>& bytes);
};

// ------------------------------------------------------------ Multi-tenancy

// Host -> node at session connect: registers the session as a tenant of
// the node broker with its fair-share weight and memory quota. A session
// that never configures runs with weight 1 and no quota.
struct ConfigureSessionRequest {
  std::string tenant_name;
  double weight = 1.0;
  std::uint64_t mem_quota_bytes = 0;  // 0 = no per-tenant cap.

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<ConfigureSessionRequest> Decode(
      const std::vector<std::uint8_t>& bytes);
};

// One tenant's serving stats in a BrokerStatsReply.
struct BrokerTenantEntry {
  std::uint64_t session = 0;
  std::string name;
  double weight = 1.0;
  std::uint64_t mem_quota_bytes = 0;
  std::uint64_t resident_bytes = 0;
  double backlog_seconds = 0.0;
  double served_seconds = 0.0;
  std::uint64_t launches_admitted = 0;
  std::uint64_t launches_rejected = 0;
  std::uint64_t kernels_completed = 0;
};

// Reply to kQueryBroker: the node's shared ledger, admission state,
// per-tenant serving stats, and the shared kernel-rate table.
struct BrokerStatsReply {
  std::uint64_t mem_capacity_bytes = 0;
  std::uint64_t resident_bytes = 0;    // All sessions.
  double backlog_seconds = 0.0;        // All tenants.
  double active_weight = 0.0;
  double max_backlog_seconds = 0.0;    // Admission limit (0 = off).
  std::vector<BrokerTenantEntry> tenants;
  std::vector<WireKernelRate> kernel_rates;

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<BrokerStatsReply> Decode(
      const std::vector<std::uint8_t>& bytes);
};

// ------------------------------------------------------------ Status replies

// Generic status reply used by buffer/session commands.
struct StatusReply {
  std::int32_t status_code = 0;
  std::string message;

  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static Expected<StatusReply> Decode(const std::vector<std::uint8_t>& bytes);

  static StatusReply FromStatus(const Status& status) {
    return StatusReply{static_cast<std::int32_t>(status.code()),
                       status.message()};
  }
  [[nodiscard]] Status ToStatus() const {
    return Status(static_cast<ErrorCode>(status_code), message);
  }
};

}  // namespace haocl::net
