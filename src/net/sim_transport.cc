#include "net/sim_transport.h"

#include <utility>

namespace haocl::net {
namespace {

// Shared state of one direction of the channel.
struct Pipe {
  BlockingQueue<Message> queue;
};

class SimConnection : public Connection {
 public:
  SimConnection(std::shared_ptr<Pipe> tx, std::shared_ptr<Pipe> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  ~SimConnection() override { Close(); }

  Status Send(const Message& message) override {
    if (closed_.load(std::memory_order_acquire)) {
      return Status(ErrorCode::kNodeUnreachable, "connection closed");
    }
    if (tx_->queue.closed()) {
      return Status(ErrorCode::kNodeUnreachable, "peer closed");
    }
    bytes_sent_.fetch_add(message.WireSize(), std::memory_order_relaxed);
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    tx_->queue.Push(message);
    return Status::Ok();
  }

  void Start(MessageHandler handler) override {
    dispatcher_ = std::thread([this, handler = std::move(handler)] {
      while (auto msg = rx_->queue.Pop()) {
        handler(*std::move(msg));
      }
    });
  }

  void Close() override {
    bool expected = false;
    if (!closed_.compare_exchange_strong(expected, true)) {
      // Already closed; still make sure the dispatcher is reaped when
      // Close() races with the destructor.
    }
    tx_->queue.Close();
    rx_->queue.Close();
    if (dispatcher_.joinable()) {
      if (dispatcher_.get_id() == std::this_thread::get_id()) {
        dispatcher_.detach();  // Close() from inside the handler.
      } else {
        dispatcher_.join();
      }
    }
  }

  [[nodiscard]] std::uint64_t bytes_sent() const override {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t messages_sent() const override {
    return messages_sent_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<Pipe> tx_;
  std::shared_ptr<Pipe> rx_;
  std::thread dispatcher_;
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
};

}  // namespace

std::pair<ConnectionPtr, ConnectionPtr> CreateSimChannel() {
  auto a_to_b = std::make_shared<Pipe>();
  auto b_to_a = std::make_shared<Pipe>();
  auto a = std::make_unique<SimConnection>(a_to_b, b_to_a);
  auto b = std::make_unique<SimConnection>(b_to_a, a_to_b);
  return {std::move(a), std::move(b)};
}

SimListener::~SimListener() { Stop(); }

Status SimListener::Start(AcceptHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handler_ = std::move(handler);
  running_ = true;
  return Status::Ok();
}

void SimListener::Stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
  handler_ = nullptr;
}

Expected<ConnectionPtr> SimListener::Connect() {
  AcceptHandler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) {
      return Status(ErrorCode::kNodeUnreachable, "listener not running");
    }
    handler = handler_;
  }
  auto [client, server] = CreateSimChannel();
  handler(std::move(server));
  return std::move(client);
}

}  // namespace haocl::net
