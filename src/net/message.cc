#include "net/message.h"

#include "common/wire.h"

namespace haocl::net {

std::vector<std::uint8_t> Message::Serialize() const {
  WireWriter w(kHeaderSize + payload.size());
  w.WriteU32(kMagic);
  w.WriteU16(static_cast<std::uint16_t>(type));
  w.WriteU16(0);  // flags, reserved
  w.WriteU64(seq);
  w.WriteU64(session);
  w.WriteU64(payload.size());
  std::vector<std::uint8_t> out = std::move(w).Take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Expected<Message::Header> Message::ParseHeader(const void* data,
                                               std::size_t size) {
  if (size < kHeaderSize) {
    return Status(ErrorCode::kProtocolError, "short message header");
  }
  WireReader r(data, size);
  auto magic = r.ReadU32();
  if (!magic.ok() || *magic != kMagic) {
    return Status(ErrorCode::kProtocolError, "bad frame magic");
  }
  Header header{};
  auto type = r.ReadU16();
  auto flags = r.ReadU16();
  auto seq = r.ReadU64();
  auto session = r.ReadU64();
  auto payload_size = r.ReadU64();
  if (!type.ok() || !flags.ok() || !seq.ok() || !session.ok() ||
      !payload_size.ok()) {
    return Status(ErrorCode::kProtocolError, "truncated header");
  }
  if (*payload_size > kMaxPayload) {
    return Status(ErrorCode::kProtocolError,
                  "frame payload exceeds limit: " +
                      std::to_string(*payload_size));
  }
  header.type = static_cast<MsgType>(*type);
  header.seq = *seq;
  header.session = *session;
  header.payload_size = *payload_size;
  return header;
}

Expected<Message> Message::Deserialize(const void* data, std::size_t size) {
  auto header = ParseHeader(data, size);
  if (!header.ok()) return header.status();
  if (size != kHeaderSize + header->payload_size) {
    return Status(ErrorCode::kProtocolError,
                  "frame size mismatch: header claims " +
                      std::to_string(header->payload_size) + " payload, got " +
                      std::to_string(size - kHeaderSize));
  }
  Message msg;
  msg.type = header->type;
  msg.seq = header->seq;
  msg.session = header->session;
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  msg.payload.assign(bytes + kHeaderSize, bytes + size);
  return msg;
}

const char* MsgTypeName(MsgType type) noexcept {
  switch (type) {
    case MsgType::kHelloRequest: return "HelloRequest";
    case MsgType::kHelloReply: return "HelloReply";
    case MsgType::kCreateBuffer: return "CreateBuffer";
    case MsgType::kWriteBuffer: return "WriteBuffer";
    case MsgType::kReadBuffer: return "ReadBuffer";
    case MsgType::kReleaseBuffer: return "ReleaseBuffer";
    case MsgType::kCopyBuffer: return "CopyBuffer";
    case MsgType::kPullSlice: return "PullSlice";
    case MsgType::kPushSlice: return "PushSlice";
    case MsgType::kMemoryNotice: return "MemoryNotice";
    case MsgType::kBuildProgram: return "BuildProgram";
    case MsgType::kReleaseProgram: return "ReleaseProgram";
    case MsgType::kLaunchKernel: return "LaunchKernel";
    case MsgType::kRevokeChunk: return "RevokeChunk";
    case MsgType::kQueryLoad: return "QueryLoad";
    case MsgType::kQueryBroker: return "QueryBroker";
    case MsgType::kHeartbeat: return "Heartbeat";
    case MsgType::kOpenSession: return "OpenSession";
    case MsgType::kCloseSession: return "CloseSession";
    case MsgType::kShutdown: return "Shutdown";
    case MsgType::kConfigureSession: return "ConfigureSession";
    case MsgType::kStatusReply: return "StatusReply";
    case MsgType::kHelloReplyData: return "HelloReplyData";
    case MsgType::kReadReply: return "ReadReply";
    case MsgType::kBuildReply: return "BuildReply";
    case MsgType::kLaunchReply: return "LaunchReply";
    case MsgType::kLoadReply: return "LoadReply";
    case MsgType::kBrokerReply: return "BrokerReply";
  }
  return "?";
}

}  // namespace haocl::net
