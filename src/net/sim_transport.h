// In-process transport: a pair of connections backed by blocking queues,
// each side with its own dispatcher thread. Functionally identical to the
// TCP transport (same Message frames, same ordering guarantees); it stands
// in for the cloud network we cannot provision, while byte/message counters
// feed the virtual-time link model for timing.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "common/sync.h"
#include "net/transport.h"

namespace haocl::net {

// Creates a connected pair: (host side, node side).
std::pair<ConnectionPtr, ConnectionPtr> CreateSimChannel();

// An in-process listener: Connect() synthesizes a channel pair and hands
// the server end to the accept handler — the loopback analogue of dialing
// a node's (address, port) from the cluster configuration file.
class SimListener : public Listener {
 public:
  SimListener() = default;
  ~SimListener() override;

  Status Start(AcceptHandler handler) override;
  void Stop() override;

  // Client side: dial this listener. Returns the client connection, or an
  // error if the listener is not running.
  Expected<ConnectionPtr> Connect();

 private:
  std::mutex mutex_;
  AcceptHandler handler_;
  bool running_ = false;
};

}  // namespace haocl::net
