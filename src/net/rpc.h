// Request/response matching over a Connection.
//
// The paper's host process "sends a message through the message listener,
// [then] waits for the response message and takes the next action" — a
// synchronous RPC. Device-node listeners are asynchronous. RpcClient gives
// the host both styles: Call() blocks, CallAsync() pipelines (the ablation
// benchmark measures the difference).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/sync.h"
#include "net/transport.h"

namespace haocl::net {

class RpcClient {
 public:
  // Takes ownership of the connection and starts its dispatcher.
  explicit RpcClient(ConnectionPtr connection);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  using ReplyFuture = std::shared_ptr<Promise<Expected<Message>>>;

  // Sends a request and returns a future the caller can Wait() on.
  // When a call timeout is configured (SetCallTimeout), the future fails
  // with kNodeLost if no reply arrives within the deadline — a hung or
  // dead peer can no longer park a CallAsync waiter forever.
  ReplyFuture CallAsync(MsgType type, std::uint64_t session,
                        std::vector<std::uint8_t> payload);

  // Arms a per-call deadline on every subsequent CallAsync/Call: a pending
  // RPC unanswered for `timeout` fails with kNodeLost (the liveness
  // layer's signal that the peer is gone). Zero disables (the default, the
  // legacy wait-forever behaviour for async callers).
  void SetCallTimeout(std::chrono::milliseconds timeout);

  // Synchronous convenience: send and wait (with timeout).
  Expected<Message> Call(MsgType type, std::uint64_t session,
                         std::vector<std::uint8_t> payload,
                         std::chrono::milliseconds timeout =
                             std::chrono::milliseconds(30000));

  // One-way message (no reply expected), e.g. shutdown.
  Status Notify(MsgType type, std::uint64_t session,
                std::vector<std::uint8_t> payload);

  void Close();

  [[nodiscard]] std::uint64_t bytes_sent() const {
    return connection_->bytes_sent();
  }
  [[nodiscard]] std::uint64_t messages_sent() const {
    return connection_->messages_sent();
  }

 private:
  struct PendingCall {
    ReplyFuture future;
    MsgType type = MsgType::kStatusReply;  // For the timeout diagnostic.
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
  };

  void OnMessage(Message msg);
  void FailAllPending(const Status& status);
  // Deadline monitor: sleeps until the earliest pending deadline and fails
  // expired calls with kNodeLost. Parked when nothing has a deadline.
  void MonitorLoop();

  ConnectionPtr connection_;
  std::mutex mutex_;
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  std::chrono::milliseconds call_timeout_{0};  // Guarded by mutex_.
  bool stop_monitor_ = false;                  // Guarded by mutex_.
  std::condition_variable monitor_cv_;
  std::thread monitor_;
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<bool> closed_{false};
};

}  // namespace haocl::net
