// Request/response matching over a Connection.
//
// The paper's host process "sends a message through the message listener,
// [then] waits for the response message and takes the next action" — a
// synchronous RPC. Device-node listeners are asynchronous. RpcClient gives
// the host both styles: Call() blocks, CallAsync() pipelines (the ablation
// benchmark measures the difference).
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/sync.h"
#include "net/transport.h"

namespace haocl::net {

class RpcClient {
 public:
  // Takes ownership of the connection and starts its dispatcher.
  explicit RpcClient(ConnectionPtr connection);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  using ReplyFuture = std::shared_ptr<Promise<Expected<Message>>>;

  // Sends a request and returns a future the caller can Wait() on.
  ReplyFuture CallAsync(MsgType type, std::uint64_t session,
                        std::vector<std::uint8_t> payload);

  // Synchronous convenience: send and wait (with timeout).
  Expected<Message> Call(MsgType type, std::uint64_t session,
                         std::vector<std::uint8_t> payload,
                         std::chrono::milliseconds timeout =
                             std::chrono::milliseconds(30000));

  // One-way message (no reply expected), e.g. shutdown.
  Status Notify(MsgType type, std::uint64_t session,
                std::vector<std::uint8_t> payload);

  void Close();

  [[nodiscard]] std::uint64_t bytes_sent() const {
    return connection_->bytes_sent();
  }
  [[nodiscard]] std::uint64_t messages_sent() const {
    return connection_->messages_sent();
  }

 private:
  void OnMessage(Message msg);
  void FailAllPending(const Status& status);

  ConnectionPtr connection_;
  std::mutex mutex_;
  std::unordered_map<std::uint64_t, ReplyFuture> pending_;
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<bool> closed_{false};
};

}  // namespace haocl::net
