#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/log.h"

namespace haocl::net {
namespace {

Status Errno(const std::string& what) {
  return Status(ErrorCode::kNetworkError, what + ": " + std::strerror(errno));
}

// Reads exactly `size` bytes; false on EOF/error.
bool ReadAll(int fd, void* buffer, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(buffer);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, p + done, size - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool WriteAll(int fd, const void* buffer, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(buffer);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, p + done, size - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

class TcpConnection : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpConnection() override { Close(); }

  Status Send(const Message& message) override {
    const std::vector<std::uint8_t> frame = message.Serialize();
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (closed_.load(std::memory_order_acquire)) {
      return Status(ErrorCode::kNodeUnreachable, "connection closed");
    }
    if (!WriteAll(fd_, frame.data(), frame.size())) {
      return Errno("send failed");
    }
    bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }

  void Start(MessageHandler handler) override {
    reader_ = std::thread([this, handler = std::move(handler)] {
      std::uint8_t header[Message::kHeaderSize];
      std::vector<std::uint8_t> frame;
      while (!closed_.load(std::memory_order_acquire)) {
        if (!ReadAll(fd_, header, sizeof(header))) break;
        auto parsed = Message::ParseHeader(header, sizeof(header));
        if (!parsed.ok()) {
          HAOCL_WARN << "dropping connection: "
                     << parsed.status().ToString();
          break;
        }
        frame.assign(header, header + sizeof(header));
        frame.resize(sizeof(header) + parsed->payload_size);
        if (parsed->payload_size != 0 &&
            !ReadAll(fd_, frame.data() + sizeof(header),
                     parsed->payload_size)) {
          break;
        }
        auto msg = Message::Deserialize(frame.data(), frame.size());
        if (!msg.ok()) {
          HAOCL_WARN << "bad frame: " << msg.status().ToString();
          break;
        }
        handler(*std::move(msg));
      }
    });
  }

  void Close() override {
    bool expected = false;
    if (closed_.compare_exchange_strong(expected, true)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
    if (reader_.joinable()) {
      if (reader_.get_id() == std::this_thread::get_id()) {
        reader_.detach();
      } else {
        reader_.join();
      }
    }
    // Close the fd exactly once, after the reader is done with it.
    int fd = fd_.exchange(-1);
    if (fd >= 0) ::close(fd);
  }

  [[nodiscard]] std::uint64_t bytes_sent() const override {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t messages_sent() const override {
    return messages_sent_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> fd_;
  std::mutex write_mutex_;
  std::thread reader_;
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
};

}  // namespace

Expected<ConnectionPtr> TcpConnect(const std::string& address,
                                   std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status(ErrorCode::kInvalidValue, "bad address: " + address);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Errno("connect to " + address + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  return ConnectionPtr(std::make_unique<TcpConnection>(fd));
}

struct TcpListener::Impl {
  int listen_fd = -1;
  std::thread accept_thread;
  std::atomic<bool> running{false};
};

TcpListener::TcpListener(std::uint16_t port, std::string address)
    : impl_(std::make_unique<Impl>()),
      port_(port),
      address_(std::move(address)) {}

TcpListener::~TcpListener() { Stop(); }

Status TcpListener::Start(AcceptHandler handler) {
  impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, address_.c_str(), &addr.sin_addr) != 1) {
    return Status(ErrorCode::kInvalidValue, "bad address: " + address_);
  }
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind port " + std::to_string(port_));
  }
  if (::listen(impl_->listen_fd, 64) != 0) return Errno("listen");

  // Recover the ephemeral port if 0 was requested.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  impl_->running.store(true);
  impl_->accept_thread = std::thread([this, handler = std::move(handler)] {
    while (impl_->running.load(std::memory_order_acquire)) {
      const int fd = ::accept(impl_->listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (impl_->running.load()) {
          HAOCL_WARN << "accept failed: " << std::strerror(errno);
        }
        break;
      }
      handler(std::make_unique<TcpConnection>(fd));
    }
  });
  return Status::Ok();
}

void TcpListener::Stop() {
  if (impl_ == nullptr) return;
  if (impl_->running.exchange(false)) {
    ::shutdown(impl_->listen_fd, SHUT_RDWR);
    ::close(impl_->listen_fd);
  }
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
}

}  // namespace haocl::net
