#include "net/rpc.h"

#include "common/log.h"

namespace haocl::net {

RpcClient::RpcClient(ConnectionPtr connection)
    : connection_(std::move(connection)) {
  connection_->Start([this](Message msg) { OnMessage(std::move(msg)); });
}

RpcClient::~RpcClient() { Close(); }

RpcClient::ReplyFuture RpcClient::CallAsync(MsgType type,
                                            std::uint64_t session,
                                            std::vector<std::uint8_t> payload) {
  auto future = std::make_shared<Promise<Expected<Message>>>();
  Message msg;
  msg.type = type;
  msg.session = session;
  msg.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  msg.payload = std::move(payload);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_[msg.seq] = future;
  }
  Status sent = connection_->Send(msg);
  if (!sent.ok()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_.erase(msg.seq);
    }
    future->Set(Expected<Message>(sent));
  }
  return future;
}

Expected<Message> RpcClient::Call(MsgType type, std::uint64_t session,
                                  std::vector<std::uint8_t> payload,
                                  std::chrono::milliseconds timeout) {
  auto future = CallAsync(type, session, std::move(payload));
  const auto* reply = future->WaitFor(timeout);
  if (reply == nullptr) {
    return Status(ErrorCode::kNetworkError,
                  std::string("RPC timeout for ") + MsgTypeName(type));
  }
  return *reply;
}

Status RpcClient::Notify(MsgType type, std::uint64_t session,
                         std::vector<std::uint8_t> payload) {
  Message msg;
  msg.type = type;
  msg.session = session;
  msg.seq = 0;  // Seq 0 marks one-way traffic.
  msg.payload = std::move(payload);
  return connection_->Send(msg);
}

void RpcClient::OnMessage(Message msg) {
  ReplyFuture future;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pending_.find(msg.seq);
    if (it == pending_.end()) {
      HAOCL_DEBUG << "orphan reply seq=" << msg.seq << " type="
                  << MsgTypeName(msg.type);
      return;
    }
    future = it->second;
    pending_.erase(it);
  }
  future->Set(Expected<Message>(std::move(msg)));
}

void RpcClient::FailAllPending(const Status& status) {
  std::unordered_map<std::uint64_t, ReplyFuture> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    orphaned.swap(pending_);
  }
  for (auto& [seq, future] : orphaned) {
    future->Set(Expected<Message>(status));
  }
}

void RpcClient::Close() {
  if (closed_.exchange(true)) return;
  connection_->Close();
  FailAllPending(Status(ErrorCode::kNodeUnreachable, "client closed"));
}

}  // namespace haocl::net
