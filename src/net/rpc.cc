#include "net/rpc.h"

#include <string>
#include <vector>

#include "common/log.h"

namespace haocl::net {

RpcClient::RpcClient(ConnectionPtr connection)
    : connection_(std::move(connection)) {
  monitor_ = std::thread([this] { MonitorLoop(); });
  connection_->Start([this](Message msg) { OnMessage(std::move(msg)); });
}

RpcClient::~RpcClient() { Close(); }

void RpcClient::SetCallTimeout(std::chrono::milliseconds timeout) {
  std::lock_guard<std::mutex> lock(mutex_);
  call_timeout_ = timeout;
}

RpcClient::ReplyFuture RpcClient::CallAsync(MsgType type,
                                            std::uint64_t session,
                                            std::vector<std::uint8_t> payload) {
  auto future = std::make_shared<Promise<Expected<Message>>>();
  Message msg;
  msg.type = type;
  msg.session = session;
  msg.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  msg.payload = std::move(payload);
  bool armed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PendingCall call;
    call.future = future;
    call.type = type;
    if (call_timeout_.count() > 0) {
      call.has_deadline = true;
      call.deadline = std::chrono::steady_clock::now() + call_timeout_;
      armed = true;
    }
    pending_[msg.seq] = std::move(call);
  }
  if (armed) monitor_cv_.notify_one();
  Status sent = connection_->Send(msg);
  if (!sent.ok()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_.erase(msg.seq);
    }
    future->Set(Expected<Message>(sent));
  }
  return future;
}

Expected<Message> RpcClient::Call(MsgType type, std::uint64_t session,
                                  std::vector<std::uint8_t> payload,
                                  std::chrono::milliseconds timeout) {
  auto future = CallAsync(type, session, std::move(payload));
  const auto* reply = future->WaitFor(timeout);
  if (reply == nullptr) {
    return Status(ErrorCode::kNetworkError,
                  std::string("RPC timeout for ") + MsgTypeName(type));
  }
  return *reply;
}

Status RpcClient::Notify(MsgType type, std::uint64_t session,
                         std::vector<std::uint8_t> payload) {
  Message msg;
  msg.type = type;
  msg.session = session;
  msg.seq = 0;  // Seq 0 marks one-way traffic.
  msg.payload = std::move(payload);
  return connection_->Send(msg);
}

void RpcClient::OnMessage(Message msg) {
  ReplyFuture future;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pending_.find(msg.seq);
    if (it == pending_.end()) {
      HAOCL_DEBUG << "orphan reply seq=" << msg.seq << " type="
                  << MsgTypeName(msg.type);
      return;
    }
    future = std::move(it->second.future);
    pending_.erase(it);
  }
  future->Set(Expected<Message>(std::move(msg)));
}

void RpcClient::MonitorLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_monitor_) {
    const auto now = std::chrono::steady_clock::now();
    auto earliest = std::chrono::steady_clock::time_point::max();
    std::vector<std::pair<ReplyFuture, MsgType>> expired;
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.has_deadline && it->second.deadline <= now) {
        expired.emplace_back(std::move(it->second.future), it->second.type);
        it = pending_.erase(it);
      } else {
        if (it->second.has_deadline) {
          earliest = std::min(earliest, it->second.deadline);
        }
        ++it;
      }
    }
    if (!expired.empty()) {
      // Fail outside the lock: a waiter's continuation may call back in.
      lock.unlock();
      for (auto& [future, type] : expired) {
        future->Set(Expected<Message>(Status(
            ErrorCode::kNodeLost,
            std::string("RPC deadline expired for ") + MsgTypeName(type) +
                ": node presumed lost")));
      }
      lock.lock();
      continue;
    }
    if (earliest == std::chrono::steady_clock::time_point::max()) {
      monitor_cv_.wait(lock);
    } else {
      monitor_cv_.wait_until(lock, earliest);
    }
  }
}

void RpcClient::FailAllPending(const Status& status) {
  std::unordered_map<std::uint64_t, PendingCall> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    orphaned.swap(pending_);
  }
  for (auto& [seq, call] : orphaned) {
    call.future->Set(Expected<Message>(status));
  }
}

void RpcClient::Close() {
  if (closed_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_monitor_ = true;
  }
  monitor_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  connection_->Close();
  FailAllPending(Status(ErrorCode::kNodeUnreachable, "client closed"));
}

}  // namespace haocl::net
