// Status / Expected: lightweight error propagation used across HaoCL.
//
// The OpenCL-facing API layer converts these into `cl_int` error codes; the
// internal layers carry a message alongside the code so failures are
// diagnosable across the wire (an NMP can ship a Status back to the host).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace haocl {

// Mirrors the subset of OpenCL error codes HaoCL can produce, plus
// framework-specific codes in the implementation-defined negative range.
enum class ErrorCode : std::int32_t {
  kOk = 0,
  kDeviceNotFound = -1,
  kDeviceNotAvailable = -2,
  kCompilerNotAvailable = -3,
  kMemObjectAllocationFailure = -4,
  kOutOfResources = -5,
  kOutOfHostMemory = -6,
  kBuildProgramFailure = -11,
  kInvalidValue = -30,
  kInvalidDeviceType = -31,
  kInvalidPlatform = -32,
  kInvalidDevice = -33,
  kInvalidContext = -34,
  kInvalidQueueProperties = -35,
  kInvalidCommandQueue = -36,
  kInvalidMemObject = -38,
  kInvalidProgram = -44,
  kInvalidProgramExecutable = -45,
  kInvalidKernelName = -46,
  kInvalidKernel = -48,
  kInvalidArgIndex = -49,
  kInvalidArgValue = -50,
  kInvalidArgSize = -51,
  kInvalidKernelArgs = -52,
  kInvalidWorkDimension = -53,
  kInvalidWorkGroupSize = -54,
  kInvalidWorkItemSize = -55,
  kInvalidEvent = -58,
  kInvalidOperation = -59,
  kInvalidBufferSize = -61,
  // HaoCL-specific (implementation-defined range).
  kNetworkError = -1001,
  kNodeUnreachable = -1002,
  kProtocolError = -1003,
  kSchedulerError = -1004,
  kInternal = -1005,
  kUnimplemented = -1006,
  // A predecessor in the command graph failed, so this command never ran.
  kDependencyFailed = -1007,
  // A node was asked to exchange a slice with a peer it has no link to
  // (the host falls back to relaying the bytes itself).
  kPeerUnreachable = -1008,
  // The node's broker refused to admit a launch: the node is saturated
  // (admission backlog limit exceeded) and the submitting tenant is over
  // its fair share of the backlog. Transient — resubmit later or steer
  // to another node.
  kBackpressure = -1009,
  // A node stopped responding (RPC deadline expired, heartbeat missed, or
  // the liveness layer declared it dead mid-launch). Work targeting it
  // must be re-queued onto survivors.
  kNodeLost = -1010,
  // A chunk sub-launch was revoked (stolen by a peer or re-queued after
  // its owner died) before the node ran it; the node skipped it.
  kChunkRevoked = -1011,
};

const char* ErrorCodeName(ErrorCode code) noexcept;

// A success-or-error value. Cheap to copy on the success path (no string).
class Status {
 public:
  Status() noexcept = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }

  [[nodiscard]] bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

// A value or a Status. Analogous to std::expected (C++23), built for C++20.
template <typename T>
class Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Expected(Status status) : data_(std::move(status)) {  // NOLINT
    // An OK status carries no value; force a diagnosable error instead.
    if (std::get<Status>(data_).ok()) {
      data_ = Status(ErrorCode::kInternal, "Expected constructed from OK");
    }
  }
  Expected(ErrorCode code, std::string message)
      : data_(Status(code, std::move(message))) {}

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(data_);
  }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& { return std::get<T>(data_); }
  [[nodiscard]] T& value() & { return std::get<T>(data_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(data_)); }

  [[nodiscard]] Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(data_);
  }
  [[nodiscard]] ErrorCode code() const noexcept {
    return ok() ? ErrorCode::kOk : std::get<Status>(data_).code();
  }

  const T* operator->() const { return &std::get<T>(data_); }
  T* operator->() { return &std::get<T>(data_); }
  const T& operator*() const& { return std::get<T>(data_); }
  T& operator*() & { return std::get<T>(data_); }
  T&& operator*() && { return std::get<T>(std::move(data_)); }

 private:
  std::variant<T, Status> data_;
};

// Propagate-on-error helpers, used pervasively in the runtime and NMP.
#define HAOCL_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::haocl::Status _haocl_status = (expr);          \
    if (!_haocl_status.ok()) return _haocl_status;   \
  } while (false)

#define HAOCL_ASSIGN_OR_RETURN(lhs, expr)            \
  auto HAOCL_CONCAT_(_haocl_tmp, __LINE__) = (expr); \
  if (!HAOCL_CONCAT_(_haocl_tmp, __LINE__).ok())     \
    return HAOCL_CONCAT_(_haocl_tmp, __LINE__).status(); \
  lhs = std::move(HAOCL_CONCAT_(_haocl_tmp, __LINE__)).value()

#define HAOCL_CONCAT_INNER_(a, b) a##b
#define HAOCL_CONCAT_(a, b) HAOCL_CONCAT_INNER_(a, b)

}  // namespace haocl
