// Wall-clock stopwatch plus a phase accumulator used by the breakdown
// analysis (Fig. 3): DataCreate / DataTransfer / Compute buckets.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace haocl {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  [[nodiscard]] double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates named durations (virtual or wall time) for breakdown reports.
class PhaseAccumulator {
 public:
  void Add(const std::string& phase, double seconds) {
    auto [it, inserted] = index_.try_emplace(phase, phases_.size());
    if (inserted) phases_.push_back({phase, 0.0});
    phases_[it->second].seconds += seconds;
  }

  [[nodiscard]] double Get(const std::string& phase) const {
    auto it = index_.find(phase);
    return it == index_.end() ? 0.0 : phases_[it->second].seconds;
  }

  [[nodiscard]] double Total() const {
    double total = 0.0;
    for (const auto& p : phases_) total += p.seconds;
    return total;
  }

  struct Entry {
    std::string name;
    double seconds;
  };
  // Insertion order, so reports are stable.
  [[nodiscard]] const std::vector<Entry>& entries() const { return phases_; }

  void Clear() {
    phases_.clear();
    index_.clear();
  }

 private:
  std::vector<Entry> phases_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace haocl
