// Cluster configuration: the paper's host process "reads the address and
// port defined in a system configuration file and creates a message and a
// data listener for each node". This module parses that file format.
//
// Format (one node per line, '#' comments):
//   node <name> <type:cpu|gpu|fpga> <address> <port>
//   option <key> <value>
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace haocl {

enum class NodeType : std::uint8_t { kCpu = 0, kGpu = 1, kFpga = 2 };

const char* NodeTypeName(NodeType type) noexcept;
Expected<NodeType> ParseNodeType(std::string_view text);

struct NodeEntry {
  std::string name;
  NodeType type = NodeType::kCpu;
  std::string address;
  std::uint16_t port = 0;

  friend bool operator==(const NodeEntry&, const NodeEntry&) = default;
};

// Parsed cluster configuration file.
class ClusterConfig {
 public:
  static Expected<ClusterConfig> Parse(std::string_view text);
  static Expected<ClusterConfig> LoadFile(const std::string& path);

  [[nodiscard]] const std::vector<NodeEntry>& nodes() const { return nodes_; }
  [[nodiscard]] std::size_t CountByType(NodeType type) const;

  // Options default when absent; unknown keys are preserved (forward
  // compatibility with user scheduling policies that read custom options).
  [[nodiscard]] std::string GetOption(const std::string& key,
                                      std::string default_value) const;
  [[nodiscard]] std::int64_t GetOptionInt(const std::string& key,
                                          std::int64_t default_value) const;

  void AddNode(NodeEntry entry) { nodes_.push_back(std::move(entry)); }
  void SetOption(std::string key, std::string value) {
    options_[std::move(key)] = std::move(value);
  }

  [[nodiscard]] std::string Serialize() const;

 private:
  std::vector<NodeEntry> nodes_;
  std::unordered_map<std::string, std::string> options_;
};

}  // namespace haocl
