// Fixed-width host SIMD abstraction for the oclc VM's lane-batched engine.
//
// The batch engine stores a work-group's lanes slot-major, so one bytecode
// dispatch walks contiguous rows of 8-byte `Value`s. These wrappers give it
// a portable 4-lane vector tier over those rows: `VecF32`/`VecF64`/`VecI32`
// with load/store/gather/fma/compare/blend, plus a `LaneMask`. The backend
// is chosen at compile time — AVX2, then SSE2, then NEON (aarch64), then a
// plain-scalar fallback — and `-DHAOCL_SIMD_FORCE_SCALAR` (the
// `HAOCL_ENABLE_SIMD=OFF` CMake option) forces the fallback everywhere.
//
// Bit-identity contract: every lane of every operation rounds exactly like
// the scalar code it replaces. f32 work on Value rows is a
// cvt-f64→f32 / op / cvt-f32→f64 sandwich, which reproduces
// `static_cast<float>(v.f)` + float op + implicit widen byte-for-byte
// (both conversions are single correctly-rounded IEEE operations). i32 ops
// wrap in 32 bits and re-canonicalize by sign-extension, matching the
// interpreter's u32-wrap + sign-extend storage. `Fma` is the only
// single-rounding op here; callers that need the interpreter's two separate
// roundings (every VM multiply-add) must use Mul then Add.
//
// Width is fixed at 4 logical lanes on every backend so callers never
// branch on ISA: AVX2 uses 128-bit f32/i32 ops and 256-bit f64 ops, SSE2
// and NEON split the f64 half into two 128-bit registers.
#pragma once

#include <cstdint>
#include <cstring>

#if !defined(HAOCL_SIMD_FORCE_SCALAR)
#if defined(__AVX2__)
#define HAOCL_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define HAOCL_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define HAOCL_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace haocl::simd {

inline constexpr int kWidth = 4;

#if defined(HAOCL_SIMD_AVX2)
inline constexpr bool kEnabled = true;
inline constexpr const char kIsaName[] = "avx2";
#elif defined(HAOCL_SIMD_SSE2)
inline constexpr bool kEnabled = true;
inline constexpr const char kIsaName[] = "sse2";
#elif defined(HAOCL_SIMD_NEON)
inline constexpr bool kEnabled = true;
inline constexpr const char kIsaName[] = "neon";
#else
inline constexpr bool kEnabled = false;
inline constexpr const char kIsaName[] = "scalar";
#endif

// ---------------------------------------------------------------- AVX2

#if defined(HAOCL_SIMD_AVX2)

struct VecI32 {
  __m128i v;
  static VecI32 Load(const std::int32_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static VecI32 Broadcast(std::int32_t x) { return {_mm_set1_epi32(x)}; }
  // Low 32 bits of four consecutive little-endian 64-bit lanes — the shape
  // of a canonical-i32 `Value` row.
  static VecI32 LoadLow64(const void* p) {
    const __m256i wide =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const __m256i packed = _mm256_permutevar8x32_epi32(
        wide, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
    return {_mm256_castsi256_si128(packed)};
  }
  void Store(std::int32_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  void StoreSignExt64(void* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p),
                        _mm256_cvtepi32_epi64(v));
  }
  void StoreZeroExt64(void* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p),
                        _mm256_cvtepu32_epi64(v));
  }
};

inline VecI32 Add(VecI32 a, VecI32 b) { return {_mm_add_epi32(a.v, b.v)}; }
inline VecI32 Sub(VecI32 a, VecI32 b) { return {_mm_sub_epi32(a.v, b.v)}; }
inline VecI32 Mul(VecI32 a, VecI32 b) { return {_mm_mullo_epi32(a.v, b.v)}; }
inline VecI32 And(VecI32 a, VecI32 b) { return {_mm_and_si128(a.v, b.v)}; }
inline VecI32 Or(VecI32 a, VecI32 b) { return {_mm_or_si128(a.v, b.v)}; }
inline VecI32 Not(VecI32 a) {
  return {_mm_xor_si128(a.v, _mm_set1_epi32(-1))};
}
inline VecI32 CmpEq(VecI32 a, VecI32 b) { return {_mm_cmpeq_epi32(a.v, b.v)}; }
inline VecI32 CmpLt(VecI32 a, VecI32 b) { return {_mm_cmplt_epi32(a.v, b.v)}; }
inline VecI32 CmpGt(VecI32 a, VecI32 b) { return {_mm_cmpgt_epi32(a.v, b.v)}; }
inline VecI32 Min(VecI32 a, VecI32 b) { return {_mm_min_epi32(a.v, b.v)}; }
inline VecI32 Max(VecI32 a, VecI32 b) { return {_mm_max_epi32(a.v, b.v)}; }
inline VecI32 Blend(VecI32 mask, VecI32 a, VecI32 b) {
  return {_mm_blendv_epi8(b.v, a.v, mask.v)};
}
inline int MoveMask(VecI32 mask) {
  return _mm_movemask_ps(_mm_castsi128_ps(mask.v));
}

struct VecF32 {
  __m128 v;
  static VecF32 Load(const float* p) { return {_mm_loadu_ps(p)}; }
  static VecF32 Broadcast(float x) { return {_mm_set1_ps(x)}; }
  static VecF32 Gather(const float* base, VecI32 idx) {
    // Masked form with a zeroed source: the plain _mm_i32gather_ps expands
    // through _mm_undefined_ps and trips GCC's -Wmaybe-uninitialized.
    return {_mm_mask_i32gather_ps(_mm_setzero_ps(), base, idx.v,
                                  _mm_castsi128_ps(_mm_set1_epi32(-1)), 4)};
  }
  void Store(float* p) const { _mm_storeu_ps(p, v); }
};

inline VecF32 Add(VecF32 a, VecF32 b) { return {_mm_add_ps(a.v, b.v)}; }
inline VecF32 Sub(VecF32 a, VecF32 b) { return {_mm_sub_ps(a.v, b.v)}; }
inline VecF32 Mul(VecF32 a, VecF32 b) { return {_mm_mul_ps(a.v, b.v)}; }
inline VecF32 Div(VecF32 a, VecF32 b) { return {_mm_div_ps(a.v, b.v)}; }
inline VecF32 Fma(VecF32 a, VecF32 b, VecF32 c) {
#if defined(__FMA__)
  return {_mm_fmadd_ps(a.v, b.v, c.v)};
#else
  return Add(Mul(a, b), c);
#endif
}
inline VecI32 CmpLt(VecF32 a, VecF32 b) {
  return {_mm_castps_si128(_mm_cmplt_ps(a.v, b.v))};
}
inline VecF32 Blend(VecI32 mask, VecF32 a, VecF32 b) {
  return {_mm_blendv_ps(b.v, a.v, _mm_castsi128_ps(mask.v))};
}

struct VecF64 {
  __m256d v;
  static VecF64 Load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static VecF64 Broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static VecF64 Gather(const double* base, VecI32 idx) {
    // Masked form with a zeroed source (see VecF32::Gather).
    return {_mm256_mask_i32gather_pd(
        _mm256_setzero_pd(), base, idx.v,
        _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8)};
  }
  void Store(double* p) const { _mm256_storeu_pd(p, v); }
};

inline VecF64 Add(VecF64 a, VecF64 b) { return {_mm256_add_pd(a.v, b.v)}; }
inline VecF64 Sub(VecF64 a, VecF64 b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline VecF64 Mul(VecF64 a, VecF64 b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline VecF64 Div(VecF64 a, VecF64 b) { return {_mm256_div_pd(a.v, b.v)}; }
inline VecF64 Fma(VecF64 a, VecF64 b, VecF64 c) {
#if defined(__FMA__)
  return {_mm256_fmadd_pd(a.v, b.v, c.v)};
#else
  return Add(Mul(a, b), c);
#endif
}
inline VecF32 ToF32(VecF64 a) { return {_mm256_cvtpd_ps(a.v)}; }
inline VecF64 ToF64(VecF32 a) { return {_mm256_cvtps_pd(a.v)}; }

// ---------------------------------------------------------------- SSE2

#elif defined(HAOCL_SIMD_SSE2)

struct VecI32 {
  __m128i v;
  static VecI32 Load(const std::int32_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static VecI32 Broadcast(std::int32_t x) { return {_mm_set1_epi32(x)}; }
  static VecI32 LoadLow64(const void* p) {
    const unsigned char* bytes = reinterpret_cast<const unsigned char*>(p);
    const __m128i v01 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes));
    const __m128i v23 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 16));
    const __m128i lo01 = _mm_shuffle_epi32(v01, _MM_SHUFFLE(2, 0, 2, 0));
    const __m128i lo23 = _mm_shuffle_epi32(v23, _MM_SHUFFLE(2, 0, 2, 0));
    return {_mm_unpacklo_epi64(lo01, lo23)};
  }
  void Store(std::int32_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  void StoreSignExt64(void* p) const {
    unsigned char* bytes = reinterpret_cast<unsigned char*>(p);
    const __m128i sign = _mm_srai_epi32(v, 31);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(bytes),
                     _mm_unpacklo_epi32(v, sign));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(bytes + 16),
                     _mm_unpackhi_epi32(v, sign));
  }
  void StoreZeroExt64(void* p) const {
    unsigned char* bytes = reinterpret_cast<unsigned char*>(p);
    const __m128i zero = _mm_setzero_si128();
    _mm_storeu_si128(reinterpret_cast<__m128i*>(bytes),
                     _mm_unpacklo_epi32(v, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(bytes + 16),
                     _mm_unpackhi_epi32(v, zero));
  }
};

inline VecI32 Add(VecI32 a, VecI32 b) { return {_mm_add_epi32(a.v, b.v)}; }
inline VecI32 Sub(VecI32 a, VecI32 b) { return {_mm_sub_epi32(a.v, b.v)}; }
inline VecI32 Mul(VecI32 a, VecI32 b) {
  // SSE2 has no 32-bit mullo; build it from two widening 32x32->64 muls.
  const __m128i even = _mm_mul_epu32(a.v, b.v);
  const __m128i odd =
      _mm_mul_epu32(_mm_srli_si128(a.v, 4), _mm_srli_si128(b.v, 4));
  const __m128i even_lo = _mm_shuffle_epi32(even, _MM_SHUFFLE(0, 0, 2, 0));
  const __m128i odd_lo = _mm_shuffle_epi32(odd, _MM_SHUFFLE(0, 0, 2, 0));
  return {_mm_unpacklo_epi32(even_lo, odd_lo)};
}
inline VecI32 And(VecI32 a, VecI32 b) { return {_mm_and_si128(a.v, b.v)}; }
inline VecI32 Or(VecI32 a, VecI32 b) { return {_mm_or_si128(a.v, b.v)}; }
inline VecI32 Not(VecI32 a) {
  return {_mm_xor_si128(a.v, _mm_set1_epi32(-1))};
}
inline VecI32 CmpEq(VecI32 a, VecI32 b) { return {_mm_cmpeq_epi32(a.v, b.v)}; }
inline VecI32 CmpLt(VecI32 a, VecI32 b) { return {_mm_cmplt_epi32(a.v, b.v)}; }
inline VecI32 CmpGt(VecI32 a, VecI32 b) { return {_mm_cmpgt_epi32(a.v, b.v)}; }
inline VecI32 Blend(VecI32 mask, VecI32 a, VecI32 b) {
  return {_mm_or_si128(_mm_and_si128(mask.v, a.v),
                       _mm_andnot_si128(mask.v, b.v))};
}
inline VecI32 Min(VecI32 a, VecI32 b) { return Blend(CmpLt(a, b), a, b); }
inline VecI32 Max(VecI32 a, VecI32 b) { return Blend(CmpGt(a, b), a, b); }
inline int MoveMask(VecI32 mask) {
  return _mm_movemask_ps(_mm_castsi128_ps(mask.v));
}

struct VecF32 {
  __m128 v;
  static VecF32 Load(const float* p) { return {_mm_loadu_ps(p)}; }
  static VecF32 Broadcast(float x) { return {_mm_set1_ps(x)}; }
  static VecF32 Gather(const float* base, VecI32 idx) {
    alignas(16) std::int32_t e[4];
    idx.Store(e);
    alignas(16) float out[4];
    const unsigned char* bytes = reinterpret_cast<const unsigned char*>(base);
    for (int i = 0; i < 4; ++i) {
      std::memcpy(&out[i], bytes + static_cast<std::int64_t>(e[i]) * 4, 4);
    }
    return {_mm_load_ps(out)};
  }
  void Store(float* p) const { _mm_storeu_ps(p, v); }
};

inline VecF32 Add(VecF32 a, VecF32 b) { return {_mm_add_ps(a.v, b.v)}; }
inline VecF32 Sub(VecF32 a, VecF32 b) { return {_mm_sub_ps(a.v, b.v)}; }
inline VecF32 Mul(VecF32 a, VecF32 b) { return {_mm_mul_ps(a.v, b.v)}; }
inline VecF32 Div(VecF32 a, VecF32 b) { return {_mm_div_ps(a.v, b.v)}; }
inline VecF32 Fma(VecF32 a, VecF32 b, VecF32 c) { return Add(Mul(a, b), c); }
inline VecI32 CmpLt(VecF32 a, VecF32 b) {
  return {_mm_castps_si128(_mm_cmplt_ps(a.v, b.v))};
}
inline VecF32 Blend(VecI32 mask, VecF32 a, VecF32 b) {
  const __m128 m = _mm_castsi128_ps(mask.v);
  return {_mm_or_ps(_mm_and_ps(m, a.v), _mm_andnot_ps(m, b.v))};
}

struct VecF64 {
  __m128d lo;
  __m128d hi;
  static VecF64 Load(const double* p) {
    return {_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
  }
  static VecF64 Broadcast(double x) {
    return {_mm_set1_pd(x), _mm_set1_pd(x)};
  }
  static VecF64 Gather(const double* base, VecI32 idx) {
    alignas(16) std::int32_t e[4];
    idx.Store(e);
    alignas(16) double out[4];
    const unsigned char* bytes = reinterpret_cast<const unsigned char*>(base);
    for (int i = 0; i < 4; ++i) {
      std::memcpy(&out[i], bytes + static_cast<std::int64_t>(e[i]) * 8, 8);
    }
    return Load(out);
  }
  void Store(double* p) const {
    _mm_storeu_pd(p, lo);
    _mm_storeu_pd(p + 2, hi);
  }
};

inline VecF64 Add(VecF64 a, VecF64 b) {
  return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
}
inline VecF64 Sub(VecF64 a, VecF64 b) {
  return {_mm_sub_pd(a.lo, b.lo), _mm_sub_pd(a.hi, b.hi)};
}
inline VecF64 Mul(VecF64 a, VecF64 b) {
  return {_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)};
}
inline VecF64 Div(VecF64 a, VecF64 b) {
  return {_mm_div_pd(a.lo, b.lo), _mm_div_pd(a.hi, b.hi)};
}
inline VecF64 Fma(VecF64 a, VecF64 b, VecF64 c) { return Add(Mul(a, b), c); }
inline VecF32 ToF32(VecF64 a) {
  return {_mm_movelh_ps(_mm_cvtpd_ps(a.lo), _mm_cvtpd_ps(a.hi))};
}
inline VecF64 ToF64(VecF32 a) {
  return {_mm_cvtps_pd(a.v),
          _mm_cvtps_pd(_mm_movehl_ps(a.v, a.v))};
}

// ---------------------------------------------------------------- NEON

#elif defined(HAOCL_SIMD_NEON)

struct VecI32 {
  int32x4_t v;
  static VecI32 Load(const std::int32_t* p) { return {vld1q_s32(p)}; }
  static VecI32 Broadcast(std::int32_t x) { return {vdupq_n_s32(x)}; }
  static VecI32 LoadLow64(const void* p) {
    // vld2q deinterleaves: val[0] holds elements 0,2,4,6 — the low words
    // of four little-endian 64-bit lanes.
    const int32x4x2_t both =
        vld2q_s32(reinterpret_cast<const std::int32_t*>(p));
    return {both.val[0]};
  }
  void Store(std::int32_t* p) const { vst1q_s32(p, v); }
  void StoreSignExt64(void* p) const {
    std::int64_t* out = reinterpret_cast<std::int64_t*>(p);
    vst1q_s64(out, vmovl_s32(vget_low_s32(v)));
    vst1q_s64(out + 2, vmovl_s32(vget_high_s32(v)));
  }
  void StoreZeroExt64(void* p) const {
    std::uint64_t* out = reinterpret_cast<std::uint64_t*>(p);
    const uint32x4_t u = vreinterpretq_u32_s32(v);
    vst1q_u64(out, vmovl_u32(vget_low_u32(u)));
    vst1q_u64(out + 2, vmovl_u32(vget_high_u32(u)));
  }
};

inline VecI32 Add(VecI32 a, VecI32 b) { return {vaddq_s32(a.v, b.v)}; }
inline VecI32 Sub(VecI32 a, VecI32 b) { return {vsubq_s32(a.v, b.v)}; }
inline VecI32 Mul(VecI32 a, VecI32 b) { return {vmulq_s32(a.v, b.v)}; }
inline VecI32 And(VecI32 a, VecI32 b) { return {vandq_s32(a.v, b.v)}; }
inline VecI32 Or(VecI32 a, VecI32 b) { return {vorrq_s32(a.v, b.v)}; }
inline VecI32 Not(VecI32 a) { return {vmvnq_s32(a.v)}; }
inline VecI32 CmpEq(VecI32 a, VecI32 b) {
  return {vreinterpretq_s32_u32(vceqq_s32(a.v, b.v))};
}
inline VecI32 CmpLt(VecI32 a, VecI32 b) {
  return {vreinterpretq_s32_u32(vcltq_s32(a.v, b.v))};
}
inline VecI32 CmpGt(VecI32 a, VecI32 b) {
  return {vreinterpretq_s32_u32(vcgtq_s32(a.v, b.v))};
}
inline VecI32 Min(VecI32 a, VecI32 b) { return {vminq_s32(a.v, b.v)}; }
inline VecI32 Max(VecI32 a, VecI32 b) { return {vmaxq_s32(a.v, b.v)}; }
inline VecI32 Blend(VecI32 mask, VecI32 a, VecI32 b) {
  return {vbslq_s32(vreinterpretq_u32_s32(mask.v), a.v, b.v)};
}
inline int MoveMask(VecI32 mask) {
  alignas(16) std::int32_t e[4];
  vst1q_s32(e, mask.v);
  return ((e[0] < 0) ? 1 : 0) | ((e[1] < 0) ? 2 : 0) | ((e[2] < 0) ? 4 : 0) |
         ((e[3] < 0) ? 8 : 0);
}

struct VecF32 {
  float32x4_t v;
  static VecF32 Load(const float* p) { return {vld1q_f32(p)}; }
  static VecF32 Broadcast(float x) { return {vdupq_n_f32(x)}; }
  static VecF32 Gather(const float* base, VecI32 idx) {
    alignas(16) std::int32_t e[4];
    idx.Store(e);
    alignas(16) float out[4];
    const unsigned char* bytes = reinterpret_cast<const unsigned char*>(base);
    for (int i = 0; i < 4; ++i) {
      std::memcpy(&out[i], bytes + static_cast<std::int64_t>(e[i]) * 4, 4);
    }
    return {vld1q_f32(out)};
  }
  void Store(float* p) const { vst1q_f32(p, v); }
};

inline VecF32 Add(VecF32 a, VecF32 b) { return {vaddq_f32(a.v, b.v)}; }
inline VecF32 Sub(VecF32 a, VecF32 b) { return {vsubq_f32(a.v, b.v)}; }
inline VecF32 Mul(VecF32 a, VecF32 b) { return {vmulq_f32(a.v, b.v)}; }
inline VecF32 Div(VecF32 a, VecF32 b) { return {vdivq_f32(a.v, b.v)}; }
inline VecF32 Fma(VecF32 a, VecF32 b, VecF32 c) {
  return {vfmaq_f32(c.v, a.v, b.v)};
}
inline VecI32 CmpLt(VecF32 a, VecF32 b) {
  return {vreinterpretq_s32_u32(vcltq_f32(a.v, b.v))};
}
inline VecF32 Blend(VecI32 mask, VecF32 a, VecF32 b) {
  return {vbslq_f32(vreinterpretq_u32_s32(mask.v), a.v, b.v)};
}

struct VecF64 {
  float64x2_t lo;
  float64x2_t hi;
  static VecF64 Load(const double* p) {
    return {vld1q_f64(p), vld1q_f64(p + 2)};
  }
  static VecF64 Broadcast(double x) {
    return {vdupq_n_f64(x), vdupq_n_f64(x)};
  }
  static VecF64 Gather(const double* base, VecI32 idx) {
    alignas(16) std::int32_t e[4];
    idx.Store(e);
    alignas(16) double out[4];
    const unsigned char* bytes = reinterpret_cast<const unsigned char*>(base);
    for (int i = 0; i < 4; ++i) {
      std::memcpy(&out[i], bytes + static_cast<std::int64_t>(e[i]) * 8, 8);
    }
    return Load(out);
  }
  void Store(double* p) const {
    vst1q_f64(p, lo);
    vst1q_f64(p + 2, hi);
  }
};

inline VecF64 Add(VecF64 a, VecF64 b) {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
inline VecF64 Sub(VecF64 a, VecF64 b) {
  return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
}
inline VecF64 Mul(VecF64 a, VecF64 b) {
  return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
}
inline VecF64 Div(VecF64 a, VecF64 b) {
  return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
}
inline VecF64 Fma(VecF64 a, VecF64 b, VecF64 c) {
  return {vfmaq_f64(c.lo, a.lo, b.lo), vfmaq_f64(c.hi, a.hi, b.hi)};
}
inline VecF32 ToF32(VecF64 a) {
  return {vcombine_f32(vcvt_f32_f64(a.lo), vcvt_f32_f64(a.hi))};
}
inline VecF64 ToF64(VecF32 a) {
  return {vcvt_f64_f32(vget_low_f32(a.v)), vcvt_f64_f32(vget_high_f32(a.v))};
}

// ------------------------------------------------------ scalar fallback

#else

struct VecI32 {
  std::int32_t e[4];
  static VecI32 Load(const std::int32_t* p) {
    VecI32 r;
    std::memcpy(r.e, p, sizeof(r.e));
    return r;
  }
  static VecI32 Broadcast(std::int32_t x) { return {{x, x, x, x}}; }
  static VecI32 LoadLow64(const void* p) {
    VecI32 r;
    const unsigned char* bytes = reinterpret_cast<const unsigned char*>(p);
    for (int i = 0; i < 4; ++i) std::memcpy(&r.e[i], bytes + i * 8, 4);
    return r;
  }
  void Store(std::int32_t* p) const { std::memcpy(p, e, sizeof(e)); }
  void StoreSignExt64(void* p) const {
    unsigned char* bytes = reinterpret_cast<unsigned char*>(p);
    for (int i = 0; i < 4; ++i) {
      const std::int64_t wide = e[i];
      std::memcpy(bytes + i * 8, &wide, 8);
    }
  }
  void StoreZeroExt64(void* p) const {
    unsigned char* bytes = reinterpret_cast<unsigned char*>(p);
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t wide = static_cast<std::uint32_t>(e[i]);
      std::memcpy(bytes + i * 8, &wide, 8);
    }
  }
};

namespace detail {
template <typename V, typename Fn>
inline V Map2I(V a, V b, Fn fn) {
  V r;
  for (int i = 0; i < 4; ++i) r.e[i] = fn(a.e[i], b.e[i]);
  return r;
}
}  // namespace detail

inline VecI32 Add(VecI32 a, VecI32 b) {
  return detail::Map2I(a, b, [](std::int32_t x, std::int32_t y) {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(x) +
                                     static_cast<std::uint32_t>(y));
  });
}
inline VecI32 Sub(VecI32 a, VecI32 b) {
  return detail::Map2I(a, b, [](std::int32_t x, std::int32_t y) {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(x) -
                                     static_cast<std::uint32_t>(y));
  });
}
inline VecI32 Mul(VecI32 a, VecI32 b) {
  return detail::Map2I(a, b, [](std::int32_t x, std::int32_t y) {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(x) *
                                     static_cast<std::uint32_t>(y));
  });
}
inline VecI32 And(VecI32 a, VecI32 b) {
  return detail::Map2I(a, b,
                       [](std::int32_t x, std::int32_t y) { return x & y; });
}
inline VecI32 Or(VecI32 a, VecI32 b) {
  return detail::Map2I(a, b,
                       [](std::int32_t x, std::int32_t y) { return x | y; });
}
inline VecI32 Not(VecI32 a) {
  VecI32 r;
  for (int i = 0; i < 4; ++i) r.e[i] = ~a.e[i];
  return r;
}
inline VecI32 CmpEq(VecI32 a, VecI32 b) {
  return detail::Map2I(
      a, b, [](std::int32_t x, std::int32_t y) { return x == y ? -1 : 0; });
}
inline VecI32 CmpLt(VecI32 a, VecI32 b) {
  return detail::Map2I(
      a, b, [](std::int32_t x, std::int32_t y) { return x < y ? -1 : 0; });
}
inline VecI32 CmpGt(VecI32 a, VecI32 b) {
  return detail::Map2I(
      a, b, [](std::int32_t x, std::int32_t y) { return x > y ? -1 : 0; });
}
inline VecI32 Min(VecI32 a, VecI32 b) {
  return detail::Map2I(
      a, b, [](std::int32_t x, std::int32_t y) { return x < y ? x : y; });
}
inline VecI32 Max(VecI32 a, VecI32 b) {
  return detail::Map2I(
      a, b, [](std::int32_t x, std::int32_t y) { return x > y ? x : y; });
}
inline VecI32 Blend(VecI32 mask, VecI32 a, VecI32 b) {
  VecI32 r;
  for (int i = 0; i < 4; ++i) r.e[i] = mask.e[i] != 0 ? a.e[i] : b.e[i];
  return r;
}
inline int MoveMask(VecI32 mask) {
  int bits = 0;
  for (int i = 0; i < 4; ++i) bits |= (mask.e[i] < 0) ? (1 << i) : 0;
  return bits;
}

struct VecF32 {
  float e[4];
  static VecF32 Load(const float* p) {
    VecF32 r;
    std::memcpy(r.e, p, sizeof(r.e));
    return r;
  }
  static VecF32 Broadcast(float x) { return {{x, x, x, x}}; }
  static VecF32 Gather(const float* base, VecI32 idx) {
    VecF32 r;
    const unsigned char* bytes = reinterpret_cast<const unsigned char*>(base);
    for (int i = 0; i < 4; ++i) {
      std::memcpy(&r.e[i], bytes + static_cast<std::int64_t>(idx.e[i]) * 4, 4);
    }
    return r;
  }
  void Store(float* p) const { std::memcpy(p, e, sizeof(e)); }
};

inline VecF32 Add(VecF32 a, VecF32 b) {
  VecF32 r;
  for (int i = 0; i < 4; ++i) r.e[i] = a.e[i] + b.e[i];
  return r;
}
inline VecF32 Sub(VecF32 a, VecF32 b) {
  VecF32 r;
  for (int i = 0; i < 4; ++i) r.e[i] = a.e[i] - b.e[i];
  return r;
}
inline VecF32 Mul(VecF32 a, VecF32 b) {
  VecF32 r;
  for (int i = 0; i < 4; ++i) r.e[i] = a.e[i] * b.e[i];
  return r;
}
inline VecF32 Div(VecF32 a, VecF32 b) {
  VecF32 r;
  for (int i = 0; i < 4; ++i) r.e[i] = a.e[i] / b.e[i];
  return r;
}
inline VecF32 Fma(VecF32 a, VecF32 b, VecF32 c) { return Add(Mul(a, b), c); }
inline VecI32 CmpLt(VecF32 a, VecF32 b) {
  VecI32 r;
  for (int i = 0; i < 4; ++i) r.e[i] = a.e[i] < b.e[i] ? -1 : 0;
  return r;
}
inline VecF32 Blend(VecI32 mask, VecF32 a, VecF32 b) {
  VecF32 r;
  for (int i = 0; i < 4; ++i) r.e[i] = mask.e[i] != 0 ? a.e[i] : b.e[i];
  return r;
}

struct VecF64 {
  double e[4];
  static VecF64 Load(const double* p) {
    VecF64 r;
    std::memcpy(r.e, p, sizeof(r.e));
    return r;
  }
  static VecF64 Broadcast(double x) { return {{x, x, x, x}}; }
  static VecF64 Gather(const double* base, VecI32 idx) {
    VecF64 r;
    const unsigned char* bytes = reinterpret_cast<const unsigned char*>(base);
    for (int i = 0; i < 4; ++i) {
      std::memcpy(&r.e[i], bytes + static_cast<std::int64_t>(idx.e[i]) * 8, 8);
    }
    return r;
  }
  void Store(double* p) const { std::memcpy(p, e, sizeof(e)); }
};

inline VecF64 Add(VecF64 a, VecF64 b) {
  VecF64 r;
  for (int i = 0; i < 4; ++i) r.e[i] = a.e[i] + b.e[i];
  return r;
}
inline VecF64 Sub(VecF64 a, VecF64 b) {
  VecF64 r;
  for (int i = 0; i < 4; ++i) r.e[i] = a.e[i] - b.e[i];
  return r;
}
inline VecF64 Mul(VecF64 a, VecF64 b) {
  VecF64 r;
  for (int i = 0; i < 4; ++i) r.e[i] = a.e[i] * b.e[i];
  return r;
}
inline VecF64 Div(VecF64 a, VecF64 b) {
  VecF64 r;
  for (int i = 0; i < 4; ++i) r.e[i] = a.e[i] / b.e[i];
  return r;
}
inline VecF64 Fma(VecF64 a, VecF64 b, VecF64 c) { return Add(Mul(a, b), c); }
inline VecF32 ToF32(VecF64 a) {
  VecF32 r;
  for (int i = 0; i < 4; ++i) r.e[i] = static_cast<float>(a.e[i]);
  return r;
}
inline VecF64 ToF64(VecF32 a) {
  VecF64 r;
  for (int i = 0; i < 4; ++i) r.e[i] = a.e[i];
  return r;
}

#endif

// --------------------------------------------------------- shared bits

inline bool AllTrue(VecI32 mask) { return MoveMask(mask) == 0xF; }
inline bool AnyTrue(VecI32 mask) { return MoveMask(mask) != 0; }

// One bit per logical lane; the engine-facing shape of a vector compare.
struct LaneMask {
  std::uint32_t bits = 0;
  static LaneMask FromVec(VecI32 mask) {
    return {static_cast<std::uint32_t>(MoveMask(mask))};
  }
  static LaneMask All() { return {0xFu}; }
  [[nodiscard]] bool Test(int lane) const {
    return (bits >> lane & 1u) != 0;
  }
  [[nodiscard]] bool Any() const { return bits != 0; }
  [[nodiscard]] bool AllSet() const { return bits == 0xFu; }
  [[nodiscard]] int Count() const {
    int n = 0;
    for (std::uint32_t b = bits; b != 0; b &= b - 1) ++n;
    return n;
  }
};

// Horizontal reductions used by whole-chunk bounds prechecks.
inline std::int32_t HMin(VecI32 v) {
  alignas(16) std::int32_t e[4];
  v.Store(e);
  std::int32_t m = e[0];
  for (int i = 1; i < 4; ++i) m = e[i] < m ? e[i] : m;
  return m;
}
inline std::int32_t HMax(VecI32 v) {
  alignas(16) std::int32_t e[4];
  v.Store(e);
  std::int32_t m = e[0];
  for (int i = 1; i < 4; ++i) m = e[i] > m ? e[i] : m;
  return m;
}

}  // namespace haocl::simd
