#include "common/status.h"

namespace haocl {

const char* ErrorCodeName(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kDeviceNotFound: return "DEVICE_NOT_FOUND";
    case ErrorCode::kDeviceNotAvailable: return "DEVICE_NOT_AVAILABLE";
    case ErrorCode::kCompilerNotAvailable: return "COMPILER_NOT_AVAILABLE";
    case ErrorCode::kMemObjectAllocationFailure:
      return "MEM_OBJECT_ALLOCATION_FAILURE";
    case ErrorCode::kOutOfResources: return "OUT_OF_RESOURCES";
    case ErrorCode::kOutOfHostMemory: return "OUT_OF_HOST_MEMORY";
    case ErrorCode::kBuildProgramFailure: return "BUILD_PROGRAM_FAILURE";
    case ErrorCode::kInvalidValue: return "INVALID_VALUE";
    case ErrorCode::kInvalidDeviceType: return "INVALID_DEVICE_TYPE";
    case ErrorCode::kInvalidPlatform: return "INVALID_PLATFORM";
    case ErrorCode::kInvalidDevice: return "INVALID_DEVICE";
    case ErrorCode::kInvalidContext: return "INVALID_CONTEXT";
    case ErrorCode::kInvalidQueueProperties: return "INVALID_QUEUE_PROPERTIES";
    case ErrorCode::kInvalidCommandQueue: return "INVALID_COMMAND_QUEUE";
    case ErrorCode::kInvalidMemObject: return "INVALID_MEM_OBJECT";
    case ErrorCode::kInvalidProgram: return "INVALID_PROGRAM";
    case ErrorCode::kInvalidProgramExecutable:
      return "INVALID_PROGRAM_EXECUTABLE";
    case ErrorCode::kInvalidKernelName: return "INVALID_KERNEL_NAME";
    case ErrorCode::kInvalidKernel: return "INVALID_KERNEL";
    case ErrorCode::kInvalidArgIndex: return "INVALID_ARG_INDEX";
    case ErrorCode::kInvalidArgValue: return "INVALID_ARG_VALUE";
    case ErrorCode::kInvalidArgSize: return "INVALID_ARG_SIZE";
    case ErrorCode::kInvalidKernelArgs: return "INVALID_KERNEL_ARGS";
    case ErrorCode::kInvalidWorkDimension: return "INVALID_WORK_DIMENSION";
    case ErrorCode::kInvalidWorkGroupSize: return "INVALID_WORK_GROUP_SIZE";
    case ErrorCode::kInvalidWorkItemSize: return "INVALID_WORK_ITEM_SIZE";
    case ErrorCode::kInvalidEvent: return "INVALID_EVENT";
    case ErrorCode::kInvalidOperation: return "INVALID_OPERATION";
    case ErrorCode::kInvalidBufferSize: return "INVALID_BUFFER_SIZE";
    case ErrorCode::kNetworkError: return "NETWORK_ERROR";
    case ErrorCode::kNodeUnreachable: return "NODE_UNREACHABLE";
    case ErrorCode::kProtocolError: return "PROTOCOL_ERROR";
    case ErrorCode::kSchedulerError: return "SCHEDULER_ERROR";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kDependencyFailed: return "DEPENDENCY_FAILED";
    case ErrorCode::kPeerUnreachable: return "PEER_UNREACHABLE";
    case ErrorCode::kBackpressure: return "BACKPRESSURE";
    case ErrorCode::kNodeLost: return "NODE_LOST";
    case ErrorCode::kChunkRevoked: return "CHUNK_REVOKED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace haocl
