// Small concurrency primitives shared by the backbone, NMP, and runtime.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace haocl {

// Unbounded MPMC blocking queue. Close() releases all waiters; a closed
// queue still drains already-enqueued items (so NMP shutdown finishes
// in-flight commands).
template <typename T>
class BlockingQueue {
 public:
  void Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;  // Dropped: producers after close have no receiver.
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking variant.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

// Single-assignment value a waiter can block on; the backbone uses this to
// match asynchronous responses to requests.
template <typename T>
class Promise {
 public:
  void Set(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (value_.has_value()) return;  // First writer wins.
      value_ = std::move(value);
    }
    cv_.notify_all();
  }

  const T& Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return value_.has_value(); });
    return *value_;
  }

  template <typename Rep, typename Period>
  const T* WaitFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_for(lock, timeout, [this] { return value_.has_value(); })) {
      return nullptr;
    }
    return &*value_;
  }

  [[nodiscard]] bool Ready() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return value_.has_value();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<T> value_;
};

}  // namespace haocl
