// Wire-format serialization for the communication backbone.
//
// Everything that crosses a node boundary (API-call message packages, data
// packages, responses) is encoded with these primitives: little-endian fixed
// width integers, length-prefixed byte strings, and length-prefixed
// containers. The format is deliberately simple so both the real TCP
// transport and the simulated transport share one codec, and so a truncated
// or corrupted frame is detected instead of read out of bounds.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace haocl {

// Overflow-safe range check shared by the API shim and the host runtime:
// true when [offset, offset + size) does not fit in [0, total). Written
// without computing offset + size, which could wrap.
[[nodiscard]] constexpr bool RangeExceeds(std::uint64_t offset,
                                          std::uint64_t size,
                                          std::uint64_t total) {
  return offset > total || size > total - offset;
}

// Append-only encoder.
class WireWriter {
 public:
  WireWriter() = default;
  explicit WireWriter(std::size_t reserve) { bytes_.reserve(reserve); }

  template <typename T>
  void WriteFixed(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    unsigned char raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    bytes_.insert(bytes_.end(), raw, raw + sizeof(T));
  }

  void WriteU8(std::uint8_t v) { WriteFixed(v); }
  void WriteU16(std::uint16_t v) { WriteFixed(v); }
  void WriteU32(std::uint32_t v) { WriteFixed(v); }
  void WriteU64(std::uint64_t v) { WriteFixed(v); }
  void WriteI32(std::int32_t v) { WriteFixed(v); }
  void WriteI64(std::int64_t v) { WriteFixed(v); }
  void WriteF64(double v) { WriteFixed(v); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  void WriteString(std::string_view s) {
    WriteU32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  void WriteBytes(const void* data, std::size_t size) {
    WriteU64(size);
    const auto* p = static_cast<const unsigned char*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  void WriteByteVector(const std::vector<std::uint8_t>& v) {
    WriteBytes(v.data(), v.size());
  }

  template <typename T>
  void WriteFixedVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU32(static_cast<std::uint32_t>(v.size()));
    for (const T& item : v) WriteFixed(item);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const& {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> Take() && { return std::move(bytes_); }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

// Bounds-checked decoder over a borrowed byte span.
class WireReader {
 public:
  WireReader(const void* data, std::size_t size)
      : data_(static_cast<const std::uint8_t*>(data)), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  template <typename T>
  Expected<T> ReadFixed() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > size_) return Truncated("fixed");
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  Expected<std::uint8_t> ReadU8() { return ReadFixed<std::uint8_t>(); }
  Expected<std::uint16_t> ReadU16() { return ReadFixed<std::uint16_t>(); }
  Expected<std::uint32_t> ReadU32() { return ReadFixed<std::uint32_t>(); }
  Expected<std::uint64_t> ReadU64() { return ReadFixed<std::uint64_t>(); }
  Expected<std::int32_t> ReadI32() { return ReadFixed<std::int32_t>(); }
  Expected<std::int64_t> ReadI64() { return ReadFixed<std::int64_t>(); }
  Expected<double> ReadF64() { return ReadFixed<double>(); }
  Expected<bool> ReadBool() {
    auto v = ReadU8();
    if (!v.ok()) return v.status();
    return *v != 0;
  }

  Expected<std::string> ReadString() {
    auto len = ReadU32();
    if (!len.ok()) return len.status();
    if (pos_ + *len > size_) return Truncated("string");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), *len);
    pos_ += *len;
    return s;
  }

  Expected<std::vector<std::uint8_t>> ReadByteVector() {
    auto len = ReadU64();
    if (!len.ok()) return len.status();
    if (pos_ + *len > size_) return Truncated("bytes");
    std::vector<std::uint8_t> v(data_ + pos_, data_ + pos_ + *len);
    pos_ += *len;
    return v;
  }

  template <typename T>
  Expected<std::vector<T>> ReadFixedVector() {
    auto count = ReadU32();
    if (!count.ok()) return count.status();
    if (pos_ + static_cast<std::size_t>(*count) * sizeof(T) > size_) {
      return Truncated("vector");
    }
    std::vector<T> v;
    v.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      v.push_back(ReadFixed<T>().value());
    }
    return v;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool AtEnd() const noexcept { return pos_ == size_; }

 private:
  static Status Truncated(const char* what) {
    return Status(ErrorCode::kProtocolError,
                  std::string("truncated wire data reading ") + what);
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace haocl
