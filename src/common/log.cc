#include "common/log.h"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace haocl {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_write_mutex;

const char* LevelTag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal
}  // namespace haocl
