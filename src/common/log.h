// Minimal leveled logger. Thread-safe, writes to stderr. Severity is
// controlled globally (benchmarks silence it; tests can capture it).
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace haocl {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

namespace internal {

// One log statement. Accumulates into a stream, emits on destruction so a
// single write() keeps concurrent log lines from interleaving.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogSink {
  // Swallows the streamed expression when the level is disabled.
  void operator&(const LogMessage&) const noexcept {}
};

}  // namespace internal

#define HAOCL_LOG_ENABLED(level) \
  (static_cast<int>(level) >= static_cast<int>(::haocl::GetLogLevel()))

#define HAOCL_LOG(level)                                       \
  !HAOCL_LOG_ENABLED(::haocl::LogLevel::level)                 \
      ? (void)0                                                \
      : ::haocl::internal::LogSink() &                         \
            ::haocl::internal::LogMessage(::haocl::LogLevel::level, \
                                          __FILE__, __LINE__)

#define HAOCL_DEBUG HAOCL_LOG(kDebug)
#define HAOCL_INFO HAOCL_LOG(kInfo)
#define HAOCL_WARN HAOCL_LOG(kWarn)
#define HAOCL_ERROR HAOCL_LOG(kError)

}  // namespace haocl
