#include "common/config.h"

#include <charconv>
#include <fstream>
#include <sstream>

namespace haocl {
namespace {

std::vector<std::string_view> SplitWhitespace(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

}  // namespace

const char* NodeTypeName(NodeType type) noexcept {
  switch (type) {
    case NodeType::kCpu: return "cpu";
    case NodeType::kGpu: return "gpu";
    case NodeType::kFpga: return "fpga";
  }
  return "unknown";
}

Expected<NodeType> ParseNodeType(std::string_view text) {
  if (text == "cpu") return NodeType::kCpu;
  if (text == "gpu") return NodeType::kGpu;
  if (text == "fpga") return NodeType::kFpga;
  return Status(ErrorCode::kInvalidValue,
                "unknown node type: " + std::string(text));
}

Expected<ClusterConfig> ClusterConfig::Parse(std::string_view text) {
  ClusterConfig config;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;

    if (std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    auto tokens = SplitWhitespace(line);
    if (tokens.empty()) continue;

    auto error = [&](const std::string& what) {
      return Status(ErrorCode::kInvalidValue,
                    "config line " + std::to_string(line_no) + ": " + what);
    };

    if (tokens[0] == "node") {
      if (tokens.size() != 5) return error("expected: node NAME TYPE ADDR PORT");
      auto type = ParseNodeType(tokens[2]);
      if (!type.ok()) return error(type.status().message());
      std::uint32_t port = 0;
      auto [ptr, ec] = std::from_chars(
          tokens[4].data(), tokens[4].data() + tokens[4].size(), port);
      if (ec != std::errc() || ptr != tokens[4].data() + tokens[4].size() ||
          port > 65535) {
        return error("bad port: " + std::string(tokens[4]));
      }
      config.nodes_.push_back(NodeEntry{std::string(tokens[1]), *type,
                                        std::string(tokens[3]),
                                        static_cast<std::uint16_t>(port)});
    } else if (tokens[0] == "option") {
      if (tokens.size() != 3) return error("expected: option KEY VALUE");
      config.options_[std::string(tokens[1])] = std::string(tokens[2]);
    } else {
      return error("unknown directive: " + std::string(tokens[0]));
    }
  }
  return config;
}

Expected<ClusterConfig> ClusterConfig::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status(ErrorCode::kInvalidValue, "cannot open config: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

std::size_t ClusterConfig::CountByType(NodeType type) const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.type == type) ++n;
  }
  return n;
}

std::string ClusterConfig::GetOption(const std::string& key,
                                     std::string default_value) const {
  auto it = options_.find(key);
  return it == options_.end() ? std::move(default_value) : it->second;
}

std::int64_t ClusterConfig::GetOptionInt(const std::string& key,
                                         std::int64_t default_value) const {
  auto it = options_.find(key);
  if (it == options_.end()) return default_value;
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(
      it->second.data(), it->second.data() + it->second.size(), value);
  if (ec != std::errc() || ptr != it->second.data() + it->second.size()) {
    return default_value;
  }
  return value;
}

std::string ClusterConfig::Serialize() const {
  std::ostringstream out;
  for (const auto& node : nodes_) {
    out << "node " << node.name << " " << NodeTypeName(node.type) << " "
        << node.address << " " << node.port << "\n";
  }
  for (const auto& [key, value] : options_) {
    out << "option " << key << " " << value << "\n";
  }
  return out.str();
}

}  // namespace haocl
