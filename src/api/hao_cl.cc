// Implementation of the OpenCL Wrapper Lib over ClusterRuntime.
//
// Execution model: every clEnqueue* defers into the runtime's command
// graph. A _cl_command_queue is a real in-order queue — each enqueue
// depends on the queue's previous command plus its event wait list — and a
// _cl_event is a handle onto a graph command, so clFlush/clFinish/
// clWaitForEvents and the CL_PROFILING_COMMAND_* stamps carry their
// standard semantics. Blocking read/write flags decide whether the call
// waits for the command or returns while the node RPCs are still in
// flight. Handles are heap objects with a magic tag (so a wrong handle
// fails with the right CL_INVALID_* code instead of crashing) and an
// atomic refcount driven by the standard clRetain*/clRelease* calls.
#include "api/hao_cl.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "api/runtime_binding.h"
#include "common/wire.h"
#include "host/cluster_runtime.h"
#include "host/command_graph.h"
#include "oclc/bytecode.h"

namespace {

constexpr std::uint32_t kPlatformMagic = 0x504C4154;  // 'PLAT'
constexpr std::uint32_t kDeviceMagic = 0x44455649;    // 'DEVI'
constexpr std::uint32_t kContextMagic = 0x43545854;   // 'CTXT'
constexpr std::uint32_t kQueueMagic = 0x51554555;     // 'QUEU'
constexpr std::uint32_t kMemMagic = 0x4D454D4F;       // 'MEMO'
constexpr std::uint32_t kProgramMagic = 0x50524F47;   // 'PROG'
constexpr std::uint32_t kKernelMagic = 0x4B524E4C;    // 'KRNL'
constexpr std::uint32_t kEventMagic = 0x45564E54;     // 'EVNT'
constexpr std::uint32_t kDeadMagic = 0xDEADDEAD;

constexpr int kClusterDeviceIndex = -1;  // The virtual scheduler device.

}  // namespace

// Handle layouts. The leading magic field doubles as a liveness tag.
struct _cl_platform_id {
  std::uint32_t magic = kPlatformMagic;
};

struct _cl_device_id {
  std::uint32_t magic = kDeviceMagic;
  int node_index = kClusterDeviceIndex;
  cl_device_type type = CL_DEVICE_TYPE_CUSTOM;
  std::string name;
  // Honest memory sizes from the tiered-memory subsystem: the node's
  // reported device capacity (the virtual cluster device reports the
  // cluster-wide sum). 0 = the node never reported one.
  std::uint64_t global_mem_bytes = 0;
  std::uint64_t max_alloc_bytes = 0;
};

struct _cl_context {
  std::uint32_t magic = kContextMagic;
  std::atomic<int> refs{1};
  std::vector<cl_device_id> devices;
};

struct _cl_command_queue {
  std::uint32_t magic = kQueueMagic;
  std::atomic<int> refs{1};
  cl_context context = nullptr;
  cl_device_id device = nullptr;
  bool profiling = false;
  // Runtime this queue's commands live in (see _cl_event::origin).
  void* origin = nullptr;
  // In-order queue: each enqueue chains on the previous one; clFinish
  // waits for the tail. Guarded by mutex (enqueues may race).
  std::mutex mutex;
  haocl::host::CommandHandle tail;
};

struct _cl_mem {
  std::uint32_t magic = kMemMagic;
  std::atomic<int> refs{1};
  haocl::host::BufferId buffer = 0;
  size_t size = 0;
};

struct _cl_program {
  std::uint32_t magic = kProgramMagic;
  std::atomic<int> refs{1};
  std::string source;
  haocl::host::ProgramId program = 0;
  bool built = false;
  cl_int build_status = CL_SUCCESS;
};

struct _cl_kernel {
  std::uint32_t magic = kKernelMagic;
  std::atomic<int> refs{1};
  cl_program program = nullptr;
  std::string name;
  const haocl::oclc::CompiledFunction* info = nullptr;
  std::vector<std::optional<haocl::host::KernelArgValue>> args;
  // Sticky per-arg access annotations (clSetKernelArgAccessPatternHAOCL);
  // applied to buffer args at enqueue time.
  struct ArgAccess {
    haocl::host::KernelArgValue::Access access =
        haocl::host::KernelArgValue::Access::kReplicated;
    std::uint64_t stride = 0;
  };
  std::vector<ArgAccess> access;
};

struct _cl_event {
  std::uint32_t magic = kEventMagic;
  std::atomic<int> refs{1};
  haocl::host::CommandHandle cmd;  // The graph command this event tracks.
  // Runtime the command belongs to. Command ids restart per runtime, so an
  // event from a previous binding must never be resolved against a newer
  // one (it would alias an unrelated command).
  void* origin = nullptr;
  bool user = false;               // Created by clCreateUserEvent.
  // Cached terminal state; filled once the command retires so the event
  // stays queryable after the runtime unbinds. Guarded by mutex.
  std::mutex mutex;
  bool resolved = false;
  cl_int exec_status = CL_QUEUED;
  // Virtual-time stamps in seconds (reported in ns via profiling info).
  double queued = 0.0;
  double submit = 0.0;
  double start = 0.0;
  double end = 0.0;
};

namespace haocl::api {
namespace {

struct ApiState {
  std::mutex mutex;
  host::ClusterRuntime* runtime = nullptr;
  std::unique_ptr<host::SimCluster> owned_cluster;
  _cl_platform_id platform;
  std::vector<std::unique_ptr<_cl_device_id>> devices;
};

ApiState& State() {
  static auto* state = new ApiState();
  return *state;
}

void RebuildDeviceTable() {
  ApiState& state = State();
  state.devices.clear();
  if (state.runtime == nullptr) return;
  // Device 0: the virtual cluster device (scheduler decides placement) —
  // unmodified applications that take the first device get transparent
  // cluster-wide scheduling.
  auto cluster = std::make_unique<_cl_device_id>();
  cluster->node_index = kClusterDeviceIndex;
  cluster->type = CL_DEVICE_TYPE_DEFAULT;
  cluster->name = "HaoCL Cluster (" +
                  std::to_string(state.runtime->devices().size()) + " nodes)";
  // The cluster device's global memory is the sum of the node capacities
  // (any node without a reported capacity makes it unbounded — reported
  // as the legacy 8 GiB placeholder so queries stay sane).
  std::uint64_t cluster_bytes = 0;
  bool bounded = !state.runtime->devices().empty();
  for (const host::DeviceInfo& info : state.runtime->devices()) {
    if (info.mem_capacity_bytes == 0) {
      bounded = false;
      break;
    }
    cluster_bytes += info.mem_capacity_bytes;
  }
  cluster->global_mem_bytes = bounded ? cluster_bytes : 8ull << 30;
  cluster->max_alloc_bytes = cluster->global_mem_bytes;
  _cl_device_id* cluster_raw = cluster.get();
  state.devices.push_back(std::move(cluster));
  for (std::size_t i = 0; i < state.runtime->devices().size(); ++i) {
    const host::DeviceInfo& info = state.runtime->devices()[i];
    auto device = std::make_unique<_cl_device_id>();
    device->node_index = static_cast<int>(i);
    switch (info.type) {
      case NodeType::kCpu: device->type = CL_DEVICE_TYPE_CPU; break;
      case NodeType::kGpu: device->type = CL_DEVICE_TYPE_GPU; break;
      case NodeType::kFpga: device->type = CL_DEVICE_TYPE_ACCELERATOR; break;
    }
    device->name = info.name + " (" + info.model + ")";
    device->global_mem_bytes = info.mem_capacity_bytes != 0
                                   ? info.mem_capacity_bytes
                                   : cluster_raw->global_mem_bytes;
    device->max_alloc_bytes = device->global_mem_bytes;
    state.devices.push_back(std::move(device));
  }
}

}  // namespace

// Snapshot of device handles matching an OpenCL device-type query. The
// virtual cluster device matches DEFAULT and ALL.
std::vector<cl_device_id> DeviceTable(cl_device_type type) {
  ApiState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<cl_device_id> out;
  for (const auto& device : state.devices) {
    const bool is_cluster = device->node_index < 0;
    bool match;
    if (type == CL_DEVICE_TYPE_ALL) {
      match = true;
    } else if (is_cluster) {
      match = (type & CL_DEVICE_TYPE_DEFAULT) != 0;
    } else {
      match = (type & device->type) != 0;
    }
    if (match) out.push_back(device.get());
  }
  return out;
}

void BindRuntime(host::ClusterRuntime* runtime) {
  ApiState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.owned_cluster.reset();
  state.runtime = runtime;
  RebuildDeviceTable();
}

Status BindSimCluster(host::SimCluster::Shape shape,
                      host::RuntimeOptions options) {
  auto cluster = host::SimCluster::Create(shape, std::move(options));
  if (!cluster.ok()) return cluster.status();
  ApiState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.owned_cluster = *std::move(cluster);
  state.runtime = &state.owned_cluster->runtime();
  RebuildDeviceTable();
  return Status::Ok();
}

Status BindSimClusterFromConfigFile(const std::string& path,
                                    host::RuntimeOptions options) {
  auto config = ClusterConfig::LoadFile(path);
  if (!config.ok()) return config.status();
  auto cluster = host::SimCluster::CreateFromConfig(*config,
                                                    std::move(options));
  if (!cluster.ok()) return cluster.status();
  ApiState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.owned_cluster = *std::move(cluster);
  state.runtime = &state.owned_cluster->runtime();
  RebuildDeviceTable();
  return Status::Ok();
}

host::ClusterRuntime* BoundRuntime() {
  ApiState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.runtime;
}

void UnbindRuntime() {
  ApiState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.runtime = nullptr;
  state.owned_cluster.reset();
  state.devices.clear();
}

}  // namespace haocl::api

// ===================================================== C API implementation

namespace {

using haocl::ErrorCode;
using haocl::Status;
using haocl::api::BoundRuntime;

template <typename Handle>
bool Valid(Handle* handle, std::uint32_t magic) {
  return handle != nullptr && handle->magic == magic;
}

cl_int ToClError(const Status& status) {
  const auto code = static_cast<cl_int>(status.code());
  // Framework-internal codes map onto the closest OpenCL code.
  switch (status.code()) {
    case ErrorCode::kNetworkError:
    case ErrorCode::kNodeUnreachable:
      return CL_DEVICE_NOT_AVAILABLE;
    case ErrorCode::kProtocolError:
    case ErrorCode::kInternal:
      return CL_OUT_OF_RESOURCES;
    case ErrorCode::kSchedulerError:
      return CL_INVALID_OPERATION;
    case ErrorCode::kUnimplemented:
      return CL_INVALID_OPERATION;
    case ErrorCode::kDependencyFailed:
      return CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST;
    default:
      return code;
  }
}

// Common helper for the *Info query calling convention.
cl_int ReturnInfo(const void* data, size_t size, size_t param_value_size,
                  void* param_value, size_t* param_value_size_ret) {
  if (param_value_size_ret != nullptr) *param_value_size_ret = size;
  if (param_value != nullptr) {
    if (param_value_size < size) return CL_INVALID_VALUE;
    std::memcpy(param_value, data, size);
  }
  return CL_SUCCESS;
}

cl_int ReturnString(const std::string& s, size_t param_value_size,
                    void* param_value, size_t* param_value_size_ret) {
  return ReturnInfo(s.c_str(), s.size() + 1, param_value_size, param_value,
                    param_value_size_ret);
}

using haocl::host::CommandHandle;
using haocl::host::CommandState;

using haocl::RangeExceeds;  // Overflow-safe bounds check (common/wire.h).

// Validates the wait list and turns it into graph dependencies. Events
// from a previous runtime binding are rejected: command ids restart per
// runtime, so a stale handle would alias an unrelated command.
cl_int CheckWaitList(cl_uint count, const cl_event* list, void* runtime,
                     std::vector<CommandHandle>* deps) {
  if ((count == 0) != (list == nullptr)) return CL_INVALID_VALUE;
  for (cl_uint i = 0; i < count; ++i) {
    if (!Valid(list[i], kEventMagic)) return CL_INVALID_EVENT;
    if (list[i]->origin != runtime) return CL_INVALID_EVENT;
    if (deps != nullptr) deps->push_back(list[i]->cmd);
  }
  return CL_SUCCESS;
}

// Hands out an event tracking `cmd` (if the application asked for one).
void EmitEvent(cl_event* event, CommandHandle cmd, bool user = false) {
  if (event == nullptr) return;
  auto* e = new _cl_event();
  e->cmd = cmd;
  e->origin = BoundRuntime();
  e->user = user;
  *event = e;
}

// The runtime this event's command lives in, or nullptr if the binding
// changed since the event was created (stale events stay inert).
haocl::host::ClusterRuntime* RuntimeFor(const _cl_event* e) {
  auto* runtime = BoundRuntime();
  return runtime != nullptr && runtime == e->origin ? runtime : nullptr;
}

// The one deferred-enqueue path all four clEnqueue* entry points share:
// validate + collect the wait list, chain on the queue's tail (weak edge —
// a failed predecessor on an in-order queue does not poison later
// independent commands; wait-list deps stay strong), submit, and honor the
// blocking flag. The out-event is only produced on success, after any
// blocking wait, per the spec. `submit` is called with (runtime, deps,
// order_after) and returns Expected<CommandHandle>.
//
// Record lifetime: the queue's tail owns the command's creation reference
// and releases the predecessor it replaces; an out-event takes its own
// reference (dropped by clReleaseEvent). This is what bounds the graph's
// record count over million-enqueue sessions.
template <typename SubmitFn>
cl_int EnqueueCommand(cl_command_queue queue, cl_uint num_events,
                      const cl_event* wait_list, cl_bool blocking,
                      cl_event* event, SubmitFn&& submit) {
  auto* runtime = BoundRuntime();
  if (runtime == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  if (queue->origin != runtime) return CL_INVALID_COMMAND_QUEUE;
  std::vector<CommandHandle> deps;
  cl_int wait = CheckWaitList(num_events, wait_list, runtime, &deps);
  if (wait != CL_SUCCESS) return wait;

  std::unique_lock<std::mutex> order(queue->mutex);
  std::vector<CommandHandle> after;
  if (queue->tail.valid()) after.push_back(queue->tail);
  auto handle = submit(runtime, std::move(deps), std::move(after));
  if (!handle.ok()) return ToClError(handle.status());
  const CommandHandle replaced = queue->tail;
  queue->tail = *handle;
  // Retain inside the queue lock for the out-event AND for a blocking
  // wait: a racing enqueue could otherwise advance the tail, drop the
  // record's only reference, and a failed blocking command whose record
  // was reclaimed mid-Wait would report success.
  const bool extra_ref = event != nullptr || blocking != CL_FALSE;
  if (extra_ref) (void)runtime->RetainCommand(*handle);
  order.unlock();
  if (replaced.valid()) (void)runtime->ReleaseCommand(replaced);
  if (blocking != CL_FALSE) {
    haocl::Status status = runtime->Wait(*handle);
    if (!status.ok()) {
      // No event on failure: give back the guard reference.
      (void)runtime->ReleaseCommand(*handle);
      return ToClError(status);
    }
  }
  if (event != nullptr) {
    EmitEvent(event, *handle);  // The event owns the extra reference.
  } else if (extra_ref) {
    (void)runtime->ReleaseCommand(*handle);  // Blocking-only guard.
  }
  return CL_SUCCESS;
}

cl_int ExecStatusFromState(CommandState state) {
  switch (state) {
    case CommandState::kQueued: return CL_QUEUED;
    case CommandState::kSubmitted: return CL_SUBMITTED;
    case CommandState::kRunning: return CL_RUNNING;
    case CommandState::kComplete: return CL_COMPLETE;
    case CommandState::kFailed: break;
  }
  return CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST;
}

// Caches the terminal state + profiling stamps once the command retires,
// so events outlive the runtime binding. Returns true when resolved.
bool ResolveEvent(_cl_event* e) {
  std::lock_guard<std::mutex> lock(e->mutex);
  if (e->resolved) return true;
  auto* runtime = RuntimeFor(e);
  if (runtime == nullptr) return false;
  auto state = runtime->CommandStateOf(e->cmd);
  if (!state.ok() || !haocl::host::IsTerminal(*state)) return false;
  if (*state == CommandState::kFailed) {
    const haocl::Status status = runtime->graph().QueryStatus(e->cmd.id);
    e->exec_status = ToClError(status);
    if (e->exec_status >= 0) {
      e->exec_status = CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST;
    }
  } else {
    e->exec_status = CL_COMPLETE;
  }
  auto profile = runtime->CommandProfileOf(e->cmd);
  if (profile.ok()) {
    e->queued = profile->queued_at;
    e->submit = profile->submitted_at;
    e->start = profile->started_at;
    e->end = profile->finished_at;
  }
  e->resolved = true;
  return true;
}

// Live execution status for clGetEventInfo (terminal states come from the
// cache so they survive UnbindRuntime).
cl_int EventExecutionStatus(_cl_event* e) {
  if (ResolveEvent(e)) {
    std::lock_guard<std::mutex> lock(e->mutex);
    return e->exec_status;
  }
  auto* runtime = RuntimeFor(e);
  if (runtime == nullptr) {
    // Stale or missing binding: last cached state (default CL_QUEUED).
    std::lock_guard<std::mutex> lock(e->mutex);
    return e->exec_status;
  }
  auto state = runtime->CommandStateOf(e->cmd);
  return state.ok() ? ExecStatusFromState(*state) : CL_QUEUED;
}

}  // namespace

extern "C" {

// ----------------------------------------------------------------- Platform

cl_int clGetPlatformIDs(cl_uint num_entries, cl_platform_id* platforms,
                        cl_uint* num_platforms) {
  if (platforms == nullptr && num_platforms == nullptr) {
    return CL_INVALID_VALUE;
  }
  if (platforms != nullptr && num_entries == 0) return CL_INVALID_VALUE;
  if (BoundRuntime() == nullptr) {
    if (num_platforms != nullptr) *num_platforms = 0;
    return CL_SUCCESS;  // No platform until a cluster is bound.
  }
  if (num_platforms != nullptr) *num_platforms = 1;
  if (platforms != nullptr) {
    static _cl_platform_id platform;
    platforms[0] = &platform;
  }
  return CL_SUCCESS;
}

cl_int clGetPlatformInfo(cl_platform_id platform, cl_platform_info param_name,
                         size_t param_value_size, void* param_value,
                         size_t* param_value_size_ret) {
  if (!Valid(platform, kPlatformMagic)) return CL_INVALID_PLATFORM;
  switch (param_name) {
    case CL_PLATFORM_NAME:
      return ReturnString("HaoCL", param_value_size, param_value,
                          param_value_size_ret);
    case CL_PLATFORM_VENDOR:
      return ReturnString("HaoCL reproduction", param_value_size, param_value,
                          param_value_size_ret);
    case CL_PLATFORM_VERSION:
      return ReturnString("OpenCL 1.2 HaoCL distributed", param_value_size,
                          param_value, param_value_size_ret);
    case CL_PLATFORM_PROFILE:
      return ReturnString("FULL_PROFILE", param_value_size, param_value,
                          param_value_size_ret);
    default:
      return CL_INVALID_VALUE;
  }
}

// ------------------------------------------------------------------ Devices

cl_int clGetDeviceIDs(cl_platform_id platform, cl_device_type device_type,
                      cl_uint num_entries, cl_device_id* devices,
                      cl_uint* num_devices) {
  if (!Valid(platform, kPlatformMagic)) return CL_INVALID_PLATFORM;
  if (devices == nullptr && num_devices == nullptr) return CL_INVALID_VALUE;
  if (devices != nullptr && num_entries == 0) return CL_INVALID_VALUE;
  auto* runtime = BoundRuntime();
  if (runtime == nullptr) return CL_DEVICE_NOT_FOUND;

  const std::vector<cl_device_id> matches =
      haocl::api::DeviceTable(device_type);
  if (matches.empty()) return CL_DEVICE_NOT_FOUND;
  if (num_devices != nullptr) {
    *num_devices = static_cast<cl_uint>(matches.size());
  }
  if (devices != nullptr) {
    const cl_uint n = std::min<cl_uint>(
        num_entries, static_cast<cl_uint>(matches.size()));
    for (cl_uint i = 0; i < n; ++i) devices[i] = matches[i];
  }
  return CL_SUCCESS;
}

cl_int clGetDeviceInfo(cl_device_id device, cl_device_info param_name,
                       size_t param_value_size, void* param_value,
                       size_t* param_value_size_ret) {
  if (!Valid(device, kDeviceMagic)) return CL_INVALID_DEVICE;
  switch (param_name) {
    case CL_DEVICE_TYPE: {
      cl_device_type type = device->type;
      return ReturnInfo(&type, sizeof(type), param_value_size, param_value,
                        param_value_size_ret);
    }
    case CL_DEVICE_NAME:
      return ReturnString(device->name, param_value_size, param_value,
                          param_value_size_ret);
    case CL_DEVICE_VENDOR:
      return ReturnString("HaoCL", param_value_size, param_value,
                          param_value_size_ret);
    case CL_DEVICE_VERSION:
      return ReturnString("OpenCL 1.2 HaoCL remote", param_value_size,
                          param_value, param_value_size_ret);
    case CL_DEVICE_MAX_WORK_GROUP_SIZE: {
      size_t size = 1024;
      return ReturnInfo(&size, sizeof(size), param_value_size, param_value,
                        param_value_size_ret);
    }
    case CL_DEVICE_MAX_COMPUTE_UNITS: {
      cl_uint units = 16;
      return ReturnInfo(&units, sizeof(units), param_value_size, param_value,
                        param_value_size_ret);
    }
    case CL_DEVICE_GLOBAL_MEM_SIZE: {
      // Honest capacity from the tiered-memory subsystem: the node's
      // reported device memory; the cluster device reports the sum.
      cl_ulong bytes = device->global_mem_bytes;
      return ReturnInfo(&bytes, sizeof(bytes), param_value_size, param_value,
                        param_value_size_ret);
    }
    case CL_DEVICE_MAX_MEM_ALLOC_SIZE: {
      cl_ulong bytes = device->max_alloc_bytes;
      return ReturnInfo(&bytes, sizeof(bytes), param_value_size, param_value,
                        param_value_size_ret);
    }
    default:
      return CL_INVALID_VALUE;
  }
}

// ------------------------------------------------------------------ Context

cl_context clCreateContext(const cl_context_properties*, cl_uint num_devices,
                           const cl_device_id* devices,
                           void (*)(const char*, const void*, size_t, void*),
                           void*, cl_int* errcode_ret) {
  auto fail = [&](cl_int code) {
    if (errcode_ret != nullptr) *errcode_ret = code;
    return static_cast<cl_context>(nullptr);
  };
  if (num_devices == 0 || devices == nullptr) return fail(CL_INVALID_VALUE);
  for (cl_uint i = 0; i < num_devices; ++i) {
    if (!Valid(devices[i], kDeviceMagic)) return fail(CL_INVALID_DEVICE);
  }
  if (BoundRuntime() == nullptr) return fail(CL_DEVICE_NOT_AVAILABLE);
  auto* context = new _cl_context();
  context->devices.assign(devices, devices + num_devices);
  if (errcode_ret != nullptr) *errcode_ret = CL_SUCCESS;
  return context;
}

cl_int clRetainContext(cl_context context) {
  if (!Valid(context, kContextMagic)) return CL_INVALID_CONTEXT;
  context->refs.fetch_add(1);
  return CL_SUCCESS;
}

cl_int clReleaseContext(cl_context context) {
  if (!Valid(context, kContextMagic)) return CL_INVALID_CONTEXT;
  if (context->refs.fetch_sub(1) == 1) {
    context->magic = kDeadMagic;
    delete context;
  }
  return CL_SUCCESS;
}

// ------------------------------------------------------------------- Queues

cl_command_queue clCreateCommandQueue(cl_context context, cl_device_id device,
                                      cl_command_queue_properties properties,
                                      cl_int* errcode_ret) {
  auto fail = [&](cl_int code) {
    if (errcode_ret != nullptr) *errcode_ret = code;
    return static_cast<cl_command_queue>(nullptr);
  };
  if (!Valid(context, kContextMagic)) return fail(CL_INVALID_CONTEXT);
  if (!Valid(device, kDeviceMagic)) return fail(CL_INVALID_DEVICE);
  auto* queue = new _cl_command_queue();
  queue->context = context;
  queue->device = device;
  queue->origin = BoundRuntime();
  queue->profiling = (properties & CL_QUEUE_PROFILING_ENABLE) != 0;
  if (errcode_ret != nullptr) *errcode_ret = CL_SUCCESS;
  return queue;
}

cl_int clRetainCommandQueue(cl_command_queue queue) {
  if (!Valid(queue, kQueueMagic)) return CL_INVALID_COMMAND_QUEUE;
  queue->refs.fetch_add(1);
  return CL_SUCCESS;
}

cl_int clReleaseCommandQueue(cl_command_queue queue) {
  if (!Valid(queue, kQueueMagic)) return CL_INVALID_COMMAND_QUEUE;
  if (queue->refs.fetch_sub(1) == 1) {
    // Drop the tail's record reference (the queue owned it for ordering
    // and clFinish).
    auto* runtime = BoundRuntime();
    if (runtime != nullptr && queue->origin == runtime &&
        queue->tail.valid()) {
      (void)runtime->ReleaseCommand(queue->tail);
    }
    queue->magic = kDeadMagic;
    delete queue;
  }
  return CL_SUCCESS;
}

// ------------------------------------------------------------------ Buffers

cl_mem clCreateBuffer(cl_context context, cl_mem_flags flags, size_t size,
                      void* host_ptr, cl_int* errcode_ret) {
  auto fail = [&](cl_int code) {
    if (errcode_ret != nullptr) *errcode_ret = code;
    return static_cast<cl_mem>(nullptr);
  };
  if (!Valid(context, kContextMagic)) return fail(CL_INVALID_CONTEXT);
  if (size == 0) return fail(CL_INVALID_BUFFER_SIZE);
  const bool wants_host_ptr =
      (flags & (CL_MEM_COPY_HOST_PTR | CL_MEM_USE_HOST_PTR)) != 0;
  if (wants_host_ptr != (host_ptr != nullptr)) {
    return fail(CL_INVALID_VALUE);
  }
  auto* runtime = BoundRuntime();
  if (runtime == nullptr) return fail(CL_DEVICE_NOT_AVAILABLE);
  auto buffer = runtime->CreateBuffer(size);
  if (!buffer.ok()) return fail(ToClError(buffer.status()));
  if (host_ptr != nullptr) {
    Status written = runtime->WriteBuffer(*buffer, 0, host_ptr, size);
    if (!written.ok()) {
      (void)runtime->ReleaseBuffer(*buffer);
      return fail(ToClError(written));
    }
  }
  auto* mem = new _cl_mem();
  mem->buffer = *buffer;
  mem->size = size;
  if (errcode_ret != nullptr) *errcode_ret = CL_SUCCESS;
  return mem;
}

cl_int clRetainMemObject(cl_mem mem) {
  if (!Valid(mem, kMemMagic)) return CL_INVALID_MEM_OBJECT;
  mem->refs.fetch_add(1);
  return CL_SUCCESS;
}

cl_int clReleaseMemObject(cl_mem mem) {
  if (!Valid(mem, kMemMagic)) return CL_INVALID_MEM_OBJECT;
  if (mem->refs.fetch_sub(1) == 1) {
    auto* runtime = BoundRuntime();
    if (runtime != nullptr) (void)runtime->ReleaseBuffer(mem->buffer);
    mem->magic = kDeadMagic;
    delete mem;
  }
  return CL_SUCCESS;
}

// ----------------------------------------------------------------- Programs

cl_program clCreateProgramWithSource(cl_context context, cl_uint count,
                                     const char** strings,
                                     const size_t* lengths,
                                     cl_int* errcode_ret) {
  auto fail = [&](cl_int code) {
    if (errcode_ret != nullptr) *errcode_ret = code;
    return static_cast<cl_program>(nullptr);
  };
  if (!Valid(context, kContextMagic)) return fail(CL_INVALID_CONTEXT);
  if (count == 0 || strings == nullptr) return fail(CL_INVALID_VALUE);
  std::string source;
  for (cl_uint i = 0; i < count; ++i) {
    if (strings[i] == nullptr) return fail(CL_INVALID_VALUE);
    if (lengths != nullptr && lengths[i] != 0) {
      source.append(strings[i], lengths[i]);
    } else {
      source.append(strings[i]);
    }
  }
  auto* program = new _cl_program();
  program->source = std::move(source);
  if (errcode_ret != nullptr) *errcode_ret = CL_SUCCESS;
  return program;
}

cl_int clBuildProgram(cl_program program, cl_uint, const cl_device_id*,
                      const char*, void (*pfn_notify)(cl_program, void*),
                      void* user_data) {
  if (!Valid(program, kProgramMagic)) return CL_INVALID_PROGRAM;
  auto* runtime = BoundRuntime();
  if (runtime == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto built = runtime->BuildProgram(program->source);
  if (built.ok()) {
    program->program = *built;
    program->built = true;
    program->build_status = CL_SUCCESS;
  } else {
    program->built = false;
    program->build_status = CL_BUILD_PROGRAM_FAILURE;
  }
  if (pfn_notify != nullptr) pfn_notify(program, user_data);
  return program->build_status;
}

cl_int clGetProgramBuildInfo(cl_program program, cl_device_id device,
                             cl_program_build_info param_name,
                             size_t param_value_size, void* param_value,
                             size_t* param_value_size_ret) {
  if (!Valid(program, kProgramMagic)) return CL_INVALID_PROGRAM;
  if (device != nullptr && !Valid(device, kDeviceMagic)) {
    return CL_INVALID_DEVICE;
  }
  auto* runtime = BoundRuntime();
  switch (param_name) {
    case CL_PROGRAM_BUILD_STATUS:
      return ReturnInfo(&program->build_status, sizeof(cl_int),
                        param_value_size, param_value, param_value_size_ret);
    case CL_PROGRAM_BUILD_LOG: {
      std::string log;
      if (runtime != nullptr && program->built) {
        log = runtime->BuildLog(program->program);
      } else if (runtime != nullptr) {
        // Re-run the local compile to produce the log for failed builds.
        auto result = runtime->BuildProgram(program->source);
        if (!result.ok()) log = result.status().message();
      }
      return ReturnString(log, param_value_size, param_value,
                          param_value_size_ret);
    }
    default:
      return CL_INVALID_VALUE;
  }
}

cl_int clRetainProgram(cl_program program) {
  if (!Valid(program, kProgramMagic)) return CL_INVALID_PROGRAM;
  program->refs.fetch_add(1);
  return CL_SUCCESS;
}

cl_int clReleaseProgram(cl_program program) {
  if (!Valid(program, kProgramMagic)) return CL_INVALID_PROGRAM;
  if (program->refs.fetch_sub(1) == 1) {
    auto* runtime = BoundRuntime();
    if (runtime != nullptr && program->built) {
      (void)runtime->ReleaseProgram(program->program);
    }
    program->magic = kDeadMagic;
    delete program;
  }
  return CL_SUCCESS;
}

// ------------------------------------------------------------------ Kernels

cl_kernel clCreateKernel(cl_program program, const char* kernel_name,
                         cl_int* errcode_ret) {
  auto fail = [&](cl_int code) {
    if (errcode_ret != nullptr) *errcode_ret = code;
    return static_cast<cl_kernel>(nullptr);
  };
  if (!Valid(program, kProgramMagic)) return fail(CL_INVALID_PROGRAM);
  if (kernel_name == nullptr) return fail(CL_INVALID_VALUE);
  if (!program->built) return fail(CL_INVALID_PROGRAM_EXECUTABLE);
  auto* runtime = BoundRuntime();
  if (runtime == nullptr) return fail(CL_DEVICE_NOT_AVAILABLE);
  auto info = runtime->FindKernel(program->program, kernel_name);
  if (!info.ok()) return fail(CL_INVALID_KERNEL_NAME);
  auto* kernel = new _cl_kernel();
  kernel->program = program;
  kernel->name = kernel_name;
  kernel->info = *info;
  kernel->args.resize((*info)->params.size());
  kernel->access.resize((*info)->params.size());
  program->refs.fetch_add(1);
  if (errcode_ret != nullptr) *errcode_ret = CL_SUCCESS;
  return kernel;
}

cl_int clSetKernelArg(cl_kernel kernel, cl_uint arg_index, size_t arg_size,
                      const void* arg_value) {
  if (!Valid(kernel, kKernelMagic)) return CL_INVALID_KERNEL;
  if (arg_index >= kernel->args.size()) return CL_INVALID_ARG_INDEX;
  const haocl::oclc::KernelArgInfo& param = kernel->info->params[arg_index];

  if (param.IsBuffer()) {
    if (arg_size != sizeof(cl_mem) || arg_value == nullptr) {
      return CL_INVALID_ARG_SIZE;
    }
    cl_mem mem = *static_cast<const cl_mem*>(arg_value);
    if (!Valid(mem, kMemMagic)) return CL_INVALID_ARG_VALUE;
    kernel->args[arg_index] =
        haocl::host::KernelArgValue::Buffer(mem->buffer);
    return CL_SUCCESS;
  }
  if (param.IsLocalPointer()) {
    if (arg_value != nullptr || arg_size == 0) return CL_INVALID_ARG_VALUE;
    kernel->args[arg_index] = haocl::host::KernelArgValue::Local(arg_size);
    return CL_SUCCESS;
  }
  // Scalar.
  const size_t want = haocl::oclc::ScalarSize(param.type.scalar);
  if (arg_size != want) return CL_INVALID_ARG_SIZE;
  if (arg_value == nullptr) return CL_INVALID_ARG_VALUE;
  haocl::host::KernelArgValue value;
  value.kind = haocl::host::KernelArgValue::Kind::kScalar;
  value.scalar_bytes.assign(
      static_cast<const std::uint8_t*>(arg_value),
      static_cast<const std::uint8_t*>(arg_value) + arg_size);
  kernel->args[arg_index] = std::move(value);
  return CL_SUCCESS;
}

cl_int clSetKernelArgAccessPatternHAOCL(cl_kernel kernel, cl_uint arg_index,
                                        cl_haocl_arg_access access,
                                        size_t partition_stride) {
  if (!Valid(kernel, kKernelMagic)) return CL_INVALID_KERNEL;
  if (arg_index >= kernel->access.size()) return CL_INVALID_ARG_INDEX;
  if (!kernel->info->params[arg_index].IsBuffer()) {
    return CL_INVALID_ARG_VALUE;  // Only buffer args have access patterns.
  }
  switch (access) {
    case CL_HAOCL_ARG_ACCESS_REPLICATED:
      kernel->access[arg_index] = {};
      return CL_SUCCESS;
    case CL_HAOCL_ARG_ACCESS_PARTITIONED_DIM0:
      if (partition_stride == 0) return CL_INVALID_ARG_VALUE;
      kernel->access[arg_index] = {
          haocl::host::KernelArgValue::Access::kPartitionedDim0,
          partition_stride};
      return CL_SUCCESS;
    default:
      return CL_INVALID_VALUE;
  }
}

cl_int clRetainKernel(cl_kernel kernel) {
  if (!Valid(kernel, kKernelMagic)) return CL_INVALID_KERNEL;
  kernel->refs.fetch_add(1);
  return CL_SUCCESS;
}

cl_int clReleaseKernel(cl_kernel kernel) {
  if (!Valid(kernel, kKernelMagic)) return CL_INVALID_KERNEL;
  if (kernel->refs.fetch_sub(1) == 1) {
    (void)clReleaseProgram(kernel->program);
    kernel->magic = kDeadMagic;
    delete kernel;
  }
  return CL_SUCCESS;
}

// ----------------------------------------------------------------- Enqueues

cl_int clEnqueueWriteBuffer(cl_command_queue queue, cl_mem buffer,
                            cl_bool blocking_write, size_t offset,
                            size_t size, const void* ptr,
                            cl_uint num_events_in_wait_list,
                            const cl_event* event_wait_list,
                            cl_event* event) {
  if (!Valid(queue, kQueueMagic)) return CL_INVALID_COMMAND_QUEUE;
  if (!Valid(buffer, kMemMagic)) return CL_INVALID_MEM_OBJECT;
  if (ptr == nullptr || size == 0) return CL_INVALID_VALUE;
  if (RangeExceeds(offset, size, buffer->size)) {
    return CL_INVALID_VALUE;
  }
  return EnqueueCommand(
      queue, num_events_in_wait_list, event_wait_list, blocking_write, event,
      [&](auto* runtime, auto deps, auto after) {
        // Blocking writes outlive the command on the caller's side; skip
        // the submit-time snapshot copy.
        return blocking_write != CL_FALSE
                   ? runtime->SubmitWriteBorrowed(buffer->buffer, offset,
                                                  ptr, size, std::move(deps),
                                                  std::move(after))
                   : runtime->SubmitWrite(buffer->buffer, offset, ptr, size,
                                          std::move(deps),
                                          std::move(after));
      });
}

cl_int clEnqueueReadBuffer(cl_command_queue queue, cl_mem buffer,
                           cl_bool blocking_read, size_t offset, size_t size,
                           void* ptr, cl_uint num_events_in_wait_list,
                           const cl_event* event_wait_list, cl_event* event) {
  if (!Valid(queue, kQueueMagic)) return CL_INVALID_COMMAND_QUEUE;
  if (!Valid(buffer, kMemMagic)) return CL_INVALID_MEM_OBJECT;
  if (ptr == nullptr || size == 0) return CL_INVALID_VALUE;
  if (RangeExceeds(offset, size, buffer->size)) {
    return CL_INVALID_VALUE;
  }
  return EnqueueCommand(
      queue, num_events_in_wait_list, event_wait_list, blocking_read, event,
      [&](auto* runtime, auto deps, auto after) {
        return runtime->SubmitRead(buffer->buffer, offset, ptr, size,
                                   std::move(deps), std::move(after));
      });
}

cl_int clEnqueueCopyBuffer(cl_command_queue queue, cl_mem src_buffer,
                           cl_mem dst_buffer, size_t src_offset,
                           size_t dst_offset, size_t size,
                           cl_uint num_events_in_wait_list,
                           const cl_event* event_wait_list, cl_event* event) {
  if (!Valid(queue, kQueueMagic)) return CL_INVALID_COMMAND_QUEUE;
  if (!Valid(src_buffer, kMemMagic) || !Valid(dst_buffer, kMemMagic)) {
    return CL_INVALID_MEM_OBJECT;
  }
  if (size == 0) return CL_INVALID_VALUE;
  if (RangeExceeds(src_offset, size, src_buffer->size) ||
      RangeExceeds(dst_offset, size, dst_buffer->size)) {
    return CL_INVALID_VALUE;
  }
  return EnqueueCommand(
      queue, num_events_in_wait_list, event_wait_list, CL_FALSE, event,
      [&](auto* runtime, auto deps, auto after) {
        return runtime->SubmitCopy(src_buffer->buffer, src_offset,
                                   dst_buffer->buffer, dst_offset, size,
                                   std::move(deps), std::move(after));
      });
}

cl_int clEnqueueNDRangeKernel(cl_command_queue queue, cl_kernel kernel,
                              cl_uint work_dim,
                              const size_t* global_work_offset,
                              const size_t* global_work_size,
                              const size_t* local_work_size,
                              cl_uint num_events_in_wait_list,
                              const cl_event* event_wait_list,
                              cl_event* event) {
  if (!Valid(queue, kQueueMagic)) return CL_INVALID_COMMAND_QUEUE;
  if (!Valid(kernel, kKernelMagic)) return CL_INVALID_KERNEL;
  if (work_dim < 1 || work_dim > 3) return CL_INVALID_WORK_DIMENSION;
  if (global_work_size == nullptr) return CL_INVALID_VALUE;
  for (const auto& arg : kernel->args) {
    if (!arg.has_value()) return CL_INVALID_KERNEL_ARGS;
  }

  haocl::host::ClusterRuntime::LaunchSpec spec;
  spec.program = kernel->program->program;
  spec.kernel_name = kernel->name;
  for (std::size_t i = 0; i < kernel->args.size(); ++i) {
    haocl::host::KernelArgValue value = *kernel->args[i];
    if (value.kind == haocl::host::KernelArgValue::Kind::kBuffer) {
      value.access = kernel->access[i].access;
      value.partition_stride = kernel->access[i].stride;
    }
    spec.args.push_back(std::move(value));
  }
  spec.work_dim = work_dim;
  for (cl_uint d = 0; d < work_dim; ++d) {
    spec.global[d] = global_work_size[d];
    if (local_work_size != nullptr) spec.local[d] = local_work_size[d];
    if (global_work_offset != nullptr) {
      spec.global_offset[d] = global_work_offset[d];
    }
  }
  spec.local_specified = local_work_size != nullptr;
  spec.preferred_node = queue->device->node_index;  // -1 = scheduler picks.

  return EnqueueCommand(
      queue, num_events_in_wait_list, event_wait_list, CL_FALSE, event,
      [&](auto* runtime, auto deps, auto after) {
        return runtime->SubmitLaunch(spec, std::move(deps),
                                     std::move(after));
      });
}

cl_int clEnqueueMigrateMemObjects(cl_command_queue queue,
                                  cl_uint num_mem_objects,
                                  const cl_mem* mem_objects,
                                  cl_mem_migration_flags flags,
                                  cl_uint num_events_in_wait_list,
                                  const cl_event* event_wait_list,
                                  cl_event* event) {
  if (!Valid(queue, kQueueMagic)) return CL_INVALID_COMMAND_QUEUE;
  if (num_mem_objects == 0 || mem_objects == nullptr) return CL_INVALID_VALUE;
  constexpr cl_mem_migration_flags kKnownFlags =
      CL_MIGRATE_MEM_OBJECT_HOST | CL_MIGRATE_MEM_OBJECT_CONTENT_UNDEFINED;
  if ((flags & ~kKnownFlags) != 0) return CL_INVALID_VALUE;
  for (cl_uint i = 0; i < num_mem_objects; ++i) {
    if (!Valid(mem_objects[i], kMemMagic)) return CL_INVALID_MEM_OBJECT;
  }
  const bool to_host = (flags & CL_MIGRATE_MEM_OBJECT_HOST) != 0;
  const bool discard =
      (flags & CL_MIGRATE_MEM_OBJECT_CONTENT_UNDEFINED) != 0;
  const int node = queue->device->node_index;  // -1 = virtual cluster device.
  // On the virtual cluster device the scheduler owns placement, so a
  // device-directed migration has no fixed destination: treat it as the
  // legal no-op hint (still an in-order command, so the event semantics
  // hold) unless the HOST flag names the host shadow explicitly.
  const bool no_op = !to_host && node < 0;
  // One runtime command per mem object, chained in-order. The wait list
  // gates the FIRST command (validated before anything enqueues; in-order
  // chaining extends the gate to the rest); the out-event tracks the
  // LAST, which completes only after all of them.
  for (cl_uint i = 0; i < num_mem_objects; ++i) {
    cl_mem mem = mem_objects[i];
    const bool first = i == 0;
    const bool last = i + 1 == num_mem_objects;
    cl_int status = EnqueueCommand(
        queue, first ? num_events_in_wait_list : 0,
        first ? event_wait_list : nullptr, CL_FALSE, last ? event : nullptr,
        [&](auto* runtime, auto deps, auto after) {
          using Handle = haocl::Expected<haocl::host::CommandHandle>;
          if (no_op) {
            // Empty-bodied command: carries the ordering and the event,
            // moves nothing.
            std::vector<haocl::host::CommandId> dep_ids;
            std::vector<haocl::host::CommandId> order_ids;
            for (const CommandHandle& h : deps) dep_ids.push_back(h.id);
            for (const CommandHandle& h : after) order_ids.push_back(h.id);
            const haocl::host::CommandId cmd = runtime->graph().Submit(
                [](haocl::host::CommandGraph::Execution&) {
                  return haocl::Status::Ok();
                },
                std::move(dep_ids), "migrate:noop", std::move(order_ids));
            return Handle(haocl::host::CommandHandle{cmd});
          }
          return Handle(runtime->SubmitMigrate(
              mem->buffer, {},
              to_host ? haocl::host::ClusterRuntime::kMigrateToHost : node,
              discard, std::move(deps), std::move(after)));
        });
    if (status != CL_SUCCESS) return status;
  }
  return CL_SUCCESS;
}

cl_int clFlush(cl_command_queue queue) {
  // Every enqueue submits into the command graph immediately; there is
  // nothing left to push.
  return Valid(queue, kQueueMagic) ? CL_SUCCESS : CL_INVALID_COMMAND_QUEUE;
}

cl_int clFinish(cl_command_queue queue) {
  if (!Valid(queue, kQueueMagic)) return CL_INVALID_COMMAND_QUEUE;
  auto* runtime = BoundRuntime();
  if (runtime == nullptr) return CL_SUCCESS;  // Nothing can be in flight.
  if (queue->origin != runtime) return CL_SUCCESS;  // Stale binding: inert.
  CommandHandle tail;
  {
    std::lock_guard<std::mutex> order(queue->mutex);
    tail = queue->tail;
    // Hold the record across the wait: a racing enqueue advancing the
    // tail would otherwise release it mid-Wait and mask a failure.
    if (tail.valid()) (void)runtime->RetainCommand(tail);
  }
  if (!tail.valid()) return CL_SUCCESS;
  // In-order queue: the tail completing means everything before it did.
  // Note: commands gated on unresolved user events keep clFinish blocked
  // until the application sets them — the standard's semantics.
  Status status = runtime->Wait(tail);
  (void)runtime->ReleaseCommand(tail);
  return status.ok() ? CL_SUCCESS : ToClError(status);
}

// ------------------------------------------------------------------- Events

cl_int clWaitForEvents(cl_uint num_events, const cl_event* event_list) {
  if (num_events == 0 || event_list == nullptr) return CL_INVALID_VALUE;
  for (cl_uint i = 0; i < num_events; ++i) {
    if (!Valid(event_list[i], kEventMagic)) return CL_INVALID_EVENT;
  }
  cl_int result = CL_SUCCESS;
  for (cl_uint i = 0; i < num_events; ++i) {
    _cl_event* e = event_list[i];
    if (ResolveEvent(e)) {
      // Already terminal (covers events that outlived the runtime).
      std::lock_guard<std::mutex> lock(e->mutex);
      if (e->exec_status < 0) {
        result = CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST;
      }
      continue;
    }
    auto* runtime = RuntimeFor(e);
    if (runtime == nullptr) continue;  // Stale binding: nothing to wait on.
    Status status = runtime->Wait(e->cmd);
    (void)ResolveEvent(e);
    if (!status.ok()) {
      result = CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST;
    }
  }
  return result;
}

cl_int clGetEventInfo(cl_event event, cl_event_info param_name,
                      size_t param_value_size, void* param_value,
                      size_t* param_value_size_ret) {
  if (!Valid(event, kEventMagic)) return CL_INVALID_EVENT;
  switch (param_name) {
    case CL_EVENT_COMMAND_EXECUTION_STATUS: {
      const cl_int status = EventExecutionStatus(event);
      return ReturnInfo(&status, sizeof(status), param_value_size,
                        param_value, param_value_size_ret);
    }
    case CL_EVENT_REFERENCE_COUNT: {
      const cl_uint refs = static_cast<cl_uint>(event->refs.load());
      return ReturnInfo(&refs, sizeof(refs), param_value_size, param_value,
                        param_value_size_ret);
    }
    default:
      return CL_INVALID_VALUE;
  }
}

cl_int clGetEventProfilingInfo(cl_event event, cl_profiling_info param_name,
                               size_t param_value_size, void* param_value,
                               size_t* param_value_size_ret) {
  if (!Valid(event, kEventMagic)) return CL_INVALID_EVENT;
  if (event->user) return CL_PROFILING_INFO_NOT_AVAILABLE;
  if (!ResolveEvent(event)) return CL_PROFILING_INFO_NOT_AVAILABLE;
  double seconds = 0.0;
  {
    std::lock_guard<std::mutex> lock(event->mutex);
    switch (param_name) {
      case CL_PROFILING_COMMAND_QUEUED: seconds = event->queued; break;
      case CL_PROFILING_COMMAND_SUBMIT: seconds = event->submit; break;
      case CL_PROFILING_COMMAND_START: seconds = event->start; break;
      case CL_PROFILING_COMMAND_END: seconds = event->end; break;
      default:
        return CL_INVALID_VALUE;
    }
  }
  const cl_ulong nanos = static_cast<cl_ulong>(seconds * 1e9);
  return ReturnInfo(&nanos, sizeof(nanos), param_value_size, param_value,
                    param_value_size_ret);
}

cl_event clCreateUserEvent(cl_context context, cl_int* errcode_ret) {
  auto fail = [&](cl_int code) {
    if (errcode_ret != nullptr) *errcode_ret = code;
    return static_cast<cl_event>(nullptr);
  };
  if (!Valid(context, kContextMagic)) return fail(CL_INVALID_CONTEXT);
  auto* runtime = BoundRuntime();
  if (runtime == nullptr) return fail(CL_DEVICE_NOT_AVAILABLE);
  auto handle = runtime->SubmitMarker();
  if (!handle.ok()) return fail(ToClError(handle.status()));
  cl_event event = nullptr;
  EmitEvent(&event, *handle, /*user=*/true);
  if (errcode_ret != nullptr) *errcode_ret = CL_SUCCESS;
  return event;
}

cl_int clSetUserEventStatus(cl_event event, cl_int execution_status) {
  if (!Valid(event, kEventMagic)) return CL_INVALID_EVENT;
  if (!event->user) return CL_INVALID_EVENT;
  if (execution_status != CL_COMPLETE && execution_status >= 0) {
    return CL_INVALID_VALUE;
  }
  auto* runtime = RuntimeFor(event);
  if (runtime == nullptr) return CL_INVALID_OPERATION;
  Status terminal =
      execution_status == CL_COMPLETE
          ? Status::Ok()
          : Status(haocl::ErrorCode::kInternal,
                   "user event failed with status " +
                       std::to_string(execution_status));
  Status set = runtime->CompleteMarker(event->cmd, std::move(terminal));
  if (!set.ok()) {
    // Setting twice is the spec's CL_INVALID_OPERATION.
    return set.code() == haocl::ErrorCode::kInvalidOperation
               ? CL_INVALID_OPERATION
               : ToClError(set);
  }
  // Cache the exact status the application set: clGetEventInfo must echo
  // the user's own negative value, not our internal mapping of it.
  {
    std::lock_guard<std::mutex> lock(event->mutex);
    event->resolved = true;
    event->exec_status = execution_status;
  }
  return CL_SUCCESS;
}

cl_int clRetainEvent(cl_event event) {
  if (!Valid(event, kEventMagic)) return CL_INVALID_EVENT;
  event->refs.fetch_add(1);
  return CL_SUCCESS;
}

cl_int clReleaseEvent(cl_event event) {
  if (!Valid(event, kEventMagic)) return CL_INVALID_EVENT;
  if (event->refs.fetch_sub(1) == 1) {
    // Drop the event's record reference so the graph can reclaim the
    // command's bookkeeping (clReleaseEvent is what keeps long event
    // streams bounded).
    auto* runtime = RuntimeFor(event);
    if (runtime != nullptr) (void)runtime->ReleaseCommand(event->cmd);
    event->magic = kDeadMagic;
    delete event;
  }
  return CL_SUCCESS;
}

}  // extern "C"
