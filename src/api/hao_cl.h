// hao_cl.h — HaoCL's OpenCL-compatible API surface (the "OpenCL Wrapper
// Lib" of paper §III-B).
//
// "The OpenCL Wrapper Lib adopts identical names as standard OpenCL APIs to
// maintain good usability and portability." An application written against
// OpenCL 1.2 C APIs recompiles against this header unchanged; every call is
// packaged into a message and forwarded to the device node the scheduler
// picks. Types and constants carry the standard names; values of error
// codes match the OpenCL specification where one exists.
//
// Before the first OpenCL call, bind a cluster runtime (see
// api/runtime_binding.h) — the analogue of pointing the loader at a
// cluster configuration file.
#pragma once

#include <cstddef>
#include <cstdint>

// ---------------------------------------------------------------- Types

using cl_int = std::int32_t;
using cl_uint = std::uint32_t;
using cl_long = std::int64_t;
using cl_ulong = std::uint64_t;
using cl_bool = cl_uint;
using cl_bitfield = cl_ulong;
using cl_device_type = cl_bitfield;
using cl_mem_flags = cl_bitfield;
using cl_command_queue_properties = cl_bitfield;
using cl_platform_info = cl_uint;
using cl_device_info = cl_uint;
using cl_program_build_info = cl_uint;
using cl_profiling_info = cl_uint;
using cl_event_info = cl_uint;
using cl_context_properties = std::intptr_t;

struct _cl_platform_id;
struct _cl_device_id;
struct _cl_context;
struct _cl_command_queue;
struct _cl_mem;
struct _cl_program;
struct _cl_kernel;
struct _cl_event;

using cl_platform_id = _cl_platform_id*;
using cl_device_id = _cl_device_id*;
using cl_context = _cl_context*;
using cl_command_queue = _cl_command_queue*;
using cl_mem = _cl_mem*;
using cl_program = _cl_program*;
using cl_kernel = _cl_kernel*;
using cl_event = _cl_event*;

// ------------------------------------------------------------- Constants

inline constexpr cl_int CL_SUCCESS = 0;
inline constexpr cl_int CL_DEVICE_NOT_FOUND = -1;
inline constexpr cl_int CL_DEVICE_NOT_AVAILABLE = -2;
inline constexpr cl_int CL_COMPILER_NOT_AVAILABLE = -3;
inline constexpr cl_int CL_MEM_OBJECT_ALLOCATION_FAILURE = -4;
inline constexpr cl_int CL_OUT_OF_RESOURCES = -5;
inline constexpr cl_int CL_OUT_OF_HOST_MEMORY = -6;
inline constexpr cl_int CL_BUILD_PROGRAM_FAILURE = -11;
inline constexpr cl_int CL_PROFILING_INFO_NOT_AVAILABLE = -7;
inline constexpr cl_int CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST = -14;
inline constexpr cl_int CL_INVALID_VALUE = -30;
inline constexpr cl_int CL_INVALID_DEVICE_TYPE = -31;
inline constexpr cl_int CL_INVALID_PLATFORM = -32;
inline constexpr cl_int CL_INVALID_DEVICE = -33;
inline constexpr cl_int CL_INVALID_CONTEXT = -34;
inline constexpr cl_int CL_INVALID_QUEUE_PROPERTIES = -35;
inline constexpr cl_int CL_INVALID_COMMAND_QUEUE = -36;
inline constexpr cl_int CL_INVALID_MEM_OBJECT = -38;
inline constexpr cl_int CL_INVALID_PROGRAM = -44;
inline constexpr cl_int CL_INVALID_PROGRAM_EXECUTABLE = -45;
inline constexpr cl_int CL_INVALID_KERNEL_NAME = -46;
inline constexpr cl_int CL_INVALID_KERNEL = -48;
inline constexpr cl_int CL_INVALID_ARG_INDEX = -49;
inline constexpr cl_int CL_INVALID_ARG_VALUE = -50;
inline constexpr cl_int CL_INVALID_ARG_SIZE = -51;
inline constexpr cl_int CL_INVALID_KERNEL_ARGS = -52;
inline constexpr cl_int CL_INVALID_WORK_DIMENSION = -53;
inline constexpr cl_int CL_INVALID_WORK_GROUP_SIZE = -54;
inline constexpr cl_int CL_INVALID_WORK_ITEM_SIZE = -55;
inline constexpr cl_int CL_INVALID_EVENT = -58;
inline constexpr cl_int CL_INVALID_OPERATION = -59;
inline constexpr cl_int CL_INVALID_BUFFER_SIZE = -61;

inline constexpr cl_bool CL_FALSE = 0;
inline constexpr cl_bool CL_TRUE = 1;

inline constexpr cl_device_type CL_DEVICE_TYPE_DEFAULT = 1 << 0;
inline constexpr cl_device_type CL_DEVICE_TYPE_CPU = 1 << 1;
inline constexpr cl_device_type CL_DEVICE_TYPE_GPU = 1 << 2;
inline constexpr cl_device_type CL_DEVICE_TYPE_ACCELERATOR = 1 << 3;  // FPGA
inline constexpr cl_device_type CL_DEVICE_TYPE_CUSTOM = 1 << 4;
inline constexpr cl_device_type CL_DEVICE_TYPE_ALL = 0xFFFFFFFF;

inline constexpr cl_mem_flags CL_MEM_READ_WRITE = 1 << 0;
inline constexpr cl_mem_flags CL_MEM_WRITE_ONLY = 1 << 1;
inline constexpr cl_mem_flags CL_MEM_READ_ONLY = 1 << 2;
inline constexpr cl_mem_flags CL_MEM_USE_HOST_PTR = 1 << 3;
inline constexpr cl_mem_flags CL_MEM_ALLOC_HOST_PTR = 1 << 4;
inline constexpr cl_mem_flags CL_MEM_COPY_HOST_PTR = 1 << 5;

inline constexpr cl_command_queue_properties CL_QUEUE_PROFILING_ENABLE = 1
                                                                         << 1;

using cl_mem_migration_flags = cl_bitfield;
inline constexpr cl_mem_migration_flags CL_MIGRATE_MEM_OBJECT_HOST = 1 << 0;
inline constexpr cl_mem_migration_flags
    CL_MIGRATE_MEM_OBJECT_CONTENT_UNDEFINED = 1 << 1;

inline constexpr cl_platform_info CL_PLATFORM_PROFILE = 0x0900;
inline constexpr cl_platform_info CL_PLATFORM_VERSION = 0x0901;
inline constexpr cl_platform_info CL_PLATFORM_NAME = 0x0902;
inline constexpr cl_platform_info CL_PLATFORM_VENDOR = 0x0903;

inline constexpr cl_device_info CL_DEVICE_TYPE = 0x1000;
inline constexpr cl_device_info CL_DEVICE_MAX_COMPUTE_UNITS = 0x1002;
inline constexpr cl_device_info CL_DEVICE_MAX_WORK_GROUP_SIZE = 0x1004;
inline constexpr cl_device_info CL_DEVICE_MAX_MEM_ALLOC_SIZE = 0x1010;
inline constexpr cl_device_info CL_DEVICE_GLOBAL_MEM_SIZE = 0x101F;
inline constexpr cl_device_info CL_DEVICE_NAME = 0x102B;
inline constexpr cl_device_info CL_DEVICE_VENDOR = 0x102C;
inline constexpr cl_device_info CL_DEVICE_VERSION = 0x102F;

inline constexpr cl_program_build_info CL_PROGRAM_BUILD_STATUS = 0x1181;
inline constexpr cl_program_build_info CL_PROGRAM_BUILD_LOG = 0x1183;

inline constexpr cl_profiling_info CL_PROFILING_COMMAND_QUEUED = 0x1280;
inline constexpr cl_profiling_info CL_PROFILING_COMMAND_SUBMIT = 0x1281;
inline constexpr cl_profiling_info CL_PROFILING_COMMAND_START = 0x1282;
inline constexpr cl_profiling_info CL_PROFILING_COMMAND_END = 0x1283;

inline constexpr cl_event_info CL_EVENT_REFERENCE_COUNT = 0x11D2;
inline constexpr cl_event_info CL_EVENT_COMMAND_EXECUTION_STATUS = 0x11D3;

// Command execution status (clGetEventInfo / clSetUserEventStatus).
inline constexpr cl_int CL_COMPLETE = 0x0;
inline constexpr cl_int CL_RUNNING = 0x1;
inline constexpr cl_int CL_SUBMITTED = 0x2;
inline constexpr cl_int CL_QUEUED = 0x3;

// ---- HaoCL extension: kernel-arg access patterns ------------------------
// Annotates how a kernel's work-items touch a buffer argument, enabling
// the scheduler to split one clEnqueueNDRangeKernel across several device
// nodes (see docs/scheduling.md). REPLICATED (the default) ships the whole
// buffer to every node the launch lands on; PARTITIONED_DIM0 declares the
// work-item with global id g touches only bytes [g*stride, (g+1)*stride),
// so each shard moves just its slice. A launch is eligible for multi-node
// splitting only when every buffer it writes is PARTITIONED_DIM0.
using cl_haocl_arg_access = cl_uint;
inline constexpr cl_haocl_arg_access CL_HAOCL_ARG_ACCESS_REPLICATED = 0;
inline constexpr cl_haocl_arg_access CL_HAOCL_ARG_ACCESS_PARTITIONED_DIM0 =
    1;

// ------------------------------------------------------------- Entry points

extern "C" {

cl_int clGetPlatformIDs(cl_uint num_entries, cl_platform_id* platforms,
                        cl_uint* num_platforms);
cl_int clGetPlatformInfo(cl_platform_id platform, cl_platform_info param_name,
                         size_t param_value_size, void* param_value,
                         size_t* param_value_size_ret);

cl_int clGetDeviceIDs(cl_platform_id platform, cl_device_type device_type,
                      cl_uint num_entries, cl_device_id* devices,
                      cl_uint* num_devices);
cl_int clGetDeviceInfo(cl_device_id device, cl_device_info param_name,
                       size_t param_value_size, void* param_value,
                       size_t* param_value_size_ret);

cl_context clCreateContext(const cl_context_properties* properties,
                           cl_uint num_devices, const cl_device_id* devices,
                           void (*pfn_notify)(const char*, const void*,
                                              size_t, void*),
                           void* user_data, cl_int* errcode_ret);
cl_int clRetainContext(cl_context context);
cl_int clReleaseContext(cl_context context);

cl_command_queue clCreateCommandQueue(cl_context context, cl_device_id device,
                                      cl_command_queue_properties properties,
                                      cl_int* errcode_ret);
cl_int clRetainCommandQueue(cl_command_queue queue);
cl_int clReleaseCommandQueue(cl_command_queue queue);

cl_mem clCreateBuffer(cl_context context, cl_mem_flags flags, size_t size,
                      void* host_ptr, cl_int* errcode_ret);
cl_int clRetainMemObject(cl_mem mem);
cl_int clReleaseMemObject(cl_mem mem);

cl_program clCreateProgramWithSource(cl_context context, cl_uint count,
                                     const char** strings,
                                     const size_t* lengths,
                                     cl_int* errcode_ret);
cl_int clBuildProgram(cl_program program, cl_uint num_devices,
                      const cl_device_id* device_list, const char* options,
                      void (*pfn_notify)(cl_program, void*), void* user_data);
cl_int clGetProgramBuildInfo(cl_program program, cl_device_id device,
                             cl_program_build_info param_name,
                             size_t param_value_size, void* param_value,
                             size_t* param_value_size_ret);
cl_int clRetainProgram(cl_program program);
cl_int clReleaseProgram(cl_program program);

cl_kernel clCreateKernel(cl_program program, const char* kernel_name,
                         cl_int* errcode_ret);
cl_int clSetKernelArg(cl_kernel kernel, cl_uint arg_index, size_t arg_size,
                      const void* arg_value);
// HaoCL extension: declares the access pattern of a buffer argument.
// `partition_stride` is the bytes one dim-0 global index touches (required
// non-zero for PARTITIONED_DIM0, ignored for REPLICATED). Sticky across
// clSetKernelArg calls on the same index.
cl_int clSetKernelArgAccessPatternHAOCL(cl_kernel kernel, cl_uint arg_index,
                                        cl_haocl_arg_access access,
                                        size_t partition_stride);
cl_int clRetainKernel(cl_kernel kernel);
cl_int clReleaseKernel(cl_kernel kernel);

cl_int clEnqueueWriteBuffer(cl_command_queue queue, cl_mem buffer,
                            cl_bool blocking_write, size_t offset,
                            size_t size, const void* ptr,
                            cl_uint num_events_in_wait_list,
                            const cl_event* event_wait_list, cl_event* event);
cl_int clEnqueueReadBuffer(cl_command_queue queue, cl_mem buffer,
                           cl_bool blocking_read, size_t offset, size_t size,
                           void* ptr, cl_uint num_events_in_wait_list,
                           const cl_event* event_wait_list, cl_event* event);
cl_int clEnqueueCopyBuffer(cl_command_queue queue, cl_mem src_buffer,
                           cl_mem dst_buffer, size_t src_offset,
                           size_t dst_offset, size_t size,
                           cl_uint num_events_in_wait_list,
                           const cl_event* event_wait_list, cl_event* event);
cl_int clEnqueueNDRangeKernel(cl_command_queue queue, cl_kernel kernel,
                              cl_uint work_dim,
                              const size_t* global_work_offset,
                              const size_t* global_work_size,
                              const size_t* local_work_size,
                              cl_uint num_events_in_wait_list,
                              const cl_event* event_wait_list,
                              cl_event* event);
// Migrates the mem objects toward the queue's device (or the host with
// CL_MIGRATE_MEM_OBJECT_HOST) ahead of use — the standard OpenCL 1.2
// prefetch, mapped onto the region directory: peer-owned ranges move
// node-to-node and never transit the host. On the virtual cluster device
// the scheduler owns placement, so only the HOST flag moves data there.
cl_int clEnqueueMigrateMemObjects(cl_command_queue queue,
                                  cl_uint num_mem_objects,
                                  const cl_mem* mem_objects,
                                  cl_mem_migration_flags flags,
                                  cl_uint num_events_in_wait_list,
                                  const cl_event* event_wait_list,
                                  cl_event* event);

cl_int clFlush(cl_command_queue queue);
cl_int clFinish(cl_command_queue queue);

cl_int clWaitForEvents(cl_uint num_events, const cl_event* event_list);
cl_int clGetEventInfo(cl_event event, cl_event_info param_name,
                      size_t param_value_size, void* param_value,
                      size_t* param_value_size_ret);
cl_int clGetEventProfilingInfo(cl_event event, cl_profiling_info param_name,
                               size_t param_value_size, void* param_value,
                               size_t* param_value_size_ret);
cl_event clCreateUserEvent(cl_context context, cl_int* errcode_ret);
cl_int clSetUserEventStatus(cl_event event, cl_int execution_status);
cl_int clRetainEvent(cl_event event);
cl_int clReleaseEvent(cl_event event);

}  // extern "C"
