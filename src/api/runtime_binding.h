// Binding between the C API surface and a ClusterRuntime instance.
//
// A real OpenCL loader finds its ICD through /etc/OpenCL/vendors; HaoCL
// finds its cluster through this binding. Applications (or test fixtures)
// either bind an existing runtime or ask the binding to own an in-process
// SimCluster built from a cluster configuration file.
#pragma once

#include <memory>
#include <string>

#include "host/cluster_runtime.h"
#include "host/sim_cluster.h"

namespace haocl::api {

// Binds a non-owning runtime pointer; the caller keeps it alive until
// UnbindRuntime(). Replaces any previous binding.
void BindRuntime(host::ClusterRuntime* runtime);

// Convenience: creates and owns an in-process cluster of the given shape.
Status BindSimCluster(host::SimCluster::Shape shape,
                      host::RuntimeOptions options = {});

// Convenience: cluster from a configuration file path (the deployment
// style the paper describes for the host process).
Status BindSimClusterFromConfigFile(const std::string& path,
                                    host::RuntimeOptions options = {});

// The currently bound runtime, or nullptr.
host::ClusterRuntime* BoundRuntime();

// Drops the binding (and any owned SimCluster).
void UnbindRuntime();

}  // namespace haocl::api
